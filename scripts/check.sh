#!/bin/sh
# check.sh — the repository's CI gate. Chains every static and dynamic
# verification, in cheapest-first order:
#
#   gofmt -l      formatting
#   go vet        stock correctness vet
#   go build      compilation
#   spvet         determinism lint (internal/lint): maprange, wallclock,
#                 goroutine, floatorder
#   go test       full unit/integration suite, including the runtime
#                 determinism harness (TestDeterministicReplay)
#   go test -race race detector on the packages exercising concurrency-safe
#                 surfaces (the simulator itself is single-threaded by
#                 design; spvet's goroutine check enforces that statically)
#
# Any gate failing exits non-zero.
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt"
fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
    echo "gofmt needed on:" >&2
    echo "$fmt" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== spvet (determinism lint)"
go run ./cmd/spvet ./...

echo "== go test"
go test ./...

echo "== go test -race"
go test -race ./internal/event ./internal/lint ./internal/sim \
    ./internal/stats ./internal/trace ./internal/workload

echo "check.sh: all gates passed"
