#!/bin/sh
# check.sh — the repository's CI gate. Chains every static and dynamic
# verification, in cheapest-first order:
#
#   gofmt -l      formatting
#   go vet        stock correctness vet
#   go build      compilation
#   spvet         determinism lint (internal/lint): maprange, wallclock,
#                 goroutine, floatorder
#   go test       full unit/integration suite, including the runtime
#                 determinism harness (TestDeterministicReplay)
#   go test -race race detector on the packages exercising concurrency-safe
#                 surfaces (the simulator itself is single-threaded by
#                 design; spvet's goroutine check enforces that statically)
#   spsweep smoke quick-scale sweep end to end: run, resume (must recall
#                 every cell from the store), byte-compare the merged
#                 outputs, status must report all cells complete
#
# Any gate failing exits non-zero.
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt"
fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
    echo "gofmt needed on:" >&2
    echo "$fmt" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== spvet (determinism lint)"
go run ./cmd/spvet ./...

echo "== go test"
go test ./...

echo "== go test -race"
go test -race ./internal/event ./internal/lint ./internal/sim \
    ./internal/stats ./internal/trace ./internal/workload
go test -race -short ./internal/experiments ./internal/sweep

echo "== spsweep smoke (run / resume / status)"
sweepdir=$(mktemp -d)
trap 'rm -rf "$sweepdir"' EXIT
go build -o "$sweepdir/spsweep" ./cmd/spsweep
"$sweepdir/spsweep" run -bench x264,streamcluster -kinds dir,sp \
    -scales 0.05 -jobs 2 -dir "$sweepdir/store" \
    -summary "$sweepdir/summary.json" -format json \
    > "$sweepdir/run1.json" 2> "$sweepdir/run1.log"
"$sweepdir/spsweep" resume -jobs 4 -dir "$sweepdir/store" \
    -summary "" -format json \
    > "$sweepdir/run2.json" 2> "$sweepdir/run2.log"
cmp "$sweepdir/run1.json" "$sweepdir/run2.json" || {
    echo "spsweep: resumed output differs from first run" >&2
    exit 1
}
grep -q "4 cached, 0 executed, 0 failed" "$sweepdir/run2.log" || {
    echo "spsweep: resume re-executed completed jobs:" >&2
    cat "$sweepdir/run2.log" >&2
    exit 1
}
"$sweepdir/spsweep" status -dir "$sweepdir/store" | grep -q "4/4 complete, 0 pending" || {
    echo "spsweep: status does not report a complete store" >&2
    exit 1
}

echo "check.sh: all gates passed"
