#!/bin/sh
# check.sh — the repository's CI gate. Chains every static and dynamic
# verification, in cheapest-first order:
#
#   gofmt -l      formatting
#   go vet        stock correctness vet
#   go build      compilation
#   spvet         invariant analysis (internal/lint): maprange, wallclock,
#                 goroutine, floatorder, exhaustive, noalloc, obspure,
#                 poolescape, allow — run against the checked-in baseline
#                 (.spvet-baseline.json, which must stay empty for sim
#                 packages), plus a -json smoke asserting zero new errors
#   noalloc gate  the //spcoh:noalloc annotation set must stay consistent
#                 with the AllocsPerRun ceilings the unit tests enforce
#                 (TestNoallocAnnotationConsistency)
#   go test       full unit/integration suite, including the runtime
#                 determinism harness (TestDeterministicReplay)
#   go test -race race detector on the packages exercising concurrency-safe
#                 surfaces (the simulator itself is single-threaded by
#                 design; spvet's goroutine check enforces that statically)
#   spsweep smoke quick-scale sweep end to end: run, resume (must recall
#                 every cell from the store), byte-compare the merged
#                 outputs, status must report all cells complete
#   spscen smoke  scenario layer end to end: the embedded profile specs
#                 validate and build, a 50-seed generator fuzz sweep
#                 (validity + determinism + buildability), and a generated
#                 spec piped through spsim -spec twice must render
#                 byte-identically
#   spstat smoke  metrics pipeline end to end: a small instrumented run
#                 twice (series must be byte-identical), spstat -validate
#                 (epochs monotone/contiguous), JSON decode, and the
#                 collector-overhead benchmark into results/BENCH_metrics.json
#   bench smoke   every testing.B benchmark compiled and run once
#                 (-benchtime=1x) so benchmark code cannot rot, then
#                 spbench -core-bench refreshes results/BENCH_core.json
#                 (timings recorded, not gated — wall time on shared boxes
#                 is noise; allocation regressions are gated by the
#                 AllocsPerRun ceilings inside go test; see DESIGN.md §11)
#
# Any gate failing exits non-zero.
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt"
fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
    echo "gofmt needed on:" >&2
    echo "$fmt" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

sweepdir=$(mktemp -d)
trap 'rm -rf "$sweepdir"' EXIT

echo "== spvet (invariant analysis, baseline-gated)"
go run ./cmd/spvet -baseline .spvet-baseline.json ./...
go run ./cmd/spvet -baseline .spvet-baseline.json -json ./... > "$sweepdir/spvet.json"
grep -q '"new_errors": 0' "$sweepdir/spvet.json" || {
    echo "spvet: -json report has new errors:" >&2
    cat "$sweepdir/spvet.json" >&2
    exit 1
}

echo "== noalloc annotation consistency"
go test -run TestNoallocAnnotationConsistency -count=1 ./internal/lint

echo "== go test"
go test ./...

echo "== go test -race"
go test -race ./internal/event ./internal/lint ./internal/sim \
    ./internal/stats ./internal/trace ./internal/workload
go test -race -short ./internal/experiments ./internal/sweep

echo "== spsweep smoke (run / resume / status)"
go build -o "$sweepdir/spsweep" ./cmd/spsweep
"$sweepdir/spsweep" run -bench x264,streamcluster -kinds dir,sp \
    -scales 0.05 -jobs 2 -dir "$sweepdir/store" \
    -summary "$sweepdir/summary.json" -format json \
    > "$sweepdir/run1.json" 2> "$sweepdir/run1.log"
"$sweepdir/spsweep" resume -jobs 4 -dir "$sweepdir/store" \
    -summary "" -format json \
    > "$sweepdir/run2.json" 2> "$sweepdir/run2.log"
cmp "$sweepdir/run1.json" "$sweepdir/run2.json" || {
    echo "spsweep: resumed output differs from first run" >&2
    exit 1
}
grep -q "4 cached, 0 executed, 0 failed" "$sweepdir/run2.log" || {
    echo "spsweep: resume re-executed completed jobs:" >&2
    cat "$sweepdir/run2.log" >&2
    exit 1
}
"$sweepdir/spsweep" status -dir "$sweepdir/store" | grep -q "4/4 complete, 0 pending" || {
    echo "spsweep: status does not report a complete store" >&2
    exit 1
}

echo "== spscen smoke (builtin specs / generator fuzz / spec replay determinism)"
go build -o "$sweepdir/spscen" ./cmd/spscen
go build -o "$sweepdir/spsim" ./cmd/spsim
"$sweepdir/spscen" validate -builtin
"$sweepdir/spscen" fuzz -n 50 -seed 1
"$sweepdir/spscen" gen -seed 7 > "$sweepdir/fuzz7.json"
"$sweepdir/spsim" -spec "$sweepdir/fuzz7.json" -pred sp > "$sweepdir/spec1.txt"
"$sweepdir/spscen" gen -seed 7 | "$sweepdir/spsim" -spec - -pred sp > "$sweepdir/spec2.txt"
cmp "$sweepdir/spec1.txt" "$sweepdir/spec2.txt" || {
    echo "spscen: generated-spec replay is not deterministic" >&2
    exit 1
}

echo "== spstat smoke (metrics series determinism / validate / overhead)"
go build -o "$sweepdir/spstat" ./cmd/spstat
"$sweepdir/spsim" -bench x264 -pred sp -scale 0.05 \
    -metrics-epoch 2000 -metrics-out "$sweepdir/series1.json" \
    > /dev/null 2> "$sweepdir/sim1.log"
"$sweepdir/spsim" -bench x264 -pred sp -scale 0.05 \
    -metrics-epoch 2000 -metrics-out "$sweepdir/series2.json" \
    > /dev/null 2> "$sweepdir/sim2.log"
cmp "$sweepdir/series1.json" "$sweepdir/series2.json" || {
    echo "spstat: same-seed metrics series differ" >&2
    exit 1
}
"$sweepdir/spstat" -validate "$sweepdir/series1.json" | grep -q "valid series" || {
    echo "spstat: series failed validation" >&2
    exit 1
}
"$sweepdir/spstat" -format json "$sweepdir/series1.json" > /dev/null || {
    echo "spstat: series JSON re-emit failed" >&2
    exit 1
}
mkdir -p results
"$sweepdir/spstat" -bench -bench-scale 0.05 -bench-out results/BENCH_metrics.json || {
    echo "spstat: overhead benchmark failed" >&2
    exit 1
}

echo "== bench smoke (compile + run every benchmark once)"
go test -bench=. -benchtime=1x -run='^$' ./... > "$sweepdir/bench.log" 2>&1 || {
    echo "bench smoke failed:" >&2
    cat "$sweepdir/bench.log" >&2
    exit 1
}

echo "== spbench core benchmark (results/BENCH_core.json refresh)"
go build -o "$sweepdir/spbench" ./cmd/spbench
"$sweepdir/spbench" -core-bench -core-out results/BENCH_core.json || {
    echo "spbench: core benchmark failed" >&2
    exit 1
}

echo "check.sh: all gates passed"
