#!/bin/sh
# check.sh — the repository's CI gate. Chains every static and dynamic
# verification, in cheapest-first order:
#
#   gofmt -l      formatting
#   go vet        stock correctness vet
#   go build      compilation
#   spvet         invariant analysis (internal/lint): maprange, wallclock,
#                 goroutine, floatorder, exhaustive, noalloc, obspure,
#                 poolescape, allow — run against the checked-in baseline
#                 (.spvet-baseline.json, which must stay empty for sim
#                 packages), plus a -json smoke asserting zero new errors
#   noalloc gate  the //spcoh:noalloc annotation set must stay consistent
#                 with the AllocsPerRun ceilings the unit tests enforce
#                 (TestNoallocAnnotationConsistency)
#   go test       full unit/integration suite, including the runtime
#                 determinism harness (TestDeterministicReplay)
#   go test -race race detector on the packages exercising concurrency-safe
#                 surfaces (the simulator itself is single-threaded by
#                 design; spvet's goroutine check enforces that statically)
#   spsweep smoke quick-scale sweep end to end: run, resume (must recall
#                 every cell from the store), byte-compare the merged
#                 outputs, status must report all cells complete
#   spsweepd smoke the sweep job server end to end: daemon on an ephemeral
#                 port with bearer-token auth enabled, the same tiny matrix
#                 submitted over HTTP and executed by two concurrent remote
#                 `spsweep work` processes, merged results byte-compared
#                 against a local `spsweep run -jobs 1` of the same matrix;
#                 a tokenless request must bounce with 401
#   xval smoke    two-speed cross-validation end to end: a tiny matrix in
#                 both detailed and fast mode, the divergence report
#                 (-no-timing) byte-compared between a fresh parallel run
#                 and a fully-cached serial rerun
#   spscen smoke  scenario layer end to end: the embedded profile specs
#                 validate and build, a 50-seed generator fuzz sweep
#                 (validity + determinism + buildability), and a generated
#                 spec piped through spsim -spec twice must render
#                 byte-identically
#   spstat smoke  metrics pipeline end to end: a small instrumented run
#                 twice (series must be byte-identical), spstat -validate
#                 (epochs monotone/contiguous), JSON decode, and the
#                 collector-overhead benchmark into results/BENCH_metrics.json
#   bench smoke   every testing.B benchmark compiled and run once
#                 (-benchtime=1x) so benchmark code cannot rot, then
#                 spbench -core-bench refreshes results/BENCH_core.json
#                 with -core-gate 50: the run fails only when aggregate
#                 cycles/s falls >50% below the rolling baseline (median
#                 of recent history) — generous enough that wall noise on
#                 shared boxes cannot trip it, tight enough to catch a
#                 real engine regression; allocation regressions are gated
#                 by the AllocsPerRun ceilings inside go test (DESIGN.md §11)
#
# Any gate failing exits non-zero.
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt"
fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
    echo "gofmt needed on:" >&2
    echo "$fmt" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

sweepdir=$(mktemp -d)
daemon=""
trap '[ -n "$daemon" ] && kill "$daemon" 2>/dev/null; rm -rf "$sweepdir"' EXIT

echo "== spvet (invariant analysis, baseline-gated)"
go run ./cmd/spvet -baseline .spvet-baseline.json ./...
go run ./cmd/spvet -baseline .spvet-baseline.json -json ./... > "$sweepdir/spvet.json"
grep -q '"new_errors": 0' "$sweepdir/spvet.json" || {
    echo "spvet: -json report has new errors:" >&2
    cat "$sweepdir/spvet.json" >&2
    exit 1
}

echo "== noalloc annotation consistency"
go test -run TestNoallocAnnotationConsistency -count=1 ./internal/lint

echo "== go test"
go test ./...

echo "== go test -race"
go test -race ./internal/event ./internal/lint ./internal/sim \
    ./internal/stats ./internal/trace ./internal/workload
go test -race -short ./internal/experiments ./internal/sweep ./internal/sweepd

echo "== spsweep smoke (run / resume / status)"
go build -o "$sweepdir/spsweep" ./cmd/spsweep
"$sweepdir/spsweep" run -bench x264,streamcluster -kinds dir,sp \
    -scales 0.05 -jobs 2 -dir "$sweepdir/store" \
    -summary "$sweepdir/summary.json" -format json \
    > "$sweepdir/run1.json" 2> "$sweepdir/run1.log"
"$sweepdir/spsweep" resume -jobs 4 -dir "$sweepdir/store" \
    -summary "" -format json \
    > "$sweepdir/run2.json" 2> "$sweepdir/run2.log"
cmp "$sweepdir/run1.json" "$sweepdir/run2.json" || {
    echo "spsweep: resumed output differs from first run" >&2
    exit 1
}
grep -q "4 cached, 0 executed, 0 failed" "$sweepdir/run2.log" || {
    echo "spsweep: resume re-executed completed jobs:" >&2
    cat "$sweepdir/run2.log" >&2
    exit 1
}
"$sweepdir/spsweep" status -dir "$sweepdir/store" | grep -q "4/4 complete, 0 pending" || {
    echo "spsweep: status does not report a complete store" >&2
    exit 1
}

echo "== spsweepd smoke (server sweep via two remote workers == local run)"
# Reference: the same matrix through the local engine, one worker.
"$sweepdir/spsweep" run -bench x264,streamcluster -kinds dir,sp \
    -scales 0.05 -jobs 1 -dir "$sweepdir/localstore" \
    -summary "" -format json \
    > "$sweepdir/local.json" 2> "$sweepdir/local.log"
go build -o "$sweepdir/spsweepd" ./cmd/spsweepd
token="checksh-$$"
"$sweepdir/spsweepd" -addr 127.0.0.1:0 -addr-file "$sweepdir/addr" \
    -dir "$sweepdir/serverstore" -workers 0 -lease-ttl 30s -quiet \
    -token "$token" \
    2> "$sweepdir/spsweepd.log" &
daemon=$!
i=0
while [ ! -s "$sweepdir/addr" ] && [ "$i" -lt 100 ]; do sleep 0.1; i=$((i+1)); done
[ -s "$sweepdir/addr" ] || {
    echo "spsweepd: daemon never wrote its address file" >&2
    cat "$sweepdir/spsweepd.log" >&2
    exit 1
}
server="http://$(cat "$sweepdir/addr")"
# Tokenless requests must bounce off the auth middleware with 401.
if "$sweepdir/spsweep" status -server "$server" 2> "$sweepdir/noauth.log"; then
    echo "spsweepd: tokenless status succeeded against a token-protected daemon" >&2
    exit 1
fi
grep -q "bearer token" "$sweepdir/noauth.log" || {
    echo "spsweepd: tokenless rejection not diagnosable:" >&2
    cat "$sweepdir/noauth.log" >&2
    exit 1
}
"$sweepdir/spsweep" run -server "$server" -token "$token" \
    -bench x264,streamcluster -kinds dir,sp \
    -scales 0.05 -format json \
    > "$sweepdir/server.json" 2> "$sweepdir/serverrun.log" &
submit=$!
"$sweepdir/spsweep" work -server "$server" -token "$token" -jobs 1 -poll 100ms -drain \
    2> "$sweepdir/worker1.log" &
w1=$!
"$sweepdir/spsweep" work -server "$server" -token "$token" -jobs 1 -poll 100ms -drain \
    2> "$sweepdir/worker2.log" &
w2=$!
wait "$w1" || { echo "spsweepd: worker 1 failed" >&2; cat "$sweepdir/worker1.log" >&2; exit 1; }
wait "$w2" || { echo "spsweepd: worker 2 failed" >&2; cat "$sweepdir/worker2.log" >&2; exit 1; }
wait "$submit" || {
    echo "spsweepd: server-mode run failed" >&2
    cat "$sweepdir/serverrun.log" >&2
    exit 1
}
cmp "$sweepdir/server.json" "$sweepdir/local.json" || {
    echo "spsweepd: server-merged results differ from the local run" >&2
    exit 1
}
# The two workers together executed every cell exactly once (cells are
# fast, so which worker wins each lease is a race — the count is not).
ok1=$(grep -c ": ok" "$sweepdir/worker1.log" || true)
ok2=$(grep -c ": ok" "$sweepdir/worker2.log" || true)
if [ "$((ok1 + ok2))" -ne 4 ]; then
    echo "spsweepd: workers executed $ok1+$ok2 cells, want 4" >&2
    cat "$sweepdir/worker1.log" "$sweepdir/worker2.log" >&2
    exit 1
fi
"$sweepdir/spsweep" status -server "$server" -token "$token" | grep -q "0 pending, 0 leased" || {
    echo "spsweepd: server status not terminal" >&2
    exit 1
}
"$sweepdir/spsweep" results -server "$server" -token "$token" -format json > "$sweepdir/results.json"
cmp "$sweepdir/results.json" "$sweepdir/local.json" || {
    echo "spsweepd: results subcommand bytes differ from the local run" >&2
    exit 1
}
kill "$daemon"
wait "$daemon" 2>/dev/null || true
daemon=""

echo "== xval smoke (two-speed cross-validation determinism)"
"$sweepdir/spsweep" xval -bench x264,streamcluster -kinds dir,sp \
    -scales 0.05 -jobs 2 -dir "$sweepdir/xvalstore" \
    -out "$sweepdir/xval1.json" -no-timing \
    > /dev/null 2> "$sweepdir/xval1.log"
"$sweepdir/spsweep" xval -bench x264,streamcluster -kinds dir,sp \
    -scales 0.05 -jobs 1 -dir "$sweepdir/xvalstore" \
    -out "$sweepdir/xval2.json" -no-timing \
    > "$sweepdir/xval2.txt" 2> "$sweepdir/xval2.log"
cmp "$sweepdir/xval1.json" "$sweepdir/xval2.json" || {
    echo "xval: divergence report differs between a fresh parallel run and a cached serial rerun" >&2
    exit 1
}
grep -q "cached" "$sweepdir/xval2.log" || {
    echo "xval: second run did not recall cells from the store" >&2
    cat "$sweepdir/xval2.log" >&2
    exit 1
}
grep -q "cells: 4" "$sweepdir/xval2.txt" || {
    echo "xval: report does not cover the matrix:" >&2
    cat "$sweepdir/xval2.txt" >&2
    exit 1
}

echo "== spscen smoke (builtin specs / generator fuzz / spec replay determinism)"
go build -o "$sweepdir/spscen" ./cmd/spscen
go build -o "$sweepdir/spsim" ./cmd/spsim
"$sweepdir/spscen" validate -builtin
"$sweepdir/spscen" fuzz -n 50 -seed 1
"$sweepdir/spscen" gen -seed 7 > "$sweepdir/fuzz7.json"
"$sweepdir/spsim" -spec "$sweepdir/fuzz7.json" -pred sp > "$sweepdir/spec1.txt"
"$sweepdir/spscen" gen -seed 7 | "$sweepdir/spsim" -spec - -pred sp > "$sweepdir/spec2.txt"
cmp "$sweepdir/spec1.txt" "$sweepdir/spec2.txt" || {
    echo "spscen: generated-spec replay is not deterministic" >&2
    exit 1
}

echo "== shard determinism (spsim -shards 4 == serial, profiles + generated spec)"
for b in ocean x264; do
    "$sweepdir/spsim" -bench "$b" -pred sp -scale 0.05 -shards 1 > "$sweepdir/shard1.txt"
    "$sweepdir/spsim" -bench "$b" -pred sp -scale 0.05 -shards 4 > "$sweepdir/shard4.txt"
    cmp "$sweepdir/shard1.txt" "$sweepdir/shard4.txt" || {
        echo "spsim: -shards 4 output differs from serial on $b" >&2
        exit 1
    }
done
"$sweepdir/spsim" -spec "$sweepdir/fuzz7.json" -pred sp -shards 4 > "$sweepdir/spec4.txt"
cmp "$sweepdir/spec1.txt" "$sweepdir/spec4.txt" || {
    echo "spsim: -shards 4 output differs from serial on the generated spec" >&2
    exit 1
}

echo "== spstat smoke (metrics series determinism / validate / overhead)"
go build -o "$sweepdir/spstat" ./cmd/spstat
"$sweepdir/spsim" -bench x264 -pred sp -scale 0.05 \
    -metrics-epoch 2000 -metrics-out "$sweepdir/series1.json" \
    > /dev/null 2> "$sweepdir/sim1.log"
"$sweepdir/spsim" -bench x264 -pred sp -scale 0.05 \
    -metrics-epoch 2000 -metrics-out "$sweepdir/series2.json" \
    > /dev/null 2> "$sweepdir/sim2.log"
cmp "$sweepdir/series1.json" "$sweepdir/series2.json" || {
    echo "spstat: same-seed metrics series differ" >&2
    exit 1
}
"$sweepdir/spstat" -validate "$sweepdir/series1.json" | grep -q "valid series" || {
    echo "spstat: series failed validation" >&2
    exit 1
}
"$sweepdir/spstat" -format json "$sweepdir/series1.json" > /dev/null || {
    echo "spstat: series JSON re-emit failed" >&2
    exit 1
}
mkdir -p results
"$sweepdir/spstat" -bench -bench-scale 0.05 -bench-out results/BENCH_metrics.json || {
    echo "spstat: overhead benchmark failed" >&2
    exit 1
}

echo "== bench smoke (compile + run every benchmark once)"
go test -bench=. -benchtime=1x -run='^$' ./... > "$sweepdir/bench.log" 2>&1 || {
    echo "bench smoke failed:" >&2
    cat "$sweepdir/bench.log" >&2
    exit 1
}

echo "== spbench core benchmark (results/BENCH_core.json refresh, rolling-baseline gate)"
go build -o "$sweepdir/spbench" ./cmd/spbench
"$sweepdir/spbench" -core-bench -core-out results/BENCH_core.json -core-gate 50 || {
    echo "spbench: core benchmark failed (or regressed past the rolling-baseline gate)" >&2
    exit 1
}

echo "== spbench scale matrix smoke (mesh x shards record, throwaway path)"
# A fast pass over the full (mesh x shards) matrix proves the mode works;
# the curated results/BENCH_scale.json is refreshed deliberately, not here.
"$sweepdir/spbench" -scale-bench -scale-runs 1 -scale-scale 0.005 \
    -scale-out "$sweepdir/scale.json" 2> "$sweepdir/scale.log" || {
    echo "spbench: scale matrix smoke failed:" >&2
    cat "$sweepdir/scale.log" >&2
    exit 1
}
grep -q '"mesh": "16x16"' "$sweepdir/scale.json" || {
    echo "spbench: scale matrix record is missing the 16x16 mesh:" >&2
    cat "$sweepdir/scale.json" >&2
    exit 1
}

echo "check.sh: all gates passed"
