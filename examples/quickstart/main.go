// Quickstart: run one benchmark under the baseline directory protocol and
// under SP-prediction, and print the headline comparison the paper makes
// (miss latency, execution time, prediction accuracy, bandwidth cost).
package main

import (
	"fmt"
	"log"
	"sort"

	"spcoh"
)

func main() {
	const bench = "ocean"

	base, err := spcoh.RunBenchmark(bench, spcoh.Options{Predictor: spcoh.Directory, Scale: 0.5})
	if err != nil {
		log.Fatal(err)
	}
	sp, err := spcoh.RunBenchmark(bench, spcoh.Options{Predictor: spcoh.SP, Scale: 0.5})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("benchmark: %s (16-core CMP, MESIF directory)\n\n", bench)
	fmt.Printf("%-28s %12s %12s\n", "", "directory", "SP-predictor")
	fmt.Printf("%-28s %12d %12d\n", "execution cycles", base.Cycles, sp.Cycles)
	fmt.Printf("%-28s %12.1f %12.1f\n", "avg miss latency (cycles)", base.AvgMissLatency, sp.AvgMissLatency)
	fmt.Printf("%-28s %12.0f%% %11.0f%%\n", "communicating misses", 100*base.CommRatio, 100*sp.CommRatio)
	fmt.Printf("%-28s %12s %11.0f%%\n", "prediction accuracy", "-", 100*sp.PredictionAccuracy)
	fmt.Printf("%-28s %12d %12d\n", "interconnect KB", base.NetworkBytes/1024, sp.NetworkBytes/1024)
	fmt.Printf("%-28s %12d %12d\n", "predictor storage (bits)", base.StorageBits, sp.StorageBits)

	fmt.Printf("\nmiss latency reduced by %.1f%%, execution time by %.1f%%\n",
		100*(1-sp.AvgMissLatency/base.AvgMissLatency),
		100*(1-float64(sp.Cycles)/float64(base.Cycles)))
	fmt.Println("\naccuracy by information source (fraction of communicating misses):")
	srcs := make([]string, 0, len(sp.AccuracyBySource))
	for src := range sp.AccuracyBySource { //spvet:ordered — sorted below
		srcs = append(srcs, src)
	}
	sort.Strings(srcs)
	for _, src := range srcs {
		fmt.Printf("  %-10s %5.1f%%\n", src, 100*sp.AccuracyBySource[src])
	}
}
