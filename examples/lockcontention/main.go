// Lockcontention: a migratory critical-section workload — the pattern
// behind the paper's projection that SP-prediction handles lock-based
// commercial workloads (§5.5): the lock entry in the SP-table recalls the
// last holders, so the requester forwards straight to the previous owner's
// cache for both the lock line and the protected data.
package main

import (
	"fmt"
	"log"

	"spcoh"
)

func build(iters, locksN int) (*spcoh.Program, error) {
	const threads = 16
	pb := spcoh.NewProgram("lockcontention", threads)
	pb.DeclareBarriers(1)
	pb.DeclareLocks(locksN)
	cursors := make([]int, threads)
	for it := 0; it < iters; it++ {
		pb.Barrier(0)
		pb.ForAll(func(t *spcoh.Thread) {
			// Fine-grain locking: each thread visits two locks per round,
			// rotating so holders migrate between cores.
			t.CriticalSection((t.ID()+it)%locksN, 8)
			t.CriticalSection((t.ID()+it+locksN/2)%locksN, 8)
			t.PrivateWork(4, &cursors[t.ID()])
			t.Compute(300)
		})
	}
	return pb.Build()
}

func main() {
	fmt.Println("migratory critical sections, 16 threads, 20 fine-grain locks")
	fmt.Printf("%-10s %10s %10s %10s\n", "predictor", "cycles", "missLat", "accuracy")
	for _, kind := range []spcoh.PredictorKind{spcoh.Directory, spcoh.SP, spcoh.Uni} {
		prog, err := build(80, 20)
		if err != nil {
			log.Fatal(err)
		}
		m, err := spcoh.RunProgram(prog, spcoh.Options{Predictor: kind})
		if err != nil {
			log.Fatal(err)
		}
		acc := "-"
		if m.PredictionAccuracy > 0 {
			acc = fmt.Sprintf("%.0f%%", 100*m.PredictionAccuracy)
		}
		fmt.Printf("%-10s %10d %10.1f %10s\n", kind, m.Cycles, m.AvgMissLatency, acc)
	}
	fmt.Println("\nlock sync-points give the SP-table the sequence of previous lock")
	fmt.Println("holders; misses inside each critical section are forwarded to them")
}
