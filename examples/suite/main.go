// Suite: sweep all 17 benchmark stand-ins with the SP-predictor and print
// the per-benchmark summary — a miniature of the paper's evaluation
// section driven purely through the public API.
package main

import (
	"fmt"
	"log"

	"spcoh"
)

func main() {
	fmt.Printf("%-15s %6s %8s %9s %9s %8s\n",
		"benchmark", "comm%", "misses", "missLat", "accuracy", "speedup")
	for _, bench := range spcoh.Benchmarks() {
		base, err := spcoh.RunBenchmark(bench, spcoh.Options{Scale: 0.5})
		if err != nil {
			log.Fatal(err)
		}
		sp, err := spcoh.RunBenchmark(bench, spcoh.Options{Predictor: spcoh.SP, Scale: 0.5})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-15s %5.0f%% %8d %9.1f %8.0f%% %7.1f%%\n",
			bench, 100*sp.CommRatio, sp.Misses, sp.AvgMissLatency,
			100*sp.PredictionAccuracy,
			100*(1-float64(sp.Cycles)/float64(base.Cycles)))
	}
}
