// Stencil: build a custom double-buffered halo-exchange program with the
// public ProgramBuilder — the canonical workload the paper's introduction
// motivates (stable producer-consumer neighbors) — and compare every
// predictor on it.
package main

import (
	"fmt"
	"log"

	"spcoh"
)

// buildStencil constructs a 16-thread red-black stencil: odd iterations
// exchange with distance-1 neighbors, even with distance-2, producing the
// stride-2 repetitive hot-set pattern of the paper's Figure 6(c).
func buildStencil(iters int) (*spcoh.Program, error) {
	const threads = 16
	pb := spcoh.NewProgram("stencil", threads)
	pb.DeclareBarriers(2)
	cursors := make([]int, threads)
	for it := 0; it < iters; it++ {
		d := 1 + it%2
		pb.Barrier(0)
		pb.ForAll(func(t *spcoh.Thread) {
			t.Produce(0, (t.ID()+d)%threads, 8)
			t.PrivateWork(6, &cursors[t.ID()])
			t.Compute(200)
		})
		pb.Barrier(1)
		pb.ForAll(func(t *spcoh.Thread) {
			t.Consume(0, (t.ID()+threads-d)%threads, 8)
			t.PrivateWork(6, &cursors[t.ID()])
			t.Compute(200)
		})
	}
	return pb.Build()
}

func main() {
	fmt.Println("red-black stencil, 16 threads, 60 iterations")
	fmt.Printf("%-10s %10s %10s %10s %12s\n", "predictor", "cycles", "missLat", "accuracy", "storage bits")
	for _, kind := range []spcoh.PredictorKind{
		spcoh.Directory, spcoh.SP, spcoh.Addr, spcoh.Inst, spcoh.Uni, spcoh.Broadcast,
	} {
		prog, err := buildStencil(60)
		if err != nil {
			log.Fatal(err)
		}
		m, err := spcoh.RunProgram(prog, spcoh.Options{Predictor: kind})
		if err != nil {
			log.Fatal(err)
		}
		acc := "-"
		if m.PredictionAccuracy > 0 {
			acc = fmt.Sprintf("%.0f%%", 100*m.PredictionAccuracy)
		}
		fmt.Printf("%-10s %10d %10.1f %10s %12d\n", kind, m.Cycles, m.AvgMissLatency, acc, m.StorageBits)
	}
	fmt.Println("\nthe SP-predictor tracks the alternating neighbor pattern via its")
	fmt.Println("stride-2 policy; ADDR/INST need far larger tables for the same effect")
}
