package spcoh

import (
	"fmt"

	"spcoh/internal/arch"
	"spcoh/internal/workload"
)

// Program is a multithreaded workload runnable with RunProgram. Build one
// with NewProgram, or use a named benchmark via RunBenchmark.
type Program struct {
	p *workload.Program
}

// Threads returns the program's thread count.
func (p *Program) Threads() int { return p.p.NumThreads() }

// Ops returns the total operation count across threads.
func (p *Program) Ops() int { return p.p.TotalOps() }

// ProgramBuilder assembles a custom multithreaded program against the
// public API: barrier/lock-structured phases over shared regions, with the
// same static-identity discipline the built-in benchmarks use (sync-point
// IDs and instruction PCs are fixed per call site, so dynamic instances of
// an epoch are recognizable to the predictors).
type ProgramBuilder struct {
	b        *workload.Builder
	threads  int
	barriers []uint64
	locks    []int
	finished bool
}

// NewProgram starts a program with the given thread count (must match the
// simulated machine: 16 for the default mesh).
func NewProgram(name string, threads int) *ProgramBuilder {
	return &ProgramBuilder{b: workload.NewBuilder(name, threads, 1), threads: threads}
}

// DeclareBarriers allocates n static barrier sites, returned as indices
// 0..n-1 for use with Barrier. Call once, before building iterations.
func (pb *ProgramBuilder) DeclareBarriers(n int) {
	pb.barriers = pb.b.Barriers(n)
}

// DeclareLocks allocates n static locks for use with CriticalSection.
func (pb *ProgramBuilder) DeclareLocks(n int) {
	pb.locks = pb.b.Locks(n)
}

// Barrier makes every thread cross static barrier site i.
func (pb *ProgramBuilder) Barrier(i int) {
	pb.b.Bar(pb.barriers[i])
}

// Thread exposes per-thread work inside the current epoch.
type Thread struct {
	t  *workload.T
	pb *ProgramBuilder
}

// ID returns the thread index.
func (t *Thread) ID() int { return t.t.Tid() }

// Compute burns n cycles of processor work.
func (t *Thread) Compute(n int) { t.t.Compute(n) }

// Produce writes this thread's output partition destined for consumer in
// the given shared region (partitioned producer-consumer exchange; see the
// workload package).
func (t *Thread) Produce(region, consumer, lines int) {
	t.t.Produce(region, consumer, lines, lines)
}

// Consume reads this thread's partition of producer's slice.
func (t *Thread) Consume(region, producer, lines int) {
	t.t.Consume(region, producer, lines, lines+lines/2)
}

// PrivateWork issues n private-heap accesses over a streaming working set
// (cache-missing, non-communicating).
func (t *Thread) PrivateWork(n int, cursor *int) {
	t.t.Private(n, 1<<20, cursor)
}

// CriticalSection acquires static lock i, performs n read/write accesses
// on its protected region (a per-lock line range), and releases it.
func (t *Thread) CriticalSection(i, n int) {
	t.t.CS(t.pb.locks[i], 7, 4, n)
}

// ForAll runs body once per thread within the current epoch.
func (pb *ProgramBuilder) ForAll(body func(t *Thread)) {
	pb.b.ForAll(func(wt *workload.T) { body(&Thread{t: wt, pb: pb}) })
}

// Build finalizes the program.
func (pb *ProgramBuilder) Build() (*Program, error) {
	if pb.finished {
		return nil, fmt.Errorf("spcoh: program already built")
	}
	if pb.threads <= 0 || pb.threads > arch.MaxNodes {
		return nil, fmt.Errorf("spcoh: invalid thread count %d", pb.threads)
	}
	pb.finished = true
	return &Program{p: pb.b.Finish(len(pb.barriers), len(pb.locks))}, nil
}
