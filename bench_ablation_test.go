// Ablation benchmarks for the SP-predictor design choices DESIGN.md §5
// calls out: hot-set threshold, history depth, stride detection,
// confidence/recovery, warm-up, noise filter, lock-entry sharing and the
// ADDR predictor's macroblock size. Each reports accuracy (and where
// relevant, bandwidth) as custom metrics.
package spcoh_test

import (
	"fmt"
	"testing"

	"spcoh/internal/arch"
	"spcoh/internal/core"
	"spcoh/internal/predictor"
	"spcoh/internal/sim"
	"spcoh/internal/workload"
)

// ablationRun runs one benchmark with a custom SP configuration and
// reports accuracy and added bandwidth.
func ablationRun(b *testing.B, bench string, mutate func(*core.Config)) {
	b.Helper()
	prof, err := workload.ByName(bench)
	if err != nil {
		b.Fatal(err)
	}
	scale := 0.5
	if testing.Short() {
		scale = 0.15
	}
	prog := prof.Build(16, scale, 42)
	var acc, predTargets float64
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig(16)
		if mutate != nil {
			mutate(&cfg)
		}
		opt := sim.DefaultOptions()
		opt.Predictors = core.NewSystem(cfg)
		res, err := sim.Run(prog, opt)
		if err != nil {
			b.Fatal(err)
		}
		acc = 100 * res.Nodes.Accuracy()
		if res.Nodes.Predicted > 0 {
			predTargets = float64(res.Nodes.PredTargets) / float64(res.Nodes.Predicted)
		}
	}
	b.ReportMetric(acc, "accuracy-%")
	b.ReportMetric(predTargets, "pred-targets/miss")
}

func BenchmarkAblationHotThreshold(b *testing.B) {
	for _, th := range []float64{0.05, 0.10, 0.20} {
		b.Run(fmt.Sprintf("threshold=%.2f", th), func(b *testing.B) {
			ablationRun(b, "water-ns", func(c *core.Config) { c.HotThreshold = th })
		})
	}
}

func BenchmarkAblationHistoryDepth(b *testing.B) {
	for _, d := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			ablationRun(b, "ocean", func(c *core.Config) { c.HistoryDepth = d })
		})
	}
}

func BenchmarkAblationStrideDetect(b *testing.B) {
	for _, on := range []bool{false, true} {
		b.Run(fmt.Sprintf("stride=%v", on), func(b *testing.B) {
			// ocean's red-black sweeps are the stride-2 pattern.
			ablationRun(b, "ocean", func(c *core.Config) { c.StrideDetect = on })
		})
	}
}

func BenchmarkAblationConfidence(b *testing.B) {
	for _, max := range []int{0, 3, 15} {
		max := max
		b.Run(fmt.Sprintf("confMax=%d", max), func(b *testing.B) {
			// radiosity's random patterns exercise recovery.
			ablationRun(b, "radiosity", func(c *core.Config) {
				if max == 0 {
					c.ConfidenceMax = 1 << 30 // effectively never recover
				} else {
					c.ConfidenceMax = max
				}
			})
		})
	}
}

func BenchmarkAblationWarmup(b *testing.B) {
	for _, w := range []int{4, 8, 30} {
		b.Run(fmt.Sprintf("warmup=%d", w), func(b *testing.B) {
			// fft's unreplayed epochs rely on d=0 prediction.
			ablationRun(b, "fft", func(c *core.Config) { c.WarmupMisses = w })
		})
	}
}

func BenchmarkAblationNoiseFilter(b *testing.B) {
	for _, min := range []int{0, 4, 12} {
		b.Run(fmt.Sprintf("noiseMin=%d", min), func(b *testing.B) {
			ablationRun(b, "fmm", func(c *core.Config) { c.NoiseMinComm = min })
		})
	}
}

// BenchmarkAblationLockSharing compares the paper's shared lock entries
// against private per-processor lock history: without sharing, a core
// cannot learn who held the lock last.
func BenchmarkAblationLockSharing(b *testing.B) {
	run := func(b *testing.B, shared bool) {
		prof, _ := workload.ByName("water-ns")
		prog := prof.Build(16, 0.5, 42)
		var acc float64
		for i := 0; i < b.N; i++ {
			cfg := core.DefaultConfig(16)
			var preds []predictor.Predictor
			if shared {
				preds = core.NewSystem(cfg)
			} else {
				preds = make([]predictor.Predictor, 16)
				for j := range preds {
					preds[j] = core.NewPredictor(cfg, arch.NodeID(j), nil) // private tables
				}
			}
			opt := sim.DefaultOptions()
			opt.Predictors = preds
			res, err := sim.Run(prog, opt)
			if err != nil {
				b.Fatal(err)
			}
			acc = 100 * res.Nodes.Accuracy()
		}
		b.ReportMetric(acc, "accuracy-%")
	}
	b.Run("shared", func(b *testing.B) { run(b, true) })
	b.Run("private", func(b *testing.B) { run(b, false) })
}

// BenchmarkAblationMacroblock sweeps the ADDR predictor's indexing
// granularity (64B line vs the paper's 256B macroblock vs 1KB).
func BenchmarkAblationMacroblock(b *testing.B) {
	for _, bits := range []int{6, 8, 10} {
		bits := bits
		b.Run(fmt.Sprintf("granularity=%dB", 1<<bits), func(b *testing.B) {
			prof, _ := workload.ByName("ocean")
			prog := prof.Build(16, 0.5, 42)
			var acc float64
			var storage int
			for i := 0; i < b.N; i++ {
				preds := make([]predictor.Predictor, 16)
				for j := range preds {
					cfg := predictor.DefaultAddrConfig(16)
					cfg.IndexGranularityBits = bits
					preds[j] = predictor.NewGroup("ADDR", arch.NodeID(j), cfg)
				}
				opt := sim.DefaultOptions()
				opt.Predictors = preds
				res, err := sim.Run(prog, opt)
				if err != nil {
					b.Fatal(err)
				}
				acc = 100 * res.Nodes.Accuracy()
				storage = res.StorageBits / 16
			}
			b.ReportMetric(acc, "accuracy-%")
			b.ReportMetric(float64(storage), "bits/node")
		})
	}
}

// BenchmarkExtensionSnoopFilter measures the §5.3 orthogonal technique:
// SP behind a region snoop filter should cut the wasted prediction
// bandwidth of Figure 9 without losing accuracy.
func BenchmarkExtensionSnoopFilter(b *testing.B) {
	run := func(b *testing.B, filtered bool) {
		prof, _ := workload.ByName("radix") // large non-communicating fraction
		prog := prof.Build(16, 0.5, 42)
		var acc, kb float64
		for i := 0; i < b.N; i++ {
			preds := core.NewSystem(core.DefaultConfig(16))
			if filtered {
				for j := range preds {
					preds[j] = predictor.NewRegionFilter(preds[j])
				}
			}
			opt := sim.DefaultOptions()
			opt.Predictors = preds
			res, err := sim.Run(prog, opt)
			if err != nil {
				b.Fatal(err)
			}
			acc = 100 * res.Nodes.Accuracy()
			kb = float64(res.Net.Bytes) / 1024
		}
		b.ReportMetric(acc, "accuracy-%")
		b.ReportMetric(kb, "net-KB")
	}
	b.Run("sp", func(b *testing.B) { run(b, false) })
	b.Run("sp+filter", func(b *testing.B) { run(b, true) })
}

// BenchmarkExtensionOwnerPolicy compares the group policy against the
// owner and group/owner policies of the destination-set design space.
func BenchmarkExtensionOwnerPolicy(b *testing.B) {
	for _, pol := range []struct {
		name string
		p    predictor.Policy
	}{{"group", predictor.PolicyGroup}, {"owner", predictor.PolicyOwner}, {"group-owner", predictor.PolicyGroupOwner}} {
		pol := pol
		b.Run(pol.name, func(b *testing.B) {
			prof, _ := workload.ByName("water-ns")
			prog := prof.Build(16, 0.5, 42)
			var acc, kb float64
			for i := 0; i < b.N; i++ {
				preds := make([]predictor.Predictor, 16)
				for j := range preds {
					cfg := predictor.DefaultAddrConfig(16)
					cfg.Policy = pol.p
					preds[j] = predictor.NewGroup("ADDR", arch.NodeID(j), cfg)
				}
				opt := sim.DefaultOptions()
				opt.Predictors = preds
				res, err := sim.Run(prog, opt)
				if err != nil {
					b.Fatal(err)
				}
				acc = 100 * res.Nodes.Accuracy()
				kb = float64(res.Net.Bytes) / 1024
			}
			b.ReportMetric(acc, "accuracy-%")
			b.ReportMetric(kb, "net-KB")
		})
	}
}
