module spcoh

go 1.24
