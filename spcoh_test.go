package spcoh_test

import (
	"strings"
	"testing"

	"spcoh"
)

func TestBenchmarksList(t *testing.T) {
	b := spcoh.Benchmarks()
	if len(b) != 17 || b[0] != "fmm" || b[16] != "x264" {
		t.Fatalf("benchmarks = %v", b)
	}
}

func TestExperimentsList(t *testing.T) {
	e := spcoh.Experiments()
	if len(e) != 14 {
		t.Fatalf("experiments = %v", e)
	}
}

func TestRunBenchmarkDefaults(t *testing.T) {
	m, err := spcoh.RunBenchmark("x264", spcoh.Options{Scale: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if m.Cycles == 0 || m.Misses == 0 || m.CommRatio <= 0 {
		t.Fatalf("metrics = %+v", m)
	}
	if m.Predictor != "directory" || m.PredictionAccuracy != 0 {
		t.Fatalf("baseline should not predict: %+v", m)
	}
}

func TestRunBenchmarkSP(t *testing.T) {
	m, err := spcoh.RunBenchmark("water-ns", spcoh.Options{Predictor: spcoh.SP, Scale: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if m.PredictionAccuracy <= 0 || m.StorageBits == 0 {
		t.Fatalf("SP metrics = %+v", m)
	}
	if len(m.AccuracyBySource) == 0 {
		t.Fatal("accuracy breakdown missing")
	}
}

func TestRunBenchmarkErrors(t *testing.T) {
	if _, err := spcoh.RunBenchmark("nope", spcoh.Options{}); err == nil {
		t.Fatal("unknown benchmark must error")
	}
	if _, err := spcoh.RunBenchmark("ocean", spcoh.Options{Predictor: "bogus"}); err == nil {
		t.Fatal("unknown predictor must error")
	}
}

func TestRunBroadcast(t *testing.T) {
	m, err := spcoh.RunBenchmark("x264", spcoh.Options{Predictor: spcoh.Broadcast, Scale: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if m.Predictor != "broadcast" || m.Misses == 0 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestSPConfigOverride(t *testing.T) {
	m, err := spcoh.RunBenchmark("ocean", spcoh.Options{
		Predictor: spcoh.SP, Scale: 0.2,
		SPConfig: &spcoh.SPConfig{HistoryDepth: 1, HotThreshold: 0.2, StrideDetect: false,
			WarmupMisses: 8, NoiseMinComm: 4, ConfidenceMax: 15},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Misses == 0 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestProgramBuilder(t *testing.T) {
	pb := spcoh.NewProgram("custom", 16)
	pb.DeclareBarriers(2)
	pb.DeclareLocks(2)
	cursors := make([]int, 16)
	for it := 0; it < 10; it++ {
		pb.Barrier(0)
		pb.ForAll(func(th *spcoh.Thread) {
			th.Produce(0, (th.ID()+1)%16, 4)
			th.Compute(100)
		})
		pb.Barrier(1)
		pb.ForAll(func(th *spcoh.Thread) {
			th.Consume(0, (th.ID()+15)%16, 4)
			th.CriticalSection(th.ID()%2, 4)
			th.PrivateWork(4, &cursors[th.ID()])
		})
	}
	prog, err := pb.Build()
	if err != nil {
		t.Fatal(err)
	}
	if prog.Threads() != 16 || prog.Ops() == 0 {
		t.Fatalf("program: threads=%d ops=%d", prog.Threads(), prog.Ops())
	}
	if _, err := pb.Build(); err == nil {
		t.Fatal("double Build must error")
	}

	base, err := spcoh.RunProgram(prog, spcoh.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// A program is consumed by value semantics? No: rebuild for the SP run.
	pb2 := spcoh.NewProgram("custom", 16)
	pb2.DeclareBarriers(2)
	pb2.DeclareLocks(2)
	for it := 0; it < 10; it++ {
		pb2.Barrier(0)
		pb2.ForAll(func(th *spcoh.Thread) {
			th.Produce(0, (th.ID()+1)%16, 4)
			th.Compute(100)
		})
		pb2.Barrier(1)
		pb2.ForAll(func(th *spcoh.Thread) {
			th.Consume(0, (th.ID()+15)%16, 4)
			th.CriticalSection(th.ID()%2, 4)
			th.PrivateWork(4, &cursors[th.ID()])
		})
	}
	prog2, _ := pb2.Build()
	sp, err := spcoh.RunProgram(prog2, spcoh.Options{Predictor: spcoh.SP})
	if err != nil {
		t.Fatal(err)
	}
	if base.Misses == 0 || sp.PredictionAccuracy <= 0.3 {
		t.Fatalf("custom program: base %+v sp %+v", base, sp)
	}
}

func TestRunExperimentSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment generation is slow")
	}
	out, err := spcoh.RunExperiment("fig1", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Figure 1") || !strings.Contains(out, "x264") {
		t.Fatalf("unexpected output:\n%s", out)
	}
	if _, err := spcoh.RunExperiment("nope", 0.1); err == nil {
		t.Fatal("unknown experiment must error")
	}
}

func TestRunBenchmarkSPFiltered(t *testing.T) {
	sp, err := spcoh.RunBenchmark("radix", spcoh.Options{Predictor: spcoh.SP, Scale: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	f, err := spcoh.RunBenchmark("radix", spcoh.Options{Predictor: spcoh.SPFiltered, Scale: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if f.NetworkBytes >= sp.NetworkBytes {
		t.Fatalf("filter should cut bandwidth: %d vs %d", f.NetworkBytes, sp.NetworkBytes)
	}
	if f.PredictionAccuracy < sp.PredictionAccuracy-0.05 {
		t.Fatalf("filter should not cost accuracy: %.2f vs %.2f",
			f.PredictionAccuracy, sp.PredictionAccuracy)
	}
}

func TestFlexibleMachineSizes(t *testing.T) {
	for _, threads := range []int{4, 16} {
		m, err := spcoh.RunBenchmark("x264", spcoh.Options{Threads: threads, Scale: 0.2, Predictor: spcoh.SP})
		if err != nil {
			t.Fatalf("threads=%d: %v", threads, err)
		}
		if m.Misses == 0 {
			t.Fatalf("threads=%d: empty run", threads)
		}
	}
	if _, err := spcoh.RunBenchmark("x264", spcoh.Options{Threads: 5}); err == nil {
		t.Fatal("non-square thread count must error")
	}
}
