// Command spchar runs the paper's §3 characterization for one benchmark:
// it executes a baseline-directory run with trace capture and prints the
// sync-epoch statistics, communication locality and hot-set patterns. With
// -o it also writes the raw trace for later inspection with sptrace.
package main

import (
	"flag"
	"fmt"
	"os"

	"spcoh/internal/arch"
	"spcoh/internal/charac"
	"spcoh/internal/sim"
	"spcoh/internal/stats"
	"spcoh/internal/trace"
	"spcoh/internal/workload"
)

func main() {
	bench := flag.String("bench", "bodytrack", "benchmark name")
	scale := flag.Float64("scale", 1.0, "workload scale")
	seed := flag.Int64("seed", 42, "workload build seed")
	out := flag.String("o", "", "write the raw trace to this file")
	node := flag.Int("node", 0, "node whose distributions to print")
	flag.Parse()

	prof, err := workload.ByName(*bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	prog := prof.Build(16, *scale, *seed)

	col := &trace.Collector{}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		col.W = trace.NewWriter(f)
		defer col.W.Flush()
	}
	opt := sim.DefaultOptions()
	opt.Tracer = col
	if _, err := sim.Run(prog, opt); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if col.Err() != nil {
		fmt.Fprintln(os.Stderr, col.Err())
		os.Exit(1)
	}

	a := charac.Analyze(col.Events, 16)
	cs, se, dyn := a.EpochStats()

	t := stats.NewTable(fmt.Sprintf("%s characterization", *bench), "metric", "value")
	t.AddRowf("trace events", len(col.Events))
	t.AddRowf("L2 misses", a.TotalMisses)
	t.AddRowf("communicating ratio", a.CommRatio())
	t.AddRowf("static critical sections", cs)
	t.AddRowf("static sync-epochs", se)
	t.AddRowf("dynamic epochs/core", dyn)
	t.Render(os.Stdout)
	fmt.Println()

	cov := stats.NewTable("communication locality (cumulative % volume)",
		"granularity", "1 core", "2 cores", "4 cores", "8 cores")
	for _, g := range []struct {
		label string
		c     []float64
	}{
		{"sync-epoch", a.CoverageByEpoch()},
		{"single-interval", a.CoverageWhole()},
		{"static instruction", a.CoverageByPC()},
	} {
		cov.AddRowf(g.label, 100*g.c[0], 100*g.c[1], 100*g.c[3], 100*g.c[7])
	}
	cov.Render(os.Stdout)
	fmt.Println()

	h := a.HotSetSizes(0.10)
	hs := stats.NewTable("hot communication set sizes (10% threshold)",
		"size=1", "size=2", "size=3", "size=4", ">=5")
	hs.AddRowf(h.Fraction(1), h.Fraction(2), h.Fraction(3), h.Fraction(4), h.FractionAtLeast(5))
	hs.Render(os.Stdout)
	fmt.Println()

	pat := stats.NewTable(fmt.Sprintf("hot-set patterns at node %d", *node),
		"static epoch", "instances", "class", "stride")
	for _, id := range a.StaticEpochIDs() {
		insts := a.InstancesOf(arch.NodeID(*node), id)
		if len(insts) < 3 {
			continue
		}
		var raw []arch.SharerSet
		for _, e := range insts {
			raw = append(raw, e.HotSet(0.10))
		}
		class, stride := charac.ClassifyPattern(raw)
		pat.AddRowf(id, len(insts), class.String(), stride)
	}
	pat.Render(os.Stdout)
}
