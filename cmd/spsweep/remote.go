package main

// Server-mode subcommands: everything spsweep does against a spsweepd
// daemon instead of the local engine. The merged results a server
// returns are byte-identical to a local run of the same matrix (see
// internal/sweepd), so scripts can switch between the two freely.

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"spcoh/internal/sweep"
	"spcoh/internal/sweepd"
)

// serverTokenFlag registers the shared -token flag: the bearer token sent
// with every request to a spsweepd daemon started with -token.
func serverTokenFlag(fs *flag.FlagSet) *string {
	return fs.String("token", os.Getenv("SPSWEEPD_TOKEN"),
		"bearer token for the spsweepd server (default $SPSWEEPD_TOKEN)")
}

// serverClient builds a client carrying the token (when set).
func serverClient(server, token string) *sweepd.Client {
	c := sweepd.NewClient(server)
	if token != "" {
		c.SetToken(token)
	}
	return c
}

// submitMatrix uploads the matrix and its spec files to the server.
func submitMatrix(c *sweepd.Client, matrix sweep.Matrix) (*sweepd.SubmitResponse, error) {
	req := &sweepd.SubmitRequest{Matrix: matrix}
	for _, ref := range matrix.Specs {
		b, err := os.ReadFile(ref.Path)
		if err != nil {
			return nil, fmt.Errorf("spec %s: %w", ref.Path, err)
		}
		req.Specs = append(req.Specs, sweepd.SpecUpload{Name: ref.Name, Digest: ref.Digest, Content: b})
	}
	return c.Submit(req)
}

// serverRun submits the matrix, follows the status stream until the
// sweep is terminal (reconnecting through server restarts), then writes
// the merged results to stdout. Exit status mirrors a local run: an
// error is returned when any cell failed.
func serverRun(ctx context.Context, server, token string, matrix sweep.Matrix, format string) error {
	c := serverClient(server, token)
	sub, err := submitMatrix(c, matrix)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "spsweep: sweep %.12s submitted to %s: %d jobs (%d done, %d failed so far)\n",
		sub.SweepID, server, sub.Counts.Jobs, sub.Counts.Done, sub.Counts.Failed)

	done := 0
	var final *sweepd.Counts
	for final == nil {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("interrupted; the server keeps running the sweep — 'spsweep results -server %s -sweep %s' when it finishes", server, sub.SweepID)
		}
		err := c.StreamEvents(sub.SweepID, func(ev sweepd.Event) bool {
			switch ev.Type {
			case "job":
				done++
				state := ev.Job.State
				if ev.Job.Cached {
					state = "cached"
				}
				if ev.Job.Error != "" {
					state += ": " + ev.Job.Error
				}
				fmt.Fprintf(os.Stderr, "spsweep: [%d/%d] %-40s %6.1fs  %s\n",
					done, sub.Counts.Jobs, ev.Job.Key, ev.Job.Seconds, state)
			case "complete":
				final = ev.Counts
			}
			return ctx.Err() == nil
		})
		if err != nil && final == nil {
			// Stream dropped (server restart, network blip). The replayed
			// stream dedups nothing client-side, so reset the counter.
			fmt.Fprintf(os.Stderr, "spsweep: stream lost (%v); reconnecting\n", err)
			done = 0
			select {
			case <-ctx.Done():
			case <-time.After(2 * time.Second):
			}
		}
	}

	if err := c.Results(sub.SweepID, format, os.Stdout); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "spsweep: %d jobs: %d cached, %d done, %d failed\n",
		final.Jobs, final.Cached, final.Done, final.Failed)
	if final.Failed > 0 {
		return fmt.Errorf("%d job(s) failed", final.Failed)
	}
	return nil
}

// serverStatus prints the server's sweeps (or one sweep's jobs) and
// returns an error when any job has terminally failed, mirroring the
// local status exit-code contract.
func serverStatus(server, token, sweepID string, verbose bool) error {
	c := serverClient(server, token)
	failed := 0
	if sweepID == "" {
		list, err := c.List()
		if err != nil {
			return err
		}
		if len(list.Sweeps) == 0 {
			fmt.Println("no sweeps submitted")
			return nil
		}
		for _, s := range list.Sweeps {
			fmt.Printf("sweep %.12s: %d jobs, %d pending, %d leased, %d done (%d cached), %d failed\n",
				s.SweepID, s.Counts.Jobs, s.Counts.Pending, s.Counts.Leased, s.Counts.Done, s.Counts.Cached, s.Counts.Failed)
			failed += s.Counts.Failed
		}
	} else {
		st, err := c.Status(sweepID)
		if err != nil {
			return err
		}
		fmt.Printf("sweep %.12s: %d jobs, %d pending, %d leased, %d done (%d cached), %d failed\n",
			st.SweepID, st.Counts.Jobs, st.Counts.Pending, st.Counts.Leased, st.Counts.Done, st.Counts.Cached, st.Counts.Failed)
		for _, j := range st.Jobs {
			if !verbose && j.State == "done" {
				continue
			}
			line := fmt.Sprintf("  %-48s %s", j.Key, j.State)
			if j.Worker != "" {
				line += " worker=" + j.Worker
			}
			if j.Attempts > 0 {
				line += fmt.Sprintf(" attempts=%d", j.Attempts)
			}
			if j.Error != "" {
				line += " error=" + j.Error
			}
			fmt.Println(line)
		}
		failed = st.Counts.Failed
	}
	if failed > 0 {
		return fmt.Errorf("%d job(s) failed", failed)
	}
	return nil
}

// cmdWork is the remote worker: lease, execute, push, repeat. It is the
// same loop the daemon's in-process pool runs (sweepd.RunWorker); only
// the transport differs.
func cmdWork(args []string) error {
	fs := newFlagSet("spsweep work")
	server := fs.String("server", "", "spsweepd base URL (required)")
	jobs := fs.Int("jobs", 1, "concurrent leases (worker slots)")
	shards := fs.Int("shards", 1, "intra-run executor shards per cell (engine knob; results are byte-identical)")
	poll := fs.Duration("poll", 2*time.Second, "idle wait between lease attempts")
	timeout := fs.Duration("timeout", 0, "per-attempt wall-clock timeout (0 = none)")
	drain := fs.Bool("drain", false, "exit once the server reports no work left")
	id := fs.String("id", "", "worker identity shown in attempt histories (default host/pid)")
	token := serverTokenFlag(fs)
	fs.Parse(args)
	if *server == "" {
		return fmt.Errorf("work: -server is required")
	}
	if *id == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		*id = fmt.Sprintf("%s.%d", host, os.Getpid())
	}

	c := serverClient(*server, *token)
	if err := c.Healthz(); err != nil {
		return fmt.Errorf("work: server %s unreachable: %w", *server, err)
	}
	fmt.Fprintf(os.Stderr, "spsweep: worker %s serving %s (%d slots)\n", *id, *server, *jobs)

	ctx, stop := signalContext()
	defer stop()
	sweepd.RunWorker(ctx, c, sweepd.WorkerOptions{
		ID:      *id,
		Slots:   *jobs,
		Poll:    *poll,
		Timeout: *timeout,
		Drain:   *drain,
		Exec:    sweepd.ShardExec(*shards),
		Log: func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, "spsweep: "+format+"\n", a...)
		},
	})
	if err := ctx.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "spsweep: worker stopped")
	}
	return nil
}

// cmdResults fetches a finished sweep's merged results from a server.
func cmdResults(args []string) error {
	fs := newFlagSet("spsweep results")
	server := fs.String("server", "", "spsweepd base URL (required)")
	sweepID := fs.String("sweep", "", "sweep ID (defaults to the server's only sweep)")
	format := fs.String("format", "table", "output format: table|csv|json")
	token := serverTokenFlag(fs)
	fs.Parse(args)
	if *server == "" {
		return fmt.Errorf("results: -server is required")
	}
	c := serverClient(*server, *token)
	id := *sweepID
	if id == "" {
		list, err := c.List()
		if err != nil {
			return err
		}
		switch len(list.Sweeps) {
		case 0:
			return fmt.Errorf("results: server has no sweeps")
		case 1:
			id = list.Sweeps[0].SweepID
		default:
			return fmt.Errorf("results: server has %d sweeps; pick one with -sweep (see 'spsweep status -server %s')",
				len(list.Sweeps), *server)
		}
	}
	if err := c.Results(id, *format, os.Stdout); err != nil {
		return err
	}
	st, err := c.Status(id)
	if err != nil {
		return err
	}
	if st.Counts.Failed > 0 {
		return fmt.Errorf("%d job(s) failed", st.Counts.Failed)
	}
	return nil
}
