package main

// spsweep xval: cross-validate the fast functional model against the
// detailed cycle-level model (DESIGN.md §15). The matrix is swept twice —
// once per fidelity — through the normal sweep engine and store (the two
// fidelities are distinct cells, so both checkpoint and resume), then the
// paired reports become a per-cell divergence report: cycles ratio,
// prediction-accuracy delta, traffic delta, and whether the counts fast
// mode keeps exact actually matched. Cells diverging beyond -threshold
// are listed for detailed-mode escalation.
//
// The report (stdout table + -out JSON) is deterministic for any -jobs
// value; the wall-clock timing/speedup section is machine-dependent and
// can be omitted with -no-timing for byte-comparison across runs.

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"time"

	"spcoh/internal/sim"
	"spcoh/internal/sweep"
)

func cmdXval(args []string) error {
	fs := newFlagSet("spsweep xval")
	mf := addMatrixFlags(fs)
	jobs := fs.Int("jobs", runtime.NumCPU(), "worker pool size")
	shards := fs.Int("shards", 1, "intra-run executor shards per cell (engine knob; results are byte-identical)")
	timeout := fs.Duration("timeout", 0, "per-attempt wall-clock timeout (0 = none)")
	dir := fs.String("dir", "results/sweep", "artifact store directory")
	out := fs.String("out", "results/BENCH_xval.json", `divergence report JSON path ("" disables)`)
	threshold := fs.Float64("threshold", 0.05, "relative divergence above which a cell is escalated")
	escalate := fs.Bool("escalate", false, "rerun escalated cells in detailed mode and fold the authoritative numbers into the report")
	noTiming := fs.Bool("no-timing", false, "omit the machine-dependent timing section (byte-stable output)")
	fs.Parse(args)

	matrix, err := mf.matrix()
	if err != nil {
		return err
	}
	if matrix.Mode != "" {
		return fmt.Errorf("xval: do not set -mode; xval runs both fidelities itself")
	}
	if *threshold <= 0 {
		return fmt.Errorf("xval: threshold %g must be > 0", *threshold)
	}
	store, err := sweep.Open(*dir)
	if err != nil {
		return err
	}

	ctx, stop := signalContext()
	defer stop()

	detailed := matrix
	fast := matrix
	fast.Mode = "fast"
	run := cellRunner(*shards)
	detRep, err := xvalSweep(ctx, "detailed", detailed.Jobs(), run, store, *jobs, *timeout)
	if err != nil {
		return err
	}
	fastRep, err := xvalSweep(ctx, "fast", fast.Jobs(), run, store, *jobs, *timeout)
	if err != nil {
		return err
	}

	rep := sweep.Xval(detRep, fastRep, *threshold)
	rep.Matrix = detailed.Digest()
	if !*noTiming {
		rep.Timing = sweep.XvalTimingFrom(detRep, fastRep)
	}
	if *escalate && len(rep.Escalations) > 0 {
		// Rerun the over-threshold cells in detailed mode through the same
		// engine and store — already-checkpointed cells recall instantly,
		// failed cells get a genuine retry — and fold the authoritative
		// detailed numbers into the report.
		want := make(map[string]bool, len(rep.Escalations))
		for _, k := range rep.Escalations {
			want[k] = true
		}
		var cells []sweep.Job
		for _, j := range detailed.Jobs() {
			if want[j.Key()] {
				cells = append(cells, j)
			}
		}
		escRep, err := xvalSweep(ctx, "escalate", cells, run, store, *jobs, *timeout)
		if err != nil {
			return err
		}
		rep.FoldEscalations(escRep)
	}
	rep.FormatTable(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		if err := rep.FormatJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "spsweep: xval report written to %s\n", *out)
	}
	if failed := detRep.Failed + fastRep.Failed; failed > 0 {
		return fmt.Errorf("xval: %d cell(s) failed", failed)
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("xval: interrupted; completed cells are checkpointed in %s", *dir)
	}
	return nil
}

// xvalSweep runs one pass of the cross-validation (a fidelity's half, or
// the escalation rerun) through the shared engine and store.
func xvalSweep(ctx context.Context, label string, cells []sweep.Job, run func(sweep.Job) (*sim.Result, error), store *sweep.Store, jobs int, timeout time.Duration) (*sweep.Report, error) {
	fmt.Fprintf(os.Stderr, "spsweep: xval %s pass: %d jobs on %d workers\n", label, len(cells), jobs)
	done := 0
	opt := sweep.Options{
		Workers: jobs,
		Timeout: timeout,
		Store:   store,
		Progress: func(jr sweep.JobResult) {
			done++
			state := "ok"
			switch {
			case jr.Err != nil:
				state = "FAIL: " + jr.Err.Error()
			case jr.Cached:
				state = "cached"
			}
			fmt.Fprintf(os.Stderr, "spsweep: xval %s [%d/%d] %-40s %6.1fs  %s\n",
				label, done, len(cells), jr.Job.Key(), jr.Wall.Seconds(), state)
		},
	}
	return sweep.Run(ctx, cells, run, opt), nil
}
