// Command spsweep runs the paper's evaluation matrix — benchmark ×
// configuration × seed × scale — as independent simulation jobs on a
// bounded worker pool, checkpointing every completed cell into a resumable
// artifact store (see internal/sweep).
//
// Usage:
//
//	spsweep run    [-jobs N] [-bench all|none|a,b] [-kinds eval|all|a,b]
//	               [-specs a.json,b.json] [-seeds 42,43] [-scales 0.25]
//	               [-quick] [-threads 16] [-timeout 10m] [-retries 0]
//	               [-dir results/sweep] [-format table|csv|json]
//	               [-summary results/BENCH_sweep.json]
//	spsweep resume [-jobs N] [-timeout ...] [-retries ...] [-dir ...]
//	               [-format ...] [-summary ...]       # continue an interrupted sweep
//	spsweep status [-dir ...] | [-server URL [-sweep ID]]
//	                                                  # completion state; exits non-zero
//	                                                  # when any cell terminally failed
//	spsweep list   [matrix flags]                     # expanded jobs + digests
//	spsweep run     -server URL [matrix flags]        # submit to spsweepd, stream, merge
//	spsweep work    -server URL [-jobs N] [-drain]    # remote worker: lease/execute/push
//	spsweep results -server URL [-sweep ID]           # fetch a finished sweep's merge
//	spsweep xval    [matrix flags] [-jobs N] [-threshold 0.05]
//	                [-out results/BENCH_xval.json]    # detailed-vs-fast cross-validation
//
// Server commands take -token (default $SPSWEEPD_TOKEN) when the daemon
// requires bearer-token authentication.
//
// The merged output (stdout) is sorted by job key and byte-identical for
// any -jobs value — and, in server mode, for any worker count,
// distribution or server restart; timing and scheduling details go to
// stderr and the -summary file.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"

	"spcoh/internal/detutil"
	"spcoh/internal/experiments"
	"spcoh/internal/scenario"
	"spcoh/internal/sim"
	"spcoh/internal/sweep"
	"spcoh/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "run":
		err = cmdRun(os.Args[2:], false)
	case "resume":
		err = cmdRun(os.Args[2:], true)
	case "status":
		err = cmdStatus(os.Args[2:])
	case "list":
		err = cmdList(os.Args[2:])
	case "work":
		err = cmdWork(os.Args[2:])
	case "results":
		err = cmdResults(os.Args[2:])
	case "xval":
		err = cmdXval(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "spsweep: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "spsweep:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: spsweep <run|resume|status|list|work|results|xval> [flags]

  run     execute a sweep matrix, checkpointing each finished job
          (-server URL submits it to a spsweepd daemon instead)
  resume  continue the interrupted sweep recorded in the store's manifest
  status  report completion state of a store or a spsweepd server;
          exits non-zero when any cell terminally failed
  list    print the expanded job matrix and digests
  work    serve a spsweepd daemon as a remote worker (lease/execute/push)
  results fetch a finished sweep's merged results from a spsweepd server
  xval    cross-validate: run a matrix in both detailed and fast mode and
          report the per-cell divergence (DESIGN.md §15)

Run 'spsweep <subcommand> -h' for flags.`)
}

// matrixFlags registers the matrix-shaping flags on fs.
type matrixFlags struct {
	bench, kinds, seeds, scales *string
	specs                       *string
	threads                     *int
	quick                       *bool
	metricsEpoch                *uint64
	mode                        *string
}

func addMatrixFlags(fs *flag.FlagSet) *matrixFlags {
	return &matrixFlags{
		bench:        fs.String("bench", "all", `benchmarks: "all", "none", or comma-separated names`),
		kinds:        fs.String("kinds", "eval", `configurations: "eval" (paper §5 set), "all", or comma-separated`),
		seeds:        fs.String("seeds", "42", "comma-separated workload build seeds"),
		scales:       fs.String("scales", "1.0", "comma-separated workload scale factors"),
		specs:        fs.String("specs", "", "comma-separated scenario spec files to sweep alongside the benchmarks"),
		threads:      fs.Int("threads", 16, "threads per workload (must match the machine's node count)"),
		quick:        fs.Bool("quick", false, "shorthand for -scales 0.25"),
		metricsEpoch: fs.Uint64("metrics-epoch", 0, "metrics sampling epoch in cycles for every cell (0 = no metrics)"),
		mode:         fs.String("mode", "detailed", "simulation fidelity for every cell: detailed|fast (DESIGN.md §15)"),
	}
}

func (m *matrixFlags) matrix() (sweep.Matrix, error) {
	benches := workload.Names()
	switch *m.bench {
	case "all":
	case "none":
		benches = nil
	default:
		benches = splitList(*m.bench)
		for _, b := range benches {
			if _, err := workload.ByName(b); err != nil {
				return sweep.Matrix{}, err
			}
		}
	}
	// Spec references resolve at flag-parse time: the digest computed here
	// is the cell identity, and execution re-verifies the file against it.
	var specRefs []sweep.SpecRef
	for _, path := range splitList(*m.specs) {
		s, err := scenario.Load(path)
		if err != nil {
			return sweep.Matrix{}, err
		}
		specRefs = append(specRefs, sweep.SpecRef{Name: s.Name, Path: path, Digest: s.Digest()})
	}
	if len(benches) == 0 && len(specRefs) == 0 {
		return sweep.Matrix{}, fmt.Errorf("empty matrix: no benchmarks and no specs")
	}
	var kinds []string
	switch *m.kinds {
	case "eval":
		kinds = experiments.EvalKinds()
	case "all":
		kinds = experiments.Kinds()
	default:
		kinds = splitList(*m.kinds)
		valid := make(map[string]bool)
		for _, k := range experiments.Kinds() {
			valid[k] = true
		}
		for _, k := range kinds {
			if !valid[k] {
				return sweep.Matrix{}, fmt.Errorf("unknown kind %q (have: %s)",
					k, strings.Join(experiments.Kinds(), ","))
			}
		}
	}
	var seeds []int64
	for _, s := range splitList(*m.seeds) {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return sweep.Matrix{}, fmt.Errorf("bad seed %q: %v", s, err)
		}
		seeds = append(seeds, v)
	}
	scales := *m.scales
	if *m.quick {
		scales = "0.25"
	}
	var scaleVals []float64
	for _, s := range splitList(scales) {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil || v <= 0 {
			return sweep.Matrix{}, fmt.Errorf("bad scale %q", s)
		}
		scaleVals = append(scaleVals, v)
	}
	// "detailed" (the flag default) stores as "" so explicit and implicit
	// default spellings produce one matrix digest.
	md, err := sim.ParseMode(*m.mode)
	if err != nil {
		return sweep.Matrix{}, err
	}
	mode := ""
	if md == sim.ModeFast {
		mode = string(sim.ModeFast)
	}
	return sweep.Matrix{
		Benches:      benches,
		Specs:        specRefs,
		Kinds:        kinds,
		Seeds:        seeds,
		Scales:       scaleVals,
		Threads:      *m.threads,
		MetricsEpoch: *m.metricsEpoch,
		Mode:         mode,
	}, nil
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// cellRunner builds the production executor: one self-contained simulation
// per job (experiments.RunCell shares no state between cells). Spec cells
// reload their file and verify it still hashes to the digest recorded in
// the job identity, so a spec edited after matrix assembly fails loudly
// instead of silently mislabeling an artifact. shards is the intra-run
// executor knob (DESIGN.md §16): it changes how a cell computes, never
// what — results stay byte-identical, so it is no part of job identity.
func cellRunner(shards int) func(sweep.Job) (*sim.Result, error) {
	return func(j sweep.Job) (*sim.Result, error) {
		j.RunConfig.Shards = shards
		if j.SpecDigest == "" {
			return experiments.RunCell(j.RunConfig, j.Bench, j.Kind)
		}
		s, err := scenario.Load(j.SpecPath)
		if err != nil {
			return nil, err
		}
		if d := s.Digest(); d != j.SpecDigest {
			return nil, fmt.Errorf("spec %s changed since the sweep was assembled (digest %.12s, job wants %.12s); rerun 'spsweep run'",
				j.SpecPath, d, j.SpecDigest)
		}
		return experiments.RunSpecCell(j.RunConfig, s, j.Kind)
	}
}

func cmdRun(args []string, resume bool) error {
	name := "run"
	if resume {
		name = "resume"
	}
	fs := flag.NewFlagSet("spsweep "+name, flag.ExitOnError)
	var mf *matrixFlags
	var server, token *string
	if !resume {
		mf = addMatrixFlags(fs)
		server = fs.String("server", "", "submit to this spsweepd base URL instead of running locally")
		token = serverTokenFlag(fs)
	}
	jobs := fs.Int("jobs", runtime.NumCPU(), "worker pool size")
	shards := fs.Int("shards", 1, "intra-run executor shards per cell (engine knob; results are byte-identical)")
	timeout := fs.Duration("timeout", 0, "per-attempt wall-clock timeout (0 = none)")
	retries := fs.Int("retries", 0, "additional attempts after a failed one")
	backoff := fs.Duration("backoff", 0, "base delay before retry attempts, jittered (0 = none)")
	backoffSeed := fs.Int64("backoff-seed", 0, "seed for the retry jitter")
	dir := fs.String("dir", "results/sweep", "artifact store directory")
	format := fs.String("format", "table", "merged output format: table|csv|json")
	summary := fs.String("summary", "results/BENCH_sweep.json", `summary JSON path ("" disables)`)
	fs.Parse(args)

	if !resume && *server != "" {
		matrix, err := mf.matrix()
		if err != nil {
			return err
		}
		ctx, stop := signalContext()
		defer stop()
		return serverRun(ctx, *server, *token, matrix, *format)
	}

	store, err := sweep.Open(*dir)
	if err != nil {
		return err
	}
	var matrix sweep.Matrix
	if resume {
		if !store.HasManifestFile() {
			return fmt.Errorf("resume: no sweep recorded in %s (run 'spsweep run' first)", *dir)
		}
		m, ok := store.Matrix()
		if !ok {
			return fmt.Errorf("resume: manifest in %s has no matrix", *dir)
		}
		matrix = m
	} else {
		matrix, err = mf.matrix()
		if err != nil {
			return err
		}
		if err := store.SetMatrix(matrix); err != nil {
			return err
		}
	}
	allJobs := matrix.Jobs()
	fmt.Fprintf(os.Stderr, "spsweep: %s: %d jobs (%d benches x %d kinds x %d seeds x %d scales) on %d workers\n",
		name, len(allJobs), len(matrix.Benches), len(matrix.Kinds), len(matrix.Seeds), len(matrix.Scales), *jobs)

	// SIGINT/SIGTERM stop the sweep after in-flight jobs; completed cells
	// are already checkpointed, so 'spsweep resume' picks up from there.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	done := 0
	opt := sweep.Options{
		Workers:     *jobs,
		Timeout:     *timeout,
		Retries:     *retries,
		Backoff:     *backoff,
		BackoffSeed: *backoffSeed,
		Store:       store,
		Progress: func(jr sweep.JobResult) {
			done++
			state := "ok"
			switch {
			case jr.Err != nil:
				state = "FAIL: " + jr.Err.Error()
			case jr.Cached:
				state = "cached"
			}
			fmt.Fprintf(os.Stderr, "spsweep: [%d/%d] %-40s %6.1fs  %s\n",
				done, len(allJobs), jr.Job.Key(), jr.Wall.Seconds(), state)
		},
	}
	rep := sweep.Run(ctx, allJobs, cellRunner(*shards), opt)

	switch *format {
	case "table":
		rep.FormatTable(os.Stdout)
	case "csv":
		if err := rep.FormatCSV(os.Stdout); err != nil {
			return err
		}
	case "json":
		if err := rep.FormatJSON(os.Stdout); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown format %q (table|csv|json)", *format)
	}

	if *summary != "" {
		if err := sweep.WriteSummary(*summary, rep.Summarize(matrix, *jobs)); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "spsweep: summary written to %s\n", *summary)
	}
	fmt.Fprintf(os.Stderr, "spsweep: %d jobs: %d cached, %d executed, %d failed in %.1fs\n",
		len(allJobs), rep.Cached, rep.Executed, rep.Failed, rep.Wall.Seconds())
	if rep.Failed > 0 {
		return fmt.Errorf("%d job(s) failed", rep.Failed)
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("interrupted; completed cells are checkpointed, 'spsweep resume -dir %s' continues", *dir)
	}
	return nil
}

func cmdStatus(args []string) error {
	fs := flag.NewFlagSet("spsweep status", flag.ExitOnError)
	dir := fs.String("dir", "results/sweep", "artifact store directory")
	server := fs.String("server", "", "query this spsweepd base URL instead of a local store")
	token := serverTokenFlag(fs)
	sweepID := fs.String("sweep", "", "with -server: show one sweep's jobs")
	verbose := fs.Bool("v", false, "list pending job keys (with -server: done jobs too)")
	fs.Parse(args)

	if *server != "" {
		return serverStatus(*server, *token, *sweepID, *verbose)
	}

	store, err := sweep.Open(*dir)
	if err != nil {
		return err
	}
	if !store.HasManifestFile() {
		return fmt.Errorf("no sweep recorded in %s", *dir)
	}
	matrix, ok := store.Matrix()
	if !ok {
		return fmt.Errorf("manifest in %s has no matrix", *dir)
	}
	var complete, pending int
	var pendingKeys []string
	for _, j := range matrix.Jobs() {
		if _, ok := store.Lookup(j); ok {
			complete++
		} else {
			pending++
			pendingKeys = append(pendingKeys, j.Key())
		}
	}
	total := complete + pending
	fmt.Printf("store:    %s\n", *dir)
	fmt.Printf("matrix:   %s\n", matrix.Digest()[:16])
	fmt.Printf("jobs:     %d/%d complete, %d pending\n", complete, total, pending)
	if *verbose {
		for _, k := range pendingKeys {
			fmt.Printf("pending:  %s\n", k)
		}
	}
	if pending > 0 {
		fmt.Printf("hint:     spsweep resume -dir %s\n", *dir)
	}
	// The failure ledger gates the exit code: cells that exhausted their
	// attempts make status fail, so CI distinguishes "interrupted, resume
	// will finish" (exit 0 with pending jobs) from "broken" (exit 1).
	if failed := store.FailedCells(); len(failed) > 0 {
		for _, k := range detutil.SortedKeys(failed) {
			fmt.Printf("failed:   %-48s %s\n", k, failed[k])
		}
		return fmt.Errorf("%d job(s) terminally failed", len(failed))
	}
	return nil
}

// newFlagSet builds a flag set with the conventional error mode.
func newFlagSet(name string) *flag.FlagSet {
	return flag.NewFlagSet(name, flag.ExitOnError)
}

// signalContext is the conventional SIGINT/SIGTERM run context.
func signalContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

func cmdList(args []string) error {
	fs := flag.NewFlagSet("spsweep list", flag.ExitOnError)
	mf := addMatrixFlags(fs)
	fs.Parse(args)

	matrix, err := mf.matrix()
	if err != nil {
		return err
	}
	jobs := matrix.Jobs()
	for _, j := range jobs {
		fmt.Printf("%-48s %s\n", j.Key(), j.Digest()[:16])
	}
	fmt.Fprintf(os.Stderr, "spsweep: %d jobs, matrix %s\n", len(jobs), matrix.Digest()[:16])
	return nil
}
