package main

// -scale-bench: the big-mesh scaling matrix (DESIGN.md §16). Where
// -core-bench tracks the repository's throughput trend on the fixed 4×4
// configuration (and feeds the rolling-baseline regression gate —
// unchanged by this mode), -scale-bench answers a different question: how
// does the engine behave as the mesh grows and as the sharded executor is
// given more workers? It times one seeded workload over every
// (mesh size × shard count) cell and writes the matrix, with the host's
// parallelism context, to results/BENCH_scale.json.
//
// The host context matters: shard speedup is bounded by real cores. On a
// single-core host the sharded executor's barrier and staging overhead is
// pure cost, so ratios near (or slightly below) 1.0 are the honest
// expected result there — the matrix records what this host measured, not
// what a wider machine would.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"spcoh/internal/protocol"
	"spcoh/internal/sim"
	"spcoh/internal/workload"
)

// scaleMeshes is the mesh axis: the paper's 4×4 plus the two scaled
// configurations the sharded executor targets.
var scaleMeshes = []int{16, 64, 256}

// scaleShards is the shard axis; 1 is the serial engine every other count
// must match byte-for-byte (enforced by tests and check.sh, not here —
// this mode only times).
var scaleShards = []int{1, 2, 4, 8}

// scaleCell is one timed (mesh, shards) configuration.
type scaleCell struct {
	Nodes  int    `json:"nodes"`
	Mesh   string `json:"mesh"` // "4x4" etc, for human readers
	Shards int    `json:"shards"`

	SimCycles    uint64  `json:"sim_cycles"`
	Events       uint64  `json:"events"`
	WallNanos    int64   `json:"wall_nanos"` // best of the timed runs
	CyclesPerSec float64 `json:"cycles_per_sec"`
	// SpeedupVsSerial is CyclesPerSec over the shards=1 cell of the same
	// mesh (1.0 for the serial cell itself).
	SpeedupVsSerial float64 `json:"speedup_vs_serial"`
}

// scaleHost records the parallelism context the matrix was measured
// under; without it a shard ratio is uninterpretable.
type scaleHost struct {
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// scaleFile is results/BENCH_scale.json. Unlike BENCH_core this is a
// plain snapshot, overwritten per invocation: the scaling shape is a
// property of the engine + host pair, not a trend to gate on.
type scaleFile struct {
	When  string      `json:"when,omitempty"`
	Bench string      `json:"bench"`
	Runs  int         `json:"runs"`
	Scale float64     `json:"scale"`
	Seed  int64       `json:"seed"`
	Host  scaleHost   `json:"host"`
	Note  string      `json:"note"`
	Cells []scaleCell `json:"cells"`
}

// measureScaleCell times runs repetitions of one (mesh, shards) cell and
// keeps the fastest, mirroring measureCell's best-of policy.
func measureScaleCell(bench string, nodes, shards, runs int, scale float64, seed int64) (scaleCell, error) {
	p, err := workload.ByName(bench)
	if err != nil {
		return scaleCell{}, err
	}
	m, err := protocol.ConfigFor(nodes)
	if err != nil {
		return scaleCell{}, fmt.Errorf("scale-bench: %w", err)
	}
	prog := p.Build(nodes, scale, seed)
	side := 1
	for side*side < nodes {
		side++
	}
	cell := scaleCell{Nodes: nodes, Mesh: fmt.Sprintf("%dx%d", side, side), Shards: shards}
	for i := 0; i < runs; i++ {
		opt := sim.DefaultOptions()
		opt.Machine = m
		opt.Shards = shards
		start := time.Now()
		res, err := sim.Run(prog, opt)
		wall := time.Since(start)
		if err != nil {
			return scaleCell{}, fmt.Errorf("scale-bench %s n%d s%d: %w", bench, nodes, shards, err)
		}
		if cell.WallNanos == 0 || wall.Nanoseconds() < cell.WallNanos {
			cell.WallNanos = wall.Nanoseconds()
			cell.SimCycles = uint64(res.Cycles)
			cell.Events = res.Events
		}
	}
	cell.CyclesPerSec = float64(cell.SimCycles) / (float64(cell.WallNanos) / 1e9)
	return cell, nil
}

func runScaleBench(out, bench string, runs int, scale float64, seed int64) error {
	if runs < 1 {
		runs = 1
	}
	file := &scaleFile{
		Bench: bench,
		Runs:  runs,
		Scale: scale,
		Seed:  seed,
		Host: scaleHost{
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			NumCPU:     runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
		},
		Note: "speedup_vs_serial is bounded by the host's real cores; on a " +
			"single-core host ~1.0 (or slightly below, barrier overhead) is the " +
			"expected honest result. Output bytes are identical across the shard " +
			"axis by construction (DESIGN.md §16).",
	}
	for _, nodes := range scaleMeshes {
		var serial float64
		for _, shards := range scaleShards {
			if shards > nodes {
				continue
			}
			cell, err := measureScaleCell(bench, nodes, shards, runs, scale, seed)
			if err != nil {
				return err
			}
			if shards == 1 {
				serial = cell.CyclesPerSec
			}
			if serial > 0 {
				cell.SpeedupVsSerial = cell.CyclesPerSec / serial
			}
			fmt.Fprintf(os.Stderr, "scale-bench: %-14s %5s x%d  %12d cycles  %8.1fms  %12.0f cycles/s  %.2fx\n",
				bench, cell.Mesh, cell.Shards, cell.SimCycles, float64(cell.WallNanos)/1e6,
				cell.CyclesPerSec, cell.SpeedupVsSerial)
			file.Cells = append(file.Cells, cell)
		}
	}
	file.When = time.Now().UTC().Format(time.RFC3339)

	if err := os.MkdirAll(filepath.Dir(out), 0o755); err != nil {
		return err
	}
	b, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(out, append(b, '\n'), 0o644)
}
