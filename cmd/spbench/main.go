// Command spbench regenerates the paper's tables and figures.
//
// Usage:
//
//	spbench                  # every experiment, full scale
//	spbench -only fig8,fig9  # a subset
//	spbench -quick           # reduced workload scale
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"spcoh/internal/experiments"
)

func main() {
	only := flag.String("only", "", "comma-separated experiment ids (default: all)")
	quick := flag.Bool("quick", false, "reduced workload scale")
	scale := flag.Float64("scale", 0, "explicit workload scale (overrides -quick)")
	seed := flag.Int64("seed", 42, "workload build seed")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	cfg := experiments.Default()
	if *quick {
		cfg = experiments.Quick()
	}
	if *scale > 0 {
		cfg.Scale = *scale
	}
	cfg.Seed = *seed
	r := experiments.NewRunner(cfg)

	selected := experiments.All()
	if *only != "" {
		selected = nil
		for _, id := range strings.Split(*only, ",") {
			e, err := experiments.ByID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			selected = append(selected, e)
		}
	}

	for _, e := range selected {
		start := time.Now()
		tab := e.Run(r)
		tab.AddNote("generated in %.1fs at scale %.2f", time.Since(start).Seconds(), cfg.Scale)
		tab.Render(os.Stdout)
		fmt.Println()
	}
}
