// Command spbench regenerates the paper's tables and figures.
//
// Usage:
//
//	spbench                     # every experiment, full scale
//	spbench -only fig8,fig9     # a subset
//	spbench -quick              # reduced workload scale
//	spbench -parallel -jobs 4   # experiments concurrently, shared cache
//	spbench -format json        # machine-readable rows + wall times
//	spbench -core-bench         # engine-throughput record → results/BENCH_core.json
//	spbench -scale-bench        # (mesh x shards) scaling matrix → results/BENCH_scale.json
//	spbench -cpuprofile cpu.pprof -core-bench
//
// -core-bench measures simulated-cycles-per-second over a fixed set of
// seeded full-system runs and writes a before/after record (see DESIGN.md
// §11): the first invocation establishes the baseline, later invocations
// keep it and report the current numbers plus the speedup against it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	"spcoh/internal/experiments"
	"spcoh/internal/stats"
)

// outcome is one experiment's generated table (or failure) plus wall time.
type outcome struct {
	tab  *stats.Table
	err  error
	secs float64
}

// jsonExperiment is the -format json record for one experiment.
type jsonExperiment struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Seconds float64    `json:"seconds"`
	Header  []string   `json:"header,omitempty"`
	Rows    [][]string `json:"rows,omitempty"`
	Notes   []string   `json:"notes,omitempty"`
	Error   string     `json:"error,omitempty"`
}

func main() {
	only := flag.String("only", "", "comma-separated experiment ids (default: all)")
	quick := flag.Bool("quick", false, "reduced workload scale")
	scale := flag.Float64("scale", 0, "explicit workload scale (overrides -quick)")
	seed := flag.Int64("seed", 42, "workload build seed")
	list := flag.Bool("list", false, "list experiment ids and exit")
	parallel := flag.Bool("parallel", false, "generate experiments concurrently over the shared result cache")
	jobs := flag.Int("jobs", runtime.NumCPU(), "worker count for -parallel")
	format := flag.String("format", "text", "output format: text|json")
	coreBench := flag.Bool("core-bench", false, "measure engine throughput and update the BENCH_core record")
	coreOut := flag.String("core-out", "results/BENCH_core.json", "before/after record path for -core-bench")
	coreRuns := flag.Int("core-runs", 3, "timed repetitions per cell for -core-bench (best run counts)")
	coreScale := flag.Float64("core-scale", 0.2, "workload scale for -core-bench")
	coreGate := flag.Float64("core-gate", 0,
		"fail -core-bench when aggregate cycles/s falls more than this percent below the rolling baseline (median of recent history; 0 = record only)")
	scaleBench := flag.Bool("scale-bench", false, "measure the (mesh size x shard count) scaling matrix and write the BENCH_scale record")
	scaleOut := flag.String("scale-out", "results/BENCH_scale.json", "record path for -scale-bench")
	scaleBenchName := flag.String("scale-bench-name", "ocean", "workload for -scale-bench")
	scaleRuns := flag.Int("scale-runs", 3, "timed repetitions per cell for -scale-bench (best run counts)")
	scaleScale := flag.Float64("scale-scale", 0.02, "workload scale for -scale-bench (kept small: the matrix spans 16x16 meshes)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile here")
	memprofile := flag.String("memprofile", "", "write an allocation profile here on exit")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "spbench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "spbench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "spbench:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "spbench:", err)
			}
		}()
	}

	if *coreBench {
		if err := runCoreBench(*coreOut, *coreRuns, *coreScale, *seed, *coreGate); err != nil {
			fmt.Fprintln(os.Stderr, "spbench:", err)
			os.Exit(1)
		}
		return
	}
	if *scaleBench {
		if err := runScaleBench(*scaleOut, *scaleBenchName, *scaleRuns, *scaleScale, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "spbench:", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}
	if *format != "text" && *format != "json" {
		fmt.Fprintf(os.Stderr, "spbench: unknown format %q (text|json)\n", *format)
		os.Exit(1)
	}

	cfg := experiments.Default()
	if *quick {
		cfg = experiments.Quick()
	}
	if *scale > 0 {
		cfg.Scale = *scale
	}
	cfg.Seed = *seed
	r := experiments.NewRunner(cfg)

	selected := experiments.All()
	if *only != "" {
		selected = nil
		for _, id := range strings.Split(*only, ",") {
			e, err := experiments.ByID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			selected = append(selected, e)
		}
	}

	outs := generate(r, selected, *parallel, *jobs)

	failed := 0
	switch *format {
	case "json":
		recs := make([]jsonExperiment, len(selected))
		for i, e := range selected {
			recs[i] = jsonExperiment{ID: e.ID, Title: e.Title, Seconds: outs[i].secs}
			if outs[i].err != nil {
				recs[i].Error = outs[i].err.Error()
				failed++
				continue
			}
			recs[i].Header = outs[i].tab.Header
			recs[i].Rows = outs[i].tab.Rows
			recs[i].Notes = outs[i].tab.Notes
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(recs); err != nil {
			fmt.Fprintln(os.Stderr, "spbench:", err)
			os.Exit(1)
		}
	default:
		for i, e := range selected {
			if outs[i].err != nil {
				fmt.Fprintf(os.Stderr, "spbench: %s: %v\n", e.ID, outs[i].err)
				failed++
				continue
			}
			outs[i].tab.AddNote("generated in %.1fs at scale %.2f", outs[i].secs, cfg.Scale)
			outs[i].tab.Render(os.Stdout)
			fmt.Println()
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "spbench: %d/%d experiments failed\n", failed, len(selected))
		os.Exit(1)
	}
}

// generate runs the selected experiments, sequentially or on a bounded
// worker pool. Output order is experiment order either way: workers write
// into their own slot, so completion order never shows.
func generate(r *experiments.Runner, selected []experiments.Experiment, parallel bool, jobs int) []outcome {
	outs := make([]outcome, len(selected))
	runOne := func(i int) {
		start := time.Now()
		tab, err := selected[i].Run(r)
		outs[i] = outcome{tab: tab, err: err, secs: time.Since(start).Seconds()}
	}
	if !parallel {
		for i := range selected {
			runOne(i)
		}
		return outs
	}
	if jobs < 1 {
		jobs = 1
	}
	sem := make(chan struct{}, jobs)
	var wg sync.WaitGroup
	for i := range selected {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			runOne(i)
		}(i)
	}
	wg.Wait()
	return outs
}
