package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"spcoh/internal/core"
	"spcoh/internal/sim"
	"spcoh/internal/workload"
)

// coreCell is one timed full-system configuration.
type coreCell struct {
	Bench string `json:"bench"`
	Kind  string `json:"kind"` // dir | sp | bcast

	SimCycles    uint64  `json:"sim_cycles"`
	Events       uint64  `json:"events"`
	WallNanos    int64   `json:"wall_nanos"` // best of the timed runs
	CyclesPerSec float64 `json:"cycles_per_sec"`
	EventsPerSec float64 `json:"events_per_sec"`
}

// coreRecord is one measurement pass over every cell.
type coreRecord struct {
	When         string     `json:"when,omitempty"` // RFC 3339, recorded at measurement time
	Runs         int        `json:"runs"`
	Scale        float64    `json:"scale"`
	Seed         int64      `json:"seed"`
	Cells        []coreCell `json:"cells"`
	CyclesPerSec float64    `json:"cycles_per_sec"` // aggregate: Σcycles / Σwall
}

// coreFile is the perf record results/BENCH_core.json holds. The baseline
// is written once (first invocation on the pre-optimization tree) and
// preserved by every later refresh, so the speedup is always measured
// against the same fixed point; Current mirrors the last History entry
// for tools reading the old before/after shape. History accumulates one
// record per invocation (oldest first), so the file carries the
// repository's performance trajectory instead of only its endpoints.
type coreFile struct {
	Baseline *coreRecord  `json:"baseline"`
	Current  *coreRecord  `json:"current"`
	Speedup  float64      `json:"speedup"` // current vs baseline aggregate cycles/sec
	History  []coreRecord `json:"history,omitempty"`
}

// coreHistoryCap bounds the trend record; the oldest entries roll off
// (the baseline is kept separately and never rolls).
const coreHistoryCap = 200

// coreCells is the fixed measurement matrix: the baseline directory
// protocol, the paper's SP-predictor configuration (the headline cell the
// acceptance bar gates on), and the broadcast comparison protocol.
var coreCells = []struct{ bench, kind string }{
	{"ocean", "dir"},
	{"ocean", "sp"},
	{"streamcluster", "bcast"},
}

func coreOptions(kind string) (sim.Options, error) {
	opt := sim.DefaultOptions()
	switch kind {
	case "dir":
	case "sp":
		opt.Predictors = core.NewSystem(core.DefaultConfig(opt.Machine.Nodes))
	case "bcast":
		opt.Protocol = sim.Broadcast
	default:
		return opt, fmt.Errorf("core-bench: unknown kind %q", kind)
	}
	return opt, nil
}

// measureCell times runs repetitions of one cell and keeps the fastest
// (wall noise only ever slows a run down).
func measureCell(bench, kind string, runs int, scale float64, seed int64) (coreCell, error) {
	p, err := workload.ByName(bench)
	if err != nil {
		return coreCell{}, err
	}
	prog := p.Build(16, scale, seed)
	cell := coreCell{Bench: bench, Kind: kind}
	for i := 0; i < runs; i++ {
		opt, err := coreOptions(kind)
		if err != nil {
			return coreCell{}, err
		}
		start := time.Now()
		res, err := sim.Run(prog, opt)
		wall := time.Since(start)
		if err != nil {
			return coreCell{}, fmt.Errorf("core-bench %s/%s: %w", bench, kind, err)
		}
		if cell.WallNanos == 0 || wall.Nanoseconds() < cell.WallNanos {
			cell.WallNanos = wall.Nanoseconds()
			cell.SimCycles = uint64(res.Cycles)
			cell.Events = res.Events
		}
	}
	secs := float64(cell.WallNanos) / 1e9
	cell.CyclesPerSec = float64(cell.SimCycles) / secs
	cell.EventsPerSec = float64(cell.Events) / secs
	return cell, nil
}

func runCoreBench(out string, runs int, scale float64, seed int64) error {
	if runs < 1 {
		runs = 1
	}
	rec := &coreRecord{Runs: runs, Scale: scale, Seed: seed}
	var totCycles uint64
	var totNanos int64
	for _, c := range coreCells {
		cell, err := measureCell(c.bench, c.kind, runs, scale, seed)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "core-bench: %-14s %-5s %12d cycles  %8.1fms  %14.0f cycles/s\n",
			cell.Bench, cell.Kind, cell.SimCycles, float64(cell.WallNanos)/1e6, cell.CyclesPerSec)
		rec.Cells = append(rec.Cells, cell)
		totCycles += cell.SimCycles
		totNanos += cell.WallNanos
	}
	rec.CyclesPerSec = float64(totCycles) / (float64(totNanos) / 1e9)
	rec.When = time.Now().UTC().Format(time.RFC3339)

	file := &coreFile{}
	if b, err := os.ReadFile(out); err == nil {
		if err := json.Unmarshal(b, file); err != nil {
			return fmt.Errorf("core-bench: corrupt %s: %w (delete it to re-baseline)", out, err)
		}
	}
	if file.Baseline == nil {
		file.Baseline = rec
	}
	// Append to the trend instead of overwriting the single before/after
	// pair; a file written by the old shape starts its history from its
	// Current record so no measurement is dropped.
	if len(file.History) == 0 && file.Current != nil {
		file.History = append(file.History, *file.Current)
	}
	file.History = append(file.History, *rec)
	if n := len(file.History); n > coreHistoryCap {
		file.History = append(file.History[:0], file.History[n-coreHistoryCap:]...)
	}
	file.Current = rec
	file.Speedup = file.Current.CyclesPerSec / file.Baseline.CyclesPerSec
	fmt.Fprintf(os.Stderr, "core-bench: aggregate %.0f cycles/s (%.2fx vs baseline %.0f, %d records)\n",
		file.Current.CyclesPerSec, file.Speedup, file.Baseline.CyclesPerSec, len(file.History))

	if err := os.MkdirAll(filepath.Dir(out), 0o755); err != nil {
		return err
	}
	b, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(out, append(b, '\n'), 0o644)
}
