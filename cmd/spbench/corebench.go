package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"spcoh/internal/core"
	"spcoh/internal/sim"
	"spcoh/internal/workload"
)

// coreCell is one timed full-system configuration.
type coreCell struct {
	Bench string `json:"bench"`
	Kind  string `json:"kind"` // dir | sp | bcast

	SimCycles    uint64  `json:"sim_cycles"`
	Events       uint64  `json:"events"`
	WallNanos    int64   `json:"wall_nanos"` // best of the timed runs
	CyclesPerSec float64 `json:"cycles_per_sec"`
	EventsPerSec float64 `json:"events_per_sec"`
}

// coreRecord is one measurement pass over every cell.
type coreRecord struct {
	When         string     `json:"when,omitempty"` // RFC 3339, recorded at measurement time
	Runs         int        `json:"runs"`
	Scale        float64    `json:"scale"`
	Seed         int64      `json:"seed"`
	Cells        []coreCell `json:"cells"`
	CyclesPerSec float64    `json:"cycles_per_sec"` // aggregate: Σcycles / Σwall
}

// coreFile is the perf record results/BENCH_core.json holds. The baseline
// is written once (first invocation on the pre-optimization tree) and
// preserved by every later refresh, so the speedup is always measured
// against the same fixed point; Current mirrors the last History entry
// for tools reading the old before/after shape. History accumulates one
// record per invocation (oldest first), so the file carries the
// repository's performance trajectory instead of only its endpoints.
type coreFile struct {
	Baseline *coreRecord  `json:"baseline"`
	Current  *coreRecord  `json:"current"`
	Speedup  float64      `json:"speedup"` // current vs baseline aggregate cycles/sec
	History  []coreRecord `json:"history,omitempty"`
}

// coreHistoryCap bounds the trend record; the oldest entries roll off
// (the baseline is kept separately and never rolls).
const coreHistoryCap = 200

// coreCells is the fixed measurement matrix: the baseline directory
// protocol, the paper's SP-predictor configuration (the headline cell the
// acceptance bar gates on), and the broadcast comparison protocol.
var coreCells = []struct{ bench, kind string }{
	{"ocean", "dir"},
	{"ocean", "sp"},
	{"streamcluster", "bcast"},
}

func coreOptions(kind string) (sim.Options, error) {
	opt := sim.DefaultOptions()
	switch kind {
	case "dir":
	case "sp":
		opt.Predictors = core.NewSystem(core.DefaultConfig(opt.Machine.Nodes))
	case "bcast":
		opt.Protocol = sim.Broadcast
	default:
		return opt, fmt.Errorf("core-bench: unknown kind %q", kind)
	}
	return opt, nil
}

// measureCell times runs repetitions of one cell and keeps the fastest
// (wall noise only ever slows a run down).
func measureCell(bench, kind string, runs int, scale float64, seed int64) (coreCell, error) {
	p, err := workload.ByName(bench)
	if err != nil {
		return coreCell{}, err
	}
	prog := p.Build(16, scale, seed)
	cell := coreCell{Bench: bench, Kind: kind}
	for i := 0; i < runs; i++ {
		opt, err := coreOptions(kind)
		if err != nil {
			return coreCell{}, err
		}
		start := time.Now()
		res, err := sim.Run(prog, opt)
		wall := time.Since(start)
		if err != nil {
			return coreCell{}, fmt.Errorf("core-bench %s/%s: %w", bench, kind, err)
		}
		if cell.WallNanos == 0 || wall.Nanoseconds() < cell.WallNanos {
			cell.WallNanos = wall.Nanoseconds()
			cell.SimCycles = uint64(res.Cycles)
			cell.Events = res.Events
		}
	}
	secs := float64(cell.WallNanos) / 1e9
	cell.CyclesPerSec = float64(cell.SimCycles) / secs
	cell.EventsPerSec = float64(cell.Events) / secs
	return cell, nil
}

// rollingGateWindow is how many recent history records the regression
// gate's rolling baseline spans, and rollingGateMin is the history depth
// below which the gate stays silent (too little signal to call a trend).
const (
	rollingGateWindow = 5
	rollingGateMin    = 3
)

// rollingBaseline returns the median aggregate cycles/s of the most
// recent records (up to rollingGateWindow) and how many records fed it.
// A median over several runs absorbs the one-off slow box or noisy
// neighbor a single before/after comparison would trip on.
func rollingBaseline(hist []coreRecord) (float64, int) {
	n := len(hist)
	if n > rollingGateWindow {
		hist = hist[n-rollingGateWindow:]
	}
	vals := make([]float64, len(hist))
	for i, r := range hist {
		vals[i] = r.CyclesPerSec
	}
	sort.Float64s(vals)
	if len(vals) == 0 {
		return 0, 0
	}
	m := len(vals) / 2
	med := vals[m]
	if len(vals)%2 == 0 {
		med = (vals[m-1] + vals[m]) / 2
	}
	return med, len(vals)
}

func runCoreBench(out string, runs int, scale float64, seed int64, gatePct float64) error {
	if runs < 1 {
		runs = 1
	}
	rec := &coreRecord{Runs: runs, Scale: scale, Seed: seed}
	var totCycles uint64
	var totNanos int64
	for _, c := range coreCells {
		cell, err := measureCell(c.bench, c.kind, runs, scale, seed)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "core-bench: %-14s %-5s %12d cycles  %8.1fms  %14.0f cycles/s\n",
			cell.Bench, cell.Kind, cell.SimCycles, float64(cell.WallNanos)/1e6, cell.CyclesPerSec)
		rec.Cells = append(rec.Cells, cell)
		totCycles += cell.SimCycles
		totNanos += cell.WallNanos
	}
	rec.CyclesPerSec = float64(totCycles) / (float64(totNanos) / 1e9)
	rec.When = time.Now().UTC().Format(time.RFC3339)

	file := &coreFile{}
	if b, err := os.ReadFile(out); err == nil {
		if err := json.Unmarshal(b, file); err != nil {
			return fmt.Errorf("core-bench: corrupt %s: %w (delete it to re-baseline)", out, err)
		}
	}
	if file.Baseline == nil {
		file.Baseline = rec
	}
	// Append to the trend instead of overwriting the single before/after
	// pair; a file written by the old shape starts its history from its
	// Current record so no measurement is dropped.
	if len(file.History) == 0 && file.Current != nil {
		file.History = append(file.History, *file.Current)
	}
	// The regression gate compares this run against the rolling baseline
	// of the history BEFORE it — the new record must not vote on its own
	// acceptability.
	rollBase, rollN := rollingBaseline(file.History)
	file.History = append(file.History, *rec)
	if n := len(file.History); n > coreHistoryCap {
		file.History = append(file.History[:0], file.History[n-coreHistoryCap:]...)
	}
	file.Current = rec
	file.Speedup = file.Current.CyclesPerSec / file.Baseline.CyclesPerSec
	fmt.Fprintf(os.Stderr, "core-bench: aggregate %.0f cycles/s (%.2fx vs baseline %.0f, %d records)\n",
		file.Current.CyclesPerSec, file.Speedup, file.Baseline.CyclesPerSec, len(file.History))

	if err := os.MkdirAll(filepath.Dir(out), 0o755); err != nil {
		return err
	}
	b, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		return err
	}
	// Gate last, after the record is on disk: a failing run still joins
	// the history, so the trend stays honest and the next investigation
	// has the data point. The threshold must stay generous — wall time on
	// shared boxes is noisy even under a median — and the gate only
	// speaks once the history is deep enough to define a trend.
	if gatePct > 0 && rollN >= rollingGateMin {
		floor := rollBase * (1 - gatePct/100)
		if rec.CyclesPerSec < floor {
			return fmt.Errorf(
				"core-bench: aggregate %.0f cycles/s is %.1f%% below the rolling baseline %.0f (median of last %d runs); the -core-gate threshold is %g%%",
				rec.CyclesPerSec, 100*(1-rec.CyclesPerSec/rollBase), rollBase, rollN, gatePct)
		}
		fmt.Fprintf(os.Stderr, "core-bench: regression gate ok: %.0f cycles/s vs rolling baseline %.0f (median of %d, -%g%% floor %.0f)\n",
			rec.CyclesPerSec, rollBase, rollN, gatePct, floor)
	}
	return nil
}
