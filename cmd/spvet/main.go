// Command spvet is the repository's invariant analyzer: a stdlib-only
// static checker that enforces the whole-program invariants the simulator
// depends on — determinism of iteration and arithmetic, enum
// exhaustiveness, allocation-free hot paths, observer purity, and pooled
// record lifetimes (see internal/lint).
//
// Usage:
//
//	go run ./cmd/spvet ./...                              # analyze every non-test package
//	go run ./cmd/spvet ./internal/...                     # a subtree
//	go run ./cmd/spvet -checks                            # list registered checks
//	go run ./cmd/spvet -json ./...                        # machine-readable findings
//	go run ./cmd/spvet -baseline .spvet-baseline.json ./...
//	go run ./cmd/spvet -baseline b.json -write-baseline ./...
//
// Findings print as "file:line: [check] message". With -baseline, findings
// recorded in the baseline file are tolerated (reported but not gating);
// baseline entries claiming findings in simulation packages are rejected.
// The exit status is 1 when any fresh error-severity finding remains, 2 on
// analysis errors, 0 otherwise.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"spcoh/internal/lint"
)

// jsonFinding is one finding in -json output. Baselined findings are
// included (marked) so tooling sees the full picture; the exit status only
// reflects fresh errors.
type jsonFinding struct {
	File      string `json:"file"`
	Line      int    `json:"line"`
	Check     string `json:"check"`
	Severity  string `json:"severity"`
	Msg       string `json:"msg"`
	Baselined bool   `json:"baselined,omitempty"`
}

// jsonReport is the top-level -json document.
type jsonReport struct {
	Findings  []jsonFinding `json:"findings"`
	NewErrors int           `json:"new_errors"`
	NewWarns  int           `json:"new_warns"`
	Baselined int           `json:"baselined"`
}

func main() {
	listChecks := flag.Bool("checks", false, "list registered checks and exit")
	jsonOut := flag.Bool("json", false, "emit findings as JSON on stdout")
	baselineFile := flag.String("baseline", "", "baseline file of tolerated findings")
	writeBaseline := flag.Bool("write-baseline", false, "rewrite -baseline from the current findings and exit")
	flag.Parse()

	if *listChecks {
		for _, c := range lint.Checks() {
			scope := "all packages"
			if c.SimOnly {
				scope = "simulation packages"
			}
			unit := "per package"
			if c.RunModule != nil {
				unit = "whole module"
			}
			fmt.Printf("%-12s %-5s (%s, %s)\n    %s\n", c.Name, c.Severity, scope, unit, c.Doc)
		}
		return
	}

	args := flag.Args()
	if len(args) == 0 {
		args = []string{"./..."}
	}

	root, modPath, err := lint.FindModule(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "spvet:", err)
		os.Exit(2)
	}
	// Simulation packages — code the DES drives, which must replay
	// bit-identically — are everything under internal/ except the analyzer
	// itself and the sweep orchestrator (see lint.DefaultIsSim).
	isSim := lint.DefaultIsSim(modPath)
	a := &lint.Analyzer{ModRoot: root, ModPath: modPath, IsSim: isSim}
	findings, err := a.Run(args...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spvet:", err)
		os.Exit(2)
	}

	if *writeBaseline {
		if *baselineFile == "" {
			fmt.Fprintln(os.Stderr, "spvet: -write-baseline requires -baseline <file>")
			os.Exit(2)
		}
		if err := lint.WriteBaseline(*baselineFile, findings); err != nil {
			fmt.Fprintln(os.Stderr, "spvet:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "spvet: wrote %d finding(s) to %s\n", len(findings), *baselineFile)
		return
	}

	fresh, baselined := findings, []lint.Finding(nil)
	if *baselineFile != "" {
		b, err := lint.LoadBaseline(*baselineFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "spvet:", err)
			os.Exit(2)
		}
		if err := b.Validate(modPath, isSim); err != nil {
			fmt.Fprintln(os.Stderr, "spvet:", err)
			os.Exit(2)
		}
		fresh, baselined = b.Partition(findings)
	}

	newErrors, newWarns := 0, 0
	for _, f := range fresh {
		if f.Severity == lint.SevWarn {
			newWarns++
		} else {
			newErrors++
		}
	}

	if *jsonOut {
		rep := jsonReport{
			Findings:  []jsonFinding{},
			NewErrors: newErrors,
			NewWarns:  newWarns,
			Baselined: len(baselined),
		}
		emit := func(f lint.Finding, base bool) {
			rep.Findings = append(rep.Findings, jsonFinding{
				File: f.Pos.Filename, Line: f.Pos.Line,
				Check: f.Check, Severity: string(f.Severity), Msg: f.Msg,
				Baselined: base,
			})
		}
		for _, f := range fresh {
			emit(f, false)
		}
		for _, f := range baselined {
			emit(f, true)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "spvet:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range fresh {
			fmt.Println(f)
		}
		for _, f := range baselined {
			fmt.Printf("%s (baselined)\n", f)
		}
	}
	if len(fresh) > 0 || len(baselined) > 0 {
		fmt.Fprintf(os.Stderr, "spvet: %d new error(s), %d new warning(s), %d baselined\n",
			newErrors, newWarns, len(baselined))
	}
	if newErrors > 0 {
		os.Exit(1)
	}
}
