// Command spvet is the repository's determinism linter: a stdlib-only
// static analyzer that enforces the invariants the DES engine depends on
// (reproducible experiments; see internal/event and internal/lint).
//
// Usage:
//
//	go run ./cmd/spvet ./...            # analyze every non-test package
//	go run ./cmd/spvet ./internal/...   # a subtree
//	go run ./cmd/spvet -checks          # list registered checks
//
// Findings print as "file:line: [check] message"; the exit status is 1 when
// anything is found, 2 on analysis errors, 0 on a clean tree.
package main

import (
	"flag"
	"fmt"
	"os"

	"spcoh/internal/lint"
)

func main() {
	listChecks := flag.Bool("checks", false, "list registered checks and exit")
	flag.Parse()

	if *listChecks {
		for _, c := range lint.Checks() {
			scope := "all packages"
			if c.SimOnly {
				scope = "simulation packages"
			}
			fmt.Printf("%-12s (%s)\n    %s\n", c.Name, scope, c.Doc)
		}
		return
	}

	args := flag.Args()
	if len(args) == 0 {
		args = []string{"./..."}
	}

	root, modPath, err := lint.FindModule(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "spvet:", err)
		os.Exit(2)
	}
	a := &lint.Analyzer{
		ModRoot: root,
		ModPath: modPath,
		// Simulation packages — code the DES drives, which must replay
		// bit-identically — are everything under internal/ except the
		// analyzer itself and the sweep orchestrator (see
		// lint.DefaultIsSim for the rationale).
		IsSim: lint.DefaultIsSim(modPath),
	}
	findings, err := a.Run(args...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spvet:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "spvet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
