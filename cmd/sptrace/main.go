// Command sptrace inspects a binary trace written by spchar: a summary by
// default, or a textual event dump with -dump.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"spcoh/internal/arch"
	"spcoh/internal/detutil"
	"spcoh/internal/stats"
	"spcoh/internal/trace"
)

func main() {
	dump := flag.Bool("dump", false, "print every event")
	limit := flag.Int("n", 0, "stop after n events (0 = all)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: sptrace [-dump] [-n N] <trace-file>")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()

	r := trace.NewReader(f)
	var misses, comm, syncs int
	perNode := map[arch.NodeID]int{}
	byKind := map[string]int{}
	n := 0
	for {
		e, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		n++
		switch e.Kind {
		case trace.EvMiss:
			misses++
			perNode[e.Node]++
			byKind[e.MissKind.String()]++
			if e.Communicating {
				comm++
			}
			if *dump {
				fmt.Printf("%10d n%-2d miss %-7s line=%#x pc=%#x prov=%d inval=%v comm=%v\n",
					e.Cycle, e.Node, e.MissKind, uint64(e.Line), e.PC, e.Provider,
					e.Invalidated, e.Communicating)
			}
		case trace.EvSync:
			syncs++
			byKind[e.SyncKind.String()]++
			if *dump {
				fmt.Printf("%10d n%-2d sync %-8s static=%#x\n", e.Cycle, e.Node, e.SyncKind, e.StaticID)
			}
		}
		if *limit > 0 && n >= *limit {
			break
		}
	}

	t := stats.NewTable("trace summary", "metric", "value")
	t.AddRowf("events", n)
	t.AddRowf("misses", misses)
	t.AddRowf("communicating", comm)
	t.AddRowf("sync-points", syncs)
	for _, k := range detutil.SortedKeys(byKind) {
		t.AddRowf("  "+k, byKind[k])
	}
	t.Render(os.Stdout)
}
