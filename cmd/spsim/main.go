// Command spsim runs one benchmark on one protocol/predictor configuration
// and prints the measurements.
//
// Usage:
//
//	spsim -bench ocean -pred sp [-scale 0.2] [-seed 42] [-protocol dir|bcast]
//	spsim -all -pred sp
//	spsim -spec scenario.json -pred sp
//	spscen gen -seed 7 | spsim -spec - -pred sp
//	spsim -bench ocean -pred sp -metrics-epoch 10000 -metrics-out series.json
//
// With -spec the workload comes from a declarative scenario file
// (internal/scenario; "-" reads stdin) instead of a built-in profile.
//
// With -metrics-epoch N the run attaches the run-time metrics collector
// (internal/metrics) sampling every N cycles and writes the deterministic
// JSON time-series to -metrics-out (render it with spstat). Incompatible
// with -all: one series file describes one run.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"spcoh/internal/arch"
	"spcoh/internal/core"
	"spcoh/internal/event"
	"spcoh/internal/metrics"
	"spcoh/internal/predictor"
	"spcoh/internal/protocol"
	"spcoh/internal/scenario"
	"spcoh/internal/sim"
	"spcoh/internal/stats"
	"spcoh/internal/workload"
)

// loadSpec reads a scenario spec from a file or, for "-", from stdin.
func loadSpec(path string) (*scenario.Spec, error) {
	if path != "-" {
		return scenario.Load(path)
	}
	b, err := io.ReadAll(os.Stdin)
	if err != nil {
		return nil, fmt.Errorf("scenario: read stdin: %w", err)
	}
	return scenario.Parse(b)
}

// writeSeries atomically-ish writes the series (truncate-then-write is fine
// for a CLI output file).
func writeSeries(path string, s *metrics.Series) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func buildPredictors(kind string, nodes int) ([]predictor.Predictor, error) {
	switch kind {
	case "", "none", "dir":
		return nil, nil
	case "sp":
		return core.NewSystem(core.DefaultConfig(nodes)), nil
	case "spfilter":
		preds := core.NewSystem(core.DefaultConfig(nodes))
		for i := range preds {
			preds[i] = predictor.NewRegionFilter(preds[i])
		}
		return preds, nil
	case "addr", "inst", "uni":
		preds := make([]predictor.Predictor, nodes)
		for i := range preds {
			switch kind {
			case "addr":
				preds[i] = predictor.NewAddr(arch.NodeID(i), nodes)
			case "inst":
				preds[i] = predictor.NewInst(arch.NodeID(i), nodes)
			case "uni":
				preds[i] = predictor.NewUni(arch.NodeID(i), nodes)
			}
		}
		return preds, nil
	default:
		return nil, fmt.Errorf("unknown predictor %q (none|sp|spfilter|addr|inst|uni)", kind)
	}
}

func main() {
	bench := flag.String("bench", "ocean", "benchmark name")
	all := flag.Bool("all", false, "run every benchmark")
	specPath := flag.String("spec", "", `scenario spec file instead of a built-in benchmark ("-" = stdin)`)
	pred := flag.String("pred", "none", "predictor: none|sp|spfilter|addr|inst|uni")
	proto := flag.String("protocol", "dir", "protocol: dir|bcast")
	modeFlag := flag.String("mode", "detailed", "simulation fidelity: detailed|fast (fast skips NoC contention; counts stay exact, timing is approximate)")
	scale := flag.Float64("scale", 0.2, "workload scale factor")
	seed := flag.Int64("seed", 42, "workload build seed")
	threads := flag.Int("threads", 16, "thread/node count (a perfect-square mesh: 16, 64, 256, ...)")
	shards := flag.Int("shards", 1, "intra-run executor shards (1 = serial engine; results are byte-identical for every value)")
	metricsEpoch := flag.Uint64("metrics-epoch", 0, "metrics sampling epoch in cycles (0 = no metrics)")
	metricsOut := flag.String("metrics-out", "", "write the metrics time-series JSON here (requires -metrics-epoch)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile here")
	memprofile := flag.String("memprofile", "", "write an allocation profile here on exit")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "spsim:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "spsim:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "spsim:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "spsim:", err)
			}
		}()
	}

	mode, err := sim.ParseMode(*modeFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spsim:", err)
		os.Exit(2)
	}

	if *metricsOut != "" && *metricsEpoch == 0 {
		fmt.Fprintln(os.Stderr, "spsim: -metrics-out requires -metrics-epoch")
		os.Exit(2)
	}
	if *metricsEpoch > 0 && *all {
		fmt.Fprintln(os.Stderr, "spsim: -metrics-epoch is incompatible with -all (one series per run)")
		os.Exit(2)
	}

	machine := protocol.DefaultConfig()
	if *threads != machine.Nodes {
		var err error
		if machine, err = protocol.ConfigFor(*threads); err != nil {
			fmt.Fprintln(os.Stderr, "spsim:", err)
			os.Exit(2)
		}
	}

	var spec *scenario.Spec
	if *specPath != "" {
		if *all {
			fmt.Fprintln(os.Stderr, "spsim: -spec is incompatible with -all")
			os.Exit(2)
		}
		var err error
		if spec, err = loadSpec(*specPath); err != nil {
			fmt.Fprintln(os.Stderr, "spsim:", err)
			os.Exit(1)
		}
	}

	names := []string{*bench}
	if *all {
		names = workload.Names()
	}
	if spec != nil {
		names = []string{spec.Name}
	}

	tb := stats.NewTable("spsim: "+*proto+"/"+*pred,
		"benchmark", "cycles", "misses", "comm%", "missLat", "commLat", "nonCommLat",
		"acc%", "predTgt", "actTgt", "netKB", "energy")
	// With -all, a bad benchmark is recorded and the rest still run; the
	// failures are reported together at the end. A single-benchmark run
	// keeps fail-fast behaviour.
	var failures []string
	fail := func(name string, err error) {
		if !*all {
			fmt.Fprintln(os.Stderr, "spsim:", err)
			os.Exit(1)
		}
		failures = append(failures, fmt.Sprintf("%s: %v", name, err))
	}
	for _, name := range names {
		var prog *workload.Program
		var err error
		if spec != nil {
			prog, err = workload.FromSpec(spec, *threads, *scale, *seed)
		} else {
			var p workload.Profile
			if p, err = workload.ByName(name); err == nil {
				prog, err = p.Program(*threads, *scale, *seed)
			}
		}
		if err != nil {
			fail(name, err)
			continue
		}
		opt := sim.DefaultOptions()
		opt.Machine = machine
		opt.Shards = *shards
		if *proto == "bcast" {
			opt.Protocol = sim.Broadcast
		} else {
			opt.Predictors, err = buildPredictors(*pred, *threads)
			if err != nil {
				// A bad predictor name fails every benchmark: always fatal.
				fmt.Fprintln(os.Stderr, "spsim:", err)
				os.Exit(1)
			}
		}
		opt.Mode = mode
		opt.MetricsEpoch = event.Time(*metricsEpoch)
		res, err := sim.Run(prog, opt)
		if err != nil {
			fail(name, err)
			continue
		}
		if res.Metrics != nil && *metricsOut != "" {
			if err := writeSeries(*metricsOut, res.Metrics); err != nil {
				fmt.Fprintln(os.Stderr, "spsim:", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "spsim: metrics series (%d epochs) written to %s\n",
				len(res.Metrics.Epochs), *metricsOut)
		}
		row(tb, name, res)
	}
	tb.Render(os.Stdout)
	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "spsim: %d/%d benchmarks failed:\n", len(failures), len(names))
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "  "+f)
		}
		os.Exit(1)
	}
}

func row(tb *stats.Table, name string, r *sim.Result) {
	n := r.Nodes
	commLat, nonCommLat := 0.0, 0.0
	acc := 0.0
	predTgt, actTgt := 0.0, 0.0
	if r.Protocol == sim.Directory {
		if n.Communicating > 0 {
			commLat = float64(n.CommLatencySum) / float64(n.Communicating)
			acc = 100 * n.Accuracy()
		}
		if n.NonCommunicating > 0 {
			nonCommLat = float64(n.NonCommLatencySum) / float64(n.NonCommunicating)
		}
		if n.Predicted > 0 {
			predTgt = float64(n.PredTargets) / float64(n.Predicted)
		}
		if n.Misses > 0 {
			actTgt = float64(n.ActualTargets) / float64(n.Misses)
		}
	}
	tb.AddRowf(name, uint64(r.Cycles), r.Misses(), 100*r.CommRatio(),
		r.AvgMissLatency(), commLat, nonCommLat, acc, predTgt, actTgt,
		r.Net.Bytes/1024, r.Energy.Total())
}
