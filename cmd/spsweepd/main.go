// Command spsweepd serves sweep matrices to workers over HTTP: clients
// submit matrices with `spsweep run -server <url>`, workers lease jobs —
// either the daemon's own in-process pool (-workers) or remote
// `spsweep work -server <url>` processes — and completed cells land in
// the shared resumable artifact store, so restarting the daemon (or
// pointing a second one at the same -dir) recomputes nothing.
//
// Usage:
//
//	spsweepd [-addr 127.0.0.1:8437] [-addr-file path] [-dir results/sweep]
//	         [-workers N] [-lease-ttl 1m] [-retries 2] [-timeout 0]
//	         [-backoff 1s] [-backoff-seed 0] [-poll 200ms] [-quiet]
//	         [-token T] [-insecure] [-max-body 8388608]
//
// -addr-file, written after the listener binds, carries the actual
// address (useful with ":0" for tests and scripts). See internal/sweepd
// for the API and the determinism argument.
//
// Security: -token (default $SPSWEEPD_TOKEN) requires every API request
// except /healthz to carry "Authorization: Bearer <token>"; clients pass
// the matching -token to spsweep's server commands. Binding a non-loopback
// address without a token is refused unless -insecure explicitly accepts
// an open daemon. -max-body caps request bodies (oversized ones get 413).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"spcoh/internal/sweep"
	"spcoh/internal/sweepd"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "spsweepd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("spsweepd", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8437", "listen address (use :0 for an ephemeral port)")
	addrFile := fs.String("addr-file", "", "write the bound address to this file once listening")
	dir := fs.String("dir", "results/sweep", "shared artifact store directory")
	workers := fs.Int("workers", 0, "in-process worker pool size (0 = remote workers only)")
	shards := fs.Int("shards", 1, "intra-run executor shards per local-pool cell (engine knob; results are byte-identical)")
	leaseTTL := fs.Duration("lease-ttl", time.Minute, "job lease lifetime; heartbeats extend it")
	retries := fs.Int("retries", 2, "additional attempts per job after a failed one")
	timeout := fs.Duration("timeout", 0, "per-attempt wall-clock timeout for local workers (0 = none)")
	backoff := fs.Duration("backoff", time.Second, "base requeue delay after a failed attempt (jittered)")
	backoffSeed := fs.Int64("backoff-seed", 0, "seed for the requeue jitter")
	poll := fs.Duration("poll", 200*time.Millisecond, "local pool idle lease cadence")
	quiet := fs.Bool("quiet", false, "suppress per-event log lines")
	token := fs.String("token", os.Getenv("SPSWEEPD_TOKEN"),
		"shared bearer token required on every API request (default $SPSWEEPD_TOKEN; empty = no auth)")
	insecure := fs.Bool("insecure", false,
		"allow binding a non-loopback address without a token")
	maxBody := fs.Int64("max-body", 8<<20, "request body size cap in bytes")
	fs.Parse(args)

	if *token == "" && !*insecure && !loopbackAddr(*addr) {
		return fmt.Errorf("refusing to serve %q without a token: every host that can reach "+
			"this address can submit and lease jobs; set -token (or $SPSWEEPD_TOKEN), "+
			"bind a loopback address, or pass -insecure to accept an open daemon", *addr)
	}

	store, err := sweep.Open(*dir)
	if err != nil {
		return err
	}
	logf := func(format string, a ...any) {
		fmt.Fprintf(os.Stderr, "spsweepd: "+format+"\n", a...)
	}
	srv, err := sweepd.New(sweepd.Options{
		Store:        store,
		LeaseTTL:     *leaseTTL,
		Retries:      *retries,
		Backoff:      *backoff,
		BackoffSeed:  *backoffSeed,
		Timeout:      *timeout,
		LocalWorkers: *workers,
		Exec:         sweepd.ShardExec(*shards),
		Poll:         *poll,
		Token:        *token,
		MaxBodyBytes: *maxBody,
		Log: func(format string, a ...any) {
			if !*quiet {
				logf(format, a...)
			}
		},
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			ln.Close()
			return fmt.Errorf("write -addr-file: %w", err)
		}
	}
	logf("listening on %s (store %s, %d local workers, lease TTL %s)", bound, *dir, *workers, *leaseTTL)

	srv.Start()
	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		logf("shutting down")
	case err := <-serveErr:
		srv.Close()
		return err
	}

	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		logf("shutdown: %v", err)
	}
	srv.Close()
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	logf("stopped; completed cells are checkpointed in %s", *dir)
	return nil
}

// loopbackAddr reports whether a listen address cannot be reached from
// another host: an explicit loopback IP or "localhost". An empty host
// (":8437") binds every interface and is NOT loopback.
func loopbackAddr(addr string) bool {
	host, _, err := net.SplitHostPort(addr)
	if err != nil {
		// Unparseable addresses fail at Listen with a better error; don't
		// block them here.
		return true
	}
	if host == "localhost" {
		return true
	}
	ip := net.ParseIP(host)
	return ip != nil && ip.IsLoopback()
}
