// Command spscen works with declarative scenario specs (internal/scenario):
// it generates random-but-valid specs from a seed, validates spec files,
// summarizes them, and smoke-tests the generator across a seed range.
//
// Usage:
//
//	spscen gen      [-seed 42] [-phases 4] [-iters 6] [-accesses 8] [-o spec.json]
//	spscen validate [-threads 16] file.json...       # or -builtin for the embedded set
//	spscen show     [file.json...]                   # summary table; no args = builtin
//	spscen fuzz     [-n 50] [-seed 1] [-threads 8] [-scale 0.25]
//
// gen writes the canonical JSON of one generated spec, so
// `spscen gen -seed N | spsim -spec -` is fully deterministic in N.
// fuzz generates n consecutive seeds and proves each spec validates,
// regenerates byte-identically, and builds an op stream at the given
// thread count — the repository's check.sh gate over the generator.
package main

import (
	"flag"
	"fmt"
	"os"

	"spcoh/internal/scenario"
	"spcoh/internal/stats"
	"spcoh/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "validate":
		err = cmdValidate(os.Args[2:])
	case "show":
		err = cmdShow(os.Args[2:])
	case "fuzz":
		err = cmdFuzz(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "spscen: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "spscen:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: spscen <gen|validate|show|fuzz> [flags]

  gen       generate one scenario spec from a seed (canonical JSON to stdout)
  validate  validate spec files (-builtin: the embedded profile specs)
  show      summarize specs (no args: the embedded profile specs)
  fuzz      generate a seed range; prove validity, determinism and buildability

Run 'spscen <subcommand> -h' for flags.`)
}

func genOptFlags(fs *flag.FlagSet) *scenario.GenOptions {
	o := &scenario.GenOptions{}
	fs.IntVar(&o.MaxPhases, "phases", 0, "max pattern phases (0 = default)")
	fs.IntVar(&o.MaxIters, "iters", 0, "max base iterations (0 = default)")
	fs.IntVar(&o.MaxAccesses, "accesses", 0, "max per-step access count (0 = default)")
	return o
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	seed := fs.Int64("seed", 42, "generator seed (the spec is a pure function of it)")
	out := fs.String("o", "-", `output file ("-" = stdout)`)
	opt := genOptFlags(fs)
	fs.Parse(args)

	s := scenario.Generate(*seed, *opt)
	b, err := s.Canonical()
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if *out == "-" {
		_, err = os.Stdout.Write(b)
		return err
	}
	return os.WriteFile(*out, b, 0o644)
}

// load reads either the named files or, with builtin, every embedded
// profile spec.
func load(builtin bool, paths []string) ([]*scenario.Spec, error) {
	if builtin {
		var specs []*scenario.Spec
		for _, p := range workload.All() {
			specs = append(specs, p.Spec)
		}
		return specs, nil
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("no spec files given (or use -builtin)")
	}
	var specs []*scenario.Spec
	for _, path := range paths {
		s, err := scenario.Load(path)
		if err != nil {
			return nil, err
		}
		specs = append(specs, s)
	}
	return specs, nil
}

func cmdValidate(args []string) error {
	fs := flag.NewFlagSet("validate", flag.ExitOnError)
	builtin := fs.Bool("builtin", false, "validate the embedded profile specs")
	threads := fs.Int("threads", 16, "also prove each spec builds at this thread count")
	fs.Parse(args)

	specs, err := load(*builtin, fs.Args())
	if err != nil {
		return err
	}
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			return err
		}
		if _, err := workload.FromSpec(s, *threads, 0.25, 1); err != nil {
			return fmt.Errorf("spec %q: builds failed: %w", s.Name, err)
		}
	}
	fmt.Printf("spscen: %d specs valid (build checked at %d threads)\n", len(specs), *threads)
	return nil
}

func cmdShow(args []string) error {
	fs := flag.NewFlagSet("show", flag.ExitOnError)
	fs.Parse(args)

	specs, err := load(len(fs.Args()) == 0, fs.Args())
	if err != nil {
		return err
	}
	t := stats.NewTable("scenario specs",
		"name", "suite", "barriers", "locks", "iters", "steps", "digest")
	for _, s := range specs {
		t.AddRowf(s.Name, s.Suite, s.Barriers, s.Locks, s.Iters, len(s.Steps), s.Digest()[:12])
	}
	t.Render(os.Stdout)
	return nil
}

func cmdFuzz(args []string) error {
	fs := flag.NewFlagSet("fuzz", flag.ExitOnError)
	n := fs.Int("n", 50, "number of consecutive seeds to test")
	seed := fs.Int64("seed", 1, "first seed")
	threads := fs.Int("threads", 8, "thread count for the build check")
	scale := fs.Float64("scale", 0.25, "workload scale for the build check")
	opt := genOptFlags(fs)
	fs.Parse(args)

	var ops int
	for i := 0; i < *n; i++ {
		sd := *seed + int64(i)
		s := scenario.Generate(sd, *opt)
		if err := s.Validate(); err != nil {
			return fmt.Errorf("seed %d: generated spec invalid: %w", sd, err)
		}
		if again := scenario.Generate(sd, *opt); again.Digest() != s.Digest() {
			return fmt.Errorf("seed %d: generator is not deterministic", sd)
		}
		prog, err := workload.FromSpec(s, *threads, *scale, sd)
		if err != nil {
			return fmt.Errorf("seed %d: spec %q does not build: %w", sd, s.Name, err)
		}
		ops += prog.TotalOps()
	}
	fmt.Printf("spscen: fuzzed seeds %d..%d: all valid, deterministic and buildable (%d ops total)\n",
		*seed, *seed+int64(*n)-1, ops)
	return nil
}
