// Command spstat renders the run-time metrics time-series produced by the
// simulator's observability layer (internal/metrics, enabled with spsim
// -metrics-epoch or spsweep -metrics-epoch).
//
// Usage:
//
//	spstat [-format table|csv|json] series.json     # render a series
//	spstat -validate series.json                    # structural check only
//	spstat -bench [-bench-out results/BENCH_metrics.json]
//	       [-bench-name ocean] [-bench-scale 0.2] [-bench-epoch 10000]
//
// The table view prints one row per epoch: mean/max link utilization,
// stall cycles, deliveries, per-class message counts, miss and predictor
// rates, and event-engine health. CSV carries the same columns
// machine-readably; JSON re-emits the validated series canonically.
//
// -bench measures the collector's overhead: it runs the same fixed
// simulation with metrics disabled and enabled, compares wall time, and
// writes a small JSON report. The simulated results must be identical —
// the benchmark double-checks cycles and misses agree — so the report
// isolates pure observer cost.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"spcoh/internal/event"
	"spcoh/internal/metrics"
	"spcoh/internal/sim"
	"spcoh/internal/stats"
	"spcoh/internal/workload"
)

func main() {
	format := flag.String("format", "table", "output format: table|csv|json")
	validate := flag.Bool("validate", false, "validate the series and exit (prints a summary line)")
	bench := flag.Bool("bench", false, "measure collector overhead instead of reading a series")
	benchOut := flag.String("bench-out", "results/BENCH_metrics.json", "overhead report path for -bench")
	benchName := flag.String("bench-name", "ocean", "benchmark for -bench")
	benchScale := flag.Float64("bench-scale", 0.2, "workload scale for -bench")
	benchEpoch := flag.Uint64("bench-epoch", 10000, "metrics epoch for the enabled half of -bench")
	flag.Parse()

	if *bench {
		if err := runBench(*benchName, *benchScale, *benchEpoch, *benchOut); err != nil {
			fmt.Fprintln(os.Stderr, "spstat:", err)
			os.Exit(1)
		}
		return
	}

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: spstat [-format table|csv|json] [-validate] series.json")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "spstat:", err)
		os.Exit(1)
	}
	series, err := metrics.ReadJSON(f)
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "spstat:", err)
		os.Exit(1)
	}

	if *validate {
		fmt.Printf("spstat: %s: valid series, %d epochs x %d cycles, %d links, %d nodes, %d total cycles\n",
			flag.Arg(0), len(series.Epochs), series.EpochCycles, series.Links, series.Nodes, series.Cycles)
		return
	}

	switch *format {
	case "table":
		renderTable(series, flag.Arg(0))
	case "csv":
		renderCSV(series)
	case "json":
		if err := series.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "spstat:", err)
			os.Exit(1)
		}
	default:
		fmt.Fprintf(os.Stderr, "spstat: unknown format %q (table|csv|json)\n", *format)
		os.Exit(2)
	}
}

// epochCells returns the rendered values of one epoch row, shared by the
// table and CSV views so the two never drift.
func epochCells(e *metrics.EpochRow) []any {
	util, _ := e.MaxLinkUtilization()
	var stall uint64
	for _, v := range e.LinkStall {
		stall += v
	}
	missLat := 0.0
	if e.Misses > 0 {
		missLat = float64(e.MissLatSum) / float64(e.Misses)
	}
	return []any{
		e.Epoch, e.Start, e.End,
		100 * e.MeanLinkUtilization(), 100 * util, stall, e.Delivered,
		e.ClassCount[metrics.ClassRequest], e.ClassCount[metrics.ClassResponse],
		e.ClassCount[metrics.ClassInvalidate], e.ClassCount[metrics.ClassAck],
		e.Misses, missLat, 100 * e.Accuracy(), 100 * e.Coverage(),
		e.Fired, e.QueueMax,
	}
}

var epochHeader = []string{
	"epoch", "start", "end", "util%", "maxUtil%", "stall", "delivered",
	"req", "resp", "inv", "ack", "misses", "missLat", "acc%", "cov%",
	"fired", "qmax",
}

func renderTable(s *metrics.Series, name string) {
	tb := stats.NewTable("spstat: "+name, epochHeader...)
	for i := range s.Epochs {
		tb.AddRowf(epochCells(&s.Epochs[i])...)
	}
	tb.AddNote("%d cycles in %d-cycle epochs; %d links, %d nodes", s.Cycles, s.EpochCycles, s.Links, s.Nodes)
	tb.Render(os.Stdout)
}

func renderCSV(s *metrics.Series) {
	for i, h := range epochHeader {
		if i > 0 {
			fmt.Print(",")
		}
		fmt.Print(h)
	}
	fmt.Println()
	for i := range s.Epochs {
		for j, c := range epochCells(&s.Epochs[i]) {
			if j > 0 {
				fmt.Print(",")
			}
			switch v := c.(type) {
			case float64:
				fmt.Printf("%.4f", v)
			default:
				fmt.Printf("%v", v)
			}
		}
		fmt.Println()
	}
}

// benchReport is the overhead measurement written by -bench.
type benchReport struct {
	Bench        string  `json:"bench"`
	Scale        float64 `json:"scale"`
	Seed         int64   `json:"seed"`
	MetricsEpoch uint64  `json:"metrics_epoch"`
	Cycles       uint64  `json:"cycles"`
	Epochs       int     `json:"epochs"`
	Runs         int     `json:"runs"`
	OffNanos     int64   `json:"off_nanos"`
	OnNanos      int64   `json:"on_nanos"`
	OverheadPct  float64 `json:"overhead_pct"`
}

func runBench(bench string, scale float64, epoch uint64, out string) error {
	prof, err := workload.ByName(bench)
	if err != nil {
		return err
	}
	const seed, runs = 42, 9
	run := func(metricsEpoch uint64) (*sim.Result, time.Duration, error) {
		prog := prof.Build(16, scale, seed)
		opt := sim.DefaultOptions()
		opt.MetricsEpoch = event.Time(metricsEpoch)
		start := time.Now()
		r, err := sim.Run(prog, opt)
		return r, time.Since(start), err
	}

	// Warm up both configurations untimed: the first runs pay one-time
	// costs (page faults, branch-predictor and cache warmup, heap growth)
	// that would otherwise bias whichever side runs first. Then interleave
	// the timed off/on pairs so slow drift (thermal throttling, competing
	// load) hits both sides equally, and take medians, which shrug off the
	// occasional run an OS hiccup inflates.
	off, _, err := run(0)
	if err != nil {
		return err
	}
	on, _, err := run(epoch)
	if err != nil {
		return err
	}
	offTimes := make([]time.Duration, 0, runs)
	onTimes := make([]time.Duration, 0, runs)
	for i := 0; i < runs; i++ {
		_, offT, err := run(0)
		if err != nil {
			return err
		}
		_, onT, err := run(epoch)
		if err != nil {
			return err
		}
		offTimes = append(offTimes, offT)
		onTimes = append(onTimes, onT)
	}
	offWall := median(offTimes)
	onWall := median(onTimes)
	if off.Cycles != on.Cycles || off.Misses() != on.Misses() {
		return fmt.Errorf("metrics perturbed the simulation: cycles %d vs %d, misses %d vs %d",
			off.Cycles, on.Cycles, off.Misses(), on.Misses())
	}
	rep := benchReport{
		Bench:        bench,
		Scale:        scale,
		Seed:         seed,
		MetricsEpoch: epoch,
		Cycles:       uint64(off.Cycles),
		Epochs:       len(on.Metrics.Epochs),
		Runs:         runs,
		OffNanos:     offWall.Nanoseconds(),
		OnNanos:      onWall.Nanoseconds(),
		OverheadPct:  100 * (float64(onWall)/float64(offWall) - 1),
	}
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("spstat: bench %s x%.2f: off %.1fms, on %.1fms (epoch %d, %d epochs), overhead %.2f%% -> %s\n",
		bench, scale, float64(offWall.Nanoseconds())/1e6, float64(onWall.Nanoseconds())/1e6,
		epoch, rep.Epochs, rep.OverheadPct, out)
	return nil
}

// median returns the middle of the sorted samples (lower middle when even).
func median(ds []time.Duration) time.Duration {
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[(len(s)-1)/2]
}
