// Package spcoh is a from-scratch reproduction of "Predicting Coherence
// Communication by Tracking Synchronization Points at Run Time"
// (Demetriades & Cho, MICRO 2012): a cycle-level chip-multiprocessor
// simulator with a directory-based MESIF coherence protocol extended with
// destination-set prediction, a broadcast snooping baseline, the paper's
// SP-predictor and its ADDR/INST/UNI competitors, synthetic SPLASH-2 and
// PARSEC workload stand-ins, and a harness that regenerates every table
// and figure of the paper's evaluation.
//
// Quick start:
//
//	m, err := spcoh.RunBenchmark("ocean", spcoh.Options{Predictor: spcoh.SP})
//	fmt.Printf("miss latency %.1f cycles, accuracy %.0f%%\n",
//		m.AvgMissLatency, 100*m.PredictionAccuracy)
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for measured
// reproductions of the paper's results.
package spcoh

import (
	"fmt"

	"spcoh/internal/arch"
	"spcoh/internal/core"
	"spcoh/internal/experiments"
	"spcoh/internal/predictor"
	"spcoh/internal/protocol"
	"spcoh/internal/sim"
	"spcoh/internal/workload"
)

// PredictorKind selects the coherence configuration of a run.
type PredictorKind string

// Available configurations.
const (
	// Directory is the baseline MESIF directory protocol (no prediction).
	Directory PredictorKind = "directory"
	// SP is the paper's synchronization-point-based predictor.
	SP PredictorKind = "sp"
	// Addr is the macroblock address-indexed group predictor.
	Addr PredictorKind = "addr"
	// Inst is the instruction (PC) indexed group predictor.
	Inst PredictorKind = "inst"
	// Uni is the single-entry locality predictor.
	Uni PredictorKind = "uni"
	// SPFiltered is SP behind a region snoop filter that suppresses
	// prediction attempts on private data (the paper's §5.3 discussion).
	SPFiltered PredictorKind = "sp+filter"
	// Broadcast is the snooping protocol baseline.
	Broadcast PredictorKind = "broadcast"
)

// Options configures a benchmark run. The zero value runs the baseline
// directory protocol on the paper's 16-core machine at full workload scale.
type Options struct {
	Predictor PredictorKind // default Directory
	Scale     float64       // workload scale; default 1.0
	Seed      int64         // workload build seed; default 42
	Threads   int           // cores/threads; default 16 (must match the 4x4 mesh)

	// SPConfig overrides the SP-predictor parameters (nil = paper
	// defaults). Only consulted when Predictor == SP.
	SPConfig *SPConfig
}

// SPConfig mirrors the tunable parameters of the SP-predictor (§4).
type SPConfig struct {
	HistoryDepth  int     // signature history depth d (default 2)
	HotThreshold  float64 // hot-set share threshold (default 0.10)
	WarmupMisses  int     // d=0 warm-up (default 8; see package core)
	NoiseMinComm  int     // noisy-instance filter (default 4)
	ConfidenceMax int     // confidence counter ceiling (default 15)
	StrideDetect  bool    // stride-2 repetitive pattern policy
	MaxEntries    int     // SP-table capacity; 0 = unlimited
}

func (o Options) normalize() Options {
	if o.Predictor == "" {
		o.Predictor = Directory
	}
	if o.Scale == 0 {
		o.Scale = 1.0
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.Threads == 0 {
		o.Threads = 16
	}
	return o
}

// Metrics are the measurements of one run — the quantities the paper's
// evaluation reports.
type Metrics struct {
	Benchmark string
	Predictor string

	Cycles uint64 // execution time
	Misses uint64 // L2 misses

	CommRatio          float64 // fraction of communicating misses (Fig. 1)
	AvgMissLatency     float64 // cycles (Fig. 8)
	CommMissLatency    float64
	NonCommMissLatency float64

	PredictionAccuracy float64 // fraction of communicating misses predicted (Fig. 7)
	AccuracyBySource   map[string]float64
	PredictedTargets   float64 // avg predicted set size (Table 5)
	ActualTargets      float64 // avg minimum sufficient set size (Table 5)

	NetworkBytes uint64  // interconnect traffic (Fig. 9)
	Energy       float64 // NoC + lookup energy, model units (Fig. 11)
	StorageBits  int     // predictor storage (Figs. 12-13)
}

// Benchmarks lists the 17 workloads in the paper's order.
func Benchmarks() []string { return workload.Names() }

// Experiments lists the regenerable table/figure IDs.
func Experiments() []string {
	var out []string
	for _, e := range experiments.All() {
		out = append(out, e.ID)
	}
	return out
}

func buildPredictors(o Options) ([]predictor.Predictor, error) {
	n := o.Threads
	switch o.Predictor {
	case Directory, Broadcast:
		return nil, nil
	case SP:
		cfg := core.DefaultConfig(n)
		if s := o.SPConfig; s != nil {
			if s.HistoryDepth > 0 {
				cfg.HistoryDepth = s.HistoryDepth
			}
			if s.HotThreshold > 0 {
				cfg.HotThreshold = s.HotThreshold
			}
			if s.WarmupMisses > 0 {
				cfg.WarmupMisses = s.WarmupMisses
			}
			if s.NoiseMinComm > 0 {
				cfg.NoiseMinComm = s.NoiseMinComm
			}
			if s.ConfidenceMax > 0 {
				cfg.ConfidenceMax = s.ConfidenceMax
			}
			cfg.StrideDetect = s.StrideDetect
			cfg.MaxEntries = s.MaxEntries
		}
		return core.NewSystem(cfg), nil
	case SPFiltered:
		preds := core.NewSystem(core.DefaultConfig(n))
		for i := range preds {
			preds[i] = predictor.NewRegionFilter(preds[i])
		}
		return preds, nil
	case Addr, Inst, Uni:
		preds := make([]predictor.Predictor, n)
		for i := range preds {
			switch o.Predictor {
			case Addr:
				preds[i] = predictor.NewAddr(arch.NodeID(i), n)
			case Inst:
				preds[i] = predictor.NewInst(arch.NodeID(i), n)
			default:
				preds[i] = predictor.NewUni(arch.NodeID(i), n)
			}
		}
		return preds, nil
	default:
		return nil, fmt.Errorf("spcoh: unknown predictor %q", o.Predictor)
	}
}

// RunBenchmark simulates one named benchmark under the given options.
func RunBenchmark(bench string, o Options) (*Metrics, error) {
	o = o.normalize()
	prof, err := workload.ByName(bench)
	if err != nil {
		return nil, err
	}
	prog := prof.Build(o.Threads, o.Scale, o.Seed)
	return RunProgram(&Program{p: prog}, o)
}

// RunProgram simulates a custom program (see NewProgram). The machine is
// the paper's 16-core CMP by default; thread counts of 4 or 64 select a
// 2x2 or 8x8 mesh with the same per-tile parameters.
func RunProgram(p *Program, o Options) (*Metrics, error) {
	o = o.normalize()
	opt := sim.DefaultOptions()
	if o.Threads != opt.Machine.Nodes {
		m, err := protocol.ConfigFor(o.Threads)
		if err != nil {
			return nil, err
		}
		opt.Machine = m
	}
	if o.Predictor == Broadcast {
		opt.Protocol = sim.Broadcast
	} else {
		preds, err := buildPredictors(o)
		if err != nil {
			return nil, err
		}
		opt.Predictors = preds
	}
	res, err := sim.Run(p.p, opt)
	if err != nil {
		return nil, err
	}
	return toMetrics(res), nil
}

func toMetrics(res *sim.Result) *Metrics {
	m := &Metrics{
		Benchmark:    res.Benchmark,
		Predictor:    res.Predictor,
		Cycles:       uint64(res.Cycles),
		Misses:       res.Misses(),
		CommRatio:    res.CommRatio(),
		NetworkBytes: res.Net.Bytes,
		Energy:       res.Energy.Total(),
		StorageBits:  res.StorageBits,
	}
	m.AvgMissLatency = res.AvgMissLatency()
	n := res.Nodes
	if n.Communicating > 0 {
		m.CommMissLatency = float64(n.CommLatencySum) / float64(n.Communicating)
		m.PredictionAccuracy = n.Accuracy()
		m.AccuracyBySource = map[string]float64{}
		for tag, c := range n.PredCorrectByTag {
			if c > 0 {
				m.AccuracyBySource[predictor.Tag(tag).String()] =
					float64(c) / float64(n.Communicating)
			}
		}
	}
	if n.NonCommunicating > 0 {
		m.NonCommMissLatency = float64(n.NonCommLatencySum) / float64(n.NonCommunicating)
	}
	if n.Predicted > 0 {
		m.PredictedTargets = float64(n.PredTargets) / float64(n.Predicted)
	}
	if n.Misses > 0 {
		m.ActualTargets = float64(n.ActualTargets) / float64(n.Misses)
	}
	return m
}

// RunExperiment regenerates one paper table/figure and returns it rendered
// as text. Scale 0 means full scale.
func RunExperiment(id string, scale float64) (string, error) {
	e, err := experiments.ByID(id)
	if err != nil {
		return "", err
	}
	cfg := experiments.Default()
	if scale > 0 {
		cfg.Scale = scale
	}
	tab, err := e.Run(experiments.NewRunner(cfg))
	if err != nil {
		return "", err
	}
	return tab.String(), nil
}
