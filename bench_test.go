// Benchmark harness: one testing.B benchmark per table and figure of the
// paper. Each benchmark regenerates the artifact (printing its rows on the
// first iteration with -v via b.Log) and reports the headline scalar as a
// custom metric, so `go test -bench=.` doubles as a reproduction run.
//
// Benchmarks run at a reduced workload scale to keep iterations tractable;
// the spbench command regenerates everything at full scale.
package spcoh_test

import (
	"fmt"
	"sync"
	"testing"

	"spcoh/internal/experiments"
	"spcoh/internal/stats"
)

var (
	runnerOnce sync.Once
	runner     *experiments.Runner
)

// benchRunner shares one result cache across all benchmarks in a run.
func benchRunner(b *testing.B) *experiments.Runner {
	b.Helper()
	runnerOnce.Do(func() {
		cfg := experiments.Quick()
		if testing.Short() {
			cfg.Scale = 0.1
		}
		runner = experiments.NewRunner(cfg)
	})
	return runner
}

// runExperiment regenerates one artifact b.N times (results are cached by
// the runner after the first generation, so the benchmark measures the
// harness cost while guaranteeing at least one full generation).
func runExperiment(b *testing.B, id string) *stats.Table {
	b.Helper()
	r := benchRunner(b)
	e, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	var t *stats.Table
	for i := 0; i < b.N; i++ {
		t, err = e.Run(r)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + t.String())
	return t
}

func BenchmarkTable1(b *testing.B) { runExperiment(b, "table1") }

func BenchmarkFig1(b *testing.B) {
	t := runExperiment(b, "fig1")
	reportLastAvg(b, t, 1, "comm-ratio")
}

func BenchmarkFig2(b *testing.B) { runExperiment(b, "fig2") }
func BenchmarkFig4(b *testing.B) { runExperiment(b, "fig4") }
func BenchmarkFig5(b *testing.B) { runExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B) { runExperiment(b, "fig6") }

func BenchmarkFig7(b *testing.B) {
	t := runExperiment(b, "fig7")
	reportLastAvg(b, t, 5, "accuracy-%")
}

func BenchmarkTable5(b *testing.B) { runExperiment(b, "table5") }

func BenchmarkFig8(b *testing.B) {
	t := runExperiment(b, "fig8")
	reportLastAvg(b, t, 3, "sp-norm-latency")
}

func BenchmarkFig9(b *testing.B) {
	t := runExperiment(b, "fig9")
	reportLastAvg(b, t, 1, "sp-addl-bw-%")
}

func BenchmarkFig10(b *testing.B) {
	t := runExperiment(b, "fig10")
	reportLastAvg(b, t, 3, "sp-norm-exectime")
}

func BenchmarkFig11(b *testing.B) {
	t := runExperiment(b, "fig11")
	reportLastAvg(b, t, 2, "sp-norm-energy")
}

func BenchmarkFig12(b *testing.B) { runExperiment(b, "fig12") }
func BenchmarkFig13(b *testing.B) { runExperiment(b, "fig13") }

// reportLastAvg reports the numeric cell at column col of the table's last
// row (the "average" row) as a benchmark metric.
func reportLastAvg(b *testing.B, t *stats.Table, col int, unit string) {
	b.Helper()
	if len(t.Rows) == 0 {
		return
	}
	last := t.Rows[len(t.Rows)-1]
	if col >= len(last) {
		return
	}
	var v float64
	if _, err := fmt.Sscan(last[col], &v); err == nil {
		b.ReportMetric(v, unit)
	}
}
