// Package experiments regenerates every table and figure of the paper's
// characterization (§3) and evaluation (§5) sections. Each experiment is a
// named generator producing a text table; the spbench command and the
// repository's bench suite drive them.
package experiments

import (
	"fmt"

	"spcoh/internal/arch"
	"spcoh/internal/charac"
	"spcoh/internal/core"
	"spcoh/internal/predictor"
	"spcoh/internal/sim"
	"spcoh/internal/trace"
	"spcoh/internal/workload"
)

// Config scales the experiment workloads.
type Config struct {
	Threads int
	Scale   float64
	Seed    int64
}

// Default is the full-size configuration used for EXPERIMENTS.md.
func Default() Config { return Config{Threads: 16, Scale: 1.0, Seed: 42} }

// Quick is a reduced configuration for smoke runs and -short benchmarks.
func Quick() Config { return Config{Threads: 16, Scale: 0.25, Seed: 42} }

// Runner executes and caches simulation runs; experiments share results.
type Runner struct {
	Cfg Config

	results  map[string]*sim.Result
	analyses map[string]*charac.Analysis
	programs map[string]*workload.Program
	books    map[string]*core.OracleBook
}

// NewRunner builds an empty cache over cfg.
func NewRunner(cfg Config) *Runner {
	return &Runner{
		Cfg:      cfg,
		results:  make(map[string]*sim.Result),
		analyses: make(map[string]*charac.Analysis),
		programs: make(map[string]*workload.Program),
		books:    make(map[string]*core.OracleBook),
	}
}

func (r *Runner) program(bench string) *workload.Program {
	if p, ok := r.programs[bench]; ok {
		return p
	}
	prof, err := workload.ByName(bench)
	if err != nil {
		panic(err)
	}
	p := prof.Build(r.Cfg.Threads, r.Cfg.Scale, r.Cfg.Seed)
	r.programs[bench] = p
	return p
}

// predictorsFor builds the per-node predictor set for a configuration name.
func (r *Runner) predictorsFor(bench, kind string) []predictor.Predictor {
	n := r.Cfg.Threads
	mk := func(f func(arch.NodeID) predictor.Predictor) []predictor.Predictor {
		preds := make([]predictor.Predictor, n)
		for i := range preds {
			preds[i] = f(arch.NodeID(i))
		}
		return preds
	}
	switch kind {
	case "dir", "bcast":
		return nil
	case "sp":
		return core.NewSystem(core.DefaultConfig(n))
	case "sp+filter":
		// §5.3 extension: a region snoop filter suppressing prediction
		// attempts on private data.
		preds := core.NewSystem(core.DefaultConfig(n))
		for i := range preds {
			preds[i] = predictor.NewRegionFilter(preds[i])
		}
		return preds
	case "sp512":
		cfg := core.DefaultConfig(n)
		cfg.MaxEntries = 512
		return core.NewSystem(cfg)
	case "addr":
		return mk(func(id arch.NodeID) predictor.Predictor { return predictor.NewAddr(id, n) })
	case "inst":
		return mk(func(id arch.NodeID) predictor.Predictor { return predictor.NewInst(id, n) })
	case "uni":
		return mk(func(id arch.NodeID) predictor.Predictor { return predictor.NewUni(id, n) })
	case "addr-small":
		// ~0.5KB per node: the capacity wall sits ~8x lower than the
		// paper's 4KB because the synthetic working sets are ~8x smaller.
		return mk(func(id arch.NodeID) predictor.Predictor {
			cfg := predictor.DefaultAddrConfig(n)
			cfg.Entries = 64
			return predictor.NewGroup("ADDR-small", id, cfg)
		})
	case "inst-small":
		return mk(func(id arch.NodeID) predictor.Predictor {
			cfg := predictor.DefaultInstConfig(n)
			cfg.Entries = 64
			return predictor.NewGroup("INST-small", id, cfg)
		})
	case "oracle":
		return core.OracleSystem(n, r.book(bench))
	default:
		panic(fmt.Sprintf("experiments: unknown configuration %q", kind))
	}
}

// book runs (once) the oracle-recording profiling pass for a benchmark.
func (r *Runner) book(bench string) *core.OracleBook {
	if b, ok := r.books[bench]; ok {
		return b
	}
	b := core.NewOracleBook()
	opt := sim.DefaultOptions()
	opt.Predictors = core.RecorderSystem(core.DefaultConfig(r.Cfg.Threads), b)
	if _, err := sim.Run(r.program(bench), opt); err != nil {
		panic(err)
	}
	r.books[bench] = b
	return b
}

// Run executes (or recalls) one benchmark under one configuration.
func (r *Runner) Run(bench, kind string) *sim.Result {
	key := bench + "/" + kind
	if res, ok := r.results[key]; ok {
		return res
	}
	opt := sim.DefaultOptions()
	if kind == "bcast" {
		opt.Protocol = sim.Broadcast
	} else {
		opt.Predictors = r.predictorsFor(bench, kind)
	}
	res, err := sim.Run(r.program(bench), opt)
	if err != nil {
		panic(fmt.Sprintf("experiments: %s: %v", key, err))
	}
	r.results[key] = res
	return res
}

// Analysis executes (or recalls) the trace-collection run for a benchmark
// and digests it (the paper's §3.2 methodology: a baseline-directory run
// with trace capture).
func (r *Runner) Analysis(bench string) *charac.Analysis {
	if a, ok := r.analyses[bench]; ok {
		return a
	}
	col := &trace.Collector{}
	opt := sim.DefaultOptions()
	opt.Tracer = col
	if _, err := sim.Run(r.program(bench), opt); err != nil {
		panic(fmt.Sprintf("experiments: trace %s: %v", bench, err))
	}
	a := charac.Analyze(col.Events, r.Cfg.Threads)
	r.analyses[bench] = a
	return a
}

// Benchmarks returns the benchmark list in paper order.
func Benchmarks() []string { return workload.Names() }
