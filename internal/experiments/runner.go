// Package experiments regenerates every table and figure of the paper's
// characterization (§3) and evaluation (§5) sections. Each experiment is a
// named generator producing a text table; the spbench command and the
// repository's bench suite drive them.
package experiments

import (
	"fmt"
	"sync"

	"spcoh/internal/arch"
	"spcoh/internal/charac"
	"spcoh/internal/core"
	"spcoh/internal/event"
	"spcoh/internal/predictor"
	"spcoh/internal/protocol"
	"spcoh/internal/runcfg"
	"spcoh/internal/scenario"
	"spcoh/internal/sim"
	"spcoh/internal/trace"
	"spcoh/internal/workload"
)

// Config scales the experiment workloads. It is the shared run
// configuration (see internal/runcfg); the sweep layer embeds the same
// struct in its jobs, so a cell's sizing flows through unconverted.
// MetricsEpoch semantics here: non-zero enables the run-time metrics
// collector on every measurement run; auxiliary passes (oracle profiling,
// trace capture) never collect.
type Config = runcfg.RunConfig

// Default is the full-size configuration used for EXPERIMENTS.md.
func Default() Config { return Config{Threads: 16, Scale: 1.0, Seed: 42} }

// Quick is a reduced configuration for smoke runs and -short benchmarks.
func Quick() Config { return Config{Threads: 16, Scale: 0.25, Seed: 42} }

// Kinds returns every configuration name understood by Runner.Run, in
// evaluation order.
func Kinds() []string {
	return []string{"dir", "bcast", "sp", "sp+filter", "sp512",
		"addr", "inst", "uni", "addr-small", "inst-small", "oracle"}
}

// EvalKinds returns the paper's §5 comparison set (the sweep run by
// spsweep's default matrix).
func EvalKinds() []string {
	return []string{"dir", "bcast", "sp", "sp+filter", "addr", "inst", "uni", "oracle"}
}

// Runner executes and caches simulation runs; experiments share results.
// It is safe for concurrent use: every cache key is computed exactly once
// (single-flight), and concurrent callers of an in-flight key block until
// the first computation finishes and then share its outcome.
type Runner struct {
	Cfg Config

	// Spec, when set, adds one scenario-spec workload: a bench name equal
	// to the spec's name resolves to the spec instead of a built-in
	// profile. Its program cache key is the spec's content digest, so two
	// distinct specs sharing a name (e.g. two "fuzz-1" variants across
	// runner instances) can never alias a cached program.
	Spec *scenario.Spec

	results  cache[*sim.Result]
	analyses cache[*charac.Analysis]
	programs cache[*workload.Program]
	books    cache[*core.OracleBook]
}

// NewRunner builds an empty cache over cfg.
func NewRunner(cfg Config) *Runner { return &Runner{Cfg: cfg} }

// cache is a concurrency-safe, single-flight memoization table. The first
// caller of a key runs fn while later callers wait on the same flight and
// share its result, so a simulation is never executed twice. A panic inside
// fn becomes the key's error: waiters never hang and callers get a
// diagnosable failure instead of a crashed process.
type cache[T any] struct {
	mu sync.Mutex
	m  map[string]*flight[T]
}

type flight[T any] struct {
	done sync.WaitGroup
	val  T
	err  error
}

func (c *cache[T]) do(key string, fn func() (T, error)) (T, error) {
	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[string]*flight[T])
	}
	if f, ok := c.m[key]; ok {
		c.mu.Unlock()
		f.done.Wait()
		return f.val, f.err
	}
	f := new(flight[T])
	f.done.Add(1)
	c.m[key] = f
	c.mu.Unlock()
	defer f.done.Done()
	f.val, f.err = protect(key, fn)
	return f.val, f.err
}

// protect runs fn, converting a panic into a returned error.
func protect[T any](key string, fn func() (T, error)) (val T, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("experiments: %s: panic: %v", key, p)
		}
	}()
	return fn()
}

// options builds the sim options every pass of this runner shares: the
// machine sized to the configured thread count (the paper's 16-node mesh
// stays the default; other counts select the matching square mesh), the
// fidelity mode, and the executor shard count.
func (r *Runner) options() (sim.Options, error) {
	opt := sim.DefaultOptions()
	if r.Cfg.Threads != opt.Machine.Nodes {
		m, err := protocol.ConfigFor(r.Cfg.Threads)
		if err != nil {
			return opt, fmt.Errorf("experiments: %w", err)
		}
		opt.Machine = m
	}
	opt.Mode = sim.Mode(r.Cfg.Mode)
	opt.Shards = r.Cfg.Shards
	return opt, nil
}

func (r *Runner) program(bench string) (*workload.Program, error) {
	if r.Spec != nil && bench == r.Spec.Name {
		return r.programs.do("spec:"+r.Spec.Digest(), func() (*workload.Program, error) {
			return workload.FromSpec(r.Spec, r.Cfg.Threads, r.Cfg.Scale, r.Cfg.Seed)
		})
	}
	return r.programs.do(bench, func() (*workload.Program, error) {
		prof, err := workload.ByName(bench)
		if err != nil {
			return nil, fmt.Errorf("experiments: %w", err)
		}
		return prof.Program(r.Cfg.Threads, r.Cfg.Scale, r.Cfg.Seed)
	})
}

// predictorsFor builds the per-node predictor set for a configuration name.
func (r *Runner) predictorsFor(bench, kind string) ([]predictor.Predictor, error) {
	n := r.Cfg.Threads
	mk := func(f func(arch.NodeID) predictor.Predictor) []predictor.Predictor {
		preds := make([]predictor.Predictor, n)
		for i := range preds {
			preds[i] = f(arch.NodeID(i))
		}
		return preds
	}
	switch kind {
	case "dir", "bcast":
		return nil, nil
	case "sp":
		return core.NewSystem(core.DefaultConfig(n)), nil
	case "sp+filter":
		// §5.3 extension: a region snoop filter suppressing prediction
		// attempts on private data.
		preds := core.NewSystem(core.DefaultConfig(n))
		for i := range preds {
			preds[i] = predictor.NewRegionFilter(preds[i])
		}
		return preds, nil
	case "sp512":
		cfg := core.DefaultConfig(n)
		cfg.MaxEntries = 512
		return core.NewSystem(cfg), nil
	case "addr":
		return mk(func(id arch.NodeID) predictor.Predictor { return predictor.NewAddr(id, n) }), nil
	case "inst":
		return mk(func(id arch.NodeID) predictor.Predictor { return predictor.NewInst(id, n) }), nil
	case "uni":
		return mk(func(id arch.NodeID) predictor.Predictor { return predictor.NewUni(id, n) }), nil
	case "addr-small":
		// ~0.5KB per node: the capacity wall sits ~8x lower than the
		// paper's 4KB because the synthetic working sets are ~8x smaller.
		return mk(func(id arch.NodeID) predictor.Predictor {
			cfg := predictor.DefaultAddrConfig(n)
			cfg.Entries = 64
			return predictor.NewGroup("ADDR-small", id, cfg)
		}), nil
	case "inst-small":
		return mk(func(id arch.NodeID) predictor.Predictor {
			cfg := predictor.DefaultInstConfig(n)
			cfg.Entries = 64
			return predictor.NewGroup("INST-small", id, cfg)
		}), nil
	case "oracle":
		b, err := r.book(bench)
		if err != nil {
			return nil, err
		}
		return core.OracleSystem(n, b), nil
	default:
		return nil, fmt.Errorf("experiments: unknown configuration %q", kind)
	}
}

// book runs (once) the oracle-recording profiling pass for a benchmark.
func (r *Runner) book(bench string) (*core.OracleBook, error) {
	return r.books.do(bench, func() (*core.OracleBook, error) {
		prog, err := r.program(bench)
		if err != nil {
			return nil, err
		}
		b := core.NewOracleBook()
		// The profiling pass runs at the same fidelity as the measurement
		// run: an oracle cell stays self-consistent within one mode.
		opt, err := r.options()
		if err != nil {
			return nil, err
		}
		opt.Predictors = core.RecorderSystem(core.DefaultConfig(r.Cfg.Threads), b)
		if _, err := sim.Run(prog, opt); err != nil {
			return nil, fmt.Errorf("experiments: oracle profiling %s: %w", bench, err)
		}
		return b, nil
	})
}

// Run executes (or recalls) one benchmark under one configuration.
func (r *Runner) Run(bench, kind string) (*sim.Result, error) {
	key := bench + "/" + kind
	return r.results.do(key, func() (*sim.Result, error) {
		prog, err := r.program(bench)
		if err != nil {
			return nil, err
		}
		opt, err := r.options()
		if err != nil {
			return nil, err
		}
		opt.MetricsEpoch = event.Time(r.Cfg.MetricsEpoch)
		if kind == "bcast" {
			opt.Protocol = sim.Broadcast
		} else {
			opt.Predictors, err = r.predictorsFor(bench, kind)
			if err != nil {
				return nil, err
			}
		}
		res, err := sim.Run(prog, opt)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", key, err)
		}
		return res, nil
	})
}

// Analysis executes (or recalls) the trace-collection run for a benchmark
// and digests it (the paper's §3.2 methodology: a baseline-directory run
// with trace capture).
func (r *Runner) Analysis(bench string) (*charac.Analysis, error) {
	return r.analyses.do(bench, func() (*charac.Analysis, error) {
		prog, err := r.program(bench)
		if err != nil {
			return nil, err
		}
		col := &trace.Collector{}
		opt, err := r.options()
		if err != nil {
			return nil, err
		}
		// The §3.2 methodology is a detailed-fidelity trace run regardless of
		// the cell mode (as before the shared options helper).
		opt.Mode = ""
		opt.Tracer = col
		if _, err := sim.Run(prog, opt); err != nil {
			return nil, fmt.Errorf("experiments: trace %s: %w", bench, err)
		}
		return charac.Analyze(col.Events, r.Cfg.Threads), nil
	})
}

// RunCell executes one (bench, kind) simulation cell standalone: it builds
// the program, the predictor set (including the oracle profiling pass when
// kind is "oracle") and runs the simulation, sharing no state with any
// other cell. It is the executor behind internal/sweep jobs: because each
// cell is self-contained, cells parallelize trivially, and determinism of
// the simulator guarantees a cell's result depends only on (cfg, bench,
// kind).
func RunCell(cfg Config, bench, kind string) (*sim.Result, error) {
	return NewRunner(cfg).Run(bench, kind)
}

// RunSpecCell executes one simulation cell for a scenario spec, exactly as
// RunCell does for a built-in benchmark: self-contained, sharing no state
// with other cells, deterministic in (cfg, spec, kind).
func RunSpecCell(cfg Config, spec *scenario.Spec, kind string) (*sim.Result, error) {
	r := NewRunner(cfg)
	r.Spec = spec
	return r.Run(spec.Name, kind)
}

// Benchmarks returns the benchmark list in paper order.
func Benchmarks() []string { return workload.Names() }
