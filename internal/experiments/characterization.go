package experiments

import (
	"fmt"

	"spcoh/internal/arch"
	"spcoh/internal/charac"
	"spcoh/internal/stats"
	"spcoh/internal/workload"
)

// Table1 reproduces the paper's Table 1: per-benchmark sync-epoch
// statistics, side by side with the paper's reference values (our dynamic
// counts are smaller because the synthetic programs run scaled-down
// iteration counts; the *structure* — static sync-point populations — is
// matched).
func Table1(r *Runner) (*stats.Table, error) {
	t := stats.NewTable("Table 1: sync-epoch statistics (per-core average)",
		"benchmark", "staticCS", "staticCS(paper)", "staticEpochs", "staticEpochs(paper)",
		"dynEpochs/core", "dynEpochs(paper)", "input(paper)")
	for _, name := range Benchmarks() {
		prof, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		a, err := r.Analysis(name)
		if err != nil {
			return nil, err
		}
		cs, se, dyn := a.EpochStats()
		t.AddRowf(name, cs, prof.Paper.StaticCS, se, prof.Paper.StaticEpochs,
			dyn, prof.Paper.DynEpochs, prof.Paper.Input)
	}
	t.AddNote("dynamic counts scale with -scale; paper columns are the published Table 1")
	return t, nil
}

// Fig1 reproduces Figure 1: the ratio of communicating to
// non-communicating misses per benchmark.
func Fig1(r *Runner) (*stats.Table, error) {
	t := stats.NewTable("Figure 1: ratio of communicating misses",
		"benchmark", "communicating", "non-communicating", "misses")
	var ratios []float64
	for _, name := range Benchmarks() {
		res, err := r.Run(name, "dir")
		if err != nil {
			return nil, err
		}
		c := res.CommRatio()
		ratios = append(ratios, c)
		t.AddRowf(name, c, 1-c, res.Misses())
	}
	t.AddRowf("average", stats.ArithMean(ratios), 1-stats.ArithMean(ratios), "")
	t.AddNote("paper: communicating misses account for 62%% on average, with large variation")
	return t, nil
}

// Fig2 reproduces Figure 2: the communication distribution of core 0 in
// bodytrack at three granularities: (a) whole execution, (b) four
// consecutive sync-epochs, (c) five dynamic instances of one sync-epoch.
func Fig2(r *Runner) (*stats.Table, error) {
	a, err := r.Analysis("bodytrack")
	if err != nil {
		return nil, err
	}
	n := r.Cfg.Threads
	t := stats.NewTable("Figure 2: communication distribution of core 0 in bodytrack",
		append([]string{"interval"}, coreHeaders(n)...)...)

	rowFor := func(label string, d stats.Distribution) {
		cells := make([]any, 0, n+1)
		cells = append(cells, label)
		for _, v := range d {
			cells = append(cells, v)
		}
		t.AddRowf(cells...)
	}
	rowFor("(a) whole execution", a.WholeDist[0])

	eps := a.EpochsOf(0)
	// (b) four consecutive communicating epochs mid-run.
	count := 0
	for _, e := range eps {
		if e.Dist.Total() == 0 || e.Instance < 2 {
			continue
		}
		rowFor(fmt.Sprintf("(b) epoch %d#%d", e.StaticID, e.Instance), e.Dist)
		count++
		if count == 4 {
			break
		}
	}
	// (c) five dynamic instances of the busiest *focused* static epoch
	// (hot set <= 4, as in the paper's example).
	best, bestVol := uint64(0), uint64(0)
	for _, id := range a.StaticEpochIDs() {
		var vol uint64
		focused := true
		for _, e := range a.InstancesOf(0, id) {
			vol += e.Dist.Total()
			if e.Dist.Total() > 0 && e.HotSet(0.10).Count() > 4 {
				focused = false
			}
		}
		if focused && vol > bestVol {
			best, bestVol = id, vol
		}
	}
	for i, e := range a.InstancesOf(0, best) {
		if i >= 5 {
			break
		}
		rowFor(fmt.Sprintf("(c) epoch %d inst %d", best, e.Instance), e.Dist)
	}
	t.AddNote("paper: sharp changes at interval boundaries; few hot targets per epoch")
	return t, nil
}

// Fig4 reproduces Figure 4: average cumulative communication locality of
// bodytrack, fmm and water-ns at sync-epoch, whole-interval and static-
// instruction granularity.
func Fig4(r *Runner) (*stats.Table, error) {
	t := stats.NewTable("Figure 4: communication locality (cumulative % volume vs #cores)",
		append([]string{"benchmark", "granularity"}, coreHeaders(r.Cfg.Threads)...)...)
	for _, name := range []string{"bodytrack", "fmm", "water-ns"} {
		a, err := r.Analysis(name)
		if err != nil {
			return nil, err
		}
		for _, g := range []struct {
			label string
			cov   []float64
		}{
			{"sync-epoch", a.CoverageByEpoch()},
			{"single-interval", a.CoverageWhole()},
			{"static instruction", a.CoverageByPC()},
		} {
			cells := []any{name, g.label}
			for _, c := range g.cov {
				cells = append(cells, 100*c)
			}
			t.AddRowf(cells...)
		}
	}
	t.AddNote("paper: sync-epoch curves dominate whole-interval and instruction granularity")
	return t, nil
}

// Fig5 reproduces Figure 5: the distribution of sync-epochs by hot
// communication set size (10%% threshold).
func Fig5(r *Runner) (*stats.Table, error) {
	t := stats.NewTable("Figure 5: epochs by hot communication set size (10% threshold)",
		"benchmark", "size=1", "size=2", "size=3", "size=4", "size>=5")
	var small stats.Mean
	for _, name := range Benchmarks() {
		a, err := r.Analysis(name)
		if err != nil {
			return nil, err
		}
		h := a.HotSetSizes(0.10)
		t.AddRowf(name, h.Fraction(1), h.Fraction(2), h.Fraction(3), h.Fraction(4), h.FractionAtLeast(5))
		small.Add(1 - h.FractionAtLeast(5))
	}
	t.AddNote("fraction of epochs with hot set <= 4: %.0f%% (paper: more than 78%%)", 100*small.Value())
	return t, nil
}

// Fig6 reproduces Figure 6: example hot-set patterns across dynamic
// instances of a sync-epoch, and a per-benchmark classification summary.
func Fig6(r *Runner) (*stats.Table, error) {
	n := r.Cfg.Threads
	t := stats.NewTable("Figure 6: hot communication set patterns across dynamic instances",
		"benchmark", "epoch", "instances (bit vectors, node 0 left)", "class", "stride")

	// Example pattern plots from structurally distinct benchmarks.
	for _, name := range []string{"facesim", "ocean", "radiosity", "fmm"} {
		a, err := r.Analysis(name)
		if err != nil {
			return nil, err
		}
		shown := 0
		for _, id := range a.StaticEpochIDs() {
			insts := a.InstancesOf(0, id)
			if len(insts) < 5 {
				continue
			}
			var sets []arch.SharerSet
			for _, e := range insts {
				sets = append(sets, e.HotSet(0.10))
			}
			class, stride := charac.ClassifyPattern(sets)
			if class == charac.PatternEmpty {
				continue
			}
			vecs := ""
			for i, s := range sets {
				if i >= 5 {
					break
				}
				if i > 0 {
					vecs += " "
				}
				vecs += s.BitString(n)
			}
			t.AddRowf(name, id, vecs, class.String(), stride)
			shown++
			if shown >= 2 {
				break
			}
		}
	}

	// Classification summary over every benchmark's static epochs.
	for _, name := range Benchmarks() {
		a, err := r.Analysis(name)
		if err != nil {
			return nil, err
		}
		counts := map[charac.PatternClass]int{}
		for node := arch.NodeID(0); int(node) < n; node++ {
			for _, id := range a.StaticEpochIDs() {
				insts := a.InstancesOf(node, id)
				if len(insts) < 3 {
					continue
				}
				var sets []arch.SharerSet
				for _, e := range insts {
					sets = append(sets, e.HotSet(0.10))
				}
				class, _ := charac.ClassifyPattern(sets)
				counts[class]++
			}
		}
		t.AddRowf(name, "summary",
			fmt.Sprintf("stable=%d repetitive=%d mixed=%d random=%d",
				counts[charac.PatternStable], counts[charac.PatternStride],
				counts[charac.PatternMixed], counts[charac.PatternRandom]),
			"", "")
	}
	return t, nil
}

func coreHeaders(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("c%d", i)
	}
	return out
}
