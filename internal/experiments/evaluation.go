package experiments

import (
	"spcoh/internal/predictor"
	"spcoh/internal/stats"
)

// Fig7 reproduces Figure 7: SP-prediction accuracy — the percentage of
// communicating misses that avoid indirection to the directory — broken
// down by the information source (d=0 interval activity, sync-epoch
// history, lock entries, recovery), plus the ideal a-priori-hot-set
// accuracy from an oracle profiling pass.
func Fig7(r *Runner) (*stats.Table, error) {
	t := stats.NewTable("Figure 7: SP-prediction accuracy (% of communicating misses)",
		"benchmark", "d=0", "d=2", "lock", "recovery", "total", "ideal")
	var tot, ideal []float64
	for _, name := range Benchmarks() {
		res, err := r.Run(name, "sp")
		if err != nil {
			return nil, err
		}
		or, err := r.Run(name, "oracle")
		if err != nil {
			return nil, err
		}
		n := res.Nodes
		pct := func(v uint64) float64 {
			if n.Communicating == 0 {
				return 0
			}
			return 100 * float64(v) / float64(n.Communicating)
		}
		t.AddRowf(name,
			pct(n.PredCorrectByTag[predictor.TagD0]),
			pct(n.PredCorrectByTag[predictor.TagHistory]),
			pct(n.PredCorrectByTag[predictor.TagLock]),
			pct(n.PredCorrectByTag[predictor.TagRecovery]),
			100*n.Accuracy(),
			100*or.Nodes.Accuracy())
		tot = append(tot, 100*n.Accuracy())
		ideal = append(ideal, 100*or.Nodes.Accuracy())
	}
	t.AddRowf("average", "", "", "", "", stats.ArithMean(tot), stats.ArithMean(ideal))
	t.AddNote("paper: 77%% average, best 98%% (x264), worst 59%% (radiosity)")
	return t, nil
}

// Table5 reproduces Table 5: average actual vs predicted target set sizes.
func Table5(r *Runner) (*stats.Table, error) {
	t := stats.NewTable("Table 5: average actual and predicted set size",
		"benchmark", "actual targets/req", "predicted targets/req", "ratio")
	for _, name := range Benchmarks() {
		res, err := r.Run(name, "sp")
		if err != nil {
			return nil, err
		}
		n := res.Nodes
		actual := 0.0
		if n.Misses > 0 {
			actual = float64(n.ActualTargets) / float64(n.Misses)
		}
		pred := 0.0
		if n.Predicted > 0 {
			pred = float64(n.PredTargets) / float64(n.Predicted)
		}
		ratio := 0.0
		if actual > 0 {
			ratio = pred / actual
		}
		t.AddRowf(name, actual, pred, ratio)
	}
	t.AddNote("paper: minimum sufficient sets are close to 1; predicted sets are ~2-3x larger")
	return t, nil
}

// Fig8 reproduces Figure 8: average miss latency of the baseline
// directory, broadcast and SP-prediction, normalized to the directory.
func Fig8(r *Runner) (*stats.Table, error) {
	t := stats.NewTable("Figure 8: average miss latency (normalized to directory)",
		"benchmark", "directory", "broadcast", "SP-predictor", "dir(cycles)")
	var sp, bc []float64
	for _, name := range Benchmarks() {
		dir, err := r.Run(name, "dir")
		if err != nil {
			return nil, err
		}
		bcast, err := r.Run(name, "bcast")
		if err != nil {
			return nil, err
		}
		spRes, err := r.Run(name, "sp")
		if err != nil {
			return nil, err
		}
		base := dir.AvgMissLatency()
		b := bcast.AvgMissLatency() / base
		s := spRes.AvgMissLatency() / base
		t.AddRowf(name, 1.0, b, s, base)
		sp = append(sp, s)
		bc = append(bc, b)
	}
	t.AddRowf("average", 1.0, stats.ArithMean(bc), stats.ArithMean(sp), "")
	t.AddNote("paper: SP reduces miss latency 13%% on average, attaining up to 75%% of broadcast's gain")
	return t, nil
}

// Fig9 reproduces Figure 9: additional bandwidth demands of SP-prediction
// relative to the baseline directory protocol, split by the miss class
// that caused the overhead.
func Fig9(r *Runner) (*stats.Table, error) {
	t := stats.NewTable("Figure 9: additional bandwidth of SP-prediction vs directory (%)",
		"benchmark", "total", "on communicating", "on non-communicating", "broadcast adds")
	var tot []float64
	for _, name := range Benchmarks() {
		dir, err := r.Run(name, "dir")
		if err != nil {
			return nil, err
		}
		spRes, err := r.Run(name, "sp")
		if err != nil {
			return nil, err
		}
		bcastRes, err := r.Run(name, "bcast")
		if err != nil {
			return nil, err
		}
		base := float64(dir.Net.Bytes)
		bcast := float64(bcastRes.Net.Bytes)
		add := 100 * (float64(spRes.Net.Bytes) - base) / base
		pb := float64(spRes.Nodes.PredBytesComm + spRes.Nodes.PredBytesNonComm)
		commShare, nonShare := 0.0, 0.0
		if pb > 0 {
			commShare = add * float64(spRes.Nodes.PredBytesComm) / pb
			nonShare = add * float64(spRes.Nodes.PredBytesNonComm) / pb
		}
		t.AddRowf(name, add, commShare, nonShare, 100*(bcast-base)/base)
		tot = append(tot, add)
	}
	t.AddRowf("average", stats.ArithMean(tot), "", "", "")
	t.AddNote("paper: +18%% on average, ~70%% of it from predicting non-communicating misses; well below 10%% of broadcast's addition")
	return t, nil
}

// Fig10 reproduces Figure 10: execution time normalized to the directory.
func Fig10(r *Runner) (*stats.Table, error) {
	t := stats.NewTable("Figure 10: execution time (normalized to directory)",
		"benchmark", "directory", "broadcast", "SP-predictor", "dir(cycles)")
	var sp []float64
	for _, name := range Benchmarks() {
		dir, err := r.Run(name, "dir")
		if err != nil {
			return nil, err
		}
		bcast, err := r.Run(name, "bcast")
		if err != nil {
			return nil, err
		}
		spRes, err := r.Run(name, "sp")
		if err != nil {
			return nil, err
		}
		base := float64(dir.Cycles)
		b := float64(bcast.Cycles) / base
		s := float64(spRes.Cycles) / base
		t.AddRowf(name, 1.0, b, s, base)
		sp = append(sp, s)
	}
	t.AddRowf("average", 1.0, "", stats.ArithMean(sp), "")
	t.AddNote("paper: SP improves execution time by 7%% on average; best 14%% (x264)")
	return t, nil
}

// Fig11 reproduces Figure 11: energy consumed on the NoC and cache
// lookups, normalized to the directory.
func Fig11(r *Runner) (*stats.Table, error) {
	t := stats.NewTable("Figure 11: NoC + snoop-lookup energy (normalized to directory)",
		"benchmark", "directory", "broadcast", "SP-predictor")
	var sp, bc []float64
	for _, name := range Benchmarks() {
		dir, err := r.Run(name, "dir")
		if err != nil {
			return nil, err
		}
		bcast, err := r.Run(name, "bcast")
		if err != nil {
			return nil, err
		}
		spRes, err := r.Run(name, "sp")
		if err != nil {
			return nil, err
		}
		base := dir.Energy.Total()
		b := bcast.Energy.Total() / base
		s := spRes.Energy.Total() / base
		t.AddRowf(name, 1.0, b, s)
		sp = append(sp, s)
		bc = append(bc, b)
	}
	t.AddRowf("average", 1.0, stats.ArithMean(bc), stats.ArithMean(sp))
	t.AddNote("paper: SP adds 25%% over directory; broadcast costs 2.4x")
	return t, nil
}

// tradeoffPoint computes one Figure 12/13 point for a run: additional
// request bandwidth per miss (%) vs misses incurring indirection (%).
func tradeoffPoint(r *Runner, bench, kind string) (x, y float64, err error) {
	base, err := r.Run(bench, "dir")
	if err != nil {
		return 0, 0, err
	}
	res, err := r.Run(bench, kind)
	if err != nil {
		return 0, 0, err
	}
	x = 100 * (float64(res.Net.Bytes) - float64(base.Net.Bytes)) / float64(base.Net.Bytes)
	if x < 0 {
		x = 0
	}
	y = 100
	if res.Nodes.Misses > 0 {
		y = 100 * float64(res.Nodes.Misses-res.Nodes.PredCorrect) / float64(res.Nodes.Misses)
	}
	return x, y, nil
}

// Fig12 reproduces Figure 12: the latency/bandwidth trade-off of SP, ADDR,
// INST and UNI prediction (unlimited tables) for four illustrative
// benchmarks. Lower-left is better; the directory sits at (0, 100).
func Fig12(r *Runner) (*stats.Table, error) {
	t := stats.NewTable("Figure 12: performance/bandwidth trade-off (unlimited tables)",
		"benchmark", "predictor", "addlBW/miss %", "misses w/ indirection %", "storage bits/node")
	for _, name := range []string{"fmm", "ocean", "fluidanimate", "dedup"} {
		t.AddRowf(name, "Directory", 0.0, 100.0, 0)
		for _, kind := range []string{"sp", "addr", "inst", "uni"} {
			x, y, err := tradeoffPoint(r, name, kind)
			if err != nil {
				return nil, err
			}
			res, err := r.Run(name, kind)
			if err != nil {
				return nil, err
			}
			t.AddRowf(name, res.Predictor, x, y, res.StorageBits/r.Cfg.Threads)
		}
	}
	t.AddNote("paper: SP is comparable to ADDR/INST at a fraction of the storage; UNI is cheapest but least accurate")
	return t, nil
}

// Fig13 reproduces Figure 13: the same trade-off averaged over all
// benchmarks, with unlimited vs 512-entry (~4KB) tables. SP and UNI are
// insensitive: their state already fits.
func Fig13(r *Runner) (*stats.Table, error) {
	t := stats.NewTable("Figure 13: trade-off with limited table space (all-benchmark average)",
		"predictor", "tables", "addlBW/miss %", "misses w/ indirection %")
	for _, cfg := range []struct{ label, kind, size string }{
		{"SP", "sp", "unlimited"},
		{"SP", "sp512", "~0.5KB/node (512 shared)"},
		{"ADDR", "addr", "unlimited"},
		{"ADDR", "addr-small", "~0.5KB/node (64 entries)"},
		{"INST", "inst", "unlimited"},
		{"INST", "inst-small", "~0.5KB/node (64 entries)"},
		{"UNI", "uni", "single entry"},
	} {
		var xs, ys []float64
		for _, name := range Benchmarks() {
			x, y, err := tradeoffPoint(r, name, cfg.kind)
			if err != nil {
				return nil, err
			}
			xs = append(xs, x)
			ys = append(ys, y)
		}
		t.AddRowf(cfg.label, cfg.size, stats.ArithMean(xs), stats.ArithMean(ys))
	}
	t.AddRowf("Directory", "-", 0.0, 100.0)
	t.AddNote("paper: limited space degrades ADDR and INST; SP and UNI are unaffected")
	t.AddNote("the capacity wall is placed at ~0.5KB (vs the paper's 4KB) because the synthetic working sets are ~8x smaller")
	return t, nil
}
