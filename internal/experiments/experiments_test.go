package experiments

import (
	"strings"
	"sync"
	"testing"

	"spcoh/internal/sim"
)

func tinyRunner() *Runner {
	return NewRunner(Config{Threads: 16, Scale: 0.05, Seed: 7})
}

func TestRegistryCompleteAndOrdered(t *testing.T) {
	all := All()
	if len(all) != 14 {
		t.Fatalf("experiments = %d, want 14", len(all))
	}
	want := []string{"table1", "fig1", "fig2", "fig4", "fig5", "fig6", "fig7",
		"table5", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13"}
	for i, e := range all {
		if e.ID != want[i] {
			t.Fatalf("order: got %s at %d, want %s", e.ID, i, want[i])
		}
		if e.Title == "" || e.Run == nil {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
	}
	if _, err := ByID("nope"); err == nil {
		t.Fatal("unknown id must error")
	}
}

func TestRunnerCaching(t *testing.T) {
	r := tinyRunner()
	a, err := r.Run("x264", "dir")
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Run("x264", "dir")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("runner must cache results")
	}
	a1, err := r.Analysis("x264")
	if err != nil {
		t.Fatal(err)
	}
	a2, err := r.Analysis("x264")
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Fatal("runner must cache analyses")
	}
}

// TestRunnerErrors: failures surface as errors, never as panics, and a
// failed key stays failed on recall.
func TestRunnerErrors(t *testing.T) {
	r := tinyRunner()
	if _, err := r.Run("no-such-bench", "dir"); err == nil {
		t.Fatal("unknown benchmark must error")
	}
	if _, err := r.Run("x264", "no-such-kind"); err == nil {
		t.Fatal("unknown configuration must error")
	}
	if _, err := r.Analysis("no-such-bench"); err == nil {
		t.Fatal("unknown benchmark analysis must error")
	}
	// Recall of a failed key returns the cached error.
	if _, err := r.Run("x264", "no-such-kind"); err == nil ||
		!strings.Contains(err.Error(), "no-such-kind") {
		t.Fatalf("cached error lost: %v", err)
	}
}

// TestRunnerSingleFlightPanic: a panicking computation becomes an error for
// every waiter; nothing deadlocks or crashes.
func TestRunnerSingleFlightPanic(t *testing.T) {
	var c cache[int]
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.do("boom", func() (int, error) { panic("kaboom") })
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil || !strings.Contains(err.Error(), "kaboom") {
			t.Fatalf("caller %d: err = %v, want panic converted to error", i, err)
		}
	}
}

// TestRunnerConcurrent hammers one Runner from many goroutines: the
// single-flight cache must hand every caller the same result pointer
// (i.e. each simulation ran exactly once) without data races.
func TestRunnerConcurrent(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	r := tinyRunner()
	const callers = 8
	var wg sync.WaitGroup
	results := make([]*sim.Result, callers)
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			kind := "dir"
			if i%2 == 1 {
				kind = "sp"
			}
			results[i], errs[i] = r.Run("x264", kind)
		}(i)
	}
	wg.Wait()
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if results[i] != results[i%2] {
			t.Fatalf("caller %d got a different pointer than caller %d: single-flight broken", i, i%2)
		}
	}
}

func TestCharacterizationTables(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	r := tinyRunner()
	for _, id := range []string{"table1", "fig1", "fig5"} {
		e, _ := ByID(id)
		tab, err := e.Run(r)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		out := tab.String()
		if !strings.Contains(out, "x264") || !strings.Contains(out, "fmm") {
			t.Fatalf("%s missing benchmarks:\n%s", id, out)
		}
	}
}

func TestEvaluationTables(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	r := tinyRunner()
	for _, id := range []string{"fig8", "fig9", "table5"} {
		e, _ := ByID(id)
		tab, err := e.Run(r)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		out := tab.String()
		if !strings.Contains(out, "average") && id != "table5" {
			t.Fatalf("%s missing average row:\n%s", id, out)
		}
	}
	// Normalized latencies must be sensible.
	spRes, err := r.Run("x264", "sp")
	if err != nil {
		t.Fatal(err)
	}
	dirRes, err := r.Run("x264", "dir")
	if err != nil {
		t.Fatal(err)
	}
	fig8 := spRes.AvgMissLatency() / dirRes.AvgMissLatency()
	if fig8 <= 0 || fig8 > 1.5 {
		t.Fatalf("sp/dir latency ratio implausible: %v", fig8)
	}
}

func TestTradeoffPoint(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	r := tinyRunner()
	x, y, err := tradeoffPoint(r, "x264", "sp")
	if err != nil {
		t.Fatal(err)
	}
	if x < 0 || y < 0 || y > 100 {
		t.Fatalf("tradeoff point out of range: %v %v", x, y)
	}
	// The directory reference point is (0, 100) by construction.
	if _, yDir, err := tradeoffPoint(r, "x264", "dir"); err != nil || yDir != 100 {
		t.Fatalf("directory y = %v (err %v), want 100", yDir, err)
	}
}

// TestKindsMatchRunner: every advertised kind must be accepted by Run (the
// sweep CLI validates against this list).
func TestKindsMatchRunner(t *testing.T) {
	r := tinyRunner()
	for _, k := range Kinds() {
		if k == "oracle" {
			continue // requires a profiling pass; covered by TestEvaluationTables
		}
		if _, err := r.predictorsFor("x264", k); err != nil {
			t.Errorf("kind %q rejected: %v", k, err)
		}
	}
	eval := EvalKinds()
	all := Kinds()
	for _, k := range eval {
		found := false
		for _, a := range all {
			if a == k {
				found = true
			}
		}
		if !found {
			t.Errorf("EvalKinds %q missing from Kinds", k)
		}
	}
}
