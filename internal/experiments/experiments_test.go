package experiments

import (
	"strings"
	"testing"
)

func tinyRunner() *Runner {
	return NewRunner(Config{Threads: 16, Scale: 0.05, Seed: 7})
}

func TestRegistryCompleteAndOrdered(t *testing.T) {
	all := All()
	if len(all) != 14 {
		t.Fatalf("experiments = %d, want 14", len(all))
	}
	want := []string{"table1", "fig1", "fig2", "fig4", "fig5", "fig6", "fig7",
		"table5", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13"}
	for i, e := range all {
		if e.ID != want[i] {
			t.Fatalf("order: got %s at %d, want %s", e.ID, i, want[i])
		}
		if e.Title == "" || e.Run == nil {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
	}
	if _, err := ByID("nope"); err == nil {
		t.Fatal("unknown id must error")
	}
}

func TestRunnerCaching(t *testing.T) {
	r := tinyRunner()
	a := r.Run("x264", "dir")
	b := r.Run("x264", "dir")
	if a != b {
		t.Fatal("runner must cache results")
	}
	if r.Analysis("x264") != r.Analysis("x264") {
		t.Fatal("runner must cache analyses")
	}
}

func TestCharacterizationTables(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	r := tinyRunner()
	for _, id := range []string{"table1", "fig1", "fig5"} {
		e, _ := ByID(id)
		out := e.Run(r).String()
		if !strings.Contains(out, "x264") || !strings.Contains(out, "fmm") {
			t.Fatalf("%s missing benchmarks:\n%s", id, out)
		}
	}
}

func TestEvaluationTables(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	r := tinyRunner()
	for _, id := range []string{"fig8", "fig9", "table5"} {
		e, _ := ByID(id)
		out := e.Run(r).String()
		if !strings.Contains(out, "average") && id != "table5" {
			t.Fatalf("%s missing average row:\n%s", id, out)
		}
	}
	// Normalized latencies must be sensible.
	fig8 := r.Run("x264", "sp").AvgMissLatency() / r.Run("x264", "dir").AvgMissLatency()
	if fig8 <= 0 || fig8 > 1.5 {
		t.Fatalf("sp/dir latency ratio implausible: %v", fig8)
	}
}

func TestTradeoffPoint(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	r := tinyRunner()
	x, y := tradeoffPoint(r, "x264", "sp")
	if x < 0 || y < 0 || y > 100 {
		t.Fatalf("tradeoff point out of range: %v %v", x, y)
	}
	// The directory reference point is (0, 100) by construction.
	if _, yDir := tradeoffPoint(r, "x264", "dir"); yDir != 100 {
		t.Fatalf("directory y = %v, want 100", yDir)
	}
}
