package experiments

import (
	"fmt"

	"spcoh/internal/stats"
)

// Experiment is one regenerable paper artifact. Run reports a failure of
// any underlying simulation as an error (it never panics), so drivers can
// aggregate failures across experiments instead of crashing.
type Experiment struct {
	ID    string // "fig7", "table1", ...
	Title string
	Run   func(*Runner) (*stats.Table, error)
}

// All returns the experiments in paper order.
func All() []Experiment {
	return []Experiment{
		{"table1", "Sync-epoch statistics", Table1},
		{"fig1", "Ratio of communicating misses", Fig1},
		{"fig2", "Communication distribution of core 0 in bodytrack", Fig2},
		{"fig4", "Communication locality by granularity", Fig4},
		{"fig5", "Hot communication set sizes", Fig5},
		{"fig6", "Hot-set patterns across dynamic instances", Fig6},
		{"fig7", "SP-prediction accuracy", Fig7},
		{"table5", "Actual vs predicted set size", Table5},
		{"fig8", "Average miss latency", Fig8},
		{"fig9", "Additional bandwidth demands", Fig9},
		{"fig10", "Execution time", Fig10},
		{"fig11", "NoC and lookup energy", Fig11},
		{"fig12", "Latency/bandwidth trade-off", Fig12},
		{"fig13", "Trade-off under limited table space", Fig13},
	}
}

// ByID finds one experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown id %q", id)
}
