package metrics

import (
	"bytes"
	"reflect"
	"testing"

	"spcoh/internal/arch"
	"spcoh/internal/event"
	"spcoh/internal/noc"
	"spcoh/internal/protocol"
)

func fullSetMinus(n arch.NodeID) arch.SharerSet {
	return arch.FullSet(16).Remove(n)
}

func TestLatBucket(t *testing.T) {
	cases := []struct {
		lat  uint64
		want int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1023, 10}, {1024, 11}, {1 << 20, NumLatBuckets - 1}, {^uint64(0), NumLatBuckets - 1},
	}
	for _, c := range cases {
		if got := LatBucket(c.lat); got != c.want {
			t.Errorf("LatBucket(%d) = %d, want %d", c.lat, got, c.want)
		}
	}
}

func TestClassOf(t *testing.T) {
	cases := []struct {
		kind protocol.MsgKind
		want MsgClass
	}{
		{protocol.MsgGetS, ClassRequest},
		{protocol.MsgGetM, ClassRequest},
		{protocol.MsgPredGetS, ClassRequest},
		{protocol.MsgData, ClassResponse},
		{protocol.MsgDirResp, ClassResponse},
		{protocol.MsgWriteback, ClassResponse},
		{protocol.MsgFwdGetS, ClassInvalidate},
		{protocol.MsgInv, ClassInvalidate},
		{protocol.MsgInvAck, ClassAck},
	}
	for _, c := range cases {
		if got := ClassOf(c.kind); got != c.want {
			t.Errorf("ClassOf(%v) = %v, want %v", c.kind, got, c.want)
		}
	}
	if names := ClassNames(); len(names) != NumClasses || names[0] != "request" || names[3] != "ack" {
		t.Errorf("ClassNames() = %v", names)
	}
}

// TestCollectorEpochAttribution drives the collector's hooks from inside
// scheduled events and checks that every counter lands in the right epoch,
// including a link-occupancy interval split across two boundaries.
func TestCollectorEpochAttribution(t *testing.T) {
	s := event.New()
	c := NewCollector(s, Config{EpochCycles: 10, Links: 2, Nodes: 2})
	s.SetObserver(c.onStep)

	s.At(5, func() {
		c.LinkBusy(0, 5, 25) // spans epochs 0 (5 cycles), 1 (10), 2 (5)
		c.LinkStall(1, 3)
		c.Deliver(6)
	})
	s.At(15, func() {
		c.message(ClassRequest, 4)
		c.message(ClassAck, 0)
	})
	s.At(25, func() {
		c.miss(1, 100, true, true, true)
		c.sync(0)
	})
	s.Run()

	series := c.Finalize(s.Now())
	if err := series.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(series.Epochs) != 3 {
		t.Fatalf("got %d epochs, want 3", len(series.Epochs))
	}
	e0, e1, e2 := &series.Epochs[0], &series.Epochs[1], &series.Epochs[2]

	if e0.LinkBusy[0] != 5 || e1.LinkBusy[0] != 10 || e2.LinkBusy[0] != 5 {
		t.Errorf("link 0 busy split = %d/%d/%d, want 5/10/5",
			e0.LinkBusy[0], e1.LinkBusy[0], e2.LinkBusy[0])
	}
	if e0.LinkStall[1] != 3 || e1.LinkStall[1] != 0 {
		t.Errorf("stall attribution wrong: %d/%d", e0.LinkStall[1], e1.LinkStall[1])
	}
	if e0.Delivered != 1 || e0.DeliveryLat[LatBucket(6)] != 1 {
		t.Errorf("epoch 0 delivery not recorded: %+v", e0)
	}
	if e1.ClassCount[ClassRequest] != 1 || e1.ClassCount[ClassAck] != 1 ||
		e1.ClassLat[ClassRequest][LatBucket(4)] != 1 || e1.ClassLat[ClassAck][0] != 1 {
		t.Errorf("epoch 1 class counts wrong: %+v", e1)
	}
	if e0.ClassCount[ClassRequest] != 0 || e2.ClassCount[ClassRequest] != 0 {
		t.Errorf("class counts leaked across epochs")
	}
	if e2.Misses != 1 || e2.CommMisses != 1 || e2.Predicted != 1 || e2.PredCorrect != 1 ||
		e2.MissLatSum != 100 || e2.NodeMisses[1] != 1 || e2.NodeSyncs[0] != 1 {
		t.Errorf("epoch 2 miss/sync counters wrong: %+v", e2)
	}
	if e2.Accuracy() != 1 || e2.Coverage() != 1 {
		t.Errorf("accuracy/coverage = %v/%v, want 1/1", e2.Accuracy(), e2.Coverage())
	}
	if e0.Fired != 1 || e1.Fired != 1 || e2.Fired != 1 {
		t.Errorf("fired per epoch = %d/%d/%d, want 1/1/1", e0.Fired, e1.Fired, e2.Fired)
	}
	if e2.End != 25 {
		t.Errorf("final epoch End = %d, want truncated to 25", e2.End)
	}
}

// TestCollectorEmptyEpochs checks that epochs with no activity are
// materialized as all-zero rows, keeping the series contiguous.
func TestCollectorEmptyEpochs(t *testing.T) {
	s := event.New()
	c := NewCollector(s, Config{EpochCycles: 10, Links: 1, Nodes: 1})
	s.SetObserver(c.onStep)
	s.At(5, func() { c.Deliver(2) })
	s.At(45, func() {})
	s.Run()

	series := c.Finalize(s.Now())
	if err := series.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(series.Epochs) != 5 {
		t.Fatalf("got %d epochs, want 5", len(series.Epochs))
	}
	for i := 1; i < 4; i++ {
		e := &series.Epochs[i]
		if e.Fired != 0 || e.Delivered != 0 {
			t.Errorf("epoch %d not empty: %+v", i, e)
		}
	}
	if series.Epochs[4].Fired != 1 {
		t.Errorf("epoch 4 fired = %d, want 1", series.Epochs[4].Fired)
	}
}

// TestCollectorOnNetwork runs real traffic over a mesh with the collector
// attached and cross-checks the series totals against the NoC's own
// statistics.
func TestCollectorOnNetwork(t *testing.T) {
	s := event.New()
	net := noc.New(s, noc.DefaultConfig())
	c := NewCollector(s, Config{EpochCycles: 32, Links: net.NumLinks(), Nodes: 16})
	c.Attach(net)

	for i := 0; i < 8; i++ {
		src, dst := arch.NodeID(i), arch.NodeID(15-i)
		net.Send(src, dst, 64, func() {})
	}
	net.Broadcast(0, fullSetMinus(0), 8, func(_ arch.NodeID) {})
	s.Run()

	series := c.Finalize(s.Now())
	if err := series.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	st := net.Stats()
	var delivered, stall uint64
	for i := range series.Epochs {
		e := &series.Epochs[i]
		delivered += e.Delivered
		for _, v := range e.LinkStall {
			stall += v
		}
	}
	if delivered != st.Deliveries {
		t.Errorf("series delivered = %d, noc Deliveries = %d", delivered, st.Deliveries)
	}
	if stall != st.StallCycles {
		t.Errorf("series stall = %d, noc StallCycles = %d", stall, st.StallCycles)
	}
	var fired uint64
	for i := range series.Epochs {
		fired += series.Epochs[i].Fired
	}
	if fired != s.Fired {
		t.Errorf("series fired = %d, sim Fired = %d", fired, s.Fired)
	}
}

// TestSeriesJSONRoundTripDeterministic encodes a series twice and checks
// the bytes are identical, then decodes and compares structurally.
func TestSeriesJSONRoundTripDeterministic(t *testing.T) {
	s := event.New()
	net := noc.New(s, noc.DefaultConfig())
	c := NewCollector(s, Config{EpochCycles: 16, Links: net.NumLinks(), Nodes: 16})
	c.Attach(net)
	net.Broadcast(3, fullSetMinus(3), 8, func(_ arch.NodeID) {})
	s.Run()
	series := c.Finalize(s.Now())

	var a, b bytes.Buffer
	if err := series.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := series.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two encodings of the same series differ")
	}
	back, err := ReadJSON(&a)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if !reflect.DeepEqual(series, back) {
		t.Fatal("series does not survive a JSON round trip")
	}
}

func TestValidateRejectsCorruptSeries(t *testing.T) {
	s := event.New()
	c := NewCollector(s, Config{EpochCycles: 10, Links: 1, Nodes: 1})
	s.SetObserver(c.onStep)
	s.At(15, func() {})
	s.Run()
	series := c.Finalize(s.Now())
	if err := series.Validate(); err != nil {
		t.Fatalf("clean series rejected: %v", err)
	}

	bad := *series
	bad.SchemaVersion = SchemaVersion + 1
	if bad.Validate() == nil {
		t.Error("wrong schema version accepted")
	}

	bad = *series
	bad.Epochs = append([]EpochRow(nil), series.Epochs...)
	bad.Epochs[1].Epoch = 5
	if bad.Validate() == nil {
		t.Error("non-contiguous epoch accepted")
	}

	bad = *series
	bad.Epochs = append([]EpochRow(nil), series.Epochs...)
	bad.Epochs[0].LinkBusy = nil
	if bad.Validate() == nil {
		t.Error("mis-shaped link cells accepted")
	}
}
