// Package metrics is the run-time observability layer of the simulator: a
// collector that samples the whole system on a fixed cycle epoch — per-link
// NoC utilization and stall heatmaps, per-message-class latency histograms,
// per-node miss and sync-point rates, predictor accuracy timelines, and
// event-engine health — and exports the result as a deterministic JSON
// time-series.
//
// The collector accumulates through hooks registered in internal/event
// (per-fired-event observer), internal/noc (link occupancy, stalls,
// deliveries) and internal/protocol / internal/snoop (message classes,
// misses, sync points). Epoch boundaries are resolved lazily: every hook
// first rolls the current epoch forward to the hook's cycle, so no extra
// events are scheduled and a run with metrics enabled fires exactly the
// same event sequence as one without. With no collector attached every
// hook site is a single nil check.
//
// Determinism: the exported Series contains only fixed-shape slices (no
// maps), so its JSON encoding is byte-identical across same-seed runs.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math/bits"

	"spcoh/internal/protocol"
)

// SchemaVersion guards the on-disk time-series schema; consumers reject a
// mismatch rather than misreading fields.
const SchemaVersion = 1

// NumLatBuckets is the number of power-of-two latency buckets: bucket 0
// holds latency 0, bucket b holds [2^(b-1), 2^b) cycles, and the last
// bucket additionally absorbs overflow.
const NumLatBuckets = 12

// LatBucket returns the histogram bucket index for a latency in cycles.
func LatBucket(lat uint64) int {
	b := bits.Len64(lat) // 0 for 0, 1 for 1, 2 for 2-3, ...
	if b >= NumLatBuckets {
		return NumLatBuckets - 1
	}
	return b
}

// MsgClass buckets coherence messages for the latency histograms: the
// request/response/invalidate/ack taxonomy of the paper's traffic
// discussion.
type MsgClass uint8

const (
	// ClassRequest covers node→directory requests and predicted requests
	// (GetS, GetM, Put*, PredGet*, GetRetry) and snoop broadcasts.
	ClassRequest MsgClass = iota
	// ClassResponse covers data and control responses (Data, DirResp,
	// PutAck, Nack, DirUpd, Unblock, Writeback) and snoop responses.
	ClassResponse
	// ClassInvalidate covers directory-issued forwards/invalidations
	// (FwdGetS, FwdGetM, Inv).
	ClassInvalidate
	// ClassAck covers invalidation acknowledgments (InvAck).
	ClassAck

	// NumClasses is the number of message classes.
	NumClasses = 4
)

// String returns the class name used in the JSON schema.
func (c MsgClass) String() string {
	switch c {
	case ClassRequest:
		return "request"
	case ClassResponse:
		return "response"
	case ClassInvalidate:
		return "invalidate"
	case ClassAck:
		return "ack"
	default:
		return "?"
	}
}

// ClassNames returns the class names in index order.
func ClassNames() []string {
	names := make([]string, NumClasses)
	for c := MsgClass(0); c < NumClasses; c++ {
		names[c] = c.String()
	}
	return names
}

// ClassOf maps a directory-protocol message kind to its class.
func ClassOf(k protocol.MsgKind) MsgClass {
	switch k {
	case protocol.MsgGetS, protocol.MsgGetM, protocol.MsgPutS, protocol.MsgPutE,
		protocol.MsgPutM, protocol.MsgPredGetS, protocol.MsgPredGetM, protocol.MsgGetRetry:
		return ClassRequest
	case protocol.MsgFwdGetS, protocol.MsgFwdGetM, protocol.MsgInv:
		return ClassInvalidate
	case protocol.MsgInvAck:
		return ClassAck
	default:
		return ClassResponse
	}
}

// EpochRow is one sampling epoch of the time-series. Counters accumulate
// over the epoch's cycle window [Start, End); gauges (queue depth) are
// sampled at the last fired event inside the window.
type EpochRow struct {
	Epoch uint64 `json:"epoch"`
	Start uint64 `json:"start"`
	End   uint64 `json:"end"`

	// NoC: per-directed-link busy cycles (occupancy intervals are split
	// exactly across epoch boundaries) and stall cycles (attributed to the
	// epoch in which the stalled packet was injected).
	LinkBusy  []uint64 `json:"link_busy"`
	LinkStall []uint64 `json:"link_stall"`
	// Endpoint deliveries and their latency histogram (all packet kinds).
	Delivered   uint64   `json:"delivered"`
	DeliveryLat []uint64 `json:"delivery_lat"`

	// Per-message-class delivery counts and latency histograms, indexed by
	// MsgClass.
	ClassCount []uint64   `json:"class_count"`
	ClassLat   [][]uint64 `json:"class_lat"`

	// Protocol: per-node completed misses and sync-point crossings.
	NodeMisses []uint64 `json:"node_misses"`
	NodeSyncs  []uint64 `json:"node_syncs"`

	// Miss totals and the predictor timeline for the epoch.
	Misses      uint64 `json:"misses"`
	CommMisses  uint64 `json:"comm_misses"`
	MissLatSum  uint64 `json:"miss_lat_sum"`
	Predicted   uint64 `json:"predicted"`
	PredCorrect uint64 `json:"pred_correct"`

	// Event-engine health: events fired in the window, queue depth at the
	// last fired event, and the maximum depth observed.
	Fired      uint64 `json:"fired"`
	QueueDepth int    `json:"queue_depth"`
	QueueMax   int    `json:"queue_max"`
}

// Accuracy returns the epoch's predictor accuracy: correctly predicted
// communicating misses over communicating misses (the paper's accuracy
// definition, per epoch). 0 when no communicating miss completed.
func (e *EpochRow) Accuracy() float64 {
	if e.CommMisses == 0 {
		return 0
	}
	return float64(e.PredCorrect) / float64(e.CommMisses)
}

// Coverage returns the fraction of the epoch's misses issued with a
// non-empty predicted set.
func (e *EpochRow) Coverage() float64 {
	if e.Misses == 0 {
		return 0
	}
	return float64(e.Predicted) / float64(e.Misses)
}

// MeanLinkUtilization returns the mean busy fraction across links for the
// epoch (0 for a zero-width epoch).
func (e *EpochRow) MeanLinkUtilization() float64 {
	width := e.End - e.Start
	if width == 0 || len(e.LinkBusy) == 0 {
		return 0
	}
	var busy uint64
	for _, b := range e.LinkBusy {
		busy += b
	}
	return float64(busy) / (float64(width) * float64(len(e.LinkBusy)))
}

// MaxLinkUtilization returns the busiest link's busy fraction and index.
func (e *EpochRow) MaxLinkUtilization() (float64, int) {
	width := e.End - e.Start
	if width == 0 {
		return 0, 0
	}
	best, idx := uint64(0), 0
	for l, b := range e.LinkBusy {
		if b > best {
			best, idx = b, l
		}
	}
	return float64(best) / float64(width), idx
}

// Series is the exported time-series of one instrumented run.
type Series struct {
	SchemaVersion int      `json:"schema_version"`
	EpochCycles   uint64   `json:"epoch_cycles"`
	Links         int      `json:"links"`
	Nodes         int      `json:"nodes"`
	Classes       []string `json:"classes"`
	LatBuckets    int      `json:"lat_buckets"`
	// Cycles is the run's final clock; the last epoch may be partial.
	Cycles uint64     `json:"cycles"`
	Epochs []EpochRow `json:"epochs"`
}

// Validate checks the structural invariants every consumer relies on:
// known schema version, positive epoch width, and monotone, contiguous,
// correctly-shaped epoch rows.
func (s *Series) Validate() error {
	if s.SchemaVersion != SchemaVersion {
		return fmt.Errorf("metrics: schema version %d, want %d", s.SchemaVersion, SchemaVersion)
	}
	if s.EpochCycles == 0 {
		return fmt.Errorf("metrics: zero epoch width")
	}
	if len(s.Classes) != NumClasses {
		return fmt.Errorf("metrics: %d classes, want %d", len(s.Classes), NumClasses)
	}
	for i := range s.Epochs {
		e := &s.Epochs[i]
		if e.Epoch != uint64(i) {
			return fmt.Errorf("metrics: epoch %d has index %d (not monotone/contiguous)", i, e.Epoch)
		}
		if e.Start != uint64(i)*s.EpochCycles {
			return fmt.Errorf("metrics: epoch %d starts at %d, want %d", i, e.Start, uint64(i)*s.EpochCycles)
		}
		wantEnd := e.Start + s.EpochCycles
		if i == len(s.Epochs)-1 {
			if e.End > wantEnd || e.End < e.Start {
				return fmt.Errorf("metrics: final epoch ends at %d, want within (%d, %d]", e.End, e.Start, wantEnd)
			}
		} else if e.End != wantEnd {
			return fmt.Errorf("metrics: epoch %d ends at %d, want %d", i, e.End, wantEnd)
		}
		if len(e.LinkBusy) != s.Links || len(e.LinkStall) != s.Links {
			return fmt.Errorf("metrics: epoch %d has %d/%d link cells, want %d", i, len(e.LinkBusy), len(e.LinkStall), s.Links)
		}
		if len(e.NodeMisses) != s.Nodes || len(e.NodeSyncs) != s.Nodes {
			return fmt.Errorf("metrics: epoch %d has %d/%d node cells, want %d", i, len(e.NodeMisses), len(e.NodeSyncs), s.Nodes)
		}
		if len(e.ClassCount) != NumClasses || len(e.ClassLat) != NumClasses {
			return fmt.Errorf("metrics: epoch %d has %d class cells, want %d", i, len(e.ClassCount), NumClasses)
		}
		if len(e.DeliveryLat) != s.LatBuckets {
			return fmt.Errorf("metrics: epoch %d delivery histogram has %d buckets, want %d", i, len(e.DeliveryLat), s.LatBuckets)
		}
		for c, h := range e.ClassLat {
			if len(h) != s.LatBuckets {
				return fmt.Errorf("metrics: epoch %d class %d histogram has %d buckets, want %d", i, c, len(h), s.LatBuckets)
			}
		}
	}
	return nil
}

// WriteJSON encodes the series as indented JSON. The encoding contains no
// maps, so the bytes are deterministic for identical series.
func (s *Series) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadJSON decodes and validates a series.
func ReadJSON(r io.Reader) (*Series, error) {
	var s Series
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("metrics: decode series: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}
