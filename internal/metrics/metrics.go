package metrics

import (
	"spcoh/internal/arch"
	"spcoh/internal/event"
	"spcoh/internal/noc"
	"spcoh/internal/predictor"
	"spcoh/internal/protocol"
	"spcoh/internal/snoop"
)

// Config sizes a Collector.
type Config struct {
	// EpochCycles is the sampling epoch width in cycles. Must be > 0.
	EpochCycles event.Time
	// Links and Nodes size the per-link and per-node cells of each epoch.
	Links int
	Nodes int
}

// linkAdd is a busy-cycle credit for a future epoch: link occupancy
// reserved past the current epoch boundary is held here until the target
// epoch's row opens, so intervals split exactly across boundaries.
type linkAdd struct {
	epoch  uint64
	link   int
	cycles uint64
}

// Collector accumulates the run-time metrics of one simulation into epoch
// rows. It implements noc.Observer; its remaining hooks are exported as
// closures (ProtocolObs, SnoopObs) and a Step observer (Attach).
//
// The collector never schedules events: epochs roll lazily when a hook
// fires in a later epoch, and Finalize materializes any trailing empty
// epochs. A run with the collector attached therefore fires exactly the
// same event sequence as a run without.
type Collector struct {
	sim *event.Sim
	cfg Config

	rows    []EpochRow
	cur     EpochRow
	curIdx  uint64
	pending []linkAdd // busy cycles owed to epochs after curIdx
	done    bool
}

// NewCollector returns a collector for the given simulator and shape. It
// panics on a zero epoch width (a disabled collector is simply not
// created).
func NewCollector(sim *event.Sim, cfg Config) *Collector {
	if cfg.EpochCycles == 0 {
		panic("metrics: zero epoch width")
	}
	c := &Collector{sim: sim, cfg: cfg}
	c.cur = c.newRow(0)
	return c
}

// Attach registers the collector's event-engine and NoC hooks. The
// protocol-level hooks are attached separately because directory and snoop
// systems expose different observer types (ProtocolObs / SnoopObs).
func (c *Collector) Attach(net *noc.Network) {
	c.sim.SetObserver(c.onStep)
	net.SetObserver(c)
}

// ProtocolObs returns directory-protocol hooks feeding this collector.
func (c *Collector) ProtocolObs() *protocol.Obs {
	return &protocol.Obs{
		Message: func(kind protocol.MsgKind, lat event.Time) {
			c.message(ClassOf(kind), uint64(lat))
		},
		Miss: func(node arch.NodeID, _ predictor.MissKind, lat event.Time, comm, predicted, correct bool) {
			c.miss(int(node), uint64(lat), comm, predicted, correct)
		},
		Sync: func(node arch.NodeID, _ predictor.SyncKind) {
			c.sync(int(node))
		},
	}
}

// SnoopObs returns broadcast-snooping hooks feeding this collector. Snoop
// broadcasts count as requests and snoop responses as responses; the
// snooping protocol has no explicit invalidate/ack messages, so those
// classes stay empty. Snooping has no destination-set prediction either,
// so its misses never contribute to the predictor timeline.
func (c *Collector) SnoopObs() *snoop.Obs {
	return &snoop.Obs{
		Request:  func(lat event.Time) { c.message(ClassRequest, uint64(lat)) },
		Response: func(lat event.Time) { c.message(ClassResponse, uint64(lat)) },
		Miss: func(node arch.NodeID, _ predictor.MissKind, lat event.Time, comm bool) {
			c.miss(int(node), uint64(lat), comm, false, false)
		},
	}
}

func (c *Collector) newRow(idx uint64) EpochRow {
	ep := uint64(c.cfg.EpochCycles)
	row := EpochRow{
		Epoch:       idx,
		Start:       idx * ep,
		End:         idx*ep + ep,
		LinkBusy:    make([]uint64, c.cfg.Links),
		LinkStall:   make([]uint64, c.cfg.Links),
		DeliveryLat: make([]uint64, NumLatBuckets),
		ClassCount:  make([]uint64, NumClasses),
		ClassLat:    make([][]uint64, NumClasses),
		NodeMisses:  make([]uint64, c.cfg.Nodes),
		NodeSyncs:   make([]uint64, c.cfg.Nodes),
	}
	for cl := range row.ClassLat {
		row.ClassLat[cl] = make([]uint64, NumLatBuckets)
	}
	// Drain the busy-cycle credits owed to this epoch, compacting the rest
	// in place (insertion order is deterministic, so so is this).
	kept := c.pending[:0]
	for _, p := range c.pending {
		if p.epoch == idx {
			row.LinkBusy[p.link] += p.cycles
		} else {
			kept = append(kept, p)
		}
	}
	c.pending = kept
	return row
}

// roll closes epochs until the one containing cycle `now` is current.
func (c *Collector) roll(now event.Time) {
	idx := uint64(now) / uint64(c.cfg.EpochCycles)
	for c.curIdx < idx {
		c.rows = append(c.rows, c.cur)
		c.curIdx++
		c.cur = c.newRow(c.curIdx)
	}
}

// onStep is the event-engine hook: it fires once per fired event, after
// the clock advances, and drives epoch rolling for the whole collector
// (every other hook fires inside some event, so the clock has already
// rolled the epoch forward by the time they run).
func (c *Collector) onStep(now event.Time, queueDepth int) {
	c.roll(now)
	c.cur.Fired++
	c.cur.QueueDepth = queueDepth
	if queueDepth > c.cur.QueueMax {
		c.cur.QueueMax = queueDepth
	}
}

// LinkBusy implements noc.Observer: occupancy of link l for [from, to),
// split exactly across epoch boundaries.
func (c *Collector) LinkBusy(l int, from, to event.Time) {
	ep := uint64(c.cfg.EpochCycles)
	lo, hi := uint64(from), uint64(to)
	for lo < hi {
		idx := lo / ep
		end := (idx + 1) * ep
		if end > hi {
			end = hi
		}
		cycles := end - lo
		switch {
		case idx == c.curIdx:
			c.cur.LinkBusy[l] += cycles
		case idx > c.curIdx:
			c.pending = append(c.pending, linkAdd{epoch: idx, link: l, cycles: cycles})
		default:
			// Occupancy cannot start before the injection cycle, which is in
			// the current epoch; keep the total right regardless.
			c.cur.LinkBusy[l] += cycles
		}
		lo = end
	}
}

// LinkStall implements noc.Observer: stall cycles attributed to the epoch
// in which the stalled packet was injected.
func (c *Collector) LinkStall(l int, cycles event.Time) {
	c.cur.LinkStall[l] += uint64(cycles)
}

// Deliver implements noc.Observer: one endpoint delivery at the current
// cycle with the given latency.
func (c *Collector) Deliver(lat event.Time) {
	c.cur.Delivered++
	c.cur.DeliveryLat[LatBucket(uint64(lat))]++
}

func (c *Collector) message(class MsgClass, lat uint64) {
	c.cur.ClassCount[class]++
	c.cur.ClassLat[class][LatBucket(lat)]++
}

func (c *Collector) miss(node int, lat uint64, comm, predicted, correct bool) {
	c.cur.NodeMisses[node]++
	c.cur.Misses++
	c.cur.MissLatSum += lat
	if comm {
		c.cur.CommMisses++
	}
	if predicted {
		c.cur.Predicted++
	}
	if correct {
		c.cur.PredCorrect++
	}
}

func (c *Collector) sync(node int) {
	c.cur.NodeSyncs[node]++
}

// Finalize closes the collector at the run's final cycle and returns the
// series. Epochs between the last observed activity and endCycle are
// materialized (empty), the final row is truncated to endCycle, and any
// busy cycles reserved past the end of the run are clipped into the final
// row so total link occupancy is preserved. Finalize detaches nothing;
// the simulation is over.
func (c *Collector) Finalize(endCycle event.Time) *Series {
	if c.done {
		panic("metrics: Finalize called twice")
	}
	c.done = true
	if endCycle > 0 {
		c.roll(endCycle - 1)
	}
	// Clip occupancy owed to epochs past the end into the final row.
	for _, p := range c.pending {
		c.cur.LinkBusy[p.link] += p.cycles
	}
	c.pending = nil
	if end := uint64(endCycle); end > c.cur.Start && end < c.cur.End {
		c.cur.End = end
	}
	c.rows = append(c.rows, c.cur)
	return &Series{
		SchemaVersion: SchemaVersion,
		EpochCycles:   uint64(c.cfg.EpochCycles),
		Links:         c.cfg.Links,
		Nodes:         c.cfg.Nodes,
		Classes:       ClassNames(),
		LatBuckets:    NumLatBuckets,
		Cycles:        uint64(endCycle),
		Epochs:        c.rows,
	}
}
