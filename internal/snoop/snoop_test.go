package snoop

import (
	"math/rand"
	"testing"

	"spcoh/internal/arch"
	"spcoh/internal/cache"
	"spcoh/internal/event"
	"spcoh/internal/noc"
	"spcoh/internal/protocol"
)

// bigConfig is the paper-size 16-node machine with small caches; broadcast
// bandwidth overheads only show at realistic node counts (a 2x2 multicast
// tree is nearly free).
func bigConfig() protocol.Config {
	cfg := protocol.DefaultConfig()
	cfg.L1 = cache.Config{Bytes: 4 * arch.LineSize, Ways: 1}
	cfg.L2 = cache.Config{Bytes: 32 * arch.LineSize, Ways: 2}
	return cfg
}

func testConfig() protocol.Config {
	cfg := protocol.DefaultConfig()
	cfg.Nodes = 4
	cfg.NoC = noc.Config{Width: 2, Height: 2, RouterDelay: 2, LinkDelay: 1, FlitBytes: 16, HeaderFlits: 1}
	cfg.L1 = cache.Config{Bytes: 4 * arch.LineSize, Ways: 1}
	cfg.L2 = cache.Config{Bytes: 32 * arch.LineSize, Ways: 2}
	return cfg
}

func access(t *testing.T, sim *event.Sim, n *Node, addr arch.Addr, write bool) event.Time {
	t.Helper()
	start := sim.Now()
	var end event.Time
	done := false
	n.Access(0, addr, write, func() { done = true; end = sim.Now() })
	sim.Run()
	if !done {
		t.Fatalf("access to %#x never completed", uint64(addr))
	}
	return end - start
}

func TestColdReadUsesMemory(t *testing.T) {
	sim := event.New()
	sys := New(sim, testConfig())
	lat := access(t, sim, sys.Nodes[0], 0x100, false)
	if lat < sys.Cfg.MemLatency {
		t.Fatalf("cold read latency %d < memory %d", lat, sys.Cfg.MemLatency)
	}
	if sys.Stats().NonCommunicating != 1 {
		t.Fatalf("stats = %+v", sys.Stats())
	}
	// Sole copy installs Exclusive.
	if l := sys.Nodes[0].L2().Peek(arch.Addr(0x100).Line()); l == nil || l.State != cache.Exclusive {
		t.Fatalf("fill = %v", l)
	}
}

func TestCacheToCacheBeatsMemory(t *testing.T) {
	sim := event.New()
	sys := New(sim, testConfig())
	access(t, sim, sys.Nodes[1], 0x200, true)
	lat := access(t, sim, sys.Nodes[0], 0x200, false)
	if lat >= sys.Cfg.MemLatency {
		t.Fatalf("snoop-supplied read took %d, should beat memory", lat)
	}
	st := sys.Stats()
	if st.Communicating != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// All tiles snooped (energy accounting).
	if st.SnoopLookups < uint64(sys.Cfg.Nodes-1) {
		t.Fatalf("snoop lookups = %d", st.SnoopLookups)
	}
	line := arch.Addr(0x200).Line()
	if l := sys.Nodes[1].L2().Peek(line); l == nil || l.State != cache.Shared {
		t.Fatalf("provider state = %v", l)
	}
	if l := sys.Nodes[0].L2().Peek(line); l == nil || l.State != cache.Forward {
		t.Fatalf("requester state = %v", l)
	}
}

func TestWriteInvalidatesAll(t *testing.T) {
	sim := event.New()
	sys := New(sim, testConfig())
	for i := 0; i < 3; i++ {
		access(t, sim, sys.Nodes[i], 0x300, false)
	}
	access(t, sim, sys.Nodes[3], 0x300, true)
	line := arch.Addr(0x300).Line()
	for i := 0; i < 3; i++ {
		if sys.Nodes[i].L2().Peek(line) != nil {
			t.Fatalf("node %d not invalidated", i)
		}
	}
	if l := sys.Nodes[3].L2().Peek(line); l == nil || l.State != cache.Modified {
		t.Fatalf("writer = %v", l)
	}
}

func TestUpgradeNeedsNoData(t *testing.T) {
	sim := event.New()
	sys := New(sim, testConfig())
	access(t, sim, sys.Nodes[0], 0x400, false)
	access(t, sim, sys.Nodes[1], 0x400, false)
	lat := access(t, sim, sys.Nodes[0], 0x400, true)
	if lat >= sys.Cfg.MemLatency {
		t.Fatalf("upgrade should not wait for memory: %d", lat)
	}
	if l := sys.Nodes[0].L2().Peek(arch.Addr(0x400).Line()); l == nil || l.State != cache.Modified {
		t.Fatalf("upgrader = %v", l)
	}
}

func TestBroadcastBandwidthExceedsDirectory(t *testing.T) {
	run := func(build func(sim *event.Sim) (func(id int, addr arch.Addr, write bool, done func()), func() uint64)) uint64 {
		sim := event.New()
		acc, bytes := build(sim)
		completed := 0
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 200; i++ {
			id := rng.Intn(16)
			addr := arch.Addr(rng.Intn(16)) * arch.LineSize
			acc(id, addr, rng.Intn(3) == 0, func() { completed++ })
			sim.Run()
		}
		if completed != 200 {
			t.Fatalf("%d/200 completed", completed)
		}
		return bytes()
	}
	snoopBytes := run(func(sim *event.Sim) (func(int, arch.Addr, bool, func()), func() uint64) {
		sys := New(sim, bigConfig())
		return func(id int, a arch.Addr, w bool, d func()) { sys.Nodes[id].Access(0, a, w, d) },
			func() uint64 { return sys.NetStats().Bytes }
	})
	dirBytes := run(func(sim *event.Sim) (func(int, arch.Addr, bool, func()), func() uint64) {
		sys := protocol.New(sim, bigConfig(), nil)
		return func(id int, a arch.Addr, w bool, d func()) { sys.Nodes[id].Access(0, a, w, d) },
			func() uint64 { return sys.NetStats().Bytes }
	})
	if snoopBytes <= dirBytes {
		t.Fatalf("broadcast bytes %d should exceed directory %d", snoopBytes, dirBytes)
	}
}

func TestStressConcurrent(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		sim := event.New()
		sys := New(sim, testConfig())
		completed := 0
		total := 0
		for id := range sys.Nodes {
			n := sys.Nodes[id]
			rng := rand.New(rand.NewSource(seed*10 + int64(id)))
			var next func(i int)
			next = func(i int) {
				if i >= 250 {
					return
				}
				total++
				addr := arch.Addr(rng.Intn(12)) * arch.LineSize
				n.Access(0, addr, rng.Intn(3) == 0, func() {
					completed++
					sim.After(event.Time(rng.Intn(5)), func() { next(i + 1) })
				})
			}
			next(0)
		}
		sim.Run()
		if completed != 4*250 {
			t.Fatalf("seed %d: %d/%d completed", seed, completed, 4*250)
		}
		if sys.Outstanding() != 0 {
			t.Fatalf("outstanding arbitration at quiescence: %d", sys.Outstanding())
		}
		// Single-writer invariant: at most one M/E copy per line.
		owners := make(map[arch.LineAddr]int)
		for _, n := range sys.Nodes {
			for i := 0; i < 12; i++ {
				l := arch.LineAddr(i)
				if ln := n.L2().Peek(l); ln != nil && (ln.State == cache.Modified || ln.State == cache.Exclusive) {
					owners[l]++
				}
			}
		}
		for l, c := range owners {
			if c > 1 {
				t.Fatalf("line %#x has %d exclusive owners", uint64(l), c)
			}
		}
	}
}
