// Package snoop implements the broadcast snooping protocol the paper uses
// as its latency-lower-bound / bandwidth-upper-bound comparison point
// (§5.1: "To fairly evaluate a broadcast snoop-based protocol, we assume a
// totally ordered interconnect with the same configuration as the one with
// directory").
//
// Every L2 miss broadcasts a snoop request to all other tiles; each tile
// probes its L2 (energy) and answers with data (forwardable copy), a
// shared indication, or a plain ack; the home tile additionally performs a
// speculative memory fetch. The total order of the paper's interconnect is
// modeled by a zero-cost per-line arbitration queue: conflicting requests
// to the same line serialize, which is what a physically ordered network
// provides for free. Requests complete when all snoop responses (and data,
// when needed) have arrived.
package snoop

import (
	"spcoh/internal/arch"
	"spcoh/internal/cache"
	"spcoh/internal/event"
	"spcoh/internal/noc"
	"spcoh/internal/predictor"
	"spcoh/internal/protocol"
)

// Stats counts snoop-system activity, mirroring the directory system's
// counters where they are comparable.
type Stats struct {
	Accesses         uint64
	L1Hits, L2Hits   uint64
	Misses           uint64
	Communicating    uint64
	NonCommunicating uint64
	MissLatencySum   uint64
	SnoopLookups     uint64
	Writebacks       uint64
}

// AvgMissLatency returns the mean L2 miss latency.
func (s *Stats) AvgMissLatency() float64 {
	if s.Misses == 0 {
		return 0
	}
	return float64(s.MissLatencySum) / float64(s.Misses)
}

// System is a broadcast-snooping CMP over the same mesh and cache
// configuration as the directory system.
type System struct {
	Cfg   protocol.Config
	Sim   *event.Sim
	Net   *noc.Network
	Nodes []*Node

	// arb is the per-line arbitration queue modeling the ordered
	// interconnect: the head transaction owns the line.
	arb map[arch.LineAddr][]*txn

	// Fast selects the fast functional mode (DESIGN.md §15): each miss's
	// broadcast transaction executes as one atomic virtual-time cascade at
	// a single real-clock instant with contention-free NoC latencies. The
	// transaction is atomic, so the per-line arbitration queue is trivially
	// empty and is skipped; only the CPU-visible completion rides the real
	// engine.
	Fast bool
	casc event.Cascade

	// obs, when set, feeds the run-time metrics layer (nil by default).
	obs *Obs

	// respPool recycles snoop-response bindings (see snoopResp): every
	// broadcast fans out to Nodes-1 responders, so the response path is the
	// package's hottest allocation site.
	respPool []*snoopResp

	// deliverPool recycles the fast-mode broadcast-delivery bindings (see
	// snoopDeliver); same fan-out as respPool.
	deliverPool []*snoopDeliver
}

// snoopDeliver is the pooled binding of one fast-mode broadcast delivery:
// the snoop request's arrival at one remote tile, scheduled on the cascade.
//
//spcoh:pooled
type snoopDeliver struct {
	n *Node // the probed tile
	t *txn
}

func (s *System) getSnoopDeliver(n *Node, t *txn) *snoopDeliver {
	if k := len(s.deliverPool); k > 0 {
		d := s.deliverPool[k-1]
		s.deliverPool = s.deliverPool[:k-1]
		d.n, d.t = n, t
		return d
	}
	return &snoopDeliver{n: n, t: t}
}

//spcoh:noalloc
func fireSnoopDeliver(a any) {
	d := a.(*snoopDeliver)
	n, t := d.n, d.t
	d.n, d.t = nil, nil
	n.sys.deliverPool = append(n.sys.deliverPool, d)
	n.snoop(t)
}

// snoopResp is the pooled binding of one snoop response: the responder's
// local lookup delay, then the network flight back to the requester.
//
//spcoh:pooled
type snoopResp struct {
	n         *Node // responder
	t         *txn
	bytes     int
	had, data bool
	sent      event.Time
}

// respLaunch fires when the responder's L2 lookup latency elapses and
// injects the response packet.
//
//spcoh:noalloc
func respLaunch(a any) {
	r := a.(*snoopResp)
	s := r.n.sys
	if s.Fast {
		r.sent = s.casc.Now()
		lat := s.Net.FastSend(r.n.self, r.t.node.self, r.bytes)
		s.casc.After(lat, respArrive, r)
		return
	}
	r.sent = s.Sim.Now()
	s.Net.SendFn(r.n.self, r.t.node.self, r.bytes, respArrive, r)
}

// respArrive fires at the requester: it frees the record, updates the
// transaction and re-checks completion.
//
//spcoh:noalloc
func respArrive(a any) {
	r := a.(*snoopResp)
	s := r.n.sys
	t, had, data, sent := r.t, r.had, r.data, r.sent
	r.n, r.t = nil, nil
	s.respPool = append(s.respPool, r)
	if s.obs != nil && s.obs.Response != nil {
		s.obs.Response(s.clockNow() - sent)
	}
	t.responses++
	if had {
		t.anyShared = true
	}
	if data {
		t.data = true
	}
	t.node.complete(t)
}

// Obs carries the metrics hooks of the snoop protocol. Every field may be
// nil independently. Request fires at each snoop-broadcast delivery and
// Response at each snoop-response delivery, both with network latency;
// memory-update writebacks are fire-and-forget and appear only in the
// NoC-level delivery statistics. Miss fires when a miss completes, with
// its CPU-visible latency.
type Obs struct {
	Request  func(lat event.Time)
	Response func(lat event.Time)
	Miss     func(node arch.NodeID, kind predictor.MissKind, lat event.Time, comm bool)
}

// SetObserver attaches (or, with nil, detaches) the metrics hooks.
func (s *System) SetObserver(o *Obs) { s.obs = o }

// Node is one tile: L1 + L2 + snoop logic.
type Node struct {
	sys         *System
	self        arch.NodeID
	l1          *cache.Cache
	l2          *cache.Cache
	outstanding map[arch.LineAddr]*txn
	stats       Stats
}

// txn is one outstanding broadcast transaction.
type txn struct {
	node  *Node
	line  arch.LineAddr
	kind  predictor.MissKind
	start event.Time

	responses    int
	delivered    int
	expected     int
	data         bool
	memData      bool
	memRequested bool
	anyShared    bool // some responder held a copy (install F, count communicating)
	done         func()
	waiters      []func()

	// home is the home tile once its speculative fetch is launched; memSent
	// stamps the memory data's injection time for the metrics observer.
	home    *Node
	memSent event.Time
}

// New assembles a snoop system.
func New(sim *event.Sim, cfg protocol.Config) *System {
	s := &System{Cfg: cfg, Sim: sim, Net: noc.New(sim, cfg.NoC), arb: make(map[arch.LineAddr][]*txn)}
	s.Nodes = make([]*Node, cfg.Nodes)
	for i := range s.Nodes {
		s.Nodes[i] = &Node{sys: s, self: arch.NodeID(i), l1: cache.New(cfg.L1), l2: cache.New(cfg.L2),
			outstanding: make(map[arch.LineAddr]*txn)}
	}
	return s
}

// Home returns the tile whose memory controller owns a line.
func (s *System) Home(l arch.LineAddr) arch.NodeID {
	return arch.NodeID(uint64(l) % uint64(s.Cfg.Nodes))
}

// Stats aggregates node counters.
func (s *System) Stats() Stats {
	var t Stats
	for _, n := range s.Nodes {
		t.Accesses += n.stats.Accesses
		t.L1Hits += n.stats.L1Hits
		t.L2Hits += n.stats.L2Hits
		t.Misses += n.stats.Misses
		t.Communicating += n.stats.Communicating
		t.NonCommunicating += n.stats.NonCommunicating
		t.MissLatencySum += n.stats.MissLatencySum
		t.SnoopLookups += n.stats.SnoopLookups
		t.Writebacks += n.stats.Writebacks
	}
	return t
}

// NetStats returns interconnect statistics.
func (s *System) NetStats() noc.Stats { return s.Net.Stats() }

// clockNow returns the protocol-visible clock: the cascade's virtual time
// while a fast-mode transaction is draining, the engine clock otherwise.
//
//spcoh:noalloc
func (s *System) clockNow() event.Time {
	if s.casc.Active() {
		return s.casc.Now()
	}
	return s.Sim.Now()
}

// Outstanding reports in-flight transactions (quiescence check).
func (s *System) Outstanding() int { return len(s.arb) }

// ID returns the node's tile ID.
func (n *Node) ID() arch.NodeID { return n.self }

// L2 exposes the L2 array.
func (n *Node) L2() *cache.Cache { return n.l2 }

// Stats returns the node's counters.
func (n *Node) Stats() Stats { return n.stats }

// Access performs one memory access; done runs at completion.
func (n *Node) Access(pc uint64, addr arch.Addr, write bool, done func()) {
	n.stats.Accesses++
	line := addr.Line()
	cfg := n.sys.Cfg
	if !write {
		if n.l1.Lookup(line) != nil {
			n.stats.L1Hits++
			n.sys.Sim.After(cfg.L1Latency, done)
			return
		}
		if n.l2.Lookup(line) != nil {
			n.stats.L2Hits++
			n.l1.Insert(line, cache.Shared)
			n.sys.Sim.After(cfg.L1Latency+cfg.L2HitLatency(), done)
			return
		}
		n.miss(line, predictor.ReadMiss, done)
		return
	}
	if l := n.l2.Lookup(line); l != nil {
		switch l.State {
		case cache.Modified, cache.Exclusive:
			l.State = cache.Modified
			n.stats.L2Hits++
			n.l1.Insert(line, cache.Shared)
			n.sys.Sim.After(cfg.L1Latency+cfg.L2HitLatency(), done)
		default:
			n.miss(line, predictor.UpgradeMiss, done)
		}
		return
	}
	n.miss(line, predictor.WriteMiss, done)
}

// AccessFast is the fast-mode hit path: it resolves L1/L2 hits by returning
// the access latency for the core to accumulate on its own virtual clock,
// without touching the event queue. A miss returns ok=false with the caches
// untouched; the caller re-issues the access through Access. Classification
// and LRU movement are identical to Access (see protocol.Node.AccessFast).
func (n *Node) AccessFast(pc uint64, addr arch.Addr, write bool) (lat event.Time, ok bool) {
	line := addr.Line()
	cfg := n.sys.Cfg
	if !write {
		if n.l1.Lookup(line) != nil {
			n.stats.Accesses++
			n.stats.L1Hits++
			return cfg.L1Latency, true
		}
		if n.l2.Lookup(line) != nil {
			n.stats.Accesses++
			n.stats.L2Hits++
			n.l1.Insert(line, cache.Shared)
			return cfg.L1Latency + cfg.L2HitLatency(), true
		}
		return 0, false
	}
	l := n.l2.Peek(line)
	if l == nil || (l.State != cache.Modified && l.State != cache.Exclusive) {
		return 0, false
	}
	n.l2.Lookup(line)
	l.State = cache.Modified
	n.stats.Accesses++
	n.stats.L2Hits++
	n.l1.Insert(line, cache.Shared)
	return cfg.L1Latency + cfg.L2HitLatency(), true
}

func (n *Node) miss(line arch.LineAddr, kind predictor.MissKind, done func()) {
	// A miss on this line is already outstanding here: retry afterwards.
	if prev, ok := n.outstanding[line]; ok {
		write := kind != predictor.ReadMiss
		prev.waiters = append(prev.waiters, func() { n.Access(0, line.Base(), write, done) })
		return
	}
	t := &txn{node: n, line: line, kind: kind, start: n.sys.Sim.Now(), done: done}
	n.outstanding[line] = t
	detect := n.sys.Cfg.L1Latency + n.sys.Cfg.L2TagLatency
	n.sys.Sim.AfterFn(detect, arbJoin, t)
}

// arbJoin fires when miss detection completes: the transaction joins the
// per-line arbitration queue and broadcasts if it is the head.
//
//spcoh:noalloc
func arbJoin(a any) {
	t := a.(*txn)
	n := t.node
	if n.sys.Fast {
		// Atomic transaction: the line cannot be contended mid-flight, so
		// arbitration is trivially empty and skipped (complete's release
		// code is a no-op on an absent queue).
		n.sys.casc.Begin(n.sys.Sim.Now())
		n.broadcast(t)
		n.sys.casc.Drain()
		return
	}
	q := n.sys.arb[t.line]
	n.sys.arb[t.line] = append(q, t)
	if len(q) == 0 { // we are the head: go
		n.broadcast(t)
	}
}

// broadcast sends the snoop request to every other tile along the fabric's
// multicast tree.
func (n *Node) broadcast(t *txn) {
	n.stats.Misses++
	s := n.sys
	t.expected = s.Cfg.Nodes - 1
	dsts := arch.FullSet(s.Cfg.Nodes).Remove(n.self)
	if s.Fast {
		base := s.casc.Now()
		s.Net.FastBroadcast(n.self, dsts, protocol.ControlBytes, func(d arch.NodeID, lat event.Time) {
			if s.obs != nil && s.obs.Request != nil {
				s.obs.Request(lat)
			}
			s.casc.At(base+lat, fireSnoopDeliver, s.getSnoopDeliver(s.Nodes[d], t))
		})
		if t.kind != predictor.UpgradeMiss && s.Home(t.line) == n.self {
			s.casc.After(s.Cfg.MemLatency, localMemFetch, t)
		}
		return
	}
	sent := s.Sim.Now()
	s.Net.Broadcast(n.self, dsts, protocol.ControlBytes, func(d arch.NodeID) {
		if s.obs != nil && s.obs.Request != nil {
			s.obs.Request(s.Sim.Now() - sent)
		}
		s.Nodes[d].snoop(t)
	})
	// The home's memory controller sees the ordered broadcast too and
	// fetches speculatively; the fetch is cancelled if a cache supplies
	// first (the HITM signal of bus-based snooping). When the requester is
	// its own home the fetch starts locally.
	if t.kind != predictor.UpgradeMiss && s.Home(t.line) == n.self {
		s.Sim.AfterFn(s.Cfg.MemLatency, localMemFetch, t)
	}
}

// localMemFetch completes a requester-is-home speculative fetch: the data
// is local, so no packet flies.
//
//spcoh:noalloc
func localMemFetch(a any) {
	t := a.(*txn)
	if !t.data && !t.memData && t.done != nil {
		t.memData = true
		t.node.complete(t)
	}
}

// speculativeFetch is the home-side memory fetch launched on broadcast
// delivery; data is sent only if no cache has supplied by completion.
func (n *Node) speculativeFetch(t *txn) {
	if t.memRequested {
		return
	}
	t.memRequested = true
	t.home = n
	if n.sys.Fast {
		n.sys.casc.After(n.sys.Cfg.MemLatency, specFetchLaunch, t)
		return
	}
	n.sys.Sim.AfterFn(n.sys.Cfg.MemLatency, specFetchLaunch, t)
}

// specFetchLaunch fires when the home's memory round trip completes and
// sends the data unless a cache answered first.
//
//spcoh:noalloc
func specFetchLaunch(a any) {
	t := a.(*txn)
	if t.data || t.memData || t.done == nil {
		return // cancelled: a cache answered first
	}
	s := t.home.sys
	if s.Fast {
		t.memSent = s.casc.Now()
		lat := s.Net.FastSend(t.home.self, t.node.self, protocol.DataBytes)
		s.casc.After(lat, specDataArrive, t)
		return
	}
	t.memSent = s.Sim.Now()
	s.Net.SendFn(t.home.self, t.node.self, protocol.DataBytes, specDataArrive, t)
}

// specDataArrive fires at the requester with the home's memory data.
//
//spcoh:noalloc
func specDataArrive(a any) {
	t := a.(*txn)
	s := t.node.sys
	if s.obs != nil && s.obs.Response != nil {
		s.obs.Response(s.clockNow() - t.memSent)
	}
	t.memData = true
	t.node.complete(t)
}

// snoop probes this tile's L2 on behalf of requester t and responds.
func (n *Node) snoop(t *txn) {
	n.stats.SnoopLookups++
	t.delivered++
	s := n.sys
	if t.kind != predictor.UpgradeMiss && s.Home(t.line) == n.self {
		n.speculativeFetch(t)
	}
	if t.kind == predictor.UpgradeMiss {
		t.node.complete(t) // ordered fabric: delivery is the invalidation
	}
	l := n.l2.Peek(t.line)
	st := cache.Invalid
	if l != nil {
		st = l.State
	}
	respond := func(lat event.Time, bytes int, had, data bool) {
		var r *snoopResp
		if k := len(s.respPool); k > 0 {
			r = s.respPool[k-1]
			s.respPool = s.respPool[:k-1]
			r.n, r.t, r.bytes, r.had, r.data = n, t, bytes, had, data
		} else {
			r = &snoopResp{n: n, t: t, bytes: bytes, had: had, data: data}
		}
		if s.Fast {
			s.casc.After(lat, respLaunch, r)
			return
		}
		s.Sim.AfterFn(lat, respLaunch, r)
	}
	if t.kind == predictor.ReadMiss {
		if st.CanForward() {
			if st == cache.Modified {
				// Memory update on M->S (data to home).
				if s.Fast {
					s.Net.FastSend(n.self, s.Home(t.line), protocol.DataBytes)
				} else {
					s.Net.Send(n.self, s.Home(t.line), protocol.DataBytes, func() {})
				}
			}
			n.l2.SetState(t.line, cache.Shared)
			respond(s.Cfg.L2HitLatency(), protocol.DataBytes, true, true)
		} else {
			respond(s.Cfg.L2TagLatency, protocol.ControlBytes, st.Valid(), false)
		}
		return
	}
	// Write or upgrade: invalidate; forwardable copies supply data.
	if st.CanForward() {
		n.l1.Invalidate(t.line)
		n.l2.Invalidate(t.line)
		respond(s.Cfg.L2HitLatency(), protocol.DataBytes, true, true)
		return
	}
	had := st.Valid()
	if had {
		n.l1.Invalidate(t.line)
		n.l2.Invalidate(t.line)
	}
	respond(s.Cfg.L2TagLatency, protocol.ControlBytes, had, false)
}

// complete finishes the transaction when the ordered fabric semantics are
// satisfied: reads and writes finish when data arrives (from a cache, or
// from the home's speculative fetch when no cache holds the line);
// upgrades finish when the broadcast has been delivered everywhere — on a
// totally ordered interconnect delivery *is* the invalidation, so no ack
// collection gates completion (responses still flow for bandwidth/energy
// accounting and sharing-state reconstruction).
func (n *Node) complete(t *txn) {
	if t.kind == predictor.UpgradeMiss {
		if t.delivered < t.expected {
			return
		}
	} else if !t.data && !t.memData {
		return // speculative memory data is on its way
	}
	if t.done == nil {
		return // already completed (late memory data)
	}
	done := t.done
	t.done = nil
	delete(n.outstanding, t.line)

	cpuLat := n.sys.clockNow() - t.start
	n.stats.MissLatencySum += uint64(cpuLat)
	if t.anyShared {
		n.stats.Communicating++
	} else {
		n.stats.NonCommunicating++
	}
	if o := n.sys.obs; o != nil && o.Miss != nil {
		o.Miss(n.self, t.kind, cpuLat, t.anyShared)
	}

	// Install.
	switch t.kind {
	case predictor.ReadMiss:
		st := cache.Exclusive
		if t.anyShared {
			st = cache.Forward
		}
		n.fill(t.line, st)
	default:
		n.fill(t.line, cache.Modified)
	}

	// Release the line arbitration and start the next queued request.
	q := n.sys.arb[t.line]
	if len(q) > 0 && q[0] == t {
		q = q[1:]
	}
	if len(q) == 0 {
		delete(n.sys.arb, t.line)
	} else {
		n.sys.arb[t.line] = q
		next := q[0]
		next.node.broadcast(next)
	}

	if n.sys.Fast {
		// The cascade resolves the transaction at one real instant;
		// surface the completion to the CPU at its virtual time.
		n.sys.Sim.At(t.start+cpuLat, done)
	} else {
		done()
	}
	for _, w := range t.waiters {
		w()
	}
}

func (n *Node) fill(l arch.LineAddr, st cache.State) {
	v, evicted := n.l2.Insert(l, st)
	n.l1.Insert(l, cache.Shared)
	if evicted {
		n.l1.Invalidate(v.Addr)
		if v.State == cache.Modified {
			n.stats.Writebacks++
			if n.sys.Fast {
				n.sys.Net.FastSend(n.self, n.sys.Home(v.Addr), protocol.DataBytes)
			} else {
				n.sys.Net.Send(n.self, n.sys.Home(v.Addr), protocol.DataBytes, func() {})
			}
		}
	}
}
