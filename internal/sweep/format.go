package sweep

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"spcoh/internal/sim"
	"spcoh/internal/stats"
)

// The renderers in this file produce the *merged output* of a sweep. They
// must stay invariant under worker count, resume state and host speed:
// only job specs and simulation results may appear — never wall times,
// attempt counts or cache provenance (those belong to Summary).

// metricHeader names the per-job metric columns of the table and CSV
// renderings, in order.
var metricHeader = []string{
	"cycles", "misses", "comm%", "missLat", "acc%", "predTgt", "actTgt", "netKB", "energy", "storageBits",
}

// metricsOf extracts the metric row for one result, matching metricHeader.
func metricsOf(r *sim.Result) []float64 {
	n := r.Nodes
	acc, predTgt, actTgt := 0.0, 0.0, 0.0
	if r.Protocol == sim.Directory {
		acc = 100 * n.Accuracy()
		if n.Predicted > 0 {
			predTgt = float64(n.PredTargets) / float64(n.Predicted)
		}
		if n.Misses > 0 {
			actTgt = float64(n.ActualTargets) / float64(n.Misses)
		}
	}
	return []float64{
		float64(r.Cycles),
		float64(r.Misses()),
		100 * r.CommRatio(),
		r.AvgMissLatency(),
		acc,
		predTgt,
		actTgt,
		float64(r.Net.Bytes) / 1024,
		r.Energy.Total(),
		float64(r.StorageBits),
	}
}

// FormatTable renders the report as an aligned text table, one row per
// job in key order.
func (r *Report) FormatTable(w io.Writer) {
	t := stats.NewTable("sweep results", append([]string{"job"}, metricHeader...)...)
	for _, jr := range r.Jobs {
		if jr.Err != nil {
			t.AddRow(jr.Job.Key(), "ERROR: "+jr.Err.Error())
			continue
		}
		cells := make([]any, 0, len(metricHeader)+1)
		cells = append(cells, jr.Job.Key())
		for _, v := range metricsOf(jr.Result) {
			cells = append(cells, v)
		}
		t.AddRowf(cells...)
	}
	t.Render(w)
}

// FormatCSV renders the report as CSV, one row per job in key order.
// Floats print in Go's shortest round-trip form, so the bytes are exact
// and reproducible.
func (r *Report) FormatCSV(w io.Writer) error {
	if _, err := fmt.Fprint(w, "job"); err != nil {
		return err
	}
	for _, h := range metricHeader {
		if _, err := fmt.Fprint(w, ","+h); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for _, jr := range r.Jobs {
		if _, err := fmt.Fprint(w, jr.Job.Key()); err != nil {
			return err
		}
		if jr.Err != nil {
			if _, err := fmt.Fprintf(w, ",ERROR: %s\n", jr.Err); err != nil {
				return err
			}
			continue
		}
		for _, v := range metricsOf(jr.Result) {
			if _, err := fmt.Fprint(w, ","+strconv.FormatFloat(v, 'g', -1, 64)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// jsonCell is the FormatJSON record for one job.
type jsonCell struct {
	Key    string      `json:"key"`
	Job    Job         `json:"job"`
	Digest string      `json:"digest"`
	Error  string      `json:"error,omitempty"`
	Result *sim.Result `json:"result,omitempty"`
}

// FormatJSON renders the full merged results: jobs in key order with
// complete result payloads. encoding/json emits map keys sorted, so the
// bytes are deterministic.
func (r *Report) FormatJSON(w io.Writer) error {
	cells := make([]jsonCell, len(r.Jobs))
	for i, jr := range r.Jobs {
		cells[i] = jsonCell{Key: jr.Job.Key(), Job: jr.Job, Digest: jr.Job.Digest(), Result: jr.Result}
		if jr.Err != nil {
			cells[i].Error = jr.Err.Error()
			cells[i].Result = nil
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(cells)
}

// Summary is the machine-readable perf record of one sweep invocation:
// wall times and scheduling detail that the merged outputs deliberately
// omit. spsweep writes it to results/BENCH_sweep.json so the repository's
// performance trajectory is trackable across commits.
type Summary struct {
	MatrixDigest string      `json:"matrix_digest"`
	Matrix       Matrix      `json:"matrix"`
	Workers      int         `json:"workers"`
	Jobs         int         `json:"jobs"`
	Executed     int         `json:"executed"`
	Cached       int         `json:"cached"`
	Failed       int         `json:"failed"`
	WallSeconds  float64     `json:"wall_seconds"`
	PerJob       []JobTiming `json:"per_job"`
}

// JobTiming is one job's scheduling record.
type JobTiming struct {
	Key      string  `json:"key"`
	Seconds  float64 `json:"seconds"`
	Cached   bool    `json:"cached"`
	Attempts int     `json:"attempts"`
	Error    string  `json:"error,omitempty"`
}

// Summarize builds the invocation summary for a report.
func (r *Report) Summarize(m Matrix, workers int) *Summary {
	s := &Summary{
		MatrixDigest: m.Digest(),
		Matrix:       m,
		Workers:      workers,
		Jobs:         len(r.Jobs),
		Executed:     r.Executed,
		Cached:       r.Cached,
		Failed:       r.Failed,
		WallSeconds:  r.Wall.Seconds(),
	}
	for _, jr := range r.Jobs {
		t := JobTiming{Key: jr.Job.Key(), Seconds: jr.Wall.Seconds(), Cached: jr.Cached, Attempts: jr.Attempts}
		if jr.Err != nil {
			t.Error = jr.Err.Error()
		}
		s.PerJob = append(s.PerJob, t)
	}
	return s
}

// WriteSummary writes the summary JSON to path atomically.
func WriteSummary(path string, s *Summary) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return fmt.Errorf("sweep: encode summary: %w", err)
	}
	return atomicWrite(path, append(b, '\n'))
}
