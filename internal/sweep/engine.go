package sweep

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"

	"spcoh/internal/sim"
)

// RunFunc executes one job and returns its measurements. The engine calls
// it from multiple goroutines; implementations must not share mutable
// state across calls (experiments.RunCell, the production executor, shares
// none by construction).
type RunFunc func(Job) (*sim.Result, error)

// Options configures the engine.
type Options struct {
	// Workers bounds the pool; <= 0 means runtime.NumCPU().
	Workers int
	// Timeout bounds one attempt's wall-clock time; 0 means no bound.
	// A timed-out attempt's goroutine runs on to completion in the
	// background (a simulation is not preemptible) — the in-band bound is
	// sim.Options.MaxCycles inside the RunFunc; Timeout is the backstop.
	Timeout time.Duration
	// Retries is the number of additional attempts after a failed first
	// one. Simulation failures are deterministic, so retries mainly cover
	// environmental failures (artifact-store I/O, memory pressure).
	Retries int
	// Backoff is the base delay inserted before retry attempts: attempt k
	// (k >= 2) of a job waits RetryDelay(key, k, Backoff, BackoffSeed) —
	// exponential in k with seeded jitter, so concurrent retry storms
	// decorrelate without losing determinism. 0 (the default) disables the
	// wait; the first attempt never waits.
	Backoff time.Duration
	// BackoffSeed seeds the retry jitter. The delay schedule is a pure
	// function of (job key, attempt, Backoff, BackoffSeed): a rerun of the
	// same sweep waits the same intervals, and no attempt reads the global
	// math/rand source.
	BackoffSeed int64
	// Store, when set, checkpoints completed jobs and recalls cells
	// finished by an earlier, interrupted sweep. Jobs that exhaust their
	// attempts are recorded in the store manifest's failure ledger (see
	// Store.FailedCells) unless the failure was a cancellation.
	Store *Store
	// Progress, when set, observes every finished job. Calls are
	// serialized but arrive in completion order — display only; nothing
	// deterministic may be derived from it.
	Progress func(JobResult)
}

// JobResult is one job's outcome.
type JobResult struct {
	Job      Job
	Result   *sim.Result
	Err      error
	Cached   bool          // recalled from the store, not executed
	Attempts int           // executions this run (0 when cached/canceled)
	Wall     time.Duration // scheduling + execution wall time this run
}

// Report is a sweep's merged outcome. Jobs is sorted by Job.Key — never
// by completion order — so every rendering of a Report is deterministic.
type Report struct {
	Jobs     []JobResult
	Executed int // computed this run
	Cached   int // recalled from the store
	Failed   int // Err != nil after all attempts
	Wall     time.Duration
}

// Scheduler is the engine's source of work: Next hands a worker its next
// job, Finish delivers the outcome. Both are called concurrently from
// every worker of a Pool. The in-memory ListScheduler below drives local
// sweeps; internal/sweepd's lease table is the network-facing counterpart
// (leases, TTLs and requeues replace Next's simple cursor, but workers on
// both paths execute through the same Executor/RunAttempt pipeline).
type Scheduler interface {
	// Next returns the next job to execute; ok == false means the
	// scheduler is drained and the worker should exit.
	Next() (j Job, ok bool)
	// Finish delivers the outcome of a job handed out by Next.
	Finish(JobResult)
}

// ListScheduler feeds a fixed job list to a Pool in key order and collects
// the outcomes. Jobs with duplicate keys are collapsed (Matrix.Jobs never
// produces any).
type ListScheduler struct {
	mu   sync.Mutex
	jobs []Job
	next int
	res  map[string]JobResult
}

// NewListScheduler sorts jobs by key and returns a scheduler over them.
func NewListScheduler(jobs []Job) *ListScheduler {
	sorted := append([]Job(nil), jobs...)
	sort.Slice(sorted, func(i, k int) bool { return sorted[i].Key() < sorted[k].Key() })
	return &ListScheduler{jobs: sorted, res: make(map[string]JobResult, len(sorted))}
}

// Next hands out the next job in key order.
func (l *ListScheduler) Next() (Job, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.next >= len(l.jobs) {
		return Job{}, false
	}
	j := l.jobs[l.next]
	l.next++
	return j, true
}

// Finish records a job's outcome.
func (l *ListScheduler) Finish(jr JobResult) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.res[jr.Job.Key()] = jr
}

// Results returns the collected outcomes in key order, one per job.
func (l *ListScheduler) Results() []JobResult {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]JobResult, len(l.jobs))
	for i, j := range l.jobs {
		out[i] = l.res[j.Key()]
	}
	return out
}

// Pool drains sched on a bounded worker pool: each worker repeatedly takes
// the next job, executes do, and delivers the outcome through Finish. It
// returns when the scheduler is drained and every in-flight job has
// finished. Cancellation is do's concern (Executor.Do returns a
// ctx-error JobResult without executing), so a canceled pool still
// delivers one Finish per job.
func Pool(ctx context.Context, workers int, sched Scheduler, do func(context.Context, Job) JobResult) {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				j, ok := sched.Next()
				if !ok {
					return
				}
				sched.Finish(do(ctx, j))
			}
		}()
	}
	wg.Wait()
}

// Run executes jobs on a bounded worker pool and returns the merged
// report. It never fails as a whole: per-job failures (including panics
// inside the RunFunc, converted to errors) are carried in the report, and
// ctx cancellation marks the not-yet-started jobs with ctx's error. The
// report's job order is the sorted key order regardless of worker count.
func Run(ctx context.Context, jobs []Job, run RunFunc, opt Options) *Report {
	start := time.Now()
	sched := NewListScheduler(jobs)
	exec := &Executor{
		Run:         run,
		Timeout:     opt.Timeout,
		Retries:     opt.Retries,
		Backoff:     opt.Backoff,
		BackoffSeed: opt.BackoffSeed,
		Store:       opt.Store,
	}
	var progMu sync.Mutex
	do := func(ctx context.Context, j Job) JobResult {
		jr := exec.Do(ctx, j)
		if opt.Progress != nil {
			progMu.Lock()
			opt.Progress(jr)
			progMu.Unlock()
		}
		return jr
	}
	Pool(ctx, opt.Workers, sched, do)

	rep := &Report{Jobs: sched.Results(), Wall: time.Since(start)}
	for _, jr := range rep.Jobs {
		switch {
		case jr.Err != nil:
			rep.Failed++
		case jr.Cached:
			rep.Cached++
		default:
			rep.Executed++
		}
	}
	return rep
}

// Executor resolves single jobs: store recall, then up to 1+Retries
// attempts with jittered backoff, each contained by RunAttempt. It is the
// per-job execution pipeline shared by Run's local pool and by
// internal/sweepd's workers (which replace the retry loop with the
// server's requeue protocol but keep the same attempt containment).
type Executor struct {
	Run         RunFunc
	Timeout     time.Duration
	Retries     int
	Backoff     time.Duration
	BackoffSeed int64
	Store       *Store
}

// Do resolves one job; see Executor.
func (e *Executor) Do(ctx context.Context, j Job) (jr JobResult) {
	// The named return is load-bearing: the deferred Wall stamp must land
	// on the value the caller receives, not on a dead local.
	jr = JobResult{Job: j}
	start := time.Now()
	defer func() { jr.Wall = time.Since(start) }()

	if e.Store != nil {
		if res, ok := e.Store.Lookup(j); ok {
			jr.Result = res
			jr.Cached = true
			return jr
		}
	}
	var lastErr error
	for attempt := 1; attempt <= 1+e.Retries; attempt++ {
		if err := ctx.Err(); err != nil {
			lastErr = err
			break
		}
		if d := RetryDelay(j.Key(), attempt, e.Backoff, e.BackoffSeed); d > 0 {
			if err := sleepCtx(ctx, d); err != nil {
				lastErr = err
				break
			}
		}
		jr.Attempts++
		res, err := RunAttempt(ctx, j, e.Run, e.Timeout)
		if err != nil {
			lastErr = err
			continue
		}
		jr.Result = res
		if e.Store != nil {
			if perr := e.Store.Put(j, res); perr != nil {
				jr.Err = perr
			}
		}
		return jr
	}
	jr.Err = fmt.Errorf("sweep: %s: %w", j.Key(), lastErr)
	// Interrupted is not failed: only genuine post-retry failures reach
	// the manifest's failure ledger, so a ^C'd sweep still resumes with a
	// clean status. The ledger write is best effort — the JobResult
	// already carries the error.
	if e.Store != nil && !errors.Is(lastErr, context.Canceled) && !errors.Is(lastErr, context.DeadlineExceeded) {
		_ = e.Store.MarkFailed(j, lastErr.Error())
	}
	return jr
}

// RunAttempt runs one attempt of a job with panic recovery and an optional
// wall-clock timeout. It is the single attempt-containment primitive: the
// local engine's Executor and internal/sweepd's remote workers both
// execute every simulation through it.
func RunAttempt(ctx context.Context, j Job, run RunFunc, timeout time.Duration) (*sim.Result, error) {
	type outcome struct {
		res *sim.Result
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				ch <- outcome{err: fmt.Errorf("panic: %v", p)}
			}
		}()
		res, err := run(j)
		ch <- outcome{res: res, err: err}
	}()
	var expired <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		expired = t.C
	}
	select {
	case o := <-ch:
		return o.res, o.err
	case <-expired:
		return nil, fmt.Errorf("timed out after %s", timeout)
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// RetryDelay returns the pause before attempt k of the job with the given
// key: base << (k-2), scaled by a jitter factor in [0.5, 1.5) drawn from a
// rand seeded by (seed, key, k). Attempt 1 and base <= 0 wait nothing.
//
// The function is pure — the same sweep retries on the same schedule every
// run, which keeps tests deterministic — and it never touches the global
// math/rand source (spvet's wallclock check bans that in sim packages; the
// orchestrator holds itself to the same rule). internal/sweepd uses the
// same schedule for its server-side requeue gate, so a job retried locally
// and a job requeued by the server back off identically.
func RetryDelay(key string, attempt int, base time.Duration, seed int64) time.Duration {
	if base <= 0 || attempt <= 1 {
		return 0
	}
	exp := attempt - 2
	if exp > 16 {
		exp = 16 // cap the exponential; 65536x base is already absurd
	}
	h := fnv.New64a()
	h.Write([]byte(key))
	rng := rand.New(rand.NewSource(seed ^ int64(h.Sum64()) ^ int64(attempt)<<32))
	jitter := 0.5 + rng.Float64() // [0.5, 1.5)
	return time.Duration(float64(base<<exp) * jitter)
}

// sleepCtx waits d or until ctx is canceled, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
