package sweep

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"spcoh/internal/sim"
)

// RunFunc executes one job and returns its measurements. The engine calls
// it from multiple goroutines; implementations must not share mutable
// state across calls (experiments.RunCell, the production executor, shares
// none by construction).
type RunFunc func(Job) (*sim.Result, error)

// Options configures the engine.
type Options struct {
	// Workers bounds the pool; <= 0 means runtime.NumCPU().
	Workers int
	// Timeout bounds one attempt's wall-clock time; 0 means no bound.
	// A timed-out attempt's goroutine runs on to completion in the
	// background (a simulation is not preemptible) — the in-band bound is
	// sim.Options.MaxCycles inside the RunFunc; Timeout is the backstop.
	Timeout time.Duration
	// Retries is the number of additional attempts after a failed first
	// one. Simulation failures are deterministic, so retries mainly cover
	// environmental failures (artifact-store I/O, memory pressure).
	Retries int
	// Store, when set, checkpoints completed jobs and recalls cells
	// finished by an earlier, interrupted sweep.
	Store *Store
	// Progress, when set, observes every finished job. Calls are
	// serialized but arrive in completion order — display only; nothing
	// deterministic may be derived from it.
	Progress func(JobResult)
}

// JobResult is one job's outcome.
type JobResult struct {
	Job      Job
	Result   *sim.Result
	Err      error
	Cached   bool          // recalled from the store, not executed
	Attempts int           // executions this run (0 when cached/canceled)
	Wall     time.Duration // scheduling + execution wall time this run
}

// Report is a sweep's merged outcome. Jobs is sorted by Job.Key — never
// by completion order — so every rendering of a Report is deterministic.
type Report struct {
	Jobs     []JobResult
	Executed int // computed this run
	Cached   int // recalled from the store
	Failed   int // Err != nil after all attempts
	Wall     time.Duration
}

// Run executes jobs on a bounded worker pool and returns the merged
// report. It never fails as a whole: per-job failures (including panics
// inside the RunFunc, converted to errors) are carried in the report, and
// ctx cancellation marks the not-yet-started jobs with ctx's error. The
// report's job order is the sorted key order regardless of worker count.
func Run(ctx context.Context, jobs []Job, run RunFunc, opt Options) *Report {
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	sorted := append([]Job(nil), jobs...)
	sort.Slice(sorted, func(i, k int) bool { return sorted[i].Key() < sorted[k].Key() })

	start := time.Now()
	results := make([]JobResult, len(sorted))
	idx := make(chan int)
	var progMu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = runJob(ctx, sorted[i], run, opt)
				if opt.Progress != nil {
					progMu.Lock()
					opt.Progress(results[i])
					progMu.Unlock()
				}
			}
		}()
	}
	for i := range sorted {
		idx <- i
	}
	close(idx)
	wg.Wait()

	rep := &Report{Jobs: results, Wall: time.Since(start)}
	for _, jr := range rep.Jobs {
		switch {
		case jr.Err != nil:
			rep.Failed++
		case jr.Cached:
			rep.Cached++
		default:
			rep.Executed++
		}
	}
	return rep
}

// runJob resolves one job: store recall, then up to 1+Retries attempts.
func runJob(ctx context.Context, j Job, run RunFunc, opt Options) JobResult {
	jr := JobResult{Job: j}
	start := time.Now()
	defer func() { jr.Wall = time.Since(start) }()

	if opt.Store != nil {
		if res, ok := opt.Store.Lookup(j); ok {
			jr.Result = res
			jr.Cached = true
			return jr
		}
	}
	var lastErr error
	for attempt := 0; attempt <= opt.Retries; attempt++ {
		if err := ctx.Err(); err != nil {
			lastErr = err
			break
		}
		jr.Attempts++
		res, err := runAttempt(ctx, j, run, opt.Timeout)
		if err != nil {
			lastErr = err
			continue
		}
		jr.Result = res
		if opt.Store != nil {
			if perr := opt.Store.Put(j, res); perr != nil {
				jr.Err = perr
			}
		}
		return jr
	}
	jr.Err = fmt.Errorf("sweep: %s: %w", j.Key(), lastErr)
	return jr
}

// runAttempt runs one attempt with panic recovery and an optional
// wall-clock timeout.
func runAttempt(ctx context.Context, j Job, run RunFunc, timeout time.Duration) (*sim.Result, error) {
	type outcome struct {
		res *sim.Result
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				ch <- outcome{err: fmt.Errorf("panic: %v", p)}
			}
		}()
		res, err := run(j)
		ch <- outcome{res: res, err: err}
	}()
	var expired <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		expired = t.C
	}
	select {
	case o := <-ch:
		return o.res, o.err
	case <-expired:
		return nil, fmt.Errorf("timed out after %s", timeout)
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}
