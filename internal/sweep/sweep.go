// Package sweep is the parallel sweep orchestration engine: it expands a
// job matrix (benchmark × configuration × seed × scale) into independent
// simulation jobs, executes them on a bounded worker pool, and merges the
// results deterministically.
//
// The package sits *above* the discrete-event simulator: every job it
// schedules is one complete, single-threaded, deterministic simulation
// (see internal/sim), so running jobs concurrently cannot perturb any
// result — a sweep on N workers is byte-identical to the same sweep on
// one worker. Three rules keep that guarantee:
//
//   - jobs are identified and ordered by Job.Key, never by completion
//     order: workers write into per-job slots and the merged report is
//     always in key order;
//   - rendered output (FormatTable/FormatCSV/FormatJSON) carries no wall
//     times, attempt counts or cache provenance — those live in the
//     side-band Summary, which is allowed to differ between runs;
//   - artifacts are addressed by the digest of the job's canonical spec,
//     so a resumed sweep recalls exactly the cells it already computed.
//
// The orchestrator is exempt from spvet's SimOnly goroutine/wallclock
// checks (see lint.DefaultIsSim) but remains subject to maprange and
// floatorder; map iteration here goes through detutil.SortedKeys.
package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"sort"
	"strconv"
)

// Job is one independent cell of a sweep matrix: a single simulation of
// one benchmark under one predictor/protocol configuration at a given
// thread count, workload scale and seed.
type Job struct {
	Bench   string  `json:"bench"`
	Kind    string  `json:"kind"`
	Threads int     `json:"threads"`
	Scale   float64 `json:"scale"`
	Seed    int64   `json:"seed"`

	// MetricsEpoch, when non-zero, runs the cell with the run-time metrics
	// collector at this sampling epoch, so its artifact carries the
	// phase-resolved time-series. omitempty keeps the canonical spec — and
	// therefore Key and Digest — of metrics-free jobs identical to those of
	// sweeps recorded before this field existed (resume compatibility).
	MetricsEpoch uint64 `json:"metrics_epoch,omitempty"`
}

// Key returns the canonical sortable identity of the job, e.g.
// "ocean/sp/t16/x0.25/s42". Reports and merged outputs are ordered by
// this key. Metrics-enabled cells append "/m<epoch>".
func (j Job) Key() string {
	key := j.Bench + "/" + j.Kind +
		"/t" + strconv.Itoa(j.Threads) +
		"/x" + strconv.FormatFloat(j.Scale, 'g', -1, 64) +
		"/s" + strconv.FormatInt(j.Seed, 10)
	if j.MetricsEpoch != 0 {
		key += "/m" + strconv.FormatUint(j.MetricsEpoch, 10)
	}
	return key
}

// Digest returns the job's content address: the SHA-256 of its canonical
// JSON spec. Artifacts are stored under this digest, so changing any field
// of the spec relocates the artifact and forces recomputation; two sweeps
// sharing a cell share its artifact.
func (j Job) Digest() string {
	b, err := json.Marshal(j)
	if err != nil {
		// A struct of scalars cannot fail to marshal.
		panic("sweep: job digest: " + err.Error())
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Matrix spans a sweep: the cross product of its dimensions.
type Matrix struct {
	Benches []string  `json:"benches"`
	Kinds   []string  `json:"kinds"`
	Seeds   []int64   `json:"seeds"`
	Scales  []float64 `json:"scales"`
	Threads int       `json:"threads"`

	// MetricsEpoch applies to every cell of the matrix (0 = no metrics).
	MetricsEpoch uint64 `json:"metrics_epoch,omitempty"`
}

// Jobs expands the cross product into jobs sorted by Key. Cells whose
// dimensions collide on the same key (duplicate dimension values) are
// collapsed.
func (m Matrix) Jobs() []Job {
	seen := make(map[string]bool)
	var jobs []Job
	for _, b := range m.Benches {
		for _, k := range m.Kinds {
			for _, sc := range m.Scales {
				for _, sd := range m.Seeds {
					j := Job{Bench: b, Kind: k, Threads: m.Threads, Scale: sc, Seed: sd, MetricsEpoch: m.MetricsEpoch}
					if key := j.Key(); !seen[key] {
						seen[key] = true
						jobs = append(jobs, j)
					}
				}
			}
		}
	}
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].Key() < jobs[k].Key() })
	return jobs
}

// Digest identifies the whole matrix: the SHA-256 over the sorted job
// digests. Two matrices expanding to the same cells are the same sweep,
// however their dimension lists were spelled.
func (m Matrix) Digest() string {
	h := sha256.New()
	for _, j := range m.Jobs() {
		h.Write([]byte(j.Digest()))
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))
}
