// Package sweep is the parallel sweep orchestration engine: it expands a
// job matrix (benchmark × configuration × seed × scale) into independent
// simulation jobs, executes them on a bounded worker pool, and merges the
// results deterministically.
//
// The package sits *above* the discrete-event simulator: every job it
// schedules is one complete, single-threaded, deterministic simulation
// (see internal/sim), so running jobs concurrently cannot perturb any
// result — a sweep on N workers is byte-identical to the same sweep on
// one worker. Three rules keep that guarantee:
//
//   - jobs are identified and ordered by Job.Key, never by completion
//     order: workers write into per-job slots and the merged report is
//     always in key order;
//   - rendered output (FormatTable/FormatCSV/FormatJSON) carries no wall
//     times, attempt counts or cache provenance — those live in the
//     side-band Summary, which is allowed to differ between runs;
//   - artifacts are addressed by the digest of the job's canonical spec,
//     so a resumed sweep recalls exactly the cells it already computed.
//
// The orchestrator is exempt from spvet's SimOnly goroutine/wallclock
// checks (see lint.DefaultIsSim) but remains subject to maprange and
// floatorder; map iteration here goes through detutil.SortedKeys.
package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"sort"
	"strconv"

	"spcoh/internal/runcfg"
)

// Job is one independent cell of a sweep matrix: a single simulation of
// one benchmark under one predictor/protocol configuration at a given
// thread count, workload scale and seed.
//
// The embedded RunConfig inlines its fields into the job's canonical JSON
// exactly where the old hand-declared threads/scale/seed/metrics_epoch
// fields sat, so Digest — and therefore every previously-recorded artifact
// address — is unchanged by the consolidation.
type Job struct {
	Bench string `json:"bench"`
	Kind  string `json:"kind"`

	runcfg.RunConfig

	// SpecDigest, when non-empty, marks a scenario-spec cell: Bench is the
	// spec's name and the program is built from the spec file rather than a
	// built-in profile. The digest — not the path — joins the identity, so
	// moving a spec file preserves its artifacts while editing it forces
	// recomputation. omitempty keeps built-in cells' digests unchanged.
	SpecDigest string `json:"spec,omitempty"`

	// SpecPath locates the spec file at execution time. Transport only:
	// excluded from the canonical encoding (identity is SpecDigest) and
	// re-resolved from the matrix on resume.
	SpecPath string `json:"-"`
}

// Key returns the canonical sortable identity of the job, e.g.
// "ocean/sp/t16/x0.25/s42". Reports and merged outputs are ordered by
// this key. Metrics-enabled cells append "/m<epoch>"; scenario-spec cells
// append "/g<digest prefix>" (distinct spec contents must not collide even
// if their names do); fast-mode cells append "/fast" (the two fidelities
// of one cell are distinct jobs with distinct artifacts — detailed cells
// keep their legacy keys).
func (j Job) Key() string {
	key := j.Bench + "/" + j.Kind +
		"/t" + strconv.Itoa(j.Threads) +
		"/x" + strconv.FormatFloat(j.Scale, 'g', -1, 64) +
		"/s" + strconv.FormatInt(j.Seed, 10)
	if j.MetricsEpoch != 0 {
		key += "/m" + strconv.FormatUint(j.MetricsEpoch, 10)
	}
	if j.SpecDigest != "" {
		d := j.SpecDigest
		if len(d) > 12 {
			d = d[:12]
		}
		key += "/g" + d
	}
	if j.FastMode() {
		key += "/fast"
	}
	return key
}

// Digest returns the job's content address: the SHA-256 of its canonical
// JSON spec. Artifacts are stored under this digest, so changing any field
// of the spec relocates the artifact and forces recomputation; two sweeps
// sharing a cell share its artifact.
func (j Job) Digest() string {
	b, err := json.Marshal(j)
	if err != nil {
		// A struct of scalars cannot fail to marshal.
		panic("sweep: job digest: " + err.Error())
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// SpecRef names one scenario-spec workload of a sweep: resolved (digest
// computed, name read) when the matrix is assembled, so expansion and
// resume never re-read spec files to identify cells. Path is recorded in
// the manifest for resume to locate the file again.
type SpecRef struct {
	Name   string `json:"name"`
	Path   string `json:"path"`
	Digest string `json:"digest"`
}

// Matrix spans a sweep: the cross product of its dimensions.
type Matrix struct {
	Benches []string `json:"benches"`

	// Specs adds scenario-spec workloads alongside the built-in benchmarks;
	// each crosses the same kinds × scales × seeds dimensions.
	Specs []SpecRef `json:"specs,omitempty"`

	Kinds   []string  `json:"kinds"`
	Seeds   []int64   `json:"seeds"`
	Scales  []float64 `json:"scales"`
	Threads int       `json:"threads"`

	// MetricsEpoch applies to every cell of the matrix (0 = no metrics).
	MetricsEpoch uint64 `json:"metrics_epoch,omitempty"`

	// Mode applies to every cell of the matrix: "" or "detailed" for the
	// cycle-level model, "fast" for the fast functional model. The mode
	// joins each cell's key and digest, so the two fidelities of one
	// matrix never collide in the artifact store.
	Mode string `json:"mode,omitempty"`
}

// Jobs expands the cross product into jobs sorted by Key. Cells whose
// dimensions collide on the same key (duplicate dimension values) are
// collapsed.
func (m Matrix) Jobs() []Job {
	seen := make(map[string]bool)
	var jobs []Job
	add := func(j Job) {
		if key := j.Key(); !seen[key] {
			seen[key] = true
			jobs = append(jobs, j)
		}
	}
	// "detailed" normalizes to "" so a matrix spelling the default mode
	// explicitly expands to the same cells (and artifact addresses) as one
	// that omits it.
	mode := m.Mode
	if mode == "detailed" {
		mode = ""
	}
	for _, k := range m.Kinds {
		for _, sc := range m.Scales {
			for _, sd := range m.Seeds {
				rc := runcfg.RunConfig{Threads: m.Threads, Scale: sc, Seed: sd, MetricsEpoch: m.MetricsEpoch, Mode: mode}
				for _, b := range m.Benches {
					add(Job{Bench: b, Kind: k, RunConfig: rc})
				}
				for _, ref := range m.Specs {
					add(Job{Bench: ref.Name, Kind: k, RunConfig: rc,
						SpecDigest: ref.Digest, SpecPath: ref.Path})
				}
			}
		}
	}
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].Key() < jobs[k].Key() })
	return jobs
}

// Digest identifies the whole matrix: the SHA-256 over the sorted job
// digests. Two matrices expanding to the same cells are the same sweep,
// however their dimension lists were spelled.
func (m Matrix) Digest() string {
	h := sha256.New()
	for _, j := range m.Jobs() {
		h.Write([]byte(j.Digest()))
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))
}
