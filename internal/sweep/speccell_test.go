package sweep

import (
	"encoding/json"
	"strings"
	"testing"

	"spcoh/internal/runcfg"
)

// TestJobCanonicalBytesFrozen pins the exact canonical JSON of a built-in
// (non-spec) job. The RunConfig embedding and the SpecDigest/SpecPath
// fields must be invisible here: these bytes are the artifact address of
// every sweep recorded before either change existed.
func TestJobCanonicalBytesFrozen(t *testing.T) {
	j := Job{Bench: "ocean", Kind: "sp", RunConfig: runcfg.RunConfig{Threads: 16, Scale: 0.25, Seed: 42}}
	b, err := json.Marshal(j)
	if err != nil {
		t.Fatal(err)
	}
	const frozen = `{"bench":"ocean","kind":"sp","threads":16,"scale":0.25,"seed":42}`
	if string(b) != frozen {
		t.Errorf("canonical job spec drifted:\n got %s\nwant %s", b, frozen)
	}
}

// TestSpecCellIdentity checks the three identity rules of scenario-spec
// cells: the digest (not the path) joins the key and artifact address, the
// path is transport-only, and a spec cell can never collide with a
// built-in cell sharing its name.
func TestSpecCellIdentity(t *testing.T) {
	rc := runcfg.RunConfig{Threads: 16, Scale: 0.25, Seed: 42}
	plain := Job{Bench: "ring", Kind: "sp", RunConfig: rc}
	spec := Job{Bench: "ring", Kind: "sp", RunConfig: rc,
		SpecDigest: "aabbccddeeff00112233", SpecPath: "specs/ring.json"}

	if got, want := spec.Key(), plain.Key()+"/gaabbccddeeff"; got != want {
		t.Errorf("spec key = %q, want %q", got, want)
	}
	if spec.Digest() == plain.Digest() {
		t.Error("spec cell shares the built-in cell's artifact address")
	}

	moved := spec
	moved.SpecPath = "elsewhere/ring.json"
	if moved.Key() != spec.Key() || moved.Digest() != spec.Digest() {
		t.Error("moving a spec file changed the cell identity")
	}
	b, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), "ring.json") {
		t.Errorf("spec path leaked into the canonical encoding: %s", b)
	}

	edited := spec
	edited.SpecDigest = "ffeeddccbbaa99887766"
	if edited.Key() == spec.Key() || edited.Digest() == spec.Digest() {
		t.Error("editing a spec (new digest) did not relocate the cell")
	}
}

// TestMatrixSpecsExpand checks spec refs cross the full kinds×scales×seeds
// dimensions alongside the benchmarks and survive the key sort.
func TestMatrixSpecsExpand(t *testing.T) {
	m := Matrix{
		Benches: []string{"ocean"},
		Specs:   []SpecRef{{Name: "fuzz-7", Path: "a.json", Digest: "0123456789abcdef"}},
		Kinds:   []string{"dir", "sp"},
		Seeds:   []int64{1, 2},
		Scales:  []float64{0.25},
		Threads: 8,
	}
	jobs := m.Jobs()
	if len(jobs) != 8 {
		t.Fatalf("got %d jobs, want 8 (2 workloads x 2 kinds x 2 seeds)", len(jobs))
	}
	specCells := 0
	for _, j := range jobs {
		if j.SpecDigest != "" {
			specCells++
			if j.Bench != "fuzz-7" || j.SpecPath != "a.json" {
				t.Errorf("spec cell mislabeled: %+v", j)
			}
		}
	}
	if specCells != 4 {
		t.Errorf("got %d spec cells, want 4", specCells)
	}
}
