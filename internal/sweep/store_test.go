package sweep

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"spcoh/internal/runcfg"
	"spcoh/internal/sim"
)

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	store, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	j := Job{Bench: "ocean", Kind: "sp", RunConfig: runcfg.RunConfig{Threads: 16, Scale: 0.25, Seed: 42}}
	if _, ok := store.Lookup(j); ok {
		t.Fatal("empty store reported a hit")
	}
	want := fakeResult(j)
	if err := store.Put(j, want); err != nil {
		t.Fatal(err)
	}
	got, ok := store.Lookup(j)
	if !ok {
		t.Fatal("Put then Lookup missed")
	}
	if got.Cycles != want.Cycles || got.Nodes.Misses != want.Nodes.Misses || got.Net.Bytes != want.Net.Bytes {
		t.Fatalf("round-trip mangled result: got %+v want %+v", got, want)
	}
	// A different job spec must not alias onto the stored artifact.
	other := j
	other.Seed = 43
	if _, ok := store.Lookup(other); ok {
		t.Fatal("lookup with different seed hit the wrong artifact")
	}
}

func TestStorePersistsAcrossOpen(t *testing.T) {
	dir := t.TempDir()
	store, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	m := testMatrix()
	if err := store.SetMatrix(m); err != nil {
		t.Fatal(err)
	}
	j := m.Jobs()[0]
	if err := store.Put(j, fakeResult(j)); err != nil {
		t.Fatal(err)
	}

	reopened, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reopened.HasManifestFile() {
		t.Fatal("manifest not persisted")
	}
	got, ok := reopened.Matrix()
	if !ok || got.Digest() != m.Digest() {
		t.Fatalf("matrix not recovered: ok=%v digest=%s want %s", ok, got.Digest(), m.Digest())
	}
	if _, ok := reopened.Lookup(j); !ok {
		t.Fatal("completed job lost across reopen")
	}
	if keys := reopened.Completed(); len(keys) != 1 || keys[0] != j.Key() {
		t.Fatalf("Completed() = %v, want [%s]", keys, j.Key())
	}
}

func TestStoreCorruptionIsAMiss(t *testing.T) {
	j := Job{Bench: "ocean", Kind: "sp", RunConfig: runcfg.RunConfig{Threads: 16, Scale: 0.25, Seed: 42}}
	cases := map[string]func(t *testing.T, dir string){
		"truncated": func(t *testing.T, dir string) {
			path := filepath.Join(dir, j.Digest()+".json")
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, b[:len(b)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		},
		"bitflip": func(t *testing.T, dir string) {
			path := filepath.Join(dir, j.Digest()+".json")
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			b[len(b)/2] ^= 0xff
			if err := os.WriteFile(path, b, 0o644); err != nil {
				t.Fatal(err)
			}
		},
		"deleted": func(t *testing.T, dir string) {
			if err := os.Remove(filepath.Join(dir, j.Digest()+".json")); err != nil {
				t.Fatal(err)
			}
		},
	}
	for name, corrupt := range cases {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			store, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			if err := store.Put(j, fakeResult(j)); err != nil {
				t.Fatal(err)
			}
			corrupt(t, dir)
			reopened, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			if _, ok := reopened.Lookup(j); ok {
				t.Fatal("corrupted artifact reported as a hit")
			}
			// The engine recomputes and re-checkpoints transparently.
			rep := Run(context.Background(), []Job{j}, fakeRun, Options{Workers: 1, Store: reopened})
			if rep.Executed != 1 || rep.Failed != 0 {
				t.Fatalf("recompute after corruption: executed=%d failed=%d", rep.Executed, rep.Failed)
			}
			if _, ok := reopened.Lookup(j); !ok {
				t.Fatal("recomputed artifact not re-checkpointed")
			}
		})
	}
}

func TestStoreForeignManifestDiscarded(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte(`{"version": 99, "jobs": {"x": {}}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	store, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := store.Completed(); len(got) != 0 {
		t.Fatalf("foreign-version manifest not discarded: %v", got)
	}
}

func TestStoreConcurrentPut(t *testing.T) {
	dir := t.TempDir()
	store, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	jobs := testMatrix().Jobs()
	var wg sync.WaitGroup
	errs := make([]error, len(jobs))
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j Job) {
			defer wg.Done()
			errs[i] = store.Put(j, fakeResult(j))
		}(i, j)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("concurrent Put %s: %v", jobs[i].Key(), err)
		}
	}
	if got := len(store.Completed()); got != len(jobs) {
		t.Fatalf("completed = %d, want %d", got, len(jobs))
	}
	for _, j := range jobs {
		if _, ok := store.Lookup(j); !ok {
			t.Fatalf("job %s missing after concurrent Put", j.Key())
		}
	}
}

// TestResumeRecomputesNothing is the resume acceptance criterion: after an
// interrupted sweep, resuming executes only the pending jobs, and a second
// resume executes zero.
func TestResumeRecomputesNothing(t *testing.T) {
	dir := t.TempDir()
	jobs := testMatrix().Jobs()

	var mu sync.Mutex
	execCount := make(map[string]int)

	// Phase 1: interrupt after 5 completions (cancel mid-sweep).
	ctx, cancel := context.WithCancel(context.Background())
	interrupting := func(j Job) (*sim.Result, error) {
		mu.Lock()
		execCount[j.Key()]++
		if len(execCount) == 5 {
			cancel()
		}
		mu.Unlock()
		return fakeResult(j), nil
	}
	store1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := store1.SetMatrix(testMatrix()); err != nil {
		t.Fatal(err)
	}
	rep1 := Run(ctx, jobs, interrupting, Options{Workers: 1, Store: store1})
	if rep1.Executed == 0 || rep1.Executed == len(jobs) {
		t.Fatalf("interrupt phase executed %d of %d; want a partial run", rep1.Executed, len(jobs))
	}
	// The checkpointed set is what resume must never recompute. (A job in
	// flight when the cancel landed may have run without being stored —
	// that one is legitimately re-executed.)
	completed := make(map[string]bool)
	for _, k := range store1.Completed() {
		completed[k] = true
	}
	if len(completed) == 0 || len(completed) == len(jobs) {
		t.Fatalf("checkpointed %d of %d; want a partial store", len(completed), len(jobs))
	}

	// Phase 2: resume with a fresh store handle (new process). Only
	// unstored jobs may execute.
	store2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	resume := func(j Job) (*sim.Result, error) {
		if completed[j.Key()] {
			t.Errorf("checkpointed job %s re-executed on resume", j.Key())
		}
		return fakeResult(j), nil
	}
	rep2 := Run(context.Background(), jobs, resume, Options{Workers: 2, Store: store2})
	if rep2.Failed != 0 {
		t.Fatalf("resume failed %d jobs", rep2.Failed)
	}
	if rep2.Cached != len(completed) {
		t.Fatalf("resume cached %d, want %d (checkpointed set)", rep2.Cached, len(completed))
	}
	if rep2.Executed != len(jobs)-len(completed) {
		t.Fatalf("resume executed %d, want %d", rep2.Executed, len(jobs)-len(completed))
	}

	// Phase 3: a second resume recomputes zero jobs.
	store3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rep3 := Run(context.Background(), jobs, func(j Job) (*sim.Result, error) {
		t.Errorf("job %s executed on fully-complete resume", j.Key())
		return fakeResult(j), nil
	}, Options{Workers: 4, Store: store3})
	if rep3.Executed != 0 || rep3.Cached != len(jobs) || rep3.Failed != 0 {
		t.Fatalf("full resume: executed=%d cached=%d failed=%d, want 0/%d/0",
			rep3.Executed, rep3.Cached, rep3.Failed, len(jobs))
	}

	// The merged output of the resumed run equals a from-scratch run: cache
	// recall is invisible in the report's renderings.
	var fresh, resumed bytes.Buffer
	if err := Run(context.Background(), jobs, fakeRun, Options{Workers: 1}).FormatJSON(&fresh); err != nil {
		t.Fatal(err)
	}
	if err := rep3.FormatJSON(&resumed); err != nil {
		t.Fatal(err)
	}
	if fresh.String() != resumed.String() {
		t.Fatal("resumed merged output differs from a from-scratch run")
	}
}
