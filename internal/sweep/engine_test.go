package sweep

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"spcoh/internal/event"
	"spcoh/internal/runcfg"
	"spcoh/internal/sim"
)

// fakeResult builds a deterministic synthetic result from a job spec.
func fakeResult(j Job) *sim.Result {
	r := &sim.Result{Benchmark: j.Bench, Predictor: j.Kind}
	r.Cycles = event.Time(1000 + 13*int64(len(j.Bench)) + 7*j.Seed)
	r.Nodes.Misses = uint64(100 + len(j.Kind))
	r.Nodes.Communicating = 40
	r.Nodes.NonCommunicating = r.Nodes.Misses - 40
	r.Net.Bytes = uint64(4096 * (j.Seed + 1))
	return r
}

func fakeRun(j Job) (*sim.Result, error) { return fakeResult(j), nil }

func testMatrix() Matrix {
	return Matrix{
		Benches: []string{"beta", "alpha", "gamma"},
		Kinds:   []string{"sp", "dir"},
		Seeds:   []int64{42, 7},
		Scales:  []float64{0.25},
		Threads: 16,
	}
}

func TestMatrixJobsSortedAndComplete(t *testing.T) {
	jobs := testMatrix().Jobs()
	if len(jobs) != 12 {
		t.Fatalf("jobs = %d, want 12", len(jobs))
	}
	for i := 1; i < len(jobs); i++ {
		if jobs[i-1].Key() >= jobs[i].Key() {
			t.Fatalf("jobs not strictly sorted: %q >= %q", jobs[i-1].Key(), jobs[i].Key())
		}
	}
	// Duplicate dimension values collapse.
	m := testMatrix()
	m.Seeds = []int64{42, 42}
	if got := len(m.Jobs()); got != 6 {
		t.Fatalf("duplicate seeds not collapsed: %d jobs, want 6", got)
	}
}

func TestMatrixDigestInvariantToSpelling(t *testing.T) {
	a := testMatrix()
	b := testMatrix()
	b.Benches = []string{"gamma", "beta", "alpha"} // same cells, different order
	if a.Digest() != b.Digest() {
		t.Fatal("matrix digest must depend on the cell set, not dimension order")
	}
	b.Seeds = []int64{42}
	if a.Digest() == b.Digest() {
		t.Fatal("different cell sets must have different digests")
	}
}

func TestJobDigestSensitivity(t *testing.T) {
	rc := func(threads int, scale float64, seed int64) runcfg.RunConfig {
		return runcfg.RunConfig{Threads: threads, Scale: scale, Seed: seed}
	}
	j := Job{Bench: "ocean", Kind: "sp", RunConfig: rc(16, 0.25, 42)}
	base := j.Digest()
	for name, mut := range map[string]Job{
		"bench":   {Bench: "fmm", Kind: "sp", RunConfig: rc(16, 0.25, 42)},
		"kind":    {Bench: "ocean", Kind: "dir", RunConfig: rc(16, 0.25, 42)},
		"threads": {Bench: "ocean", Kind: "sp", RunConfig: rc(8, 0.25, 42)},
		"scale":   {Bench: "ocean", Kind: "sp", RunConfig: rc(16, 0.5, 42)},
		"seed":    {Bench: "ocean", Kind: "sp", RunConfig: rc(16, 0.25, 43)},
	} {
		if mut.Digest() == base {
			t.Errorf("changing %s did not change the digest", name)
		}
	}
}

// TestMergeDeterminism: the merged output of an N-worker run is
// byte-identical to a single-worker run, for every renderer.
func TestMergeDeterminism(t *testing.T) {
	jobs := testMatrix().Jobs()
	render := func(workers int) (string, string, string) {
		rep := Run(context.Background(), jobs, fakeRun, Options{Workers: workers})
		var tab, csv, js bytes.Buffer
		rep.FormatTable(&tab)
		if err := rep.FormatCSV(&csv); err != nil {
			t.Fatal(err)
		}
		if err := rep.FormatJSON(&js); err != nil {
			t.Fatal(err)
		}
		return tab.String(), csv.String(), js.String()
	}
	tab1, csv1, js1 := render(1)
	for _, workers := range []int{2, 4, 8} {
		tabN, csvN, jsN := render(workers)
		if tabN != tab1 {
			t.Fatalf("table output differs between 1 and %d workers:\n%s\n---\n%s", workers, tab1, tabN)
		}
		if csvN != csv1 {
			t.Fatalf("csv output differs between 1 and %d workers", workers)
		}
		if jsN != js1 {
			t.Fatalf("json output differs between 1 and %d workers", workers)
		}
	}
}

// TestReportOrderUnderAdversarialScheduling: jobs finishing in reverse
// order still merge in key order.
func TestReportOrderUnderAdversarialScheduling(t *testing.T) {
	jobs := testMatrix().Jobs()
	var mu sync.Mutex
	launched := 0
	slow := func(j Job) (*sim.Result, error) {
		mu.Lock()
		launched++
		delay := time.Duration(len(jobs)-launched) * time.Millisecond
		mu.Unlock()
		time.Sleep(delay) // earlier-launched (lower-key) jobs finish later
		return fakeResult(j), nil
	}
	rep := Run(context.Background(), jobs, slow, Options{Workers: len(jobs)})
	for i, jr := range rep.Jobs {
		if jr.Job.Key() != jobs[i].Key() {
			t.Fatalf("report slot %d = %s, want %s (completion order leaked)", i, jr.Job.Key(), jobs[i].Key())
		}
	}
}

func TestPanicRecovery(t *testing.T) {
	jobs := testMatrix().Jobs()
	bomb := jobs[3].Key()
	run := func(j Job) (*sim.Result, error) {
		if j.Key() == bomb {
			panic("boom")
		}
		return fakeResult(j), nil
	}
	rep := Run(context.Background(), jobs, run, Options{Workers: 4})
	if rep.Failed != 1 || rep.Executed != len(jobs)-1 {
		t.Fatalf("failed=%d executed=%d, want 1/%d", rep.Failed, rep.Executed, len(jobs)-1)
	}
	for _, jr := range rep.Jobs {
		if jr.Job.Key() == bomb {
			if jr.Err == nil || !strings.Contains(jr.Err.Error(), "boom") {
				t.Fatalf("panic not converted to error: %v", jr.Err)
			}
		} else if jr.Err != nil {
			t.Fatalf("innocent job %s failed: %v", jr.Job.Key(), jr.Err)
		}
	}
}

func TestTimeoutAndRetry(t *testing.T) {
	jobs := []Job{{Bench: "hang", Kind: "sp", RunConfig: runcfg.RunConfig{Threads: 16, Scale: 1, Seed: 1}}}
	hang := func(Job) (*sim.Result, error) {
		time.Sleep(5 * time.Second)
		return nil, nil
	}
	start := time.Now()
	rep := Run(context.Background(), jobs, hang, Options{Workers: 1, Timeout: 30 * time.Millisecond, Retries: 1})
	if rep.Failed != 1 {
		t.Fatalf("failed = %d, want 1", rep.Failed)
	}
	jr := rep.Jobs[0]
	if jr.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (1 + 1 retry)", jr.Attempts)
	}
	if jr.Err == nil || !strings.Contains(jr.Err.Error(), "timed out") {
		t.Fatalf("err = %v, want timeout", jr.Err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("timeout did not bound the run: %s", elapsed)
	}
}

func TestRetryEventuallySucceeds(t *testing.T) {
	jobs := testMatrix().Jobs()[:3]
	var mu sync.Mutex
	tries := make(map[string]int)
	flaky := func(j Job) (*sim.Result, error) {
		mu.Lock()
		tries[j.Key()]++
		n := tries[j.Key()]
		mu.Unlock()
		if n == 1 {
			return nil, errors.New("transient")
		}
		return fakeResult(j), nil
	}
	rep := Run(context.Background(), jobs, flaky, Options{Workers: 2, Retries: 2})
	if rep.Failed != 0 || rep.Executed != len(jobs) {
		t.Fatalf("failed=%d executed=%d, want 0/%d", rep.Failed, rep.Executed, len(jobs))
	}
	for _, jr := range rep.Jobs {
		if jr.Attempts != 2 {
			t.Fatalf("%s attempts = %d, want 2", jr.Job.Key(), jr.Attempts)
		}
	}
}

func TestRetriesAreBounded(t *testing.T) {
	jobs := testMatrix().Jobs()[:1]
	calls := 0
	var mu sync.Mutex
	alwaysFail := func(Job) (*sim.Result, error) {
		mu.Lock()
		calls++
		mu.Unlock()
		return nil, errors.New("permanent")
	}
	rep := Run(context.Background(), jobs, alwaysFail, Options{Workers: 1, Retries: 3})
	if calls != 4 {
		t.Fatalf("executor called %d times, want 4 (1 + 3 retries)", calls)
	}
	if rep.Failed != 1 || !strings.Contains(rep.Jobs[0].Err.Error(), "permanent") {
		t.Fatalf("want permanent failure, got %v", rep.Jobs[0].Err)
	}
}

func TestContextCancelMarksPendingJobs(t *testing.T) {
	jobs := testMatrix().Jobs()
	ctx, cancel := context.WithCancel(context.Background())
	var mu sync.Mutex
	started := 0
	run := func(j Job) (*sim.Result, error) {
		mu.Lock()
		started++
		if started == 3 {
			cancel()
		}
		mu.Unlock()
		return fakeResult(j), nil
	}
	rep := Run(ctx, jobs, run, Options{Workers: 1})
	if rep.Failed == 0 {
		t.Fatal("cancellation produced no failed jobs")
	}
	for _, jr := range rep.Jobs {
		if jr.Err == nil {
			continue
		}
		if !errors.Is(jr.Err, context.Canceled) {
			t.Fatalf("%s failed with non-cancellation error: %v", jr.Job.Key(), jr.Err)
		}
		// A job may have been in flight when cancellation landed
		// (Attempts == 1); jobs never started must report zero attempts.
		if jr.Attempts > 1 {
			t.Fatalf("%s retried across cancellation (%d attempts)", jr.Job.Key(), jr.Attempts)
		}
	}
	if rep.Executed+rep.Failed != len(jobs) {
		t.Fatalf("executed=%d + failed=%d != %d jobs", rep.Executed, rep.Failed, len(jobs))
	}
	if rep.Executed < 2 {
		t.Fatalf("executed=%d, want >= 2 completions before the cancel", rep.Executed)
	}
}

func TestProgressSeesEveryJob(t *testing.T) {
	jobs := testMatrix().Jobs()
	seen := make(map[string]int)
	rep := Run(context.Background(), jobs, fakeRun, Options{
		Workers:  4,
		Progress: func(jr JobResult) { seen[jr.Job.Key()]++ }, // serialized by the engine
	})
	if len(seen) != len(jobs) {
		t.Fatalf("progress saw %d jobs, want %d", len(seen), len(jobs))
	}
	for k, n := range seen {
		if n != 1 {
			t.Fatalf("job %s reported %d times", k, n)
		}
	}
	if rep.Executed != len(jobs) {
		t.Fatalf("executed = %d, want %d", rep.Executed, len(jobs))
	}
}

// TestSummaryCounts: the side-band summary carries scheduling detail the
// merged output omits.
func TestSummaryCounts(t *testing.T) {
	m := testMatrix()
	jobs := m.Jobs()
	rep := Run(context.Background(), jobs, fakeRun, Options{Workers: 2})
	s := rep.Summarize(m, 2)
	if s.Jobs != len(jobs) || s.Executed != len(jobs) || s.Cached != 0 || s.Failed != 0 {
		t.Fatalf("summary counts wrong: %+v", s)
	}
	if s.Workers != 2 || s.MatrixDigest != m.Digest() {
		t.Fatalf("summary metadata wrong: %+v", s)
	}
	if len(s.PerJob) != len(jobs) {
		t.Fatalf("per-job timings = %d, want %d", len(s.PerJob), len(jobs))
	}
	for i := 1; i < len(s.PerJob); i++ {
		if s.PerJob[i-1].Key >= s.PerJob[i].Key {
			t.Fatal("summary per-job records not in key order")
		}
	}
}

func TestFormatJSONOmitsSchedulingState(t *testing.T) {
	jobs := testMatrix().Jobs()[:2]
	rep := Run(context.Background(), jobs, fakeRun, Options{Workers: 2})
	var buf bytes.Buffer
	if err := rep.FormatJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, banned := range []string{"wall", "seconds", "attempts", "cached"} {
		if strings.Contains(strings.ToLower(out), banned) {
			t.Fatalf("merged JSON leaks scheduling state %q:\n%s", banned, out)
		}
	}
}

func TestEngineDefaultsWorkers(t *testing.T) {
	// Workers <= 0 must still complete (defaults to NumCPU).
	jobs := testMatrix().Jobs()[:2]
	rep := Run(context.Background(), jobs, fakeRun, Options{})
	if rep.Executed != 2 {
		t.Fatalf("executed = %d, want 2", rep.Executed)
	}
	_ = fmt.Sprintf // keep fmt referenced if assertions change
}
