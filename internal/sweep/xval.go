package sweep

// Cross-validation of the two simulation fidelities (DESIGN.md §15): the
// same matrix is swept once in detailed mode and once in fast mode, and
// this file pairs the two reports cell by cell into a divergence report —
// how far the fast functional model's timing drifts from the cycle-level
// model, and whether the quantities fast mode promises to keep exact
// (miss decomposition, prediction outcomes, injected traffic) actually
// stayed exact. Cells whose divergence exceeds a threshold are listed for
// detailed-mode escalation: fast-mode numbers for those cells should not
// be cited without a detailed rerun.
//
// Everything here derives from deterministic simulation results, so the
// report (minus the optional wall-clock Timing section) is byte-identical
// for any worker count or execution order.

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"text/tabwriter"

	"spcoh/internal/sim"
)

// XvalCell compares one matrix cell across the two fidelities. The ratio
// and delta fields use the conventions: CyclesRatio = fast/detailed (1.0
// = perfect timing agreement), AccuracyDelta = fast − detailed (absolute,
// in fraction-of-communicating-misses), TrafficDelta = (fast −
// detailed)/detailed (relative injected bytes).
type XvalCell struct {
	Key   string  `json:"key"` // the detailed job's key
	Bench string  `json:"bench"`
	Kind  string  `json:"kind"`
	Scale float64 `json:"scale"`
	Seed  int64   `json:"seed"`

	CyclesDetailed uint64  `json:"cycles_detailed"`
	CyclesFast     uint64  `json:"cycles_fast"`
	CyclesRatio    float64 `json:"cycles_ratio"`

	MissesDetailed uint64 `json:"misses_detailed"`
	MissesFast     uint64 `json:"misses_fast"`

	AccuracyDetailed float64 `json:"accuracy_detailed"`
	AccuracyFast     float64 `json:"accuracy_fast"`
	AccuracyDelta    float64 `json:"accuracy_delta"`

	BytesDetailed uint64  `json:"net_bytes_detailed"`
	BytesFast     uint64  `json:"net_bytes_fast"`
	TrafficDelta  float64 `json:"traffic_delta"`

	// CountsExact reports whether the count quantities fast mode aims to
	// preserve (misses, communicating misses, predictions issued/correct,
	// snoop lookups, injected packets) matched the detailed run exactly.
	// Benchmarks whose interleaving is timing-sensitive (lock hand-off
	// order) may drift by a fraction of a percent; the per-field numbers
	// above quantify it.
	CountsExact bool `json:"counts_exact"`

	// Escalate marks the cell as exceeding the divergence threshold (or
	// having failed in either mode): cite detailed-mode numbers only.
	Escalate bool `json:"escalate"`

	ErrDetailed string `json:"error_detailed,omitempty"`
	ErrFast     string `json:"error_fast,omitempty"`
}

// XvalTiming is the machine-dependent wall-clock section: how long each
// fidelity took over the cells both modes actually executed this run
// (cached recalls carry no meaningful wall time). It is excluded from the
// report's determinism guarantee.
type XvalTiming struct {
	DetailedSeconds float64 `json:"detailed_seconds"`
	FastSeconds     float64 `json:"fast_seconds"`
	// Speedup is DetailedSeconds/FastSeconds; 0 when no pair executed.
	Speedup       float64 `json:"speedup"`
	ExecutedPairs int     `json:"executed_pairs"`
}

// XvalEscalationRun is the detailed-mode rerun of one escalated cell
// (`spsweep xval -escalate`): the authoritative numbers to cite in place
// of that cell's fast-mode results.
type XvalEscalationRun struct {
	Key            string  `json:"key"`
	Cycles         uint64  `json:"cycles"`
	Misses         uint64  `json:"misses"`
	Accuracy       float64 `json:"accuracy"`
	AvgMissLatency float64 `json:"avg_miss_latency"`
	NetBytes       uint64  `json:"net_bytes"`
	Err            string  `json:"error,omitempty"`
}

// XvalReport is the full cross-validation report, serialized to
// results/BENCH_xval.json by `spsweep xval`.
type XvalReport struct {
	// Matrix is the detailed-mode matrix digest (the fast sweep is the
	// same matrix with Mode="fast").
	Matrix      string      `json:"matrix"`
	Threshold   float64     `json:"threshold"`
	Cells       []XvalCell  `json:"cells"`
	Escalations []string    `json:"escalations"`
	Timing      *XvalTiming `json:"timing,omitempty"`

	// EscalationRuns carries the detailed-mode rerun of every escalated
	// cell when the xval was invoked with -escalate; omitted otherwise, so
	// pre-escalation report bytes are unchanged.
	EscalationRuns []XvalEscalationRun `json:"escalation_runs,omitempty"`
}

// FoldEscalations attaches the detailed-mode escalation rerun to the
// report. esc's jobs are the escalated cells in key order, so the folded
// section is as deterministic as the rest of the report.
func (r *XvalReport) FoldEscalations(esc *Report) {
	for i := range esc.Jobs {
		jr := &esc.Jobs[i]
		run := XvalEscalationRun{Key: jr.Job.Key()}
		switch {
		case jr.Err != nil:
			run.Err = jr.Err.Error()
		case jr.Result != nil:
			run.Cycles = uint64(jr.Result.Cycles)
			run.Misses = jr.Result.Misses()
			run.Accuracy = jr.Result.Nodes.Accuracy()
			run.AvgMissLatency = jr.Result.AvgMissLatency()
			run.NetBytes = jr.Result.Net.Bytes
		}
		r.EscalationRuns = append(r.EscalationRuns, run)
	}
}

// Xval pairs a detailed-mode report with the fast-mode report of the same
// matrix and computes the per-cell divergence. Jobs are paired by key
// (the fast job's key is the detailed key + "/fast"); both reports are
// already in key order, so the output is deterministic. threshold is the
// relative divergence above which a cell is marked for escalation.
func Xval(detailed, fast *Report, threshold float64) *XvalReport {
	byKey := make(map[string]*JobResult, len(fast.Jobs))
	for i := range fast.Jobs {
		byKey[fast.Jobs[i].Job.Key()] = &fast.Jobs[i]
	}
	rep := &XvalReport{Threshold: threshold, Cells: []XvalCell{}, Escalations: []string{}}
	for i := range detailed.Jobs {
		d := &detailed.Jobs[i]
		f, ok := byKey[d.Job.Key()+"/fast"]
		if !ok {
			// A fast job can only be missing if the caller paired mismatched
			// matrices; surface it as a failed cell rather than dropping it.
			f = &JobResult{Err: fmt.Errorf("no fast-mode counterpart for %s", d.Job.Key())}
		}
		c := xvalCell(d, f, threshold)
		rep.Cells = append(rep.Cells, c)
		if c.Escalate {
			rep.Escalations = append(rep.Escalations, c.Key)
		}
	}
	return rep
}

func xvalCell(d, f *JobResult, threshold float64) XvalCell {
	c := XvalCell{
		Key:   d.Job.Key(),
		Bench: d.Job.Bench,
		Kind:  d.Job.Kind,
		Scale: d.Job.Scale,
		Seed:  d.Job.Seed,
	}
	if d.Err != nil {
		c.ErrDetailed = d.Err.Error()
	}
	if f.Err != nil {
		c.ErrFast = f.Err.Error()
	}
	if d.Err != nil || f.Err != nil || d.Result == nil || f.Result == nil {
		c.Escalate = true
		return c
	}
	dr, fr := d.Result, f.Result
	c.CyclesDetailed = uint64(dr.Cycles)
	c.CyclesFast = uint64(fr.Cycles)
	if c.CyclesDetailed > 0 {
		c.CyclesRatio = float64(c.CyclesFast) / float64(c.CyclesDetailed)
	}
	// Broadcast runs keep their counts in the snoop block; directory runs
	// in the node block. Misses and traffic are comparable either way;
	// accuracy is a directory-predictor quantity (0 for dir/bcast).
	if dr.Protocol == sim.Broadcast {
		c.MissesDetailed, c.MissesFast = dr.Snoop.Misses, fr.Snoop.Misses
		// MissLatencySum is a timing quantity, not a count: exclude it.
		c.CountsExact = dr.Snoop.Misses == fr.Snoop.Misses &&
			dr.Snoop.Communicating == fr.Snoop.Communicating &&
			dr.Snoop.SnoopLookups == fr.Snoop.SnoopLookups &&
			dr.Snoop.Writebacks == fr.Snoop.Writebacks &&
			dr.Net.Packets == fr.Net.Packets
	} else {
		c.MissesDetailed, c.MissesFast = dr.Nodes.Misses, fr.Nodes.Misses
		c.AccuracyDetailed = dr.Nodes.Accuracy()
		c.AccuracyFast = fr.Nodes.Accuracy()
		c.AccuracyDelta = c.AccuracyFast - c.AccuracyDetailed
		c.CountsExact = dr.Nodes.Misses == fr.Nodes.Misses &&
			dr.Nodes.Communicating == fr.Nodes.Communicating &&
			dr.Nodes.Predicted == fr.Nodes.Predicted &&
			dr.Nodes.PredCorrect == fr.Nodes.PredCorrect &&
			dr.Nodes.SnoopLookups == fr.Nodes.SnoopLookups &&
			dr.Net.Packets == fr.Net.Packets
	}
	c.BytesDetailed, c.BytesFast = dr.Net.Bytes, fr.Net.Bytes
	if c.BytesDetailed > 0 {
		c.TrafficDelta = (float64(c.BytesFast) - float64(c.BytesDetailed)) / float64(c.BytesDetailed)
	}
	c.Escalate = math.Abs(c.CyclesRatio-1) > threshold ||
		math.Abs(c.AccuracyDelta) > threshold ||
		math.Abs(c.TrafficDelta) > threshold
	return c
}

// XvalTimingFrom sums the wall times of cells both modes executed (not
// recalled from the store) in this run. Returns nil when no pair
// executed — a fully cached rerun has no timing signal.
func XvalTimingFrom(detailed, fast *Report) *XvalTiming {
	byKey := make(map[string]*JobResult, len(fast.Jobs))
	for i := range fast.Jobs {
		byKey[fast.Jobs[i].Job.Key()] = &fast.Jobs[i]
	}
	t := &XvalTiming{}
	for i := range detailed.Jobs {
		d := &detailed.Jobs[i]
		f, ok := byKey[d.Job.Key()+"/fast"]
		if !ok || d.Err != nil || f.Err != nil || d.Cached || f.Cached {
			continue
		}
		t.DetailedSeconds += d.Wall.Seconds()
		t.FastSeconds += f.Wall.Seconds()
		t.ExecutedPairs++
	}
	if t.ExecutedPairs == 0 {
		return nil
	}
	if t.FastSeconds > 0 {
		t.Speedup = t.DetailedSeconds / t.FastSeconds
	}
	return t
}

// FormatJSON writes the report as indented JSON.
func (r *XvalReport) FormatJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// FormatTable writes the human-readable divergence table.
func (r *XvalReport) FormatTable(w io.Writer) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "CELL\tCYC-RATIO\tACC-DELTA\tTRAFFIC\tCOUNTS\tVERDICT")
	for _, c := range r.Cells {
		if c.ErrDetailed != "" || c.ErrFast != "" {
			fmt.Fprintf(tw, "%s\t-\t-\t-\t-\tFAILED\n", c.Key)
			continue
		}
		counts := "exact"
		if !c.CountsExact {
			counts = "drift"
		}
		verdict := "ok"
		if c.Escalate {
			verdict = "ESCALATE"
		}
		fmt.Fprintf(tw, "%s\t%.4f\t%+.4f\t%+.4f\t%s\t%s\n",
			c.Key, c.CyclesRatio, c.AccuracyDelta, c.TrafficDelta, counts, verdict)
	}
	tw.Flush()
	fmt.Fprintf(w, "cells: %d, escalations: %d (threshold %g)\n",
		len(r.Cells), len(r.Escalations), r.Threshold)
	if len(r.EscalationRuns) > 0 {
		fmt.Fprintln(w, "escalation reruns (detailed mode — cite these for escalated cells):")
		tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "CELL\tCYCLES\tMISSES\tACC\tMISSLAT\tNETKB")
		for _, e := range r.EscalationRuns {
			if e.Err != "" {
				fmt.Fprintf(tw, "%s\t-\t-\t-\t-\tFAILED: %s\n", e.Key, e.Err)
				continue
			}
			fmt.Fprintf(tw, "%s\t%d\t%d\t%.4f\t%.1f\t%d\n",
				e.Key, e.Cycles, e.Misses, e.Accuracy, e.AvgMissLatency, e.NetBytes/1024)
		}
		tw.Flush()
	}
	if r.Timing != nil {
		fmt.Fprintf(w, "timing: detailed %.1fs, fast %.1fs, speedup %.2fx over %d executed pairs\n",
			r.Timing.DetailedSeconds, r.Timing.FastSeconds, r.Timing.Speedup, r.Timing.ExecutedPairs)
	}
}
