package sweep_test

import (
	"bytes"
	"context"
	"testing"

	"spcoh/internal/sweep"
)

// xvalReport runs the two fidelity passes of a small matrix on the given
// worker count and renders the divergence report (timing omitted — it is
// the one machine-dependent section).
func xvalReport(t *testing.T, m sweep.Matrix, workers int) string {
	t.Helper()
	det := sweep.Run(context.Background(), m.Jobs(), realCell, sweep.Options{Workers: workers})
	fastM := m
	fastM.Mode = "fast"
	fast := sweep.Run(context.Background(), fastM.Jobs(), realCell, sweep.Options{Workers: workers})
	if det.Failed+fast.Failed != 0 {
		t.Fatalf("%d cell(s) failed", det.Failed+fast.Failed)
	}
	rep := sweep.Xval(det, fast, 0.05)
	rep.Matrix = m.Digest()
	var buf bytes.Buffer
	if err := rep.FormatJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestXvalDeterminism: the divergence report must be byte-identical for
// any worker count — it derives only from deterministic simulation
// results and key-ordered pairing.
func TestXvalDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations; skipped with -short")
	}
	m := sweep.Matrix{
		Benches: []string{"ocean", "x264"},
		Kinds:   []string{"sp", "bcast"},
		Seeds:   []int64{42},
		Scales:  []float64{0.05},
		Threads: 16,
	}
	serial := xvalReport(t, m, 1)
	parallel := xvalReport(t, m, 4)
	if serial != parallel {
		t.Fatalf("xval report differs between -jobs 1 and -jobs 4:\n%s\nvs\n%s", serial, parallel)
	}
}

// TestXvalPairing: cells pair by key, fast jobs carry the /fast suffix,
// and a count-exact cell within the threshold is not escalated while a
// missing counterpart is.
func TestXvalPairing(t *testing.T) {
	m := sweep.Matrix{
		Benches: []string{"ocean"},
		Kinds:   []string{"sp"},
		Seeds:   []int64{42},
		Scales:  []float64{0.05},
		Threads: 16,
	}
	det := sweep.Run(context.Background(), m.Jobs(), realCell, sweep.Options{Workers: 1})
	fastM := m
	fastM.Mode = "fast"
	fast := sweep.Run(context.Background(), fastM.Jobs(), realCell, sweep.Options{Workers: 1})
	rep := sweep.Xval(det, fast, 0.25)
	if len(rep.Cells) != 1 {
		t.Fatalf("want 1 cell, got %d", len(rep.Cells))
	}
	c := rep.Cells[0]
	if c.Key != "ocean/sp/t16/x0.05/s42" {
		t.Errorf("cell key = %q", c.Key)
	}
	if !c.CountsExact {
		t.Errorf("ocean/sp should be count-exact (misses %d vs %d)", c.MissesDetailed, c.MissesFast)
	}
	if c.Escalate {
		t.Errorf("ocean/sp escalated: ratio %g, acc delta %g, traffic %g", c.CyclesRatio, c.AccuracyDelta, c.TrafficDelta)
	}
	if c.CyclesRatio == 1 || c.CyclesRatio == 0 {
		t.Errorf("cycles ratio %g: fast timing should differ from detailed but be nonzero", c.CyclesRatio)
	}

	// Pairing against an empty fast report marks every cell failed.
	orphan := sweep.Xval(det, &sweep.Report{}, 0.25)
	if !orphan.Cells[0].Escalate || orphan.Cells[0].ErrFast == "" {
		t.Errorf("unpaired cell not escalated: %+v", orphan.Cells[0])
	}
}

// TestXvalEscalationFold: -escalate's fold step attaches the detailed
// rerun numbers under escalation_runs (in the rerun's key order, errors
// carried through), renders the reruns section in the table, and leaves
// a report without escalations byte-free of the section — so the
// pre-escalation JSON shape is unchanged.
func TestXvalEscalationFold(t *testing.T) {
	m := sweep.Matrix{
		Benches: []string{"ocean"},
		Kinds:   []string{"sp"},
		Seeds:   []int64{42},
		Scales:  []float64{0.05},
		Threads: 16,
	}
	det := sweep.Run(context.Background(), m.Jobs(), realCell, sweep.Options{Workers: 1})

	// Without escalations, the JSON must not mention the section at all.
	clean := sweep.Xval(det, det, 0.25) // det vs det: zero divergence... except /fast pairing
	var buf bytes.Buffer
	if err := clean.FormatJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), []byte("escalation_runs")) {
		t.Errorf("escalation_runs present in a report that was never folded:\n%s", buf.String())
	}

	rep := sweep.Xval(det, det, 0.25)
	rep.FoldEscalations(det)
	if len(rep.EscalationRuns) != len(det.Jobs) {
		t.Fatalf("folded %d runs, want %d", len(rep.EscalationRuns), len(det.Jobs))
	}
	run := rep.EscalationRuns[0]
	res := det.Jobs[0].Result
	if run.Key != det.Jobs[0].Job.Key() {
		t.Errorf("run key = %q, want %q", run.Key, det.Jobs[0].Job.Key())
	}
	if run.Cycles != uint64(res.Cycles) || run.Misses != res.Misses() || run.NetBytes != res.Net.Bytes {
		t.Errorf("folded numbers diverge from the rerun result: %+v", run)
	}
	buf.Reset()
	rep.FormatTable(&buf)
	if !bytes.Contains(buf.Bytes(), []byte("escalation reruns")) {
		t.Errorf("table missing the escalation reruns section:\n%s", buf.String())
	}
	buf.Reset()
	if err := rep.FormatJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"escalation_runs"`)) {
		t.Errorf("JSON missing escalation_runs after folding:\n%s", buf.String())
	}

	// A failed rerun is carried as its error string, not dropped.
	failed := &sweep.Report{Jobs: []sweep.JobResult{{Job: det.Jobs[0].Job, Err: context.DeadlineExceeded}}}
	rep2 := sweep.Xval(det, det, 0.25)
	rep2.FoldEscalations(failed)
	if len(rep2.EscalationRuns) != 1 || rep2.EscalationRuns[0].Err == "" {
		t.Errorf("failed rerun not folded with its error: %+v", rep2.EscalationRuns)
	}
}
