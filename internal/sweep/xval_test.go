package sweep_test

import (
	"bytes"
	"context"
	"testing"

	"spcoh/internal/sweep"
)

// xvalReport runs the two fidelity passes of a small matrix on the given
// worker count and renders the divergence report (timing omitted — it is
// the one machine-dependent section).
func xvalReport(t *testing.T, m sweep.Matrix, workers int) string {
	t.Helper()
	det := sweep.Run(context.Background(), m.Jobs(), realCell, sweep.Options{Workers: workers})
	fastM := m
	fastM.Mode = "fast"
	fast := sweep.Run(context.Background(), fastM.Jobs(), realCell, sweep.Options{Workers: workers})
	if det.Failed+fast.Failed != 0 {
		t.Fatalf("%d cell(s) failed", det.Failed+fast.Failed)
	}
	rep := sweep.Xval(det, fast, 0.05)
	rep.Matrix = m.Digest()
	var buf bytes.Buffer
	if err := rep.FormatJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestXvalDeterminism: the divergence report must be byte-identical for
// any worker count — it derives only from deterministic simulation
// results and key-ordered pairing.
func TestXvalDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations; skipped with -short")
	}
	m := sweep.Matrix{
		Benches: []string{"ocean", "x264"},
		Kinds:   []string{"sp", "bcast"},
		Seeds:   []int64{42},
		Scales:  []float64{0.05},
		Threads: 16,
	}
	serial := xvalReport(t, m, 1)
	parallel := xvalReport(t, m, 4)
	if serial != parallel {
		t.Fatalf("xval report differs between -jobs 1 and -jobs 4:\n%s\nvs\n%s", serial, parallel)
	}
}

// TestXvalPairing: cells pair by key, fast jobs carry the /fast suffix,
// and a count-exact cell within the threshold is not escalated while a
// missing counterpart is.
func TestXvalPairing(t *testing.T) {
	m := sweep.Matrix{
		Benches: []string{"ocean"},
		Kinds:   []string{"sp"},
		Seeds:   []int64{42},
		Scales:  []float64{0.05},
		Threads: 16,
	}
	det := sweep.Run(context.Background(), m.Jobs(), realCell, sweep.Options{Workers: 1})
	fastM := m
	fastM.Mode = "fast"
	fast := sweep.Run(context.Background(), fastM.Jobs(), realCell, sweep.Options{Workers: 1})
	rep := sweep.Xval(det, fast, 0.25)
	if len(rep.Cells) != 1 {
		t.Fatalf("want 1 cell, got %d", len(rep.Cells))
	}
	c := rep.Cells[0]
	if c.Key != "ocean/sp/t16/x0.05/s42" {
		t.Errorf("cell key = %q", c.Key)
	}
	if !c.CountsExact {
		t.Errorf("ocean/sp should be count-exact (misses %d vs %d)", c.MissesDetailed, c.MissesFast)
	}
	if c.Escalate {
		t.Errorf("ocean/sp escalated: ratio %g, acc delta %g, traffic %g", c.CyclesRatio, c.AccuracyDelta, c.TrafficDelta)
	}
	if c.CyclesRatio == 1 || c.CyclesRatio == 0 {
		t.Errorf("cycles ratio %g: fast timing should differ from detailed but be nonzero", c.CyclesRatio)
	}

	// Pairing against an empty fast report marks every cell failed.
	orphan := sweep.Xval(det, &sweep.Report{}, 0.25)
	if !orphan.Cells[0].Escalate || orphan.Cells[0].ErrFast == "" {
		t.Errorf("unpaired cell not escalated: %+v", orphan.Cells[0])
	}
}
