package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"spcoh/internal/detutil"
	"spcoh/internal/sim"
)

// manifestName is the store's index file inside the store directory.
const manifestName = "manifest.json"

// manifestVersion guards the on-disk schema; a mismatch invalidates the
// whole store (cells are recomputed, never misread).
const manifestVersion = 1

// Store is the resumable artifact store of a sweep. Layout:
//
//	<dir>/<digest>.json   one completed job: {job spec, result}
//	<dir>/manifest.json   index: job key → {digest, checksum, seed}
//
// Artifacts are addressed by Job.Digest (the hash of the job's canonical
// spec), so a resumed or re-issued sweep finds a finished cell without
// recomputing it; the manifest's checksum (SHA-256 of the artifact file
// bytes) detects torn or corrupted artifacts, which are silently treated
// as missing and recomputed. Writes are atomic (temp file + rename) and
// the manifest is re-persisted after every Put, so an interrupt at any
// point leaves a consistent store.
//
// A Store is safe for concurrent use by the engine's workers.
type Store struct {
	dir string

	mu  sync.Mutex
	man *Manifest
}

// Manifest indexes a store directory.
type Manifest struct {
	Version      int                      `json:"version"`
	MatrixDigest string                   `json:"matrix_digest,omitempty"`
	Matrix       *Matrix                  `json:"matrix,omitempty"`
	Jobs         map[string]ManifestEntry `json:"jobs"`

	// Sweeps registers every matrix submitted to a sweepd server sharing
	// this store, keyed by matrix digest. A restarted server re-adopts
	// them and resumes with zero recomputation. Additive: local
	// spsweep run/resume keep using the singular Matrix field.
	Sweeps map[string]*Matrix `json:"sweeps,omitempty"`

	// Failed is the failure ledger: job key → last error message for
	// cells whose final attempt cycle failed. A later successful Put
	// clears the key. spsweep status gates its exit code on this, so CI
	// can distinguish "interrupted" from "broken".
	Failed map[string]string `json:"failed,omitempty"`
}

// ManifestEntry records one completed job.
type ManifestEntry struct {
	Digest   string `json:"digest"`   // artifact address (= Job.Digest)
	Checksum string `json:"checksum"` // SHA-256 of the artifact file bytes
	Seed     int64  `json:"seed"`
}

// artifact is the on-disk payload of one completed job.
type artifact struct {
	Job    Job         `json:"job"`
	Result *sim.Result `json:"result"`
}

// Open opens (creating if necessary) the store at dir and loads its
// manifest. A manifest with an unknown schema version is discarded.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sweep: open store: %w", err)
	}
	s := &Store{dir: dir, man: &Manifest{Version: manifestVersion, Jobs: make(map[string]ManifestEntry)}}
	b, err := os.ReadFile(filepath.Join(dir, manifestName))
	if os.IsNotExist(err) {
		return s, nil
	}
	if err != nil {
		return nil, fmt.Errorf("sweep: read manifest: %w", err)
	}
	var man Manifest
	if err := json.Unmarshal(b, &man); err != nil || man.Version != manifestVersion {
		// Unreadable or foreign manifest: start fresh rather than trusting it.
		return s, nil
	}
	if man.Jobs == nil {
		man.Jobs = make(map[string]ManifestEntry)
	}
	s.man = &man
	return s, nil
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// HasManifestFile reports whether a manifest has ever been persisted — the
// distinction between "fresh directory" and "interrupted sweep" that the
// resume subcommand needs.
func (s *Store) HasManifestFile() bool {
	_, err := os.Stat(filepath.Join(s.dir, manifestName))
	return err == nil
}

// SetMatrix records the sweep's matrix in the manifest (run writes it so
// that resume and status can re-derive the job set with no flags).
func (s *Store) SetMatrix(m Matrix) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	mm := m
	s.man.Matrix = &mm
	s.man.MatrixDigest = m.Digest()
	return s.saveLocked()
}

// Matrix returns the recorded sweep matrix, if any.
func (s *Store) Matrix() (Matrix, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.man.Matrix == nil {
		return Matrix{}, false
	}
	return *s.man.Matrix, true
}

// Lookup returns the stored result for j, verifying the artifact against
// the manifest checksum. Any inconsistency — missing entry, digest
// mismatch after a spec change, unreadable file, checksum or decode
// failure — reports a miss, making corruption indistinguishable from
// "never computed".
func (s *Store) Lookup(j Job) (*sim.Result, bool) {
	s.mu.Lock()
	e, ok := s.man.Jobs[j.Key()]
	s.mu.Unlock()
	if !ok || e.Digest != j.Digest() {
		return nil, false
	}
	b, err := os.ReadFile(filepath.Join(s.dir, e.Digest+".json"))
	if err != nil || checksum(b) != e.Checksum {
		return nil, false
	}
	var a artifact
	if json.Unmarshal(b, &a) != nil || a.Result == nil || a.Job.Key() != j.Key() {
		return nil, false
	}
	return a.Result, true
}

// Put checkpoints one completed job: the artifact is written atomically,
// then the manifest is updated and re-persisted.
func (s *Store) Put(j Job, res *sim.Result) error {
	b, err := json.MarshalIndent(artifact{Job: j, Result: res}, "", "  ")
	if err != nil {
		return fmt.Errorf("sweep: encode artifact %s: %w", j.Key(), err)
	}
	digest := j.Digest()
	if err := atomicWrite(filepath.Join(s.dir, digest+".json"), b); err != nil {
		return fmt.Errorf("sweep: write artifact %s: %w", j.Key(), err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.man.Jobs[j.Key()] = ManifestEntry{Digest: digest, Checksum: checksum(b), Seed: j.Seed}
	delete(s.man.Failed, j.Key()) // success clears the failure ledger
	return s.saveLocked()
}

// MarkFailed records a job's terminal failure (all attempts exhausted) in
// the manifest's failure ledger. A later successful Put clears it.
func (s *Store) MarkFailed(j Job, msg string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.man.Failed == nil {
		s.man.Failed = make(map[string]string)
	}
	s.man.Failed[j.Key()] = msg
	return s.saveLocked()
}

// FailedCells returns a copy of the failure ledger: job key → last error.
func (s *Store) FailedCells() map[string]string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]string, len(s.man.Failed))
	for _, k := range detutil.SortedKeys(s.man.Failed) {
		out[k] = s.man.Failed[k]
	}
	return out
}

// AddSweep registers a sweepd-submitted matrix under its digest so a
// restarted server can re-adopt it. Registering the same matrix twice is
// a no-op.
func (s *Store) AddSweep(m Matrix) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.man.Sweeps == nil {
		s.man.Sweeps = make(map[string]*Matrix)
	}
	mm := m
	s.man.Sweeps[m.Digest()] = &mm
	return s.saveLocked()
}

// SweepIDs returns the registered sweep digests, sorted.
func (s *Store) SweepIDs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return detutil.SortedKeys(s.man.Sweeps)
}

// Sweep returns the matrix registered under id.
func (s *Store) Sweep(id string) (Matrix, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.man.Sweeps[id]
	if !ok {
		return Matrix{}, false
	}
	return *m, true
}

// Completed returns the keys of all checkpointed jobs, sorted.
func (s *Store) Completed() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return detutil.SortedKeys(s.man.Jobs)
}

// saveLocked persists the manifest; the caller holds s.mu.
func (s *Store) saveLocked() error {
	// Sorted-key map encoding is guaranteed by encoding/json.
	b, err := json.MarshalIndent(s.man, "", "  ")
	if err != nil {
		return fmt.Errorf("sweep: encode manifest: %w", err)
	}
	if err := atomicWrite(filepath.Join(s.dir, manifestName), b); err != nil {
		return fmt.Errorf("sweep: write manifest: %w", err)
	}
	return nil
}

// atomicWrite writes data to path via a temp file + rename so readers
// never observe a torn file.
func atomicWrite(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

func checksum(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}
