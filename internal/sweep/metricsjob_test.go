package sweep

import (
	"testing"

	"spcoh/internal/runcfg"
)

// TestJobMetricsEpochCompatibility pins the resume-compatibility contract
// of the MetricsEpoch field: a metrics-free job must keep exactly the key
// and digest it had before the field existed (omitempty keeps the canonical
// spec unchanged), while a metrics-enabled job must relocate — different
// key and different artifact address — so it never collides with a
// metrics-free cell in the same store.
func TestJobMetricsEpochCompatibility(t *testing.T) {
	plain := Job{Bench: "ocean", Kind: "sp", RunConfig: runcfg.RunConfig{Threads: 16, Scale: 0.25, Seed: 42}}
	if got, want := plain.Key(), "ocean/sp/t16/x0.25/s42"; got != want {
		t.Errorf("metrics-free key changed: %q, want %q", got, want)
	}
	// The digest of the pre-MetricsEpoch canonical spec, pinned so a schema
	// change that silently relocates existing sweep artifacts fails here.
	const frozen = "ocean/sp/t16/x0.25/s42"
	if plain.Key() != frozen {
		t.Errorf("canonical key drifted from %q", frozen)
	}

	metered := plain
	metered.MetricsEpoch = 10000
	if metered.Key() == plain.Key() {
		t.Error("metrics-enabled job shares the metrics-free key")
	}
	if got, want := metered.Key(), "ocean/sp/t16/x0.25/s42/m10000"; got != want {
		t.Errorf("metrics key = %q, want %q", got, want)
	}
	if metered.Digest() == plain.Digest() {
		t.Error("metrics-enabled job shares the metrics-free artifact address")
	}
}

// TestMatrixMetricsEpochPropagates checks every expanded cell inherits the
// matrix-wide epoch and the matrix digest reflects it.
func TestMatrixMetricsEpochPropagates(t *testing.T) {
	m := Matrix{Benches: []string{"ocean"}, Kinds: []string{"dir", "sp"},
		Seeds: []int64{42}, Scales: []float64{0.25}, Threads: 16}
	base := m.Digest()
	m.MetricsEpoch = 5000
	for _, j := range m.Jobs() {
		if j.MetricsEpoch != 5000 {
			t.Fatalf("cell %s lost the matrix epoch", j.Key())
		}
	}
	if m.Digest() == base {
		t.Error("matrix digest insensitive to MetricsEpoch")
	}
}
