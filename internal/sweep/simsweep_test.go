package sweep_test

import (
	"bytes"
	"context"
	"testing"

	"spcoh/internal/experiments"
	"spcoh/internal/sim"
	"spcoh/internal/sweep"
)

// realCell is the same executor spsweep uses in production: the job's
// embedded RunConfig (including Mode) flows through unconverted.
func realCell(j sweep.Job) (*sim.Result, error) {
	return experiments.RunCell(j.RunConfig, j.Bench, j.Kind)
}

// TestRealSimParallelDeterminism runs actual simulations on a small matrix
// and checks the parallel merged output is byte-identical to -jobs 1 —
// the sweep engine's core acceptance criterion, end to end.
func TestRealSimParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations; skipped with -short")
	}
	m := sweep.Matrix{
		Benches: []string{"streamcluster", "x264"},
		Kinds:   []string{"dir", "sp"},
		Seeds:   []int64{42},
		Scales:  []float64{0.05},
		Threads: 16,
	}
	jobs := m.Jobs()
	render := func(workers int, store *sweep.Store) (string, *sweep.Report) {
		rep := sweep.Run(context.Background(), jobs, realCell, sweep.Options{Workers: workers, Store: store})
		if rep.Failed != 0 {
			for _, jr := range rep.Jobs {
				if jr.Err != nil {
					t.Errorf("%s: %v", jr.Job.Key(), jr.Err)
				}
			}
			t.Fatalf("%d job(s) failed", rep.Failed)
		}
		var buf bytes.Buffer
		if err := rep.FormatJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String(), rep
	}
	serial, _ := render(1, nil)
	par, _ := render(4, nil)
	if serial != par {
		t.Fatal("4-worker merged output differs from 1-worker output")
	}

	// End-to-end store pass: a run that checkpoints, then a resume that
	// recalls everything, still renders the identical bytes.
	store, err := sweep.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	first, rep1 := render(2, store)
	if rep1.Executed != len(jobs) || rep1.Cached != 0 {
		t.Fatalf("first store pass: executed=%d cached=%d", rep1.Executed, rep1.Cached)
	}
	second, rep2 := render(3, store)
	if rep2.Executed != 0 || rep2.Cached != len(jobs) {
		t.Fatalf("resume pass recomputed: executed=%d cached=%d", rep2.Executed, rep2.Cached)
	}
	if first != serial || second != serial {
		t.Fatal("store-backed output differs from direct output")
	}
}
