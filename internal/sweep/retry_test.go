package sweep

import (
	"context"
	"errors"
	"testing"
	"time"

	"spcoh/internal/sim"
)

func TestRetryDelayPureAndBounded(t *testing.T) {
	const base = time.Second

	// Pure: the same inputs always produce the same delay.
	for _, key := range []string{"ocean/sp/t16/x0.25/s42", "fmm/dir/t16/x1/s7"} {
		for attempt := 2; attempt <= 6; attempt++ {
			a := RetryDelay(key, attempt, base, 99)
			b := RetryDelay(key, attempt, base, 99)
			if a != b {
				t.Fatalf("RetryDelay(%q, %d) not deterministic: %v vs %v", key, attempt, a, b)
			}
			// Bounded by the jitter envelope around base << (attempt-2).
			lo := time.Duration(float64(base<<(attempt-2)) * 0.5)
			hi := time.Duration(float64(base<<(attempt-2)) * 1.5)
			if a < lo || a >= hi {
				t.Fatalf("RetryDelay(%q, %d) = %v outside [%v, %v)", key, attempt, a, lo, hi)
			}
		}
	}

	// The first attempt and a zero base never wait.
	if d := RetryDelay("k", 1, base, 0); d != 0 {
		t.Fatalf("attempt 1 delayed %v", d)
	}
	if d := RetryDelay("k", 3, 0, 0); d != 0 {
		t.Fatalf("zero base delayed %v", d)
	}

	// Different seeds and different keys decorrelate the jitter (with the
	// same exponent the raw delay would otherwise collide).
	if RetryDelay("k", 2, base, 1) == RetryDelay("k", 2, base, 2) &&
		RetryDelay("k", 3, base, 1) == RetryDelay("k", 3, base, 2) {
		t.Fatal("seed does not influence the jitter")
	}
	if RetryDelay("a", 2, base, 0) == RetryDelay("b", 2, base, 0) &&
		RetryDelay("a", 3, base, 0) == RetryDelay("b", 3, base, 0) {
		t.Fatal("key does not influence the jitter")
	}

	// The exponent caps: absurd attempt numbers must not overflow.
	if d := RetryDelay("k", 1000, time.Millisecond, 0); d <= 0 || d > time.Duration(1)<<40 {
		t.Fatalf("capped delay out of range: %v", d)
	}
}

func TestExecutorAppliesBackoffBetweenAttempts(t *testing.T) {
	j := testMatrix().Jobs()[0]

	attempts := 0
	exec := &Executor{
		Run: func(Job) (*sim.Result, error) {
			attempts++
			if attempts < 3 {
				return nil, errors.New("transient")
			}
			return fakeResult(j), nil
		},
		Retries:     2,
		Backoff:     5 * time.Millisecond,
		BackoffSeed: 7,
	}
	start := time.Now()
	jr := exec.Do(context.Background(), j)
	if jr.Err != nil || jr.Attempts != 3 {
		t.Fatalf("executor: err=%v attempts=%d", jr.Err, jr.Attempts)
	}
	// Attempts 2 and 3 each waited RetryDelay(key, k, 5ms, 7).
	want := RetryDelay(j.Key(), 2, 5*time.Millisecond, 7) + RetryDelay(j.Key(), 3, 5*time.Millisecond, 7)
	if elapsed := time.Since(start); elapsed < want {
		t.Fatalf("executor waited %v, schedule demands at least %v", elapsed, want)
	}
}

func TestBackoffSleepIsInterruptible(t *testing.T) {
	j := testMatrix().Jobs()[0]
	exec := &Executor{
		Run:     func(Job) (*sim.Result, error) { return nil, errors.New("always") },
		Retries: 5,
		Backoff: time.Hour, // would sleep forever without cancellation
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan JobResult, 1)
	go func() { done <- exec.Do(ctx, j) }()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case jr := <-done:
		if jr.Err == nil || !errors.Is(jr.Err, context.Canceled) {
			t.Fatalf("canceled backoff: err=%v", jr.Err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("backoff sleep ignored cancellation")
	}
}
