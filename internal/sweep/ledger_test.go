package sweep

import (
	"context"
	"errors"
	"testing"

	"spcoh/internal/sim"
)

func TestFailureLedgerRecordsAndClears(t *testing.T) {
	dir := t.TempDir()
	store, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	jobs := testMatrix().Jobs()
	bad := jobs[0].Key()

	// One job fails every attempt: it lands in the ledger.
	rep := Run(context.Background(), jobs, func(j Job) (*sim.Result, error) {
		if j.Key() == bad {
			return nil, errors.New("injected")
		}
		return fakeResult(j), nil
	}, Options{Workers: 2, Retries: 1, Store: store})
	if rep.Failed != 1 {
		t.Fatalf("failed = %d, want 1", rep.Failed)
	}
	failed := store.FailedCells()
	if len(failed) != 1 || failed[bad] != "injected" {
		t.Fatalf("ledger after failing run: %v", failed)
	}

	// The ledger survives a store reopen (it lives in the manifest).
	store2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if failed := store2.FailedCells(); len(failed) != 1 {
		t.Fatalf("ledger lost on reopen: %v", failed)
	}

	// A successful rerun clears the entry.
	rep = Run(context.Background(), jobs, fakeRun, Options{Workers: 2, Store: store2})
	if rep.Failed != 0 {
		t.Fatalf("healthy rerun failed %d jobs", rep.Failed)
	}
	if failed := store2.FailedCells(); len(failed) != 0 {
		t.Fatalf("ledger not cleared by success: %v", failed)
	}
}

func TestCancellationNeverReachesLedger(t *testing.T) {
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // every job sees a canceled context
	rep := Run(ctx, testMatrix().Jobs(), fakeRun, Options{Workers: 2, Store: store})
	if rep.Failed == 0 {
		t.Fatal("canceled run should report failed jobs")
	}
	if failed := store.FailedCells(); len(failed) != 0 {
		t.Fatalf("cancellation polluted the failure ledger: %v", failed)
	}
}

func TestSweepRegistryPersists(t *testing.T) {
	dir := t.TempDir()
	store, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	a := testMatrix()
	b := testMatrix()
	b.Seeds = []int64{7}
	if err := store.AddSweep(a); err != nil {
		t.Fatal(err)
	}
	if err := store.AddSweep(b); err != nil {
		t.Fatal(err)
	}
	if err := store.AddSweep(a); err != nil { // idempotent
		t.Fatal(err)
	}
	ids := store.SweepIDs()
	if len(ids) != 2 {
		t.Fatalf("sweep IDs: %v", ids)
	}

	// A fresh open (a restarted server) sees both, content intact.
	store2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Matrix{a, b} {
		got, ok := store2.Sweep(m.Digest())
		if !ok {
			t.Fatalf("sweep %.12s lost on reopen", m.Digest())
		}
		if got.Digest() != m.Digest() {
			t.Fatalf("sweep %.12s mutated on reopen", m.Digest())
		}
	}
	// The registry coexists with the singular local-run matrix field.
	if err := store2.SetMatrix(a); err != nil {
		t.Fatal(err)
	}
	store3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if m, ok := store3.Matrix(); !ok || m.Digest() != a.Digest() {
		t.Fatal("local matrix field clobbered by the sweep registry")
	}
	if len(store3.SweepIDs()) != 2 {
		t.Fatal("sweep registry clobbered by SetMatrix")
	}
}
