package event

// This file implements the per-node scheduling lanes of the sharded
// executor (exec.go; DESIGN.md §16). A Lane is a view of the Sim bound to
// one mesh node: everything scheduled through it is stamped with that node
// as owner, and — while the node's shard is in the parallel phase of a
// cycle — is staged into the shard's buffer instead of touching the shared
// ring/heap. Outside the parallel phase (the serial engine, the commit
// phase, straggler drain) every Lane operation degenerates to the plain
// Sim call, so a run with lanes wired but no executor attached behaves
// byte-for-byte like one without lanes.
//
// Discipline: code executing as node X must schedule only through node X's
// lane. Staged ops land in the lane's own shard buffer tagged with that
// shard's current batch position, so touching another node's lane from
// inside a parallel phase would race with its worker and mistag the op. The
// protocol and CPU layers satisfy the rule by construction — every event
// handler is confined to one tile's state, and its outgoing cross-node
// effects (sends, coordinator calls, completions) go through Call, which
// defers them to the cycle barrier; the committed call may then use any
// lane freely, since staging is inactive there.

// stagedOp is one deferred effect recorded during the parallel phase:
// either a schedule (sched=true: e runs at t) or an immediate call
// (sched=false: e runs at commit). pos is the batch position of the event
// that staged it, so the commit phase can interleave each event's effects
// at exactly the point the serial engine would have produced them.
type stagedOp struct {
	pos   int32
	sched bool
	t     Time
	e     ev
}

// shardCtx is one shard's staging state. The trailing pad keeps adjacent
// shards' write-hot staging buffers off each other's cache lines (the
// buffers are appended to concurrently by different workers).
type shardCtx struct {
	active bool
	pos    int32 // batch position of the event currently executing
	next   int   // commit cursor into ops
	ops    []stagedOp
	_      [88]byte // pad to two cache lines
}

func (c *shardCtx) stage(op stagedOp) {
	op.pos = c.pos
	c.ops = append(c.ops, op)
}

// Lane is a per-node scheduling facade. Obtain lanes via Sim.Lanes.
type Lane struct {
	s   *Sim
	own int32     // owner node + 1
	ctx *shardCtx // nil until an Exec attaches this node's shard
}

// Lanes materializes (or returns) the simulator's n per-node lanes. All
// callers in one run must agree on n — the mesh size is a property of the
// machine, not of any one subsystem.
func (s *Sim) Lanes(n int) []*Lane {
	if s.lanes == nil {
		s.lanes = make([]*Lane, n)
		backing := make([]Lane, n)
		for i := range backing {
			backing[i] = Lane{s: s, own: int32(i) + 1}
			s.lanes[i] = &backing[i]
		}
	}
	if len(s.lanes) != n {
		panic("event: Lanes called with mismatched node counts on one Sim")
	}
	return s.lanes
}

// staging reports whether the lane's shard is in the parallel phase.
//
//spcoh:noalloc
func (l *Lane) staging() bool { return l.ctx != nil && l.ctx.active }

// At schedules fn at absolute time t, owned by the lane's node.
//
//spcoh:noalloc
func (l *Lane) At(t Time, fn Func) {
	if l.staging() {
		l.ctx.stage(stagedOp{sched: true, t: t, e: ev{fn: fn, own: l.own}})
		return
	}
	l.s.schedule(t, ev{fn: fn, own: l.own})
}

// AtFn schedules fn(arg) at absolute time t, owned by the lane's node.
//
//spcoh:noalloc
func (l *Lane) AtFn(t Time, fn ArgFunc, arg any) {
	if l.staging() {
		l.ctx.stage(stagedOp{sched: true, t: t, e: ev{pfn: fn, arg: arg, own: l.own}})
		return
	}
	l.s.schedule(t, ev{pfn: fn, arg: arg, own: l.own})
}

// After schedules fn d cycles from now, owned by the lane's node.
//
//spcoh:noalloc
func (l *Lane) After(d Time, fn Func) { l.At(l.s.now+d, fn) }

// AfterFn schedules fn(arg) d cycles from now, owned by the lane's node.
//
//spcoh:noalloc
func (l *Lane) AfterFn(d Time, fn ArgFunc, arg any) { l.AtFn(l.s.now+d, fn, arg) }

// AfterUnownedFn schedules fn(arg) d cycles from now with no owner: the
// event executes serially at its cycle's barrier. Used for work that
// touches cross-node state — NoC injections above all.
//
//spcoh:noalloc
func (l *Lane) AfterUnownedFn(d Time, fn ArgFunc, arg any) {
	if l.staging() {
		l.ctx.stage(stagedOp{sched: true, t: l.s.now + d, e: ev{pfn: fn, arg: arg}})
		return
	}
	l.s.schedule(l.s.now+d, ev{pfn: fn, arg: arg})
}

// Call runs fn(arg) immediately when the lane is not staging, and defers it
// to the commit phase (in exact serial order) when it is. It is the staging
// point for every cross-shard effect an owned event produces: message
// injection, coordinator operations, run-level completion callbacks.
//
//spcoh:noalloc
func (l *Lane) Call(fn ArgFunc, arg any) {
	if l.staging() {
		l.ctx.stage(stagedOp{e: ev{pfn: fn, arg: arg}})
		return
	}
	fn(arg)
}

// CallF is Call for a plain func() — allocation-free when the callback is
// an existing funcvalue (e.g. a bound completion callback).
//
//spcoh:noalloc
func (l *Lane) CallF(fn Func) {
	if l.staging() {
		l.ctx.stage(stagedOp{e: ev{fn: fn}})
		return
	}
	fn()
}
