package event

import (
	"testing"
)

// The calendar ring covers deltas in [0, ringSize); these tests walk the
// boundaries between the ring and the far heap, where an ordering or
// bucket-indexing bug would hide from the straight-line tests.

// TestRingHeapBoundaries table-drives schedules around the ring window edge
// and checks both firing order and firing times.
func TestRingHeapBoundaries(t *testing.T) {
	cases := []struct {
		name string
		// deltas are scheduled from time 0 in the listed order; events must
		// fire in (time, scheduling) order.
		deltas []Time
	}{
		{"all ring", []Time{1, 2, 3}},
		{"ring boundary delta", []Time{ringSize - 1, ringSize, ringSize + 1}},
		{"heap before ring scheduled later", []Time{ringSize, 5}},
		{"same cycle ring twice", []Time{7, 7, 7}},
		{"same cycle heap twice", []Time{ringSize + 3, ringSize + 3}},
		{"heap far beyond window", []Time{10 * ringSize, 1}},
		{"full window sweep", func() []Time {
			d := make([]Time, 0, 2*ringSize/16)
			for i := Time(0); i < 2*ringSize; i += 16 {
				d = append(d, i)
			}
			return d
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := New()
			type fired struct {
				at  Time
				idx int
			}
			var got []fired
			for i, d := range tc.deltas {
				i, d := i, d
				s.At(d, func() { got = append(got, fired{s.Now(), i}) })
			}
			s.Run()
			if len(got) != len(tc.deltas) {
				t.Fatalf("fired %d of %d events", len(got), len(tc.deltas))
			}
			for k := 1; k < len(got); k++ {
				a, b := got[k-1], got[k]
				if a.at > b.at || (a.at == b.at && a.idx > b.idx) {
					t.Fatalf("order violated at position %d: (t=%d,#%d) before (t=%d,#%d)", k, a.at, a.idx, b.at, b.idx)
				}
			}
			for _, f := range got {
				if f.at != tc.deltas[f.idx] {
					t.Errorf("event #%d fired at %d, scheduled for %d", f.idx, f.at, tc.deltas[f.idx])
				}
			}
		})
	}
}

// TestFarEventCrossesIntoWindow pins the heap-before-ring FIFO rule: an
// event scheduled while its cycle was outside the ring window must fire
// before events scheduled for the same cycle once the window caught up.
func TestFarEventCrossesIntoWindow(t *testing.T) {
	s := New()
	target := Time(ringSize + 100)
	var order []string
	s.At(target, func() { order = append(order, "far") }) // heap: delta > window
	s.At(target-50, func() {
		// Window now covers target: this lands in the ring.
		s.At(target, func() { order = append(order, "ring") })
	})
	s.Run()
	if len(order) != 2 || order[0] != "far" || order[1] != "ring" {
		t.Fatalf("heap-before-ring FIFO violated: %v", order)
	}
}

// TestBucketWrapReuse drives the clock through several full ring
// revolutions, with every bucket reused, and checks no event is lost or
// fired at the wrong cycle.
func TestBucketWrapReuse(t *testing.T) {
	s := New()
	var fired int
	var tick func()
	const total = 4 * ringSize
	tick = func() {
		fired++
		if Time(fired) < total {
			s.After(1, tick) // same bucket index every ringSize steps
		}
	}
	s.After(1, tick)
	s.Run()
	if fired != total {
		t.Fatalf("fired %d of %d wrap-around events", fired, total)
	}
	if s.Now() != total {
		t.Fatalf("clock at %d, want %d", s.Now(), total)
	}
	if s.Pending() != 0 {
		t.Fatalf("%d events left pending", s.Pending())
	}
}

// TestAtInPastDuringStep schedules into the past from inside a firing
// event; the engine must clamp it to the current cycle and fire it after
// the already-queued same-cycle events (FIFO).
func TestAtInPastDuringStep(t *testing.T) {
	s := New()
	var order []string
	s.At(10, func() {
		order = append(order, "a")
		s.At(3, func() { order = append(order, "past") }) // t < now: clamps to 10
	})
	s.At(10, func() { order = append(order, "b") })
	s.Run()
	want := []string{"a", "b", "past"}
	if len(order) != len(want) {
		t.Fatalf("fired %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("fired %v, want %v", order, want)
		}
	}
	if s.Now() != 10 {
		t.Fatalf("clock at %d, want 10", s.Now())
	}
}

// TestRunUntilEmptyQueue checks RunUntil on a drained engine still advances
// the clock to the limit, and that interleaved AdvanceTo/At keep the clock
// monotone and the schedule intact.
func TestRunUntilEmptyQueue(t *testing.T) {
	s := New()
	s.RunUntil(100)
	if s.Now() != 100 {
		t.Fatalf("RunUntil on empty queue left clock at %d, want 100", s.Now())
	}
	s.RunUntil(50) // backwards limit: monotone no-op
	if s.Now() != 100 {
		t.Fatalf("backwards RunUntil moved clock to %d", s.Now())
	}
}

// TestAdvanceToAtInterleaving interleaves AdvanceTo with fresh schedules and
// checks monotonicity: AdvanceTo never jumps a pending event, and events
// scheduled after an advance still fire at their cycles.
func TestAdvanceToAtInterleaving(t *testing.T) {
	s := New()
	var fired []Time
	note := func() { fired = append(fired, s.Now()) }

	s.At(30, note)
	s.AdvanceTo(100) // must stop at 30, the earliest pending event
	if s.Now() != 30 {
		t.Fatalf("AdvanceTo jumped pending event: clock %d, want 30", s.Now())
	}
	s.Step() // fire the event at 30; the clock may now advance past it
	s.At(40, note)
	s.At(ringSize+200, note) // heap resident
	s.AdvanceTo(35)          // past nothing: clock moves to 35
	if s.Now() != 35 {
		t.Fatalf("clock %d, want 35", s.Now())
	}
	s.AdvanceTo(20) // backwards: no-op
	if s.Now() != 35 {
		t.Fatalf("backwards AdvanceTo moved clock to %d", s.Now())
	}
	s.Run()
	want := []Time{30, 40, ringSize + 200}
	if len(fired) != len(want) {
		t.Fatalf("fired at %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired at %v, want %v", fired, want)
		}
	}
}
