package event

import (
	"fmt"
	"strings"
	"testing"
)

// serialTrace runs a scenario on the plain serial engine and returns the
// ordered log — the reference the executor must reproduce byte for byte.
func serialTrace(build func(s *Sim, lanes []*Lane, log *strings.Builder), nodes int) string {
	s := New()
	var log strings.Builder
	build(s, s.Lanes(nodes), &log)
	s.Run()
	return log.String()
}

// execTrace runs the same scenario through the sharded executor. SerialMin
// is forced to 0 so even tiny cycles take the parallel path.
func execTrace(t *testing.T, build func(s *Sim, lanes []*Lane, log *strings.Builder), nodes, shards int) string {
	t.Helper()
	s := New()
	lanes := s.Lanes(nodes)
	var log strings.Builder
	build(s, lanes, &log)
	x := NewExec(s, shards)
	defer x.Close()
	x.SerialMin = 0
	x.Run()
	return log.String()
}

// checkIdentity pins executor output against the serial engine for a
// spread of shard counts, including more shards than nodes (clamped).
func checkIdentity(t *testing.T, name string, nodes int, build func(s *Sim, lanes []*Lane, log *strings.Builder)) {
	t.Helper()
	want := serialTrace(build, nodes)
	if want == "" {
		t.Fatalf("%s: scenario produced no events", name)
	}
	for _, k := range []int{1, 2, 3, 4, nodes, nodes + 3} {
		if got := execTrace(t, build, nodes, k); got != want {
			t.Errorf("%s shards=%d: trace diverges\nserial: %q\nexec:   %q", name, k, want, got)
		}
	}
}

// TestExecEmptyShard: with 4 shards but events on node 0 only, shards 1-3
// spin on empty work lists every cycle. The barrier must still converge and
// order must match serial.
func TestExecEmptyShard(t *testing.T) {
	checkIdentity(t, "empty-shard", 4, func(s *Sim, lanes []*Lane, log *strings.Builder) {
		for i := 0; i < 6; i++ {
			i := i
			lanes[0].After(Time(1+i), func() { fmt.Fprintf(log, "n0@%d;", s.Now()) })
		}
	})
}

// TestExecAllEventsOneCycle: every node schedules into the same cycle, so
// one barrier carries the whole run. Commit order must equal the serial
// FIFO order (node 0 first — scheduling order, not shard order).
func TestExecAllEventsOneCycle(t *testing.T) {
	checkIdentity(t, "one-cycle", 8, func(s *Sim, lanes []*Lane, log *strings.Builder) {
		for i := range lanes {
			i := i
			// The log is shared state, so the write is staged via the lane —
			// exactly how the protocol exposes cross-node effects. Commit
			// order must equal the serial immediate-execution order.
			lanes[i].After(5, func() {
				lanes[i].CallF(func() { fmt.Fprintf(log, "n%d@%d;", i, s.Now()) })
			})
		}
	})
}

// TestExecCrossShardPingPong: two nodes on different shards bounce an event
// back and forth. Each leg's handoff follows the lane discipline: the
// executing node stages a call on its *own* lane, and the committed call
// schedules onto the peer's lane (staging inactive at commit) — the same
// shape as a protocol send committing a NoC injection that schedules the
// delivery on the destination's lane.
func TestExecCrossShardPingPong(t *testing.T) {
	checkIdentity(t, "ping-pong", 4, func(s *Sim, lanes []*Lane, log *strings.Builder) {
		hops := 0
		var hop func(at int)
		hop = func(at int) {
			lanes[at].CallF(func() { fmt.Fprintf(log, "n%d@%d;", at, s.Now()) })
			hops++
			if hops >= 12 {
				return
			}
			to := (at + 1) % 2 // nodes 0 and 1: different shards whenever k >= 2
			lanes[at].CallF(func() { lanes[to].After(1, func() { hop(to) }) })
		}
		lanes[0].After(1, func() { hop(0) })
	})
}

// TestExecSameCycleCrossShardChain: an event hands off to another shard
// with zero delay. The staged call commits at the barrier while the clock
// still reads t and schedules the hop *at t*, so the straggler drain must
// execute it before the cycle ends — serial does the same via plain FIFO.
func TestExecSameCycleCrossShardChain(t *testing.T) {
	checkIdentity(t, "same-cycle-chain", 4, func(s *Sim, lanes []*Lane, log *strings.Builder) {
		var chain func(at, left int)
		chain = func(at, left int) {
			lanes[at].CallF(func() { fmt.Fprintf(log, "n%d@%d;", at, s.Now()) })
			if left == 0 {
				return
			}
			to := (at + 1) % 4
			lanes[at].CallF(func() { lanes[to].After(0, func() { chain(to, left-1) }) })
		}
		lanes[2].After(3, func() { chain(2, 7) })
	})
}

// TestExecStagedCallOrder: immediate cross-shard calls (Lane.Call /
// Lane.CallF) staged from several owners in one cycle must commit in batch
// position order, interleaved correctly with staged schedules.
func TestExecStagedCallOrder(t *testing.T) {
	checkIdentity(t, "staged-calls", 6, func(s *Sim, lanes []*Lane, log *strings.Builder) {
		for i := range lanes {
			i := i
			lanes[i].After(2, func() {
				lanes[i].CallF(func() { fmt.Fprintf(log, "run%d;", i) })
				lanes[i].CallF(func() { fmt.Fprintf(log, "call%d;", i) })
				lanes[i].After(1, func() {
					lanes[i].CallF(func() { fmt.Fprintf(log, "next%d@%d;", i, s.Now()) })
				})
				lanes[i].CallF(func() { fmt.Fprintf(log, "tail%d;", i) })
			})
		}
	})
}

// TestExecUnownedMix: unowned events (own=0 — e.g. shared NoC link state)
// run serially at commit, interleaved with owned events in FIFO order.
func TestExecUnownedMix(t *testing.T) {
	checkIdentity(t, "unowned-mix", 4, func(s *Sim, lanes []*Lane, log *strings.Builder) {
		shared := 0
		for i := range lanes {
			i := i
			lanes[i].After(4, func() {
				lanes[i].CallF(func() { fmt.Fprintf(log, "own%d;", i) })
			})
			lanes[i].AfterUnownedFn(4, func(any) {
				shared++
				fmt.Fprintf(log, "shared%d=%d;", i, shared)
			}, nil)
		}
	})
}

// TestExecLanesMismatchPanics pins the guard against wiring two different
// node counts onto one Sim.
func TestExecLanesMismatchPanics(t *testing.T) {
	s := New()
	s.Lanes(4)
	defer func() {
		if recover() == nil {
			t.Fatal("Lanes(8) after Lanes(4) should panic")
		}
	}()
	s.Lanes(8)
}

// TestExecShardClamp: NewExec clamps shard counts above the node count and
// rejects a Sim without lanes.
func TestExecShardClamp(t *testing.T) {
	s := New()
	s.Lanes(2)
	x := NewExec(s, 64)
	if x.k != 2 {
		t.Fatalf("shards clamped to %d, want 2", x.k)
	}
	x.Close()

	defer func() {
		if recover() == nil {
			t.Fatal("NewExec without lanes should panic")
		}
	}()
	NewExec(New(), 2)
}
