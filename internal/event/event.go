// Package event provides the discrete-event simulation engine that drives
// the whole CMP model: a simulated cycle clock and a priority queue of
// scheduled callbacks.
//
// Determinism is a hard requirement (experiments must be reproducible), so
// events scheduled for the same cycle fire in scheduling order (FIFO within
// a cycle), enforced by a monotonically increasing sequence number.
package event

import "container/heap"

// Time is a simulation timestamp in clock cycles.
type Time uint64

// Func is a scheduled callback. It runs with the simulator clock set to its
// scheduled time.
type Func func()

type item struct {
	when Time
	seq  uint64
	fn   Func
}

type eventHeap []item

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(item)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }
func (h eventHeap) peek() item    { return h[0] }

// Sim is a discrete-event simulator instance. The zero value is not usable;
// call New.
type Sim struct {
	now    Time
	seq    uint64
	events eventHeap
	// Fired counts executed events; useful for budget checks and debugging.
	Fired uint64
	// obs, when set, observes every fired event (metrics layer). Nil — the
	// default — costs one branch per event.
	obs func(now Time, queueDepth int)
}

// SetObserver attaches (or, with nil, detaches) a per-event observer for
// the run-time metrics layer: it fires on every Step after the clock
// advances and before the event's callback runs, receiving the current
// time and the remaining queue depth.
func (s *Sim) SetObserver(fn func(now Time, queueDepth int)) { s.obs = fn }

// New returns an empty simulator at time 0.
func New() *Sim {
	s := &Sim{}
	heap.Init(&s.events)
	return s
}

// Now returns the current simulated time.
func (s *Sim) Now() Time { return s.now }

// At schedules fn to run at absolute time t. Scheduling in the past (t <
// Now) is a programming error and fires the event at the current time
// instead, preserving monotonicity.
func (s *Sim) At(t Time, fn Func) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	heap.Push(&s.events, item{when: t, seq: s.seq, fn: fn})
}

// After schedules fn to run d cycles from now.
func (s *Sim) After(d Time, fn Func) { s.At(s.now+d, fn) }

// Pending returns the number of scheduled-but-unfired events.
func (s *Sim) Pending() int { return len(s.events) }

// NextTime returns the timestamp of the earliest pending event, and false
// when the queue is empty.
func (s *Sim) NextTime() (Time, bool) {
	if len(s.events) == 0 {
		return 0, false
	}
	return s.events.peek().when, true
}

// Step fires the next event, advancing the clock to its timestamp. It
// reports false if no events remain.
func (s *Sim) Step() bool {
	if len(s.events) == 0 {
		return false
	}
	it := heap.Pop(&s.events).(item)
	s.now = it.when
	s.Fired++
	if s.obs != nil {
		s.obs(s.now, len(s.events))
	}
	it.fn()
	return true
}

// Run fires events until the queue drains.
func (s *Sim) Run() {
	for s.Step() {
	}
}

// RunUntil fires events with timestamps <= limit, leaving later events
// queued, and advances the clock to limit. Ending at limit — not at the
// last fired event — is load-bearing for epoch-boundary sampling: a cycle
// window with no events still ends exactly at its boundary, so repeated
// RunUntil calls never drift.
func (s *Sim) RunUntil(limit Time) {
	for len(s.events) > 0 && s.events.peek().when <= limit {
		s.Step()
	}
	s.AdvanceTo(limit)
}

// AdvanceTo moves the clock forward to t without firing any events.
// Moving backwards is a no-op (monotonicity). It is a programming error to
// advance past a pending event's timestamp; doing so would fire that event
// late (At clamps past schedules to the current time), so AdvanceTo stops
// at the earliest pending event instead.
func (s *Sim) AdvanceTo(t Time) {
	if len(s.events) > 0 && s.events.peek().when < t {
		t = s.events.peek().when
	}
	if t > s.now {
		s.now = t
	}
}

// RunWhile fires events while cond() holds and events remain.
func (s *Sim) RunWhile(cond func() bool) {
	for cond() && s.Step() {
	}
}
