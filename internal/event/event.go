// Package event provides the discrete-event simulation engine that drives
// the whole CMP model: a simulated cycle clock and a scheduling structure
// of pending callbacks.
//
// Determinism is a hard requirement (experiments must be reproducible), so
// events scheduled for the same cycle fire in scheduling order (FIFO within
// a cycle). The engine is built so that contract holds by construction:
//
//   - Near-future events (delta < ringSize cycles — L1/L2 latencies, memory
//     round trips, per-hop router/link delays; almost every schedule) land
//     in a calendar ring of per-cycle FIFO buckets. Appending to a bucket
//     and consuming it front to back is FIFO with no comparisons at all.
//   - Far-future events (congested-link arrival times, coarse timeouts) go
//     to a monomorphic binary min-heap ordered by (when, seq). A far event
//     at cycle T is, necessarily, scheduled while T is outside the ring
//     window; once the window reaches T every later schedule for T lands in
//     the ring. The clock is monotone, so every heap event at T precedes
//     every ring event at T in scheduling order — draining the heap first
//     at each cycle preserves global FIFO without cross-structure
//     sequence comparisons.
//
// Events are stored as plain struct values in reused bucket slices: no
// interface boxing, no per-event allocation, and steady-state scheduling
// allocates nothing (see bench_test.go for the enforced ceilings). Hot call
// sites that would otherwise allocate a closure per schedule can use the
// pre-bound AtFn/AfterFn forms, which carry a func(any) plus a pointer-
// shaped argument through the queue allocation-free.
package event

// Time is a simulation timestamp in clock cycles.
type Time uint64

// Func is a scheduled callback. It runs with the simulator clock set to its
// scheduled time.
type Func func()

// ArgFunc is a pre-bound scheduled callback: fn(arg) runs at the scheduled
// time. Passing a pointer (or other pointer-shaped value) as arg avoids the
// interface-boxing allocation a capturing closure would pay on every
// schedule.
type ArgFunc func(arg any)

// ringBits sizes the calendar ring. The window must comfortably cover the
// common scheduling deltas (the largest fixed latency in the machine model
// is the ~150-cycle memory round trip); congestion-delayed deliveries
// beyond the window take the heap fallback.
const (
	ringBits = 9
	ringSize = 1 << ringBits // cycles covered by the calendar ring
	ringMask = ringSize - 1
)

// ev is one scheduled event. Exactly one of fn / pfn is set. own records
// the owning mesh node plus one (0 = unowned) for the sharded executor
// (exec.go): owned events are node-confined and may run on a worker, while
// unowned events (NoC injections and other cross-node work) always execute
// serially at the cycle barrier. The serial engine ignores the field.
type ev struct {
	fn  Func
	pfn ArgFunc
	arg any
	own int32
}

func (e *ev) call() {
	if e.pfn != nil {
		e.pfn(e.arg)
	} else {
		e.fn()
	}
}

// bucket is one calendar cycle's FIFO: appended at the tail, consumed by
// advancing head. The backing slice is retained across reuse (head = len
// resets both to zero), so a warmed-up ring schedules with zero
// allocations.
type bucket struct {
	head int
	evs  []ev
}

func (b *bucket) empty() bool { return b.head >= len(b.evs) }

// farEv is a heap-resident far-future event; seq breaks same-cycle ties in
// scheduling order.
type farEv struct {
	when Time
	seq  uint64
	ev   ev
}

// farHeap is a hand-rolled binary min-heap on (when, seq) — monomorphic, so
// push/pop move struct values with no interface calls or boxing.
type farHeap []farEv

func (h farHeap) less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}

//spcoh:noalloc
func (h *farHeap) push(e farEv) {
	*h = append(*h, e)
	q := *h
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

//spcoh:noalloc
func (h *farHeap) pop() farEv {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = farEv{} // release callback references
	q = q[:n]
	*h = q
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q.less(l, smallest) {
			smallest = l
		}
		if r < n && q.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		q[i], q[smallest] = q[smallest], q[i]
		i = smallest
	}
	return top
}

// Sim is a discrete-event simulator instance. The zero value is not usable;
// call New.
type Sim struct {
	now Time
	// cursor is the lowest cycle whose ring bucket may be non-empty; buckets
	// in [now, cursor) are known-drained. Scanning from cursor amortizes the
	// next-event search to O(1) per simulated cycle.
	cursor  Time
	ring    [ringSize]bucket
	ringCnt int
	far     farHeap
	seq     uint64 // far-heap tie-break; ring FIFO needs no sequence numbers
	// Fired counts executed events; useful for budget checks and debugging.
	Fired uint64
	// obs, when set, observes every fired event (metrics layer). Nil — the
	// default — costs one branch per event.
	obs func(now Time, queueDepth int)
	// lanes are the per-node scheduling facades (lane.go), materialized once
	// by Lanes. Nil until a component asks for them.
	lanes []*Lane
}

// SetObserver attaches (or, with nil, detaches) a per-event observer for
// the run-time metrics layer: it fires on every Step after the clock
// advances and before the event's callback runs, receiving the current
// time and the remaining queue depth.
func (s *Sim) SetObserver(fn func(now Time, queueDepth int)) { s.obs = fn }

// New returns an empty simulator at time 0.
func New() *Sim { return &Sim{} }

// Now returns the current simulated time.
func (s *Sim) Now() Time { return s.now }

// At schedules fn to run at absolute time t. Scheduling in the past (t <
// Now) is a programming error and fires the event at the current time
// instead, preserving monotonicity.
//
//spcoh:noalloc
func (s *Sim) At(t Time, fn Func) { s.schedule(t, ev{fn: fn}) }

// AtFn schedules fn(arg) at absolute time t. Semantics match At; the
// pre-bound form exists so hot call sites need not allocate a closure per
// schedule (pass a pointer as arg to stay allocation-free end to end).
//
//spcoh:noalloc
func (s *Sim) AtFn(t Time, fn ArgFunc, arg any) { s.schedule(t, ev{pfn: fn, arg: arg}) }

// After schedules fn to run d cycles from now.
//
//spcoh:noalloc
func (s *Sim) After(d Time, fn Func) { s.schedule(s.now+d, ev{fn: fn}) }

// AfterFn schedules fn(arg) to run d cycles from now.
//
//spcoh:noalloc
func (s *Sim) AfterFn(d Time, fn ArgFunc, arg any) { s.schedule(s.now+d, ev{pfn: fn, arg: arg}) }

//spcoh:noalloc
func (s *Sim) schedule(t Time, e ev) {
	if t < s.now {
		t = s.now
	}
	if t-s.now < ringSize {
		// The ring admits by delta from the monotone clock, so every ring
		// event lies in [now, now+ringSize) and bucket indexing by t is
		// collision-free. (Admitting by cursor instead would let the window
		// retreat and break the heap-before-ring FIFO argument.)
		b := &s.ring[uint64(t)&ringMask]
		b.evs = append(b.evs, e)
		s.ringCnt++
		if t < s.cursor {
			s.cursor = t
		}
		return
	}
	s.seq++
	s.far.push(farEv{when: t, seq: s.seq, ev: e})
}

// Pending returns the number of scheduled-but-unfired events.
func (s *Sim) Pending() int { return s.ringCnt + len(s.far) }

// scanRing returns the cycle of the earliest ring event, advancing cursor
// past drained buckets. It must only be called when ringCnt > 0.
//
//spcoh:noalloc
func (s *Sim) scanRing() Time {
	if s.cursor < s.now {
		s.cursor = s.now
	}
	for {
		if !s.ring[uint64(s.cursor)&ringMask].empty() {
			return s.cursor
		}
		s.cursor++
	}
}

// NextTime returns the timestamp of the earliest pending event, and false
// when the queue is empty.
func (s *Sim) NextTime() (Time, bool) {
	switch {
	case s.ringCnt == 0 && len(s.far) == 0:
		return 0, false
	case s.ringCnt == 0:
		return s.far[0].when, true
	case len(s.far) == 0:
		return s.scanRing(), true
	}
	ringT := s.scanRing()
	if s.far[0].when < ringT {
		return s.far[0].when, true
	}
	return ringT, true
}

// pop removes and returns the earliest event. At equal cycles the heap
// drains before the ring: heap events for a cycle are always scheduled
// earlier than ring events for it (see the package comment), so this is
// exactly FIFO order.
//
//spcoh:noalloc
func (s *Sim) pop() (ev, Time, bool) {
	var ringT Time
	hasRing := s.ringCnt > 0
	if hasRing {
		ringT = s.scanRing()
	}
	if len(s.far) > 0 && (!hasRing || s.far[0].when <= ringT) {
		it := s.far.pop()
		return it.ev, it.when, true
	}
	if !hasRing {
		return ev{}, 0, false
	}
	b := &s.ring[uint64(ringT)&ringMask]
	e := b.evs[b.head]
	b.evs[b.head] = ev{} // release callback references
	b.head++
	if b.empty() {
		// Reset for reuse, keeping the backing slice as the bucket's
		// freelist.
		b.head = 0
		b.evs = b.evs[:0]
	}
	s.ringCnt--
	return e, ringT, true
}

// Step fires the next event, advancing the clock to its timestamp. It
// reports false if no events remain.
//
//spcoh:noalloc
func (s *Sim) Step() bool {
	e, when, ok := s.pop()
	if !ok {
		return false
	}
	s.now = when
	s.Fired++
	if s.obs != nil {
		s.obs(s.now, s.Pending())
	}
	e.call()
	return true
}

// Run fires events until the queue drains.
func (s *Sim) Run() {
	for s.Step() {
	}
}

// RunUntil fires events with timestamps <= limit, leaving later events
// queued, and advances the clock to limit. Ending at limit — not at the
// last fired event — is load-bearing for epoch-boundary sampling: a cycle
// window with no events still ends exactly at its boundary, so repeated
// RunUntil calls never drift.
func (s *Sim) RunUntil(limit Time) {
	for {
		next, ok := s.NextTime()
		if !ok || next > limit {
			break
		}
		s.Step()
	}
	s.AdvanceTo(limit)
}

// AdvanceTo moves the clock forward to t without firing any events.
// Moving backwards is a no-op (monotonicity). It is a programming error to
// advance past a pending event's timestamp; doing so would fire that event
// late (At clamps past schedules to the current time), so AdvanceTo stops
// at the earliest pending event instead.
func (s *Sim) AdvanceTo(t Time) {
	if next, ok := s.NextTime(); ok && next < t {
		t = next
	}
	if t > s.now {
		s.now = t
	}
}

// RunWhile fires events while cond() holds and events remain.
func (s *Sim) RunWhile(cond func() bool) {
	for cond() && s.Step() {
	}
}
