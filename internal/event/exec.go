package event

import (
	"runtime"
	"sync/atomic"
)

// Exec drains a Sim cycle by cycle with same-cycle events executed in
// parallel across K shards, producing output byte-identical to the serial
// engine (DESIGN.md §16). The algorithm per cycle t:
//
//  1. takeCycle collects every event scheduled for t into a batch, in
//     exactly the order the serial engine would fire them (heap events
//     first — see the §11 heap-drains-before-ring argument — then the ring
//     bucket front to back).
//  2. Parallel phase: each worker walks the batch and executes the events
//     owned by its shard (shard = node mod K), in batch order. Owned
//     events only mutate their own tile's state; every cross-shard effect
//     (schedule or call) is staged into the shard's buffer via the node's
//     Lane, tagged with the staging event's batch position. Unowned events
//     are skipped.
//  3. Commit phase (serial): walk the batch in order once more; at each
//     owned event's position, apply its staged ops in staging order; at
//     each unowned event's position, execute it. Because staged ops are
//     applied at the exact batch position — and in the exact intra-event
//     order — the serial engine would have produced them, the ring, heap,
//     seq counter, NoC link state and every observer-visible quantity
//     evolve identically to a serial run.
//  4. Straggler drain: events scheduled *for t* during commit (rare: only
//     zero-delay schedules) are executed serially via Step, which is again
//     the serial engine's order (they would have been appended to the same
//     bucket after the batch).
//
// Batches below SerialMin skip phases 2–3 and execute serially, which is
// equivalent by the same argument (commit order == serial order in both
// paths); the threshold only trades barrier overhead against parallelism.
type Exec struct {
	s    *Sim
	k    int
	ctxs []*shardCtx

	// batch is the current cycle's event list, reused across cycles.
	batch []ev

	// SerialMin is the batch size below which a cycle runs serially
	// (default 4*K). Exported so tests can force the parallel path.
	SerialMin int

	// Worker handshake: start is a generation counter bumped to release
	// the workers into a parallel phase, done counts workers still running
	// it, stop ends the pool. Atomics give the necessary happens-before
	// edges (control's pre-phase writes → workers; workers' staged writes
	// → control) without locks; the pool spins with Gosched because phases
	// are microseconds apart and a futex sleep would dominate them.
	start atomic.Uint32
	done  atomic.Int32
	stop  atomic.Bool
}

// NewExec attaches a K-shard executor to s. The simulator's lanes must
// already be materialized (Sim.Lanes) — the executor parallelizes only
// events scheduled through them. K is clamped to [1, nodes]. The control
// thread doubles as shard 0's worker; K-1 pool goroutines are spawned here
// and live until Close.
func NewExec(s *Sim, shards int) *Exec {
	n := len(s.lanes)
	if n == 0 {
		panic("event: NewExec before Sim.Lanes")
	}
	if shards < 1 {
		shards = 1
	}
	if shards > n {
		shards = n
	}
	x := &Exec{s: s, k: shards, SerialMin: 4 * shards}
	x.ctxs = make([]*shardCtx, shards)
	for i := range x.ctxs {
		x.ctxs[i] = &shardCtx{}
	}
	for _, l := range s.lanes {
		l.ctx = x.ctxs[int(l.own-1)%shards]
	}
	for w := 1; w < shards; w++ {
		w := w
		// The pool is the one sanctioned concurrency in the DES: workers
		// only run node-confined events between two barriers and stage
		// every cross-shard effect for deterministic serial commit.
		go x.worker(w) //spvet:allow goroutine -- deterministic barrier-merged shard pool
	}
	return x
}

// Close stops the worker pool (blocking until every worker has exited) and
// detaches the executor's staging contexts from the lanes, returning the
// Sim to pure serial operation.
func (x *Exec) Close() {
	if x.k > 1 && !x.stop.Load() {
		x.stop.Store(true)
		x.done.Store(int32(x.k - 1))
		x.start.Add(1)
		for x.done.Load() != 0 {
			runtime.Gosched()
		}
	}
	for _, l := range x.s.lanes {
		l.ctx = nil
	}
}

func (x *Exec) worker(shard int) {
	gen := uint32(0)
	for {
		for x.start.Load() == gen {
			runtime.Gosched()
		}
		gen++
		if x.stop.Load() {
			x.done.Add(-1)
			return
		}
		x.runShard(shard)
		x.done.Add(-1)
	}
}

// runShard executes the batch's events owned by one shard, in batch order.
func (x *Exec) runShard(shard int) {
	k := x.k
	ctx := x.ctxs[shard]
	for i := range x.batch {
		e := &x.batch[i]
		if e.own != 0 && int(e.own-1)%k == shard {
			ctx.pos = int32(i)
			e.call()
		}
	}
}

// takeCycle pops every event scheduled for the earliest pending cycle into
// batch, in serial firing order, and advances the clock to that cycle.
func (s *Sim) takeCycle(batch []ev) ([]ev, Time, bool) {
	t, ok := s.NextTime()
	if !ok {
		return batch, 0, false
	}
	s.now = t
	for len(s.far) > 0 && s.far[0].when == t {
		it := s.far.pop()
		batch = append(batch, it.ev)
	}
	if s.ringCnt > 0 && s.scanRing() == t {
		b := &s.ring[uint64(t)&ringMask]
		n := len(b.evs) - b.head
		if len(batch) == 0 && b.head == 0 {
			// Common case (no same-cycle heap events, bucket unconsumed):
			// swap the backing arrays instead of copying the events out.
			// Cycle clears the batch after execution, so reference release
			// is paid exactly once either way.
			batch, b.evs = b.evs, batch[:0]
		} else {
			batch = append(batch, b.evs[b.head:]...)
			for i := b.head; i < len(b.evs); i++ {
				b.evs[i] = ev{} // release callback references
			}
			b.head = 0
			b.evs = b.evs[:0]
		}
		s.ringCnt -= n
	}
	return batch, t, true
}

// Cycle processes one simulated cycle; false when the queue is empty.
func (x *Exec) Cycle() bool {
	s := x.s
	var t Time
	var ok bool
	x.batch, t, ok = s.takeCycle(x.batch[:0])
	if !ok {
		return false
	}
	n := len(x.batch)
	if x.k == 1 || n < x.SerialMin {
		// Serial fast path: lanes are not staging, so every event executes
		// with immediate effects — the plain engine's semantics.
		for i := range x.batch {
			x.batch[i].call()
		}
	} else {
		for _, c := range x.ctxs {
			c.ops = c.ops[:0]
			c.next = 0
			c.active = true
		}
		x.done.Store(int32(x.k - 1))
		x.start.Add(1)
		x.runShard(0)
		for x.done.Load() != 0 {
			runtime.Gosched()
		}
		for _, c := range x.ctxs {
			c.active = false
		}
		x.commit()
	}
	s.Fired += uint64(n)
	for i := range x.batch {
		x.batch[i] = ev{} // release callback references
	}
	// Straggler drain: commit-time schedules that landed on this same
	// cycle. Step preserves serial order (FIFO within the bucket).
	for {
		nt, ok := s.NextTime()
		if !ok || nt != t {
			break
		}
		s.Step()
	}
	return true
}

// commit applies the staged effects of a parallel phase in serial order:
// for each batch position, the staging event's ops run in staging order
// (owned events), or the event itself runs (unowned events). Nested
// effects of a committed call — e.g. a message injection scheduling its
// delivery — happen inline, exactly as they would mid-event serially.
func (x *Exec) commit() {
	s := x.s
	k := x.k
	for i := range x.batch {
		e := &x.batch[i]
		if e.own == 0 {
			e.call()
			continue
		}
		c := x.ctxs[int(e.own-1)%k]
		for c.next < len(c.ops) && c.ops[c.next].pos == int32(i) {
			op := &c.ops[c.next]
			c.next++
			if op.sched {
				s.schedule(op.t, op.e)
			} else {
				op.e.call()
			}
		}
	}
	for _, c := range x.ctxs {
		for i := range c.ops {
			c.ops[i].e = ev{} // release callback references
		}
	}
}

// Run drains the queue, cycle by cycle.
func (x *Exec) Run() {
	for x.Cycle() {
	}
}

// RunBudget processes cycles with timestamps <= limit, leaving later
// events queued — the executor counterpart of the serial MaxCycles peek
// loop (whole cycles and single events agree: a cycle's events all share
// its timestamp).
func (x *Exec) RunBudget(limit Time) {
	for {
		next, ok := x.s.NextTime()
		if !ok || next > limit {
			return
		}
		x.Cycle()
	}
}
