package event

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFIFOWithinCycle(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-cycle events fired out of order: %v", order)
		}
	}
	if s.Now() != 5 {
		t.Fatalf("clock = %d, want 5", s.Now())
	}
}

func TestTimeOrdering(t *testing.T) {
	s := New()
	var fired []Time
	times := []Time{9, 3, 7, 1, 3, 100, 0}
	for _, at := range times {
		at := at
		s.At(at, func() { fired = append(fired, at) })
	}
	s.Run()
	for i := 1; i < len(fired); i++ {
		if fired[i] < fired[i-1] {
			t.Fatalf("events out of time order: %v", fired)
		}
	}
	if len(fired) != len(times) {
		t.Fatalf("fired %d events, want %d", len(fired), len(times))
	}
}

func TestAfterAndNestedScheduling(t *testing.T) {
	s := New()
	var hits []Time
	s.At(10, func() {
		hits = append(hits, s.Now())
		s.After(5, func() { hits = append(hits, s.Now()) })
	})
	s.Run()
	if len(hits) != 2 || hits[0] != 10 || hits[1] != 15 {
		t.Fatalf("hits = %v, want [10 15]", hits)
	}
}

func TestSchedulingInPastClamps(t *testing.T) {
	s := New()
	var at Time
	s.At(20, func() {
		s.At(3, func() { at = s.Now() }) // in the past: clamps to now
	})
	s.Run()
	if at != 20 {
		t.Fatalf("past event fired at %d, want clamped to 20", at)
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	count := 0
	for i := Time(1); i <= 10; i++ {
		s.At(i*10, func() { count++ })
	}
	s.RunUntil(55)
	if count != 5 {
		t.Fatalf("RunUntil(55) fired %d events, want 5", count)
	}
	if s.Pending() != 5 {
		t.Fatalf("pending = %d, want 5", s.Pending())
	}
	// The clock ends at the limit, not at the last fired event (cycle 50):
	// epoch sampling depends on RunUntil landing exactly on the boundary.
	if s.Now() != 55 {
		t.Fatalf("after RunUntil(55), Now() = %d, want 55", s.Now())
	}
	s.Run()
	if count != 10 {
		t.Fatalf("after Run, fired %d, want 10", count)
	}
}

func TestRunUntilEmptyCycleWindowEndsAtLimit(t *testing.T) {
	s := New()
	s.At(3, func() {})
	s.RunUntil(10) // events exist but none in (3, 10]
	if s.Now() != 10 {
		t.Fatalf("Now() = %d, want 10", s.Now())
	}
	s.RunUntil(20) // entirely empty window
	if s.Now() != 20 {
		t.Fatalf("Now() = %d, want 20", s.Now())
	}
	// Sampling epochs of width 10 from these boundaries must not drift:
	// a later event still fires at its own time.
	var at Time
	s.At(25, func() { at = s.Now() })
	s.RunUntil(30)
	if at != 25 || s.Now() != 30 {
		t.Fatalf("event at %d (want 25), Now() = %d (want 30)", at, s.Now())
	}
}

func TestAdvanceTo(t *testing.T) {
	s := New()
	s.AdvanceTo(7)
	if s.Now() != 7 {
		t.Fatalf("Now() = %d, want 7", s.Now())
	}
	s.AdvanceTo(3) // backwards: no-op
	if s.Now() != 7 {
		t.Fatalf("Now() = %d after backwards AdvanceTo, want 7", s.Now())
	}
	// Never advances past a pending event (which would fire it late).
	s.At(10, func() {})
	s.AdvanceTo(50)
	if s.Now() != 10 {
		t.Fatalf("Now() = %d, want clamped to 10 (pending event)", s.Now())
	}
	if !s.Step() || s.Now() != 10 {
		t.Fatal("pending event should still fire at its own time")
	}
}

func TestRunWhile(t *testing.T) {
	s := New()
	count := 0
	for i := 0; i < 100; i++ {
		s.After(Time(i), func() { count++ })
	}
	s.RunWhile(func() bool { return count < 7 })
	if count != 7 {
		t.Fatalf("RunWhile stopped at %d, want 7", count)
	}
}

// Property: for any random schedule, events fire in nondecreasing time order
// and all events fire exactly once.
func TestPropertyOrdering(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New()
		total := int(n%64) + 1
		fired := 0
		last := Time(0)
		ok := true
		for i := 0; i < total; i++ {
			at := Time(rng.Intn(50))
			s.At(at, func() {
				fired++
				if s.Now() < last {
					ok = false
				}
				last = s.Now()
			})
		}
		s.Run()
		return ok && fired == total && s.Pending() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Fired counter matches the number of scheduled events after Run.
func TestPropertyFiredCount(t *testing.T) {
	f := func(times []uint16) bool {
		s := New()
		for _, at := range times {
			s.At(Time(at), func() {})
		}
		s.Run()
		return s.Fired == uint64(len(times))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
