package event

// Cascade is a self-contained virtual-time event queue for the fast
// functional simulation mode (DESIGN.md §15): a coherence transaction that
// the detailed model spreads over many real-clock events is executed as one
// atomic cascade at a single real instant, with each internal step carrying
// a virtual timestamp (fixed, contention-free latencies). Entries fire in
// (virtual time, scheduling order) — the same discipline the real engine
// guarantees — so a cascade replays the detailed model's delivery order
// minus contention, deterministically.
//
// A Cascade is single-threaded and non-reentrant: Begin, a run of At/After
// calls from inside firing entries, then Drain. The heap backing is reused
// across cascades, so steady-state operation allocates nothing.
type Cascade struct {
	h      cascHeap
	seq    uint64
	vt     Time
	active bool
}

// cascEv is one cascade entry. Only the pre-bound form exists: cascades run
// on hot protocol paths that must not allocate closures.
type cascEv struct {
	when Time
	seq  uint64
	pfn  ArgFunc
	arg  any
}

// cascHeap is a binary min-heap on (when, seq) — monomorphic, like the
// engine's far-future heap.
type cascHeap []cascEv

func (h cascHeap) less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}

//spcoh:noalloc
func (h *cascHeap) push(e cascEv) {
	*h = append(*h, e)
	q := *h
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

//spcoh:noalloc
func (h *cascHeap) pop() cascEv {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = cascEv{} // release callback references
	q = q[:n]
	*h = q
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q.less(l, smallest) {
			smallest = l
		}
		if r < n && q.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		q[i], q[smallest] = q[smallest], q[i]
		i = smallest
	}
	return top
}

// Active reports whether a cascade is being drained; clock readers use it to
// select between the virtual and the real clock.
func (c *Cascade) Active() bool { return c.active }

// Now returns the cascade's virtual clock. Valid only while Active.
func (c *Cascade) Now() Time { return c.vt }

// errNestedCascade is pre-boxed so Begin stays allocation-free when inlined
// into //spcoh:noalloc callers (the panic argument would otherwise escape).
var errNestedCascade any = "event: nested cascade"

// Begin opens a cascade with the virtual clock at start (the real clock of
// the event that triggers the transaction).
func (c *Cascade) Begin(start Time) {
	if c.active {
		panic(errNestedCascade)
	}
	c.active = true
	c.vt = start
	c.seq = 0
}

// At schedules fn(arg) at virtual time t. Scheduling into the virtual past
// fires at the current virtual time (mirroring the real engine, where a
// zero-delay schedule fires in the same cycle).
//
//spcoh:noalloc
func (c *Cascade) At(t Time, fn ArgFunc, arg any) {
	if t < c.vt {
		t = c.vt
	}
	c.seq++
	c.h.push(cascEv{when: t, seq: c.seq, pfn: fn, arg: arg})
}

// After schedules fn(arg) d virtual cycles after the cascade clock.
//
//spcoh:noalloc
func (c *Cascade) After(d Time, fn ArgFunc, arg any) { c.At(c.vt+d, fn, arg) }

// Drain fires entries in (virtual time, scheduling order) until the cascade
// is empty, then closes it. Entries may schedule further entries.
func (c *Cascade) Drain() {
	for len(c.h) > 0 {
		e := c.h.pop()
		c.vt = e.when
		e.pfn(e.arg)
	}
	c.active = false
}
