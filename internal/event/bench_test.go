package event

import (
	"testing"
)

// nop is a package-level callback: taking its address never allocates, so
// the benchmarks and alloc ceilings below measure the engine, not the call
// site.
func nop() {}

func nopArg(any) {}

// TestAllocsSteadyStateZero enforces the headline allocation contract: once
// the ring buckets are warm, scheduling and firing allocates nothing — for
// both the closure form (At with a non-capturing func) and the pre-bound
// form (AtFn with a pointer argument).
func TestAllocsSteadyStateZero(t *testing.T) {
	s := New()
	arg := new(int)
	// Warm-up: grow every bucket's backing slice once.
	for i := 0; i < 4*ringSize; i++ {
		s.At(s.Now()+Time(i%128), nop)
	}
	s.Run()

	if avg := testing.AllocsPerRun(1000, func() {
		s.At(s.Now()+3, nop)
		s.Step()
	}); avg != 0 {
		t.Errorf("steady-state At+Step: %v allocs/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(1000, func() {
		s.AtFn(s.Now()+3, nopArg, arg)
		s.Step()
	}); avg != 0 {
		t.Errorf("steady-state AtFn+Step: %v allocs/op, want 0", avg)
	}
}

// benchEngine schedules fanout events per fired event at mixed deltas and
// steps through count events total.
func benchEngine(b *testing.B, fanout int, deltas []Time) {
	b.ReportAllocs()
	s := New()
	pending := 0
	var tick func()
	tick = func() {
		pending--
		for i := 0; i < fanout && pending < 4096; i++ {
			s.After(deltas[int(s.Fired)%len(deltas)], tick)
			pending++
		}
	}
	s.After(1, tick)
	pending++
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !s.Step() {
			b.Fatal("queue drained")
		}
	}
}

// BenchmarkStepRing exercises the calendar ring only (all deltas inside the
// window).
func BenchmarkStepRing(b *testing.B) {
	benchEngine(b, 1, []Time{1, 2, 3, 7, 16, 150})
}

// BenchmarkStepMixedFar mixes ring deltas with heap-fallback deltas, as a
// congested NoC does.
func BenchmarkStepMixedFar(b *testing.B) {
	benchEngine(b, 1, []Time{1, 3, 16, 150, ringSize + 13, 2 * ringSize})
}

// BenchmarkStepFanout stresses bucket growth and drain with a branching
// event tree.
func BenchmarkStepFanout(b *testing.B) {
	benchEngine(b, 2, []Time{1, 2, 5, 11})
}

// BenchmarkScheduleAtFn measures the pre-bound scheduling path alone.
func BenchmarkScheduleAtFn(b *testing.B) {
	b.ReportAllocs()
	s := New()
	arg := new(int)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.AtFn(s.Now()+2, nopArg, arg)
		s.Step()
	}
}
