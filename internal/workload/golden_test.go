package workload_test

// The spec migration's golden reference: the original hand-coded profile
// builders, preserved verbatim. Every embedded spec must replay to the
// byte-identical op stream these produce — same PCs, sync IDs, addresses
// and build-time rng draws — at any (threads, scale, seed). If a spec or
// the interpreter drifts, the predictors' static-identity assumptions
// silently change; this test turns that into a hard failure.

import (
	"fmt"
	"testing"

	"spcoh/internal/sim"
	"spcoh/internal/workload"
)

func scaleIters(iters int, scale float64) int {
	n := int(float64(iters)*scale + 0.5)
	if n < 2 {
		n = 2
	}
	return n
}

func east(i, n int) int { return (i + 1) % n }
func west(i, n int) int { return (i - 1 + n) % n }
func parent(i int) int  { return (i - 1) / 2 }
func child(i, k, n int) int {
	c := 2*i + 1 + k
	if c >= n {
		c = c % n
	}
	return c
}

func produceOn(j int) bool { return j%2 == 0 }

func produceAll(t *workload.T, region, partLines, n int) {
	for c := 0; c < n; c++ {
		t.Produce(region, c, partLines, partLines)
	}
}

type T = workload.T

// legacyBuilders maps each benchmark to its original closure.
var legacyBuilders = map[string]func(n int, scale float64, seed int64) *workload.Program{
	"fmm": func(n int, scale float64, seed int64) *workload.Program {
		b := workload.NewBuilder("fmm", n, seed)
		bars := b.Barriers(20)
		locks := b.Locks(30)
		iters := scaleIters(28, scale)
		cur := make([]int, n)
		for it := 0; it < iters; it++ {
			for j, id := range bars {
				b.Bar(id)
				b.ForAll(func(t *T) {
					i := t.Tid()
					switch {
					case j < 8:
						if produceOn(j) {
							t.Produce(0, parent(i), 4, 4)
						} else {
							t.Consume(0, child(i, 0, n), 4, 5)
							t.Consume(0, child(i, 1, n), 4, 5)
						}
					case j < 16:
						if produceOn(j) {
							t.Produce(1, child(i, 0, n), 4, 4)
							t.Produce(1, child(i, 1, n), 4, 4)
						} else {
							t.Consume(1, parent(i), 4, 5)
							t.Consume(1, east(parent(i), n), 4, 3)
						}
					default:
						if produceOn(j) {
							t.Produce(2, west(i, n), 4, 4)
						} else {
							t.Consume(2, east(i, n), 4, 6)
						}
						t.CS(locks[(i+j*7+1)%len(locks)], 3, 4, 8)
					}
					t.Private(6, 1<<20, &cur[i])
					t.Compute(300)
				})
			}
		}
		return b.Finish(20, 30)
	},
	"lu": func(n int, scale float64, seed int64) *workload.Program {
		b := workload.NewBuilder("lu", n, seed)
		bars := b.Barriers(5)
		locks := b.Locks(7)
		iters := scaleIters(37, scale)
		cur := make([]int, n)
		for it := 0; it < iters; it++ {
			owner := (it / 4) % n
			for j, id := range bars {
				b.Bar(id)
				b.ForAll(func(t *T) {
					i := t.Tid()
					switch {
					case j == 0 && i == owner:
						produceAll(t, 0, 4, n)
					case j == 1 && i != owner:
						t.Consume(0, owner, 4, 6)
					case j == 4:
						t.CS(locks[(i+it)%len(locks)], 1, 2, 4)
					}
					t.Private(6, 1<<20, &cur[i])
					t.Compute(800)
				})
			}
		}
		return b.Finish(5, 7)
	},
	"ocean": func(n int, scale float64, seed int64) *workload.Program {
		b := workload.NewBuilder("ocean", n, seed)
		bars := b.Barriers(20)
		locks := b.Locks(28)
		iters := scaleIters(26, scale)
		cur := make([]int, n)
		for it := 0; it < iters; it++ {
			d := 1 + it%2
			for j, id := range bars {
				b.Bar(id)
				b.ForAll(func(t *T) {
					i := t.Tid()
					if produceOn(j) {
						t.Produce(0, (i+d)%n, 8, 8)
					} else {
						t.Consume(0, (i+n-d)%n, 8, 12)
					}
					if j == 19 {
						t.CS(locks[(i+it*3)%len(locks)], 1, 2, 4)
					}
					t.Private(7, 1<<20, &cur[i])
					t.Compute(250)
				})
			}
		}
		return b.Finish(20, 28)
	},
	"radiosity": func(n int, scale float64, seed int64) *workload.Program {
		b := workload.NewBuilder("radiosity", n, seed)
		bars := b.Barriers(12)
		locks := b.Locks(34)
		iters := scaleIters(95, scale)
		cur := make([]int, n)
		for it := 0; it < iters; it++ {
			for j, id := range bars {
				b.Bar(id)
				b.ForAll(func(t *T) {
					i := t.Tid()
					if produceOn(j) {
						produceAll(t, 0, 1, n)
					} else {
						t.Consume(0, b.Rng().Intn(n), 1, 2)
						t.Consume(0, b.Rng().Intn(n), 1, 2)
					}
					t.CS(locks[(i*3+j)%len(locks)], 2, 4, 6)
					t.Private(5, 1<<20, &cur[i])
					t.Compute(200)
				})
			}
		}
		return b.Finish(12, 34)
	},
	"water-ns": func(n int, scale float64, seed int64) *workload.Program {
		b := workload.NewBuilder("water-ns", n, seed)
		bars := b.Barriers(8)
		locks := b.Locks(20)
		iters := scaleIters(60, scale)
		cur := make([]int, n)
		for it := 0; it < iters; it++ {
			for j, id := range bars {
				b.Bar(id)
				b.ForAll(func(t *T) {
					i := t.Tid()
					if produceOn(j) {
						t.Produce(0, west(i, n), 6, 6)
					} else {
						t.Consume(0, east(i, n), 6, 9)
					}
					t.CS(locks[(i+2*j)%len(locks)], 2, 4, 8)
					t.CS(locks[(i+2*j+1)%len(locks)], 2, 4, 8)
					t.Private(7, 1<<20, &cur[i])
					t.Compute(300)
				})
			}
		}
		return b.Finish(8, 20)
	},
	"cholesky": func(n int, scale float64, seed int64) *workload.Program {
		b := workload.NewBuilder("cholesky", n, seed)
		bars := b.Barriers(27)
		locks := b.Locks(28)
		iters := scaleIters(8, scale)
		cur := make([]int, n)
		for it := 0; it < iters; it++ {
			for j, id := range bars {
				b.Bar(id)
				b.ForAll(func(t *T) {
					i := t.Tid()
					k := 1 + (j/2+it)%2
					if produceOn(j) {
						t.Produce(0, (i+k)%n, 5, 5)
					} else {
						t.Consume(0, (i+n-k)%n, 5, 7)
					}
					t.CS(locks[(i+j)%len(locks)], 2, 4, 6)
					t.Private(12, 1<<20, &cur[i])
					t.Compute(400)
				})
			}
		}
		return b.Finish(27, 28)
	},
	"fft": func(n int, scale float64, seed int64) *workload.Program {
		b := workload.NewBuilder("fft", n, seed)
		bars := b.Barriers(8)
		locks := b.Locks(8)
		iters := scaleIters(3, scale)
		cur := make([]int, n)
		for it := 0; it < iters; it++ {
			for j, id := range bars {
				b.Bar(id)
				b.ForAll(func(t *T) {
					i := t.Tid()
					switch j % 4 {
					case 1:
						produceAll(t, 0, 2, n)
					case 2:
						for k := 1; k <= 8; k++ {
							cnt := 1
							if k <= 4 {
								cnt = 3
							}
							t.Consume(0, (i+k)%n, 2, cnt)
						}
					default:
						t.Private(18, 1<<20, &cur[i])
						if j == 7 {
							t.CS(locks[(i+it)%len(locks)], 1, 2, 4)
						}
					}
					t.Compute(500)
				})
			}
		}
		return b.Finish(8, 8)
	},
	"radix": func(n int, scale float64, seed int64) *workload.Program {
		b := workload.NewBuilder("radix", n, seed)
		bars := b.Barriers(4)
		locks := b.Locks(8)
		iters := scaleIters(9, scale)
		cur := make([]int, n)
		for it := 0; it < iters; it++ {
			for j, id := range bars {
				b.Bar(id)
				b.ForAll(func(t *T) {
					i := t.Tid()
					switch j {
					case 1:
						produceAll(t, 0, 2, n)
					case 2:
						t.Consume(0, (i+1)%n, 2, 3)
						t.Consume(0, (i+5)%n, 2, 3)
					case 3:
						t.CS(locks[(i+it)%len(locks)], 1, 2, 4)
					}
					t.Private(16, 1<<20, &cur[i])
					t.Compute(600)
				})
			}
		}
		return b.Finish(4, 8)
	},
	"water-sp": func(n int, scale float64, seed int64) *workload.Program {
		b := workload.NewBuilder("water-sp", n, seed)
		bars := b.Barriers(1)
		locks := b.Locks(17)
		iters := scaleIters(42, scale)
		cur := make([]int, n)
		for it := 0; it < iters; it++ {
			b.Bar(bars[0])
			b.ForAll(func(t *T) {
				i := t.Tid()
				if it%2 == 0 {
					t.Produce(0, west(i, n), 8, 8)
				} else {
					t.Consume(0, east(i, n), 8, 12)
				}
				t.CS(locks[(i+it)%len(locks)], 1, 4, 8)
				t.Private(6, 1<<20, &cur[i])
				t.Compute(400)
			})
		}
		return b.Finish(1, 17)
	},
	"bodytrack": func(n int, scale float64, seed int64) *workload.Program {
		b := workload.NewBuilder("bodytrack", n, seed)
		bars := b.Barriers(20)
		locks := b.Locks(16)
		iters := scaleIters(23, scale)
		cur := make([]int, n)
		for it := 0; it < iters; it++ {
			for j, id := range bars {
				b.Bar(id)
				b.ForAll(func(t *T) {
					i := t.Tid()
					switch {
					case j < 6:
						prod := (j/2 + 5) % n
						if produceOn(j) {
							if i == prod {
								produceAll(t, 0, 2, n)
							}
						} else if i != prod {
							t.Consume(0, prod, 2, 3)
						}
					case j < 12:
						if produceOn(j) {
							t.Produce(1, east(i, n), 4, 4)
						} else {
							t.Consume(1, west(i, n), 4, 6)
						}
					case j < 16:
						t.CS(locks[(i+j)%len(locks)], 2, 4, 8)
						if !produceOn(j) {
							t.Consume(1, west(i, n), 4, 3)
						}
					default:
						if produceOn(j) {
							if i == 0 {
								produceAll(t, 3, 2, n)
							}
						} else if i != 0 {
							t.Consume(3, 0, 2, 3)
						}
					}
					t.Private(2, 1<<20, &cur[i])
					t.Compute(250)
				})
			}
		}
		return b.Finish(20, 16)
	},
	"fluidanimate": func(n int, scale float64, seed int64) *workload.Program {
		b := workload.NewBuilder("fluidanimate", n, seed)
		bars := b.Barriers(20)
		locks := b.Locks(11)
		iters := scaleIters(55, scale)
		cur := make([]int, n)
		for it := 0; it < iters; it++ {
			for j, id := range bars {
				b.Bar(id)
				b.ForAll(func(t *T) {
					i := t.Tid()
					if produceOn(j) {
						t.Produce(0, west(i, n), 4, 4)
					} else {
						t.Consume(0, east(i, n), 4, 6)
					}
					t.CS(locks[(i+j)%len(locks)], 1, 4, 6)
					t.CS(locks[(i+j+5)%len(locks)], 1, 4, 6)
					t.Private(7, 1<<20, &cur[i])
					t.Compute(200)
				})
			}
		}
		return b.Finish(20, 11)
	},
	"streamcluster": func(n int, scale float64, seed int64) *workload.Program {
		b := workload.NewBuilder("streamcluster", n, seed)
		bars := b.Barriers(24)
		locks := b.Locks(1)
		iters := scaleIters(60, scale)
		cur := make([]int, n)
		for it := 0; it < iters; it++ {
			coord := (it / 4) % n
			for j, id := range bars {
				b.Bar(id)
				b.ForAll(func(t *T) {
					i := t.Tid()
					if produceOn(j) {
						if i == coord {
							produceAll(t, 0, 2, n)
						} else {
							t.Produce(1, east(i, n), 4, 4)
						}
					} else {
						if i != coord {
							t.Consume(0, coord, 2, 3)
						}
						t.Consume(1, west(i, n), 4, 6)
					}
					if j == 11 {
						t.CS(locks[0], 2, 4, 6)
					}
					t.Private(1, 1<<20, &cur[i])
					t.Compute(150)
				})
			}
		}
		return b.Finish(24, 1)
	},
	"vips": func(n int, scale float64, seed int64) *workload.Program {
		b := workload.NewBuilder("vips", n, seed)
		bars := b.Barriers(8)
		locks := b.Locks(14)
		iters := scaleIters(26, scale)
		cur := make([]int, n)
		for it := 0; it < iters; it++ {
			for j, id := range bars {
				b.Bar(id)
				b.ForAll(func(t *T) {
					i := t.Tid()
					if produceOn(j) {
						t.Produce(0, east(i, n), 6, 6)
					} else {
						t.Consume(0, west(i, n), 6, 9)
					}
					if j%4 == 3 {
						t.CS(locks[(i+j)%len(locks)], 1, 4, 6)
					}
					t.Private(5, 1<<20, &cur[i])
					t.Compute(300)
				})
			}
		}
		return b.Finish(8, 14)
	},
	"facesim": func(n int, scale float64, seed int64) *workload.Program {
		b := workload.NewBuilder("facesim", n, seed)
		bars := b.Barriers(3)
		locks := b.Locks(2)
		iters := scaleIters(420, scale)
		cur := make([]int, n)
		for it := 0; it < iters; it++ {
			for j, id := range bars {
				b.Bar(id)
				b.ForAll(func(t *T) {
					i := t.Tid()
					switch j {
					case 0:
						t.Produce(0, east(i, n), 5, 5)
					case 1:
						t.Consume(0, west(i, n), 5, 7)
					default:
						if i%4 == 0 {
							t.CS(locks[(i/4)%2], 1, 4, 6)
						}
					}
					t.Private(5, 1<<20, &cur[i])
					t.Compute(220)
				})
			}
		}
		return b.Finish(3, 2)
	},
	"ferret": func(n int, scale float64, seed int64) *workload.Program {
		b := workload.NewBuilder("ferret", n, seed)
		bars := b.Barriers(6)
		locks := b.Locks(4)
		iters := scaleIters(4, scale)
		cur := make([]int, n)
		for it := 0; it < iters; it++ {
			for j, id := range bars {
				b.Bar(id)
				b.ForAll(func(t *T) {
					i := t.Tid()
					stage := j % 3
					if produceOn(j) {
						t.Produce(stage, east(i, n), 6, 6)
					} else {
						t.Consume(stage, west(i, n), 6, 9)
					}
					t.CS(locks[j%len(locks)], 5, 4, 6)
					t.Private(4, 1<<20, &cur[i])
					t.Compute(350)
				})
			}
		}
		return b.Finish(6, 4)
	},
	"dedup": func(n int, scale float64, seed int64) *workload.Program {
		b := workload.NewBuilder("dedup", n, seed)
		bars := b.Barriers(4)
		locks := b.Locks(3)
		iters := scaleIters(64, scale)
		cur := make([]int, n)
		for it := 0; it < iters; it++ {
			for j, id := range bars {
				b.Bar(id)
				b.ForAll(func(t *T) {
					i := t.Tid()
					if produceOn(j) {
						t.Produce(0, east(i, n), 4, 4)
						produceAll(t, 1, 1, n)
					} else {
						t.Consume(0, west(i, n), 4, 6)
						t.Consume(1, b.Rng().Intn(n), 1, 2)
					}
					t.CS(locks[j%len(locks)], 2, 4, 6)
					t.Private(3, 1<<20, &cur[i])
					t.Compute(250)
				})
			}
		}
		return b.Finish(4, 3)
	},
	"x264": func(n int, scale float64, seed int64) *workload.Program {
		b := workload.NewBuilder("x264", n, seed)
		bars := b.Barriers(3)
		locks := b.Locks(2)
		iters := scaleIters(10, scale)
		cur := make([]int, n)
		for it := 0; it < iters; it++ {
			for j, id := range bars {
				b.Bar(id)
				b.ForAll(func(t *T) {
					i := t.Tid()
					switch j {
					case 0:
						t.Produce(0, east(i, n), 8, 8)
					case 1:
						t.Consume(0, west(i, n), 8, 12)
					default:
						t.CS(locks[i%2], 1, 4, 4)
					}
					t.Private(2, 1<<20, &cur[i])
					t.Compute(300)
				})
			}
		}
		return b.Finish(3, 2)
	},
}

// diffPrograms returns "" when a and b are identical, else a description
// of the first divergence.
func diffPrograms(a, b *workload.Program) string {
	if a.Name != b.Name {
		return fmt.Sprintf("name %q != %q", a.Name, b.Name)
	}
	if a.StaticBarriers != b.StaticBarriers || a.StaticCritSections != b.StaticCritSections {
		return fmt.Sprintf("static counts %d/%d != %d/%d",
			a.StaticBarriers, a.StaticCritSections, b.StaticBarriers, b.StaticCritSections)
	}
	if len(a.Threads) != len(b.Threads) {
		return fmt.Sprintf("thread count %d != %d", len(a.Threads), len(b.Threads))
	}
	for tid := range a.Threads {
		if len(a.Threads[tid]) != len(b.Threads[tid]) {
			return fmt.Sprintf("thread %d length %d != %d", tid, len(a.Threads[tid]), len(b.Threads[tid]))
		}
		for k := range a.Threads[tid] {
			if a.Threads[tid][k] != b.Threads[tid][k] {
				return fmt.Sprintf("thread %d op %d: %+v != %+v",
					tid, k, a.Threads[tid][k], b.Threads[tid][k])
			}
		}
	}
	return ""
}

// TestSpecsByteIdenticalToLegacy is the migration's acceptance gate: every
// embedded spec replays its legacy builder op-for-op at multiple sizes and
// seeds.
func TestSpecsByteIdenticalToLegacy(t *testing.T) {
	names := workload.Names()
	if len(names) != len(legacyBuilders) {
		t.Fatalf("%d built-in specs vs %d legacy builders", len(names), len(legacyBuilders))
	}
	for _, name := range names {
		legacy, ok := legacyBuilders[name]
		if !ok {
			t.Fatalf("no legacy builder for %q", name)
		}
		prof, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, seed := range []int64{42, 7} {
			for _, threads := range []int{4, 16} {
				want := legacy(threads, 0.05, seed)
				got, err := workload.FromSpec(prof.Spec, threads, 0.05, seed)
				if err != nil {
					t.Fatalf("%s t%d s%d: %v", name, threads, seed, err)
				}
				if d := diffPrograms(got, want); d != "" {
					t.Errorf("%s t%d s%d: spec diverges from legacy builder: %s",
						name, threads, seed, d)
				}
			}
		}
	}
}

// TestSpecSimResultMatchesLegacy spot-checks end-to-end equality: identical
// op streams must yield identical simulation Results. Three profiles cover
// the rng-consuming, def-using and loop-using spec features.
func TestSpecSimResultMatchesLegacy(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation comparison in full mode only")
	}
	for _, name := range []string{"radiosity", "lu", "fft"} {
		prof, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, seed := range []int64{42, 7} {
			want, err := sim.Run(legacyBuilders[name](16, 0.05, seed), sim.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			spec, err := workload.FromSpec(prof.Spec, 16, 0.05, seed)
			if err != nil {
				t.Fatal(err)
			}
			got, err := sim.Run(spec, sim.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			gs, ws := fmt.Sprintf("%+v", *got), fmt.Sprintf("%+v", *want)
			if gs != ws {
				t.Errorf("%s seed %d: sim result differs:\n got %s\nwant %s", name, seed, gs, ws)
			}
		}
	}
}
