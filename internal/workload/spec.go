package workload

import (
	"fmt"

	"spcoh/internal/scenario"
)

// FromSpec interprets a scenario spec into an op-stream program. The walk
// drives the same Builder the hand-coded profiles used, in the same order
// — per barrier site, threads ascending, steps in listing order — so a
// spec transcribed from a builder function reproduces its op stream byte
// for byte: PCs, sync IDs and build-time rng draws all land identically.
func FromSpec(sp *scenario.Spec, threads int, scale float64, seed int64) (*Program, error) {
	c, err := sp.Compile()
	if err != nil {
		return nil, err
	}
	b := NewBuilder(sp.Name, threads, seed)
	m := &specMachine{
		b:       b,
		bars:    b.Barriers(sp.Barriers),
		locks:   b.Locks(sp.Locks),
		cursors: make([]int, threads),
	}
	if err := c.Emit(threads, scale, b.Rng(), m); err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	return b.Finish(sp.Barriers, sp.Locks), nil
}

// specMachine adapts the scenario walk onto the op-stream Builder. Private
// cursors persist across epochs, like the cur slice the profile closures
// hoisted out of their iteration loops.
type specMachine struct {
	b       *Builder
	bars    []uint64
	locks   []int
	cursors []int
}

func (m *specMachine) Barrier(site int) { m.b.Bar(m.bars[site]) }

func (m *specMachine) Produce(tid, region, to, lines, count int) {
	m.b.Thread(tid).Produce(region, to, lines, count)
}

func (m *specMachine) Consume(tid, region, from, lines, count int) {
	m.b.Thread(tid).Consume(region, from, lines, count)
}

func (m *specMachine) CS(tid, lock, region, lines, count int) {
	m.b.Thread(tid).CS(m.locks[lock], region, lines, count)
}

func (m *specMachine) Private(tid, count, ws int) {
	m.b.Thread(tid).Private(count, ws, &m.cursors[tid])
}

func (m *specMachine) Compute(tid, cycles int) {
	m.b.Thread(tid).Compute(cycles)
}
