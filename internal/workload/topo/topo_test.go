package topo

import "testing"

func TestScaleIters(t *testing.T) {
	for _, tc := range []struct {
		iters int
		scale float64
		want  int
	}{
		{28, 1.0, 28},
		{28, 0.5, 14},
		{37, 0.25, 9},   // 9.25 rounds down
		{26, 0.05, 2},   // 1.3 clamps to the floor
		{3, 0.05, 2},    // sub-floor result clamps
		{2, 1.0, 2},     //
		{10, 0.05, 2},   // 0.5 rounds to 1, clamps to 2
		{95, 0.05, 5},   // 4.75 rounds to 5
		{420, 0.05, 21}, //
		{1, 10.0, 10},   // scaling up
	} {
		if got := ScaleIters(tc.iters, tc.scale); got != tc.want {
			t.Errorf("ScaleIters(%d, %g) = %d, want %d", tc.iters, tc.scale, got, tc.want)
		}
	}
}

func TestRingNeighbors(t *testing.T) {
	for _, tc := range []struct {
		i, n, east, west int
	}{
		{0, 4, 1, 3},  // west wraps around
		{3, 4, 0, 2},  // east wraps around
		{0, 1, 0, 0},  // single thread: self-loop
		{7, 16, 8, 6}, // interior
		{15, 16, 0, 14},
	} {
		if got := East(tc.i, tc.n); got != tc.east {
			t.Errorf("East(%d, %d) = %d, want %d", tc.i, tc.n, got, tc.east)
		}
		if got := West(tc.i, tc.n); got != tc.west {
			t.Errorf("West(%d, %d) = %d, want %d", tc.i, tc.n, got, tc.west)
		}
	}
	// East and West invert each other across a full ring.
	const n = 16
	for i := 0; i < n; i++ {
		if West(East(i, n), n) != i {
			t.Errorf("West(East(%d)) != %d", i, i)
		}
	}
}

func TestTreeEdges(t *testing.T) {
	// Root: parent of 0 is 0 (truncating division), not -1.
	if got := Parent(0); got != 0 {
		t.Errorf("Parent(0) = %d, want 0", got)
	}
	for _, tc := range []struct{ i, parent int }{
		{1, 0}, {2, 0}, {3, 1}, {4, 1}, {5, 2}, {6, 2}, {14, 6}, {15, 7},
	} {
		if got := Parent(tc.i); got != tc.parent {
			t.Errorf("Parent(%d) = %d, want %d", tc.i, got, tc.parent)
		}
	}
	// Interior children are the inverse of Parent.
	const n = 16
	for i := 0; i < n; i++ {
		for k := 0; k < 2; k++ {
			c := Child(i, k, n)
			if c < 0 || c >= n {
				t.Fatalf("Child(%d,%d,%d) = %d out of range", i, k, n, c)
			}
			if raw := 2*i + 1 + k; raw < n && Parent(c) != i {
				t.Errorf("Parent(Child(%d,%d)) = %d, want %d", i, k, Parent(c), i)
			}
		}
	}
	// Leaf children wrap back into range via modulo.
	if got := Child(8, 0, 16); got != (2*8+1)%16 {
		t.Errorf("leaf Child(8,0,16) = %d, want %d", got, (2*8+1)%16)
	}
	if got := Child(15, 1, 16); got != (2*15+2)%16 {
		t.Errorf("leaf Child(15,1,16) = %d, want %d", got, (2*15+2)%16)
	}
}
