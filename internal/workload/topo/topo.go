// Package topo holds the small thread-topology and scaling helpers shared
// by the workload profiles and the declarative scenario layer: ring
// neighbors, binary-tree edges and the iteration-count scaling rule. They
// are pure integer functions with Go arithmetic semantics (truncating
// division), so spec-driven and Go-coded workloads compute identical
// targets.
package topo

// ScaleIters scales a profile's base iteration count by the workload scale
// factor, rounding to nearest and clamping to a floor of 2 so even tiny
// scales produce a program with at least one produce/consume round trip.
func ScaleIters(iters int, scale float64) int {
	n := int(float64(iters)*scale + 0.5)
	if n < 2 {
		n = 2
	}
	return n
}

// East returns i's clockwise ring neighbor among n threads.
func East(i, n int) int { return (i + 1) % n }

// West returns i's counter-clockwise ring neighbor among n threads.
func West(i, n int) int { return (i - 1 + n) % n }

// Parent returns i's parent in the implicit binary tree rooted at 0. The
// root's parent is itself (Go's truncating division: (0-1)/2 == 0).
func Parent(i int) int { return (i - 1) / 2 }

// Child returns i's k-th child (k = 0 or 1) in the implicit binary tree
// over n threads, wrapping children past the leaf boundary back into
// range so every thread always has two in-range "children" to exchange
// with.
func Child(i, k, n int) int {
	c := 2*i + 1 + k
	if c >= n {
		c = c % n
	}
	return c
}
