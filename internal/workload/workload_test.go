package workload

import (
	"testing"

	"spcoh/internal/arch"
)

func TestAddressLayoutDisjoint(t *testing.T) {
	// Private, shared, lock and barrier spaces must never collide.
	addrs := []arch.Addr{
		PrivateAddr(0, 0), PrivateAddr(15, 1<<20),
		SharedAddr(0, 0), SharedAddr(7, 1<<20),
		LockAddr(0), LockAddr(63),
		BarrierAddr(0), BarrierAddr(99),
	}
	spaces := []arch.Addr{privateBase, privateBase, sharedBase, sharedBase, lockBase, lockBase, barrierBase, barrierBase}
	for i, a := range addrs {
		if a < spaces[i] || a >= spaces[i]+0x1000_0000_0000 {
			t.Fatalf("address %#x escaped its space %#x", uint64(a), uint64(spaces[i]))
		}
	}
	if PrivateAddr(0, 0) == PrivateAddr(1, 0) {
		t.Fatal("threads share private space")
	}
	if LockAddr(1).Line() == LockAddr(2).Line() {
		t.Fatal("locks share a cache line")
	}
}

func TestSliceAddrOwnership(t *testing.T) {
	a := SliceAddr(0, 2, 16, 5)
	bAddr := SliceAddr(0, 3, 16, 5)
	if a == bAddr {
		t.Fatal("different owners share slice lines")
	}
	// Cycling within the slice.
	if SliceAddr(0, 2, 16, 5) != SliceAddr(0, 2, 16, 21) {
		t.Fatal("slice indexing should wrap at sliceLines")
	}
}

func TestBuilderStaticIdentity(t *testing.T) {
	b := NewBuilder("x", 2, 1)
	bars := b.Barriers(1)
	for it := 0; it < 3; it++ {
		b.Bar(bars[0])
		b.ForAll(func(tb *T) {
			tb.ReadSlice(0, 0, 4, 3)
			tb.WriteSlice(0, 1, 4, 2)
		})
	}
	p := b.Finish(1, 0)
	ops := p.Threads[0]
	// Collect PCs of reads in each instance; must be identical across
	// instances (static identity).
	var instances [][]uint64
	var cur []uint64
	for _, op := range ops {
		switch op.Kind {
		case OpBarrier:
			if cur != nil {
				instances = append(instances, cur)
			}
			cur = []uint64{}
		case OpRead, OpWrite:
			cur = append(cur, op.PC)
		}
	}
	instances = append(instances, cur)
	if len(instances) != 3 {
		t.Fatalf("instances = %d", len(instances))
	}
	for i := 1; i < 3; i++ {
		if len(instances[i]) != len(instances[0]) {
			t.Fatalf("instance %d has %d ops, want %d", i, len(instances[i]), len(instances[0]))
		}
		for k := range instances[i] {
			if instances[i][k] != instances[0][k] {
				t.Fatalf("PC differs across instances at op %d", k)
			}
		}
	}
	// One static PC per helper call site: 3 reads share one PC.
	if instances[0][0] != instances[0][1] || instances[0][0] == instances[0][3] {
		t.Fatalf("helper PC assignment wrong: %v", instances[0])
	}
}

func TestCSStructure(t *testing.T) {
	b := NewBuilder("x", 1, 1)
	bars := b.Barriers(1)
	b.Bar(bars[0])
	b.ForAll(func(tb *T) { tb.CS(3, 0, 4, 6) })
	p := b.Finish(1, 1)
	ops := p.Threads[0]
	// barrier, lock, 6 accesses, unlock, end
	if ops[1].Kind != OpLock || ops[1].Addr != LockAddr(3) {
		t.Fatalf("ops[1] = %+v", ops[1])
	}
	if ops[8].Kind != OpUnlock {
		t.Fatalf("ops[8] = %+v", ops[8])
	}
	if ops[1].Sync != uint64(LockAddr(3)) {
		t.Fatal("lock static ID should be the lock address")
	}
	reads, writes := 0, 0
	for _, op := range ops[2:8] {
		switch op.Kind {
		case OpRead:
			reads++
		case OpWrite:
			writes++
		}
	}
	if reads != 3 || writes != 3 {
		t.Fatalf("CS mix = %d reads %d writes", reads, writes)
	}
}

func TestAllProfilesBuild(t *testing.T) {
	if len(Names()) != 17 {
		t.Fatalf("expected 17 benchmarks, have %d", len(Names()))
	}
	for _, name := range Names() {
		p, err := ByName(name)
		if err != nil {
			t.Fatalf("missing profile %s", name)
		}
		prog := p.Build(16, 0.05, 42)
		if prog.NumThreads() != 16 {
			t.Fatalf("%s: threads = %d", name, prog.NumThreads())
		}
		if prog.TotalOps() < 16*50 {
			t.Fatalf("%s: implausibly small (%d ops)", name, prog.TotalOps())
		}
		for tid, ops := range prog.Threads {
			if ops[len(ops)-1].Kind != OpEnd {
				t.Fatalf("%s thread %d: missing OpEnd", name, tid)
			}
			depth := 0
			for _, op := range ops {
				switch op.Kind {
				case OpLock:
					depth++
					if depth > 1 {
						t.Fatalf("%s: nested locks", name)
					}
				case OpUnlock:
					depth--
					if depth < 0 {
						t.Fatalf("%s: unlock without lock", name)
					}
				case OpBarrier:
					if depth != 0 {
						t.Fatalf("%s: barrier inside critical section", name)
					}
				}
			}
			if depth != 0 {
				t.Fatalf("%s thread %d: unbalanced locks", name, tid)
			}
		}
	}
}

func TestProfilesSPMDBarriers(t *testing.T) {
	// All threads must execute the same barrier sequence or the runtime
	// deadlocks.
	for _, name := range Names() {
		p, _ := ByName(name)
		prog := p.Build(8, 0.05, 1)
		var ref []uint64
		for tid, ops := range prog.Threads {
			var seq []uint64
			for _, op := range ops {
				if op.Kind == OpBarrier {
					seq = append(seq, op.Sync)
				}
			}
			if tid == 0 {
				ref = seq
				continue
			}
			if len(seq) != len(ref) {
				t.Fatalf("%s: thread %d barrier count %d != %d", name, tid, len(seq), len(ref))
			}
			for i := range seq {
				if seq[i] != ref[i] {
					t.Fatalf("%s: thread %d diverges at barrier %d", name, tid, i)
				}
			}
		}
	}
}

func TestScaleChangesSize(t *testing.T) {
	p, _ := ByName("ocean")
	small := p.Build(4, 0.05, 1).TotalOps()
	large := p.Build(4, 0.5, 1).TotalOps()
	if large <= small {
		t.Fatalf("scale should grow the program: %d vs %d", small, large)
	}
}

func TestDeterministicBuild(t *testing.T) {
	p, _ := ByName("radiosity") // uses build-time randomness
	a := p.Build(4, 0.05, 7)
	b := p.Build(4, 0.05, 7)
	if a.TotalOps() != b.TotalOps() {
		t.Fatal("same seed must build identical programs")
	}
	for tid := range a.Threads {
		for i := range a.Threads[tid] {
			if a.Threads[tid][i] != b.Threads[tid][i] {
				t.Fatalf("op %d of thread %d differs", i, tid)
			}
		}
	}
	c := p.Build(4, 0.05, 8)
	same := true
	for tid := range a.Threads {
		if len(a.Threads[tid]) != len(c.Threads[tid]) {
			same = false
			break
		}
		for i := range a.Threads[tid] {
			if a.Threads[tid][i] != c.Threads[tid][i] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds should differ for randomized profiles")
	}
}

func TestRegistryComplete(t *testing.T) {
	r := Builtin()
	if len(r.Names()) != len(Names()) {
		t.Fatalf("registry (%d) and Names (%d) out of sync", len(r.Names()), len(Names()))
	}
	for _, name := range Names() {
		p, ok := r.Lookup(name)
		if !ok {
			t.Fatalf("registry missing %q", name)
		}
		if p.Spec == nil || p.Spec.Name != name {
			t.Fatalf("%q: bad spec binding", name)
		}
		if p.Paper.DynEpochs == 0 {
			t.Fatalf("%q: missing paper reference stats", name)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown benchmark should error")
	}
}

func TestRegistryRejects(t *testing.T) {
	r := NewRegistry()
	p, err := ByName("ocean")
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Register(p); err != nil {
		t.Fatalf("first register: %v", err)
	}
	if err := r.Register(p); err == nil {
		t.Fatal("duplicate register should error")
	}
	if err := r.Register(Profile{Name: "nospec"}); err == nil {
		t.Fatal("nil spec should error")
	}
	bad := *p.Spec
	bad.Name = "other"
	if err := r.Register(Profile{Name: "mismatch", Spec: &bad}); err == nil {
		t.Fatal("name/spec mismatch should error")
	}
	if got := r.Names(); len(got) != 1 || got[0] != "ocean" {
		t.Fatalf("registration order = %v", got)
	}
}
