package workload

import (
	"fmt"

	"spcoh/internal/detutil"
)

// Profile describes one benchmark stand-in: its builder plus the paper's
// Table 1 reference statistics for side-by-side reporting.
type Profile struct {
	Name  string
	Suite string // "splash2" or "parsec"
	Build func(threads int, scale float64, seed int64) *Program

	// Paper Table 1 reference values (per-core averages).
	PaperStaticCS     int
	PaperStaticEpochs int
	PaperDynEpochs    int
	PaperInput        string
}

var registry = map[string]Profile{}

func register(p Profile) { registry[p.Name] = p }

// Names returns all benchmark names in the paper's presentation order.
func Names() []string {
	return []string{
		"fmm", "lu", "ocean", "radiosity", "water-ns", "cholesky", "fft",
		"radix", "water-sp", "bodytrack", "fluidanimate", "streamcluster",
		"vips", "facesim", "ferret", "dedup", "x264",
	}
}

// ByName returns a registered profile.
func ByName(name string) (Profile, error) {
	p, ok := registry[name]
	if !ok {
		return Profile{}, fmt.Errorf("workload: unknown benchmark %q", name)
	}
	return p, nil
}

// All returns every profile in presentation order.
func All() []Profile {
	out := make([]Profile, 0, len(registry))
	for _, n := range Names() {
		out = append(out, registry[n])
	}
	return out
}

// sortedNames is a test aid: registry keys sorted.
func sortedNames() []string {
	return detutil.SortedKeys(registry)
}

func scaleIters(iters int, scale float64) int {
	n := int(float64(iters)*scale + 0.5)
	if n < 2 {
		n = 2
	}
	return n
}

func east(i, n int) int { return (i + 1) % n }
func west(i, n int) int { return (i - 1 + n) % n }
func parent(i int) int  { return (i - 1) / 2 }
func child(i, k, n int) int {
	c := 2*i + 1 + k
	if c >= n {
		c = c % n
	}
	return c
}

// The profiles below follow a common discipline: production (writes) and
// consumption (reads) of the same shared lines happen in *different*
// barrier epochs, as in double-buffered parallel codes. This makes the
// communication of each static epoch deterministic: a produce epoch's hot
// set is the consumers it invalidates, a consume epoch's hot set is its
// single producer. Placing both in one epoch would race thread skew and
// turn half the reads into stale hits.

// phase maps a barrier index to produce (true) / consume (false).
func produceOn(j int) bool { return j%2 == 0 }

// produceAll writes one partition for every consumer (hot-spot producers:
// panel owners, coordinators).
func produceAll(t *T, region, partLines, n int) {
	for c := 0; c < n; c++ {
		t.Produce(region, c, partLines, partLines)
	}
}

// ---------------------------------------------------------------------------
// SPLASH-2 stand-ins
// ---------------------------------------------------------------------------

func init() {
	// fmm: adaptive N-body; tree-structured upward/downward passes (the
	// paper's motivating example, §2) plus list locks. Communicating
	// fraction moderate (Fig. 1: ~45%).
	register(Profile{
		Name: "fmm", Suite: "splash2",
		PaperStaticCS: 30, PaperStaticEpochs: 20, PaperDynEpochs: 2789, PaperInput: "16K (particles)",
		Build: func(n int, scale float64, seed int64) *Program {
			b := NewBuilder("fmm", n, seed)
			bars := b.Barriers(20)
			locks := b.Locks(30)
			iters := scaleIters(28, scale)
			cur := make([]int, n)
			for it := 0; it < iters; it++ {
				for j, id := range bars {
					b.Bar(id)
					b.ForAll(func(t *T) {
						i := t.Tid()
						switch {
						case j < 8: // upward pass (paper example interval B)
							if produceOn(j) {
								t.Produce(0, parent(i), 4, 4) // push multipoles up
							} else {
								t.Consume(0, child(i, 0, n), 4, 5)
								t.Consume(0, child(i, 1, n), 4, 5)
							}
						case j < 16: // downward pass (interval A: parent + sibling)
							if produceOn(j) {
								t.Produce(1, child(i, 0, n), 4, 4)
								t.Produce(1, child(i, 1, n), 4, 4)
							} else {
								t.Consume(1, parent(i), 4, 5)
								t.Consume(1, east(parent(i), n), 4, 3)
							}
						default: // force evaluation with list locks
							if produceOn(j) {
								t.Produce(2, west(i, n), 4, 4)
							} else {
								t.Consume(2, east(i, n), 4, 6)
							}
							t.CS(locks[(i+j*7+1)%len(locks)], 3, 4, 8)
						}
						t.Private(6, 1<<20, &cur[i])
						t.Compute(300)
					})
				}
			}
			return b.Finish(20, 30)
		},
	})

	// lu: blocked dense LU; the panel owner produces for everyone, so the
	// consume epoch's hot set is {owner}. Small communicating fraction
	// (Fig. 1: ~25%) — private trailing updates dominate.
	register(Profile{
		Name: "lu", Suite: "splash2",
		PaperStaticCS: 7, PaperStaticEpochs: 5, PaperDynEpochs: 185, PaperInput: "521 (matrix)",
		Build: func(n int, scale float64, seed int64) *Program {
			b := NewBuilder("lu", n, seed)
			bars := b.Barriers(5)
			locks := b.Locks(7)
			iters := scaleIters(37, scale)
			cur := make([]int, n)
			for it := 0; it < iters; it++ {
				owner := (it / 4) % n // a panel spans several iterations
				for j, id := range bars {
					b.Bar(id)
					b.ForAll(func(t *T) {
						i := t.Tid()
						switch {
						case j == 0 && i == owner:
							produceAll(t, 0, 4, n) // factor + publish panel
						case j == 1 && i != owner:
							t.Consume(0, owner, 4, 6) // consume pivot rows
						case j == 4:
							t.CS(locks[(i+it)%len(locks)], 1, 2, 4) // pivot bookkeeping
						}
						t.Private(6, 1<<20, &cur[i])
						t.Compute(800)
					})
				}
			}
			return b.Finish(5, 7)
		},
	})

	// ocean: stencil sweeps whose exchange distance alternates between
	// iterations (red-black) — the stride-2 repetitive hot-set pattern of
	// Figure 6(c). Communicating fraction ~60%.
	register(Profile{
		Name: "ocean", Suite: "splash2",
		PaperStaticCS: 28, PaperStaticEpochs: 20, PaperDynEpochs: 2685, PaperInput: "258 (grid)",
		Build: func(n int, scale float64, seed int64) *Program {
			b := NewBuilder("ocean", n, seed)
			bars := b.Barriers(20)
			locks := b.Locks(28)
			iters := scaleIters(26, scale)
			cur := make([]int, n)
			for it := 0; it < iters; it++ {
				d := 1 + it%2 // alternating exchange distance
				for j, id := range bars {
					b.Bar(id)
					b.ForAll(func(t *T) {
						i := t.Tid()
						if produceOn(j) {
							t.Produce(0, (i+d)%n, 8, 8)
						} else {
							t.Consume(0, (i+n-d)%n, 8, 12)
						}
						if j == 19 {
							t.CS(locks[(i+it*3)%len(locks)], 1, 2, 4) // error reduction
						}
						t.Private(7, 1<<20, &cur[i])
						t.Compute(250)
					})
				}
			}
			return b.Finish(20, 28)
		},
	})

	// radiosity: task stealing from random victims: the random hot-set
	// pattern of Figure 6(d), plus heavy locking. Communicating ~70%.
	register(Profile{
		Name: "radiosity", Suite: "splash2",
		PaperStaticCS: 34, PaperStaticEpochs: 12, PaperDynEpochs: 17637, PaperInput: "room",
		Build: func(n int, scale float64, seed int64) *Program {
			b := NewBuilder("radiosity", n, seed)
			bars := b.Barriers(12)
			locks := b.Locks(34)
			iters := scaleIters(95, scale)
			cur := make([]int, n)
			for it := 0; it < iters; it++ {
				for j, id := range bars {
					b.Bar(id)
					b.ForAll(func(t *T) {
						i := t.Tid()
						if produceOn(j) {
							produceAll(t, 0, 1, n) // publish stealable tasks
						} else {
							t.Consume(0, b.Rng().Intn(n), 1, 2) // steal from a random victim
							t.Consume(0, b.Rng().Intn(n), 1, 2)
						}
						t.CS(locks[(i*3+j)%len(locks)], 2, 4, 6)
						t.Private(5, 1<<20, &cur[i])
						t.Compute(200)
					})
				}
			}
			return b.Finish(12, 34)
		},
	})

	// water-ns: molecular dynamics with per-molecule fine-grain locking
	// and stable neighbor force exchange. Communicating ~70%.
	register(Profile{
		Name: "water-ns", Suite: "splash2",
		PaperStaticCS: 20, PaperStaticEpochs: 8, PaperDynEpochs: 1224, PaperInput: "512 (mol.)",
		Build: func(n int, scale float64, seed int64) *Program {
			b := NewBuilder("water-ns", n, seed)
			bars := b.Barriers(8)
			locks := b.Locks(20)
			iters := scaleIters(60, scale)
			cur := make([]int, n)
			for it := 0; it < iters; it++ {
				for j, id := range bars {
					b.Bar(id)
					b.ForAll(func(t *T) {
						i := t.Tid()
						if produceOn(j) {
							t.Produce(0, west(i, n), 6, 6)
						} else {
							t.Consume(0, east(i, n), 6, 9)
						}
						t.CS(locks[(i+2*j)%len(locks)], 2, 4, 8)
						t.CS(locks[(i+2*j+1)%len(locks)], 2, 4, 8)
						t.Private(7, 1<<20, &cur[i])
						t.Compute(300)
					})
				}
			}
			return b.Finish(8, 20)
		},
	})

	// cholesky: supernodal factorization over a task queue: the producer
	// relationship drifts slowly (semi-random), with queue locks.
	// Communicating ~50%.
	register(Profile{
		Name: "cholesky", Suite: "splash2",
		PaperStaticCS: 28, PaperStaticEpochs: 27, PaperDynEpochs: 1998, PaperInput: "tk15.O",
		Build: func(n int, scale float64, seed int64) *Program {
			b := NewBuilder("cholesky", n, seed)
			bars := b.Barriers(27)
			locks := b.Locks(28)
			iters := scaleIters(8, scale)
			cur := make([]int, n)
			for it := 0; it < iters; it++ {
				for j, id := range bars {
					b.Bar(id)
					b.ForAll(func(t *T) {
						i := t.Tid()
						k := 1 + (j/2+it)%2 // drifting supernode distance
						if produceOn(j) {
							t.Produce(0, (i+k)%n, 5, 5)
						} else {
							t.Consume(0, (i+n-k)%n, 5, 7)
						}
						t.CS(locks[(i+j)%len(locks)], 2, 4, 6)
						t.Private(12, 1<<20, &cur[i])
						t.Compute(400)
					})
				}
			}
			return b.Finish(27, 28)
		},
	})

	// fft: six-step FFT with all-to-all transposes; epochs execute a
	// handful of times, so only within-interval (d=0) prediction applies
	// for most misses. Communicating ~45%.
	register(Profile{
		Name: "fft", Suite: "splash2",
		PaperStaticCS: 8, PaperStaticEpochs: 8, PaperDynEpochs: 22, PaperInput: "256K (points)",
		Build: func(n int, scale float64, seed int64) *Program {
			b := NewBuilder("fft", n, seed)
			bars := b.Barriers(8)
			locks := b.Locks(8)
			iters := scaleIters(3, scale)
			cur := make([]int, n)
			for it := 0; it < iters; it++ {
				for j, id := range bars {
					b.Bar(id)
					b.ForAll(func(t *T) {
						i := t.Tid()
						switch j % 4 {
						case 1: // publish stripes
							produceAll(t, 0, 2, n)
						case 2: // blocked transpose: nearby stripes carry
							// most of the volume, so the hot set is the
							// close neighborhood rather than all 15 peers
							for k := 1; k <= 8; k++ {
								cnt := 1
								if k <= 4 {
									cnt = 3
								}
								t.Consume(0, (i+k)%n, 2, cnt)
							}
						default: // local butterfly stage
							t.Private(18, 1<<20, &cur[i])
							if j == 7 {
								t.CS(locks[(i+it)%len(locks)], 1, 2, 4)
							}
						}
						t.Compute(500)
					})
				}
			}
			return b.Finish(8, 8)
		},
	})

	// radix: radix sort; scattered permutation writes and a tiny
	// communicating fraction (Fig. 1: ~20%).
	register(Profile{
		Name: "radix", Suite: "splash2",
		PaperStaticCS: 8, PaperStaticEpochs: 4, PaperDynEpochs: 35, PaperInput: "4M (keys)",
		Build: func(n int, scale float64, seed int64) *Program {
			b := NewBuilder("radix", n, seed)
			bars := b.Barriers(4)
			locks := b.Locks(8)
			iters := scaleIters(9, scale)
			cur := make([]int, n)
			for it := 0; it < iters; it++ {
				for j, id := range bars {
					b.Bar(id)
					b.ForAll(func(t *T) {
						i := t.Tid()
						switch j {
						case 1: // publish histogram/permuted keys
							produceAll(t, 0, 2, n)
						case 2: // read ranks from the digit buckets this
							// thread's keys map to (fixed per pass)
							t.Consume(0, (i+1)%n, 2, 3)
							t.Consume(0, (i+5)%n, 2, 3)
						case 3: // global offset accumulation
							t.CS(locks[(i+it)%len(locks)], 1, 2, 4)
						}
						t.Private(16, 1<<20, &cur[i])
						t.Compute(600)
					})
				}
			}
			return b.Finish(4, 8)
		},
	})

	// water-sp: spatial water; one static epoch dominates. Produce and
	// consume alternate across dynamic instances of the *same* static
	// epoch, so its hot set alternates {west}/{east} — exercising the
	// stride-2 policy. High communicating fraction (~75%).
	register(Profile{
		Name: "water-sp", Suite: "splash2",
		PaperStaticCS: 17, PaperStaticEpochs: 1, PaperDynEpochs: 83, PaperInput: "512 (mol.)",
		Build: func(n int, scale float64, seed int64) *Program {
			b := NewBuilder("water-sp", n, seed)
			bars := b.Barriers(1)
			locks := b.Locks(17)
			iters := scaleIters(42, scale)
			cur := make([]int, n)
			for it := 0; it < iters; it++ {
				b.Bar(bars[0])
				b.ForAll(func(t *T) {
					i := t.Tid()
					if it%2 == 0 {
						t.Produce(0, west(i, n), 8, 8)
					} else {
						t.Consume(0, east(i, n), 8, 12)
					}
					t.CS(locks[(i+it)%len(locks)], 1, 4, 8)
					t.Private(6, 1<<20, &cur[i])
					t.Compute(400)
				})
			}
			return b.Finish(1, 17)
		},
	})
}

// ---------------------------------------------------------------------------
// PARSEC stand-ins
// ---------------------------------------------------------------------------

func init() {
	// bodytrack: staged particle-filter tracker (the paper's Figure 2
	// subject): per stage a distinct, stable hot target. Communicating
	// ~65%.
	register(Profile{
		Name: "bodytrack", Suite: "parsec",
		PaperStaticCS: 16, PaperStaticEpochs: 20, PaperDynEpochs: 456, PaperInput: "simsmall",
		Build: func(n int, scale float64, seed int64) *Program {
			b := NewBuilder("bodytrack", n, seed)
			bars := b.Barriers(20)
			locks := b.Locks(16)
			iters := scaleIters(23, scale)
			cur := make([]int, n)
			for it := 0; it < iters; it++ {
				for j, id := range bars {
					b.Bar(id)
					b.ForAll(func(t *T) {
						i := t.Tid()
						switch {
						case j < 6: // image processing: per-stage frame producer
							prod := (j/2 + 5) % n
							if produceOn(j) {
								if i == prod {
									produceAll(t, 0, 2, n)
								}
							} else if i != prod {
								t.Consume(0, prod, 2, 3)
							}
						case j < 12: // particle weighting: neighbor exchange
							if produceOn(j) {
								t.Produce(1, east(i, n), 4, 4)
							} else {
								t.Consume(1, west(i, n), 4, 6)
							}
						case j < 16: // resampling via the work-pool locks
							t.CS(locks[(i+j)%len(locks)], 2, 4, 8)
							if !produceOn(j) {
								t.Consume(1, west(i, n), 4, 3)
							}
						default: // model update: root publishes the estimate
							if produceOn(j) {
								if i == 0 {
									produceAll(t, 3, 2, n)
								}
							} else if i != 0 {
								t.Consume(3, 0, 2, 3)
							}
						}
						t.Private(2, 1<<20, &cur[i])
						t.Compute(250)
					})
				}
			}
			return b.Finish(20, 16)
		},
	})

	// fluidanimate: grid-partitioned fluid with per-cell fine-grain locks
	// and stable face-neighbor exchange. Communicating ~55%.
	register(Profile{
		Name: "fluidanimate", Suite: "parsec",
		PaperStaticCS: 11, PaperStaticEpochs: 20, PaperDynEpochs: 8991, PaperInput: "simsmall",
		Build: func(n int, scale float64, seed int64) *Program {
			b := NewBuilder("fluidanimate", n, seed)
			bars := b.Barriers(20)
			locks := b.Locks(11)
			iters := scaleIters(55, scale)
			cur := make([]int, n)
			for it := 0; it < iters; it++ {
				for j, id := range bars {
					b.Bar(id)
					b.ForAll(func(t *T) {
						i := t.Tid()
						if produceOn(j) {
							t.Produce(0, west(i, n), 4, 4)
						} else {
							t.Consume(0, east(i, n), 4, 6)
						}
						t.CS(locks[(i+j)%len(locks)], 1, 4, 6)
						t.CS(locks[(i+j+5)%len(locks)], 1, 4, 6)
						t.Private(7, 1<<20, &cur[i])
						t.Compute(200)
					})
				}
			}
			return b.Finish(20, 11)
		},
	})

	// streamcluster: repeated distance sweeps against a center set owned
	// by a slowly-rotating coordinator: extremely repetitive with a very
	// high communicating fraction (Fig. 1: ~90%).
	register(Profile{
		Name: "streamcluster", Suite: "parsec",
		PaperStaticCS: 1, PaperStaticEpochs: 24, PaperDynEpochs: 11454, PaperInput: "simsmall",
		Build: func(n int, scale float64, seed int64) *Program {
			b := NewBuilder("streamcluster", n, seed)
			bars := b.Barriers(24)
			locks := b.Locks(1)
			iters := scaleIters(60, scale)
			cur := make([]int, n)
			for it := 0; it < iters; it++ {
				coord := (it / 4) % n // coordinator rotates slowly
				for j, id := range bars {
					b.Bar(id)
					b.ForAll(func(t *T) {
						i := t.Tid()
						if produceOn(j) {
							if i == coord {
								produceAll(t, 0, 2, n) // refresh the center set
							} else {
								t.Produce(1, east(i, n), 4, 4)
							}
						} else {
							if i != coord {
								t.Consume(0, coord, 2, 3)
							}
							t.Consume(1, west(i, n), 4, 6)
						}
						if j == 11 {
							t.CS(locks[0], 2, 4, 6) // global cost accumulation
						}
						t.Private(1, 1<<20, &cur[i])
						t.Compute(150)
					})
				}
			}
			return b.Finish(24, 1)
		},
	})

	// vips: image pipeline; each stage consumes the previous stage's
	// output stripes. Communicating ~65%.
	register(Profile{
		Name: "vips", Suite: "parsec",
		PaperStaticCS: 14, PaperStaticEpochs: 8, PaperDynEpochs: 419, PaperInput: "simsmall",
		Build: func(n int, scale float64, seed int64) *Program {
			b := NewBuilder("vips", n, seed)
			bars := b.Barriers(8)
			locks := b.Locks(14)
			iters := scaleIters(26, scale)
			cur := make([]int, n)
			for it := 0; it < iters; it++ {
				for j, id := range bars {
					b.Bar(id)
					b.ForAll(func(t *T) {
						i := t.Tid()
						if produceOn(j) {
							t.Produce(0, east(i, n), 6, 6)
						} else {
							t.Consume(0, west(i, n), 6, 9)
						}
						if j%4 == 3 {
							t.CS(locks[(i+j)%len(locks)], 1, 4, 6)
						}
						t.Private(5, 1<<20, &cur[i])
						t.Compute(300)
					})
				}
			}
			return b.Finish(8, 14)
		},
	})

	// facesim: partitioned mesh solve: stable partition-neighbor exchange,
	// few sync sites replayed many times. Communicating ~60%.
	register(Profile{
		Name: "facesim", Suite: "parsec",
		PaperStaticCS: 2, PaperStaticEpochs: 3, PaperDynEpochs: 3826, PaperInput: "simsmall",
		Build: func(n int, scale float64, seed int64) *Program {
			b := NewBuilder("facesim", n, seed)
			bars := b.Barriers(3)
			locks := b.Locks(2)
			iters := scaleIters(420, scale)
			cur := make([]int, n)
			for it := 0; it < iters; it++ {
				for j, id := range bars {
					b.Bar(id)
					b.ForAll(func(t *T) {
						i := t.Tid()
						switch j {
						case 0:
							t.Produce(0, east(i, n), 5, 5)
						case 1:
							t.Consume(0, west(i, n), 5, 7)
						default:
							if i%4 == 0 {
								t.CS(locks[(i/4)%2], 1, 4, 6)
							}
						}
						t.Private(5, 1<<20, &cur[i])
						t.Compute(220)
					})
				}
			}
			return b.Finish(3, 2)
		},
	})

	// ferret: similarity-search pipeline; few epochs, stage queues behind
	// locks. Communicating ~70%.
	register(Profile{
		Name: "ferret", Suite: "parsec",
		PaperStaticCS: 4, PaperStaticEpochs: 6, PaperDynEpochs: 25, PaperInput: "simsmall",
		Build: func(n int, scale float64, seed int64) *Program {
			b := NewBuilder("ferret", n, seed)
			bars := b.Barriers(6)
			locks := b.Locks(4)
			iters := scaleIters(4, scale)
			cur := make([]int, n)
			for it := 0; it < iters; it++ {
				for j, id := range bars {
					b.Bar(id)
					b.ForAll(func(t *T) {
						i := t.Tid()
						stage := j % 3
						if produceOn(j) {
							t.Produce(stage, east(i, n), 6, 6)
						} else {
							t.Consume(stage, west(i, n), 6, 9)
						}
						t.CS(locks[j%len(locks)], 5, 4, 6)
						t.Private(4, 1<<20, &cur[i])
						t.Compute(350)
					})
				}
			}
			return b.Finish(6, 4)
		},
	})

	// dedup: dedup pipeline with a global hash table: bucket access is
	// essentially random, so communication is migratory and widely
	// shared. Communicating ~80%.
	register(Profile{
		Name: "dedup", Suite: "parsec",
		PaperStaticCS: 3, PaperStaticEpochs: 4, PaperDynEpochs: 508, PaperInput: "simsmall",
		Build: func(n int, scale float64, seed int64) *Program {
			b := NewBuilder("dedup", n, seed)
			bars := b.Barriers(4)
			locks := b.Locks(3)
			iters := scaleIters(64, scale)
			cur := make([]int, n)
			for it := 0; it < iters; it++ {
				for j, id := range bars {
					b.Bar(id)
					b.ForAll(func(t *T) {
						i := t.Tid()
						if produceOn(j) {
							t.Produce(0, east(i, n), 4, 4) // pipeline stripe
							produceAll(t, 1, 1, n)         // hash-bucket updates
						} else {
							t.Consume(0, west(i, n), 4, 6)
							t.Consume(1, b.Rng().Intn(n), 1, 2) // random bucket probes
						}
						t.CS(locks[j%len(locks)], 2, 4, 6)
						t.Private(3, 1<<20, &cur[i])
						t.Compute(250)
					})
				}
			}
			return b.Finish(4, 3)
		},
	})

	// x264: wavefront encoder: each row reads its upper neighbor's
	// reconstructed macroblocks; highly regular, highest communicating
	// fraction (Fig. 1: ~85%).
	register(Profile{
		Name: "x264", Suite: "parsec",
		PaperStaticCS: 2, PaperStaticEpochs: 3, PaperDynEpochs: 56, PaperInput: "simsmall",
		Build: func(n int, scale float64, seed int64) *Program {
			b := NewBuilder("x264", n, seed)
			bars := b.Barriers(3)
			locks := b.Locks(2)
			iters := scaleIters(10, scale)
			cur := make([]int, n)
			for it := 0; it < iters; it++ {
				for j, id := range bars {
					b.Bar(id)
					b.ForAll(func(t *T) {
						i := t.Tid()
						switch j {
						case 0: // reconstruct own row
							t.Produce(0, east(i, n), 8, 8)
						case 1: // reference the upper row
							t.Consume(0, west(i, n), 8, 12)
						default:
							t.CS(locks[i%2], 1, 4, 4)
						}
						t.Private(2, 1<<20, &cur[i])
						t.Compute(300)
					})
				}
			}
			return b.Finish(3, 2)
		},
	})
}
