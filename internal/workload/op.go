// Package workload generates the multithreaded programs that drive the
// simulator: per-thread operation streams with barriers, locks and shared-
// memory access patterns. It stands in for the paper's SPLASH-2 and PARSEC
// binaries (see DESIGN.md §1): each of the 17 named profiles reproduces the
// benchmark's synchronization structure (paper Table 1) and communication-
// pattern class (§3.4), while the actual coherence traffic is produced by
// the real protocol over real cache state.
package workload

import "spcoh/internal/arch"

// OpKind enumerates thread operations.
type OpKind uint8

const (
	OpRead OpKind = iota
	OpWrite
	OpCompute
	OpBarrier
	OpLock
	OpUnlock
	OpEnd
)

// String returns the op mnemonic.
func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpCompute:
		return "compute"
	case OpBarrier:
		return "barrier"
	case OpLock:
		return "lock"
	case OpUnlock:
		return "unlock"
	case OpEnd:
		return "end"
	default:
		return "?"
	}
}

// Op is one thread operation.
type Op struct {
	Kind OpKind
	Addr arch.Addr // memory target; lock line for lock/unlock
	N    uint32    // compute cycles (OpCompute)
	PC   uint64    // static instruction address (memory ops)
	Sync uint64    // static sync-point ID (barrier/lock/unlock)
}

// Address-space layout. Regions are widely separated so they never collide;
// the simulator only ever sees line addresses.
const (
	privateBase = arch.Addr(0x1000_0000_0000)
	sharedBase  = arch.Addr(0x2000_0000_0000)
	lockBase    = arch.Addr(0x3000_0000_0000)
	barrierBase = arch.Addr(0x4000_0000_0000)

	threadSpan = arch.Addr(1) << 32 // private bytes per thread
	regionSpan = arch.Addr(1) << 32 // bytes per shared region
)

// PrivateAddr returns the address of line `line` in a thread's private heap.
func PrivateAddr(tid, line int) arch.Addr {
	return privateBase + arch.Addr(tid)*threadSpan + arch.Addr(line)*arch.LineSize
}

// SharedAddr returns the address of line `line` in a shared region.
func SharedAddr(region, line int) arch.Addr {
	return sharedBase + arch.Addr(region)*regionSpan + arch.Addr(line)*arch.LineSize
}

// SliceAddr returns line `line` within the slice of a shared region owned
// by thread `owner`, where each thread's slice holds sliceLines lines.
func SliceAddr(region, owner, sliceLines, line int) arch.Addr {
	return SharedAddr(region, owner*sliceLines+line%sliceLines)
}

// LockAddr returns the cache line of lock `id`.
func LockAddr(id int) arch.Addr { return lockBase + arch.Addr(id)*arch.LineSize }

// BarrierAddr returns the cache line of barrier `id`'s arrival counter.
func BarrierAddr(id uint64) arch.Addr { return barrierBase + arch.Addr(id)*arch.LineSize }

// Program is a complete multithreaded workload.
type Program struct {
	Name    string
	Threads [][]Op

	// Static structure, for Table 1 reporting.
	StaticBarriers     int
	StaticCritSections int
}

// NumThreads returns the thread count.
func (p *Program) NumThreads() int { return len(p.Threads) }

// TotalOps returns the op count across threads.
func (p *Program) TotalOps() int {
	n := 0
	for _, t := range p.Threads {
		n += len(t)
	}
	return n
}
