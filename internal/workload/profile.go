package workload

import (
	"embed"
	"fmt"
	"sync"

	"spcoh/internal/scenario"
)

// Profile is one benchmark stand-in: a scenario spec plus presentation
// metadata. Profiles are pure data — building a program goes through the
// spec interpreter (FromSpec), so a profile and the spec file it came from
// are interchangeable.
type Profile struct {
	Name  string
	Suite string // "splash2" or "parsec"

	// Spec is the declarative scenario the profile builds from.
	Spec *scenario.Spec

	// Paper holds the source paper's Table 1 reference statistics.
	Paper scenario.PaperStats
}

// Build constructs the op-stream program at the given size. It panics on
// an internal error; built-in profiles are validated at registration, so
// this cannot fire for them.
//
// Deprecated: new call sites should use Program (the error-returning
// variant) or workload.FromSpec directly.
func (p Profile) Build(threads int, scale float64, seed int64) *Program {
	prog, err := p.Program(threads, scale, seed)
	if err != nil {
		panic("workload: " + p.Name + ": " + err.Error())
	}
	return prog
}

// Program constructs the op-stream program at the given size.
func (p Profile) Program(threads int, scale float64, seed int64) (*Program, error) {
	if p.Spec == nil {
		return nil, fmt.Errorf("profile %q has no spec", p.Name)
	}
	return FromSpec(p.Spec, threads, scale, seed)
}

// Registry is an explicit, order-preserving profile collection. Unlike the
// old init()-registered closure table there is no package-level mutation:
// callers construct a registry, register profiles (collecting errors), and
// pass it where needed. The built-in benchmarks live in their own registry
// returned by Builtin.
type Registry struct {
	byName map[string]Profile
	order  []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]Profile{}}
}

// Register adds a profile, validating its spec. Registration order is the
// registry's presentation order.
func (r *Registry) Register(p Profile) error {
	if p.Name == "" {
		return fmt.Errorf("workload: register: empty profile name")
	}
	if _, dup := r.byName[p.Name]; dup {
		return fmt.Errorf("workload: register %q: duplicate", p.Name)
	}
	if p.Spec == nil {
		return fmt.Errorf("workload: register %q: nil spec", p.Name)
	}
	if err := p.Spec.Validate(); err != nil {
		return fmt.Errorf("workload: register %q: %w", p.Name, err)
	}
	if p.Spec.Name != p.Name {
		return fmt.Errorf("workload: register %q: spec is named %q", p.Name, p.Spec.Name)
	}
	r.byName[p.Name] = p
	r.order = append(r.order, p.Name)
	return nil
}

// RegisterSpec wraps a validated spec into a Profile and registers it.
func (r *Registry) RegisterSpec(s *scenario.Spec) error {
	p := Profile{Name: s.Name, Suite: s.Suite, Spec: s}
	if s.Paper != nil {
		p.Paper = *s.Paper
	}
	return r.Register(p)
}

// Lookup returns the named profile.
func (r *Registry) Lookup(name string) (Profile, bool) {
	p, ok := r.byName[name]
	return p, ok
}

// Names returns the registered names in registration order.
func (r *Registry) Names() []string {
	out := make([]string, len(r.order))
	copy(out, r.order)
	return out
}

// Profiles returns every profile in registration order.
func (r *Registry) Profiles() []Profile {
	out := make([]Profile, 0, len(r.order))
	for _, n := range r.order {
		out = append(out, r.byName[n])
	}
	return out
}

// specFiles embeds the built-in benchmark scenario specs. File order (and
// thus registration order) follows the paper's Table 1 presentation order
// via the numeric prefix, not the filesystem sort of the names.
//
//go:embed specs/*.json
var specFiles embed.FS

// builtin loads the embedded specs exactly once. The embedded set is part
// of the build, so a failure here is a programming error: panic rather
// than limp along with a partial benchmark table.
var builtin = sync.OnceValue(func() *Registry {
	r := NewRegistry()
	entries, err := specFiles.ReadDir("specs")
	if err != nil {
		panic("workload: embedded specs: " + err.Error())
	}
	for _, e := range entries {
		data, err := specFiles.ReadFile("specs/" + e.Name())
		if err != nil {
			panic("workload: embedded specs: " + err.Error())
		}
		s, err := scenario.Parse(data)
		if err != nil {
			panic("workload: " + e.Name() + ": " + err.Error())
		}
		if err := r.RegisterSpec(s); err != nil {
			panic(err.Error())
		}
	}
	return r
})

// Builtin returns the registry of the 17 SPLASH-2/PARSEC benchmark
// stand-ins, loaded from the embedded spec files.
func Builtin() *Registry { return builtin() }

// Names returns the built-in benchmark names in the paper's presentation
// order.
//
// Deprecated: use Builtin().Names().
func Names() []string { return Builtin().Names() }

// ByName returns a built-in profile.
//
// Deprecated: use Builtin().Lookup.
func ByName(name string) (Profile, error) {
	p, ok := Builtin().Lookup(name)
	if !ok {
		return Profile{}, fmt.Errorf("workload: unknown benchmark %q", name)
	}
	return p, nil
}

// All returns every built-in profile in presentation order.
//
// Deprecated: use Builtin().Profiles().
func All() []Profile { return Builtin().Profiles() }
