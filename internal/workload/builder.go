package workload

import "math/rand"

// Builder assembles per-thread op streams with correctly-shaped static
// structure: sync-point static IDs and memory-op PCs are fixed per call
// site, so dynamic instances of the same epoch share identity — the
// property all the predictors key on.
type Builder struct {
	name    string
	n       int
	threads [][]Op
	rng     *rand.Rand

	nextBarrier uint64
	nextLock    int

	// Per-thread epoch context for PC synthesis.
	epochStatic []uint64
	helperIdx   []int
}

// NewBuilder starts a program with n threads and deterministic build-time
// randomness.
func NewBuilder(name string, n int, seed int64) *Builder {
	return &Builder{
		name:        name,
		n:           n,
		threads:     make([][]Op, n),
		rng:         rand.New(rand.NewSource(seed)),
		epochStatic: make([]uint64, n),
		helperIdx:   make([]int, n),
	}
}

// N returns the thread count.
func (b *Builder) N() int { return b.n }

// Rng exposes the build-time random source (profiles use it for
// data-dependent but reproducible choices).
func (b *Builder) Rng() *rand.Rand { return b.rng }

// Barriers allocates k static barrier IDs (one per call site in the
// modeled source program). Call once, outside iteration loops.
func (b *Builder) Barriers(k int) []uint64 {
	ids := make([]uint64, k)
	for i := range ids {
		b.nextBarrier++
		ids[i] = b.nextBarrier
	}
	return ids
}

// Locks allocates k static locks.
func (b *Builder) Locks(k int) []int {
	ids := make([]int, k)
	for i := range ids {
		ids[i] = b.nextLock
		b.nextLock++
	}
	return ids
}

// Bar appends the barrier to every thread and opens a new epoch context.
func (b *Builder) Bar(id uint64) {
	for tid := 0; tid < b.n; tid++ {
		b.threads[tid] = append(b.threads[tid], Op{Kind: OpBarrier, Sync: id, Addr: BarrierAddr(id)})
		b.epochStatic[tid] = id
		b.helperIdx[tid] = 0
	}
}

// ForAll runs body for every thread.
func (b *Builder) ForAll(body func(t *T)) {
	for tid := 0; tid < b.n; tid++ {
		body(&T{b: b, tid: tid})
	}
}

// Thread returns the stream builder for one thread. Emitting through
// Thread(tid) in ascending tid order is equivalent to one ForAll pass —
// the spec interpreter uses it to drive per-thread emission.
func (b *Builder) Thread(tid int) *T { return &T{b: b, tid: tid} }

// Finish appends program termination and returns the program.
func (b *Builder) Finish(staticBarriers, staticCS int) *Program {
	for tid := 0; tid < b.n; tid++ {
		b.threads[tid] = append(b.threads[tid], Op{Kind: OpEnd})
	}
	return &Program{Name: b.name, Threads: b.threads,
		StaticBarriers: staticBarriers, StaticCritSections: staticCS}
}

// T builds one thread's stream. Each pattern-helper call site corresponds
// to one static instruction: every access it emits shares one PC derived
// from the enclosing epoch and the helper's ordinal position in the epoch
// body, which is identical across dynamic instances.
type T struct {
	b   *Builder
	tid int
}

// Tid returns the thread index.
func (t *T) Tid() int { return t.tid }

func (t *T) pc() uint64 {
	b := t.b
	pc := 0x400000 + b.epochStatic[t.tid]*64 + uint64(b.helperIdx[t.tid])
	b.helperIdx[t.tid]++
	return pc
}

func (t *T) emit(op Op) { t.b.threads[t.tid] = append(t.b.threads[t.tid], op) }

// Compute burns n cycles of non-memory work.
func (t *T) Compute(n int) {
	if n > 0 {
		t.emit(Op{Kind: OpCompute, N: uint32(n)})
	}
}

// readLoop emits n reads cycling over a line-address generator — one
// static load executed n times.
func (t *T) readLoop(n int, addr func(i int) Op) {
	pc := t.pc()
	for i := 0; i < n; i++ {
		op := addr(i)
		op.PC = pc
		t.emit(op)
	}
}

// ReadSlice reads n times over owner's slice of a shared region.
func (t *T) ReadSlice(region, owner, sliceLines, n int) {
	t.readLoop(n, func(i int) Op {
		return Op{Kind: OpRead, Addr: SliceAddr(region, owner, sliceLines, i)}
	})
}

// WriteSlice writes n times over owner's slice of a shared region.
func (t *T) WriteSlice(region, owner, sliceLines, n int) {
	t.readLoop(n, func(i int) Op {
		return Op{Kind: OpWrite, Addr: SliceAddr(region, owner, sliceLines, i)}
	})
}

// ReadLines reads n times cycling over `lines` lines of a shared region
// starting at line `start`.
func (t *T) ReadLines(region, start, lines, n int) {
	t.readLoop(n, func(i int) Op {
		return Op{Kind: OpRead, Addr: SharedAddr(region, start+i%lines)}
	})
}

// WriteLines writes n times cycling over `lines` lines of a shared region.
func (t *T) WriteLines(region, start, lines, n int) {
	t.readLoop(n, func(i int) Op {
		return Op{Kind: OpWrite, Addr: SharedAddr(region, start+i%lines)}
	})
}

// Produce writes n times over the partition of this thread's slice that is
// destined for `consumer`: lines [consumer*partLines, (consumer+1)*partLines)
// of the producer's slice. Together with Consume this forms partitioned
// producer-consumer exchange: every line has exactly one producer and one
// consumer, so the consumer's miss is always supplied by the producer's
// cache (no forward-chaining through other readers), giving the stable,
// small hot communication sets of paper §3.3.
func (t *T) Produce(region, consumer, partLines, n int) {
	nt := t.b.n
	t.readLoop(n, func(i int) Op {
		return Op{Kind: OpWrite, Addr: SliceAddr(region, t.tid, nt*partLines, consumer*partLines+i%partLines)}
	})
}

// Consume reads n times over this thread's partition of `producer`'s slice.
func (t *T) Consume(region, producer, partLines, n int) {
	nt := t.b.n
	t.readLoop(n, func(i int) Op {
		return Op{Kind: OpRead, Addr: SliceAddr(region, producer, nt*partLines, t.tid*partLines+i%partLines)}
	})
}

// Private issues n accesses (3:1 read:write) cycling over a private
// working set of wsLines lines. Working sets larger than the L2 miss
// off-chip: this is the knob controlling the non-communicating miss ratio
// (paper Figure 1).
func (t *T) Private(n, wsLines int, cursor *int) {
	if wsLines <= 0 || n <= 0 {
		return
	}
	pcR := t.pc()
	pcW := t.pc()
	for i := 0; i < n; i++ {
		*cursor = (*cursor + 17) % wsLines // stride-17 walk: spreads over sets
		op := Op{Kind: OpRead, Addr: PrivateAddr(t.tid, *cursor), PC: pcR}
		if i%4 == 3 {
			op.Kind = OpWrite
			op.PC = pcW
		}
		t.emit(op)
	}
}

// CS emits one critical section: lock, n accesses (1:1 read:write) over
// the first `lines` lines of the lock's protected region, unlock. The
// protected region is derived from the lock ID, so every thread contends
// over the same data — producing the migratory sharing of §3.4.
func (t *T) CS(lockID, region, lines, n int) {
	t.emit(Op{Kind: OpLock, Sync: uint64(LockAddr(lockID)), Addr: LockAddr(lockID)})
	// The critical-section epoch body.
	prevEpoch := t.b.epochStatic[t.tid]
	prevIdx := t.b.helperIdx[t.tid]
	t.b.epochStatic[t.tid] = uint64(lockID)*2 + 1000
	t.b.helperIdx[t.tid] = 0
	pcR, pcW := t.pc(), t.pc()
	for i := 0; i < n; i++ {
		op := Op{Kind: OpRead, Addr: SharedAddr(region, lockID*64+i%lines), PC: pcR}
		if i%2 == 1 {
			op.Kind = OpWrite
			op.PC = pcW
		}
		t.emit(op)
	}
	t.emit(Op{Kind: OpUnlock, Sync: uint64(LockAddr(lockID)) + 1, Addr: LockAddr(lockID)})
	t.b.epochStatic[t.tid] = prevEpoch
	t.b.helperIdx[t.tid] = prevIdx
}
