// Package noc models the on-chip interconnect: a 2D mesh with wormhole
// switching, deterministic X-Y routing, 2-stage pipelined routers and
// single-cycle links (paper Table 4).
//
// The model is packet-granular: a packet of F flits occupies each link on
// its path for F cycles (serialization), links are occupied in path order,
// and a packet departing onto a busy link waits for the link to drain
// (contention). Router traversal adds a fixed pipeline delay per hop. This
// captures the three quantities the paper's evaluation depends on — per-hop
// latency, serialization bandwidth, and congestion — without simulating
// individual flits or virtual channels.
//
// The injection path is allocation-free in steady state (DESIGN.md §11):
// routes are walked with a stack-resident iterator instead of materialized
// slices, per-destination multicast/broadcast bindings come from a
// freelist, Broadcast's tree state lives in epoch-stamped per-network
// scratch arrays, and SendFn carries a pre-bound callback through the
// event queue without a closure.
package noc

import (
	"fmt"

	"spcoh/internal/arch"
	"spcoh/internal/event"
)

// Config describes the mesh geometry and timing.
type Config struct {
	Width, Height int        // mesh dimensions (Width*Height nodes)
	RouterDelay   event.Time // pipeline stages per router traversal (cycles)
	LinkDelay     event.Time // wire traversal per hop (cycles)
	FlitBytes     int        // bytes carried per flit
	HeaderFlits   int        // flits of header/routing overhead per packet
}

// DefaultConfig is the paper's 4x4 mesh: 2-stage routers, 1-cycle links,
// 16-byte flits, one header flit.
func DefaultConfig() Config {
	return Config{Width: 4, Height: 4, RouterDelay: 2, LinkDelay: 1, FlitBytes: 16, HeaderFlits: 1}
}

// Nodes returns the number of mesh endpoints.
func (c Config) Nodes() int { return c.Width * c.Height }

// Stats aggregates network activity for bandwidth and energy accounting.
//
// Injections and deliveries are distinct quantities: Send and Broadcast
// each count one injection (Packets) however many endpoints receive the
// packet, while Deliveries counts endpoint arrivals. A Broadcast to k
// destinations is therefore 1 injection / k deliveries (the in-network
// tree replicates), whereas Multicast to the same k is k injections / k
// deliveries (source-side replication, one Send per destination). TotalLat
// accumulates per-*delivery* latency, so mean latency must divide by
// Deliveries — dividing by Packets inflates broadcast latency by up to k.
type Stats struct {
	Packets     uint64 // packets injected (one per Send, one per Broadcast)
	Deliveries  uint64 // endpoint arrivals (k per Broadcast to k destinations)
	Bytes       uint64 // payload+header bytes injected (per-packet, not per-hop)
	FlitHops    uint64 // flits × links traversed (energy ∝ this)
	RouterHops  uint64 // packet × routers traversed
	TotalLat    uint64 // accumulated per-delivery latencies (cycles)
	StallCycles uint64 // cycles packets spent waiting on busy links
}

// AvgLatency returns the mean per-delivery latency: TotalLat accumulates
// once per endpoint arrival, so the divisor is Deliveries, not Packets
// (they differ exactly for Broadcast; see the Stats comment).
func (s *Stats) AvgLatency() float64 {
	if s.Deliveries == 0 {
		return 0
	}
	return float64(s.TotalLat) / float64(s.Deliveries)
}

// Observer carries the NoC hooks of the run-time metrics layer
// (internal/metrics). All hooks fire synchronously inside the
// simulation; a nil observer (the default) costs one predictable branch
// per packet.
type Observer interface {
	// LinkBusy reports that directed link l is occupied for [from, to).
	LinkBusy(l int, from, to event.Time)
	// LinkStall reports a packet stalling for the given cycles waiting on
	// busy link l.
	LinkStall(l int, cycles event.Time)
	// Deliver fires at each endpoint delivery with the delivery latency.
	// The simulator clock reads the arrival cycle.
	Deliver(lat event.Time)
}

// nodeCb is a pooled per-destination delivery binding for Multicast and
// Broadcast: deliverNode unpacks it, returns it to the network's freelist,
// and invokes fn(d) — so fanning out to k endpoints allocates nothing in
// steady state.
//
//spcoh:pooled
type nodeCb struct {
	net *Network
	fn  func(arch.NodeID)
	d   arch.NodeID
}

//spcoh:noalloc
func deliverNode(a any) {
	c := a.(*nodeCb)
	net, fn, d := c.net, c.fn, c.d
	net.putNodeCb(c)
	fn(d)
}

// Network is a mesh instance bound to a simulator clock.
type Network struct {
	cfg Config
	sim *event.Sim
	// busyUntil[l] is the cycle at which directed link l becomes free.
	busyUntil []event.Time
	stats     Stats
	obs       Observer

	// bcHead/bcStamp replace Broadcast's former per-call map: bcHead[l] is
	// the head-flit time after tree link l, valid iff bcStamp[l] == bcEpoch
	// (stamping avoids clearing the scratch between broadcasts).
	bcHead  []event.Time
	bcStamp []uint64
	bcEpoch uint64

	// cbPool is the nodeCb freelist.
	cbPool []*nodeCb

	// lanes, when set, are the per-node scheduling lanes of the sharded
	// executor: each delivery is scheduled through its destination's lane,
	// stamping the event with its owning node so it can run on that
	// shard's worker. Nil (the default) schedules directly on the Sim.
	lanes []*event.Lane
}

// New builds a network over the given simulator.
func New(sim *event.Sim, cfg Config) *Network {
	if cfg.Width <= 0 || cfg.Height <= 0 {
		panic("noc: non-positive mesh dimensions")
	}
	if cfg.Nodes() > arch.MaxNodes {
		panic(fmt.Sprintf("noc: %d nodes exceeds arch.MaxNodes", cfg.Nodes()))
	}
	// 4 directed links per node (N,E,S,W); edge links exist but are unused.
	links := cfg.Nodes() * 4
	return &Network{
		cfg: cfg, sim: sim,
		busyUntil: make([]event.Time, links),
		bcHead:    make([]event.Time, links),
		bcStamp:   make([]uint64, links),
	}
}

// Config returns the network configuration.
func (n *Network) Config() Config { return n.cfg }

// Stats returns a snapshot of accumulated statistics.
func (n *Network) Stats() Stats { return n.stats }

// SetObserver attaches (or, with nil, detaches) the metrics hooks.
func (n *Network) SetObserver(o Observer) { n.obs = o }

// SetLanes attaches the per-node scheduling lanes (one per mesh endpoint),
// so deliveries are stamped with their destination as owner. Without an
// attached executor a lane schedule is exactly a Sim schedule, so serial
// behavior is unchanged.
func (n *Network) SetLanes(lanes []*event.Lane) {
	if lanes != nil && len(lanes) != n.cfg.Nodes() {
		panic("noc: lane count must match mesh size")
	}
	n.lanes = lanes
}

// NumLinks returns the number of directed links the mesh addresses
// (4 per node; edge links exist but carry no traffic).
func (n *Network) NumLinks() int { return len(n.busyUntil) }

// XY returns the mesh coordinates of a node.
func (n *Network) XY(id arch.NodeID) (x, y int) {
	return int(id) % n.cfg.Width, int(id) / n.cfg.Width
}

// NodeAt returns the node at mesh coordinates (x, y).
func (n *Network) NodeAt(x, y int) arch.NodeID {
	return arch.NodeID(y*n.cfg.Width + x)
}

// Hops returns the Manhattan distance between two nodes.
func (n *Network) Hops(a, b arch.NodeID) int {
	ax, ay := n.XY(a)
	bx, by := n.XY(b)
	return abs(ax-bx) + abs(ay-by)
}

const (
	dirEast = iota
	dirWest
	dirNorth
	dirSouth
)

// linkIndex identifies the directed link leaving node id in direction dir.
func (n *Network) linkIndex(id arch.NodeID, dir int) int { return int(id)*4 + dir }

// routeIter walks the X-Y route from src to dst one directed link at a
// time. It is a plain value (no backing slice), so hot paths walk routes
// without allocating; Route materializes a slice for tests and debugging.
type routeIter struct {
	n      *Network
	x, y   int // current coordinates
	dx, dy int // destination coordinates
	cur    arch.NodeID
}

func (n *Network) routeFrom(src, dst arch.NodeID) routeIter {
	x, y := n.XY(src)
	dx, dy := n.XY(dst)
	return routeIter{n: n, x: x, y: y, dx: dx, dy: dy, cur: src}
}

// next returns the next directed link on the route, or ok=false at dst.
func (it *routeIter) next() (link int, ok bool) {
	n := it.n
	if it.x != it.dx {
		var dir int
		if it.x < it.dx {
			dir, it.x = dirEast, it.x+1
		} else {
			dir, it.x = dirWest, it.x-1
		}
		link = n.linkIndex(it.cur, dir)
		it.cur = n.NodeAt(it.x, it.y)
		return link, true
	}
	if it.y != it.dy {
		var dir int
		if it.y < it.dy {
			dir, it.y = dirSouth, it.y+1
		} else {
			dir, it.y = dirNorth, it.y-1
		}
		link = n.linkIndex(it.cur, dir)
		it.cur = n.NodeAt(it.x, it.y)
		return link, true
	}
	return 0, false
}

// Route returns the sequence of directed links a packet traverses from src
// to dst under X-Y (dimension-ordered) routing. Empty for src == dst.
func (n *Network) Route(src, dst arch.NodeID) []int {
	if src == dst {
		return nil
	}
	links := make([]int, 0, n.Hops(src, dst))
	it := n.routeFrom(src, dst)
	for l, ok := it.next(); ok; l, ok = it.next() {
		links = append(links, l)
	}
	return links
}

// Flits returns the number of flits (header + payload) for a payload of the
// given byte size.
func (n *Network) Flits(payloadBytes int) int {
	f := n.cfg.HeaderFlits
	f += (payloadBytes + n.cfg.FlitBytes - 1) / n.cfg.FlitBytes
	if f < 1 {
		f = 1
	}
	return f
}

// occupyLink claims directed link l for a packet whose head flit reaches it
// at head, serializing for ser cycles, accounting stall and occupancy, and
// returns the head-flit time after the link's wire and the next router.
//
//spcoh:noalloc
func (n *Network) occupyLink(l int, head, ser event.Time) event.Time {
	if n.busyUntil[l] > head {
		stall := n.busyUntil[l] - head
		n.stats.StallCycles += uint64(stall)
		if n.obs != nil {
			n.obs.LinkStall(l, stall)
		}
		head = n.busyUntil[l]
	}
	n.busyUntil[l] = head + ser
	if n.obs != nil {
		n.obs.LinkBusy(l, head, head+ser)
	}
	return head + n.cfg.LinkDelay + n.cfg.RouterDelay // head flit: wire + next router
}

// deliverAt accounts one endpoint delivery of latency lat and schedules the
// delivery — exactly one of fn (closure form) or pfn(arg) (pre-bound form)
// — at the arrival cycle. The pre-bound form goes through the event queue
// with no allocation; the observer path wraps in a closure, a cost only
// instrumented runs pay.
//
//spcoh:noalloc
func (n *Network) deliverAt(dst arch.NodeID, arrival, lat event.Time, fn func(), pfn event.ArgFunc, arg any) {
	n.stats.Deliveries++
	n.stats.TotalLat += uint64(lat)
	if n.obs != nil {
		obs := n.obs
		if pfn != nil {
			n.sim.At(arrival, func() { obs.Deliver(lat); pfn(arg) }) //spvet:allow noalloc -- observer wrap: a cost only instrumented runs pay
		} else {
			n.sim.At(arrival, func() { obs.Deliver(lat); fn() }) //spvet:allow noalloc -- observer wrap: a cost only instrumented runs pay
		}
		return
	}
	if n.lanes != nil {
		// Stamp the delivery with its destination: it is node-confined work
		// the sharded executor may run in parallel.
		if pfn != nil {
			n.lanes[dst].AtFn(arrival, pfn, arg)
			return
		}
		n.lanes[dst].At(arrival, fn)
		return
	}
	if pfn != nil {
		n.sim.AtFn(arrival, pfn, arg)
		return
	}
	n.sim.At(arrival, fn)
}

// Send injects a packet of payloadBytes from src to dst and schedules
// deliver at the arrival time. Local delivery (src == dst) costs a fixed
// router traversal. Send accounts all bandwidth/energy statistics.
//
//spcoh:noalloc
func (n *Network) Send(src, dst arch.NodeID, payloadBytes int, deliver func()) {
	n.send(src, dst, payloadBytes, deliver, nil, nil)
}

// SendFn is Send with a pre-bound delivery callback: fn(arg) runs at the
// arrival time. With a pointer-shaped arg the injection allocates nothing.
//
//spcoh:noalloc
func (n *Network) SendFn(src, dst arch.NodeID, payloadBytes int, fn event.ArgFunc, arg any) {
	n.send(src, dst, payloadBytes, nil, fn, arg)
}

//spcoh:noalloc
func (n *Network) send(src, dst arch.NodeID, payloadBytes int, deliver func(), pfn event.ArgFunc, arg any) {
	now := n.sim.Now()
	flits := n.Flits(payloadBytes)
	bytes := uint64(flits * n.cfg.FlitBytes)
	n.stats.Packets++
	n.stats.Bytes += bytes

	if src == dst {
		n.deliverAt(dst, now+n.cfg.RouterDelay, n.cfg.RouterDelay, deliver, pfn, arg)
		return
	}

	// Head-flit time advances hop by hop; each link is held for the packet's
	// serialization time starting when the head flit enters it.
	head := now + n.cfg.RouterDelay // source router/injection
	ser := event.Time(flits) * n.cfg.LinkDelay
	it := n.routeFrom(src, dst)
	for l, ok := it.next(); ok; l, ok = it.next() {
		head = n.occupyLink(l, head, ser)
		n.stats.FlitHops += uint64(flits)
		n.stats.RouterHops++
	}
	// Tail flit trails the head by the serialization time of the last link.
	arrival := head + ser - n.cfg.LinkDelay
	if arrival < head {
		arrival = head
	}
	n.deliverAt(dst, arrival, arrival-now, deliver, pfn, arg)
}

func (n *Network) getNodeCb(fn func(arch.NodeID), d arch.NodeID) *nodeCb {
	if k := len(n.cbPool); k > 0 {
		c := n.cbPool[k-1]
		n.cbPool = n.cbPool[:k-1]
		c.fn, c.d = fn, d
		return c
	}
	return &nodeCb{net: n, fn: fn, d: d}
}

func (n *Network) putNodeCb(c *nodeCb) {
	c.fn = nil
	n.cbPool = append(n.cbPool, c)
}

// Multicast sends an identical packet to every member of dsts, invoking
// deliver(node) at each arrival. Replication happens at the source (no
// in-network multicast trees), matching the paper's multicast cost model
// for *predicted* requests, which target a handful of nodes.
//
//spcoh:noalloc
func (n *Network) Multicast(src arch.NodeID, dsts arch.SharerSet, payloadBytes int, deliver func(arch.NodeID)) {
	dsts.ForEach(func(d arch.NodeID) { //spvet:allow noalloc -- inlined getNodeCb: cold-path freelist refill
		n.send(src, d, payloadBytes, nil, deliverNode, n.getNodeCb(deliver, d))
	})
}

// Broadcast delivers a packet to every member of dsts along an in-network
// multicast tree: the union of the X-Y routes, with each tree link carrying
// the packet exactly once. This models the replicating, totally-ordered
// fabric the paper assumes for its snooping comparison (§5.1); source-side
// replication would serialize 15 packets through one injection port and
// unfairly penalize broadcast.
//
//spcoh:noalloc
func (n *Network) Broadcast(src arch.NodeID, dsts arch.SharerSet, payloadBytes int, deliver func(arch.NodeID)) {
	now := n.sim.Now()
	flits := n.Flits(payloadBytes)
	ser := event.Time(flits) * n.cfg.LinkDelay
	n.bcEpoch++
	n.stats.Packets++
	n.stats.Bytes += uint64(flits * n.cfg.FlitBytes)
	dsts.ForEach(func(d arch.NodeID) { //spvet:allow noalloc -- inlined getNodeCb: cold-path freelist refill
		if d == src {
			// Loopback is a delivery like any other: it costs the local
			// router traversal and is counted in Deliveries/TotalLat
			// (mirroring Send's src == dst path).
			n.deliverAt(d, now+n.cfg.RouterDelay, n.cfg.RouterDelay, nil, deliverNode, n.getNodeCb(deliver, d))
			return
		}
		head := now + n.cfg.RouterDelay
		it := n.routeFrom(src, d)
		for l, ok := it.next(); ok; l, ok = it.next() {
			if n.bcStamp[l] == n.bcEpoch {
				head = n.bcHead[l] // link already carries the packet for this subtree
				continue
			}
			head = n.occupyLink(l, head, ser)
			n.bcHead[l] = head
			n.bcStamp[l] = n.bcEpoch
			n.stats.FlitHops += uint64(flits)
			n.stats.RouterHops++
		}
		arrival := head + ser - n.cfg.LinkDelay
		if arrival < head {
			arrival = head
		}
		n.deliverAt(d, arrival, arrival-now, nil, deliverNode, n.getNodeCb(deliver, d))
	})
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
