package noc

import (
	"testing"
	"testing/quick"

	"spcoh/internal/arch"
	"spcoh/internal/event"
)

func newNet() (*event.Sim, *Network) {
	sim := event.New()
	return sim, New(sim, DefaultConfig())
}

func TestCoordinates(t *testing.T) {
	_, n := newNet()
	x, y := n.XY(0)
	if x != 0 || y != 0 {
		t.Fatalf("XY(0) = %d,%d", x, y)
	}
	x, y = n.XY(5)
	if x != 1 || y != 1 {
		t.Fatalf("XY(5) = %d,%d", x, y)
	}
	if n.NodeAt(3, 3) != 15 {
		t.Fatalf("NodeAt(3,3) = %d", n.NodeAt(3, 3))
	}
	for id := arch.NodeID(0); id < 16; id++ {
		x, y := n.XY(id)
		if n.NodeAt(x, y) != id {
			t.Fatalf("coordinate round trip failed for %d", id)
		}
	}
}

func TestHops(t *testing.T) {
	_, n := newNet()
	cases := []struct {
		a, b arch.NodeID
		want int
	}{
		{0, 0, 0}, {0, 1, 1}, {0, 3, 3}, {0, 15, 6}, {5, 10, 2}, {12, 3, 6},
	}
	for _, c := range cases {
		if got := n.Hops(c.a, c.b); got != c.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestRouteLengthAndXYOrder(t *testing.T) {
	_, n := newNet()
	for src := arch.NodeID(0); src < 16; src++ {
		for dst := arch.NodeID(0); dst < 16; dst++ {
			r := n.Route(src, dst)
			if len(r) != n.Hops(src, dst) {
				t.Fatalf("route %d->%d has %d links, want %d", src, dst, len(r), n.Hops(src, dst))
			}
		}
	}
	// X-Y routing: 0 -> 10 goes east twice then south twice.
	r := n.Route(0, 10)
	want := []int{
		0*4 + dirEast, // node 0 east
		1*4 + dirEast, // node 1 east
		2*4 + dirSouth,
		6*4 + dirSouth,
	}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("route 0->10 = %v, want %v", r, want)
		}
	}
}

func TestFlits(t *testing.T) {
	_, n := newNet()
	if got := n.Flits(0); got != 1 {
		t.Fatalf("Flits(0) = %d, want 1 (header)", got)
	}
	if got := n.Flits(8); got != 2 {
		t.Fatalf("Flits(8) = %d, want 2", got)
	}
	if got := n.Flits(64); got != 5 {
		t.Fatalf("Flits(64) = %d, want 5", got)
	}
}

func TestSendLatencyUncontended(t *testing.T) {
	sim, n := newNet()
	var arrived event.Time
	// 0 -> 1: one hop. Control packet (8B payload = 2 flits).
	n.Send(0, 1, 8, func() { arrived = sim.Now() })
	sim.Run()
	// router(2) + link(1) + router(2) + tail trailing (ser 2 flits*1 - 1) = 6
	cfg := DefaultConfig()
	ser := event.Time(2) * cfg.LinkDelay
	want := cfg.RouterDelay + cfg.LinkDelay + cfg.RouterDelay + ser - cfg.LinkDelay
	if arrived != want {
		t.Fatalf("arrival = %d, want %d", arrived, want)
	}
}

func TestSendLocal(t *testing.T) {
	sim, n := newNet()
	var arrived event.Time
	n.Send(3, 3, 64, func() { arrived = sim.Now() })
	sim.Run()
	if arrived != DefaultConfig().RouterDelay {
		t.Fatalf("local delivery at %d, want %d", arrived, DefaultConfig().RouterDelay)
	}
	if n.Stats().FlitHops != 0 {
		t.Fatal("local delivery should traverse no links")
	}
}

func TestContentionSerializes(t *testing.T) {
	sim, n := newNet()
	var first, second event.Time
	// Two max-size packets on the same link back to back.
	n.Send(0, 1, 64, func() { first = sim.Now() })
	n.Send(0, 1, 64, func() { second = sim.Now() })
	sim.Run()
	if second <= first {
		t.Fatalf("contended packet arrived at %d, not after %d", second, first)
	}
	if n.Stats().StallCycles == 0 {
		t.Fatal("expected stall cycles under contention")
	}
	// Uncontended paths don't interact.
	sim2, n2 := newNet()
	var a, b event.Time
	n2.Send(0, 1, 64, func() { a = sim2.Now() })
	n2.Send(4, 5, 64, func() { b = sim2.Now() })
	sim2.Run()
	if a != b {
		t.Fatalf("disjoint paths should have equal latency: %d vs %d", a, b)
	}
}

func TestFartherIsSlower(t *testing.T) {
	sim, n := newNet()
	var near, far event.Time
	n.Send(0, 1, 8, func() { near = sim.Now() })
	n.Send(0, 15, 8, func() { far = sim.Now() })
	sim.Run()
	if far <= near {
		t.Fatalf("6-hop (%d) should be slower than 1-hop (%d)", far, near)
	}
}

func TestMulticast(t *testing.T) {
	sim, n := newNet()
	got := arch.EmptySet
	dsts := arch.SetOf(1, 4, 15)
	n.Multicast(0, dsts, 8, func(d arch.NodeID) { got = got.Add(d) })
	sim.Run()
	if got != dsts {
		t.Fatalf("multicast delivered to %v, want %v", got, dsts)
	}
	if n.Stats().Packets != 3 {
		t.Fatalf("packets = %d, want 3", n.Stats().Packets)
	}
}

func TestStatsAccounting(t *testing.T) {
	sim, n := newNet()
	n.Send(0, 3, 64, func() {}) // 3 hops, 5 flits
	sim.Run()
	s := n.Stats()
	if s.FlitHops != 15 {
		t.Fatalf("flit-hops = %d, want 15", s.FlitHops)
	}
	if s.RouterHops != 3 {
		t.Fatalf("router-hops = %d, want 3", s.RouterHops)
	}
	if s.Bytes != 5*16 {
		t.Fatalf("bytes = %d, want 80", s.Bytes)
	}
	if s.AvgLatency() <= 0 {
		t.Fatal("avg latency should be positive")
	}
}

// Regression for the broadcast accounting bug: TotalLat accumulates once
// per destination while Packets counts one injection per Broadcast, so the
// old AvgLatency (TotalLat / Packets) over-reported broadcast latency by
// the fan-out factor. The mean must be per-delivery.
func TestBroadcastAvgLatencyIsPerDelivery(t *testing.T) {
	sim, n := newNet()
	dsts := arch.SetOf(1, 5, 15)
	arrivals := make(map[arch.NodeID]event.Time)
	n.Broadcast(0, dsts, 8, func(d arch.NodeID) { arrivals[d] = sim.Now() })
	sim.Run()

	s := n.Stats()
	if s.Packets != 1 {
		t.Fatalf("Packets = %d, want 1 (broadcast is one injection)", s.Packets)
	}
	if s.Deliveries != uint64(dsts.Count()) {
		t.Fatalf("Deliveries = %d, want %d", s.Deliveries, dsts.Count())
	}
	var sum uint64
	var farthest event.Time
	dsts.ForEach(func(d arch.NodeID) {
		sum += uint64(arrivals[d])
		if arrivals[d] > farthest {
			farthest = arrivals[d]
		}
	})
	if s.TotalLat != sum {
		t.Fatalf("TotalLat = %d, want per-delivery sum %d", s.TotalLat, sum)
	}
	want := float64(sum) / float64(dsts.Count())
	if got := s.AvgLatency(); got != want {
		t.Fatalf("AvgLatency = %v, want per-delivery mean %v", got, want)
	}
	// The old accounting reported the per-destination sum over one packet.
	if old := float64(sum) / float64(s.Packets); s.AvgLatency() >= old {
		t.Fatalf("AvgLatency = %v not below the old per-injection value %v", s.AvgLatency(), old)
	}
	// Invariant: the mean delivery latency is bounded by the slowest
	// (farthest-destination) delivery on an idle mesh.
	if s.AvgLatency() > float64(farthest) {
		t.Fatalf("AvgLatency = %v exceeds farthest delivery %d", s.AvgLatency(), farthest)
	}
}

// Invariant: a broadcast to k destinations yields exactly k deliveries and
// k latency samples, for every k.
func TestBroadcastDeliveriesPerDestination(t *testing.T) {
	for k := 1; k <= 15; k++ {
		sim, n := newNet()
		dsts := arch.EmptySet
		for d := 1; d <= k; d++ {
			dsts = dsts.Add(arch.NodeID(d))
		}
		got := 0
		n.Broadcast(0, dsts, 8, func(arch.NodeID) { got++ })
		sim.Run()
		if got != k {
			t.Fatalf("k=%d: delivered %d times", k, got)
		}
		if s := n.Stats(); s.Deliveries != uint64(k) || s.Packets != 1 {
			t.Fatalf("k=%d: Deliveries = %d, Packets = %d", k, s.Deliveries, s.Packets)
		}
	}
}

// Invariant: Send and Multicast keep Deliveries == Packets (each fan-out
// leg of a Multicast is a source-replicated packet — the documented
// asymmetry with Broadcast), including local delivery.
func TestSendAndMulticastDeliveriesMatchPackets(t *testing.T) {
	sim, n := newNet()
	n.Send(0, 1, 8, func() {})
	n.Send(3, 3, 64, func() {}) // local
	n.Multicast(0, arch.SetOf(2, 7, 9), 8, func(arch.NodeID) {})
	sim.Run()
	s := n.Stats()
	if s.Packets != 5 || s.Deliveries != 5 {
		t.Fatalf("Packets = %d, Deliveries = %d, want 5 and 5", s.Packets, s.Deliveries)
	}
}

// Invariant: on a contended link, a broadcast leg observes the same stall
// cycles and arrival time as an equivalent unicast Send.
func TestBroadcastStallMatchesSend(t *testing.T) {
	simA, a := newNet()
	a.Send(0, 1, 64, func() {}) // occupy link 0->1
	var sendArrival event.Time
	a.Send(0, 1, 8, func() { sendArrival = simA.Now() })
	simA.Run()
	sendStalls := a.Stats().StallCycles

	simB, b := newNet()
	b.Send(0, 1, 64, func() {}) // same contention
	var bcastArrival event.Time
	b.Broadcast(0, arch.SetOf(1), 8, func(arch.NodeID) { bcastArrival = simB.Now() })
	simB.Run()
	bcastStalls := b.Stats().StallCycles

	if sendStalls == 0 {
		t.Fatal("expected stalls on the contended link")
	}
	if bcastStalls != sendStalls {
		t.Fatalf("broadcast stalls = %d, send stalls = %d", bcastStalls, sendStalls)
	}
	if bcastArrival != sendArrival {
		t.Fatalf("broadcast arrival = %d, send arrival = %d", bcastArrival, sendArrival)
	}
}

// Property: latency grows monotonically with hop count on an idle network.
func TestPropertyLatencyMonotoneInDistance(t *testing.T) {
	f := func(aRaw, bRaw uint8) bool {
		a := arch.NodeID(aRaw % 16)
		b := arch.NodeID(bRaw % 16)
		simA, nA := newNet()
		var tA event.Time
		nA.Send(0, a, 8, func() { tA = simA.Now() })
		simA.Run()
		simB, nB := newNet()
		var tB event.Time
		nB.Send(0, b, 8, func() { tB = simB.Now() })
		simB.Run()
		if nA.Hops(0, a) < nB.Hops(0, b) {
			return tA < tB
		}
		if nA.Hops(0, a) == nB.Hops(0, b) {
			return tA == tB
		}
		return tA > tB
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: every route under X-Y routing is minimal and loop-free
// (each directed link appears at most once).
func TestPropertyRoutesLoopFree(t *testing.T) {
	f := func(sRaw, dRaw uint8) bool {
		_, n := newNet()
		src := arch.NodeID(sRaw % 16)
		dst := arch.NodeID(dRaw % 16)
		r := n.Route(src, dst)
		seen := make(map[int]bool)
		for _, l := range r {
			if seen[l] {
				return false
			}
			seen[l] = true
		}
		return len(r) == n.Hops(src, dst)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
