package noc

import (
	"testing"

	"spcoh/internal/arch"
	"spcoh/internal/event"
)

func nopDeliver()         {}
func nopDeliverArg(any)   {}
func nopNode(arch.NodeID) {}
func warm(sim *event.Sim, n *Network) {
	// Grow event-ring buckets and the nodeCb freelist once so the steady
	// state is measured, not first-touch growth.
	all := arch.EmptySet
	for i := 0; i < n.cfg.Nodes(); i++ {
		all = all.Add(arch.NodeID(i))
	}
	for i := 0; i < 64; i++ {
		n.Send(0, arch.NodeID(i%n.cfg.Nodes()), 64, nopDeliver)
		n.Broadcast(arch.NodeID(i%n.cfg.Nodes()), all, 8, nopNode)
	}
	sim.Run()
	// Settle: drive the drained pattern through a few full ring revolutions
	// so every bucket index the steady state touches has grown its slice.
	for i := 0; i < 256; i++ {
		n.Send(0, arch.NodeID(i%n.cfg.Nodes()), 64, nopDeliver)
		sim.Run()
		n.Broadcast(arch.NodeID(i%n.cfg.Nodes()), all, 8, nopNode)
		sim.Run()
	}
}

// TestAllocsSendCeiling enforces the NoC injection contract: a steady-state
// SendFn (pre-bound callback, warm ring) allocates nothing, and the closure
// form Send costs at most the one closure its caller hands in.
func TestAllocsSendCeiling(t *testing.T) {
	sim := event.New()
	n := New(sim, DefaultConfig())
	warm(sim, n)
	arg := new(int)

	if avg := testing.AllocsPerRun(500, func() {
		n.SendFn(0, 5, 64, nopDeliverArg, arg)
		sim.Run()
	}); avg != 0 {
		t.Errorf("steady-state SendFn: %v allocs/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(500, func() {
		n.Send(0, 5, 64, nopDeliver)
		sim.Run()
	}); avg > 1 {
		t.Errorf("steady-state Send: %v allocs/op, want <= 1", avg)
	}
}

// TestAllocsBroadcastCeiling pins Broadcast's per-call overhead: the former
// per-call head map is gone, so a warm broadcast pays at most one
// allocation for the caller's per-delivery closure.
func TestAllocsBroadcastCeiling(t *testing.T) {
	sim := event.New()
	n := New(sim, DefaultConfig())
	warm(sim, n)
	all := arch.EmptySet
	for i := 0; i < n.cfg.Nodes(); i++ {
		all = all.Add(arch.NodeID(i))
	}
	if avg := testing.AllocsPerRun(500, func() {
		n.Broadcast(3, all, 8, nopNode)
		sim.Run()
	}); avg > 1 {
		t.Errorf("steady-state Broadcast: %v allocs/op, want <= 1", avg)
	}
}

func BenchmarkSend(b *testing.B) {
	b.ReportAllocs()
	sim := event.New()
	n := New(sim, DefaultConfig())
	warm(sim, n)
	arg := new(int)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.SendFn(arch.NodeID(i%16), arch.NodeID((i*7)%16), 64, nopDeliverArg, arg)
		sim.Run()
	}
}

func BenchmarkBroadcast(b *testing.B) {
	b.ReportAllocs()
	sim := event.New()
	n := New(sim, DefaultConfig())
	warm(sim, n)
	all := arch.EmptySet
	for i := 0; i < n.cfg.Nodes(); i++ {
		all = all.Add(arch.NodeID(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Broadcast(arch.NodeID(i%16), all, 8, nopNode)
		sim.Run()
	}
}

func BenchmarkMulticast(b *testing.B) {
	b.ReportAllocs()
	sim := event.New()
	n := New(sim, DefaultConfig())
	warm(sim, n)
	dsts := arch.SetOf(1, 4, 11)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Multicast(arch.NodeID(i%16), dsts, 16, nopNode)
		sim.Run()
	}
}
