package noc

import (
	"spcoh/internal/arch"
	"spcoh/internal/event"
)

// Fast-mode injection paths (DESIGN.md §15). The fast functional simulation
// keeps every bandwidth/energy quantity of the detailed model exact —
// Packets, Deliveries, Bytes, FlitHops and RouterHops are computed from the
// same route geometry — but replaces link occupancy with contention-free
// latency arithmetic: a packet's delivery time is a pure function of the
// mesh distance and its serialization, links are never marked busy, and
// StallCycles stays zero. Callers schedule the returned latencies on their
// own cascade clock instead of the engine's real clock.

// FastLat returns the contention-free delivery latency of a packet of
// payloadBytes from src to dst: the detailed send() pipeline — source
// router, then per hop one link wire plus one downstream router, with the
// tail flit trailing the head by the last link's serialization — evaluated
// with every link free.
func (n *Network) FastLat(src, dst arch.NodeID, payloadBytes int) event.Time {
	if src == dst {
		return n.cfg.RouterDelay
	}
	flits := n.Flits(payloadBytes)
	ser := event.Time(flits) * n.cfg.LinkDelay
	hops := event.Time(n.Hops(src, dst))
	return n.cfg.RouterDelay + hops*(n.cfg.LinkDelay+n.cfg.RouterDelay) + ser - n.cfg.LinkDelay
}

// FastSend accounts one packet injection and delivery (the same statistics
// Send accumulates, minus stalls) and returns the contention-free delivery
// latency for the caller to schedule.
//
//spcoh:noalloc
func (n *Network) FastSend(src, dst arch.NodeID, payloadBytes int) event.Time {
	flits := n.Flits(payloadBytes)
	n.stats.Packets++
	n.stats.Bytes += uint64(flits * n.cfg.FlitBytes)
	if src != dst {
		h := n.Hops(src, dst)
		n.stats.FlitHops += uint64(flits * h)
		n.stats.RouterHops += uint64(h)
	}
	lat := n.FastLat(src, dst, payloadBytes)
	n.stats.Deliveries++
	n.stats.TotalLat += uint64(lat)
	if n.obs != nil {
		n.obs.Deliver(lat)
	}
	return lat
}

// FastBroadcast accounts one in-network-tree broadcast (each tree link
// carries the packet exactly once, as in Broadcast) and invokes deliver
// synchronously per destination with that endpoint's contention-free
// latency. With free links the head-flit time at any tree node is a pure
// function of its route depth, so each destination's latency equals the
// unicast FastLat; the tree walk only deduplicates FlitHops/RouterHops.
func (n *Network) FastBroadcast(src arch.NodeID, dsts arch.SharerSet, payloadBytes int, deliver func(d arch.NodeID, lat event.Time)) {
	flits := n.Flits(payloadBytes)
	ser := event.Time(flits) * n.cfg.LinkDelay
	n.bcEpoch++
	n.stats.Packets++
	n.stats.Bytes += uint64(flits * n.cfg.FlitBytes)
	dsts.ForEach(func(d arch.NodeID) {
		var lat event.Time
		if d == src {
			lat = n.cfg.RouterDelay
		} else {
			head := n.cfg.RouterDelay
			it := n.routeFrom(src, d)
			for l, ok := it.next(); ok; l, ok = it.next() {
				if n.bcStamp[l] != n.bcEpoch {
					n.bcStamp[l] = n.bcEpoch
					n.stats.FlitHops += uint64(flits)
					n.stats.RouterHops++
				}
				head += n.cfg.LinkDelay + n.cfg.RouterDelay
			}
			lat = head + ser - n.cfg.LinkDelay
		}
		n.stats.Deliveries++
		n.stats.TotalLat += uint64(lat)
		if n.obs != nil {
			n.obs.Deliver(lat)
		}
		deliver(d, lat)
	})
}
