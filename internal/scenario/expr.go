package scenario

import (
	"fmt"
	"math/rand"
	"strconv"

	"spcoh/internal/workload/topo"
)

// The scenario expression language: integer expressions over the walk
// variables (i, n, it, j, iters, locks, bars), loop variables and named
// defs, with Go arithmetic semantics. Comparisons and logical operators
// produce 0/1, so guards and counts share one value domain; `rng(m)`
// consumes the program's build-time random source exactly where it appears
// in the emit order, which is what keeps spec-driven builds byte-identical
// to the hand-coded profiles they replace.
//
// Grammar (precedence climbing, loosest first):
//
//	expr  := or
//	or    := and    { "||" and }
//	and   := cmp    { "&&" cmp }
//	cmp   := sum    [ ("=="|"!="|"<="|">="|"<"|">") sum ]
//	sum   := term   { ("+"|"-") term }
//	term  := unary  { ("*"|"/"|"%") unary }
//	unary := ("-"|"!") unary | primary
//	primary := INT | IDENT | IDENT "(" expr {"," expr} ")" | "(" expr ")"
//
// Functions: east(x), west(x), parent(x), child(x,k), rng(m), min(a,b),
// max(a,b). east/west/child take the thread count from the environment.

// Env is the variable binding under which an expression evaluates: the
// walker's fixed loop indices plus loop variables and spec defs resolved
// by name.
type Env struct {
	I, N, It, J, Iters, Locks, Bars int64

	// Rng is the build-time random source backing rng(m). Nil forbids rng.
	Rng *rand.Rand

	// defs maps spec-level named expressions; loop holds loop variables.
	// Both are managed by the emit walker.
	defs map[string]*Expr
	loop map[string]int64

	// depth guards against runaway def recursion.
	depth int
}

// maxDefDepth bounds def-to-def reference chains.
const maxDefDepth = 16

// lookupVar resolves an identifier: builtins first, then loop variables,
// then defs.
func (e *Env) lookupVar(name string) (int64, error) {
	switch name {
	case "i":
		return e.I, nil
	case "n":
		return e.N, nil
	case "it":
		return e.It, nil
	case "j":
		return e.J, nil
	case "iters":
		return e.Iters, nil
	case "locks":
		return e.Locks, nil
	case "bars":
		return e.Bars, nil
	}
	if v, ok := e.loop[name]; ok {
		return v, nil
	}
	if d, ok := e.defs[name]; ok {
		if e.depth >= maxDefDepth {
			return 0, fmt.Errorf("def %q: reference chain deeper than %d", name, maxDefDepth)
		}
		e.depth++
		v, err := d.Eval(e)
		e.depth--
		if err != nil {
			return 0, fmt.Errorf("def %q: %w", name, err)
		}
		return v, nil
	}
	return 0, fmt.Errorf("unknown variable %q", name)
}

// Expr is one compiled expression.
type Expr struct {
	src  string
	node node
}

// Src returns the source text the expression was compiled from.
func (e *Expr) Src() string { return e.src }

// CompileExpr parses src into an evaluable expression.
func CompileExpr(src string) (*Expr, error) {
	p := &parser{src: src}
	p.next()
	n, err := p.parseOr()
	if err != nil {
		return nil, fmt.Errorf("expr %q: %w", src, err)
	}
	if p.tok != tokEOF {
		return nil, fmt.Errorf("expr %q: trailing input at %q", src, p.lit)
	}
	return &Expr{src: src, node: n}, nil
}

// Eval evaluates the expression under env.
func (e *Expr) Eval(env *Env) (int64, error) {
	v, err := e.node.eval(env)
	if err != nil {
		return 0, fmt.Errorf("expr %q: %w", e.src, err)
	}
	return v, nil
}

// EvalBool evaluates the expression as a guard: nonzero is true.
func (e *Expr) EvalBool(env *Env) (bool, error) {
	v, err := e.Eval(env)
	return v != 0, err
}

// ---------------------------------------------------------------------------
// AST
// ---------------------------------------------------------------------------

type node interface {
	eval(*Env) (int64, error)
}

type intNode int64

func (n intNode) eval(*Env) (int64, error) { return int64(n), nil }

type varNode string

func (n varNode) eval(env *Env) (int64, error) { return env.lookupVar(string(n)) }

type unaryNode struct {
	op string
	x  node
}

func (n unaryNode) eval(env *Env) (int64, error) {
	v, err := n.x.eval(env)
	if err != nil {
		return 0, err
	}
	if n.op == "-" {
		return -v, nil
	}
	if v == 0 {
		return 1, nil
	}
	return 0, nil
}

type binNode struct {
	op   string
	l, r node
}

func (n binNode) eval(env *Env) (int64, error) {
	l, err := n.l.eval(env)
	if err != nil {
		return 0, err
	}
	// Short-circuit the logical operators.
	switch n.op {
	case "&&":
		if l == 0 {
			return 0, nil
		}
		r, err := n.r.eval(env)
		if err != nil {
			return 0, err
		}
		return b2i(r != 0), nil
	case "||":
		if l != 0 {
			return 1, nil
		}
		r, err := n.r.eval(env)
		if err != nil {
			return 0, err
		}
		return b2i(r != 0), nil
	}
	r, err := n.r.eval(env)
	if err != nil {
		return 0, err
	}
	switch n.op {
	case "+":
		return l + r, nil
	case "-":
		return l - r, nil
	case "*":
		return l * r, nil
	case "/":
		if r == 0 {
			return 0, fmt.Errorf("division by zero")
		}
		return l / r, nil
	case "%":
		if r == 0 {
			return 0, fmt.Errorf("modulo by zero")
		}
		return l % r, nil
	case "==":
		return b2i(l == r), nil
	case "!=":
		return b2i(l != r), nil
	case "<":
		return b2i(l < r), nil
	case "<=":
		return b2i(l <= r), nil
	case ">":
		return b2i(l > r), nil
	case ">=":
		return b2i(l >= r), nil
	}
	return 0, fmt.Errorf("unknown operator %q", n.op)
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

type callNode struct {
	fn   string
	args []node
}

// exprFuncs maps function names to their arities; validation uses it too.
var exprFuncs = map[string]int{
	"east": 1, "west": 1, "parent": 1, "child": 2,
	"rng": 1, "min": 2, "max": 2,
}

func (n callNode) eval(env *Env) (int64, error) {
	vals := make([]int64, len(n.args))
	for i, a := range n.args {
		v, err := a.eval(env)
		if err != nil {
			return 0, err
		}
		vals[i] = v
	}
	switch n.fn {
	case "east":
		if env.N <= 0 {
			return 0, fmt.Errorf("east: no threads in scope")
		}
		return int64(topo.East(int(vals[0]), int(env.N))), nil
	case "west":
		if env.N <= 0 {
			return 0, fmt.Errorf("west: no threads in scope")
		}
		return int64(topo.West(int(vals[0]), int(env.N))), nil
	case "parent":
		return int64(topo.Parent(int(vals[0]))), nil
	case "child":
		if env.N <= 0 {
			return 0, fmt.Errorf("child: no threads in scope")
		}
		return int64(topo.Child(int(vals[0]), int(vals[1]), int(env.N))), nil
	case "rng":
		if env.Rng == nil {
			return 0, fmt.Errorf("rng: no random source in scope")
		}
		if vals[0] <= 0 {
			return 0, fmt.Errorf("rng(%d): bound must be positive", vals[0])
		}
		return int64(env.Rng.Intn(int(vals[0]))), nil
	case "min":
		if vals[0] < vals[1] {
			return vals[0], nil
		}
		return vals[1], nil
	case "max":
		if vals[0] > vals[1] {
			return vals[0], nil
		}
		return vals[1], nil
	}
	return 0, fmt.Errorf("unknown function %q", n.fn)
}

// ---------------------------------------------------------------------------
// Lexer + parser
// ---------------------------------------------------------------------------

type token int

const (
	tokEOF token = iota
	tokInt
	tokIdent
	tokOp     // + - * / % ! < > <= >= == != && ||
	tokLParen // (
	tokRParen // )
	tokComma  // ,
)

type parser struct {
	src string
	pos int
	tok token
	lit string
}

func (p *parser) next() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
	if p.pos >= len(p.src) {
		p.tok, p.lit = tokEOF, ""
		return
	}
	c := p.src[p.pos]
	switch {
	case c >= '0' && c <= '9':
		start := p.pos
		for p.pos < len(p.src) && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
			p.pos++
		}
		p.tok, p.lit = tokInt, p.src[start:p.pos]
	case c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z'):
		start := p.pos
		for p.pos < len(p.src) && (p.src[p.pos] == '_' ||
			p.src[p.pos] >= 'a' && p.src[p.pos] <= 'z' ||
			p.src[p.pos] >= 'A' && p.src[p.pos] <= 'Z' ||
			p.src[p.pos] >= '0' && p.src[p.pos] <= '9') {
			p.pos++
		}
		p.tok, p.lit = tokIdent, p.src[start:p.pos]
	case c == '(':
		p.pos++
		p.tok, p.lit = tokLParen, "("
	case c == ')':
		p.pos++
		p.tok, p.lit = tokRParen, ")"
	case c == ',':
		p.pos++
		p.tok, p.lit = tokComma, ","
	default:
		// Multi-character operators first.
		two := ""
		if p.pos+1 < len(p.src) {
			two = p.src[p.pos : p.pos+2]
		}
		switch two {
		case "==", "!=", "<=", ">=", "&&", "||":
			p.pos += 2
			p.tok, p.lit = tokOp, two
			return
		}
		switch c {
		case '+', '-', '*', '/', '%', '!', '<', '>':
			p.pos++
			p.tok, p.lit = tokOp, string(c)
		default:
			p.tok, p.lit = tokOp, string(c) // reported as unexpected by the parser
			p.pos++
		}
	}
}

func (p *parser) parseOr() (node, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.tok == tokOp && p.lit == "||" {
		p.next()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = binNode{op: "||", l: l, r: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (node, error) {
	l, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.tok == tokOp && p.lit == "&&" {
		p.next()
		r, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		l = binNode{op: "&&", l: l, r: r}
	}
	return l, nil
}

func (p *parser) parseCmp() (node, error) {
	l, err := p.parseSum()
	if err != nil {
		return nil, err
	}
	if p.tok == tokOp {
		switch p.lit {
		case "==", "!=", "<", "<=", ">", ">=":
			op := p.lit
			p.next()
			r, err := p.parseSum()
			if err != nil {
				return nil, err
			}
			return binNode{op: op, l: l, r: r}, nil
		}
	}
	return l, nil
}

func (p *parser) parseSum() (node, error) {
	l, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for p.tok == tokOp && (p.lit == "+" || p.lit == "-") {
		op := p.lit
		p.next()
		r, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		l = binNode{op: op, l: l, r: r}
	}
	return l, nil
}

func (p *parser) parseTerm() (node, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.tok == tokOp && (p.lit == "*" || p.lit == "/" || p.lit == "%") {
		op := p.lit
		p.next()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = binNode{op: op, l: l, r: r}
	}
	return l, nil
}

func (p *parser) parseUnary() (node, error) {
	if p.tok == tokOp && (p.lit == "-" || p.lit == "!") {
		op := p.lit
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return unaryNode{op: op, x: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (node, error) {
	switch p.tok {
	case tokInt:
		v, err := strconv.ParseInt(p.lit, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", p.lit)
		}
		p.next()
		return intNode(v), nil
	case tokIdent:
		name := p.lit
		p.next()
		if p.tok != tokLParen {
			return varNode(name), nil
		}
		// Function call.
		arity, ok := exprFuncs[name]
		if !ok {
			return nil, fmt.Errorf("unknown function %q", name)
		}
		p.next()
		var args []node
		if p.tok != tokRParen {
			for {
				a, err := p.parseOr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if p.tok != tokComma {
					break
				}
				p.next()
			}
		}
		if p.tok != tokRParen {
			return nil, fmt.Errorf("missing ) after %s(", name)
		}
		p.next()
		if len(args) != arity {
			return nil, fmt.Errorf("%s takes %d argument(s), got %d", name, arity, len(args))
		}
		return callNode{fn: name, args: args}, nil
	case tokLParen:
		p.next()
		n, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.tok != tokRParen {
			return nil, fmt.Errorf("missing )")
		}
		p.next()
		return n, nil
	case tokEOF:
		return nil, fmt.Errorf("unexpected end of expression")
	default:
		return nil, fmt.Errorf("unexpected %q", p.lit)
	}
}
