package scenario

import (
	"fmt"
	"math/rand"
	"strconv"
)

// GenOptions bounds the seeded generator. The zero value selects fuzz-
// friendly defaults: small iteration counts so a generated scenario
// simulates in milliseconds, with sync/sharing structure still spanning
// every pattern class the predictor distinguishes.
type GenOptions struct {
	// MaxPhases bounds the number of pattern phases (default 4, min 1).
	MaxPhases int
	// MaxIters bounds the base outer-iteration count (default 6, min 2).
	MaxIters int
	// MaxAccesses bounds per-step access counts (default 8, min 2).
	MaxAccesses int
}

func (o GenOptions) normalize() GenOptions {
	if o.MaxPhases < 1 {
		o.MaxPhases = 4
	}
	if o.MaxIters < 2 {
		o.MaxIters = 6
	}
	if o.MaxAccesses < 2 {
		o.MaxAccesses = 8
	}
	return o
}

// patternKinds are the sharing-pattern primitives the generator composes —
// the same classes the built-in profiles exercise (paper §3.4).
var patternKinds = []string{
	"exchange",  // stride-d ring producer-consumer (ocean, water-ns)
	"tree",      // parent/child tree exchange (fmm)
	"hotspot",   // rotating coordinator broadcasts, all consume (lu, streamcluster)
	"migratory", // lock-protected shared data bouncing between cores (water-ns CS)
	"steal",     // publish everywhere, consume from random victims (radiosity)
	"pipeline",  // per-stage region passed to the east neighbor (ferret, vips)
}

// Generate emits a random-but-valid scenario spec, deterministically in
// seed: the same (seed, opt) always yields the identical spec (and
// therefore identical canonical bytes and digest). Generated specs always
// pass Validate and build at any thread count >= 1 — guard, target and
// lock expressions come from templates whose values are in range by
// construction — so sweeps can fuzz the predictor across arbitrarily many
// never-seen sync/sharing shapes without a rejection loop.
func Generate(seed int64, opt GenOptions) *Spec {
	opt = opt.normalize()
	rng := rand.New(rand.NewSource(seed))
	phases := 1 + rng.Intn(opt.MaxPhases)

	s := &Spec{
		Version: Version,
		Name:    fmt.Sprintf("fuzz-%d", seed),
		Suite:   "fuzz",
		Iters:   2 + rng.Intn(opt.MaxIters-1),
		Locks:   1 + rng.Intn(24),
		Defs:    map[string]string{},
	}

	// Each phase owns a contiguous range of barrier sites.
	var steps []Step
	lo := 0
	for p := 0; p < phases; p++ {
		width := 1 + rng.Intn(6)
		hi := lo + width
		kind := patternKinds[rng.Intn(len(patternKinds))]
		steps = append(steps, genPhase(rng, p, kind, lo, hi, s, opt))
		lo = hi
	}
	s.Barriers = lo

	// Every epoch tail: private streaming work (the non-communicating miss
	// knob) and compute. Small working sets keep fuzz runs fast.
	steps = append(steps,
		Step{Op: "private", Count: strconv.Itoa(1 + rng.Intn(opt.MaxAccesses)),
			Ws: 1 << (10 + rng.Intn(8))},
		Step{Op: "compute", Cycles: strconv.Itoa(50 + 50*rng.Intn(8))},
	)
	s.Steps = steps
	return s
}

// genPhase emits one pattern phase guarded to barrier sites [lo, hi).
func genPhase(rng *rand.Rand, idx int, kind string, lo, hi int, s *Spec, opt GenOptions) Step {
	guard := fmt.Sprintf("j >= %d && j < %d", lo, hi)
	if lo == 0 {
		guard = fmt.Sprintf("j < %d", hi)
	}
	region := 2 * idx // two regions per phase keeps produce/consume spaces disjoint
	lines := 1 + rng.Intn(8)
	cnt := func(minimum int) string {
		return strconv.Itoa(minimum + rng.Intn(opt.MaxAccesses))
	}
	even, odd := "j % 2 == 0", "j % 2 != 0"
	var body []Step
	switch kind {
	case "exchange":
		// The 3*n bias keeps the reverse-direction operand non-negative at
		// any thread count (Go's % keeps the dividend's sign).
		d := 1 + rng.Intn(3)
		body = []Step{
			{When: even, Op: "produce", Region: itoa(region),
				To: fmt.Sprintf("(i + %d) %% n", d), Lines: lines, Count: cnt(lines)},
			{When: odd, Op: "consume", Region: itoa(region),
				From: fmt.Sprintf("(i + 3*n - %d) %% n", d), Lines: lines, Count: cnt(lines)},
		}
	case "tree":
		body = []Step{
			{When: even, Op: "produce", Region: itoa(region),
				To: "parent(i)", Lines: lines, Count: cnt(lines)},
			{When: odd, Op: "consume", Region: itoa(region),
				From: "child(i, 0)", Lines: lines, Count: cnt(1)},
			{When: odd, Op: "consume", Region: itoa(region),
				From: "child(i, 1)", Lines: lines, Count: cnt(1)},
		}
	case "hotspot":
		owner := fmt.Sprintf("owner%d", idx)
		s.Defs[owner] = fmt.Sprintf("(it / %d) %% n", 1+rng.Intn(4))
		body = []Step{
			{When: even + " && i == " + owner, Op: "produce_all",
				Region: itoa(region), Lines: lines},
			{When: odd + " && i != " + owner, Op: "consume", Region: itoa(region),
				From: owner, Lines: lines, Count: cnt(1)},
		}
	case "migratory":
		a, b := 1+rng.Intn(7), rng.Intn(5)
		body = []Step{
			{Op: "cs", Lock: fmt.Sprintf("(i + j*%d + %d) %% locks", a, b),
				Region: itoa(region), Lines: 1 + rng.Intn(4), Count: cnt(2)},
		}
	case "steal":
		body = []Step{
			{When: even, Op: "produce_all", Region: itoa(region), Lines: lines},
			{When: odd, Op: "consume", Region: itoa(region),
				From: "rng(n)", Lines: lines, Count: cnt(1)},
			{When: odd, Op: "consume", Region: itoa(region),
				From: "rng(n)", Lines: lines, Count: cnt(1)},
		}
	case "pipeline":
		stages := 2 + rng.Intn(3)
		stage := fmt.Sprintf("%d + j %% %d", region, stages)
		body = []Step{
			{When: even, Op: "produce", Region: stage,
				To: "east(i)", Lines: lines, Count: cnt(lines)},
			{When: odd, Op: "consume", Region: stage,
				From: "west(i)", Lines: lines, Count: cnt(lines)},
		}
	default:
		panic("scenario: unknown pattern kind " + kind)
	}
	return Step{When: guard, Op: "group", Steps: body}
}

func itoa(v int) string { return strconv.Itoa(v) }
