package scenario

import (
	"math/rand"
	"strings"
	"testing"
)

func eval(t *testing.T, src string, env *Env) int64 {
	t.Helper()
	e, err := CompileExpr(src)
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	v, err := e.Eval(env)
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	return v
}

func TestExprArithmetic(t *testing.T) {
	env := &Env{I: 5, N: 16, It: 7, J: 3, Iters: 10, Locks: 30, Bars: 20}
	for _, tc := range []struct {
		src  string
		want int64
	}{
		{"1 + 2*3", 7},
		{"(1 + 2) * 3", 9},
		{"10 / 3", 3}, // Go truncating division
		{"-1 / 2", 0}, // truncation toward zero, like (i-1)/2 at i=0
		{"10 % 3", 1},
		{"i", 5},
		{"n - i", 11},
		{"(i + 1) % n", 6},
		{"it / 4 % n", 1},
		{"j % 2 == 0", 0},
		{"j % 2 != 0", 1},
		{"i < 8 && j >= 3", 1},
		{"i < 3 || j == 3", 1},
		{"!(i == 5)", 0},
		{"-i + 10", 5},
		{"1 + 2*(3 <= 4)", 3}, // comparisons are 0/1 values
		{"min(i, j)", 3},
		{"max(i, j)", 5},
		{"east(i)", 6},
		{"west(0)", 15},
		{"parent(0)", 0},
		{"parent(5)", 2},
		{"child(7, 0)", 15},
		{"child(7, 1)", 0}, // 16 wraps to 0
		{"locks", 30},
		{"bars", 20},
		{"iters", 10},
	} {
		if got := eval(t, tc.src, env); got != tc.want {
			t.Errorf("%q = %d, want %d", tc.src, got, tc.want)
		}
	}
}

func TestExprMatchesGoSemantics(t *testing.T) {
	// The division/modulo behavior the legacy profiles depend on.
	env := &Env{N: 16}
	if got := eval(t, "(0 - 1) / 2", env); got != (0-1)/2 {
		t.Errorf("(0-1)/2 = %d, want %d", got, (0-1)/2)
	}
	if got := eval(t, "(0 - 1) % 5", env); got != (0-1)%5 {
		t.Errorf("(0-1)%%5 = %d, want %d", got, (0-1)%5)
	}
}

func TestExprRng(t *testing.T) {
	// rng(m) draws from the environment's source in evaluation order,
	// exactly like the profiles' b.Rng().Intn(m).
	env := &Env{N: 16, Rng: rand.New(rand.NewSource(42))}
	ref := rand.New(rand.NewSource(42))
	e, _ := CompileExpr("rng(n)")
	for k := 0; k < 10; k++ {
		got, err := e.Eval(env)
		if err != nil {
			t.Fatal(err)
		}
		if want := int64(ref.Intn(16)); got != want {
			t.Fatalf("draw %d: rng(n) = %d, want %d", k, got, want)
		}
	}
	if _, err := e.Eval(&Env{N: 0, Rng: rand.New(rand.NewSource(1))}); err == nil {
		t.Error("rng(0) should error")
	}
	if _, err := e.Eval(&Env{N: 4}); err == nil {
		t.Error("rng without a source should error")
	}
}

func TestExprDefs(t *testing.T) {
	owner, err := CompileExpr("(it / 4) % n")
	if err != nil {
		t.Fatal(err)
	}
	env := &Env{N: 16, It: 9, defs: map[string]*Expr{"owner": owner}}
	if got := eval(t, "owner + 1", env); got != 3 {
		t.Errorf("owner + 1 = %d, want 3", got)
	}
	// Defs may reference other defs, but cycles terminate with an error.
	self, _ := CompileExpr("loopy + 1")
	env.defs["loopy"] = self
	e, _ := CompileExpr("loopy")
	if _, err := e.Eval(env); err == nil || !strings.Contains(err.Error(), "deeper") {
		t.Errorf("cyclic def should exceed depth, got %v", err)
	}
}

func TestExprErrors(t *testing.T) {
	for _, src := range []string{
		"", "1 +", "(1", "1 ** 2", "foo(1)", "east()", "east(1, 2)",
		"child(1)", "1 2", "9999999999999999999999", "a b", "&& 1", "$x",
	} {
		if _, err := CompileExpr(src); err == nil {
			t.Errorf("CompileExpr(%q) should fail", src)
		}
	}
	env := &Env{N: 16}
	for _, src := range []string{"1 / 0", "1 % (i)", "nope", "k"} {
		e, err := CompileExpr(src)
		if err != nil {
			t.Fatalf("compile %q: %v", src, err)
		}
		if _, err := e.Eval(env); err == nil {
			t.Errorf("Eval(%q) should fail", src)
		}
	}
}

func TestExprShortCircuit(t *testing.T) {
	// && must not evaluate its right side when the left is false — guards
	// like "n > 4 && rng(n - 4) == 0" rely on it.
	env := &Env{N: 2, Rng: rand.New(rand.NewSource(1))}
	if got := eval(t, "n > 4 && 1 / (n - 2) == 0", env); got != 0 {
		t.Errorf("short-circuit && = %d, want 0", got)
	}
	if got := eval(t, "n == 2 || 1 / (n - 2) == 0", env); got != 1 {
		t.Errorf("short-circuit || = %d, want 1", got)
	}
}
