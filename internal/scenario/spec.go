// Package scenario defines the declarative workload specification: a JSON
// document describing a synthetic multithreaded program's synchronization
// structure (barrier sites, lock sites, iteration schedule) and the
// composition of sharing-pattern primitives executed between barriers
// (producer-consumer exchange, hot-spot broadcast, migratory critical
// sections, random stealing, private streaming).
//
// A spec is pure data: the same spec built at the same (threads, scale,
// seed) always emits the same operation stream, so specs slot into the
// repository's determinism contract — the byte-replay harness and spvet
// gate spec-driven runs exactly as they gate the built-in profiles. The
// built-in 17 SPLASH-2/PARSEC stand-ins are themselves shipped as specs
// (internal/workload/specs) and interpreted through the same path.
//
// The package is deliberately free of simulator dependencies: it compiles
// specs and walks them against the Machine interface; internal/workload
// adapts that interface onto its op-stream Builder. See DESIGN.md §13 for
// the schema and the generator's validity invariants.
package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"

	"spcoh/internal/detutil"
)

// Version is the spec schema version this package reads and writes.
const Version = 1

// Limits keeping generated and hand-written specs inside the address-space
// and runtime envelope the simulator models.
const (
	MaxBarriers = 256
	MaxLocks    = 256
	MaxIters    = 4096
	MaxRegions  = 64
	MaxLines    = 1024
	MaxCount    = 1 << 16
	MaxSteps    = 256
	MaxDepth    = 8 // nesting depth of group/loop steps
)

// PaperStats carries a profile's published Table 1 reference values for
// side-by-side reporting; zero for synthetic (generated) scenarios.
type PaperStats struct {
	StaticCS     int    `json:"static_cs,omitempty"`
	StaticEpochs int    `json:"static_epochs,omitempty"`
	DynEpochs    int    `json:"dyn_epochs,omitempty"`
	Input        string `json:"input,omitempty"`
}

// Spec is one declarative workload scenario.
type Spec struct {
	Version int    `json:"version"`
	Name    string `json:"name"`
	Suite   string `json:"suite,omitempty"`

	// Barriers and Locks are the static sync-site populations; Iters is
	// the base outer-iteration count, scaled at build time by
	// topo.ScaleIters. Each iteration crosses every barrier site in order.
	Barriers int `json:"barriers"`
	Locks    int `json:"locks"`
	Iters    int `json:"iters"`

	// Defs are named expressions usable as variables in any step
	// expression (e.g. "owner": "(it / 4) % n").
	Defs map[string]string `json:"defs,omitempty"`

	// Steps is the per-barrier body: after every barrier crossing, each
	// thread executes the steps whose guards hold, in order.
	Steps []Step `json:"steps"`

	// Paper holds published reference statistics (built-in profiles only).
	Paper *PaperStats `json:"paper,omitempty"`
}

// Step is one guarded action of the per-barrier body. Op selects the
// action; When (optional) is a guard expression — the step runs only when
// it evaluates nonzero. Expression-valued fields are strings in the
// scenario expression language; structural fields (lines, ws) are plain
// integers.
//
//	op            fields
//	produce       region, to, lines, count
//	consume       region, from, lines, count
//	produce_all   region, lines            (one produce per consumer)
//	cs            lock, region, lines, count
//	private       count, ws
//	compute       cycles
//	loop          var, lo, hi, steps       (inclusive bounds)
//	group         steps                    (guard-scoped nesting)
type Step struct {
	When string `json:"when,omitempty"`
	Op   string `json:"op"`

	Region string `json:"region,omitempty"` // shared region index (expr)
	To     string `json:"to,omitempty"`     // produce consumer (expr)
	From   string `json:"from,omitempty"`   // consume producer (expr)
	Lock   string `json:"lock,omitempty"`   // cs lock index (expr)
	Count  string `json:"count,omitempty"`  // access count (expr)
	Cycles string `json:"cycles,omitempty"` // compute cycles (expr)
	Lines  int    `json:"lines,omitempty"`  // partition / protected lines
	Ws     int    `json:"ws,omitempty"`     // private working-set lines

	Var string `json:"var,omitempty"` // loop variable name
	Lo  string `json:"lo,omitempty"`  // loop lower bound (expr)
	Hi  string `json:"hi,omitempty"`  // loop upper bound (expr, inclusive)

	Steps []Step `json:"steps,omitempty"` // loop / group body
}

// Parse decodes and validates a spec document.
func Parse(data []byte) (*Spec, error) {
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("scenario: parse: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Load reads and parses the spec file at path.
func Load(path string) (*Spec, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	s, err := Parse(b)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// Canonical returns the spec's canonical JSON encoding: fixed field order,
// map keys sorted (encoding/json), no indentation. Digest and the sweep
// job identity hash over these bytes.
func (s *Spec) Canonical() ([]byte, error) {
	b, err := json.Marshal(s)
	if err != nil {
		return nil, fmt.Errorf("scenario: canonicalize %s: %w", s.Name, err)
	}
	return b, nil
}

// Digest returns the SHA-256 of the canonical encoding — the spec's
// content address. Two specs with equal digests build identical programs
// at any (threads, scale, seed).
func (s *Spec) Digest() string {
	b, err := s.Canonical()
	if err != nil {
		// Spec is a tree of scalars; Marshal cannot fail on a validated one.
		panic("scenario: digest: " + err.Error())
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// reservedNames are identifiers the walker binds; defs and loop variables
// may not shadow them.
var reservedNames = map[string]bool{
	"i": true, "n": true, "it": true, "j": true,
	"iters": true, "locks": true, "bars": true,
}

// Validate checks structural and expression-level well-formedness. A valid
// spec can still fail at emit time on data-dependent errors (an evaluated
// lock index out of range, rng with a non-positive bound); FromSpec
// surfaces those as build errors.
func (s *Spec) Validate() error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("scenario: spec %q: %s", s.Name, fmt.Sprintf(format, args...))
	}
	if s.Version != Version {
		return fail("unsupported version %d (want %d)", s.Version, Version)
	}
	if s.Name == "" {
		return fail("missing name")
	}
	if s.Barriers < 1 || s.Barriers > MaxBarriers {
		return fail("barriers %d out of range [1, %d]", s.Barriers, MaxBarriers)
	}
	if s.Locks < 0 || s.Locks > MaxLocks {
		return fail("locks %d out of range [0, %d]", s.Locks, MaxLocks)
	}
	if s.Iters < 1 || s.Iters > MaxIters {
		return fail("iters %d out of range [1, %d]", s.Iters, MaxIters)
	}
	if len(s.Steps) == 0 {
		return fail("no steps")
	}
	for _, name := range detutil.SortedKeys(s.Defs) {
		if reservedNames[name] {
			return fail("def %q shadows a builtin variable", name)
		}
		if _, ok := exprFuncs[name]; ok {
			return fail("def %q shadows a builtin function", name)
		}
		if _, err := CompileExpr(s.Defs[name]); err != nil {
			return fail("def %q: %v", name, err)
		}
	}
	n, err := validateSteps(s.Steps, 0)
	if err != nil {
		return fail("%v", err)
	}
	if n > MaxSteps {
		return fail("%d steps exceed the %d limit", n, MaxSteps)
	}
	return nil
}

// validateSteps checks a step list, returning the total step count.
func validateSteps(steps []Step, depth int) (int, error) {
	if depth > MaxDepth {
		return 0, fmt.Errorf("steps nested deeper than %d", MaxDepth)
	}
	total := 0
	for k := range steps {
		st := &steps[k]
		total++
		if st.When != "" {
			if _, err := CompileExpr(st.When); err != nil {
				return 0, fmt.Errorf("step %d (%s): when: %v", k, st.Op, err)
			}
		}
		expr := func(field, src string, required bool) error {
			if src == "" {
				if required {
					return fmt.Errorf("step %d (%s): missing %s", k, st.Op, field)
				}
				return nil
			}
			if _, err := CompileExpr(src); err != nil {
				return fmt.Errorf("step %d (%s): %s: %v", k, st.Op, field, err)
			}
			return nil
		}
		lines := func(required bool) error {
			if st.Lines == 0 && !required {
				return nil
			}
			if st.Lines < 1 || st.Lines > MaxLines {
				return fmt.Errorf("step %d (%s): lines %d out of range [1, %d]", k, st.Op, st.Lines, MaxLines)
			}
			return nil
		}
		var err error
		switch st.Op {
		case "produce":
			err = firstErr(expr("region", st.Region, true), expr("to", st.To, true),
				expr("count", st.Count, true), lines(true))
		case "consume":
			err = firstErr(expr("region", st.Region, true), expr("from", st.From, true),
				expr("count", st.Count, true), lines(true))
		case "produce_all":
			err = firstErr(expr("region", st.Region, true), lines(true))
		case "cs":
			err = firstErr(expr("lock", st.Lock, true), expr("region", st.Region, true),
				expr("count", st.Count, true), lines(true))
		case "private":
			err = expr("count", st.Count, true)
			if err == nil && (st.Ws < 1 || st.Ws > 1<<24) {
				err = fmt.Errorf("step %d (private): ws %d out of range [1, %d]", k, st.Ws, 1<<24)
			}
		case "compute":
			err = expr("cycles", st.Cycles, true)
		case "loop":
			if st.Var == "" {
				err = fmt.Errorf("step %d (loop): missing var", k)
			} else if reservedNames[st.Var] {
				err = fmt.Errorf("step %d (loop): var %q shadows a builtin", k, st.Var)
			} else {
				err = firstErr(expr("lo", st.Lo, true), expr("hi", st.Hi, true))
			}
			if err == nil {
				if len(st.Steps) == 0 {
					err = fmt.Errorf("step %d (loop): empty body", k)
				} else {
					var sub int
					sub, err = validateSteps(st.Steps, depth+1)
					total += sub
				}
			}
		case "group":
			if len(st.Steps) == 0 {
				err = fmt.Errorf("step %d (group): empty body", k)
			} else {
				var sub int
				sub, err = validateSteps(st.Steps, depth+1)
				total += sub
			}
		case "":
			err = fmt.Errorf("step %d: missing op", k)
		default:
			err = fmt.Errorf("step %d: unknown op %q", k, st.Op)
		}
		if err != nil {
			return 0, err
		}
	}
	return total, nil
}

func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
