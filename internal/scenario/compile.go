package scenario

import (
	"fmt"
	"math/rand"

	"spcoh/internal/detutil"
	"spcoh/internal/workload/topo"
)

// Machine receives the emitted operation stream of a spec walk. The
// internal/workload package adapts it onto its op-stream Builder; tests
// use recording fakes. All indices are pre-validated: region, to, from and
// lock are in range when a callback fires.
type Machine interface {
	// Barrier announces barrier site j (0-based) crossing for all threads.
	Barrier(site int)
	// Produce emits count writes by tid over consumer to's partition of
	// region.
	Produce(tid, region, to, lines, count int)
	// Consume emits count reads by tid over its partition of from's slice.
	Consume(tid, region, from, lines, count int)
	// CS emits one critical section of count accesses under lock.
	CS(tid, lock, region, lines, count int)
	// Private emits count private-heap accesses over a ws-line working set.
	Private(tid, count, ws int)
	// Compute burns cycles of non-memory work.
	Compute(tid, cycles int)
}

// Compiled is a validated spec with every expression parsed, ready to walk.
type Compiled struct {
	Spec  *Spec
	defs  map[string]*Expr
	steps []compiledStep
}

type compiledStep struct {
	op     string
	when   *Expr
	region *Expr
	target *Expr // produce to / consume from / cs lock
	count  *Expr
	cycles *Expr
	lines  int
	ws     int

	loopVar string
	lo, hi  *Expr
	body    []compiledStep
}

// Compile validates the spec and parses every expression once.
func (s *Spec) Compile() (*Compiled, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	c := &Compiled{Spec: s, defs: make(map[string]*Expr, len(s.Defs))}
	for _, name := range detutil.SortedKeys(s.Defs) {
		e, err := CompileExpr(s.Defs[name])
		if err != nil {
			// Validate compiled it already; unreachable.
			return nil, err
		}
		c.defs[name] = e
	}
	var err error
	c.steps, err = compileSteps(s.Steps)
	if err != nil {
		return nil, err
	}
	return c, nil
}

func compileSteps(steps []Step) ([]compiledStep, error) {
	out := make([]compiledStep, len(steps))
	for k := range steps {
		st := &steps[k]
		cs := compiledStep{op: st.Op, lines: st.Lines, ws: st.Ws, loopVar: st.Var}
		var err error
		compile := func(dst **Expr, src string) {
			if err != nil || src == "" {
				return
			}
			*dst, err = CompileExpr(src)
		}
		compile(&cs.when, st.When)
		compile(&cs.region, st.Region)
		compile(&cs.count, st.Count)
		compile(&cs.cycles, st.Cycles)
		compile(&cs.lo, st.Lo)
		compile(&cs.hi, st.Hi)
		switch st.Op {
		case "produce":
			compile(&cs.target, st.To)
		case "consume":
			compile(&cs.target, st.From)
		case "cs":
			compile(&cs.target, st.Lock)
		}
		if err != nil {
			return nil, err
		}
		if len(st.Steps) > 0 {
			cs.body, err = compileSteps(st.Steps)
			if err != nil {
				return nil, err
			}
		}
		out[k] = cs
	}
	return out, nil
}

// Emit walks the compiled spec and drives m: for each scaled iteration,
// cross every barrier site in order, then run the guarded step list once
// per thread (tid order). rng backs the rng() expression function; passing
// the program builder's source keeps spec-driven builds byte-identical to
// equivalent hand-coded ones. Emit is deterministic in (threads, scale,
// rng seed).
func (c *Compiled) Emit(threads int, scale float64, rng *rand.Rand, m Machine) error {
	if threads < 1 {
		return fmt.Errorf("scenario: emit %s: %d threads", c.Spec.Name, threads)
	}
	iters := topo.ScaleIters(c.Spec.Iters, scale)
	env := &Env{
		N:     int64(threads),
		Iters: int64(iters),
		Locks: int64(c.Spec.Locks),
		Bars:  int64(c.Spec.Barriers),
		Rng:   rng,
		defs:  c.defs,
		loop:  make(map[string]int64),
	}
	for it := 0; it < iters; it++ {
		env.It = int64(it)
		for j := 0; j < c.Spec.Barriers; j++ {
			env.J = int64(j)
			m.Barrier(j)
			for tid := 0; tid < threads; tid++ {
				env.I = int64(tid)
				if err := c.runSteps(c.steps, env, tid, threads, m); err != nil {
					return fmt.Errorf("scenario: emit %s (it=%d j=%d tid=%d): %w",
						c.Spec.Name, it, j, tid, err)
				}
			}
		}
	}
	return nil
}

// evalIndex evaluates e and range-checks the result against [0, limit).
func evalIndex(e *Expr, env *Env, what string, limit int64) (int, error) {
	v, err := e.Eval(env)
	if err != nil {
		return 0, err
	}
	if v < 0 || v >= limit {
		return 0, fmt.Errorf("%s %d out of range [0, %d)", what, v, limit)
	}
	return int(v), nil
}

// evalCount evaluates a count/cycles expression, range-checked to
// [0, MaxCount]. A zero count emits nothing (a skipped action), matching
// the builder helpers' treatment of n <= 0.
func evalCount(e *Expr, env *Env, what string) (int, error) {
	v, err := e.Eval(env)
	if err != nil {
		return 0, err
	}
	if v < 0 || v > MaxCount {
		return 0, fmt.Errorf("%s %d out of range [0, %d]", what, v, MaxCount)
	}
	return int(v), nil
}

func (c *Compiled) runSteps(steps []compiledStep, env *Env, tid, threads int, m Machine) error {
	for k := range steps {
		st := &steps[k]
		if st.when != nil {
			ok, err := st.when.EvalBool(env)
			if err != nil {
				return err
			}
			if !ok {
				continue
			}
		}
		switch st.op {
		case "produce", "consume":
			region, err := evalIndex(st.region, env, "region", MaxRegions)
			if err != nil {
				return err
			}
			peer, err := evalIndex(st.target, env, "peer", int64(threads))
			if err != nil {
				return err
			}
			count, err := evalCount(st.count, env, "count")
			if err != nil {
				return err
			}
			if st.op == "produce" {
				m.Produce(tid, region, peer, st.lines, count)
			} else {
				m.Consume(tid, region, peer, st.lines, count)
			}
		case "produce_all":
			region, err := evalIndex(st.region, env, "region", MaxRegions)
			if err != nil {
				return err
			}
			for consumer := 0; consumer < threads; consumer++ {
				m.Produce(tid, region, consumer, st.lines, st.lines)
			}
		case "cs":
			lock, err := evalIndex(st.target, env, "lock", int64(c.Spec.Locks))
			if err != nil {
				return err
			}
			region, err := evalIndex(st.region, env, "region", MaxRegions)
			if err != nil {
				return err
			}
			count, err := evalCount(st.count, env, "count")
			if err != nil {
				return err
			}
			m.CS(tid, lock, region, st.lines, count)
		case "private":
			count, err := evalCount(st.count, env, "count")
			if err != nil {
				return err
			}
			m.Private(tid, count, st.ws)
		case "compute":
			cycles, err := evalCount(st.cycles, env, "cycles")
			if err != nil {
				return err
			}
			m.Compute(tid, cycles)
		case "loop":
			lo, err := st.lo.Eval(env)
			if err != nil {
				return err
			}
			hi, err := st.hi.Eval(env)
			if err != nil {
				return err
			}
			if hi-lo >= MaxCount {
				return fmt.Errorf("loop %s: %d iterations exceed %d", st.loopVar, hi-lo+1, MaxCount)
			}
			outer, shadowed := env.loop[st.loopVar]
			for v := lo; v <= hi; v++ {
				env.loop[st.loopVar] = v
				if err := c.runSteps(st.body, env, tid, threads, m); err != nil {
					return err
				}
			}
			if shadowed {
				env.loop[st.loopVar] = outer
			} else {
				delete(env.loop, st.loopVar)
			}
		case "group":
			if err := c.runSteps(st.body, env, tid, threads, m); err != nil {
				return err
			}
		}
	}
	return nil
}
