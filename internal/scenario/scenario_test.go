package scenario

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// recorder is a Machine that logs every callback as one line.
type recorder struct {
	lines []string
}

func (r *recorder) logf(format string, args ...any) {
	r.lines = append(r.lines, fmt.Sprintf(format, args...))
}
func (r *recorder) Barrier(site int) { r.logf("bar %d", site) }
func (r *recorder) Produce(tid, region, to, lines, count int) {
	r.logf("prod t%d r%d to%d l%d c%d", tid, region, to, lines, count)
}
func (r *recorder) Consume(tid, region, from, lines, count int) {
	r.logf("cons t%d r%d fr%d l%d c%d", tid, region, from, lines, count)
}
func (r *recorder) CS(tid, lock, region, lines, count int) {
	r.logf("cs t%d k%d r%d l%d c%d", tid, lock, region, lines, count)
}
func (r *recorder) Private(tid, count, ws int) { r.logf("priv t%d c%d w%d", tid, count, ws) }
func (r *recorder) Compute(tid, cycles int)    { r.logf("comp t%d c%d", tid, cycles) }

func mustCompile(t *testing.T, s *Spec) *Compiled {
	t.Helper()
	c, err := s.Compile()
	if err != nil {
		t.Fatalf("compile %s: %v", s.Name, err)
	}
	return c
}

func specJSON(t *testing.T, src string) *Spec {
	t.Helper()
	s, err := Parse([]byte(src))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return s
}

const ringSpec = `{
  "version": 1, "name": "ring", "barriers": 2, "locks": 2, "iters": 2,
  "defs": {"d": "1 + it % 2"},
  "steps": [
    {"when": "j == 0", "op": "produce", "region": "0", "to": "east(i)", "lines": 2, "count": "2"},
    {"when": "j == 1", "op": "consume", "region": "0", "from": "west(i)", "lines": 2, "count": "d"},
    {"when": "j == 1", "op": "cs", "lock": "i % locks", "region": "1", "lines": 1, "count": "3"},
    {"op": "private", "count": "1", "ws": 64},
    {"op": "compute", "cycles": "10"}
  ]
}`

func TestEmitOrderAndGuards(t *testing.T) {
	s := specJSON(t, ringSpec)
	c := mustCompile(t, s)
	rec := &recorder{}
	if err := c.Emit(2, 1.0, rand.New(rand.NewSource(1)), rec); err != nil {
		t.Fatal(err)
	}
	want := []string{
		// it=0, j=0
		"bar 0",
		"prod t0 r0 to1 l2 c2", "priv t0 c1 w64", "comp t0 c10",
		"prod t1 r0 to0 l2 c2", "priv t1 c1 w64", "comp t1 c10",
		// it=0, j=1 (d = 1 + 0%2 = 1)
		"bar 1",
		"cons t0 r0 fr1 l2 c1", "cs t0 k0 r1 l1 c3", "priv t0 c1 w64", "comp t0 c10",
		"cons t1 r0 fr0 l2 c1", "cs t1 k1 r1 l1 c3", "priv t1 c1 w64", "comp t1 c10",
		// it=1, j=0
		"bar 0",
		"prod t0 r0 to1 l2 c2", "priv t0 c1 w64", "comp t0 c10",
		"prod t1 r0 to0 l2 c2", "priv t1 c1 w64", "comp t1 c10",
		// it=1, j=1 (d = 2 -> west by 2 wraps to self at n=2... east/west are fixed fns)
		"bar 1",
		"cons t0 r0 fr1 l2 c2", "cs t0 k0 r1 l1 c3", "priv t0 c1 w64", "comp t0 c10",
		"cons t1 r0 fr0 l2 c2", "cs t1 k1 r1 l1 c3", "priv t1 c1 w64", "comp t1 c10",
	}
	if got := strings.Join(rec.lines, "\n"); got != strings.Join(want, "\n") {
		t.Errorf("emit trace mismatch:\ngot:\n%s\nwant:\n%s", got, strings.Join(want, "\n"))
	}
}

func TestEmitProduceAllAndLoop(t *testing.T) {
	s := specJSON(t, `{
	  "version": 1, "name": "fanout", "barriers": 1, "locks": 0, "iters": 1,
	  "steps": [
	    {"when": "i == 0", "op": "produce_all", "region": "0", "lines": 2},
	    {"when": "i != 0", "op": "loop", "var": "k", "lo": "1", "hi": "2",
	     "steps": [{"op": "consume", "region": "0", "from": "0", "lines": 2, "count": "k"}]}
	  ]
	}`)
	c := mustCompile(t, s)
	rec := &recorder{}
	if err := c.Emit(3, 1.0, nil, rec); err != nil {
		t.Fatal(err)
	}
	// ScaleIters floors at 2, so the one-iter spec still runs twice.
	iter := []string{
		"bar 0",
		"prod t0 r0 to0 l2 c2", "prod t0 r0 to1 l2 c2", "prod t0 r0 to2 l2 c2",
		"cons t1 r0 fr0 l2 c1", "cons t1 r0 fr0 l2 c2",
		"cons t2 r0 fr0 l2 c1", "cons t2 r0 fr0 l2 c2",
	}
	want := append(append([]string{}, iter...), iter...)
	if got := strings.Join(rec.lines, "\n"); got != strings.Join(want, "\n") {
		t.Errorf("emit trace mismatch:\ngot:\n%s\nwant:\n%s", got, strings.Join(want, "\n"))
	}
}

func TestEmitRangeErrors(t *testing.T) {
	for _, tc := range []struct {
		name, body string
	}{
		{"peer", `{"op": "produce", "region": "0", "to": "n", "lines": 1, "count": "1"}`},
		{"negative peer", `{"op": "consume", "region": "0", "from": "0 - 1", "lines": 1, "count": "1"}`},
		{"region", `{"op": "produce", "region": "64", "to": "0", "lines": 1, "count": "1"}`},
		{"lock", `{"op": "cs", "lock": "locks", "region": "0", "lines": 1, "count": "1"}`},
		{"count", `{"op": "private", "count": "0 - 1", "ws": 64}`},
	} {
		s := specJSON(t, `{"version": 1, "name": "bad", "barriers": 1, "locks": 1, "iters": 1,
		  "steps": [`+tc.body+`]}`)
		c := mustCompile(t, s)
		if err := c.Emit(2, 1.0, nil, &recorder{}); err == nil {
			t.Errorf("%s: Emit should fail", tc.name)
		}
	}
}

func TestEmitScalesIters(t *testing.T) {
	s := specJSON(t, `{"version": 1, "name": "sc", "barriers": 1, "locks": 0, "iters": 8,
	  "steps": [{"op": "compute", "cycles": "1"}]}`)
	c := mustCompile(t, s)
	rec := &recorder{}
	if err := c.Emit(1, 0.5, nil, rec); err != nil {
		t.Fatal(err)
	}
	bars := 0
	for _, l := range rec.lines {
		if strings.HasPrefix(l, "bar ") {
			bars++
		}
	}
	if bars != 4 {
		t.Errorf("scale 0.5 of 8 iters crossed %d barriers, want 4", bars)
	}
}

func TestValidateRejects(t *testing.T) {
	base := func() *Spec {
		return specJSON(t, ringSpec)
	}
	cases := []struct {
		name string
		mut  func(*Spec)
	}{
		{"version", func(s *Spec) { s.Version = 99 }},
		{"name", func(s *Spec) { s.Name = "" }},
		{"barriers low", func(s *Spec) { s.Barriers = 0 }},
		{"barriers high", func(s *Spec) { s.Barriers = MaxBarriers + 1 }},
		{"locks", func(s *Spec) { s.Locks = -1 }},
		{"iters", func(s *Spec) { s.Iters = MaxIters + 1 }},
		{"no steps", func(s *Spec) { s.Steps = nil }},
		{"def shadows var", func(s *Spec) { s.Defs["it"] = "1" }},
		{"def shadows fn", func(s *Spec) { s.Defs["east"] = "1" }},
		{"def bad expr", func(s *Spec) { s.Defs["x"] = "1 +" }},
		{"bad when", func(s *Spec) { s.Steps[0].When = "(" }},
		{"missing to", func(s *Spec) { s.Steps[0].To = "" }},
		{"missing count", func(s *Spec) { s.Steps[0].Count = "" }},
		{"bad lines", func(s *Spec) { s.Steps[0].Lines = MaxLines + 1 }},
		{"zero lines", func(s *Spec) { s.Steps[0].Lines = 0 }},
		{"bad ws", func(s *Spec) { s.Steps[3].Ws = 0 }},
		{"missing cycles", func(s *Spec) { s.Steps[4].Cycles = "" }},
		{"unknown op", func(s *Spec) { s.Steps[0].Op = "warp" }},
		{"missing op", func(s *Spec) { s.Steps[0].Op = "" }},
		{"loop no var", func(s *Spec) {
			s.Steps = []Step{{Op: "loop", Lo: "0", Hi: "1",
				Steps: []Step{{Op: "compute", Cycles: "1"}}}}
		}},
		{"loop shadows builtin", func(s *Spec) {
			s.Steps = []Step{{Op: "loop", Var: "i", Lo: "0", Hi: "1",
				Steps: []Step{{Op: "compute", Cycles: "1"}}}}
		}},
		{"loop empty body", func(s *Spec) {
			s.Steps = []Step{{Op: "loop", Var: "k", Lo: "0", Hi: "1"}}
		}},
		{"group empty body", func(s *Spec) { s.Steps = []Step{{Op: "group"}} }},
	}
	for _, tc := range cases {
		s := base()
		tc.mut(s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate should fail", tc.name)
		}
	}
	// Deep nesting trips MaxDepth.
	s := base()
	st := Step{Op: "compute", Cycles: "1"}
	for d := 0; d < MaxDepth+2; d++ {
		st = Step{Op: "group", Steps: []Step{st}}
	}
	s.Steps = []Step{st}
	if err := s.Validate(); err == nil {
		t.Error("deep nesting: Validate should fail")
	}
}

func TestCanonicalDigestStable(t *testing.T) {
	a := specJSON(t, ringSpec)
	b := specJSON(t, ringSpec)
	ca, err := a.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	cb, err := b.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ca, cb) {
		t.Error("canonical bytes differ for identical specs")
	}
	if a.Digest() != b.Digest() {
		t.Error("digests differ for identical specs")
	}
	b.Steps[0].Count = "3"
	if a.Digest() == b.Digest() {
		t.Error("digest unchanged after spec edit")
	}
	// Round trip: canonical bytes reparse to the same digest.
	rt, err := Parse(ca)
	if err != nil {
		t.Fatalf("reparse canonical: %v", err)
	}
	if rt.Digest() != a.Digest() {
		t.Error("canonical round trip changed the digest")
	}
}
