package scenario

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		a, err := Generate(seed, GenOptions{}).Canonical()
		if err != nil {
			t.Fatal(err)
		}
		b, err := Generate(seed, GenOptions{}).Canonical()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("seed %d: generated specs differ between calls", seed)
		}
	}
	a, _ := Generate(1, GenOptions{}).Canonical()
	b, _ := Generate(2, GenOptions{}).Canonical()
	if bytes.Equal(a, b) {
		t.Error("different seeds produced identical specs")
	}
}

// TestGenerateValidAndEmittable is the generator's validity invariant: every
// generated spec validates, compiles, and emits without error at several
// thread counts — including n=1 and n=2, where modular-arithmetic templates
// are most likely to step out of range.
func TestGenerateValidAndEmittable(t *testing.T) {
	seeds := 200
	if testing.Short() {
		seeds = 40
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		s := Generate(seed, GenOptions{})
		if err := s.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		c, err := s.Compile()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, threads := range []int{1, 2, 3, 8} {
			rec := &recorder{}
			if err := c.Emit(threads, 1.0, rand.New(rand.NewSource(seed)), rec); err != nil {
				t.Fatalf("seed %d threads %d: %v", seed, threads, err)
			}
			if len(rec.lines) == 0 {
				t.Fatalf("seed %d threads %d: empty emission", seed, threads)
			}
		}
	}
}

func TestGenerateEmitDeterministic(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		c := mustCompile(t, Generate(seed, GenOptions{}))
		a, b := &recorder{}, &recorder{}
		if err := c.Emit(4, 1.0, rand.New(rand.NewSource(seed)), a); err != nil {
			t.Fatal(err)
		}
		if err := c.Emit(4, 1.0, rand.New(rand.NewSource(seed)), b); err != nil {
			t.Fatal(err)
		}
		if strings.Join(a.lines, "\n") != strings.Join(b.lines, "\n") {
			t.Fatalf("seed %d: same build seed emitted different streams", seed)
		}
	}
}

func TestGenerateCoversPatterns(t *testing.T) {
	// Across a modest seed range, every pattern kind should appear at least
	// once — guards against a template silently dropping out of rotation.
	seen := map[string]bool{}
	for seed := int64(0); seed < 60; seed++ {
		s := Generate(seed, GenOptions{})
		b, err := s.Canonical()
		if err != nil {
			t.Fatal(err)
		}
		text := string(b)
		if strings.Contains(text, "parent(i)") {
			seen["tree"] = true
		}
		if strings.Contains(text, "owner") {
			seen["hotspot"] = true
		}
		if strings.Contains(text, "rng(n)") {
			seen["steal"] = true
		}
		if strings.Contains(text, "3*n") {
			seen["exchange"] = true
		}
		if strings.Contains(text, "east(i)") {
			seen["pipeline"] = true
		}
		if strings.Contains(text, "% locks") {
			seen["migratory"] = true
		}
	}
	for _, kind := range patternKinds {
		if !seen[kind] {
			t.Errorf("pattern %q never generated in 60 seeds", kind)
		}
	}
}
