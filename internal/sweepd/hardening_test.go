package sweepd

// Hardening guards of the HTTP layer: the request-body cap (413 with a
// diagnosable JSON error, never a silent connection drop or a buffered
// multi-gigabyte decode) and the shared bearer-token check.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

// postRaw posts raw bytes at the server, optionally with a bearer token.
func postRaw(t *testing.T, c *Client, path, token string, body []byte) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, c.url(path), bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeErrorBody(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	var e errorResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&e); err != nil {
		t.Fatalf("error response is not JSON: %v", err)
	}
	return e.Error
}

// TestOversizedPayloadRejected413: a submit body over the cap must come
// back as 413 with a JSON error naming the limit, and the server must
// stay fully functional afterwards.
func TestOversizedPayloadRejected413(t *testing.T) {
	_, c, stop := startServer(t, t.TempDir(), Options{MaxBodyBytes: 4096})
	defer stop()

	big := make([]byte, 8192)
	for i := range big {
		big[i] = 'x'
	}
	payload := []byte(`{"matrix":{"benches":["` + string(big) + `"]}}`)
	resp := postRaw(t, c, "/sweeps", "", payload)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized submit: got %d, want 413", resp.StatusCode)
	}
	msg := decodeErrorBody(t, resp)
	if !strings.Contains(msg, "4096") {
		t.Errorf("413 error does not name the limit: %q", msg)
	}

	// An in-cap request still works.
	if err := c.Healthz(); err != nil {
		t.Fatalf("server unhealthy after 413: %v", err)
	}
	if _, err := c.Submit(&SubmitRequest{Matrix: testServerMatrix()}); err != nil {
		t.Fatalf("in-cap submit after 413: %v", err)
	}
}

// TestTokenAuth: with a token configured, unauthenticated and
// wrong-token requests get 401, the health probe stays open, and a
// token-carrying client works end to end.
func TestTokenAuth(t *testing.T) {
	_, c, stop := startServer(t, t.TempDir(), Options{Token: "sesame"})
	defer stop()

	// Health stays open (load balancers, `spsweep work` reachability probe
	// run before credentials are known to be right).
	if err := c.Healthz(); err != nil {
		t.Fatalf("tokenless healthz: %v", err)
	}

	// No token and wrong token: 401 with a JSON error.
	for _, tok := range []string{"", "wrong"} {
		resp := postRaw(t, c, "/sweeps", tok, []byte(`{}`))
		if resp.StatusCode != http.StatusUnauthorized {
			t.Fatalf("token %q: got %d, want 401", tok, resp.StatusCode)
		}
		if msg := decodeErrorBody(t, resp); !strings.Contains(msg, "bearer token") {
			t.Errorf("401 error not diagnosable: %q", msg)
		}
	}
	if _, err := c.List(); err == nil {
		t.Fatal("tokenless client listed sweeps against a token-protected server")
	}

	// The authenticated client exercises every verb of the worker loop.
	c.SetToken("sesame")
	sub, err := c.Submit(&SubmitRequest{Matrix: testServerMatrix()})
	if err != nil {
		t.Fatalf("authenticated submit: %v", err)
	}
	exec := &countingExec{}
	drainWorker(t, c, "authed", 1, exec.exec)
	st, err := c.Status(sub.SweepID)
	if err != nil {
		t.Fatalf("authenticated status: %v", err)
	}
	if st.Counts.Done != st.Counts.Jobs || st.Counts.Failed != 0 {
		t.Fatalf("sweep not finished under auth: %+v", st.Counts)
	}
	var buf bytes.Buffer
	if err := c.Results(sub.SweepID, "json", &buf); err != nil {
		t.Fatalf("authenticated results: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), localRunJSON(t, testServerMatrix())) {
		t.Error("authenticated merged results differ from the local reference run")
	}
}

// TestModeValidation: a matrix with an unknown mode is rejected at
// submit, before any job is registered.
func TestModeValidation(t *testing.T) {
	_, c, stop := startServer(t, t.TempDir(), Options{})
	defer stop()

	m := testServerMatrix()
	m.Mode = "warp"
	if _, err := c.Submit(&SubmitRequest{Matrix: m}); err == nil || !strings.Contains(err.Error(), "mode") {
		t.Fatalf("bad mode accepted: err=%v", err)
	}
	m.Mode = "fast"
	sub, err := c.Submit(&SubmitRequest{Matrix: m})
	if err != nil {
		t.Fatalf("fast-mode submit: %v", err)
	}
	st, err := c.Status(sub.SweepID)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range st.Jobs {
		if !strings.HasSuffix(j.Key, "/fast") {
			t.Errorf("fast-matrix job key %q lacks /fast suffix", j.Key)
		}
	}
}
