package sweepd

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"spcoh/internal/sweep"
)

// This file is the lease table: a pure in-memory state machine with an
// injectable clock. All I/O — artifact store writes, spec file reads,
// HTTP — lives in server.go, so every lease-lifecycle transition is unit
// testable without sleeping.

// Lease errors. The HTTP layer maps ErrUnknownLease to 404 and
// ErrLeaseGone to 410.
var (
	// ErrUnknownLease: the lease ID was never issued (or predates a
	// server restart — in-memory state is rebuilt from the store, not
	// from leases, so an orphaned worker simply loses its attempt).
	ErrUnknownLease = errors.New("sweepd: unknown lease")
	// ErrLeaseGone: the lease was issued but is no longer active — it
	// expired and the job was requeued or finished elsewhere. A worker
	// holding a gone lease should stop heartbeating; its eventual
	// Complete is still accepted (first write wins).
	ErrLeaseGone = errors.New("sweepd: lease gone")
)

// jobState is the lease table's per-job state.
type jobState uint8

const (
	statePending jobState = iota
	stateLeased
	stateDone
	stateFailed
)

// String renders the state for the status API.
func (s jobState) String() string {
	switch s {
	case statePending:
		return "pending"
	case stateLeased:
		return "leased"
	case stateDone:
		return "done"
	case stateFailed:
		return "failed"
	default:
		return fmt.Sprintf("jobState(%d)", uint8(s))
	}
}

// attempt is one entry of a job's attempt history.
type attempt struct {
	worker  string
	leaseID string
	start   time.Time
	end     time.Time // zero while running
	err     string    // "" = success
	expired bool      // ended by lease expiry, not a worker report
}

// jobEntry is one job's scheduling state.
type jobEntry struct {
	job      sweep.Job
	specPath string // server-side spec file ("" for built-in cells)

	state    jobState
	cached   bool // terminal via store recall, not execution
	attempts []attempt

	// Active lease, valid while state == stateLeased.
	leaseID string
	expires time.Time

	// notBefore gates re-leasing after a failed attempt (jittered
	// exponential backoff, same schedule as the local engine's retries).
	notBefore time.Time

	errMsg string // last attempt's error; terminal reason when stateFailed
}

// queueConfig sizes the lease table.
type queueConfig struct {
	// TTL is the lease lifetime; heartbeats extend it. <= 0 means 1m.
	TTL time.Duration
	// MaxAttempts bounds executions per job (1 + retries). <= 0 means 1.
	MaxAttempts int
	// Backoff/BackoffSeed parameterize sweep.RetryDelay for the requeue
	// gate after a failed attempt.
	Backoff     time.Duration
	BackoffSeed int64
	// now is the clock; tests inject a fake. nil means time.Now.
	now func() time.Time
}

// queue is the lease table. All fields are guarded by mu; methods never
// block and never do I/O.
type queue struct {
	mu  sync.Mutex
	cfg queueConfig

	jobs   map[string]*jobEntry // by job key
	keys   []string             // sorted; leases are granted in key order
	leases map[string]string    // lease ID → job key, kept for the store's
	// first-write-wins duplicate detection (bounded by total attempts)
	nextLease int

	// changed is closed and replaced on every state transition; watchers
	// re-snapshot when it fires.
	changed chan struct{}
}

func newQueue(cfg queueConfig) *queue {
	if cfg.TTL <= 0 {
		cfg.TTL = time.Minute
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 1
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	return &queue{
		cfg:     cfg,
		jobs:    make(map[string]*jobEntry),
		leases:  make(map[string]string),
		changed: make(chan struct{}),
	}
}

// bumpLocked wakes watchers; the caller holds q.mu.
func (q *queue) bumpLocked() {
	close(q.changed)
	q.changed = make(chan struct{})
}

// watch returns a channel that fires (closes) on the next state change.
func (q *queue) watch() <-chan struct{} {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.changed
}

// add registers a job if unknown. done marks it already terminal (recalled
// from the store). Jobs are shared across sweeps by key: a second sweep
// containing a known cell adopts its state, whatever it is.
func (q *queue) add(j sweep.Job, specPath string, done bool) {
	key := j.Key()
	q.mu.Lock()
	defer q.mu.Unlock()
	if e, ok := q.jobs[key]; ok {
		if e.specPath == "" && specPath != "" {
			e.specPath = specPath
		}
		return
	}
	e := &jobEntry{job: j, specPath: specPath}
	if done {
		e.state = stateDone
		e.cached = true
	}
	q.jobs[key] = e
	i := sort.SearchStrings(q.keys, key)
	q.keys = append(q.keys, "")
	copy(q.keys[i+1:], q.keys[i:])
	q.keys[i] = key
	q.bumpLocked()
}

// grantInfo is a granted lease before the server attaches spec content.
type grantInfo struct {
	leaseID  string
	job      sweep.Job
	specPath string
}

// lease grants the first eligible pending job in key order. A nil grant
// with drained == true means every known job is terminal.
func (q *queue) lease(worker string) (*grantInfo, bool) {
	now := q.cfg.now()
	q.mu.Lock()
	defer q.mu.Unlock()
	for _, key := range q.keys {
		e := q.jobs[key]
		if e.state != statePending || now.Before(e.notBefore) {
			continue
		}
		q.nextLease++
		id := fmt.Sprintf("L%08d", q.nextLease)
		e.state = stateLeased
		e.leaseID = id
		e.expires = now.Add(q.cfg.TTL)
		e.attempts = append(e.attempts, attempt{worker: worker, leaseID: id, start: now})
		q.leases[id] = key
		q.bumpLocked()
		return &grantInfo{leaseID: id, job: e.job, specPath: e.specPath}, false
	}
	return nil, q.drainedLocked()
}

// drainedLocked reports whether at least one job exists and all are
// terminal; the caller holds q.mu.
func (q *queue) drainedLocked() bool {
	if len(q.keys) == 0 {
		return false
	}
	for _, key := range q.keys {
		switch q.jobs[key].state {
		case stateDone, stateFailed:
		default:
			return false
		}
	}
	return true
}

// heartbeat extends an active lease's TTL.
func (q *queue) heartbeat(leaseID string) error {
	now := q.cfg.now()
	q.mu.Lock()
	defer q.mu.Unlock()
	key, ok := q.leases[leaseID]
	if !ok {
		return ErrUnknownLease
	}
	e := q.jobs[key]
	if e.state != stateLeased || e.leaseID != leaseID {
		return ErrLeaseGone
	}
	e.expires = now.Add(q.cfg.TTL)
	return nil
}

// jobForLease resolves a lease to its job for completion. done reports
// that the job is already stateDone — the duplicate-completion no-op case.
// Any lease ever issued for the job resolves, so a worker whose lease
// expired mid-run can still deliver its (deterministic, thus identical)
// result: first write wins, later writes are no-ops.
func (q *queue) jobForLease(leaseID string) (sweep.Job, bool, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	key, ok := q.leases[leaseID]
	if !ok {
		return sweep.Job{}, false, ErrUnknownLease
	}
	e := q.jobs[key]
	return e.job, e.state == stateDone, nil
}

// markDone finishes the job behind leaseID after its result reached the
// store. Idempotent; it also un-fails a job whose late completion arrived
// after attempts were exhausted (the result is valid — determinism makes
// it the only possible result).
func (q *queue) markDone(leaseID string) {
	now := q.cfg.now()
	q.mu.Lock()
	defer q.mu.Unlock()
	key, ok := q.leases[leaseID]
	if !ok {
		return
	}
	e := q.jobs[key]
	q.closeAttemptLocked(e, leaseID, "", false, now)
	if e.state == stateDone {
		return
	}
	e.state = stateDone
	e.errMsg = ""
	e.leaseID = ""
	q.bumpLocked()
}

// fail records a failed attempt and requeues or terminally fails the job.
// It returns the job and whether this failure was terminal (so the server
// can write the store's failure ledger).
func (q *queue) fail(leaseID, msg string) (sweep.Job, bool, error) {
	now := q.cfg.now()
	q.mu.Lock()
	defer q.mu.Unlock()
	key, ok := q.leases[leaseID]
	if !ok {
		return sweep.Job{}, false, ErrUnknownLease
	}
	e := q.jobs[key]
	if e.state != stateLeased || e.leaseID != leaseID {
		// Stale report: the job resolved elsewhere, or expiry already
		// requeued (possibly re-leased) it. Close the old attempt record
		// if expiry hasn't; the job's current state is untouched.
		q.closeAttemptLocked(e, leaseID, msg, false, now)
		return e.job, false, nil
	}
	e.leaseID = ""
	q.closeAttemptLocked(e, leaseID, msg, false, now)
	return e.job, q.requeueLocked(e, key, msg, now), nil
}

// expire scans for overdue leases and requeues (or terminally fails)
// their jobs. It returns the jobs that became terminally failed, so the
// server can record them in the store's failure ledger. Called by the
// server's expiry ticker; tests call it directly with a fake clock.
func (q *queue) expire() []sweep.Job {
	now := q.cfg.now()
	q.mu.Lock()
	defer q.mu.Unlock()
	var dead []sweep.Job
	for _, key := range q.keys {
		e := q.jobs[key]
		if e.state != stateLeased || !now.After(e.expires) {
			continue
		}
		msg := "lease expired"
		if n := len(e.attempts); n > 0 {
			msg = fmt.Sprintf("lease expired (worker %s)", e.attempts[n-1].worker)
		}
		q.closeAttemptExpiredLocked(e, e.leaseID, msg, now)
		e.leaseID = ""
		if q.requeueLocked(e, key, msg, now) {
			dead = append(dead, e.job)
		}
	}
	return dead
}

// requeueLocked moves a non-terminal entry back to pending, or to
// stateFailed once attempts are exhausted; returns true when terminal.
// The caller holds q.mu.
func (q *queue) requeueLocked(e *jobEntry, key, msg string, now time.Time) bool {
	e.errMsg = msg
	if len(e.attempts) >= q.cfg.MaxAttempts {
		e.state = stateFailed
		q.bumpLocked()
		return true
	}
	e.state = statePending
	e.notBefore = now.Add(sweep.RetryDelay(key, len(e.attempts)+1, q.cfg.Backoff, q.cfg.BackoffSeed))
	q.bumpLocked()
	return false
}

// closeAttemptLocked stamps the end of the attempt issued as leaseID, if
// it is still open. The caller holds q.mu.
func (q *queue) closeAttemptLocked(e *jobEntry, leaseID, errMsg string, expired bool, now time.Time) {
	for i := len(e.attempts) - 1; i >= 0; i-- {
		a := &e.attempts[i]
		if a.leaseID != leaseID {
			continue
		}
		if a.end.IsZero() {
			a.end = now
			a.err = errMsg
			a.expired = expired
		}
		return
	}
}

func (q *queue) closeAttemptExpiredLocked(e *jobEntry, leaseID, msg string, now time.Time) {
	q.closeAttemptLocked(e, leaseID, msg, true, now)
}

// counts summarizes the given keys; nil means every known job.
func (q *queue) counts(keys []string) Counts {
	q.mu.Lock()
	defer q.mu.Unlock()
	if keys == nil {
		keys = q.keys
	}
	var c Counts
	for _, key := range keys {
		e, ok := q.jobs[key]
		if !ok {
			continue
		}
		c.Jobs++
		switch e.state {
		case statePending:
			c.Pending++
		case stateLeased:
			c.Leased++
		case stateDone:
			c.Done++
			if e.cached {
				c.Cached++
			}
		case stateFailed:
			c.Failed++
		}
	}
	return c
}

// status snapshots the given keys (which must be sorted; the result keeps
// their order) for the status API.
func (q *queue) status(keys []string) []JobStatus {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]JobStatus, 0, len(keys))
	for _, key := range keys {
		e, ok := q.jobs[key]
		if !ok {
			continue
		}
		out = append(out, q.jobStatusLocked(key, e))
	}
	return out
}

// jobStatusLocked renders one entry; the caller holds q.mu.
func (q *queue) jobStatusLocked(key string, e *jobEntry) JobStatus {
	js := JobStatus{
		Key:      key,
		State:    e.state.String(),
		Cached:   e.cached,
		Attempts: len(e.attempts),
		Error:    e.errMsg,
	}
	if n := len(e.attempts); n > 0 {
		last := e.attempts[n-1]
		js.Worker = last.worker
		if !last.end.IsZero() {
			js.Seconds = last.end.Sub(last.start).Seconds()
		}
	}
	return js
}

// terminalStatuses returns, in order, the keys among the given sorted set
// that are terminal and not yet in seen, marking them seen. done reports
// whether the whole set is terminal. This powers the status stream: each
// watcher replays current terminal states, then follows transitions.
func (q *queue) terminalStatuses(keys []string, seen map[string]bool) ([]JobStatus, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	var out []JobStatus
	done := true
	for _, key := range keys {
		e, ok := q.jobs[key]
		if !ok {
			done = false
			continue
		}
		if e.state != stateDone && e.state != stateFailed {
			done = false
			continue
		}
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, q.jobStatusLocked(key, e))
	}
	return out, done
}
