package sweepd

import (
	"bytes"
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"spcoh/internal/event"
	"spcoh/internal/scenario"
	"spcoh/internal/sim"
	"spcoh/internal/sweep"
)

// fakeResult builds a deterministic synthetic result from the job spec —
// the same cell computes the same bytes wherever and whenever it runs,
// which is the property the whole server leans on.
func fakeResult(j sweep.Job) *sim.Result {
	r := &sim.Result{Benchmark: j.Bench, Predictor: j.Kind}
	r.Cycles = event.Time(1000 + 13*int64(len(j.Bench)) + 7*j.Seed)
	r.Nodes.Misses = uint64(100 + len(j.Kind))
	r.Nodes.Communicating = 40
	r.Nodes.NonCommunicating = r.Nodes.Misses - 40
	r.Net.Bytes = uint64(4096 * (j.Seed + 1))
	return r
}

// countingExec is a stub ExecFunc that counts executions per job key.
type countingExec struct {
	runs   atomic.Int64
	failFn func(j sweep.Job) bool // nil = never fail
}

func (c *countingExec) exec(j sweep.Job, spec *scenario.Spec) (*sim.Result, error) {
	c.runs.Add(1)
	if c.failFn != nil && c.failFn(j) {
		return nil, errInjected
	}
	return fakeResult(j), nil
}

var errInjected = &injectedError{}

type injectedError struct{}

func (*injectedError) Error() string { return "injected failure" }

func testServerMatrix() sweep.Matrix {
	return sweep.Matrix{
		Benches: []string{"x264", "streamcluster"},
		Kinds:   []string{"dir", "sp"},
		Seeds:   []int64{42},
		Scales:  []float64{0.25},
		Threads: 16,
	}
}

// startServer builds a Server over dir and exposes it via httptest.
func startServer(t *testing.T, dir string, opt Options) (*Server, *Client, func()) {
	t.Helper()
	store, err := sweep.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	opt.Store = store
	srv, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	return srv, NewClient(hs.URL), func() { hs.Close(); srv.Close() }
}

// drainWorker runs one remote worker until the server reports drained.
func drainWorker(t *testing.T, c *Client, id string, slots int, exec ExecFunc) {
	t.Helper()
	RunWorker(context.Background(), c, WorkerOptions{
		ID:    id,
		Slots: slots,
		Poll:  5 * time.Millisecond,
		Drain: true,
		Exec:  exec,
	})
}

// localRunJSON renders the matrix through the local engine with the same
// result function, the reference bytes for every server comparison.
func localRunJSON(t *testing.T, m sweep.Matrix) []byte {
	t.Helper()
	run := func(j sweep.Job) (*sim.Result, error) { return fakeResult(j), nil }
	rep := sweep.Run(context.Background(), m.Jobs(), run, sweep.Options{Workers: 1})
	if rep.Failed != 0 {
		t.Fatalf("local reference run failed: %+v", rep)
	}
	var buf bytes.Buffer
	if err := rep.FormatJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func serverResultsJSON(t *testing.T, c *Client, sweepID string) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := c.Results(sweepID, "json", &buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestServerResultsByteIdenticalToLocalRun is the tentpole's core
// acceptance: the server's merged output matches a local `spsweep run`
// byte for byte, for more than one worker count.
func TestServerResultsByteIdenticalToLocalRun(t *testing.T) {
	m := testServerMatrix()
	want := localRunJSON(t, m)

	for _, workers := range []int{1, 3} {
		ex := &countingExec{}
		_, c, stop := startServer(t, t.TempDir(), Options{Exec: ex.exec})
		sub, err := c.Submit(&SubmitRequest{Matrix: m})
		if err != nil {
			t.Fatal(err)
		}
		if sub.Counts.Jobs != len(m.Jobs()) || sub.Counts.Pending != sub.Counts.Jobs {
			t.Fatalf("workers=%d: submit counts %+v", workers, sub.Counts)
		}
		drainWorker(t, c, "w", workers, ex.exec)
		got := serverResultsJSON(t, c, sub.SweepID)
		if !bytes.Equal(got, want) {
			t.Fatalf("workers=%d: server results differ from local run\nserver:\n%s\nlocal:\n%s", workers, got, want)
		}
		if n := ex.runs.Load(); n != int64(len(m.Jobs())) {
			t.Fatalf("workers=%d: %d executions for %d jobs", workers, n, len(m.Jobs()))
		}
		stop()
	}
}

// TestServerRestartResumesFromStore kills the server mid-sweep (some
// cells done, some failed) and verifies the next life recomputes only
// the unfinished cells and still produces the local-run bytes.
func TestServerRestartResumesFromStore(t *testing.T) {
	m := testServerMatrix()
	dir := t.TempDir()
	jobs := m.Jobs()

	// Life 1: the executor fails every "sp" cell; with Retries=0 they go
	// terminally failed while the "dir" cells complete into the store.
	ex1 := &countingExec{failFn: func(j sweep.Job) bool { return j.Kind == "sp" }}
	_, c1, stop1 := startServer(t, dir, Options{Exec: ex1.exec, Retries: 0})
	sub, err := c1.Submit(&SubmitRequest{Matrix: m})
	if err != nil {
		t.Fatal(err)
	}
	drainWorker(t, c1, "life1", 2, ex1.exec)
	st, err := c1.Status(sub.SweepID)
	if err != nil {
		t.Fatal(err)
	}
	if st.Counts.Done != 2 || st.Counts.Failed != 2 {
		t.Fatalf("life 1 counts: %+v", st.Counts)
	}
	stop1() // crash: in-memory lease table and sweep registry are gone

	// The store's manifest carries the sweep and the failure ledger.
	store, err := sweep.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ids := store.SweepIDs(); len(ids) != 1 || ids[0] != sub.SweepID {
		t.Fatalf("sweep not persisted in the manifest: %v", ids)
	}
	if failed := store.FailedCells(); len(failed) != 2 {
		t.Fatalf("failure ledger after life 1: %v", failed)
	}

	// Life 2: a fresh server over the same store re-adopts the sweep with
	// zero resubmission; the healthy executor finishes only what's left.
	ex2 := &countingExec{}
	_, c2, stop2 := startServer(t, dir, Options{Exec: ex2.exec})
	defer stop2()
	st, err = c2.Status(sub.SweepID)
	if err != nil {
		t.Fatalf("re-adopted sweep not visible: %v", err)
	}
	if st.Counts.Done != 2 || st.Counts.Cached != 2 || st.Counts.Pending != 2 {
		t.Fatalf("life 2 adoption counts: %+v", st.Counts)
	}
	drainWorker(t, c2, "life2", 2, ex2.exec)

	// Zero recomputation of the cells life 1 completed.
	if n := ex2.runs.Load(); n != 2 {
		t.Fatalf("life 2 executed %d cells, want exactly the 2 unfinished ones", n)
	}
	got := serverResultsJSON(t, c2, sub.SweepID)
	want := localRunJSON(t, m)
	if !bytes.Equal(got, want) {
		t.Fatalf("post-restart results differ from local run\nserver:\n%s\nlocal:\n%s", got, want)
	}
	// Success clears the failure ledger.
	store2, err := sweep.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if failed := store2.FailedCells(); len(failed) != 0 {
		t.Fatalf("failure ledger not cleared by completion: %v", failed)
	}
	_ = jobs
}

// TestDuplicateCompletionOverHTTP expires a lease with a fake clock,
// lets a second worker complete the job, then delivers the first
// worker's late result: first write wins, the second is a no-op, and the
// result bytes are untouched.
func TestDuplicateCompletionOverHTTP(t *testing.T) {
	m := testServerMatrix()
	clk := newFakeClock()
	ex := &countingExec{}
	srv, c, stop := startServer(t, t.TempDir(), Options{
		Exec: ex.exec, LeaseTTL: time.Minute, Retries: 2, now: clk.now,
	})
	defer stop()
	sub, err := c.Submit(&SubmitRequest{Matrix: m})
	if err != nil {
		t.Fatal(err)
	}

	g1, _, err := c.Lease("w1")
	if err != nil || g1 == nil {
		t.Fatalf("w1 lease: %v %v", g1, err)
	}
	clk.advance(2 * time.Minute)
	srv.q.expire()               // the ticker isn't running; fire it by hand
	clk.advance(5 * time.Second) // pass the requeue backoff gate
	g2, _, err := c.Lease("w2")
	if err != nil || g2 == nil || g2.Job.Key() != g1.Job.Key() {
		t.Fatalf("w2 should re-lease %s: got %v err=%v", g1.Job.Key(), g2, err)
	}
	if err := c.Heartbeat(g1.LeaseID); err != ErrLeaseGone {
		t.Fatalf("heartbeat on expired lease over HTTP: %v, want ErrLeaseGone", err)
	}

	res := fakeResult(g2.Job)
	if dup, err := c.Complete(g2.LeaseID, res); err != nil || dup {
		t.Fatalf("w2 complete: dup=%v err=%v", dup, err)
	}
	// w1's late push: same deterministic bytes, flagged duplicate, no-op.
	if dup, err := c.Complete(g1.LeaseID, fakeResult(g1.Job)); err != nil || !dup {
		t.Fatalf("w1 late complete: dup=%v err=%v", dup, err)
	}
	st, err := c.Status(sub.SweepID)
	if err != nil {
		t.Fatal(err)
	}
	for _, js := range st.Jobs {
		if js.Key == g1.Job.Key() && js.State != "done" {
			t.Fatalf("job state after duplicate completion: %+v", js)
		}
	}
}

// TestSpecSweepOverServer pushes a scenario-spec matrix through the HTTP
// path: the spec travels in the submit, is digest-verified server-side,
// re-homed into the store, and re-verified by the worker before running.
func TestSpecSweepOverServer(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("..", "workload", "specs", "03-ocean.json"))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := scenario.Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	m := sweep.Matrix{
		Specs:   []sweep.SpecRef{{Name: spec.Name, Path: "client-local.json", Digest: spec.Digest()}},
		Kinds:   []string{"sp"},
		Seeds:   []int64{42},
		Scales:  []float64{0.25},
		Threads: 16,
	}

	var sawSpec atomic.Int64
	exec := func(j sweep.Job, sp *scenario.Spec) (*sim.Result, error) {
		if sp == nil || sp.Digest() != j.SpecDigest {
			t.Errorf("worker got spec %v for job wanting %.12s", sp, j.SpecDigest)
		}
		sawSpec.Add(1)
		return fakeResult(j), nil
	}
	_, c, stop := startServer(t, t.TempDir(), Options{Exec: exec})
	defer stop()

	// Submitting without the spec upload is rejected.
	if _, err := c.Submit(&SubmitRequest{Matrix: m}); err == nil ||
		!strings.Contains(err.Error(), "not uploaded") {
		t.Fatalf("submit without spec upload: %v", err)
	}
	// Submitting with content that does not hash to the claimed digest is
	// rejected.
	tampered := bytes.Replace(raw, []byte(`"version"`), []byte(`"version" `), 1)
	if _, err := c.Submit(&SubmitRequest{
		Matrix: m,
		Specs:  []SpecUpload{{Name: spec.Name, Digest: "0000000000000000", Content: tampered}},
	}); err == nil {
		t.Fatal("digest-mismatched spec upload accepted")
	}

	sub, err := c.Submit(&SubmitRequest{
		Matrix: m,
		Specs:  []SpecUpload{{Name: spec.Name, Digest: spec.Digest(), Content: raw}},
	})
	if err != nil {
		t.Fatal(err)
	}
	drainWorker(t, c, "w", 1, exec)
	if sawSpec.Load() != 1 {
		t.Fatalf("spec cell executed %d times, want 1", sawSpec.Load())
	}
	st, err := c.Status(sub.SweepID)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Counts.Terminal() || st.Counts.Failed != 0 {
		t.Fatalf("spec sweep counts: %+v", st.Counts)
	}
}

// TestEventsStreamReplaysAndCompletes checks the NDJSON stream: a
// subscriber arriving after the sweep finished still sees every job
// event and the final complete event.
func TestEventsStreamReplaysAndCompletes(t *testing.T) {
	m := testServerMatrix()
	ex := &countingExec{}
	_, c, stop := startServer(t, t.TempDir(), Options{Exec: ex.exec})
	defer stop()
	sub, err := c.Submit(&SubmitRequest{Matrix: m})
	if err != nil {
		t.Fatal(err)
	}
	drainWorker(t, c, "w", 2, ex.exec)

	var jobEvents int
	var final *Counts
	err = c.StreamEvents(sub.SweepID, func(ev Event) bool {
		switch ev.Type {
		case "job":
			jobEvents++
			if ev.Job == nil || ev.Job.State != "done" {
				t.Errorf("bad job event: %+v", ev)
			}
		case "complete":
			final = ev.Counts
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if jobEvents != len(m.Jobs()) || final == nil || final.Done != len(m.Jobs()) {
		t.Fatalf("stream: %d job events, final=%+v", jobEvents, final)
	}
}

// TestSubmitValidation rejects matrices no worker could run.
func TestSubmitValidation(t *testing.T) {
	_, c, stop := startServer(t, t.TempDir(), Options{})
	defer stop()
	base := testServerMatrix()

	cases := []struct {
		name string
		mut  func(m *sweep.Matrix)
	}{
		{"unknown bench", func(m *sweep.Matrix) { m.Benches = []string{"nosuch"} }},
		{"unknown kind", func(m *sweep.Matrix) { m.Kinds = []string{"nosuch"} }},
		{"no kinds", func(m *sweep.Matrix) { m.Kinds = nil }},
		{"no seeds", func(m *sweep.Matrix) { m.Seeds = nil }},
		{"bad scale", func(m *sweep.Matrix) { m.Scales = []float64{-1} }},
		{"bad threads", func(m *sweep.Matrix) { m.Threads = 0 }},
		{"empty", func(m *sweep.Matrix) { m.Benches = nil }},
	}
	for _, tc := range cases {
		m := base
		tc.mut(&m)
		if _, err := c.Submit(&SubmitRequest{Matrix: m}); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	// Resubmitting the same valid matrix is idempotent.
	a, err := c.Submit(&SubmitRequest{Matrix: base})
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Submit(&SubmitRequest{Matrix: base})
	if err != nil {
		t.Fatal(err)
	}
	if a.SweepID != b.SweepID || b.Counts.Jobs != a.Counts.Jobs {
		t.Fatalf("resubmit not idempotent: %+v vs %+v", a, b)
	}
}

// TestResultsBeforeTerminalConflicts: the merge endpoint refuses to
// render a sweep that could still change.
func TestResultsBeforeTerminalConflicts(t *testing.T) {
	m := testServerMatrix()
	ex := &countingExec{}
	_, c, stop := startServer(t, t.TempDir(), Options{Exec: ex.exec})
	defer stop()
	sub, err := c.Submit(&SubmitRequest{Matrix: m})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Results(sub.SweepID, "json", &buf); err == nil ||
		!strings.Contains(err.Error(), "not finished") {
		t.Fatalf("results on a pending sweep: %v", err)
	}
}
