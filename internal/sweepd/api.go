// Package sweepd turns the sweep engine into a long-running multi-host
// job service: an HTTP/JSON daemon that accepts submitted matrices,
// decomposes them into internal/sweep's content-addressed jobs, and hands
// them to workers through a lease protocol (TTL, heartbeat renewal,
// expiry → requeue with bounded attempts, per-job attempt history).
//
// Workers come in two forms sharing one code path (RunWorker +
// sweep.RunAttempt): the server's in-process pool, and remote
// `spsweep work -server <url>` processes that poll/lease/execute/push over
// HTTP. Completed cells land in the shared sweep.Store, so a restarted
// server resumes with zero recomputation, and the merge endpoint renders
// results byte-identically to a local `spsweep run` of the same matrix:
//
//   - every cell is one deterministic simulation, so any worker, on any
//     host, at any time produces the identical result bytes;
//   - results are stored content-addressed by job digest and merged in job
//     key order, so scheduling, distribution, duplicate completions and
//     restarts cannot reorder or alter the report;
//   - the renderers (sweep.Format*) carry no wall times or provenance.
//
// The package is host-side orchestration above the DES — goroutines,
// wall-clock TTLs and HTTP are its job — and is therefore exempt from
// spvet's SimOnly checks (lint.DefaultIsSim) while remaining subject to
// maprange/floatorder.
//
// This file defines the wire types of the HTTP/JSON API (version 1, under
// /api/v1). Authentication is a single shared bearer token (Options.Token
// / the daemon's -token flag): when set, every request except the health
// probe must carry "Authorization: Bearer <token>". A daemon bound to a
// loopback address may run tokenless; binding a routable address without
// a token requires the explicit -insecure flag. Request bodies are capped
// (Options.MaxBodyBytes, default 8 MiB); oversized payloads get HTTP 413.
package sweepd

import (
	"encoding/json"

	"spcoh/internal/sim"
	"spcoh/internal/sweep"
)

// APIBase prefixes every route of API version 1.
const APIBase = "/api/v1"

// SpecUpload carries one scenario spec's raw file bytes alongside a
// submitted matrix, so remote workers need no shared filesystem. The
// server re-verifies that Content hashes to Digest (the identity recorded
// in the matrix's SpecRefs) before accepting the sweep.
type SpecUpload struct {
	Name    string          `json:"name"`
	Digest  string          `json:"digest"`
	Content json.RawMessage `json:"content"`
}

// SubmitRequest submits one sweep matrix. Matrix.Specs[].Path entries are
// client-local and ignored; the server re-homes specs from the uploads.
type SubmitRequest struct {
	Matrix sweep.Matrix `json:"matrix"`
	Specs  []SpecUpload `json:"specs,omitempty"`
}

// SubmitResponse acknowledges a submitted sweep. Submission is
// idempotent: the sweep ID is the matrix digest, and resubmitting a known
// matrix returns its current counts without disturbing it.
type SubmitResponse struct {
	SweepID string `json:"sweep_id"`
	Counts  Counts `json:"counts"`
}

// Counts summarizes job states.
type Counts struct {
	Jobs    int `json:"jobs"`
	Pending int `json:"pending"`
	Leased  int `json:"leased"`
	Done    int `json:"done"`
	Cached  int `json:"cached"` // subset of Done recalled from the store
	Failed  int `json:"failed"`
}

// Terminal reports whether every job has reached a final state.
func (c Counts) Terminal() bool { return c.Jobs > 0 && c.Pending == 0 && c.Leased == 0 }

// JobStatus is one job's scheduling state. Display only — nothing
// deterministic may be derived from it (that is what the results endpoint
// is for).
type JobStatus struct {
	Key      string  `json:"key"`
	State    string  `json:"state"` // pending | leased | done | failed
	Cached   bool    `json:"cached,omitempty"`
	Worker   string  `json:"worker,omitempty"` // last attempt's worker
	Attempts int     `json:"attempts,omitempty"`
	Seconds  float64 `json:"seconds,omitempty"` // last finished attempt's wall time
	Error    string  `json:"error,omitempty"`   // last attempt's error
}

// StatusResponse reports one sweep's state, jobs in key order.
type StatusResponse struct {
	SweepID string       `json:"sweep_id"`
	Matrix  sweep.Matrix `json:"matrix"`
	Counts  Counts       `json:"counts"`
	Jobs    []JobStatus  `json:"jobs"`
}

// SweepInfo is one row of the sweep listing.
type SweepInfo struct {
	SweepID string `json:"sweep_id"`
	Counts  Counts `json:"counts"`
}

// ListResponse lists all sweeps the server knows, sorted by ID.
type ListResponse struct {
	Sweeps []SweepInfo `json:"sweeps"`
}

// LeaseRequest asks for one job lease. Worker is a display identity; the
// lease ID, not the worker name, is the capability.
type LeaseRequest struct {
	Worker string `json:"worker"`
}

// Grant hands a worker one leased job. For scenario-spec cells Spec
// carries the spec file bytes; the worker re-verifies them against
// Job.SpecDigest before executing, exactly as a local sweep does.
type Grant struct {
	LeaseID   string          `json:"lease_id"`
	Job       sweep.Job       `json:"job"`
	Spec      json.RawMessage `json:"spec,omitempty"`
	TTLMillis int64           `json:"ttl_ms"`
}

// LeaseResponse answers a lease request. A nil Grant means no job is
// available right now; Drained additionally reports that the server knows
// at least one job and every known job is terminal, so a draining worker
// can exit instead of polling.
type LeaseResponse struct {
	Grant   *Grant `json:"grant,omitempty"`
	Drained bool   `json:"drained,omitempty"`
}

// CompleteRequest pushes a finished job's result.
type CompleteRequest struct {
	Result *sim.Result `json:"result"`
}

// CompleteResponse acknowledges a completion. Duplicate marks the no-op
// case: another worker (or an earlier life of this lease) already
// completed the job — first write wins, and determinism makes the loser's
// bytes identical anyway.
type CompleteResponse struct {
	Duplicate bool `json:"duplicate,omitempty"`
}

// FailRequest reports a failed attempt; the server requeues the job until
// its attempts are exhausted.
type FailRequest struct {
	Error string `json:"error"`
}

// Event is one record of a sweep's status stream (NDJSON over a chunked
// response): a "job" event per job reaching a terminal state (replayed
// from current state for late subscribers, then live), then one
// "complete" event when the sweep is fully terminal.
type Event struct {
	Type    string     `json:"type"` // job | complete
	SweepID string     `json:"sweep_id,omitempty"`
	Job     *JobStatus `json:"job,omitempty"`
	Counts  *Counts    `json:"counts,omitempty"`
}

// errorResponse is the JSON body of every non-2xx reply.
type errorResponse struct {
	Error string `json:"error"`
}
