package sweepd

import (
	"context"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"spcoh/internal/detutil"
	"spcoh/internal/experiments"
	"spcoh/internal/scenario"
	"spcoh/internal/sim"
	"spcoh/internal/sweep"
	"spcoh/internal/workload"
)

// Options configures a Server.
type Options struct {
	// Store is the shared resumable artifact store (required). Completed
	// cells are Put here; on startup, sweeps registered in the store's
	// manifest are re-adopted and their completed cells recalled, so a
	// restarted server recomputes nothing.
	Store *sweep.Store
	// LeaseTTL is the lease lifetime; heartbeats extend it. Default 1m.
	LeaseTTL time.Duration
	// Retries is the number of additional attempts after a job's first
	// failed one (so MaxAttempts = 1 + Retries). Default 2.
	Retries int
	// Backoff is the base requeue delay after a failed attempt, jittered
	// per sweep.RetryDelay. Default 1s; BackoffSeed seeds the jitter.
	Backoff     time.Duration
	BackoffSeed int64
	// Timeout bounds one attempt's wall time in the local pool (remote
	// workers choose their own). 0 = none.
	Timeout time.Duration
	// LocalWorkers is the in-process worker pool size started by Start.
	// 0 = serve leases to remote workers only.
	LocalWorkers int
	// Poll is the local pool's idle lease cadence. Default 200ms.
	Poll time.Duration
	// Exec executes jobs in the local pool; nil means DefaultExec. Tests
	// inject stubs here.
	Exec ExecFunc
	// Token, when non-empty, requires every API request (except the
	// health probe) to carry "Authorization: Bearer <Token>". The daemon
	// refuses to bind a non-loopback address without one unless forced.
	Token string
	// MaxBodyBytes caps every request body; a larger payload is rejected
	// with 413 before the decoder buffers it. Default 8 MiB — an order of
	// magnitude above the largest legitimate payload (a completed
	// metrics-enabled sim.Result).
	MaxBodyBytes int64
	// Log, when set, receives one line per server event. Display only.
	Log func(format string, args ...any)

	// now is the queue clock; tests inject a fake. nil means time.Now.
	now func() time.Time
}

// Server is the sweep job service: a lease table (queue) over the shared
// artifact store, an HTTP/JSON API, and an optional in-process worker
// pool. Create with New, serve Handler, call Start for the background
// loops and Close to stop them.
type Server struct {
	opt   Options
	store *sweep.Store
	q     *queue
	mux   *http.ServeMux

	mu     sync.Mutex
	sweeps map[string]*sweepState

	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// sweepState is one registered matrix.
type sweepState struct {
	matrix sweep.Matrix
	keys   []string // job keys, sorted (= expansion order)
}

// New builds a Server over the store, re-adopting any sweeps a previous
// life registered in the store's manifest: their completed cells come
// back terminal ("cached") without recomputation, their unfinished cells
// pending.
func New(opt Options) (*Server, error) {
	if opt.Store == nil {
		return nil, errors.New("sweepd: Options.Store is required")
	}
	if opt.LeaseTTL <= 0 {
		opt.LeaseTTL = time.Minute
	}
	if opt.Retries < 0 {
		opt.Retries = 0
	}
	if opt.Backoff == 0 {
		opt.Backoff = time.Second
	}
	if opt.Poll <= 0 {
		opt.Poll = 200 * time.Millisecond
	}
	if opt.Exec == nil {
		opt.Exec = DefaultExec
	}
	if opt.MaxBodyBytes <= 0 {
		opt.MaxBodyBytes = 8 << 20
	}
	if opt.Log == nil {
		opt.Log = func(string, ...any) {}
	}
	s := &Server{
		opt:   opt,
		store: opt.Store,
		q: newQueue(queueConfig{
			TTL:         opt.LeaseTTL,
			MaxAttempts: 1 + opt.Retries,
			Backoff:     opt.Backoff,
			BackoffSeed: opt.BackoffSeed,
			now:         opt.now,
		}),
		sweeps: make(map[string]*sweepState),
	}
	s.routes()
	for _, id := range s.store.SweepIDs() {
		m, ok := s.store.Sweep(id)
		if !ok {
			continue
		}
		s.adopt(m)
		s.opt.Log("adopted sweep %.12s from store", id)
	}
	return s, nil
}

// Start launches the background loops: the lease-expiry ticker and, when
// configured, the in-process worker pool (which runs the same RunWorker
// code path as remote workers, with the server itself as the API).
func (s *Server) Start() {
	ctx, cancel := context.WithCancel(context.Background())
	s.cancel = cancel
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.expiryLoop(ctx)
	}()
	if s.opt.LocalWorkers > 0 {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			RunWorker(ctx, s, WorkerOptions{
				ID:      "local",
				Slots:   s.opt.LocalWorkers,
				Poll:    s.opt.Poll,
				Timeout: s.opt.Timeout,
				Exec:    s.opt.Exec,
				Log:     s.opt.Log,
			})
		}()
	}
}

// Close stops the background loops and waits for in-flight local attempts
// to settle. In-flight simulations are not preemptible; their leases
// simply die with the process and a later life requeues them.
func (s *Server) Close() {
	if s.cancel != nil {
		s.cancel()
	}
	s.wg.Wait()
}

// expiryLoop requeues jobs whose leases lapsed, recording jobs that
// exhausted their attempts in the store's failure ledger.
func (s *Server) expiryLoop(ctx context.Context) {
	interval := s.opt.LeaseTTL / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			for _, j := range s.q.expire() {
				s.opt.Log("%s: attempts exhausted after lease expiry", j.Key())
				_ = s.store.MarkFailed(j, "lease expired")
			}
		}
	}
}

// specDir is where uploaded scenario specs live inside the store
// directory, content-addressed by digest.
func (s *Server) specDir() string { return filepath.Join(s.store.Dir(), "specs") }

func (s *Server) specPath(digest string) string {
	return filepath.Join(s.specDir(), digest+".json")
}

// Submit registers a matrix (idempotently: the sweep ID is the matrix
// digest) after validating it and re-homing its scenario specs from the
// uploads. Jobs already present in the store come back terminal without
// recomputation; cells shared with other registered sweeps share their
// state and artifact.
func (s *Server) Submit(req *SubmitRequest) (*SubmitResponse, error) {
	m := req.Matrix
	if err := validateMatrix(m); err != nil {
		return nil, err
	}
	// Re-home specs: every SpecRef must arrive with content hashing to
	// the digest recorded in the ref — the same re-verification a local
	// sweep performs against the file system.
	uploads := make(map[string]json.RawMessage, len(req.Specs))
	for _, u := range req.Specs {
		sp, err := scenario.Parse(u.Content)
		if err != nil {
			return nil, fmt.Errorf("spec %q: %w", u.Name, err)
		}
		if d := sp.Digest(); d != u.Digest {
			return nil, fmt.Errorf("spec %q: content hashes to %.12s, upload claims %.12s", u.Name, d, u.Digest)
		}
		uploads[u.Digest] = u.Content
	}
	for i, ref := range m.Specs {
		content, ok := uploads[ref.Digest]
		if !ok {
			return nil, fmt.Errorf("spec %q (%.12s) referenced by the matrix but not uploaded", ref.Name, ref.Digest)
		}
		path := s.specPath(ref.Digest)
		if err := os.MkdirAll(s.specDir(), 0o755); err != nil {
			return nil, fmt.Errorf("sweepd: spec dir: %w", err)
		}
		if err := atomicWrite(path, content); err != nil {
			return nil, fmt.Errorf("sweepd: store spec %.12s: %w", ref.Digest, err)
		}
		m.Specs[i].Path = path
	}

	id := m.Digest()
	s.mu.Lock()
	_, known := s.sweeps[id]
	s.mu.Unlock()
	if !known {
		if err := s.store.AddSweep(m); err != nil {
			return nil, err
		}
		ss := s.adopt(m)
		s.opt.Log("sweep %.12s submitted: %d jobs", id, len(ss.keys))
	}
	s.mu.Lock()
	ss := s.sweeps[id]
	s.mu.Unlock()
	return &SubmitResponse{SweepID: id, Counts: s.q.counts(ss.keys)}, nil
}

// adopt registers a matrix's jobs with the queue, recalling completed
// cells from the store.
func (s *Server) adopt(m sweep.Matrix) *sweepState {
	jobs := m.Jobs()
	keys := make([]string, len(jobs))
	for i, j := range jobs {
		keys[i] = j.Key()
		specPath := ""
		if j.SpecDigest != "" {
			// Specs are content-addressed inside the store; the path
			// recorded in the matrix is advisory (it is rewritten to the
			// store location at submit time, but a manifest hand-moved
			// from another host still resolves).
			specPath = j.SpecPath
			if _, err := os.Stat(specPath); err != nil {
				specPath = s.specPath(j.SpecDigest)
			}
		}
		_, done := s.store.Lookup(j)
		s.q.add(j, specPath, done)
	}
	ss := &sweepState{matrix: m, keys: keys}
	s.mu.Lock()
	s.sweeps[m.Digest()] = ss
	s.mu.Unlock()
	return ss
}

// sweepByID returns a registered sweep.
func (s *Server) sweepByID(id string) (*sweepState, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ss, ok := s.sweeps[id]
	return ss, ok
}

// sweepIDs returns the registered sweep IDs, sorted.
func (s *Server) sweepIDs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return detutil.SortedKeys(s.sweeps)
}

// report assembles the deterministic merged report of a fully terminal
// sweep: jobs in key order, results recalled from the content-addressed
// store, failures rendered exactly as the local engine renders them. The
// bytes of every sweep.Format* rendering are therefore identical to a
// local `spsweep run` of the same matrix, regardless of worker count,
// distribution, duplicate completions or server restarts.
func (s *Server) report(ss *sweepState) (*sweep.Report, error) {
	rep := &sweep.Report{}
	statuses := s.q.status(ss.keys)
	byKey := make(map[string]JobStatus, len(statuses))
	for _, js := range statuses {
		byKey[js.Key] = js
	}
	for _, j := range ss.matrix.Jobs() {
		jr := sweep.JobResult{Job: j}
		js := byKey[j.Key()]
		switch js.State {
		case "done":
			res, ok := s.store.Lookup(j)
			if !ok {
				return nil, fmt.Errorf("sweepd: %s is done but its artifact is missing from the store", j.Key())
			}
			jr.Result = res
			jr.Cached = js.Cached
			jr.Attempts = js.Attempts
		case "failed":
			// Match the local engine's terminal error shape
			// (sweep: <key>: <last attempt error>).
			jr.Err = fmt.Errorf("sweep: %s: %s", j.Key(), js.Error)
			jr.Attempts = js.Attempts
		default:
			return nil, fmt.Errorf("sweepd: %s is %s; the sweep is not terminal", j.Key(), js.State)
		}
		rep.Jobs = append(rep.Jobs, jr)
		switch {
		case jr.Err != nil:
			rep.Failed++
		case jr.Cached:
			rep.Cached++
		default:
			rep.Executed++
		}
	}
	return rep, nil
}

// WorkerAPI: the server itself is the in-process pool's job source, so
// local and remote workers share one code path with two transports.

// Lease implements WorkerAPI.
func (s *Server) Lease(worker string) (*Grant, bool, error) {
	g, drained := s.q.lease(worker)
	if g == nil {
		return nil, drained, nil
	}
	grant := &Grant{LeaseID: g.leaseID, Job: g.job, TTLMillis: s.opt.LeaseTTL.Milliseconds()}
	if g.job.SpecDigest != "" {
		b, err := os.ReadFile(g.specPath)
		if err != nil {
			// The cell cannot run anywhere without its spec; report the
			// attempt failed and let the retry budget decide.
			msg := fmt.Sprintf("spec unavailable on server: %v", err)
			if job, terminal, ferr := s.q.fail(g.leaseID, msg); ferr == nil && terminal {
				_ = s.store.MarkFailed(job, msg)
			}
			return nil, false, errors.New(msg)
		}
		grant.Spec = b
	}
	s.opt.Log("lease %s -> %s (%s)", g.leaseID, worker, g.job.Key())
	return grant, false, nil
}

// Heartbeat implements WorkerAPI.
func (s *Server) Heartbeat(leaseID string) error { return s.q.heartbeat(leaseID) }

// Complete implements WorkerAPI: the artifact reaches the store before
// the job flips terminal, so a crash between the two at worst recomputes
// an already-stored cell. First write wins; duplicates are no-ops.
func (s *Server) Complete(leaseID string, res *sim.Result) (bool, error) {
	job, done, err := s.q.jobForLease(leaseID)
	if err != nil {
		return false, err
	}
	if done {
		s.q.markDone(leaseID) // close the attempt record
		return true, nil
	}
	if res == nil {
		return false, errors.New("sweepd: complete with no result")
	}
	if err := s.store.Put(job, res); err != nil {
		if _, terminal, ferr := s.q.fail(leaseID, "store: "+err.Error()); ferr == nil && terminal {
			_ = s.store.MarkFailed(job, "store: "+err.Error())
		}
		return false, err
	}
	s.q.markDone(leaseID)
	s.opt.Log("%s: done", job.Key())
	return false, nil
}

// Fail implements WorkerAPI.
func (s *Server) Fail(leaseID, errMsg string) error {
	job, terminal, err := s.q.fail(leaseID, errMsg)
	if err != nil {
		return err
	}
	if terminal {
		s.opt.Log("%s: attempts exhausted: %s", job.Key(), errMsg)
		_ = s.store.MarkFailed(job, errMsg)
	} else {
		s.opt.Log("%s: attempt failed, requeued: %s", job.Key(), errMsg)
	}
	return nil
}

// validateMatrix rejects matrices no worker could run, before any job is
// registered.
func validateMatrix(m sweep.Matrix) error {
	if len(m.Benches) == 0 && len(m.Specs) == 0 {
		return errors.New("empty matrix: no benchmarks and no specs")
	}
	for _, b := range m.Benches {
		if _, err := workload.ByName(b); err != nil {
			return err
		}
	}
	if len(m.Kinds) == 0 {
		return errors.New("empty matrix: no kinds")
	}
	valid := make(map[string]bool)
	for _, k := range experiments.Kinds() {
		valid[k] = true
	}
	for _, k := range m.Kinds {
		if !valid[k] {
			return fmt.Errorf("unknown kind %q", k)
		}
	}
	if len(m.Seeds) == 0 {
		return errors.New("empty matrix: no seeds")
	}
	if len(m.Scales) == 0 {
		return errors.New("empty matrix: no scales")
	}
	for _, sc := range m.Scales {
		if sc <= 0 {
			return fmt.Errorf("bad scale %g", sc)
		}
	}
	if m.Threads < 1 {
		return fmt.Errorf("threads %d < 1", m.Threads)
	}
	switch m.Mode {
	case "", "detailed", "fast":
	default:
		return fmt.Errorf("unknown mode %q (want detailed or fast)", m.Mode)
	}
	return nil
}

// --- HTTP layer -------------------------------------------------------

// Handler returns the server's HTTP API: the route mux behind two guards
// applied to every request — the bearer-token check (when a token is
// configured; the health probe stays open so load balancers and `spsweep
// server status` can ping without credentials) and the request-body cap.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.opt.Token != "" && r.URL.Path != APIBase+"/healthz" {
			if subtle.ConstantTimeCompare([]byte(bearerToken(r)), []byte(s.opt.Token)) != 1 {
				writeError(w, http.StatusUnauthorized,
					errors.New("missing or invalid bearer token (set Authorization: Bearer <token>)"))
				return
			}
		}
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, s.opt.MaxBodyBytes)
		}
		s.mux.ServeHTTP(w, r)
	})
}

// bearerToken extracts the token of an "Authorization: Bearer ..." header
// ("" when absent or differently shaped).
func bearerToken(r *http.Request) string {
	const prefix = "Bearer "
	auth := r.Header.Get("Authorization")
	if len(auth) > len(prefix) && strings.EqualFold(auth[:len(prefix)], prefix) {
		return auth[len(prefix):]
	}
	return ""
}

func (s *Server) routes() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET "+APIBase+"/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	s.mux.HandleFunc("POST "+APIBase+"/sweeps", s.handleSubmit)
	s.mux.HandleFunc("GET "+APIBase+"/sweeps", s.handleList)
	s.mux.HandleFunc("GET "+APIBase+"/sweeps/{id}", s.handleStatus)
	s.mux.HandleFunc("GET "+APIBase+"/sweeps/{id}/results", s.handleResults)
	s.mux.HandleFunc("GET "+APIBase+"/sweeps/{id}/events", s.handleEvents)
	s.mux.HandleFunc("POST "+APIBase+"/lease", s.handleLease)
	s.mux.HandleFunc("POST "+APIBase+"/leases/{lease}/heartbeat", s.handleHeartbeat)
	s.mux.HandleFunc("POST "+APIBase+"/leases/{lease}/complete", s.handleComplete)
	s.mux.HandleFunc("POST "+APIBase+"/leases/{lease}/fail", s.handleFail)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeDecodeError(w, err)
		return
	}
	resp, err := s.Submit(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	resp := &ListResponse{Sweeps: []SweepInfo{}}
	for _, id := range s.sweepIDs() {
		ss, ok := s.sweepByID(id)
		if !ok {
			continue
		}
		resp.Sweeps = append(resp.Sweeps, SweepInfo{SweepID: id, Counts: s.q.counts(ss.keys)})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	ss, ok := s.sweepByID(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("unknown sweep"))
		return
	}
	writeJSON(w, http.StatusOK, &StatusResponse{
		SweepID: r.PathValue("id"),
		Matrix:  ss.matrix,
		Counts:  s.q.counts(ss.keys),
		Jobs:    s.q.status(ss.keys),
	})
}

func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	ss, ok := s.sweepByID(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("unknown sweep"))
		return
	}
	if c := s.q.counts(ss.keys); !c.Terminal() {
		writeError(w, http.StatusConflict, fmt.Errorf(
			"sweep not finished: %d pending, %d leased of %d jobs", c.Pending, c.Leased, c.Jobs))
		return
	}
	rep, err := s.report(ss)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		w.Header().Set("Content-Type", "application/json")
		if err := rep.FormatJSON(w); err != nil {
			s.opt.Log("results: %v", err)
		}
	case "csv":
		w.Header().Set("Content-Type", "text/csv")
		if err := rep.FormatCSV(w); err != nil {
			s.opt.Log("results: %v", err)
		}
	case "table":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		rep.FormatTable(w)
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown format %q (json|csv|table)", format))
	}
}

// handleEvents streams the sweep's status as NDJSON: terminal states
// replayed in key order for late subscribers, then live transitions, then
// one "complete" event. Display only — results come from the merge
// endpoint.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ss, ok := s.sweepByID(id)
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("unknown sweep"))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, errors.New("streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	seen := make(map[string]bool, len(ss.keys))
	for {
		ch := s.q.watch()
		events, done := s.q.terminalStatuses(ss.keys, seen)
		for i := range events {
			if err := enc.Encode(Event{Type: "job", Job: &events[i]}); err != nil {
				return
			}
		}
		if len(events) > 0 {
			flusher.Flush()
		}
		if done {
			c := s.q.counts(ss.keys)
			_ = enc.Encode(Event{Type: "complete", SweepID: id, Counts: &c})
			flusher.Flush()
			return
		}
		select {
		case <-ch:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeDecodeError(w, err)
		return
	}
	if req.Worker == "" {
		req.Worker = "remote"
	}
	g, drained, err := s.Lease(req.Worker)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, &LeaseResponse{Grant: g, Drained: drained})
}

func (s *Server) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	if err := s.Heartbeat(r.PathValue("lease")); err != nil {
		writeLeaseError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req CompleteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeDecodeError(w, err)
		return
	}
	dup, err := s.Complete(r.PathValue("lease"), req.Result)
	if err != nil {
		writeLeaseError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, &CompleteResponse{Duplicate: dup})
}

func (s *Server) handleFail(w http.ResponseWriter, r *http.Request) {
	var req FailRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeDecodeError(w, err)
		return
	}
	if err := s.Fail(r.PathValue("lease"), req.Error); err != nil {
		writeLeaseError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func writeLeaseError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrUnknownLease):
		writeError(w, http.StatusNotFound, err)
	case errors.Is(err, ErrLeaseGone):
		writeError(w, http.StatusGone, err)
	default:
		writeError(w, http.StatusInternalServerError, err)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

// writeDecodeError maps a request-body decode failure to a status: an
// over-cap body (http.MaxBytesReader tripped) is 413 with the limit named
// so the caller knows to raise -max-body or shrink the payload; anything
// else is a plain 400.
func writeDecodeError(w http.ResponseWriter, err error) {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		writeError(w, http.StatusRequestEntityTooLarge, fmt.Errorf(
			"request body exceeds the server's %d-byte limit (raise -max-body on the daemon or shrink the payload)", mbe.Limit))
		return
	}
	writeError(w, http.StatusBadRequest, fmt.Errorf("decode: %w", err))
}

// atomicWrite writes data via temp file + rename, like the store's.
func atomicWrite(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}
