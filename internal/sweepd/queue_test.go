package sweepd

import (
	"testing"
	"time"

	"spcoh/internal/runcfg"
	"spcoh/internal/sweep"
)

// fakeClock drives the queue without sleeping.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}
func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func testJob(bench string) sweep.Job {
	return sweep.Job{
		Bench:     bench,
		Kind:      "sp",
		RunConfig: runcfg.RunConfig{Threads: 16, Scale: 0.25, Seed: 42},
	}
}

func newTestQueue(clk *fakeClock, cfg queueConfig) *queue {
	cfg.now = clk.now
	return newQueue(cfg)
}

func TestLeaseLifecycleExpiryRequeues(t *testing.T) {
	clk := newFakeClock()
	q := newTestQueue(clk, queueConfig{TTL: time.Minute, MaxAttempts: 2})
	j := testJob("ocean")
	q.add(j, "", false)

	g, drained := q.lease("w1")
	if g == nil || drained {
		t.Fatalf("lease: got %v drained=%v, want a grant", g, drained)
	}
	if got := q.counts(nil); got.Leased != 1 || got.Pending != 0 {
		t.Fatalf("counts after lease: %+v", got)
	}
	// A second worker finds nothing while the lease is live.
	if g2, _ := q.lease("w2"); g2 != nil {
		t.Fatalf("leased job handed out twice: %+v", g2)
	}

	// Before the TTL, expire is a no-op.
	clk.advance(59 * time.Second)
	if dead := q.expire(); len(dead) != 0 {
		t.Fatalf("expire before TTL killed %d jobs", len(dead))
	}
	if got := q.counts(nil); got.Leased != 1 {
		t.Fatalf("counts after early expire: %+v", got)
	}

	// Past the TTL, the job requeues (attempt 1 of 2 burned).
	clk.advance(2 * time.Second)
	if dead := q.expire(); len(dead) != 0 {
		t.Fatalf("first expiry should requeue, not fail: %v", dead)
	}
	if got := q.counts(nil); got.Pending != 1 || got.Leased != 0 {
		t.Fatalf("counts after expiry: %+v", got)
	}
	st := q.status([]string{j.Key()})
	if len(st) != 1 || st[0].State != "pending" || st[0].Attempts != 1 {
		t.Fatalf("status after expiry: %+v", st)
	}

	// Second lease, second expiry: attempts exhausted, terminally failed,
	// and expire reports the job for the failure ledger.
	g, _ = q.lease("w2")
	if g == nil {
		t.Fatal("requeued job not leasable")
	}
	clk.advance(2 * time.Minute)
	dead := q.expire()
	if len(dead) != 1 || dead[0].Key() != j.Key() {
		t.Fatalf("second expiry should terminally fail %s: %v", j.Key(), dead)
	}
	st = q.status([]string{j.Key()})
	if st[0].State != "failed" || st[0].Attempts != 2 || st[0].Error == "" {
		t.Fatalf("terminal status: %+v", st[0])
	}
	if !q.drainedLocked() {
		t.Fatal("queue with only a failed job should report drained")
	}
}

func TestHeartbeatExtendsLease(t *testing.T) {
	clk := newFakeClock()
	q := newTestQueue(clk, queueConfig{TTL: time.Minute, MaxAttempts: 1})
	q.add(testJob("ocean"), "", false)
	g, _ := q.lease("w1")

	// Heartbeats every 30s keep a 1m lease alive well past its original TTL.
	for i := 0; i < 10; i++ {
		clk.advance(30 * time.Second)
		if dead := q.expire(); len(dead) != 0 {
			t.Fatalf("heartbeated lease expired at step %d", i)
		}
		if err := q.heartbeat(g.leaseID); err != nil {
			t.Fatalf("heartbeat %d: %v", i, err)
		}
	}
	if got := q.counts(nil); got.Leased != 1 {
		t.Fatalf("counts after heartbeats: %+v", got)
	}

	// Stop heartbeating: one TTL later the lease dies and the heartbeat
	// starts answering ErrLeaseGone (MaxAttempts=1 → terminal).
	clk.advance(2 * time.Minute)
	if dead := q.expire(); len(dead) != 1 {
		t.Fatalf("lease should expire after heartbeats stop: %v", dead)
	}
	if err := q.heartbeat(g.leaseID); err != ErrLeaseGone {
		t.Fatalf("heartbeat on dead lease: %v, want ErrLeaseGone", err)
	}
	if err := q.heartbeat("L99999999"); err != ErrUnknownLease {
		t.Fatalf("heartbeat on never-issued lease: %v, want ErrUnknownLease", err)
	}
}

func TestDuplicateCompletionFirstWriteWins(t *testing.T) {
	clk := newFakeClock()
	q := newTestQueue(clk, queueConfig{TTL: time.Minute, MaxAttempts: 3})
	j := testJob("ocean")
	q.add(j, "", false)

	// w1 leases, its lease expires, w2 leases the requeued job and wins.
	g1, _ := q.lease("w1")
	clk.advance(2 * time.Minute)
	q.expire()
	g2, _ := q.lease("w2")
	if g2 == nil || g2.leaseID == g1.leaseID {
		t.Fatalf("requeued job should get a fresh lease: %+v", g2)
	}

	if _, done, err := q.jobForLease(g2.leaseID); err != nil || done {
		t.Fatalf("w2 jobForLease: done=%v err=%v", done, err)
	}
	q.markDone(g2.leaseID)
	if st := q.status([]string{j.Key()}); st[0].State != "done" {
		t.Fatalf("after w2 completes: %+v", st[0])
	}

	// w1's late completion resolves through its old lease and reports the
	// duplicate; the job's state does not change.
	_, done, err := q.jobForLease(g1.leaseID)
	if err != nil {
		t.Fatalf("w1's expired lease must still resolve: %v", err)
	}
	if !done {
		t.Fatal("w1's completion should be flagged as a duplicate")
	}
	q.markDone(g1.leaseID) // the server still closes the attempt record
	st := q.status([]string{j.Key()})
	if st[0].State != "done" || st[0].Attempts != 2 {
		t.Fatalf("after duplicate completion: %+v", st[0])
	}
}

func TestFailRequeuesWithBackoffGate(t *testing.T) {
	clk := newFakeClock()
	q := newTestQueue(clk, queueConfig{
		TTL: time.Minute, MaxAttempts: 2,
		Backoff: time.Second, BackoffSeed: 7,
	})
	j := testJob("ocean")
	q.add(j, "", false)

	g, _ := q.lease("w1")
	if _, terminal, err := q.fail(g.leaseID, "boom"); err != nil || terminal {
		t.Fatalf("first failure: terminal=%v err=%v", terminal, err)
	}
	// The requeue gate holds the job back for RetryDelay(key, 2, ...).
	want := sweep.RetryDelay(j.Key(), 2, time.Second, 7)
	if want <= 0 {
		t.Fatal("test needs a positive backoff delay")
	}
	if g2, _ := q.lease("w1"); g2 != nil {
		t.Fatalf("job leased before its backoff gate: %+v", g2)
	}
	clk.advance(want + time.Millisecond)
	g2, _ := q.lease("w1")
	if g2 == nil {
		t.Fatal("job not leasable after its backoff gate")
	}

	// Second failure exhausts the attempts.
	_, terminal, err := q.fail(g2.leaseID, "boom again")
	if err != nil || !terminal {
		t.Fatalf("second failure: terminal=%v err=%v", terminal, err)
	}
	st := q.status([]string{j.Key()})
	if st[0].State != "failed" || st[0].Error != "boom again" {
		t.Fatalf("terminal status: %+v", st[0])
	}
}

func TestStaleFailDoesNotDisturbNewLease(t *testing.T) {
	clk := newFakeClock()
	q := newTestQueue(clk, queueConfig{TTL: time.Minute, MaxAttempts: 5})
	j := testJob("ocean")
	q.add(j, "", false)

	g1, _ := q.lease("w1")
	clk.advance(2 * time.Minute)
	q.expire()
	g2, _ := q.lease("w2")

	// w1's stale failure report must not requeue or fail the job w2 holds.
	if _, terminal, err := q.fail(g1.leaseID, "stale"); err != nil || terminal {
		t.Fatalf("stale fail: terminal=%v err=%v", terminal, err)
	}
	st := q.status([]string{j.Key()})
	if st[0].State != "leased" {
		t.Fatalf("stale fail disturbed the active lease: %+v", st[0])
	}
	if err := q.heartbeat(g2.leaseID); err != nil {
		t.Fatalf("active lease broken by stale fail: %v", err)
	}
}

func TestCachedAddIsTerminal(t *testing.T) {
	clk := newFakeClock()
	q := newTestQueue(clk, queueConfig{TTL: time.Minute, MaxAttempts: 1})
	q.add(testJob("ocean"), "", true) // recalled from the store
	q.add(testJob("fmm"), "", false)

	c := q.counts(nil)
	if c.Jobs != 2 || c.Done != 1 || c.Cached != 1 || c.Pending != 1 {
		t.Fatalf("counts: %+v", c)
	}
	// The cached job is never handed out.
	g, _ := q.lease("w1")
	if g == nil || g.job.Bench != "fmm" {
		t.Fatalf("lease should skip the cached job: %+v", g)
	}
	q.markDone(g.leaseID)
	if g, drained := q.lease("w1"); g != nil || !drained {
		t.Fatalf("queue should be drained: grant=%v drained=%v", g, drained)
	}
}

func TestTerminalStatusReplay(t *testing.T) {
	clk := newFakeClock()
	q := newTestQueue(clk, queueConfig{TTL: time.Minute, MaxAttempts: 1})
	a, b := testJob("fmm"), testJob("ocean")
	q.add(a, "", false)
	q.add(b, "", false)
	keys := []string{a.Key(), b.Key()}

	seen := make(map[string]bool)
	if events, done := q.terminalStatuses(keys, seen); len(events) != 0 || done {
		t.Fatalf("fresh queue: events=%v done=%v", events, done)
	}

	g, _ := q.lease("w1") // fmm (key order)
	q.markDone(g.leaseID)
	events, done := q.terminalStatuses(keys, seen)
	if len(events) != 1 || events[0].Key != a.Key() || done {
		t.Fatalf("after one completion: events=%+v done=%v", events, done)
	}
	// Replay is incremental: the same terminal state is not re-delivered.
	if events, _ := q.terminalStatuses(keys, seen); len(events) != 0 {
		t.Fatalf("terminal state replayed twice: %+v", events)
	}

	g, _ = q.lease("w1")
	q.markDone(g.leaseID)
	events, done = q.terminalStatuses(keys, seen)
	if len(events) != 1 || events[0].Key != b.Key() || !done {
		t.Fatalf("after both complete: events=%+v done=%v", events, done)
	}

	// A late subscriber replays both terminal states at once.
	late := make(map[string]bool)
	events, done = q.terminalStatuses(keys, late)
	if len(events) != 2 || !done {
		t.Fatalf("late subscriber replay: events=%+v done=%v", events, done)
	}
}

func TestWatchFiresOnTransition(t *testing.T) {
	clk := newFakeClock()
	q := newTestQueue(clk, queueConfig{TTL: time.Minute, MaxAttempts: 1})
	ch := q.watch()
	select {
	case <-ch:
		t.Fatal("watch fired before any transition")
	default:
	}
	q.add(testJob("ocean"), "", false)
	select {
	case <-ch:
	default:
		t.Fatal("watch did not fire on add")
	}
}
