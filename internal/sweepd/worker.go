package sweepd

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"spcoh/internal/experiments"
	"spcoh/internal/scenario"
	"spcoh/internal/sim"
	"spcoh/internal/sweep"
)

// WorkerAPI is everything a worker needs from its job source. Two
// implementations share every caller: *Client (HTTP, for
// `spsweep work -server`) and *Server (direct calls, for the daemon's
// in-process pool) — one worker code path, two transports.
type WorkerAPI interface {
	// Lease requests one job. A nil grant means no job is available;
	// drained additionally means every known job is terminal.
	Lease(worker string) (g *Grant, drained bool, err error)
	// Heartbeat extends the lease TTL while the job runs.
	Heartbeat(leaseID string) error
	// Complete pushes the result. duplicate marks the first-write-wins
	// no-op: the job was already completed elsewhere.
	Complete(leaseID string, res *sim.Result) (duplicate bool, err error)
	// Fail reports a failed attempt; the server requeues within the
	// job's attempt budget.
	Fail(leaseID, errMsg string) error
}

// ExecFunc executes one leased job. spec is non-nil exactly for
// scenario-spec cells, already verified against Job.SpecDigest.
type ExecFunc func(j sweep.Job, spec *scenario.Spec) (*sim.Result, error)

// DefaultExec runs the cell through internal/experiments — the same
// executor a local spsweep run uses, so a cell computes identical bytes
// wherever it lands.
func DefaultExec(j sweep.Job, spec *scenario.Spec) (*sim.Result, error) {
	if j.SpecDigest == "" {
		return experiments.RunCell(j.RunConfig, j.Bench, j.Kind)
	}
	if spec == nil {
		return nil, fmt.Errorf("sweepd: job %s needs spec %.12s but none was provided", j.Key(), j.SpecDigest)
	}
	return experiments.RunSpecCell(j.RunConfig, spec, j.Kind)
}

// ShardExec is DefaultExec with the intra-run sharded executor enabled
// (DESIGN.md §16). Shards is an engine knob local to whichever worker runs
// the cell — it changes how a result is computed, never the result bytes —
// so a fleet may freely mix shard counts per host without perturbing
// digests or the ledger.
func ShardExec(shards int) ExecFunc {
	return func(j sweep.Job, spec *scenario.Spec) (*sim.Result, error) {
		j.RunConfig.Shards = shards
		return DefaultExec(j, spec)
	}
}

// WorkerOptions configures RunWorker.
type WorkerOptions struct {
	// ID names this worker in leases and attempt histories. Slots append
	// "/<n>". Defaults to "worker".
	ID string
	// Slots is the number of concurrent leases (goroutines); <= 0 means 1.
	Slots int
	// Poll is the idle wait between lease attempts when no job is
	// available (and the retry wait after a transport error); <= 0 means
	// 200ms.
	Poll time.Duration
	// Timeout bounds one attempt's wall time (sweep.RunAttempt's
	// backstop); 0 means none. The lease TTL still protects the server: a
	// hung worker stops heartbeating only if it dies, but a timed-out
	// attempt reports Fail promptly.
	Timeout time.Duration
	// Drain exits the worker once the server reports no work left instead
	// of polling forever.
	Drain bool
	// Exec executes jobs; nil means DefaultExec.
	Exec ExecFunc
	// Log, when set, receives one line per worker event (lease, done,
	// fail). Display only.
	Log func(format string, args ...any)
}

// RunWorker leases, executes and reports jobs until ctx is canceled (or,
// with Drain, until the server has no work left). It is the one worker
// code path: the daemon's in-process pool calls it with the Server itself
// as api; `spsweep work` calls it with an HTTP *Client. Every attempt is
// contained by sweep.RunAttempt (panic → error, optional timeout), and
// every scenario-spec cell re-verifies its spec content against the digest
// in the job identity before executing.
func RunWorker(ctx context.Context, api WorkerAPI, opt WorkerOptions) {
	if opt.ID == "" {
		opt.ID = "worker"
	}
	if opt.Slots <= 0 {
		opt.Slots = 1
	}
	if opt.Poll <= 0 {
		opt.Poll = 200 * time.Millisecond
	}
	if opt.Exec == nil {
		opt.Exec = DefaultExec
	}
	if opt.Log == nil {
		opt.Log = func(string, ...any) {}
	}
	var wg sync.WaitGroup
	for slot := 0; slot < opt.Slots; slot++ {
		id := opt.ID
		if opt.Slots > 1 {
			id = fmt.Sprintf("%s/%d", opt.ID, slot)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			workerLoop(ctx, api, opt, id)
		}()
	}
	wg.Wait()
}

// workerLoop is one lease slot.
func workerLoop(ctx context.Context, api WorkerAPI, opt WorkerOptions, id string) {
	for ctx.Err() == nil {
		g, drained, err := api.Lease(id)
		if err != nil {
			// Transport errors (server restarting, network blip) are
			// retried at the poll cadence; the lease protocol makes the
			// retry safe.
			opt.Log("%s: lease: %v", id, err)
			if sleepCtx(ctx, opt.Poll) != nil {
				return
			}
			continue
		}
		if g == nil {
			if drained && opt.Drain {
				return
			}
			if sleepCtx(ctx, opt.Poll) != nil {
				return
			}
			continue
		}
		runGrant(ctx, api, opt, id, g)
	}
}

// runGrant executes one leased job and reports the outcome.
func runGrant(ctx context.Context, api WorkerAPI, opt WorkerOptions, id string, g *Grant) {
	job := g.Job
	var spec *scenario.Spec
	if job.SpecDigest != "" {
		sp, err := scenario.Parse(g.Spec)
		if err != nil {
			reportFail(api, opt, id, g, fmt.Sprintf("bad spec payload: %v", err))
			return
		}
		if d := sp.Digest(); d != job.SpecDigest {
			reportFail(api, opt, id, g, fmt.Sprintf(
				"spec digest mismatch: payload %.12s, job wants %.12s", d, job.SpecDigest))
			return
		}
		spec = sp
	}

	// Heartbeat for the lease while the simulation runs; a dead worker
	// stops heartbeating and the server requeues after the TTL.
	hbCtx, stopHB := context.WithCancel(ctx)
	var hbDone sync.WaitGroup
	hbDone.Add(1)
	go func() {
		defer hbDone.Done()
		heartbeatLoop(hbCtx, api, g)
	}()

	run := func(sweep.Job) (*sim.Result, error) { return opt.Exec(job, spec) }
	start := time.Now()
	res, err := sweep.RunAttempt(ctx, job, run, opt.Timeout)
	stopHB()
	hbDone.Wait()

	if err != nil {
		reportFail(api, opt, id, g, err.Error())
		return
	}
	dup, cerr := api.Complete(g.LeaseID, res)
	switch {
	case cerr != nil:
		opt.Log("%s: %s: push failed after %.1fs: %v", id, job.Key(), time.Since(start).Seconds(), cerr)
	case dup:
		opt.Log("%s: %s: duplicate (completed elsewhere) %.1fs", id, job.Key(), time.Since(start).Seconds())
	default:
		opt.Log("%s: %s: ok %.1fs", id, job.Key(), time.Since(start).Seconds())
	}
}

// reportFail pushes a failed attempt, logging but tolerating transport
// errors (the lease TTL requeues the job if the report is lost).
func reportFail(api WorkerAPI, opt WorkerOptions, id string, g *Grant, msg string) {
	opt.Log("%s: %s: FAIL: %s", id, g.Job.Key(), msg)
	if err := api.Fail(g.LeaseID, msg); err != nil {
		opt.Log("%s: %s: fail report lost: %v", id, g.Job.Key(), err)
	}
}

// heartbeatLoop renews the lease at a third of its TTL until canceled.
func heartbeatLoop(ctx context.Context, api WorkerAPI, g *Grant) {
	ttl := time.Duration(g.TTLMillis) * time.Millisecond
	interval := ttl / 3
	if interval <= 0 {
		interval = 15 * time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			err := api.Heartbeat(g.LeaseID)
			if errors.Is(err, ErrLeaseGone) || errors.Is(err, ErrUnknownLease) {
				// The server resolved the job elsewhere; the eventual
				// Complete is still safe (duplicate no-op). Transient
				// transport errors keep trying.
				return
			}
		}
	}
}

// sleepCtx waits d or until ctx is canceled.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
