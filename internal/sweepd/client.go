package sweepd

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"spcoh/internal/sim"
)

// Client talks to a spsweepd server. It implements WorkerAPI, so
// `spsweep work -server <url>` drives the exact worker loop (RunWorker)
// that the daemon's in-process pool runs — the only difference is the
// transport.
type Client struct {
	base  string
	token string
	http  *http.Client
}

// NewClient returns a client for the server at base (e.g.
// "http://127.0.0.1:8437"). Requests other than streams time out after
// a minute.
func NewClient(base string) *Client {
	return &Client{
		base: strings.TrimRight(base, "/"),
		http: &http.Client{Timeout: time.Minute},
	}
}

// SetToken makes every subsequent request carry "Authorization: Bearer
// <token>" — required against a daemon started with -token. An empty
// token sends no header.
func (c *Client) SetToken(token string) { c.token = token }

// url joins the API base with a path.
func (c *Client) url(path string) string { return c.base + APIBase + path }

// newRequest builds a request with the client's credentials attached.
func (c *Client) newRequest(method, path string, body io.Reader) (*http.Request, error) {
	req, err := http.NewRequest(method, c.url(path), body)
	if err != nil {
		return nil, err
	}
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	return req, nil
}

// doJSON performs one request with optional JSON body, decoding the JSON
// response into out (when non-nil). Non-2xx responses decode the error
// body into an error.
func (c *Client) doJSON(method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("sweepd client: encode request: %w", err)
		}
		body = bytes.NewReader(b)
	}
	req, err := c.newRequest(method, path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeError(resp)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// decodeError maps a non-2xx response to an error, translating the lease
// status codes back to the sentinel errors RunWorker checks.
func decodeError(resp *http.Response) error {
	var e errorResponse
	msg := resp.Status
	if json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&e) == nil && e.Error != "" {
		msg = e.Error
	}
	switch resp.StatusCode {
	case http.StatusNotFound:
		if strings.Contains(msg, "unknown lease") {
			return ErrUnknownLease
		}
	case http.StatusGone:
		return ErrLeaseGone
	}
	return fmt.Errorf("sweepd client: %s", msg)
}

// Healthz reports whether the server answers.
func (c *Client) Healthz() error {
	return c.doJSON(http.MethodGet, "/healthz", nil, nil)
}

// Submit submits a matrix (idempotent; see Server.Submit).
func (c *Client) Submit(req *SubmitRequest) (*SubmitResponse, error) {
	var resp SubmitResponse
	if err := c.doJSON(http.MethodPost, "/sweeps", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// List lists the server's sweeps.
func (c *Client) List() (*ListResponse, error) {
	var resp ListResponse
	if err := c.doJSON(http.MethodGet, "/sweeps", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Status reports one sweep's state.
func (c *Client) Status(sweepID string) (*StatusResponse, error) {
	var resp StatusResponse
	if err := c.doJSON(http.MethodGet, "/sweeps/"+sweepID, nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Results streams the merged results of a finished sweep to w, verbatim
// — the bytes are the server's deterministic rendering, byte-identical
// to a local run. format is json, csv or table ("" = json). A sweep that
// is not yet terminal yields an error (HTTP 409).
func (c *Client) Results(sweepID, format string, w io.Writer) error {
	path := "/sweeps/" + sweepID + "/results"
	if format != "" {
		path += "?format=" + format
	}
	req, err := c.newRequest(http.MethodGet, path, nil)
	if err != nil {
		return err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeError(resp)
	}
	_, err = io.Copy(w, resp.Body)
	return err
}

// StreamEvents follows a sweep's NDJSON status stream, invoking fn per
// event, until the stream ends (the sweep completed, fn returned false,
// or the connection dropped). A dropped connection returns an error; the
// caller may simply reconnect — the stream replays terminal states, so
// nothing is lost. The request carries no timeout (streams outlive any).
func (c *Client) StreamEvents(sweepID string, fn func(Event) bool) error {
	req, err := c.newRequest(http.MethodGet, "/sweeps/"+sweepID+"/events", nil)
	if err != nil {
		return err
	}
	streamClient := &http.Client{Transport: c.http.Transport}
	resp, err := streamClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			return fmt.Errorf("sweepd client: bad event: %w", err)
		}
		if !fn(ev) {
			return nil
		}
		if ev.Type == "complete" {
			return nil
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("sweepd client: stream: %w", err)
	}
	return nil
}

// WorkerAPI implementation — the remote half of the shared worker loop.

// Lease implements WorkerAPI over HTTP.
func (c *Client) Lease(worker string) (*Grant, bool, error) {
	var resp LeaseResponse
	if err := c.doJSON(http.MethodPost, "/lease", &LeaseRequest{Worker: worker}, &resp); err != nil {
		return nil, false, err
	}
	return resp.Grant, resp.Drained, nil
}

// Heartbeat implements WorkerAPI over HTTP.
func (c *Client) Heartbeat(leaseID string) error {
	return c.doJSON(http.MethodPost, "/leases/"+leaseID+"/heartbeat", struct{}{}, nil)
}

// Complete implements WorkerAPI over HTTP.
func (c *Client) Complete(leaseID string, res *sim.Result) (bool, error) {
	var resp CompleteResponse
	if err := c.doJSON(http.MethodPost, "/leases/"+leaseID+"/complete", &CompleteRequest{Result: res}, &resp); err != nil {
		return false, err
	}
	return resp.Duplicate, nil
}

// Fail implements WorkerAPI over HTTP.
func (c *Client) Fail(leaseID, errMsg string) error {
	return c.doJSON(http.MethodPost, "/leases/"+leaseID+"/fail", &FailRequest{Error: errMsg}, nil)
}
