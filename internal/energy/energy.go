// Package energy implements the paper's analytical energy model (§5.3):
// dynamic energy on the interconnect proportional to data moved, routers
// costing four times a link traversal, and a fixed CACTI-derived cost per
// L2 tag lookup caused by remote (snoop/forward/predicted) requests.
// Results are in abstract energy units; the paper reports normalized
// values, as do we.
package energy

import "spcoh/internal/noc"

// Params are the per-event energy costs.
type Params struct {
	LinkPerFlitHop   float64 // energy per flit per link traversal
	RouterPerFlitHop float64 // energy per flit per router traversal
	SnoopLookup      float64 // energy per remote-request L2 tag probe
}

// DefaultParams follow the paper: router = 4x link; the tag-lookup cost is
// a CACTI-style estimate for a 1MB 8-way tag array at 32nm, expressed
// relative to a 16-byte flit-hop. The lookup constant is calibrated so the
// broadcast/directory energy ratio lands near the paper's 2.4x (Fig. 11).
func DefaultParams() Params {
	return Params{LinkPerFlitHop: 1.0, RouterPerFlitHop: 4.0, SnoopLookup: 5.0}
}

// Breakdown is the consumed energy by component.
type Breakdown struct {
	Network float64
	Snoops  float64
}

// Total returns the sum of all components.
func (b Breakdown) Total() float64 { return b.Network + b.Snoops }

// Compute evaluates the model over interconnect statistics and the number
// of remote-request tag lookups.
func Compute(net noc.Stats, snoopLookups uint64, p Params) Breakdown {
	return Breakdown{
		Network: float64(net.FlitHops) * (p.LinkPerFlitHop + p.RouterPerFlitHop),
		Snoops:  float64(snoopLookups) * p.SnoopLookup,
	}
}
