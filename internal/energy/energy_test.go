package energy

import (
	"testing"

	"spcoh/internal/noc"
)

func TestComputeModel(t *testing.T) {
	p := Params{LinkPerFlitHop: 1, RouterPerFlitHop: 4, SnoopLookup: 5}
	b := Compute(noc.Stats{FlitHops: 100}, 10, p)
	if b.Network != 500 {
		t.Fatalf("network = %v, want 500", b.Network)
	}
	if b.Snoops != 50 {
		t.Fatalf("snoops = %v, want 50", b.Snoops)
	}
	if b.Total() != 550 {
		t.Fatalf("total = %v", b.Total())
	}
}

func TestDefaultsRouterIsFourTimesLink(t *testing.T) {
	p := DefaultParams()
	if p.RouterPerFlitHop != 4*p.LinkPerFlitHop {
		t.Fatalf("paper model: router = 4x link, got %v vs %v",
			p.RouterPerFlitHop, p.LinkPerFlitHop)
	}
	if p.SnoopLookup <= 0 {
		t.Fatal("lookup energy must be positive")
	}
}

func TestZeroActivityZeroEnergy(t *testing.T) {
	if b := Compute(noc.Stats{}, 0, DefaultParams()); b.Total() != 0 {
		t.Fatalf("idle energy = %v", b.Total())
	}
}

func TestEnergyMonotoneInActivity(t *testing.T) {
	p := DefaultParams()
	small := Compute(noc.Stats{FlitHops: 10}, 5, p).Total()
	large := Compute(noc.Stats{FlitHops: 20}, 10, p).Total()
	if large <= small {
		t.Fatalf("energy not monotone: %v vs %v", small, large)
	}
}
