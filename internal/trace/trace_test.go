package trace

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"spcoh/internal/arch"
	"spcoh/internal/event"
	"spcoh/internal/predictor"
)

func sampleEvents(n int, seed int64) []*Event {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*Event, n)
	for i := range out {
		if rng.Intn(4) == 0 {
			out[i] = &Event{Kind: EvSync, Cycle: event.Time(rng.Intn(1 << 20)),
				Node: arch.NodeID(rng.Intn(16)), SyncKind: predictor.SyncKind(rng.Intn(6)),
				StaticID: rng.Uint64() >> 20}
		} else {
			prov := arch.NodeID(rng.Intn(17)) - 1
			out[i] = &Event{Kind: EvMiss, Cycle: event.Time(rng.Intn(1 << 20)),
				Node: arch.NodeID(rng.Intn(16)), Line: arch.LineAddr(rng.Uint64() >> 30),
				PC: uint64(rng.Intn(1 << 22)), MissKind: predictor.MissKind(rng.Intn(3)),
				Provider: prov, Invalidated: arch.SetFromBits64(rng.Uint64() & 0xFFFF),
				Communicating: rng.Intn(2) == 0}
		}
	}
	return out
}

func TestRoundTrip(t *testing.T) {
	events := sampleEvents(500, 1)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, e := range events {
		if err := w.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 500 {
		t.Fatalf("count = %d", w.Count())
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("read %d events, want %d", len(got), len(events))
	}
	for i := range events {
		if *got[i] != *events[i] {
			t.Fatalf("event %d mismatch:\n%+v\n%+v", i, got[i], events[i])
		}
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := ReadAll(strings.NewReader("NOTATRACE")); err == nil {
		t.Fatal("bad magic must error")
	}
}

func TestTruncated(t *testing.T) {
	events := sampleEvents(10, 2)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, e := range events {
		w.Write(e)
	}
	w.Flush()
	cut := buf.Bytes()[:buf.Len()-3]
	if _, err := ReadAll(bytes.NewReader(cut)); err == nil {
		t.Fatal("truncated stream must error")
	}
}

func TestEmptyStream(t *testing.T) {
	got, err := ReadAll(bytes.NewReader(nil))
	if err != nil || len(got) != 0 {
		t.Fatalf("empty stream: %v %v", got, err)
	}
}

func TestTargets(t *testing.T) {
	e := &Event{Kind: EvMiss, Provider: 3, Invalidated: arch.SetOf(1)}
	if e.Targets() != arch.SetOf(1, 3) {
		t.Fatalf("targets = %v", e.Targets())
	}
	e.Provider = arch.None
	if e.Targets() != arch.SetOf(1) {
		t.Fatalf("targets = %v", e.Targets())
	}
}

func TestCollector(t *testing.T) {
	var buf bytes.Buffer
	c := &Collector{W: NewWriter(&buf)}
	c.Miss(10, 2, 0x40, 0x400, predictor.ReadMiss,
		predictor.Outcome{Provider: 5, Communicating: true})
	c.Sync(20, 2, predictor.SyncBarrier, 7)
	if c.Err() != nil {
		t.Fatal(c.Err())
	}
	if len(c.Events) != 2 {
		t.Fatalf("events = %d", len(c.Events))
	}
	c.W.Flush()
	got, err := ReadAll(&buf)
	if err != nil || len(got) != 2 {
		t.Fatalf("stream: %d events, err %v", len(got), err)
	}
	if got[0].Provider != 5 || got[1].SyncKind != predictor.SyncBarrier {
		t.Fatalf("decoded: %+v %+v", got[0], got[1])
	}
}

// Property: any generated event sequence round-trips bit-exactly.
func TestPropertyRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		events := sampleEvents(int(n), seed)
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, e := range events {
			if w.Write(e) != nil {
				return false
			}
		}
		if w.Flush() != nil {
			return false
		}
		got, err := ReadAll(&buf)
		if err != nil || len(got) != len(events) {
			return false
		}
		for i := range events {
			if *got[i] != *events[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
