// Package trace persists and replays L2-miss/sync-point traces — the
// methodology of the paper's §3.2 characterization study, which collects
// "L2 miss traces that contain the miss data address, type, PC, and the
// target set of cores" plus "all sync-points along with their type and
// static/dynamic IDs".
//
// The format is a compact varint-encoded binary stream, written by the
// Collector (a sim.Tracer) and consumed by the characterization pipeline or
// the sptrace inspection tool.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"spcoh/internal/arch"
	"spcoh/internal/event"
	"spcoh/internal/predictor"
)

// EventKind discriminates trace records.
type EventKind uint8

const (
	// EvMiss is a completed L2 miss with its communication outcome.
	EvMiss EventKind = iota
	// EvSync is a synchronization point crossing.
	EvSync
)

// Event is one trace record.
type Event struct {
	Kind  EventKind
	Cycle event.Time
	Node  arch.NodeID

	// Miss fields.
	Line          arch.LineAddr
	PC            uint64
	MissKind      predictor.MissKind
	Provider      arch.NodeID // arch.None if memory
	Invalidated   arch.SharerSet
	Communicating bool

	// Sync fields.
	SyncKind predictor.SyncKind
	StaticID uint64
}

// Targets returns the full communication set of a miss event.
func (e *Event) Targets() arch.SharerSet {
	s := e.Invalidated
	if e.Provider != arch.None {
		s = s.Add(e.Provider)
	}
	return s
}

const magic = "SPTR1\n"

// Writer streams events to an io.Writer.
type Writer struct {
	w     *bufio.Writer
	n     int
	wrote bool
	err   error
}

// NewWriter begins a trace stream.
func NewWriter(w io.Writer) *Writer { return &Writer{w: bufio.NewWriter(w)} }

func (w *Writer) uv(v uint64) {
	if w.err != nil {
		return
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, w.err = w.w.Write(buf[:n])
}

// Write appends one event.
func (w *Writer) Write(e *Event) error {
	if !w.wrote {
		w.wrote = true
		if _, err := w.w.WriteString(magic); err != nil {
			return err
		}
	}
	w.uv(uint64(e.Kind))
	w.uv(uint64(e.Cycle))
	w.uv(uint64(e.Node))
	switch e.Kind {
	case EvMiss:
		w.uv(uint64(e.Line))
		w.uv(e.PC)
		w.uv(uint64(e.MissKind))
		w.uv(uint64(e.Provider + 1)) // None (-1) encodes as 0
		// The binary format stores one 64-bit word of invalidation targets;
		// traces are captured on the paper's 16-node machine, far below the
		// word boundary.
		w.uv(e.Invalidated.Bits64())
		if e.Communicating {
			w.uv(1)
		} else {
			w.uv(0)
		}
	case EvSync:
		w.uv(uint64(e.SyncKind))
		w.uv(e.StaticID)
	default:
		return fmt.Errorf("trace: bad event kind %d", e.Kind)
	}
	if w.err == nil {
		w.n++
	}
	return w.err
}

// Count returns the number of events written so far.
func (w *Writer) Count() int { return w.n }

// Flush drains buffered output.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// Reader decodes a trace stream.
type Reader struct {
	r       *bufio.Reader
	started bool
}

// NewReader opens a trace stream.
func NewReader(r io.Reader) *Reader { return &Reader{r: bufio.NewReader(r)} }

// Next decodes the next event; io.EOF at the end of the stream.
func (r *Reader) Next() (*Event, error) {
	if !r.started {
		hdr := make([]byte, len(magic))
		if _, err := io.ReadFull(r.r, hdr); err != nil {
			if errors.Is(err, io.ErrUnexpectedEOF) {
				return nil, errors.New("trace: truncated header")
			}
			return nil, err
		}
		if string(hdr) != magic {
			return nil, errors.New("trace: bad magic (not a trace file?)")
		}
		r.started = true
	}
	kind, err := binary.ReadUvarint(r.r)
	if err != nil {
		return nil, err
	}
	e := &Event{Kind: EventKind(kind)}
	rd := func() uint64 {
		if err != nil {
			return 0
		}
		var v uint64
		v, err = binary.ReadUvarint(r.r)
		return v
	}
	e.Cycle = event.Time(rd())
	e.Node = arch.NodeID(rd())
	switch e.Kind {
	case EvMiss:
		e.Line = arch.LineAddr(rd())
		e.PC = rd()
		e.MissKind = predictor.MissKind(rd())
		e.Provider = arch.NodeID(rd()) - 1
		e.Invalidated = arch.SetFromBits64(rd())
		e.Communicating = rd() != 0
	case EvSync:
		e.SyncKind = predictor.SyncKind(rd())
		e.StaticID = rd()
	default:
		return nil, fmt.Errorf("trace: bad event kind %d", kind)
	}
	if err != nil {
		if errors.Is(err, io.EOF) {
			return nil, errors.New("trace: truncated event")
		}
		return nil, err
	}
	return e, nil
}

// ReadAll decodes the entire stream.
func ReadAll(r io.Reader) ([]*Event, error) {
	tr := NewReader(r)
	var out []*Event
	for {
		e, err := tr.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, e)
	}
}

// Collector implements sim.Tracer, buffering events in memory (and
// optionally streaming them to a Writer).
type Collector struct {
	Events []*Event
	W      *Writer // optional
	err    error
}

// Miss implements sim.Tracer.
func (c *Collector) Miss(cycle event.Time, node arch.NodeID, line arch.LineAddr, pc uint64,
	kind predictor.MissKind, o predictor.Outcome) {
	e := &Event{Kind: EvMiss, Cycle: cycle, Node: node, Line: line, PC: pc,
		MissKind: kind, Provider: o.Provider, Invalidated: o.Invalidated,
		Communicating: o.Communicating}
	c.add(e)
}

// Sync implements sim.Tracer.
func (c *Collector) Sync(cycle event.Time, node arch.NodeID, kind predictor.SyncKind, staticID uint64) {
	c.add(&Event{Kind: EvSync, Cycle: cycle, Node: node, SyncKind: kind, StaticID: staticID})
}

func (c *Collector) add(e *Event) {
	c.Events = append(c.Events, e)
	if c.W != nil && c.err == nil {
		c.err = c.W.Write(e)
	}
}

// Err reports any streaming-write error.
func (c *Collector) Err() error { return c.err }
