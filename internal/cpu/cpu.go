// Package cpu models the processor cores: 2-issue in-order engines (paper
// Table 4) that execute workload op streams against a coherent memory port
// and a synchronization runtime, exposing each synchronization point to the
// hardware predictor as they cross it (paper §4.1).
package cpu

import (
	"fmt"

	"spcoh/internal/arch"
	"spcoh/internal/detutil"
	"spcoh/internal/event"
	"spcoh/internal/predictor"
	"spcoh/internal/workload"
)

// MemPort is the per-core view of the memory system (the tile's cache
// controller).
type MemPort interface {
	Access(pc uint64, addr arch.Addr, write bool, done func())
	OnSync(kind predictor.SyncKind, staticID uint64)
}

// FastPort extends MemPort with the fast-mode hit path (DESIGN.md §15):
// AccessFast resolves cache hits synchronously, returning the access latency
// for the core to accumulate on its own virtual clock; ok=false means the
// access misses and must be re-issued through Access.
type FastPort interface {
	MemPort
	AccessFast(pc uint64, addr arch.Addr, write bool) (lat event.Time, ok bool)
}

// SyncRuntime provides barrier and lock coordination between cores.
type SyncRuntime interface {
	Barrier(core int, id uint64, resume func())
	Lock(core int, id uint64, resume func())
	Unlock(core int, id uint64)
}

// Stats counts core activity.
type Stats struct {
	MemOps     uint64
	ComputeCyc uint64
	Barriers   uint64
	Locks      uint64
	FinishTime event.Time
}

// Core executes one thread's op stream.
type Core struct {
	ID         int
	IssueWidth int

	sim  *event.Sim
	port MemPort
	rt   SyncRuntime
	ops  []workload.Op
	ip   int

	finished bool
	onFinish func()
	stats    Stats

	// stepFn is the core's step bound once at construction: the execution
	// loop passes it as the completion callback of every memory access and
	// compute delay, instead of materializing a fresh method value (one
	// heap allocation) per op. EnableFast rebinds it to fastStep, so misses
	// and sync resumptions re-enter the batching loop.
	stepFn func()

	// fastPort is the port's fast hit path; non-nil only after EnableFast.
	fastPort FastPort

	// ln, when set (SetLane), is the core's scheduling lane: step events
	// are stamped with the core's node as owner, and coordinator calls and
	// the finish callback — which touch cross-core state — are routed
	// through Lane.Call so a parallel phase defers them to the cycle
	// barrier. Nil (the default) keeps the direct serial paths.
	ln *event.Lane

	// reqPool is the core-local freelist of staged coordinator calls. A
	// core can stage more than one in a single event (an unlock completion
	// immediately reaching the next sync op), so the records are pooled
	// rather than a single reusable carrier.
	reqPool []*syncReq
}

// New builds a core over its op stream. onFinish fires once at OpEnd.
func New(id int, sim *event.Sim, port MemPort, rt SyncRuntime, ops []workload.Op, issueWidth int, onFinish func()) *Core {
	if issueWidth < 1 {
		issueWidth = 1
	}
	c := &Core{ID: id, IssueWidth: issueWidth, sim: sim, port: port, rt: rt, ops: ops, onFinish: onFinish}
	c.stepFn = c.step
	return c
}

// Stats returns a snapshot of the core's counters.
func (c *Core) Stats() Stats { return c.stats }

// Finished reports whether the core reached OpEnd.
func (c *Core) Finished() bool { return c.finished }

// EnableFast switches the core to the fast-mode execution loop: runs of
// compute ops and cache hits are batched into a single event on the core's
// virtual clock instead of one event per op. The port must implement
// FastPort.
func (c *Core) EnableFast() {
	c.fastPort = c.port.(FastPort)
	c.stepFn = c.fastStep
}

// SetLane attaches the core's scheduling lane (sharded executor runs).
func (c *Core) SetLane(l *event.Lane) { c.ln = l }

// Start begins execution at the current simulator time.
func (c *Core) Start() { c.stepFn() }

// syncReq is the pooled binding of a staged coordinator call: the parallel
// phase may not touch the shared Coordinator, so sync ops are deferred to
// the cycle barrier through the core's lane.
//
//spcoh:pooled
type syncReq struct {
	c      *Core
	kind   workload.OpKind // OpBarrier, OpLock or OpUnlock
	id     uint64          // barrier static ID / lock line address
	resume func()          // nil for OpUnlock
}

func (c *Core) getSyncReq(kind workload.OpKind, id uint64, resume func()) *syncReq {
	if k := len(c.reqPool); k > 0 {
		r := c.reqPool[k-1]
		c.reqPool = c.reqPool[:k-1]
		r.kind, r.id, r.resume = kind, id, resume
		return r
	}
	return &syncReq{c: c, kind: kind, id: id, resume: resume}
}

//spcoh:noalloc
func fireSyncReq(a any) {
	r := a.(*syncReq)
	c, kind, id, resume := r.c, r.kind, r.id, r.resume
	r.resume = nil // release the closure before reuse
	c.reqPool = append(c.reqPool, r)
	switch kind {
	case workload.OpBarrier:
		c.rt.Barrier(c.ID, id, resume)
	case workload.OpLock:
		c.rt.Lock(c.ID, id, resume)
	default:
		c.rt.Unlock(c.ID, id)
	}
}

// coreStep is the pre-bound form of (*Core).step for event.AfterFn: the
// compute-op path schedules it with the core itself as argument,
// allocation-free.
//
//spcoh:noalloc
func coreStep(a any) { a.(*Core).step() }

// step executes the next op; every path reschedules asynchronously via the
// event queue or a completion callback, so there is no unbounded recursion.
func (c *Core) step() {
	if c.ip >= len(c.ops) {
		c.finish()
		return
	}
	op := c.ops[c.ip]
	c.ip++
	switch op.Kind {
	case workload.OpCompute:
		c.stats.ComputeCyc += uint64(op.N)
		d := event.Time(int(op.N) / c.IssueWidth)
		if d < 1 {
			d = 1
		}
		if c.ln != nil {
			c.ln.AfterFn(d, coreStep, c)
		} else {
			c.sim.AfterFn(d, coreStep, c)
		}

	case workload.OpRead, workload.OpWrite:
		c.stats.MemOps++
		c.port.Access(op.PC, op.Addr, op.Kind == workload.OpWrite, c.stepFn)

	case workload.OpBarrier:
		c.stats.Barriers++
		// Block until released; crossing the barrier is the sync-point
		// exposed to the predictor. Barrier arrival traffic itself is not
		// modeled: with the scaled-down epochs of the synthetic workloads
		// a single arrival write would be a far larger fraction of an
		// epoch's communication than in the paper's full-size runs (see
		// DESIGN.md §1).
		id := op.Sync
		c.rtCall(workload.OpBarrier, id, func() {
			c.port.OnSync(predictor.SyncBarrier, id)
			c.stepFn()
		})

	case workload.OpLock:
		c.stats.Locks++
		op := op
		// The runtime keys locks by their line address; the sync-point
		// static ID (op.Sync) is a separate notion exposed to predictors.
		c.rtCall(workload.OpLock, uint64(op.Addr), func() {
			// Acquired: expose the sync-point first (the SP-table update
			// happens "just after the lock is acquired", §4.3), then
			// perform the atomic RMW on the lock line — a migratory,
			// communicating miss coming from the previous holder.
			c.port.OnSync(predictor.SyncLock, op.Sync)
			c.port.Access(0, op.Addr, true, c.stepFn)
		})

	case workload.OpUnlock:
		op := op
		c.port.Access(0, op.Addr, true, func() {
			c.port.OnSync(predictor.SyncUnlock, op.Sync)
			// The release itself is a coordinator call; the core continues
			// regardless, so order only matters against the next staged
			// coordinator call — which lane staging preserves.
			c.rtCall(workload.OpUnlock, uint64(op.Addr), nil)
			c.stepFn()
		})

	case workload.OpEnd:
		c.finish()

	default:
		panic(fmt.Sprintf("cpu: core %d: bad op kind %v", c.ID, op.Kind))
	}
}

// rtCall routes one coordinator operation: direct without a lane, through
// the lane otherwise — immediate in serial operation, deferred to the
// cycle barrier during a parallel phase (the Coordinator's maps are shared
// across cores, i.e. across shards).
func (c *Core) rtCall(kind workload.OpKind, id uint64, resume func()) {
	if c.ln != nil {
		c.ln.Call(fireSyncReq, c.getSyncReq(kind, id, resume))
		return
	}
	switch kind {
	case workload.OpBarrier:
		c.rt.Barrier(c.ID, id, resume)
	case workload.OpLock:
		c.rt.Lock(c.ID, id, resume)
	default:
		c.rt.Unlock(c.ID, id)
	}
}

// coreFastStep is the pre-bound form of (*Core).fastStep for event.AtFn.
//
//spcoh:noalloc
func coreFastStep(a any) { a.(*Core).fastStep() }

// fastStep is the fast-mode execution loop: it walks consecutive compute
// ops and cache hits accumulating their latencies on a virtual clock (vt),
// then schedules a single engine event at the batch boundary. Misses, sync
// ops and OpEnd break the batch — they are issued through the detailed path
// at their exact virtual start time, so transaction ordering matches the
// op-level interleaving of the detailed model.
func (c *Core) fastStep() {
	now := c.sim.Now()
	vt := now
	for {
		if c.ip >= len(c.ops) {
			if vt > now {
				c.sim.AtFn(vt, coreFastStep, c)
				return
			}
			c.finish()
			return
		}
		op := c.ops[c.ip]
		switch op.Kind {
		case workload.OpCompute:
			c.ip++
			c.stats.ComputeCyc += uint64(op.N)
			d := event.Time(int(op.N) / c.IssueWidth)
			if d < 1 {
				d = 1
			}
			vt += d

		case workload.OpRead, workload.OpWrite:
			lat, ok := c.fastPort.AccessFast(op.PC, op.Addr, op.Kind == workload.OpWrite)
			if ok {
				c.ip++
				c.stats.MemOps++
				vt += lat
				continue
			}
			// Miss: re-run the access at its virtual start time (the probe
			// left the caches untouched), so the coherence transaction
			// issues exactly where the detailed model would issue it.
			if vt > now {
				c.sim.AtFn(vt, coreFastStep, c)
				return
			}
			c.ip++
			c.stats.MemOps++
			c.port.Access(op.PC, op.Addr, op.Kind == workload.OpWrite, c.stepFn)
			return

		default:
			// Sync ops and OpEnd: delegate to the detailed step at the
			// batch's virtual time. Their resume callbacks re-enter this
			// loop via stepFn.
			if vt > now {
				c.sim.AtFn(vt, coreFastStep, c)
				return
			}
			c.step()
			return
		}
	}
}

func (c *Core) finish() {
	if c.finished {
		return
	}
	c.finished = true
	c.stats.FinishTime = c.sim.Now()
	if c.onFinish != nil {
		if c.ln != nil {
			// The completion callback mutates run-level state (the finished
			// counter); defer it to the cycle barrier when sharded.
			c.ln.CallF(c.onFinish)
		} else {
			c.onFinish()
		}
	}
}

// Coordinator is the default SyncRuntime: sense-reversing barriers over all
// cores and FIFO locks.
type Coordinator struct {
	sim *event.Sim
	n   int

	barWaiting map[uint64][]waiter
	locks      map[uint64]*lockState

	// lanes, when set (SetLanes), stamp each grant with the granted core's
	// node as owner, so the resumption runs on that core's shard worker.
	lanes []*event.Lane
}

// waiter is one blocked core's resumption.
type waiter struct {
	core   int
	resume func()
}

type lockState struct {
	held  bool
	queue []waiter
}

// NewCoordinator builds a runtime for n cores.
func NewCoordinator(sim *event.Sim, n int) *Coordinator {
	return &Coordinator{sim: sim, n: n, barWaiting: make(map[uint64][]waiter), locks: make(map[uint64]*lockState)}
}

// SetLanes attaches the per-core scheduling lanes (sharded executor runs).
func (co *Coordinator) SetLanes(lanes []*event.Lane) { co.lanes = lanes }

// grant schedules a waiter's resumption on the next cycle, owned by the
// waiting core when lanes are attached.
func (co *Coordinator) grant(w waiter) {
	if co.lanes != nil {
		co.lanes[w.core].After(1, w.resume)
		return
	}
	co.sim.After(1, w.resume)
}

// Barrier implements SyncRuntime. All n cores must arrive; the last arrival
// releases everyone on the next cycle.
func (co *Coordinator) Barrier(core int, id uint64, resume func()) {
	w := append(co.barWaiting[id], waiter{core, resume})
	if len(w) == co.n {
		delete(co.barWaiting, id)
		for _, r := range w {
			co.grant(r)
		}
		return
	}
	co.barWaiting[id] = w
}

// Lock implements SyncRuntime (FIFO grant order).
func (co *Coordinator) Lock(core int, id uint64, resume func()) {
	st, ok := co.locks[id]
	if !ok {
		st = &lockState{}
		co.locks[id] = st
	}
	if !st.held {
		st.held = true
		co.grant(waiter{core, resume})
		return
	}
	st.queue = append(st.queue, waiter{core, resume})
}

// Unlock implements SyncRuntime.
func (co *Coordinator) Unlock(_ int, id uint64) {
	st := co.locks[id]
	if st == nil || !st.held {
		panic("cpu: unlock of a lock not held")
	}
	if len(st.queue) > 0 {
		next := st.queue[0]
		st.queue = st.queue[1:]
		co.grant(next)
		return
	}
	st.held = false
}

// Pending reports unreleased barriers and queued lock waiters (deadlock
// diagnosis).
func (co *Coordinator) Pending() string {
	s := ""
	for _, id := range detutil.SortedKeys(co.barWaiting) {
		s += fmt.Sprintf("barrier %d: %d/%d arrived; ", id, len(co.barWaiting[id]), co.n)
	}
	for _, id := range detutil.SortedKeys(co.locks) {
		if st := co.locks[id]; len(st.queue) > 0 {
			s += fmt.Sprintf("lock %d: %d queued; ", id, len(st.queue))
		}
	}
	return s
}
