package cpu

import (
	"testing"

	"spcoh/internal/arch"
	"spcoh/internal/event"
	"spcoh/internal/predictor"
	"spcoh/internal/workload"
)

// memStub is a MemPort with fixed access latency that records activity.
type memStub struct {
	sim      *event.Sim
	lat      event.Time
	accesses []arch.Addr
	writes   int
	syncs    []predictor.SyncKind
}

func (m *memStub) Access(pc uint64, addr arch.Addr, write bool, done func()) {
	m.accesses = append(m.accesses, addr)
	if write {
		m.writes++
	}
	m.sim.After(m.lat, done)
}

func (m *memStub) OnSync(kind predictor.SyncKind, staticID uint64) {
	m.syncs = append(m.syncs, kind)
}

func runOps(t *testing.T, nCores int, opsFor func(tid int) []workload.Op) ([]*Core, []*memStub, *event.Sim) {
	t.Helper()
	sim := event.New()
	co := NewCoordinator(sim, nCores)
	cores := make([]*Core, nCores)
	stubs := make([]*memStub, nCores)
	finished := 0
	for i := 0; i < nCores; i++ {
		stubs[i] = &memStub{sim: sim, lat: 10}
		cores[i] = New(i, sim, stubs[i], co, opsFor(i), 2, func() { finished++ })
		cores[i].Start()
	}
	sim.Run()
	if finished != nCores {
		t.Fatalf("%d/%d cores finished: %s", finished, nCores, co.Pending())
	}
	return cores, stubs, sim
}

func TestComputeTiming(t *testing.T) {
	_, _, sim := runOps(t, 1, func(int) []workload.Op {
		return []workload.Op{{Kind: workload.OpCompute, N: 100}, {Kind: workload.OpEnd}}
	})
	// 2-issue: 100 cycles of work retire in 50.
	if sim.Now() != 50 {
		t.Fatalf("compute finished at %d, want 50", sim.Now())
	}
}

func TestMemoryOpsInOrder(t *testing.T) {
	cores, stubs, sim := runOps(t, 1, func(int) []workload.Op {
		return []workload.Op{
			{Kind: workload.OpRead, Addr: 0x100},
			{Kind: workload.OpWrite, Addr: 0x200},
			{Kind: workload.OpRead, Addr: 0x300},
			{Kind: workload.OpEnd},
		}
	})
	if len(stubs[0].accesses) != 3 || stubs[0].writes != 1 {
		t.Fatalf("accesses = %v writes=%d", stubs[0].accesses, stubs[0].writes)
	}
	// Serial: 3 x 10 cycles.
	if sim.Now() != 30 {
		t.Fatalf("finished at %d, want 30", sim.Now())
	}
	if cores[0].Stats().MemOps != 3 {
		t.Fatalf("memops = %d", cores[0].Stats().MemOps)
	}
}

func TestBarrierBlocksUntilAllArrive(t *testing.T) {
	// Core 1 computes for 1000 cycles before the barrier; core 0 must wait.
	cores, stubs, _ := runOps(t, 2, func(tid int) []workload.Op {
		var ops []workload.Op
		if tid == 1 {
			ops = append(ops, workload.Op{Kind: workload.OpCompute, N: 2000})
		}
		ops = append(ops,
			workload.Op{Kind: workload.OpBarrier, Sync: 7},
			workload.Op{Kind: workload.OpEnd})
		return ops
	})
	if cores[0].Stats().FinishTime < 1000 {
		t.Fatalf("core 0 finished at %d, should wait for core 1", cores[0].Stats().FinishTime)
	}
	for i := range stubs {
		if len(stubs[i].syncs) != 1 || stubs[i].syncs[0] != predictor.SyncBarrier {
			t.Fatalf("core %d syncs = %v", i, stubs[i].syncs)
		}
	}
}

func TestLockMutualExclusionFIFO(t *testing.T) {
	// All cores contend for one lock; the lock body writes the lock line.
	cores, stubs, _ := runOps(t, 4, func(tid int) []workload.Op {
		return []workload.Op{
			{Kind: workload.OpLock, Sync: 0xAA, Addr: arch.Addr(0xAA << 6)},
			{Kind: workload.OpCompute, N: 100},
			{Kind: workload.OpUnlock, Sync: 0xAB, Addr: arch.Addr(0xAA << 6)},
			{Kind: workload.OpEnd},
		}
	})
	// Finish times must be strictly staggered (serialized critical sections).
	times := make([]event.Time, 4)
	for i, c := range cores {
		times[i] = c.Stats().FinishTime
	}
	distinct := map[event.Time]bool{}
	for _, ft := range times {
		distinct[ft] = true
	}
	if len(distinct) != 4 {
		t.Fatalf("critical sections not serialized: %v", times)
	}
	// Sync exposure order per core: lock then unlock.
	for i := range stubs {
		if len(stubs[i].syncs) != 2 || stubs[i].syncs[0] != predictor.SyncLock ||
			stubs[i].syncs[1] != predictor.SyncUnlock {
			t.Fatalf("core %d syncs = %v", i, stubs[i].syncs)
		}
		// Lock acquisition + release each write the lock line.
		if stubs[i].writes != 2 {
			t.Fatalf("core %d lock-line writes = %d", i, stubs[i].writes)
		}
	}
}

func TestLockSyncBeforeLockLineAccess(t *testing.T) {
	// §4.3: the SP-table update (OnSync) happens just after acquisition,
	// before the lock-line RMW, so the lock-line miss belongs to the
	// critical-section epoch.
	sim := event.New()
	co := NewCoordinator(sim, 1)
	stub := &memStub{sim: sim, lat: 5}
	order := []string{}
	wrap := &orderPort{inner: stub, order: &order}
	c := New(0, sim, wrap, co, []workload.Op{
		{Kind: workload.OpLock, Sync: 1, Addr: 0x40},
		{Kind: workload.OpUnlock, Sync: 2, Addr: 0x40},
		{Kind: workload.OpEnd},
	}, 2, nil)
	c.Start()
	sim.Run()
	want := []string{"sync:lock", "access", "access", "sync:unlock"}
	if len(order) != 4 {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

type orderPort struct {
	inner *memStub
	order *[]string
}

func (p *orderPort) Access(pc uint64, addr arch.Addr, write bool, done func()) {
	*p.order = append(*p.order, "access")
	p.inner.Access(pc, addr, write, done)
}

func (p *orderPort) OnSync(kind predictor.SyncKind, staticID uint64) {
	*p.order = append(*p.order, "sync:"+kind.String())
	p.inner.OnSync(kind, staticID)
}

func TestUnlockWithoutLockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	sim := event.New()
	co := NewCoordinator(sim, 1)
	co.Unlock(0, 99)
}

func TestCoordinatorPendingDiagnostics(t *testing.T) {
	sim := event.New()
	co := NewCoordinator(sim, 3)
	co.Barrier(0, 5, func() {})
	if co.Pending() == "" {
		t.Fatal("pending barrier should be reported")
	}
	co.Lock(0, 9, func() {})
	co.Lock(1, 9, func() {})
	sim.Run()
	if co.Pending() == "" {
		t.Fatal("queued lock waiter should be reported")
	}
}
