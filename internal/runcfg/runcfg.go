// Package runcfg holds the one run-sizing configuration shared by every
// layer that names a simulation cell: the experiments runner, the sweep
// matrix and the CLIs. It exists to end the triplicated plumbing where
// sim.Options, experiments.Config and sweep.Job each declared their own
// threads/scale/seed/metrics-epoch fields and hand-copied between them —
// now the one struct flows through, converted only at the sim.Options
// edge (whose MetricsEpoch is an event.Time, not a uint64).
//
// The JSON field names and order are load-bearing: sweep.Job embeds
// RunConfig and hashes its canonical JSON as the artifact address, so
// renaming or reordering fields would orphan every previously-recorded
// sweep artifact. Append new fields with omitempty; never reorder.
package runcfg

import "fmt"

// RunConfig sizes one simulation run.
type RunConfig struct {
	// Threads is the workload thread count (= the machine's node count).
	Threads int `json:"threads"`
	// Scale multiplies each workload's base iteration count.
	Scale float64 `json:"scale"`
	// Seed is the workload build seed.
	Seed int64 `json:"seed"`

	// MetricsEpoch, when non-zero, enables the run-time metrics collector
	// with this sampling epoch (cycles); the sim.Result then carries a
	// phase-resolved time-series. omitempty keeps canonical encodings of
	// metrics-free configs identical to pre-metrics recordings.
	MetricsEpoch uint64 `json:"metrics_epoch,omitempty"`

	// Mode selects the simulation fidelity: "" or "detailed" for the
	// cycle-level model, "fast" for the fast functional model (DESIGN.md
	// §15). omitempty keeps canonical encodings of detailed configs — and
	// therefore every previously-recorded sweep artifact address —
	// unchanged; only fast cells encode the field.
	Mode string `json:"mode,omitempty"`

	// Shards selects the intra-run sharded executor (DESIGN.md §16);
	// 0 and 1 mean serial. Results are byte-identical for every value, so
	// the field is an engine knob, not part of the cell's identity — it is
	// excluded from JSON so artifact addresses and digests never depend on
	// how a cell was executed.
	Shards int `json:"-"`
}

// FastMode reports whether the configuration selects the fast functional
// model.
func (c RunConfig) FastMode() bool { return c.Mode == "fast" }

// Validate rejects configurations no layer can run.
func (c RunConfig) Validate() error {
	if c.Threads < 1 {
		return fmt.Errorf("runcfg: threads %d < 1", c.Threads)
	}
	if c.Scale <= 0 {
		return fmt.Errorf("runcfg: scale %g <= 0", c.Scale)
	}
	switch c.Mode {
	case "", "detailed", "fast":
	default:
		return fmt.Errorf("runcfg: unknown mode %q (want detailed or fast)", c.Mode)
	}
	if c.Shards < 0 {
		return fmt.Errorf("runcfg: shards %d < 0", c.Shards)
	}
	return nil
}
