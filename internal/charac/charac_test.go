package charac

import (
	"testing"

	"spcoh/internal/arch"
	"spcoh/internal/predictor"
	"spcoh/internal/trace"
)

func sync(node arch.NodeID, kind predictor.SyncKind, id uint64) *trace.Event {
	return &trace.Event{Kind: trace.EvSync, Node: node, SyncKind: kind, StaticID: id}
}

func miss(node, prov arch.NodeID, pc uint64, comm bool) *trace.Event {
	return &trace.Event{Kind: trace.EvMiss, Node: node, PC: pc, Provider: prov,
		Communicating: comm}
}

func TestSegmentation(t *testing.T) {
	events := []*trace.Event{
		sync(0, predictor.SyncBarrier, 1),
		miss(0, 2, 0x400, true),
		miss(0, 2, 0x400, true),
		sync(0, predictor.SyncBarrier, 2),
		miss(0, 3, 0x404, true),
		sync(0, predictor.SyncBarrier, 1), // second instance of epoch 1
		miss(0, 2, 0x400, true),
	}
	a := Analyze(events, 4)
	if len(a.Epochs) != 3 {
		t.Fatalf("epochs = %d", len(a.Epochs))
	}
	insts := a.InstancesOf(0, 1)
	if len(insts) != 2 || insts[0].Instance != 0 || insts[1].Instance != 1 {
		t.Fatalf("instances: %+v", insts)
	}
	if insts[0].Comm != 2 || insts[1].Comm != 1 {
		t.Fatalf("comm counts: %d %d", insts[0].Comm, insts[1].Comm)
	}
	if got := insts[0].HotSet(0.1); got != arch.SetOf(2) {
		t.Fatalf("hot set = %v", got)
	}
	if a.CommRatio() != 1.0 {
		t.Fatalf("comm ratio = %v", a.CommRatio())
	}
	cs, se, dyn := a.EpochStats()
	if cs != 0 || se != 2 || dyn != 3.0/4 {
		t.Fatalf("stats = %d %d %v", cs, se, dyn)
	}
}

func TestMissesBeforeFirstSync(t *testing.T) {
	events := []*trace.Event{
		miss(0, 1, 0x1, true), // before any sync-point: whole-run only
		sync(0, predictor.SyncBarrier, 1),
		miss(0, 2, 0x2, true),
	}
	a := Analyze(events, 4)
	if len(a.Epochs) != 1 || a.Epochs[0].Misses != 1 {
		t.Fatalf("epochs: %+v", a.Epochs)
	}
	if a.WholeDist[0].Total() != 2 {
		t.Fatalf("whole dist total = %d", a.WholeDist[0].Total())
	}
}

func TestCoverageGranularities(t *testing.T) {
	// Node 0 talks to 1 in epoch A and to 2 in epoch B: epoch-granularity
	// coverage at k=1 is 1.0, whole-run coverage at k=1 is 0.5.
	var events []*trace.Event
	events = append(events, sync(0, predictor.SyncBarrier, 1))
	for i := 0; i < 10; i++ {
		events = append(events, miss(0, 1, 0x10, true))
	}
	events = append(events, sync(0, predictor.SyncBarrier, 2))
	for i := 0; i < 10; i++ {
		events = append(events, miss(0, 2, 0x20, true))
	}
	a := Analyze(events, 4)
	epochCov := a.CoverageByEpoch()
	wholeCov := a.CoverageWhole()
	pcCov := a.CoverageByPC()
	if epochCov[0] != 1.0 {
		t.Fatalf("epoch coverage = %v", epochCov)
	}
	if wholeCov[0] != 0.5 || wholeCov[1] != 1.0 {
		t.Fatalf("whole coverage = %v", wholeCov)
	}
	if pcCov[0] != 1.0 { // each PC has a single target here
		t.Fatalf("pc coverage = %v", pcCov)
	}
}

func TestHotSetSizes(t *testing.T) {
	var events []*trace.Event
	events = append(events, sync(0, predictor.SyncBarrier, 1))
	for i := 0; i < 5; i++ {
		events = append(events, miss(0, 1, 0, true))
		events = append(events, miss(0, 2, 0, true))
	}
	events = append(events, sync(0, predictor.SyncBarrier, 2)) // closes; opens quiet epoch
	a := Analyze(events, 4)
	h := a.HotSetSizes(0.10)
	if h.Total != 1 || h.Buckets[2] != 1 {
		t.Fatalf("hist = %+v", h)
	}
}

func TestLockEpochsCounted(t *testing.T) {
	events := []*trace.Event{
		sync(0, predictor.SyncLock, 0xBEEF),
		miss(0, 1, 0, true),
		sync(0, predictor.SyncUnlock, 0xBEF0),
	}
	a := Analyze(events, 4)
	cs, _, _ := a.EpochStats()
	if cs != 1 {
		t.Fatalf("static CS = %d", cs)
	}
	if len(a.Epochs) != 2 {
		t.Fatalf("epochs = %d", len(a.Epochs))
	}
	if a.Epochs[0].Kind != predictor.SyncLock {
		t.Fatalf("kind = %v", a.Epochs[0].Kind)
	}
}

func TestClassifyPattern(t *testing.T) {
	a1, b1, c1 := arch.SetOf(1), arch.SetOf(2), arch.SetOf(3)
	cases := []struct {
		sets   []arch.SharerSet
		class  PatternClass
		stride int
	}{
		{nil, PatternEmpty, 0},
		{[]arch.SharerSet{arch.EmptySet, arch.EmptySet}, PatternEmpty, 0},
		{[]arch.SharerSet{a1}, PatternStable, 0},
		{[]arch.SharerSet{a1, a1, a1, a1}, PatternStable, 1},
		{[]arch.SharerSet{a1, b1, a1, b1, a1, b1}, PatternStride, 2},
		{[]arch.SharerSet{a1, b1, c1, a1, b1, c1, a1}, PatternStride, 3},
		{[]arch.SharerSet{a1.Add(2), a1.Add(3), a1.Add(5), a1.Add(7)}, PatternMixed, 0},
		{[]arch.SharerSet{a1, b1, c1, arch.SetOf(5), arch.SetOf(7), arch.SetOf(9), b1}, PatternRandom, 0},
	}
	for i, c := range cases {
		class, stride := ClassifyPattern(c.sets)
		if class != c.class {
			t.Errorf("case %d: class = %v, want %v", i, class, c.class)
		}
		if c.class == PatternStride && stride != c.stride {
			t.Errorf("case %d: stride = %d, want %d", i, stride, c.stride)
		}
	}
	for _, p := range []PatternClass{PatternEmpty, PatternStable, PatternStride, PatternMixed, PatternRandom} {
		if p.String() == "?" {
			t.Errorf("missing name for %d", p)
		}
	}
}

func TestEpochsOfOrder(t *testing.T) {
	events := []*trace.Event{
		sync(1, predictor.SyncBarrier, 1),
		sync(1, predictor.SyncBarrier, 2),
		sync(1, predictor.SyncBarrier, 1),
	}
	a := Analyze(events, 4)
	eps := a.EpochsOf(1)
	if len(eps) != 3 || eps[0].StaticID != 1 || eps[1].StaticID != 2 || eps[2].StaticID != 1 {
		t.Fatalf("order wrong: %+v", eps)
	}
	if got := a.StaticEpochIDs(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("static ids = %v", got)
	}
}
