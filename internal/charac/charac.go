// Package charac implements the paper's §3 communication characterization:
// segmenting execution into sync-epochs, measuring per-interval
// communication distributions and locality (Figures 2 and 4), hot
// communication set sizes (Figure 5), dynamic-instance patterns (Figure 6)
// and sync-epoch statistics (Table 1), all from an L2-miss/sync trace.
package charac

import (
	"sort"

	"spcoh/internal/arch"
	"spcoh/internal/detutil"
	"spcoh/internal/predictor"
	"spcoh/internal/stats"
	"spcoh/internal/trace"
)

// Epoch is one dynamic sync-epoch instance at one node: the interval
// between two consecutive sync-points (§3.1).
type Epoch struct {
	Node     arch.NodeID
	Kind     predictor.SyncKind
	StaticID uint64
	Instance int // dynamic instance index of this (node, static) epoch

	Dist   stats.Distribution // communication volume per target
	Misses int                // all misses in the interval
	Comm   int                // communicating misses
}

// HotSet returns the epoch's hot communication set at the given threshold.
func (e *Epoch) HotSet(threshold float64) arch.SharerSet {
	var s arch.SharerSet
	for _, i := range e.Dist.HotSet(threshold) {
		s = s.Add(arch.NodeID(i))
	}
	return s
}

// Analysis is the digested trace.
type Analysis struct {
	Nodes  int
	Epochs []*Epoch

	// WholeDist is the per-node whole-execution communication
	// distribution (Figure 2a granularity).
	WholeDist []stats.Distribution

	// PCDist groups communication by static instruction (Figure 4's
	// instruction-granularity curve).
	PCDist map[arch.NodeID]map[uint64]stats.Distribution

	TotalMisses uint64
	CommMisses  uint64

	// Static structure observed.
	staticBarrier map[uint64]bool
	staticLock    map[uint64]bool
}

// Analyze segments a trace into epochs and accumulates distributions.
func Analyze(events []*trace.Event, nodes int) *Analysis {
	a := &Analysis{
		Nodes:         nodes,
		WholeDist:     make([]stats.Distribution, nodes),
		PCDist:        make(map[arch.NodeID]map[uint64]stats.Distribution),
		staticBarrier: make(map[uint64]bool),
		staticLock:    make(map[uint64]bool),
	}
	for i := range a.WholeDist {
		a.WholeDist[i] = stats.NewDistribution(nodes)
	}
	cur := make([]*Epoch, nodes)         // open epoch per node
	instances := make(map[[2]uint64]int) // (node, static) -> next instance

	for _, e := range events {
		switch e.Kind {
		case trace.EvSync:
			if int(e.Node) >= nodes {
				continue
			}
			switch e.SyncKind {
			case predictor.SyncLock:
				a.staticLock[e.StaticID] = true
			case predictor.SyncBarrier, predictor.SyncJoin, predictor.SyncWakeup, predictor.SyncBroadcast:
				a.staticBarrier[e.StaticID] = true
			case predictor.SyncUnlock:
				// A release classifies nothing: the matching SyncLock
				// already marked this static ID as lock-kind.
			}
			key := [2]uint64{uint64(e.Node), e.StaticID}
			inst := instances[key]
			instances[key] = inst + 1
			cur[e.Node] = &Epoch{
				Node: e.Node, Kind: e.SyncKind, StaticID: e.StaticID,
				Instance: inst, Dist: stats.NewDistribution(nodes),
			}
			a.Epochs = append(a.Epochs, cur[e.Node])
		case trace.EvMiss:
			if int(e.Node) >= nodes {
				continue
			}
			a.TotalMisses++
			targets := e.Targets().Remove(e.Node)
			if e.Communicating {
				a.CommMisses++
			}
			if ep := cur[e.Node]; ep != nil {
				ep.Misses++
				if e.Communicating {
					ep.Comm++
				}
			}
			if targets.Empty() {
				continue
			}
			targets.ForEach(func(t arch.NodeID) {
				a.WholeDist[e.Node].Add(int(t), 1)
				if ep := cur[e.Node]; ep != nil {
					ep.Dist.Add(int(t), 1)
				}
				byPC := a.PCDist[e.Node]
				if byPC == nil {
					byPC = make(map[uint64]stats.Distribution)
					a.PCDist[e.Node] = byPC
				}
				d := byPC[e.PC]
				if d == nil {
					d = stats.NewDistribution(nodes)
					byPC[e.PC] = d
				}
				d.Add(int(t), 1)
			})
		}
	}
	return a
}

// CommRatio returns the fraction of communicating misses (Figure 1).
func (a *Analysis) CommRatio() float64 {
	if a.TotalMisses == 0 {
		return 0
	}
	return float64(a.CommMisses) / float64(a.TotalMisses)
}

// weightedCoverage averages cumulative coverage curves weighted by volume.
func (a *Analysis) weightedCoverage(dists []stats.Distribution) []float64 {
	out := make([]float64, a.Nodes)
	var wsum float64
	for _, d := range dists {
		v := float64(d.Total())
		if v == 0 {
			continue
		}
		cov := d.Coverage()
		for i := range out {
			out[i] += v * cov[i]
		}
		wsum += v
	}
	if wsum > 0 {
		for i := range out {
			out[i] /= wsum
		}
	}
	return out
}

// CoverageByEpoch returns the average cumulative communication coverage at
// sync-epoch granularity: element k-1 is the average fraction of an
// epoch's communication covered by its k hottest targets (Figure 4,
// "sync-epoch" curve).
func (a *Analysis) CoverageByEpoch() []float64 {
	dists := make([]stats.Distribution, 0, len(a.Epochs))
	for _, e := range a.Epochs {
		dists = append(dists, e.Dist)
	}
	return a.weightedCoverage(dists)
}

// CoverageWhole returns coverage at whole-execution granularity
// (Figure 4, "single-interval" curve).
func (a *Analysis) CoverageWhole() []float64 {
	return a.weightedCoverage(a.WholeDist)
}

// CoverageByPC returns coverage at static-instruction granularity
// (Figure 4, "static instruction" curve).
func (a *Analysis) CoverageByPC() []float64 {
	var dists []stats.Distribution
	for _, node := range detutil.SortedKeys(a.PCDist) {
		byPC := a.PCDist[node]
		for _, pc := range detutil.SortedKeys(byPC) {
			dists = append(dists, byPC[pc])
		}
	}
	return a.weightedCoverage(dists)
}

// HotSetSizes returns the distribution of epochs over hot-set sizes
// 1,2,3,4,>=5 at the given threshold (Figure 5). Epochs without
// communication are skipped, as in the paper's noisy-instance treatment.
func (a *Analysis) HotSetSizes(threshold float64) *stats.Histogram {
	h := stats.NewHistogram(5)
	for _, e := range a.Epochs {
		if e.Dist.Total() == 0 {
			continue
		}
		n := e.HotSet(threshold).Count()
		if n == 0 {
			continue
		}
		h.Add(n)
	}
	return h
}

// EpochStats reports the Table 1 quantities: static critical sections,
// static sync-epochs (barrier-class sync-points), and dynamic epochs per
// core.
func (a *Analysis) EpochStats() (staticCS, staticEpochs int, dynPerCore float64) {
	if a.Nodes > 0 {
		dynPerCore = float64(len(a.Epochs)) / float64(a.Nodes)
	}
	return len(a.staticLock), len(a.staticBarrier), dynPerCore
}

// InstancesOf returns the dynamic instances of one static epoch at one
// node, ordered by instance (Figures 2c and 6 raw material).
func (a *Analysis) InstancesOf(node arch.NodeID, staticID uint64) []*Epoch {
	var out []*Epoch
	for _, e := range a.Epochs {
		if e.Node == node && e.StaticID == staticID {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Instance < out[j].Instance })
	return out
}

// EpochsOf returns all epochs of one node in execution order (Figure 2b).
func (a *Analysis) EpochsOf(node arch.NodeID) []*Epoch {
	var out []*Epoch
	for _, e := range a.Epochs {
		if e.Node == node {
			out = append(out, e)
		}
	}
	return out
}

// StaticEpochIDs returns the distinct barrier-class static IDs observed,
// in ascending order.
func (a *Analysis) StaticEpochIDs() []uint64 {
	return detutil.SortedKeys(a.staticBarrier)
}

// PatternClass classifies how a static epoch's hot set evolves across its
// dynamic instances (§3.4, Figure 6).
type PatternClass int

const (
	PatternEmpty PatternClass = iota
	PatternStable
	PatternStride
	PatternMixed
	PatternRandom
)

// String names the class as in Figure 6.
func (p PatternClass) String() string {
	switch p {
	case PatternEmpty:
		return "empty"
	case PatternStable:
		return "stable"
	case PatternStride:
		return "repetitive"
	case PatternMixed:
		return "mixed"
	case PatternRandom:
		return "random"
	default:
		return "?"
	}
}

// ClassifyPattern inspects a sequence of hot communication sets. It
// returns the class and, for repetitive patterns, the stride.
func ClassifyPattern(sets []arch.SharerSet) (PatternClass, int) {
	var nonEmpty []arch.SharerSet
	for _, s := range sets {
		if !s.Empty() {
			nonEmpty = append(nonEmpty, s)
		}
	}
	if len(nonEmpty) == 0 {
		return PatternEmpty, 0
	}
	if len(nonEmpty) == 1 {
		return PatternStable, 0
	}
	match := func(stride int) float64 {
		hits, total := 0, 0
		for i := stride; i < len(nonEmpty); i++ {
			total++
			if nonEmpty[i] == nonEmpty[i-stride] {
				hits++
			}
		}
		if total == 0 {
			return 0
		}
		return float64(hits) / float64(total)
	}
	if match(1) >= 0.8 {
		return PatternStable, 1
	}
	for stride := 2; stride <= 4 && stride < len(nonEmpty); stride++ {
		if match(stride) >= 0.8 {
			return PatternStride, stride
		}
	}
	// Mixed: a stable core intersection with varying extras.
	inter := nonEmpty[0]
	for _, s := range nonEmpty[1:] {
		inter = inter.Intersect(s)
	}
	if !inter.Empty() {
		return PatternMixed, 0
	}
	return PatternRandom, 0
}
