// Package arch defines the basic architectural vocabulary shared by every
// subsystem of the simulator: physical addresses, node identifiers, and
// sharer sets (bit vectors of processor cores).
//
// The package is deliberately tiny and dependency-free; it sits at the bottom
// of the import graph.
package arch

import (
	"fmt"
	"math/bits"
	"strings"
)

// Addr is a physical byte address.
type Addr uint64

// LineAddr is a cache-line-aligned address (Addr with the offset bits
// stripped). All coherence state is keyed by LineAddr.
type LineAddr uint64

// NodeID identifies a tile (core + private caches + directory slice) in the
// CMP. NodeIDs are dense in [0, NumNodes).
type NodeID int

// None is the NodeID used where "no node" is meant (e.g. no owner).
const None NodeID = -1

// LineSize is the coherence granularity in bytes. The paper's configuration
// (Table 4) uses 64-byte lines throughout; the simulator assumes this
// constant globally because the directory interleaving and the predictors'
// macroblock indexing both derive from it.
const LineSize = 64

// LineShift is log2(LineSize).
const LineShift = 6

// Line returns the cache line containing a.
func (a Addr) Line() LineAddr { return LineAddr(a >> LineShift) }

// Base returns the first byte address of the line.
func (l LineAddr) Base() Addr { return Addr(l) << LineShift }

// MaxNodes is the largest machine a SharerSet can describe. 256 covers the
// 16x16 mesh; widening further means growing setWords.
const MaxNodes = 256

// setWords is the number of 64-bit words backing a SharerSet.
const setWords = MaxNodes / 64

// SharerSet is a bit vector over NodeIDs: bit i set means node i is a member.
// It is the universal currency of destination-set prediction — communication
// signatures, predicted sets, directory sharer lists and invalidation targets
// are all SharerSets. It is a comparable value type: == compares membership,
// and it can key maps.
type SharerSet struct {
	w [setWords]uint64
}

// EmptySet is the SharerSet with no members (also the zero value).
var EmptySet SharerSet

// SetOf builds a SharerSet from a list of nodes.
func SetOf(nodes ...NodeID) SharerSet {
	var s SharerSet
	for _, n := range nodes {
		s = s.Add(n)
	}
	return s
}

// FullSet returns the set containing nodes [0, n).
func FullSet(n int) SharerSet {
	var s SharerSet
	if n >= MaxNodes {
		for i := range s.w {
			s.w[i] = ^uint64(0)
		}
		return s
	}
	for i := 0; i < n>>6; i++ {
		s.w[i] = ^uint64(0)
	}
	if r := uint(n & 63); r != 0 {
		s.w[n>>6] = uint64(1)<<r - 1
	}
	return s
}

// SetFromBits64 builds a set from a 64-bit mask over nodes [0, 64). It is
// the inverse of Bits64 and exists for the binary trace format, which
// predates the widening past 64 nodes and stores one word.
func SetFromBits64(mask uint64) SharerSet {
	var s SharerSet
	s.w[0] = mask
	return s
}

// Bits64 returns the membership mask of nodes [0, 64). Members beyond node
// 63 are not representable and are dropped; the binary trace format (the
// only caller) captures 16-node runs.
func (s SharerSet) Bits64() uint64 { return s.w[0] }

// Add returns s with node n added (out-of-range n is ignored).
func (s SharerSet) Add(n NodeID) SharerSet {
	if n < 0 || n >= MaxNodes {
		return s
	}
	s.w[n>>6] |= 1 << uint(n&63)
	return s
}

// Remove returns s with node n removed.
func (s SharerSet) Remove(n NodeID) SharerSet {
	if n < 0 || n >= MaxNodes {
		return s
	}
	s.w[n>>6] &^= 1 << uint(n&63)
	return s
}

// Contains reports whether node n is a member of s.
func (s SharerSet) Contains(n NodeID) bool {
	return n >= 0 && n < MaxNodes && s.w[n>>6]&(1<<uint(n&63)) != 0
}

// Count returns the number of members.
func (s SharerSet) Count() int {
	c := 0
	for _, w := range s.w {
		c += bits.OnesCount64(w)
	}
	return c
}

// Empty reports whether s has no members.
func (s SharerSet) Empty() bool {
	var or uint64
	for _, w := range s.w {
		or |= w
	}
	return or == 0
}

// Union returns s ∪ t.
func (s SharerSet) Union(t SharerSet) SharerSet {
	for i := range s.w {
		s.w[i] |= t.w[i]
	}
	return s
}

// Intersect returns s ∩ t.
func (s SharerSet) Intersect(t SharerSet) SharerSet {
	for i := range s.w {
		s.w[i] &= t.w[i]
	}
	return s
}

// Minus returns s \ t.
func (s SharerSet) Minus(t SharerSet) SharerSet {
	for i := range s.w {
		s.w[i] &^= t.w[i]
	}
	return s
}

// Superset reports whether s ⊇ t.
func (s SharerSet) Superset(t SharerSet) bool {
	var rem uint64
	for i := range s.w {
		rem |= t.w[i] &^ s.w[i]
	}
	return rem == 0
}

// First returns the lowest-numbered member, or None if the set is empty.
func (s SharerSet) First() NodeID {
	for i, w := range s.w {
		if w != 0 {
			return NodeID(i<<6 + bits.TrailingZeros64(w))
		}
	}
	return None
}

// Nodes returns the members in ascending order.
func (s SharerSet) Nodes() []NodeID {
	out := make([]NodeID, 0, s.Count())
	s.ForEach(func(n NodeID) { out = append(out, n) })
	return out
}

// ForEach calls fn for every member in ascending order.
func (s SharerSet) ForEach(fn func(NodeID)) {
	for i, w := range s.w {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(NodeID(i<<6 + b))
			w &^= 1 << uint(b)
		}
	}
}

// String renders the set as e.g. "{0,3,5}".
func (s SharerSet) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(n NodeID) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&b, "%d", n)
	})
	b.WriteByte('}')
	return b.String()
}

// BitString renders the set as a fixed-width bit vector, LSB (node 0) first,
// matching the paper's Figure 6 presentation.
func (s SharerSet) BitString(n int) string {
	b := make([]byte, n)
	for i := 0; i < n; i++ {
		if s.Contains(NodeID(i)) {
			b[i] = '1'
		} else {
			b[i] = '0'
		}
	}
	return string(b)
}
