// Package arch defines the basic architectural vocabulary shared by every
// subsystem of the simulator: physical addresses, node identifiers, and
// sharer sets (bit vectors of processor cores).
//
// The package is deliberately tiny and dependency-free; it sits at the bottom
// of the import graph.
package arch

import (
	"fmt"
	"math/bits"
	"strings"
)

// Addr is a physical byte address.
type Addr uint64

// LineAddr is a cache-line-aligned address (Addr with the offset bits
// stripped). All coherence state is keyed by LineAddr.
type LineAddr uint64

// NodeID identifies a tile (core + private caches + directory slice) in the
// CMP. NodeIDs are dense in [0, NumNodes).
type NodeID int

// None is the NodeID used where "no node" is meant (e.g. no owner).
const None NodeID = -1

// LineSize is the coherence granularity in bytes. The paper's configuration
// (Table 4) uses 64-byte lines throughout; the simulator assumes this
// constant globally because the directory interleaving and the predictors'
// macroblock indexing both derive from it.
const LineSize = 64

// LineShift is log2(LineSize).
const LineShift = 6

// Line returns the cache line containing a.
func (a Addr) Line() LineAddr { return LineAddr(a >> LineShift) }

// Base returns the first byte address of the line.
func (l LineAddr) Base() Addr { return Addr(l) << LineShift }

// MaxNodes is the largest machine a SharerSet can describe.
const MaxNodes = 64

// SharerSet is a bit vector over NodeIDs: bit i set means node i is a member.
// It is the universal currency of destination-set prediction — communication
// signatures, predicted sets, directory sharer lists and invalidation targets
// are all SharerSets.
type SharerSet uint64

// EmptySet is the SharerSet with no members.
const EmptySet SharerSet = 0

// SetOf builds a SharerSet from a list of nodes.
func SetOf(nodes ...NodeID) SharerSet {
	var s SharerSet
	for _, n := range nodes {
		s = s.Add(n)
	}
	return s
}

// FullSet returns the set containing nodes [0, n).
func FullSet(n int) SharerSet {
	if n >= MaxNodes {
		return ^SharerSet(0)
	}
	return SharerSet(1)<<uint(n) - 1
}

// Add returns s with node n added.
func (s SharerSet) Add(n NodeID) SharerSet { return s | 1<<uint(n) }

// Remove returns s with node n removed.
func (s SharerSet) Remove(n NodeID) SharerSet { return s &^ (1 << uint(n)) }

// Contains reports whether node n is a member of s.
func (s SharerSet) Contains(n NodeID) bool {
	return n >= 0 && n < MaxNodes && s&(1<<uint(n)) != 0
}

// Count returns the number of members.
func (s SharerSet) Count() int { return bits.OnesCount64(uint64(s)) }

// Empty reports whether s has no members.
func (s SharerSet) Empty() bool { return s == 0 }

// Union returns s ∪ t.
func (s SharerSet) Union(t SharerSet) SharerSet { return s | t }

// Intersect returns s ∩ t.
func (s SharerSet) Intersect(t SharerSet) SharerSet { return s & t }

// Minus returns s \ t.
func (s SharerSet) Minus(t SharerSet) SharerSet { return s &^ t }

// Superset reports whether s ⊇ t.
func (s SharerSet) Superset(t SharerSet) bool { return t&^s == 0 }

// First returns the lowest-numbered member, or None if the set is empty.
func (s SharerSet) First() NodeID {
	if s == 0 {
		return None
	}
	return NodeID(bits.TrailingZeros64(uint64(s)))
}

// Nodes returns the members in ascending order.
func (s SharerSet) Nodes() []NodeID {
	out := make([]NodeID, 0, s.Count())
	for s != 0 {
		n := bits.TrailingZeros64(uint64(s))
		out = append(out, NodeID(n))
		s &^= 1 << uint(n)
	}
	return out
}

// ForEach calls fn for every member in ascending order.
func (s SharerSet) ForEach(fn func(NodeID)) {
	for s != 0 {
		n := bits.TrailingZeros64(uint64(s))
		fn(NodeID(n))
		s &^= 1 << uint(n)
	}
}

// String renders the set as e.g. "{0,3,5}".
func (s SharerSet) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(n NodeID) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&b, "%d", n)
	})
	b.WriteByte('}')
	return b.String()
}

// BitString renders the set as a fixed-width bit vector, LSB (node 0) first,
// matching the paper's Figure 6 presentation.
func (s SharerSet) BitString(n int) string {
	b := make([]byte, n)
	for i := 0; i < n; i++ {
		if s.Contains(NodeID(i)) {
			b[i] = '1'
		} else {
			b[i] = '0'
		}
	}
	return string(b)
}
