package arch

import (
	"testing"
	"testing/quick"
)

func TestLineRoundTrip(t *testing.T) {
	a := Addr(0x12345)
	l := a.Line()
	if l != LineAddr(0x12345>>6) {
		t.Fatalf("line = %#x", l)
	}
	if l.Base() != Addr(0x12340) { // 0x12345 &^ 63
		t.Fatalf("base = %#x", l.Base())
	}
}

func TestSharerSetBasics(t *testing.T) {
	s := SetOf(0, 3, 5)
	if !s.Contains(0) || !s.Contains(3) || !s.Contains(5) || s.Contains(1) {
		t.Fatalf("membership wrong: %v", s)
	}
	if s.Count() != 3 {
		t.Fatalf("count = %d", s.Count())
	}
	s = s.Remove(3)
	if s.Contains(3) || s.Count() != 2 {
		t.Fatalf("remove failed: %v", s)
	}
	if s.Contains(None) {
		t.Fatal("None must never be a member")
	}
	if EmptySet.First() != None {
		t.Fatal("First of empty should be None")
	}
	if s.First() != 0 {
		t.Fatalf("First = %d", s.First())
	}
}

func TestSetAlgebra(t *testing.T) {
	a := SetOf(1, 2, 3)
	b := SetOf(3, 4)
	if got := a.Union(b); got != SetOf(1, 2, 3, 4) {
		t.Fatalf("union = %v", got)
	}
	if got := a.Intersect(b); got != SetOf(3) {
		t.Fatalf("intersect = %v", got)
	}
	if got := a.Minus(b); got != SetOf(1, 2) {
		t.Fatalf("minus = %v", got)
	}
	if !a.Superset(SetOf(1, 3)) || a.Superset(b) {
		t.Fatal("superset wrong")
	}
	if !a.Superset(EmptySet) {
		t.Fatal("any set is a superset of empty")
	}
}

func TestFullSet(t *testing.T) {
	if FullSet(16).Count() != 16 {
		t.Fatalf("FullSet(16) = %v", FullSet(16))
	}
	if FullSet(0) != EmptySet {
		t.Fatal("FullSet(0) should be empty")
	}
	if FullSet(64).Count() != 64 {
		t.Fatal("FullSet(64) should have 64 members")
	}
	if FullSet(256).Count() != 256 || FullSet(MaxNodes+7).Count() != MaxNodes {
		t.Fatal("FullSet must saturate at MaxNodes")
	}
	if got := FullSet(100); got.Count() != 100 || got.Contains(100) || !got.Contains(99) {
		t.Fatalf("FullSet(100) = %v", got)
	}
}

func TestCrossWordMembers(t *testing.T) {
	s := SetOf(3, 63, 64, 130, 255)
	if s.Count() != 5 || !s.Contains(64) || !s.Contains(255) || s.Contains(65) {
		t.Fatalf("cross-word membership wrong: %v", s)
	}
	if s.First() != 3 {
		t.Fatalf("First = %d", s.First())
	}
	got := s.Nodes()
	want := []NodeID{3, 63, 64, 130, 255}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Nodes = %v", got)
		}
	}
	if s.Remove(130).Contains(130) {
		t.Fatal("Remove above word 0 failed")
	}
	if s.Add(256) != s || s.Add(None) != s {
		t.Fatal("out-of-range Add must be a no-op")
	}
	if SetFromBits64(s.Bits64()) != SetOf(3, 63) {
		t.Fatal("Bits64 must carry exactly word 0")
	}
}

func TestNodesAndForEach(t *testing.T) {
	s := SetOf(7, 2, 11)
	nodes := s.Nodes()
	want := []NodeID{2, 7, 11}
	if len(nodes) != 3 {
		t.Fatalf("nodes = %v", nodes)
	}
	for i := range want {
		if nodes[i] != want[i] {
			t.Fatalf("nodes = %v, want %v", nodes, want)
		}
	}
	var visited []NodeID
	s.ForEach(func(n NodeID) { visited = append(visited, n) })
	if len(visited) != 3 || visited[0] != 2 {
		t.Fatalf("forEach = %v", visited)
	}
}

func TestStrings(t *testing.T) {
	if got := SetOf(0, 5).String(); got != "{0,5}" {
		t.Fatalf("String = %q", got)
	}
	if got := EmptySet.String(); got != "{}" {
		t.Fatalf("String = %q", got)
	}
	if got := SetOf(0, 2).BitString(4); got != "1010" {
		t.Fatalf("BitString = %q", got)
	}
}

// Property: add then contains; remove then not contains; count consistency.
func TestPropertySetOps(t *testing.T) {
	f := func(base uint64, n uint16) bool {
		node := NodeID(int(n) % MaxNodes)
		s := SetFromBits64(base)
		added := s.Add(node)
		if !added.Contains(node) {
			return false
		}
		removed := added.Remove(node)
		if removed.Contains(node) {
			return false
		}
		// Adding an element increases count by 0 or 1.
		d := added.Count() - s.Count()
		return d == 0 || d == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Nodes round-trips through SetOf.
func TestPropertyNodesRoundTrip(t *testing.T) {
	f := func(raw uint64, hi uint16) bool {
		s := SetFromBits64(raw).Add(NodeID(int(hi) % MaxNodes))
		return SetOf(s.Nodes()...) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: DeMorgan-ish identities on the 64-node universe.
func TestPropertySetIdentities(t *testing.T) {
	f := func(a, b uint64, ha, hb uint16) bool {
		// Seed members above word 0 too, so the identities are exercised
		// across the widened set's word boundaries.
		x := SetFromBits64(a).Add(NodeID(int(ha) % MaxNodes))
		y := SetFromBits64(b).Add(NodeID(int(hb) % MaxNodes))
		if x.Union(y).Count() != x.Count()+y.Count()-x.Intersect(y).Count() {
			return false
		}
		if !x.Union(y).Superset(x) || !x.Superset(x.Intersect(y)) {
			return false
		}
		return x.Minus(y).Intersect(y) == EmptySet
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
