package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package under analysis.
type Package struct {
	Path  string // import path
	Dir   string // directory relative to the module root
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of one module using only the
// standard library: module-internal imports are type-checked recursively
// from source, standard-library imports go through go/importer's source
// importer. This keeps spvet free of any dependency on external analysis
// frameworks.
type Loader struct {
	ModRoot string // absolute path of the module root (directory of go.mod)
	ModPath string // module path declared in go.mod

	Fset *token.FileSet

	std  types.ImporterFrom
	pkgs map[string]*Package
}

// FindModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func FindModule(dir string) (root, path string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: no module line in %s/go.mod", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", abs)
		}
	}
}

// NewLoader returns a loader for the module rooted at modRoot.
func NewLoader(modRoot, modPath string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		ModRoot: modRoot,
		ModPath: modPath,
		Fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs:    make(map[string]*Package),
	}
}

// Load resolves the given patterns ("./...", "./internal/...", "internal/sim")
// against the module root and returns the matching packages, parsed and
// type-checked, sorted by import path. Directories named "testdata", hidden
// directories, and directories without non-test Go files are skipped.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirs, err := l.resolve(patterns)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, dir := range dirs {
		pkg, err := l.load(l.importPath(dir), dir)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// importPath maps a module-root-relative directory to its import path.
func (l *Loader) importPath(rel string) string {
	if rel == "." || rel == "" {
		return l.ModPath
	}
	return l.ModPath + "/" + filepath.ToSlash(rel)
}

// resolve expands patterns to module-root-relative package directories.
func (l *Loader) resolve(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(rel string) bool {
		rel = filepath.Clean(rel)
		if !l.hasGoFiles(rel) {
			return false
		}
		if !seen[rel] {
			seen[rel] = true
			dirs = append(dirs, rel)
		}
		return true
	}
	for _, pat := range patterns {
		matched := false
		pat = strings.TrimPrefix(pat, "./")
		if rest, ok := strings.CutSuffix(pat, "..."); ok {
			base := filepath.Clean(strings.TrimSuffix(rest, "/"))
			if base == "" {
				base = "."
			}
			err := filepath.WalkDir(filepath.Join(l.ModRoot, base), func(p string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if p != l.ModRoot && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				rel, err := filepath.Rel(l.ModRoot, p)
				if err != nil {
					return err
				}
				if add(rel) {
					matched = true
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
		} else {
			matched = add(pat)
		}
		if !matched {
			return nil, fmt.Errorf("lint: pattern %q matched no packages", pat)
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func (l *Loader) hasGoFiles(rel string) bool {
	ents, err := os.ReadDir(filepath.Join(l.ModRoot, rel))
	if err != nil {
		return false
	}
	for _, e := range ents {
		n := e.Name()
		if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			return true
		}
	}
	return false
}

// load parses and type-checks the package in the module-root-relative
// directory rel, caching by import path.
func (l *Loader) load(path, rel string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	abs := filepath.Join(l.ModRoot, rel)
	ents, err := os.ReadDir(abs)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		// Parse under the module-root-relative name so findings print
		// stable, readable positions.
		f, err := parser.ParseFile(l.Fset, filepath.Join(rel, n), mustRead(filepath.Join(abs, n)), parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", rel)
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	cfg := types.Config{Importer: (*loaderImporter)(l)}
	tpkg, err := cfg.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: rel, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

func mustRead(path string) []byte {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil // surfaces as a parse error with the right filename
	}
	return data
}

// loaderImporter adapts Loader to types.ImporterFrom: module-internal paths
// are checked from source, everything else is delegated to the standard
// library's source importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	return li.ImportFrom(path, "", 0)
}

func (li *loaderImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	l := (*Loader)(li)
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		rel := "."
		if path != l.ModPath {
			rel = filepath.FromSlash(strings.TrimPrefix(path, l.ModPath+"/"))
		}
		p, err := l.load(path, rel)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}
