package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

func init() {
	Register(Check{
		Name: "obspure",
		Doc: "metrics observer callbacks (noc.Observer implementations, " +
			"protocol/snoop Obs hooks, event-loop observers) must be pure: the " +
			"callgraph reachable from them may not call mutating sim APIs, " +
			"schedule events, or make calls the analyzer cannot resolve",
		RunModule: checkObsPure,
	})
}

// obsDeny maps module-relative callee keys ("relpkg.Recv.Method" or
// "relpkg.Func") to what makes them impure. Entries for methods a package
// does not declare simply never match, so the list can be generous.
var obsDeny = map[string]string{
	"internal/event.Sim.At":                "schedules an event",
	"internal/event.Sim.AtFn":              "schedules an event",
	"internal/event.Sim.After":             "schedules an event",
	"internal/event.Sim.AfterFn":           "schedules an event",
	"internal/event.Sim.Step":              "advances the simulation",
	"internal/event.Sim.Run":               "advances the simulation",
	"internal/event.Sim.RunUntil":          "advances the simulation",
	"internal/event.Sim.RunWhile":          "advances the simulation",
	"internal/event.Sim.SetObserver":       "re-wires observation mid-run",
	"internal/noc.Network.Send":            "injects network traffic",
	"internal/noc.Network.SendFn":          "injects network traffic",
	"internal/noc.Network.Multicast":       "injects network traffic",
	"internal/noc.Network.Broadcast":       "injects network traffic",
	"internal/noc.Network.SetObserver":     "re-wires observation mid-run",
	"internal/cache.Cache.Lookup":          "updates cache replacement state",
	"internal/cache.Cache.Insert":          "mutates cache contents",
	"internal/cache.Cache.Invalidate":      "mutates cache contents",
	"internal/cache.Cache.Touch":           "updates cache replacement state",
	"internal/protocol.System.send":        "injects a coherence message",
	"internal/protocol.System.sendAfter":   "injects a coherence message",
	"internal/protocol.System.transmit":    "injects a coherence message",
	"internal/protocol.System.dispatch":    "dispatches a coherence message",
	"internal/protocol.System.SetObserver": "re-wires observation mid-run",
	"internal/protocol.Node.Access":        "issues a memory access",
	"internal/protocol.Node.OnSync":        "injects a synchronization event",
	"internal/protocol.Node.handle":        "drives the protocol state machine",
	"internal/protocol.DirSlice.handle":    "drives the protocol state machine",
	"internal/snoop.Node.Access":           "issues a memory access",
	"internal/snoop.System.SetObserver":    "re-wires observation mid-run",
	"internal/cpu.Core.step":               "advances a core",
}

// obsWork is one function body queued for purity traversal.
type obsWork struct {
	body *ast.BlockStmt
	pkg  *Package
	path string // human-readable chain from the observer root
}

// obsGraph performs the reachability walk.
type obsGraph struct {
	mp      *ModulePass
	decls   map[*types.Func]obsDecl
	visited map[*types.Func]bool
	seenLit map[*ast.FuncLit]bool
	queue   []obsWork
}

type obsDecl struct {
	fd  *ast.FuncDecl
	pkg *Package
}

// checkObsPure collects observer roots from the matched packages and walks
// every statically resolvable call from them, failing on calls into the
// deny list and on calls it cannot resolve (purity must be provable).
func checkObsPure(mp *ModulePass) error {
	g := &obsGraph{
		mp:      mp,
		decls:   make(map[*types.Func]obsDecl),
		visited: make(map[*types.Func]bool),
		seenLit: make(map[*ast.FuncLit]bool),
	}
	for _, pkg := range mp.Loaded() {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
					if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
						g.decls[fn] = obsDecl{fd: fd, pkg: pkg}
					}
				}
			}
		}
	}
	g.collectRoots()
	for len(g.queue) > 0 {
		w := g.queue[0]
		g.queue = g.queue[1:]
		g.walkBody(w)
	}
	return nil
}

// collectRoots finds the three observer entry families: implementations of
// the noc Observer interface, function-typed fields of module Obs hook
// literals, and arguments of SetObserver calls.
func (g *obsGraph) collectRoots() {
	iface := g.observerInterface()
	for _, pkg := range g.mp.Pkgs {
		if iface != nil {
			scope := pkg.Types.Scope()
			for _, name := range scope.Names() {
				tn, ok := scope.Lookup(name).(*types.TypeName)
				if !ok || tn.IsAlias() {
					continue
				}
				T := tn.Type()
				if types.IsInterface(T) {
					continue
				}
				if !types.Implements(T, iface) && !types.Implements(types.NewPointer(T), iface) {
					continue
				}
				for i := 0; i < iface.NumMethods(); i++ {
					m := iface.Method(i)
					obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(T), true, m.Pkg(), m.Name())
					if fn, ok := obj.(*types.Func); ok {
						g.enqueueFunc(fn, fmt.Sprintf("%s.%s (noc.Observer)", name, m.Name()))
					}
				}
			}
		}
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CompositeLit:
					named, ok := pkg.Info.TypeOf(n).(*types.Named)
					if !ok || named.Obj().Name() != "Obs" ||
						named.Obj().Pkg() == nil || !inModule(named.Obj().Pkg().Path(), g.mp.ModPath) {
						return true
					}
					for _, elt := range n.Elts {
						field, value := "hook", elt
						if kv, ok := elt.(*ast.KeyValueExpr); ok {
							if id, ok := kv.Key.(*ast.Ident); ok {
								field = id.Name
							}
							value = kv.Value
						}
						g.enqueueExpr(pkg, value, fmt.Sprintf("%s.Obs.%s hook", named.Obj().Pkg().Name(), field))
					}
				case *ast.CallExpr:
					sel, ok := n.Fun.(*ast.SelectorExpr)
					if !ok || sel.Sel.Name != "SetObserver" || len(n.Args) == 0 {
						return true
					}
					fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
					if !ok || fn.Pkg() == nil || !inModule(fn.Pkg().Path(), g.mp.ModPath) {
						return true
					}
					g.enqueueExpr(pkg, n.Args[0], fmt.Sprintf("%s.SetObserver argument", fn.Pkg().Name()))
				}
				return true
			})
		}
	}
}

// observerInterface resolves the module's noc Observer interface, if loaded.
func (g *obsGraph) observerInterface() *types.Interface {
	pkg := g.mp.Lookup(g.mp.ModPath + "/internal/noc")
	if pkg == nil {
		return nil
	}
	tn, ok := pkg.Types.Scope().Lookup("Observer").(*types.TypeName)
	if !ok {
		return nil
	}
	iface, _ := tn.Type().Underlying().(*types.Interface)
	return iface
}

// enqueueExpr queues the function an expression evaluates to: a literal's
// body directly, or a named function/method via its declaration.
func (g *obsGraph) enqueueExpr(pkg *Package, e ast.Expr, root string) {
	switch e := ast.Unparen(e).(type) {
	case *ast.FuncLit:
		if !g.seenLit[e] {
			g.seenLit[e] = true
			g.queue = append(g.queue, obsWork{body: e.Body, pkg: pkg, path: root})
		}
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[e].(*types.Func); ok {
			g.enqueueFunc(fn, root)
		}
	case *ast.SelectorExpr:
		if fn, ok := pkg.Info.Uses[e.Sel].(*types.Func); ok {
			g.enqueueFunc(fn, root)
		}
	}
}

func (g *obsGraph) enqueueFunc(fn *types.Func, path string) {
	if o := fn.Origin(); o != nil {
		fn = o
	}
	if g.visited[fn] {
		return
	}
	g.visited[fn] = true
	if d, ok := g.decls[fn]; ok {
		g.queue = append(g.queue, obsWork{body: d.fd.Body, pkg: d.pkg, path: path})
	}
}

// walkBody inspects one reachable body: every call must resolve statically
// to either a builtin, a non-module function, or a module function outside
// the deny list (which is then traversed in turn).
func (g *obsGraph) walkBody(w obsWork) {
	ast.Inspect(w.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			g.checkCall(w, n)
		case *ast.FuncLit:
			// A literal not in call position may still run in observer
			// context (passed as a callback); traverse it too.
			if !g.seenLit[n] {
				g.seenLit[n] = true
				g.queue = append(g.queue, obsWork{body: n.Body, pkg: w.pkg, path: w.path})
			}
		}
		return true
	})
}

func (g *obsGraph) checkCall(w obsWork, call *ast.CallExpr) {
	fun := ast.Unparen(call.Fun)
	if tv, ok := w.pkg.Info.Types[fun]; ok && tv.IsType() {
		return // conversion, not a call
	}
	switch fun := fun.(type) {
	case *ast.FuncLit:
		if !g.seenLit[fun] {
			g.seenLit[fun] = true
			g.queue = append(g.queue, obsWork{body: fun.Body, pkg: w.pkg, path: w.path})
		}
		return
	case *ast.Ident:
		g.checkCallee(w, call, w.pkg.Info.Uses[fun])
		return
	case *ast.SelectorExpr:
		g.checkCallee(w, call, w.pkg.Info.Uses[fun.Sel])
		return
	}
	g.mp.Report(call.Pos(), "obspure",
		fmt.Sprintf("observer callback (via %s) makes a dynamic call that cannot be proven pure", w.path))
}

func (g *obsGraph) checkCallee(w obsWork, call *ast.CallExpr, obj types.Object) {
	switch obj := obj.(type) {
	case *types.Builtin, *types.TypeName, *types.Nil:
		return
	case *types.Var:
		// A func-typed variable or field: dynamic dispatch.
		g.mp.Report(call.Pos(), "obspure",
			fmt.Sprintf("observer callback (via %s) calls func value %s, which cannot be proven pure", w.path, obj.Name()))
		return
	case *types.Func:
		key, label := calleeKey(obj, g.mp.ModPath)
		if key == "" {
			return // outside the module: cannot touch the sim
		}
		if reason, bad := obsDeny[key]; bad {
			g.mp.Report(call.Pos(), "obspure",
				fmt.Sprintf("observer callback (via %s) calls %s, which %s", w.path, label, reason))
			return
		}
		if recvIsInterface(obj) {
			g.mp.Report(call.Pos(), "obspure",
				fmt.Sprintf("observer callback (via %s) calls %s through an interface, which cannot be proven pure", w.path, label))
			return
		}
		g.enqueueFunc(obj, w.path+" -> "+label)
	}
}

// calleeKey renders a module function as its deny-list key and a display
// label; the key is empty for non-module callees.
func calleeKey(fn *types.Func, modPath string) (key, label string) {
	if o := fn.Origin(); o != nil {
		fn = o
	}
	pkg := fn.Pkg()
	if pkg == nil || !inModule(pkg.Path(), modPath) {
		return "", ""
	}
	rel := strings.TrimPrefix(pkg.Path(), modPath+"/")
	if pkg.Path() == modPath {
		rel = "."
	}
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if named := namedOf(sig.Recv().Type()); named != nil {
			name = named.Obj().Name() + "." + name
		}
	}
	return rel + "." + name, pkg.Name() + "." + name
}

func recvIsInterface(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return types.IsInterface(sig.Recv().Type())
}

func namedOf(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}
