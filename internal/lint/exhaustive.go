package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"
)

func init() {
	Register(Check{
		Name: "exhaustive",
		Doc: "switches over module-declared integer enum types (protocol.MsgKind, " +
			"cache.State, predictor sync/miss kinds, ...) must cover every declared " +
			"constant or carry an explicit default clause",
		Run: checkExhaustive,
	})
}

// checkExhaustive enforces enum-switch exhaustiveness. An enum family is a
// named integer type declared in the analyzed module with at least two
// package-level constants of exactly that type; a switch whose tag has such
// a type must either list every constant value or have a default clause.
// Switches with non-constant case expressions are skipped (no finite cover
// to verify); stdlib enums (token.Token, ...) are out of scope.
func checkExhaustive(p *Pass) {
	modPath := p.analyzer.ModPath
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			named, ok := p.TypeOf(sw.Tag).(*types.Named)
			if !ok {
				return true
			}
			obj := named.Obj()
			if obj == nil || obj.Pkg() == nil || !inModule(obj.Pkg().Path(), modPath) {
				return true
			}
			basic, ok := named.Underlying().(*types.Basic)
			if !ok || basic.Info()&types.IsInteger == 0 {
				return true
			}
			family := enumConstants(obj.Pkg(), named)
			if len(family) < 2 {
				return true
			}
			covered := make(map[int64]bool)
			for _, clause := range sw.Body.List {
				cc := clause.(*ast.CaseClause)
				if cc.List == nil {
					return true // explicit default: exhaustive by construction
				}
				for _, e := range cc.List {
					tv, ok := p.Pkg.Info.Types[e]
					if !ok || tv.Value == nil {
						return true // non-constant case: no finite cover to check
					}
					if v, exact := constant.Int64Val(constant.ToInt(tv.Value)); exact {
						covered[v] = true
					}
				}
			}
			var missing []string
			seen := make(map[int64]bool)
			for _, c := range family {
				if !covered[c.val] && !seen[c.val] {
					seen[c.val] = true
					missing = append(missing, c.name)
				}
			}
			if len(missing) > 0 {
				p.Report(sw.Switch, "exhaustive", fmt.Sprintf(
					"switch over %s is not exhaustive: missing %s (add the cases or an explicit default)",
					typeName(named, p.Pkg.Types), strings.Join(missing, ", ")))
			}
			return true
		})
	}
}

func inModule(pkgPath, modPath string) bool {
	return pkgPath == modPath || strings.HasPrefix(pkgPath, modPath+"/")
}

type enumConst struct {
	name string
	val  int64
}

// enumConstants returns the package-level constants of exactly type named,
// sorted by value then name (so diagnostics list members in declaration
// value order, deterministically).
func enumConstants(pkg *types.Package, named *types.Named) []enumConst {
	var out []enumConst
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		if v, exact := constant.Int64Val(constant.ToInt(c.Val())); exact {
			out = append(out, enumConst{name: name, val: v})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].val != out[j].val {
			return out[i].val < out[j].val
		}
		return out[i].name < out[j].name
	})
	return out
}

// typeName renders a type for diagnostics: package-qualified unless declared
// in the package under analysis.
func typeName(named *types.Named, in *types.Package) string {
	obj := named.Obj()
	if obj.Pkg() == in {
		return obj.Name()
	}
	return obj.Pkg().Name() + "." + obj.Name()
}
