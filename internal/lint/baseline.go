package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"path"
	"sort"
)

// BaselineVersion is the schema version of the baseline file.
const BaselineVersion = 1

// BaselineEntry identifies one tolerated legacy finding. Line numbers are
// deliberately absent: baselines must survive unrelated edits to the file,
// so entries match on (file, check, message) only.
type BaselineEntry struct {
	File  string `json:"file"`
	Check string `json:"check"`
	Msg   string `json:"msg"`
}

// Baseline is a checked-in set of tolerated legacy findings: matching
// findings are reported but do not fail the build; anything new does.
// Simulation packages are required to have an empty baseline (Validate).
type Baseline struct {
	Version int             `json:"version"`
	Entries []BaselineEntry `json:"findings"`
}

// LoadBaseline reads a baseline file.
func LoadBaseline(file string) (*Baseline, error) {
	data, err := os.ReadFile(file)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("lint: baseline %s: %w", file, err)
	}
	if b.Version != BaselineVersion {
		return nil, fmt.Errorf("lint: baseline %s: unsupported version %d (want %d)", file, b.Version, BaselineVersion)
	}
	return &b, nil
}

// WriteBaseline writes findings as a baseline file (entries sorted, one
// entry per finding occurrence).
func WriteBaseline(file string, findings []Finding) error {
	b := &Baseline{Version: BaselineVersion}
	b.Entries = make([]BaselineEntry, 0, len(findings))
	for _, f := range findings {
		b.Entries = append(b.Entries, entryOf(f))
	}
	sort.Slice(b.Entries, func(i, j int) bool { return b.Entries[i].less(b.Entries[j]) })
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(file, append(data, '\n'), 0o644)
}

func entryOf(f Finding) BaselineEntry {
	return BaselineEntry{File: f.Pos.Filename, Check: f.Check, Msg: f.Msg}
}

func (e BaselineEntry) less(o BaselineEntry) bool {
	if e.File != o.File {
		return e.File < o.File
	}
	if e.Check != o.Check {
		return e.Check < o.Check
	}
	return e.Msg < o.Msg
}

// Partition splits findings into fresh ones and ones covered by the
// baseline. The baseline is a multiset: each entry absorbs one finding, so a
// second occurrence of a baselined diagnostic is still fresh.
func (b *Baseline) Partition(findings []Finding) (fresh, baselined []Finding) {
	budget := make(map[BaselineEntry]int, len(b.Entries))
	for _, e := range b.Entries {
		budget[e]++
	}
	for _, f := range findings {
		e := entryOf(f)
		if budget[e] > 0 {
			budget[e]--
			baselined = append(baselined, f)
		} else {
			fresh = append(fresh, f)
		}
	}
	return fresh, baselined
}

// Validate enforces the empty-sim-baseline policy: no entry may tolerate a
// finding inside a simulation package (per isSim over the entry's package
// import path, derived from its file's directory under modPath).
func (b *Baseline) Validate(modPath string, isSim func(importPath string) bool) error {
	if isSim == nil {
		return nil
	}
	for _, e := range b.Entries {
		dir := path.Dir(path.Clean(e.File))
		importPath := modPath
		if dir != "." {
			importPath = modPath + "/" + dir
		}
		if isSim(importPath) {
			return fmt.Errorf("lint: baseline entry for simulation package %s (%s [%s]); sim packages must have an empty baseline — fix the code instead", importPath, e.File, e.Check)
		}
	}
	return nil
}
