// Package lint is a from-scratch, stdlib-only static analyzer that enforces
// the simulator's determinism invariants (see internal/event: "experiments
// must be reproducible"). It walks non-test packages and reports code whose
// behaviour can differ between two runs with the same seed: randomized map
// iteration, wall-clock or global-rand dependence, concurrency inside the
// single-threaded DES, and order-dependent floating-point accumulation.
//
// Beyond the per-package determinism checks, the analyzer carries four
// whole-program invariant checks backing the performance and metrics
// architecture (DESIGN.md §12): enum-switch exhaustiveness, //spcoh:noalloc
// escape-freedom, observer purity, and pooled-record escape.
//
// Two suppression annotations exist:
//
//   - "//spvet:ordered why" marks a maprange/floatorder hazard as genuinely
//     order-independent (legacy form, reason free-text).
//   - "//spvet:allow check1,check2 -- reason" suppresses the named checks on
//     the annotated line or the line below the comment. The reason is
//     mandatory: a reasonless allow is itself reported (check "allow").
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// OrderedAnnotation suppresses maprange/floatorder findings for the
// statement it is attached to.
const OrderedAnnotation = "spvet:ordered"

// AllowAnnotation is the general suppression form: it names the checks being
// silenced and requires a reason after a "--" separator.
const AllowAnnotation = "spvet:allow"

// NoallocAnnotation marks a function whose body must be free of heap
// allocation (verified against the compiler's escape analysis; noalloc.go).
const NoallocAnnotation = "spcoh:noalloc"

// PooledAnnotation marks a freelist-managed record type whose instances must
// not outlive their callback (poolescape.go).
const PooledAnnotation = "spcoh:pooled"

// Severity classifies findings: errors gate CI, warnings are informative.
type Severity string

const (
	SevError Severity = "error"
	SevWarn  Severity = "warn"
)

// Finding is one reported invariant violation.
type Finding struct {
	Pos      token.Position
	Check    string
	Severity Severity
	Msg      string
}

// String renders the canonical "file:line: [check] message" form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Check, f.Msg)
}

// Check is one registered analysis. Exactly one of Run (per-package) and
// RunModule (once per invocation, over all matched packages) must be set.
type Check struct {
	Name string
	Doc  string
	// Severity of this check's findings (SevError when empty).
	Severity Severity
	// SimOnly restricts the check to simulation packages (per
	// Analyzer.IsSim); determinism of the DES does not require, say,
	// a CLI to avoid wall-clock timestamps in its progress output.
	SimOnly   bool
	Run       func(*Pass)
	RunModule func(*ModulePass) error
}

var registry []Check

// Register adds a check to the global registry. Checks run in registration
// order; the built-in checks register at init time.
func Register(c Check) {
	for _, r := range registry {
		if r.Name == c.Name {
			panic("lint: duplicate check " + c.Name)
		}
	}
	if (c.Run == nil) == (c.RunModule == nil) {
		panic("lint: check " + c.Name + " must set exactly one of Run and RunModule")
	}
	if c.Severity == "" {
		c.Severity = SevError
	}
	registry = append(registry, c)
}

// Checks returns the registered checks.
func Checks() []Check {
	out := make([]Check, len(registry))
	copy(out, registry)
	return out
}

// allowDirective is one parsed //spvet:allow comment.
type allowDirective struct {
	pos    token.Position
	checks []string
	reason string
	err    string // non-empty when malformed; reported by the allow check
}

func (d *allowDirective) covers(check string) bool {
	for _, c := range d.checks {
		if c == check {
			return true
		}
	}
	return false
}

// fileAnnots holds the suppression annotations of one file, keyed by line.
type fileAnnots struct {
	ordered map[int]bool
	allows  map[int][]*allowDirective
}

// run is the shared state of one Analyzer.Run invocation.
type run struct {
	analyzer *Analyzer
	loader   *Loader
	checks   []Check
	sev      map[string]Severity
	byFile   map[string]*fileAnnots
	findings []Finding
}

func (r *run) allowedAt(file string, line int, check string) bool {
	fa := r.byFile[file]
	if fa == nil {
		return false
	}
	for _, l := range [2]int{line, line - 1} {
		for _, d := range fa.allows[l] {
			if d.err == "" && d.covers(check) {
				return true
			}
		}
	}
	return false
}

// report records a finding unless an allow directive covers it. An empty
// severity selects the check's registered severity.
func (r *run) report(pos token.Position, check string, sev Severity, msg string) {
	if r.allowedAt(pos.Filename, pos.Line, check) {
		return
	}
	r.reportRaw(pos, check, sev, msg)
}

// reportRaw records a finding without consulting allow directives (used by
// the allow meta-check, whose findings must not be self-suppressible).
func (r *run) reportRaw(pos token.Position, check string, sev Severity, msg string) {
	if sev == "" {
		sev = r.sev[check]
		if sev == "" {
			sev = SevError
		}
	}
	r.findings = append(r.findings, Finding{Pos: pos, Check: check, Severity: sev, Msg: msg})
}

// Pass carries one package through one per-package check.
type Pass struct {
	Fset  *token.FileSet
	Pkg   *Package
	IsSim bool

	analyzer *Analyzer
	run      *run
	// annots holds this package's files' suppression annotations (the
	// whole run's table lives in run.byFile).
	annots map[string]*fileAnnots
}

// Report records a finding at pos with the check's registered severity.
func (p *Pass) Report(pos token.Pos, check, msg string) {
	p.run.report(p.Fset.Position(pos), check, "", msg)
}

// ReportSev records a finding with an explicit severity override.
func (p *Pass) ReportSev(pos token.Pos, check string, sev Severity, msg string) {
	p.run.report(p.Fset.Position(pos), check, sev, msg)
}

// Suppressed reports whether the statement at pos carries the
// OrderedAnnotation, either trailing on the same line or on the line above.
func (p *Pass) Suppressed(pos token.Pos) bool {
	position := p.Fset.Position(pos)
	fa := p.run.byFile[position.Filename]
	if fa == nil {
		return false
	}
	return fa.ordered[position.Line] || fa.ordered[position.Line-1]
}

// TypeOf returns the type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Pkg.Info.TypeOf(e) }

// ModulePass carries one whole-module check over all matched packages.
type ModulePass struct {
	Fset    *token.FileSet
	Pkgs    []*Package // the packages matched by the run's patterns
	ModRoot string
	ModPath string
	IsSim   func(importPath string) bool

	run *run
}

// Report records a finding at pos with the check's registered severity.
func (m *ModulePass) Report(pos token.Pos, check, msg string) {
	m.run.report(m.Fset.Position(pos), check, "", msg)
}

// ReportPosition records a finding at an externally produced position (e.g.
// a compiler diagnostic); allow directives on that line still apply.
func (m *ModulePass) ReportPosition(pos token.Position, check string, sev Severity, msg string) {
	m.run.report(pos, check, sev, msg)
}

// Lookup returns the loaded package with the given import path, whether it
// was matched by the patterns or pulled in as a dependency; nil if unloaded.
func (m *ModulePass) Lookup(path string) *Package { return m.run.loader.pkgs[path] }

// Loaded returns every package the loader has seen (matched packages plus
// their module-internal dependencies), sorted by import path.
func (m *ModulePass) Loaded() []*Package {
	out := make([]*Package, 0, len(m.run.loader.pkgs))
	for _, p := range m.run.loader.pkgs { //spvet:ordered — sorted below
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// DefaultIsSim returns the production classification of simulation
// packages for a module: everything under internal/ is DES-driven code
// that must replay bit-identically, except
//
//   - internal/lint — the analyzer itself,
//   - internal/sweep — the host-side sweep orchestrator, which runs
//     *above* the DES: it schedules whole simulations onto OS threads and
//     is explicitly concurrent. Every job it runs is still a
//     single-threaded simulation, and its merge order stays deterministic
//     via the always-on maprange/floatorder checks plus the package's
//     determinism tests, and
//   - internal/sweepd — the sweep job server, the same orchestration tier
//     one level up: leases, wall-clock TTLs and HTTP are its job. Its
//     merge endpoint stays byte-deterministic for the same reason the
//     local engine's does (content-addressed results, key-ordered merge),
//     enforced by its determinism tests rather than by SimOnly checks.
//
// Exemptions match whole path segments (the package itself or anything
// under it) — "/internal/sweep" must not accidentally cover a sibling
// like "/internal/sweepd"; that package earns its own entry.
//
// CLIs and examples may read the host clock for progress reporting, but
// still get maprange/floatorder scrutiny.
func DefaultIsSim(modPath string) func(importPath string) bool {
	return func(path string) bool {
		if !strings.HasPrefix(path, modPath+"/internal/") {
			return false
		}
		for _, exempt := range []string{"/internal/lint", "/internal/sweep", "/internal/sweepd"} {
			root := modPath + exempt
			if path == root || strings.HasPrefix(path, root+"/") {
				return false
			}
		}
		return true
	}
}

// Analyzer runs the registered checks over a module's packages.
type Analyzer struct {
	ModRoot string
	ModPath string
	// IsSim classifies import paths as simulation packages (DES-driven
	// code that must be bit-reproducible). SimOnly checks are limited to
	// packages for which this returns true. Nil means no package is.
	IsSim func(importPath string) bool
	// Checks overrides the global registry when non-nil.
	Checks []Check
}

// Run loads the packages matching patterns and applies every check,
// returning findings sorted by position then check name.
func (a *Analyzer) Run(patterns ...string) ([]Finding, error) {
	loader := NewLoader(a.ModRoot, a.ModPath)
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		return nil, err
	}
	checks := a.Checks
	if checks == nil {
		checks = Checks()
	}
	r := &run{
		analyzer: a,
		loader:   loader,
		checks:   checks,
		sev:      make(map[string]Severity, len(checks)),
		byFile:   make(map[string]*fileAnnots),
	}
	for _, c := range checks {
		r.sev[c.Name] = c.Severity
	}
	passes := make([]*Pass, len(pkgs))
	for i, pkg := range pkgs {
		annots := parseAnnotations(loader.Fset, pkg.Files)
		for file, fa := range annots {
			r.byFile[file] = fa
		}
		passes[i] = &Pass{
			Fset:     loader.Fset,
			Pkg:      pkg,
			IsSim:    a.IsSim != nil && a.IsSim(pkg.Path),
			analyzer: a,
			run:      r,
			annots:   annots,
		}
	}
	for _, pass := range passes {
		for _, c := range checks {
			if c.Run == nil || (c.SimOnly && !pass.IsSim) {
				continue
			}
			c.Run(pass)
		}
	}
	mp := &ModulePass{
		Fset:    loader.Fset,
		Pkgs:    pkgs,
		ModRoot: a.ModRoot,
		ModPath: a.ModPath,
		IsSim:   a.IsSim,
		run:     r,
	}
	for _, c := range checks {
		if c.RunModule == nil {
			continue
		}
		if err := c.RunModule(mp); err != nil {
			return nil, fmt.Errorf("lint: check %s: %w", c.Name, err)
		}
	}
	sort.Slice(r.findings, func(i, j int) bool {
		fi, fj := r.findings[i], r.findings[j]
		if fi.Pos.Filename != fj.Pos.Filename {
			return fi.Pos.Filename < fj.Pos.Filename
		}
		if fi.Pos.Line != fj.Pos.Line {
			return fi.Pos.Line < fj.Pos.Line
		}
		return fi.Check < fj.Check
	})
	return r.findings, nil
}

// parseAnnotations maps filename -> suppression annotations for a package's
// files, covering both the legacy ordered form and the allow form.
func parseAnnotations(fset *token.FileSet, files []*ast.File) map[string]*fileAnnots {
	out := make(map[string]*fileAnnots)
	annots := func(file string) *fileAnnots {
		fa := out[file]
		if fa == nil {
			fa = &fileAnnots{ordered: make(map[int]bool), allows: make(map[int][]*allowDirective)}
			out[file] = fa
		}
		return fa
	}
	for _, f := range files {
		file := fset.Position(f.Pos()).Filename
		annots(file) // every file gets an entry, even without annotations
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, "//") {
					continue // block comments cannot carry directives
				}
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				pos := fset.Position(c.Pos())
				fa := annots(pos.Filename)
				switch {
				case strings.HasPrefix(text, OrderedAnnotation):
					fa.ordered[pos.Line] = true
				case strings.HasPrefix(text, AllowAnnotation):
					d := parseAllow(text, pos)
					fa.allows[pos.Line] = append(fa.allows[pos.Line], d)
				}
			}
		}
	}
	return out
}

// parseAllow parses one "spvet:allow check1,check2 -- reason" directive.
func parseAllow(text string, pos token.Position) *allowDirective {
	d := &allowDirective{pos: pos}
	rest := strings.TrimSpace(strings.TrimPrefix(text, AllowAnnotation))
	names, reason, found := strings.Cut(rest, "--")
	if !found {
		d.err = "missing '-- reason' (suppressions must explain themselves)"
		return d
	}
	for _, f := range strings.FieldsFunc(names, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' }) {
		d.checks = append(d.checks, f)
	}
	d.reason = strings.TrimSpace(reason)
	if len(d.checks) == 0 {
		d.err = "no check names before '--'"
	} else if d.reason == "" {
		d.err = "empty reason after '--' (suppressions must explain themselves)"
	}
	return d
}

func init() {
	Register(Check{
		Name: "allow",
		Doc: "validates //spvet:allow suppression directives: a reason after " +
			"'--' is mandatory, and the named checks must exist",
		Run: checkAllowDirectives,
	})
}

// checkAllowDirectives reports malformed allow directives (error) and allow
// directives naming unknown checks (warn — the suppression will not bite, so
// the underlying finding still surfaces on its own).
func checkAllowDirectives(p *Pass) {
	known := make(map[string]bool, len(p.run.checks))
	for _, c := range p.run.checks {
		known[c.Name] = true
	}
	for _, fa := range p.annots { //spvet:ordered — findings are sorted by the driver
		for _, ds := range fa.allows { //spvet:ordered — findings are sorted by the driver
			for _, d := range ds {
				if d.err != "" {
					p.run.reportRaw(d.pos, "allow", SevError, "malformed suppression: "+d.err)
					continue
				}
				for _, c := range d.checks {
					if !known[c] {
						p.run.reportRaw(d.pos, "allow", SevWarn,
							fmt.Sprintf("suppression names unknown check %q (it will have no effect)", c))
					}
				}
			}
		}
	}
}
