// Package lint is a from-scratch, stdlib-only static analyzer that enforces
// the simulator's determinism invariants (see internal/event: "experiments
// must be reproducible"). It walks non-test packages and reports code whose
// behaviour can differ between two runs with the same seed: randomized map
// iteration, wall-clock or global-rand dependence, concurrency inside the
// single-threaded DES, and order-dependent floating-point accumulation.
//
// A hazard that is genuinely order-independent can be suppressed by placing
// a "//spvet:ordered" comment on the offending statement's line or the line
// directly above it.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// OrderedAnnotation suppresses maprange/floatorder findings for the
// statement it is attached to.
const OrderedAnnotation = "spvet:ordered"

// Finding is one reported determinism hazard.
type Finding struct {
	Pos   token.Position
	Check string
	Msg   string
}

// String renders the canonical "file:line: [check] message" form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Check, f.Msg)
}

// Check is one registered determinism analysis.
type Check struct {
	Name string
	Doc  string
	// SimOnly restricts the check to simulation packages (per
	// Analyzer.IsSim); determinism of the DES does not require, say,
	// a CLI to avoid wall-clock timestamps in its progress output.
	SimOnly bool
	Run     func(*Pass)
}

var registry []Check

// Register adds a check to the global registry. Checks run in registration
// order; the four built-in checks register at init time.
func Register(c Check) {
	for _, r := range registry {
		if r.Name == c.Name {
			panic("lint: duplicate check " + c.Name)
		}
	}
	registry = append(registry, c)
}

// Checks returns the registered checks.
func Checks() []Check {
	out := make([]Check, len(registry))
	copy(out, registry)
	return out
}

// Pass carries one package through one check.
type Pass struct {
	Fset  *token.FileSet
	Pkg   *Package
	IsSim bool

	analyzer *Analyzer
	findings *[]Finding
	// ordered holds, per filename, the set of lines carrying the
	// OrderedAnnotation comment.
	ordered map[string]map[int]bool
}

// Report records a finding at pos.
func (p *Pass) Report(pos token.Pos, check, msg string) {
	*p.findings = append(*p.findings, Finding{Pos: p.Fset.Position(pos), Check: check, Msg: msg})
}

// Suppressed reports whether the statement at pos carries the
// OrderedAnnotation, either trailing on the same line or on the line above.
func (p *Pass) Suppressed(pos token.Pos) bool {
	position := p.Fset.Position(pos)
	lines := p.ordered[position.Filename]
	return lines[position.Line] || lines[position.Line-1]
}

// TypeOf returns the type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Pkg.Info.TypeOf(e) }

// DefaultIsSim returns the production classification of simulation
// packages for a module: everything under internal/ is DES-driven code
// that must replay bit-identically, except
//
//   - internal/lint — the analyzer itself, and
//   - internal/sweep — the host-side sweep orchestrator, which runs
//     *above* the DES: it schedules whole simulations onto OS threads and
//     is explicitly concurrent. Every job it runs is still a
//     single-threaded simulation, and its merge order stays deterministic
//     via the always-on maprange/floatorder checks plus the package's
//     determinism tests.
//
// CLIs and examples may read the host clock for progress reporting, but
// still get maprange/floatorder scrutiny.
func DefaultIsSim(modPath string) func(importPath string) bool {
	return func(path string) bool {
		if !strings.HasPrefix(path, modPath+"/internal/") {
			return false
		}
		for _, exempt := range []string{"/internal/lint", "/internal/sweep"} {
			if strings.HasPrefix(path, modPath+exempt) {
				return false
			}
		}
		return true
	}
}

// Analyzer runs the registered checks over a module's packages.
type Analyzer struct {
	ModRoot string
	ModPath string
	// IsSim classifies import paths as simulation packages (DES-driven
	// code that must be bit-reproducible). SimOnly checks are limited to
	// packages for which this returns true. Nil means no package is.
	IsSim func(importPath string) bool
	// Checks overrides the global registry when non-nil.
	Checks []Check
}

// Run loads the packages matching patterns and applies every check,
// returning findings sorted by position then check name.
func (a *Analyzer) Run(patterns ...string) ([]Finding, error) {
	loader := NewLoader(a.ModRoot, a.ModPath)
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		return nil, err
	}
	checks := a.Checks
	if checks == nil {
		checks = Checks()
	}
	var findings []Finding
	for _, pkg := range pkgs {
		pass := &Pass{
			Fset:     loader.Fset,
			Pkg:      pkg,
			IsSim:    a.IsSim != nil && a.IsSim(pkg.Path),
			analyzer: a,
			findings: &findings,
			ordered:  orderedLines(loader.Fset, pkg.Files),
		}
		for _, c := range checks {
			if c.SimOnly && !pass.IsSim {
				continue
			}
			c.Run(pass)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		fi, fj := findings[i], findings[j]
		if fi.Pos.Filename != fj.Pos.Filename {
			return fi.Pos.Filename < fj.Pos.Filename
		}
		if fi.Pos.Line != fj.Pos.Line {
			return fi.Pos.Line < fj.Pos.Line
		}
		return fi.Check < fj.Check
	})
	return findings, nil
}

// orderedLines maps filename -> lines carrying the OrderedAnnotation.
func orderedLines(fset *token.FileSet, files []*ast.File) map[string]map[int]bool {
	out := make(map[string]map[int]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, OrderedAnnotation) {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := out[pos.Filename]
				if lines == nil {
					lines = make(map[int]bool)
					out[pos.Filename] = lines
				}
				lines[pos.Line] = true
			}
		}
	}
	return out
}
