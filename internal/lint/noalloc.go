package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func init() {
	Register(Check{
		Name: "noalloc",
		Doc: "functions annotated //spcoh:noalloc must be free of heap allocation; " +
			"verified against `go build -gcflags=-m` escape-analysis output " +
			"(note: the compiler attributes inlined callees' allocations to the " +
			"call site, so cold-path pool refills need an inline //spvet:allow)",
		RunModule: checkNoalloc,
	})
}

// noallocFunc is one annotated function: findings land on compiler
// diagnostics positioned inside its declaration's line range.
type noallocFunc struct {
	name      string
	file      string // module-root-relative, as parsed
	from, to  int    // line range of the declaration (inclusive)
	namePos   token.Pos
	hasReport bool
}

// escapeLineRe matches one compiler diagnostic: "file:line:col: message".
var escapeLineRe = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*)$`)

// checkNoalloc gathers the //spcoh:noalloc set from the matched packages,
// compiles their directories with escape-analysis diagnostics enabled, and
// reports every heap escape or closure allocation attributed to a line
// inside an annotated function.
func checkNoalloc(mp *ModulePass) error {
	var funcs []*noallocFunc
	dirs := make(map[string]bool)
	for _, pkg := range mp.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !hasMarker(fd.Doc, NoallocAnnotation) {
					continue
				}
				start := mp.Fset.Position(fd.Pos())
				end := mp.Fset.Position(fd.End())
				funcs = append(funcs, &noallocFunc{
					name:    fd.Name.Name,
					file:    start.Filename,
					from:    start.Line,
					to:      end.Line,
					namePos: fd.Name.Pos(),
				})
				dirs["./"+pkg.Dir] = true
			}
		}
	}
	if len(funcs) == 0 {
		return nil
	}
	args := []string{"build", "-gcflags=-m"}
	for d := range dirs { //spvet:ordered — sorted below
		args = append(args, d)
	}
	sort.Strings(args[2:]) // deterministic compile order (and output grouping)
	cmd := exec.Command("go", args...)
	cmd.Dir = mp.ModRoot
	out, err := cmd.CombinedOutput()
	if err != nil {
		return fmt.Errorf("go build -gcflags=-m failed: %v\n%s", err, out)
	}
	seen := make(map[string]bool)
	for _, line := range strings.Split(string(out), "\n") {
		m := escapeLineRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		msg := m[4]
		if !strings.Contains(msg, "escapes to heap") && !strings.Contains(msg, "moved to heap") {
			continue
		}
		file := strings.TrimPrefix(m[1], "./")
		lineNo, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		fn := owningFunc(funcs, file, lineNo)
		if fn == nil || seen[line] {
			continue
		}
		seen[line] = true
		mp.ReportPosition(token.Position{Filename: file, Line: lineNo, Column: col}, "noalloc", "",
			fmt.Sprintf("heap allocation in //%s function %s: %s", NoallocAnnotation, fn.name, msg))
	}
	return nil
}

func owningFunc(funcs []*noallocFunc, file string, line int) *noallocFunc {
	for _, f := range funcs {
		if f.file == file && line >= f.from && line <= f.to {
			return f
		}
	}
	return nil
}

// hasMarker reports whether a doc comment carries the given annotation as a
// standalone "//marker" line (optionally followed by explanatory text).
func hasMarker(doc *ast.CommentGroup, marker string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == marker || strings.HasPrefix(text, marker+" ") {
			return true
		}
	}
	return false
}
