package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

func init() {
	Register(Check{
		Name: "poolescape",
		Doc: "pointers to //spcoh:pooled record types must not be stored past " +
			"their callback: no package-level variables, struct fields, " +
			"container elements, composite literals, or closure captures; " +
			"locals, call arguments, returns and append onto a freelist " +
			"([]*T) are the sanctioned uses",
		Run: checkPoolEscape,
	})
}

// checkPoolEscape enforces the freelist discipline of DESIGN.md §11: a
// pooled record is acquired, rides the event queue as a callback argument,
// and is pushed back onto its pool — any store that could outlive the
// callback would let the pool recycle a record that is still referenced.
func checkPoolEscape(p *Pass) {
	pooled := pooledTypes(p)
	if len(pooled) == 0 {
		return
	}
	isPooledPtr := func(t types.Type) *types.Named {
		ptr, ok := t.(*types.Pointer)
		if !ok {
			return nil
		}
		named, _ := ptr.Elem().(*types.Named)
		if named != nil && pooled[named.Obj()] {
			return named
		}
		return nil
	}
	report := func(pos ast.Node, named *types.Named, where string) {
		p.Report(pos.Pos(), "poolescape", fmt.Sprintf(
			"pooled record *%s stored in %s; pooled records must not outlive their callback (the pool would recycle a live record)",
			named.Obj().Name(), where))
	}
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ValueSpec:
				// Package-level variables of pooled pointer type are escape
				// hatches by construction.
				for _, name := range n.Names {
					obj, ok := p.Pkg.Info.Defs[name].(*types.Var)
					if !ok || obj.Parent() != p.Pkg.Types.Scope() {
						continue
					}
					if named := isPooledPtr(obj.Type()); named != nil {
						report(name, named, "a package-level variable")
					}
				}
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					named := isPooledPtr(p.TypeOf(lhs))
					if named == nil {
						continue
					}
					switch lhs := ast.Unparen(lhs).(type) {
					case *ast.Ident:
						if obj, ok := p.Pkg.Info.Uses[lhs].(*types.Var); ok && obj.Parent() == p.Pkg.Types.Scope() {
							report(lhs, named, "package-level variable "+lhs.Name)
						}
					case *ast.SelectorExpr:
						if obj, ok := p.Pkg.Info.Uses[lhs.Sel].(*types.Var); ok {
							if obj.IsField() {
								report(lhs, named, "struct field "+lhs.Sel.Name)
							} else if obj.Parent() != nil && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
								report(lhs, named, "package-level variable "+lhs.Sel.Name)
							}
						}
					case *ast.IndexExpr:
						report(lhs, named, "a container element")
					case *ast.StarExpr:
						report(lhs, named, "a pointer target")
					}
				}
			case *ast.CompositeLit:
				lt := p.TypeOf(n)
				if lt != nil {
					if slice, ok := lt.Underlying().(*types.Slice); ok && isPooledPtr(slice.Elem()) != nil {
						return true // freelist initialization: []*T{...}
					}
				}
				for _, elt := range n.Elts {
					v := elt
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						v = kv.Value
					}
					if named := isPooledPtr(p.TypeOf(v)); named != nil {
						report(v, named, "a composite literal")
					}
				}
			case *ast.CallExpr:
				id, ok := ast.Unparen(n.Fun).(*ast.Ident)
				if !ok || id.Name != "append" {
					return true
				}
				if _, ok := p.Pkg.Info.Uses[id].(*types.Builtin); !ok {
					return true
				}
				var elem types.Type
				if slice, ok := p.TypeOf(n).Underlying().(*types.Slice); ok {
					elem = slice.Elem()
				}
				for _, arg := range n.Args[1:] {
					named := isPooledPtr(p.TypeOf(arg))
					if named == nil {
						continue
					}
					if elem == nil || !types.Identical(elem, p.TypeOf(arg)) {
						report(arg, named, "a non-freelist slice via append")
					}
				}
			case *ast.FuncLit:
				checkPoolCapture(p, n, isPooledPtr, report)
			}
			return true
		})
	}
}

// checkPoolCapture flags closure captures of pooled record pointers: the
// closure may run (or be stored) after the record returns to its pool.
func checkPoolCapture(p *Pass, lit *ast.FuncLit, isPooledPtr func(types.Type) *types.Named, report func(ast.Node, *types.Named, string)) {
	flagged := make(map[*types.Var]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := p.Pkg.Info.Uses[id].(*types.Var)
		if !ok || flagged[obj] || obj.IsField() {
			return true
		}
		named := isPooledPtr(obj.Type())
		if named == nil {
			return true
		}
		// Declared inside the literal (parameter or local)?
		if obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End() {
			return true
		}
		// Package-level vars are flagged at their declaration already.
		if obj.Parent() != nil && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			return true
		}
		flagged[obj] = true
		report(id, named, "a closure capture of "+obj.Name())
		return true
	})
}

// pooledTypes returns the object identities of types annotated
// //spcoh:pooled in the package under analysis.
func pooledTypes(p *Pass) map[types.Object]bool {
	out := make(map[types.Object]bool)
	for _, file := range p.Pkg.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if hasMarker(gd.Doc, PooledAnnotation) || hasMarker(ts.Doc, PooledAnnotation) || hasMarker(ts.Comment, PooledAnnotation) {
					if obj := p.Pkg.Info.Defs[ts.Name]; obj != nil {
						out[obj] = true
					}
				}
			}
		}
	}
	return out
}
