package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

func init() {
	Register(Check{
		Name: "maprange",
		Doc: "range over a map has randomized iteration order; iterate " +
			"detutil.SortedKeys(m), prove the body commutative, or annotate //" + OrderedAnnotation,
		Run: checkMapRange,
	})
	Register(Check{
		Name: "wallclock",
		Doc: "wall-clock time or the global math/rand source in a simulation package; " +
			"use the event.Sim clock and an injected seeded *rand.Rand",
		SimOnly: true,
		Run:     checkWallClock,
	})
	Register(Check{
		Name: "goroutine",
		Doc: "goroutines and channel operations are forbidden in DES-driven packages; " +
			"the simulator is single-threaded by design",
		SimOnly: true,
		Run:     checkGoroutine,
	})
	Register(Check{
		Name: "floatorder",
		Doc: "floating-point accumulation inside a map-range body is " +
			"order-dependent (FP addition is not associative)",
		Run: checkFloatOrder,
	})
}

func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func isIntegerType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func isFloatType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// checkMapRange reports every range over a map value unless the statement
// is annotated ordered or the loop body is provably commutative.
func checkMapRange(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok || !isMapType(p.TypeOf(rng.X)) {
				return true
			}
			if p.Suppressed(rng.For) || commutativeBody(p, rng.Body) {
				return true
			}
			p.Report(rng.For, "maprange",
				fmt.Sprintf("iteration order over map %s is randomized; "+
					"range over detutil.SortedKeys or annotate //%s",
					types.ExprString(rng.X), OrderedAnnotation))
			return true
		})
	}
}

// commutativeBody reports whether every statement in the block keeps the
// loop order-independent: filling map entries, integer commutative
// accumulation (+=, |=, &=, ^=, ++/--), deletes, local definitions, and
// conditionals/blocks composed of the same. Anything else — appends, calls,
// sends, float math — defeats the proof and the range is reported.
func commutativeBody(p *Pass, body *ast.BlockStmt) bool {
	for _, st := range body.List {
		if !commutativeStmt(p, st) {
			return false
		}
	}
	return true
}

func commutativeStmt(p *Pass, st ast.Stmt) bool {
	switch s := st.(type) {
	case *ast.AssignStmt:
		return commutativeAssign(p, s)
	case *ast.IncDecStmt:
		return isMapIndex(p, s.X) || isIntegerType(p.TypeOf(s.X))
	case *ast.ExprStmt:
		// delete(m, k) is order-independent.
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "delete" {
				if b, ok := p.Pkg.Info.Uses[id].(*types.Builtin); ok && b.Name() == "delete" {
					return true
				}
			}
		}
		return false
	case *ast.IfStmt:
		if s.Init != nil && !commutativeStmt(p, s.Init) {
			return false
		}
		if !commutativeBody(p, s.Body) {
			return false
		}
		return s.Else == nil || commutativeStmt(p, s.Else)
	case *ast.BlockStmt:
		return commutativeBody(p, s)
	case *ast.BranchStmt:
		return s.Tok == token.CONTINUE
	case *ast.DeclStmt, *ast.EmptyStmt:
		return true
	}
	return false
}

func commutativeAssign(p *Pass, s *ast.AssignStmt) bool {
	switch s.Tok {
	case token.DEFINE:
		// Loop-local temporaries do not leak iteration order by themselves.
		return true
	case token.ASSIGN:
		// Plain stores are order-independent only when they land in map
		// entries (set semantics): m[k] = v.
		for _, lhs := range s.Lhs {
			if !isMapIndex(p, lhs) {
				return false
			}
		}
		return true
	case token.ADD_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		// Commutative, associative integer accumulation.
		for _, lhs := range s.Lhs {
			if isMapIndex(p, lhs) {
				if t := p.TypeOf(lhs); !isIntegerType(t) {
					return false
				}
				continue
			}
			if !isIntegerType(p.TypeOf(lhs)) {
				return false
			}
		}
		return true
	}
	return false
}

func isMapIndex(p *Pass, e ast.Expr) bool {
	ix, ok := e.(*ast.IndexExpr)
	return ok && isMapType(p.TypeOf(ix.X))
}

// wallClockFuncs are the time-package functions that read or depend on the
// host clock.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"Tick": true, "After": true, "AfterFunc": true,
	"NewTimer": true, "NewTicker": true,
}

// globalRandFuncs are the math/rand (and math/rand/v2) package-level
// functions drawing from the process-global source. Constructors such as
// rand.New and rand.NewSource are allowed: they are exactly how seeded
// *rand.Rand instances get injected.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "IntN": true, "Int31": true, "Int31n": true,
	"Int32": true, "Int32N": true, "Int63": true, "Int63n": true,
	"Int64": true, "Int64N": true, "Uint": true, "UintN": true,
	"Uint32": true, "Uint32N": true, "Uint64": true, "Uint64N": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true, "N": true,
}

// checkWallClock reports references (not just calls, so passing time.Now as
// a value is caught too) to wall-clock time functions and to the global
// math/rand source inside simulation packages.
func checkWallClock(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := p.Pkg.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // methods (e.g. (*rand.Rand).Intn) are fine
			}
			switch fn.Pkg().Path() {
			case "time":
				if wallClockFuncs[fn.Name()] {
					p.Report(sel.Pos(), "wallclock",
						fmt.Sprintf("time.%s reads the host clock; simulation time must come from event.Sim", fn.Name()))
				}
			case "math/rand", "math/rand/v2":
				if globalRandFuncs[fn.Name()] {
					p.Report(sel.Pos(), "wallclock",
						fmt.Sprintf("%s.%s draws from the process-global source; inject a seeded *rand.Rand", fn.Pkg().Name(), fn.Name()))
				}
			}
			return true
		})
	}
}

// checkGoroutine reports go statements and channel operations: the DES is
// single-threaded, and any concurrency makes event order host-dependent.
func checkGoroutine(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.GoStmt:
				p.Report(s.Pos(), "goroutine", "go statement in a DES-driven package; schedule an event.Sim callback instead")
			case *ast.SendStmt:
				p.Report(s.Pos(), "goroutine", "channel send in a DES-driven package")
			case *ast.SelectStmt:
				p.Report(s.Pos(), "goroutine", "select in a DES-driven package")
			case *ast.UnaryExpr:
				if s.Op == token.ARROW {
					p.Report(s.Pos(), "goroutine", "channel receive in a DES-driven package")
				}
			case *ast.RangeStmt:
				if t := p.TypeOf(s.X); t != nil {
					if _, ok := t.Underlying().(*types.Chan); ok {
						p.Report(s.For, "goroutine", "range over channel in a DES-driven package")
					}
				}
			}
			return true
		})
	}
}

// checkFloatOrder reports floating-point compound accumulation inside
// map-range bodies: even if every element is visited, the accumulated sum
// depends on visit order.
func checkFloatOrder(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok || !isMapType(p.TypeOf(rng.X)) || p.Suppressed(rng.For) {
				return true
			}
			ast.Inspect(rng.Body, func(inner ast.Node) bool {
				switch s := inner.(type) {
				case *ast.AssignStmt:
					switch s.Tok {
					case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
						for _, lhs := range s.Lhs {
							if isFloatType(p.TypeOf(lhs)) {
								p.Report(s.Pos(), "floatorder",
									"floating-point accumulation inside a map range; the result depends on iteration order")
							}
						}
					}
				}
				return true
			})
			return true
		})
	}
}
