// Package wallclock exercises the wallclock check: host-clock reads and
// the global math/rand source are hazards in simulation packages; injected
// seeded *rand.Rand instances are the sanctioned alternative.
package wallclock

import (
	"math/rand"
	"time"
)

func clock() int64 {
	t := time.Now()              // want:wallclock
	time.Sleep(time.Millisecond) // want:wallclock
	return t.UnixNano()
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want:wallclock
}

func reference() func() time.Time {
	return time.Now // want:wallclock
}

// timers: every host-timer constructor is as non-deterministic as reading
// the clock directly.
func timers() (*time.Timer, *time.Ticker, <-chan time.Time) {
	t := time.NewTimer(time.Millisecond)  // want:wallclock
	k := time.NewTicker(time.Millisecond) // want:wallclock
	a := time.After(time.Millisecond)     // want:wallclock
	return t, k, a
}

func globalRand(n int) int {
	rand.Shuffle(n, func(i, j int) {}) // want:wallclock
	return rand.Intn(n)                // want:wallclock
}

// seeded uses the injected-source idiom: constructors and methods are fine.
func seeded(seed int64, n int) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(n)
}

// duration arithmetic without reading the clock is fine.
func budget(d time.Duration) time.Duration { return 2 * d }
