// Package event is a miniature stand-in for the DES engine so the obspure
// fixture can exercise the deny list against real scheduling APIs.
package event

// Time is the simulated clock.
type Time int64

// Sim is the mini event loop.
type Sim struct {
	now Time
	obs func(now Time, depth int)
	q   []func()
}

// Now returns the current simulated time.
func (s *Sim) Now() Time { return s.now }

// At schedules fn; calling it from an observer is a purity violation.
func (s *Sim) At(t Time, fn func()) {
	s.q = append(s.q, fn)
}

// SetObserver attaches the per-step observer hook.
func (s *Sim) SetObserver(obs func(now Time, depth int)) {
	s.obs = obs
}
