// Package noc is a miniature stand-in for the interconnect: it declares the
// Observer interface the obspure check keys its first root family on.
package noc

import "fix/internal/event"

// Observer receives interconnect telemetry.
type Observer interface {
	Deliver(now event.Time, bytes int)
}

// Network is the mini interconnect.
type Network struct {
	obs Observer
	n   int
}

// SetObserver attaches telemetry.
func (n *Network) SetObserver(o Observer) { n.obs = o }

// Send injects traffic; calling it from an observer is a purity violation.
func (n *Network) Send(bytes int) { n.n += bytes }
