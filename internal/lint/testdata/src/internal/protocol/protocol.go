// Package protocol is a miniature stand-in for the coherence protocol: it
// declares the Obs hook struct the obspure check keys its second root
// family on.
package protocol

import "fix/internal/event"

// Obs carries the metrics hooks of the mini protocol.
type Obs struct {
	Message func(bytes int)
	Miss    func(lat event.Time)
}

// System owns the hooks.
type System struct {
	Sim *event.Sim
	obs *Obs
}

// SetObserver attaches (or detaches) the metrics hooks.
func (s *System) SetObserver(o *Obs) { s.obs = o }
