// Package noalloc exercises the noalloc check: functions annotated
// //spcoh:noalloc must produce no escape-analysis heap diagnostics.
package noalloc

type rec struct {
	id int
	fn func() int
}

var sink *rec

// escapes leaks a stack value; the compiler moves it to the heap.
//
//spcoh:noalloc
func escapes() *int {
	x := 42 // want:noalloc
	return &x
}

// closure allocates a capturing func literal on the heap.
//
//spcoh:noalloc
func closure(n int) func() int {
	return func() int { return n } // want:noalloc
}

// stores publishes a record through a global.
//
//spcoh:noalloc
func stores(id int) {
	sink = &rec{id: id} // want:noalloc
}

// clean is genuinely allocation-free: stack arithmetic only.
//
//spcoh:noalloc
func clean(a, b int) int {
	if a > b {
		return a - b
	}
	return b - a
}

// refill models a cold-path pool refill inside a hot function: the
// allocation is acknowledged inline.
//
//spcoh:noalloc
func refill(pool []*rec) ([]*rec, *rec) {
	if k := len(pool); k > 0 {
		return pool[:k-1], pool[k-1]
	}
	return pool, &rec{} //spvet:allow noalloc -- cold-path pool refill, amortized away
}

// unannotated functions may allocate freely.
func unannotated() *rec {
	return &rec{id: 1}
}
