// Package allow exercises the suppression directive validator: reasons are
// mandatory, and directives naming unknown checks are called out.
package allow

type m map[int]int

// flat carries a malformed suppression (no "-- reason"): the directive is
// reported and the underlying finding still fires.
func flat(xs m) []int {
	var out []int
	//spvet:allow maprange want:allow
	for _, v := range xs { // want:maprange
		out = append(out, v)
	}
	return out
}

// typo'd check names are warned about (the suppression has no effect).
//
//spvet:allow nosuchcheck -- reason present, name wrong; surfaces as want:allow
func unknownCheck() int { return 1 }

// a well-formed allow with a reason suppresses the finding on its line.
func keys(xs m) []int {
	out := make([]int, 0, len(xs))
	for k := range xs { //spvet:allow maprange -- the caller sorts before use
		out = append(out, k)
	}
	return out
}
