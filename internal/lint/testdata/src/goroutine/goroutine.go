// Package goroutine exercises the goroutine check: the DES is
// single-threaded, so go statements and channel operations are hazards.
package goroutine

func spawn(f func()) {
	go f() // want:goroutine
}

func channels(ch chan int) int {
	ch <- 1   // want:goroutine
	v := <-ch // want:goroutine
	select {  // want:goroutine
	default:
	}
	for x := range ch { // want:goroutine
		v += x
	}
	return v
}

// plain callbacks are the sanctioned alternative: no finding.
func callback(after func(func()), f func()) {
	after(f)
}

// A scoped suppression with a reason quiets the check on its line (and the
// line directly below, for the comment-above form) — the pattern the
// deterministic sharded executor's worker pool uses (internal/event). A
// bare go statement outside that window still fires, so the allow cannot
// leak across the function.
func pool(w func(int), f func()) {
	go w(0) //spvet:allow goroutine -- deterministic barrier-merged shard pool

	go f() // want:goroutine
}
