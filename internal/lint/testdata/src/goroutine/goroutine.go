// Package goroutine exercises the goroutine check: the DES is
// single-threaded, so go statements and channel operations are hazards.
package goroutine

func spawn(f func()) {
	go f() // want:goroutine
}

func channels(ch chan int) int {
	ch <- 1   // want:goroutine
	v := <-ch // want:goroutine
	select {  // want:goroutine
	default:
	}
	for x := range ch { // want:goroutine
		v += x
	}
	return v
}

// plain callbacks are the sanctioned alternative: no finding.
func callback(after func(func()), f func()) {
	after(f)
}
