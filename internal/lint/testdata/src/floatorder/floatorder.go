// Package floatorder exercises the floatorder check: accumulating floats
// inside a map-range body gives order-dependent results.
package floatorder

func sum(m map[string]float64) float64 {
	var s float64
	for _, v := range m { // want:maprange
		s += v // want:floatorder
	}
	return s
}

func product(m map[int]float64) float64 {
	p := 1.0
	for _, v := range m { // want:maprange
		p *= v // want:floatorder
	}
	return p
}

// annotation suppresses both findings on the loop.
func annotated(m map[string]float64) float64 {
	var s float64
	//spvet:ordered — caller tolerates ULP-level wobble
	for _, v := range m {
		s += v
	}
	return s
}

// integer accumulation in a map range is commutative: no finding.
func intSum(m map[string]int) int {
	s := 0
	for _, v := range m {
		s += v
	}
	return s
}

// float accumulation over a slice is ordered: no finding.
func sliceSum(vs []float64) float64 {
	var s float64
	for _, v := range vs {
		s += v
	}
	return s
}
