// Package maprange exercises the maprange check: bare ranges over maps are
// hazards; commutative-body loops and annotated loops are not.
package maprange

func bare(m map[string]int) []string {
	var out []string
	for k := range m { // want:maprange
		out = append(out, k)
	}
	return out
}

func bareValues(m map[int]float64) float64 {
	best := 0.0
	for _, v := range m { // want:maprange
		if v > best {
			best = v
		}
	}
	return best
}

func nested(m map[int]map[int]int) []int {
	var sizes []int
	for _, inner := range m { // want:maprange
		sizes = append(sizes, len(inner))
	}
	return sizes
}

// nestedCommutative sums sizes into an integer: order-independent, allowed.
func nestedCommutative(m map[int]map[int]int) int {
	n := 0
	for _, inner := range m {
		n += len(inner)
	}
	return n
}

// commutative loops only fill maps or integer accumulators: allowed.
func commutative(m map[string]int, other map[string]int) int {
	total := 0
	for k, v := range m {
		other[k] = v
		other[k] += 1
		total += v
		if v > 10 {
			delete(other, k)
			continue
		}
		counted := v * 2
		other[k] = counted
	}
	return total
}

func commutativeIncr(m map[int]bool, hits map[int]int) {
	for k := range m {
		hits[k]++
	}
}

// annotated loops are suppressed, trailing or on the line above.
func annotatedTrailing(m map[string]int) []string {
	var out []string
	for k := range m { //spvet:ordered — sorted by the caller
		out = append(out, k)
	}
	return out
}

func annotatedAbove(m map[string]int) []string {
	var out []string
	//spvet:ordered — sorted by the caller
	for k := range m {
		out = append(out, k)
	}
	return out
}

// sliceRange is the deterministic idiom: no finding.
func sliceRange(keys []string, m map[string]int) int {
	n := 0
	for _, k := range keys {
		n += m[k]
	}
	return n
}

// appendDefeats shows that an append breaks the commutativity proof even
// when mixed with allowed statements.
func appendDefeats(m map[string]int, other map[string]int) []int {
	var out []int
	for k, v := range m { // want:maprange
		other[k] = v
		out = append(out, v)
	}
	return out
}
