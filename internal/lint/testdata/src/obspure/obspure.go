// Package obspure exercises the observer-purity check: code reachable from
// observer callbacks must not mutate the simulation, schedule events, or
// make calls the analyzer cannot resolve.
package obspure

import (
	"fix/internal/event"
	"fix/internal/noc"
	"fix/internal/protocol"
)

// collector implements noc.Observer (root family 1).
type collector struct {
	sim      *event.Sim
	net      *noc.Network
	delivers int
	bytes    int
	fns      []func()
}

// Deliver is an observer method that injects traffic: impure.
func (c *collector) Deliver(now event.Time, bytes int) {
	c.delivers++
	c.net.Send(bytes) // want:obspure
}

// onStep is registered via Sim.SetObserver (root family 3); the violation
// sits one call deep.
func (c *collector) onStep(now event.Time, depth int) {
	c.record(depth)
}

func (c *collector) record(depth int) {
	c.sim.At(c.sim.Now()+1, nil) // want:obspure
	c.delivers += depth
}

// missHook is wired through a protocol.Obs literal (root family 2) and
// makes a dynamic call the analyzer cannot resolve.
func (c *collector) missHook(lat event.Time) {
	c.fns[0]() // want:obspure
}

func attach(c *collector, sys *protocol.System) {
	c.sim.SetObserver(c.onStep)
	sys.SetObserver(&protocol.Obs{
		Message: func(bytes int) { c.bytes += bytes },
		Miss:    c.missHook,
	})
}

// attachProbe registers a deliberately self-scheduling observer; the
// violation is acknowledged inline, so it must not be reported.
func attachProbe(c *collector) {
	c.sim.SetObserver(func(now event.Time, depth int) {
		c.sim.At(now+1, nil) //spvet:allow obspure -- fixture: sanctioned scheduling probe
	})
}

// pure paths — counter updates, arithmetic, calls to pure helpers — are
// fine at any depth.
func (c *collector) rate() int {
	if c.delivers == 0 {
		return 0
	}
	return c.bytes / c.delivers
}
