// Package exhaustive exercises the exhaustive check: a switch over a
// module-declared integer enum must cover every declared constant or carry
// an explicit default clause.
package exhaustive

// Kind is an enum family: a named integer type with >= 2 constants.
type Kind uint8

const (
	KindA Kind = iota
	KindB
	KindC
)

// KindAlias shares KindC's value; covering the value covers both names.
const KindAlias = KindC

func missing(k Kind) int {
	switch k { // want:exhaustive
	case KindA:
		return 1
	case KindB:
		return 2
	}
	return 0
}

func full(k Kind) int {
	switch k {
	case KindA, KindB:
		return 1
	case KindC:
		return 2
	}
	return 0
}

func defaulted(k Kind) int {
	switch k {
	case KindA:
		return 1
	default: // KindB and KindC deliberately share the fallback
		return 0
	}
}

// nonConstant case expressions leave no finite cover to verify: skipped.
func nonConstant(k, other Kind) int {
	switch k {
	case other:
		return 1
	}
	return 0
}

func suppressed(k Kind) int {
	//spvet:allow exhaustive -- KindC is filtered out by every caller
	switch k {
	case KindA, KindB:
		return 1
	}
	return 0
}

// tiny has a single constant: not an enum family, never checked.
type tiny int

const onlyTiny tiny = 1

func single(t tiny) bool {
	switch t {
	case onlyTiny:
		return true
	}
	return false
}

// untagged and non-enum switches are out of scope.
func untagged(n int) int {
	switch {
	case n > 0:
		return 1
	}
	switch n {
	case 0:
		return 2
	}
	return 0
}
