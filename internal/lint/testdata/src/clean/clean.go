// Package clean is a fully deterministic fixture: the analyzer must report
// nothing here.
package clean

import (
	"math/rand"
	"sort"
)

type stats struct {
	count map[string]int
}

func (s *stats) sortedKeys() []string {
	keys := make([]string, 0, len(s.count))
	for k := range s.count { //spvet:ordered — sorted below
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func (s *stats) total() int {
	n := 0
	for _, v := range s.count {
		n += v
	}
	return n
}

func (s *stats) render() []string {
	var out []string
	for _, k := range s.sortedKeys() {
		out = append(out, k)
	}
	return out
}

func pick(r *rand.Rand, n int) int { return r.Intn(n) }
