// Package poolescape exercises the poolescape check: pointers to pooled
// record types must not be stored anywhere that can outlive their callback.
package poolescape

// rec is a pooled scheduling record.
//
//spcoh:pooled
type rec struct {
	v int
}

// pool is the freelist: a []*rec slice fed by append, the sanctioned store.
var pool []*rec

var leakGlobal *rec // want:poolescape

type holder struct {
	r *rec
}

func get() *rec {
	if k := len(pool); k > 0 {
		r := pool[k-1]
		pool = pool[:k-1]
		return r
	}
	return &rec{}
}

func put(r *rec) {
	pool = append(pool, r)
}

func leaks(h *holder, m map[int]*rec, s []*rec, r *rec) {
	h.r = r          // want:poolescape
	m[0] = r         // want:poolescape
	s[0] = r         // want:poolescape
	leakGlobal = r   // want:poolescape
	_ = holder{r: r} // want:poolescape
}

var sink []any

func anyAppend(r *rec) {
	sink = append(sink, r) // want:poolescape
}

func captures(r *rec) func() int {
	return func() int { return r.v } // want:poolescape
}

// passing records as call arguments and returning them is the normal
// life cycle (ride the event queue, come back to the pool).
func allowedUses(r *rec) *rec {
	put(r)
	local := r
	return local
}

// ownership transfer acknowledged inline: suppressed, not reported.
func transfer(h *holder, r *rec) {
	h.r = r //spvet:allow poolescape -- ownership transferred; holder frees it
}
