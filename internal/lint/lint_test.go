package lint

import (
	"bufio"
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// wantRe matches expectation markers in fixture files: "// want:check".
var wantRe = regexp.MustCompile(`want:([a-z]+)`)

// fixtureAnalyzer treats every fixture package as a simulation package so
// the SimOnly checks run.
func fixtureAnalyzer(t *testing.T) *Analyzer {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	return &Analyzer{
		ModRoot: root,
		ModPath: "fix",
		IsSim:   func(string) bool { return true },
	}
}

// wantedFindings scans a fixture package directory for marker comments and
// returns the expected "file:line check" set.
func wantedFindings(t *testing.T, pkg string) map[string]bool {
	t.Helper()
	dir := filepath.Join("testdata", "src", pkg)
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[string]bool)
	for _, e := range ents {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			for _, m := range wantRe.FindAllStringSubmatch(sc.Text(), -1) {
				want[fmt.Sprintf("%s/%s:%d %s", pkg, e.Name(), line, m[1])] = true
			}
		}
		f.Close()
	}
	return want
}

func TestChecksAgainstFixtures(t *testing.T) {
	cases := []struct {
		pkg string
		// minimum number of findings the fixture must produce, to guard
		// against a fixture whose markers silently stopped matching.
		atLeast int
	}{
		{"maprange", 4},
		{"wallclock", 8},
		{"goroutine", 6},
		{"floatorder", 4},
		{"exhaustive", 1},
		{"noalloc", 3},
		{"poolescape", 8},
		{"obspure", 3},
		{"allow", 3},
		{"clean", 0},
	}
	for _, tc := range cases {
		t.Run(tc.pkg, func(t *testing.T) {
			a := fixtureAnalyzer(t)
			findings, err := a.Run("./" + tc.pkg)
			if err != nil {
				t.Fatal(err)
			}
			got := make(map[string]bool)
			for _, f := range findings {
				key := fmt.Sprintf("%s:%d %s", filepath.ToSlash(f.Pos.Filename), f.Pos.Line, f.Check)
				got[key] = true
			}
			want := wantedFindings(t, tc.pkg)
			if len(want) < tc.atLeast {
				t.Fatalf("fixture %s declares %d markers, expected at least %d", tc.pkg, len(want), tc.atLeast)
			}
			for k := range want {
				if !got[k] {
					t.Errorf("missing finding %s", k)
				}
			}
			for k := range got {
				if !want[k] {
					t.Errorf("unexpected finding %s", k)
				}
			}
		})
	}
}

func TestFindingString(t *testing.T) {
	a := fixtureAnalyzer(t)
	findings, err := a.Run("./floatorder")
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) == 0 {
		t.Fatal("no findings")
	}
	s := findings[0].String()
	re := regexp.MustCompile(`^floatorder/floatorder\.go:\d+: \[[a-z]+\] .+`)
	if !re.MatchString(filepath.ToSlash(s)) {
		t.Fatalf("finding format = %q", s)
	}
}

func TestFindingsSorted(t *testing.T) {
	a := fixtureAnalyzer(t)
	findings, err := a.Run("./...")
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, len(findings))
	for i, f := range findings {
		keys[i] = fmt.Sprintf("%s:%08d:%s", f.Pos.Filename, f.Pos.Line, f.Check)
	}
	if !sort.StringsAreSorted(keys) {
		t.Fatalf("findings not sorted:\n%s", strings.Join(keys, "\n"))
	}
}

func TestSimOnlyScoping(t *testing.T) {
	// With IsSim == nil, the wallclock and goroutine checks must not run.
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	a := &Analyzer{ModRoot: root, ModPath: "fix"}
	findings, err := a.Run("./wallclock", "./goroutine")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		if f.Check == "wallclock" || f.Check == "goroutine" {
			t.Errorf("SimOnly check %s ran on a non-sim package: %s", f.Check, f)
		}
	}
}

func TestRegistry(t *testing.T) {
	names := make(map[string]bool)
	for _, c := range Checks() {
		if c.Name == "" || c.Doc == "" || (c.Run == nil && c.RunModule == nil) {
			t.Errorf("check %+v incomplete", c.Name)
		}
		if c.Severity != SevError && c.Severity != SevWarn {
			t.Errorf("check %s has no severity", c.Name)
		}
		names[c.Name] = true
	}
	for _, want := range []string{
		"maprange", "wallclock", "goroutine", "floatorder",
		"exhaustive", "noalloc", "obspure", "poolescape", "allow",
	} {
		if !names[want] {
			t.Errorf("check %s not registered", want)
		}
	}
}

// TestDefaultIsSim pins the production package classification: DES-driven
// packages are sim (SimOnly checks apply); the analyzer and the host-side
// sweep orchestrator are not.
func TestDefaultIsSim(t *testing.T) {
	isSim := DefaultIsSim("spcoh")
	for path, want := range map[string]bool{
		"spcoh/internal/sim":         true,
		"spcoh/internal/protocol":    true,
		"spcoh/internal/experiments": true,
		"spcoh/internal/scenario":    true,
		"spcoh/internal/runcfg":      true,
		"spcoh/internal/lint":        false,
		"spcoh/internal/sweep":       false,
		"spcoh/internal/sweepd":      false,
		// An exemption must cover exactly its own subtree: a sibling that
		// merely shares the prefix stays sim.
		"spcoh/internal/sweepdx": true,
		"spcoh/cmd/spsweep":      false,
		"spcoh":                  false,
	} {
		if got := isSim(path); got != want {
			t.Errorf("DefaultIsSim(%q) = %v, want %v", path, got, want)
		}
	}
}

// TestRepoIsClean runs the production configuration over the repository
// itself: the tree must stay spvet-clean.
func TestRepoIsClean(t *testing.T) {
	root, modPath, err := FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	a := &Analyzer{
		ModRoot: root,
		ModPath: modPath,
		IsSim:   DefaultIsSim(modPath),
	}
	findings, err := a.Run("./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

// TestParseAllow pins the suppression grammar: check names, a mandatory
// "--" separator, and a mandatory non-empty reason.
func TestParseAllow(t *testing.T) {
	cases := []struct {
		text    string
		wantErr bool
		checks  int
	}{
		{"spvet:allow noalloc -- pool refill", false, 1},
		{"spvet:allow noalloc,obspure -- two at once", false, 2},
		{"spvet:allow noalloc obspure -- space separated", false, 2},
		{"spvet:allow noalloc", true, 0},
		{"spvet:allow noalloc --", true, 0},
		{"spvet:allow noalloc --   ", true, 0},
		{"spvet:allow -- reason but no checks", true, 0},
	}
	for _, tc := range cases {
		d := parseAllow(tc.text, token.Position{})
		if (d.err != "") != tc.wantErr {
			t.Errorf("parseAllow(%q): err = %q, wantErr = %v", tc.text, d.err, tc.wantErr)
		}
		if !tc.wantErr && len(d.checks) != tc.checks {
			t.Errorf("parseAllow(%q): %d checks, want %d", tc.text, len(d.checks), tc.checks)
		}
	}
}

// TestAllowSeverities pins the meta-check's two severities: malformed
// directives are errors, typo'd check names are warnings.
func TestAllowSeverities(t *testing.T) {
	a := fixtureAnalyzer(t)
	findings, err := a.Run("./allow")
	if err != nil {
		t.Fatal(err)
	}
	var errors, warns int
	for _, f := range findings {
		if f.Check != "allow" {
			continue
		}
		switch f.Severity {
		case SevError:
			errors++
			if !strings.Contains(f.Msg, "reason") {
				t.Errorf("malformed-directive finding lacks grammar hint: %s", f)
			}
		case SevWarn:
			warns++
			if !strings.Contains(f.Msg, "nosuchcheck") {
				t.Errorf("unknown-check finding does not name the typo: %s", f)
			}
		}
	}
	if errors != 1 || warns != 1 {
		t.Fatalf("allow findings: %d errors, %d warns (want 1 and 1):\n%v", errors, warns, findings)
	}
}

// TestBaselinePartition pins the multiset matching: each entry absorbs one
// finding, by (file, check, msg) and independent of line numbers.
func TestBaselinePartition(t *testing.T) {
	mk := func(file string, line int, check, msg string) Finding {
		return Finding{Pos: token.Position{Filename: file, Line: line}, Check: check, Msg: msg}
	}
	b := &Baseline{Version: BaselineVersion, Entries: []BaselineEntry{
		{File: "cmd/x/main.go", Check: "maprange", Msg: "legacy"},
	}}
	findings := []Finding{
		mk("cmd/x/main.go", 10, "maprange", "legacy"),
		mk("cmd/x/main.go", 20, "maprange", "legacy"),
		mk("cmd/x/main.go", 30, "wallclock", "new"),
	}
	fresh, baselined := b.Partition(findings)
	if len(baselined) != 1 || baselined[0].Pos.Line != 10 {
		t.Fatalf("baselined = %v", baselined)
	}
	if len(fresh) != 2 {
		t.Fatalf("fresh = %v", fresh)
	}
}

// TestBaselineValidate pins the empty-sim-baseline policy.
func TestBaselineValidate(t *testing.T) {
	isSim := DefaultIsSim("spcoh")
	ok := &Baseline{Version: BaselineVersion, Entries: []BaselineEntry{
		{File: "cmd/spstat/main.go", Check: "maprange", Msg: "legacy"},
	}}
	if err := ok.Validate("spcoh", isSim); err != nil {
		t.Fatalf("non-sim entry rejected: %v", err)
	}
	bad := &Baseline{Version: BaselineVersion, Entries: []BaselineEntry{
		{File: "internal/protocol/node.go", Check: "exhaustive", Msg: "legacy"},
	}}
	if err := bad.Validate("spcoh", isSim); err == nil {
		t.Fatal("sim-package baseline entry accepted")
	}
}

// TestBaselineRoundTrip writes findings out and reads them back.
func TestBaselineRoundTrip(t *testing.T) {
	file := filepath.Join(t.TempDir(), "baseline.json")
	findings := []Finding{
		{Pos: token.Position{Filename: "cmd/x/main.go", Line: 3}, Check: "maprange", Msg: "m"},
		{Pos: token.Position{Filename: "cmd/a/main.go", Line: 9}, Check: "wallclock", Msg: "w"},
	}
	if err := WriteBaseline(file, findings); err != nil {
		t.Fatal(err)
	}
	b, err := LoadBaseline(file)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Entries) != 2 || b.Entries[0].File != "cmd/a/main.go" {
		t.Fatalf("round-tripped entries = %+v", b.Entries)
	}
	fresh, baselined := b.Partition(findings)
	if len(fresh) != 0 || len(baselined) != 2 {
		t.Fatalf("round-trip partition: fresh=%v baselined=%v", fresh, baselined)
	}
}

// TestRepoBaselineEmpty pins the shipped baseline: the repository tolerates
// no legacy findings at all, sim packages or otherwise.
func TestRepoBaselineEmpty(t *testing.T) {
	root, modPath, err := FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	b, err := LoadBaseline(filepath.Join(root, ".spvet-baseline.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Entries) != 0 {
		t.Fatalf("shipped baseline carries %d entries; the tree must stay clean", len(b.Entries))
	}
	if err := b.Validate(modPath, DefaultIsSim(modPath)); err != nil {
		t.Fatal(err)
	}
}

// TestNoallocAnnotationConsistency is the CI gate tying the //spcoh:noalloc
// set to the AllocsPerRun benchmark ceilings: every function whose
// zero-allocation behaviour is pinned by a benchmark test must carry the
// annotation, so the static check guards what the benchmarks measure.
func TestNoallocAnnotationConsistency(t *testing.T) {
	root, modPath, err := FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	loader := NewLoader(root, modPath)
	pkgs, err := loader.Load("./internal/event", "./internal/noc")
	if err != nil {
		t.Fatal(err)
	}
	// The zero-alloc ceilings asserted by internal/event/bench_test.go and
	// internal/noc/bench_test.go.
	want := map[string]bool{
		"internal/event.At":   true,
		"internal/event.AtFn": true,
		"internal/event.Step": true,
		"internal/noc.SendFn": true,
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				key := pkg.Dir + "." + fd.Name.Name
				if want[key] {
					if !hasMarker(fd.Doc, NoallocAnnotation) {
						t.Errorf("%s.%s has a zero-alloc benchmark ceiling but no //%s annotation",
							pkg.Dir, fd.Name.Name, NoallocAnnotation)
					}
					delete(want, key)
				}
			}
		}
	}
	for key := range want {
		t.Errorf("benchmark-pinned function %s not found", key)
	}
}
