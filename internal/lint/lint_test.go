package lint

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// wantRe matches expectation markers in fixture files: "// want:check".
var wantRe = regexp.MustCompile(`want:([a-z]+)`)

// fixtureAnalyzer treats every fixture package as a simulation package so
// the SimOnly checks run.
func fixtureAnalyzer(t *testing.T) *Analyzer {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	return &Analyzer{
		ModRoot: root,
		ModPath: "fix",
		IsSim:   func(string) bool { return true },
	}
}

// wantedFindings scans a fixture package directory for marker comments and
// returns the expected "file:line check" set.
func wantedFindings(t *testing.T, pkg string) map[string]bool {
	t.Helper()
	dir := filepath.Join("testdata", "src", pkg)
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[string]bool)
	for _, e := range ents {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			for _, m := range wantRe.FindAllStringSubmatch(sc.Text(), -1) {
				want[fmt.Sprintf("%s/%s:%d %s", pkg, e.Name(), line, m[1])] = true
			}
		}
		f.Close()
	}
	return want
}

func TestChecksAgainstFixtures(t *testing.T) {
	cases := []struct {
		pkg string
		// minimum number of findings the fixture must produce, to guard
		// against a fixture whose markers silently stopped matching.
		atLeast int
	}{
		{"maprange", 4},
		{"wallclock", 5},
		{"goroutine", 5},
		{"floatorder", 4},
		{"clean", 0},
	}
	for _, tc := range cases {
		t.Run(tc.pkg, func(t *testing.T) {
			a := fixtureAnalyzer(t)
			findings, err := a.Run("./" + tc.pkg)
			if err != nil {
				t.Fatal(err)
			}
			got := make(map[string]bool)
			for _, f := range findings {
				key := fmt.Sprintf("%s:%d %s", filepath.ToSlash(f.Pos.Filename), f.Pos.Line, f.Check)
				got[key] = true
			}
			want := wantedFindings(t, tc.pkg)
			if len(want) < tc.atLeast {
				t.Fatalf("fixture %s declares %d markers, expected at least %d", tc.pkg, len(want), tc.atLeast)
			}
			for k := range want {
				if !got[k] {
					t.Errorf("missing finding %s", k)
				}
			}
			for k := range got {
				if !want[k] {
					t.Errorf("unexpected finding %s", k)
				}
			}
		})
	}
}

func TestFindingString(t *testing.T) {
	a := fixtureAnalyzer(t)
	findings, err := a.Run("./floatorder")
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) == 0 {
		t.Fatal("no findings")
	}
	s := findings[0].String()
	re := regexp.MustCompile(`^floatorder/floatorder\.go:\d+: \[[a-z]+\] .+`)
	if !re.MatchString(filepath.ToSlash(s)) {
		t.Fatalf("finding format = %q", s)
	}
}

func TestFindingsSorted(t *testing.T) {
	a := fixtureAnalyzer(t)
	findings, err := a.Run("./...")
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, len(findings))
	for i, f := range findings {
		keys[i] = fmt.Sprintf("%s:%08d:%s", f.Pos.Filename, f.Pos.Line, f.Check)
	}
	if !sort.StringsAreSorted(keys) {
		t.Fatalf("findings not sorted:\n%s", strings.Join(keys, "\n"))
	}
}

func TestSimOnlyScoping(t *testing.T) {
	// With IsSim == nil, the wallclock and goroutine checks must not run.
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	a := &Analyzer{ModRoot: root, ModPath: "fix"}
	findings, err := a.Run("./wallclock", "./goroutine")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		if f.Check == "wallclock" || f.Check == "goroutine" {
			t.Errorf("SimOnly check %s ran on a non-sim package: %s", f.Check, f)
		}
	}
}

func TestRegistry(t *testing.T) {
	names := make(map[string]bool)
	for _, c := range Checks() {
		if c.Name == "" || c.Doc == "" || c.Run == nil {
			t.Errorf("check %+v incomplete", c.Name)
		}
		names[c.Name] = true
	}
	for _, want := range []string{"maprange", "wallclock", "goroutine", "floatorder"} {
		if !names[want] {
			t.Errorf("check %s not registered", want)
		}
	}
}

// TestDefaultIsSim pins the production package classification: DES-driven
// packages are sim (SimOnly checks apply); the analyzer and the host-side
// sweep orchestrator are not.
func TestDefaultIsSim(t *testing.T) {
	isSim := DefaultIsSim("spcoh")
	for path, want := range map[string]bool{
		"spcoh/internal/sim":         true,
		"spcoh/internal/protocol":    true,
		"spcoh/internal/experiments": true,
		"spcoh/internal/lint":        false,
		"spcoh/internal/sweep":       false,
		"spcoh/cmd/spsweep":          false,
		"spcoh":                      false,
	} {
		if got := isSim(path); got != want {
			t.Errorf("DefaultIsSim(%q) = %v, want %v", path, got, want)
		}
	}
}

// TestRepoIsClean runs the production configuration over the repository
// itself: the tree must stay spvet-clean.
func TestRepoIsClean(t *testing.T) {
	root, modPath, err := FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	a := &Analyzer{
		ModRoot: root,
		ModPath: modPath,
		IsSim:   DefaultIsSim(modPath),
	}
	findings, err := a.Run("./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
