// Package cache implements the set-associative cache arrays used for the
// private L1 and L2 caches: LRU replacement and MESIF line states
// (paper Table 4: 64B lines; L1 16KB direct-mapped; L2 1MB 8-way).
//
// The package stores coherence metadata only — the simulator never models
// data values, just which lines are resident and in which state.
package cache

import (
	"fmt"

	"spcoh/internal/arch"
)

// State is a MESIF coherence state. The F (Forward) state marks the single
// shared copy responsible for servicing cache-to-cache transfers of clean
// data, the distinguishing feature of MESIF over MESI.
type State uint8

const (
	Invalid State = iota
	Shared
	Exclusive
	Modified
	Forward
)

// String returns the one-letter MESIF name.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	case Forward:
		return "F"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// Valid reports whether the state holds a readable copy.
func (s State) Valid() bool { return s != Invalid }

// CanForward reports whether a cache in this state must respond with data to
// a predicted or forwarded request (paper §4.5: E, M or F).
func (s State) CanForward() bool { return s == Exclusive || s == Modified || s == Forward }

// Dirty reports whether eviction requires a writeback.
func (s State) Dirty() bool { return s == Modified }

// Line is one cache line's metadata.
type Line struct {
	Addr  arch.LineAddr
	State State
	lru   uint64 // last-touch stamp
}

// Config sizes a cache.
type Config struct {
	Bytes int // total capacity
	Ways  int // associativity (1 = direct-mapped)
}

// Sets returns the number of sets implied by the configuration.
func (c Config) Sets() int { return c.Bytes / (arch.LineSize * c.Ways) }

// Stats counts cache activity.
type Stats struct {
	Hits       uint64
	Misses     uint64
	Evictions  uint64
	Writebacks uint64
}

// Cache is a set-associative array of Lines with true-LRU replacement.
// Lines live in one flat dense array (set-major), not a slice per set: the
// big-mesh profiles showed the per-set pointer chase dominating lookup cost
// once hundreds of tiles' arrays compete for the host cache.
type Cache struct {
	cfg   Config
	lines []Line
	ways  int
	clock uint64
	stats Stats
	mask  uint64
}

// New builds a cache. Capacity must be a positive multiple of
// LineSize*Ways and the set count must be a power of two.
func New(cfg Config) *Cache {
	sets := cfg.Sets()
	if sets <= 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache: set count %d not a positive power of two", sets))
	}
	return &Cache{
		cfg:   cfg,
		lines: make([]Line, sets*cfg.Ways),
		ways:  cfg.Ways,
		mask:  uint64(sets - 1),
	}
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats { return c.stats }

//spcoh:noalloc
func (c *Cache) set(addr arch.LineAddr) []Line {
	i := int(uint64(addr)&c.mask) * c.ways
	return c.lines[i : i+c.ways]
}

// Lookup returns the line holding addr, or nil. A hit refreshes LRU and
// counts in the statistics; use Peek for silent inspection.
func (c *Cache) Lookup(addr arch.LineAddr) *Line {
	set := c.set(addr)
	for i := range set {
		if set[i].State.Valid() && set[i].Addr == addr {
			c.clock++
			set[i].lru = c.clock
			c.stats.Hits++
			return &set[i]
		}
	}
	c.stats.Misses++
	return nil
}

// Peek returns the line holding addr without touching LRU or statistics.
// Used for coherence probes (snoops, invalidations, predicted requests).
func (c *Cache) Peek(addr arch.LineAddr) *Line {
	set := c.set(addr)
	for i := range set {
		if set[i].State.Valid() && set[i].Addr == addr {
			return &set[i]
		}
	}
	return nil
}

// Victim describes a line displaced by Insert.
type Victim struct {
	Addr  arch.LineAddr
	State State
}

// Insert fills addr with the given state, evicting the LRU way if the set
// is full. It returns the victim (ok=false if an invalid way was used).
// Inserting a line that is already resident updates its state in place.
func (c *Cache) Insert(addr arch.LineAddr, st State) (v Victim, evicted bool) {
	if st == Invalid {
		panic("cache: inserting Invalid line")
	}
	set := c.set(addr)
	c.clock++
	// Already resident: state change only.
	for i := range set {
		if set[i].State.Valid() && set[i].Addr == addr {
			set[i].State = st
			set[i].lru = c.clock
			return Victim{}, false
		}
	}
	// Free way?
	for i := range set {
		if !set[i].State.Valid() {
			set[i] = Line{Addr: addr, State: st, lru: c.clock}
			return Victim{}, false
		}
	}
	// Evict LRU.
	vi := 0
	for i := 1; i < len(set); i++ {
		if set[i].lru < set[vi].lru {
			vi = i
		}
	}
	v = Victim{Addr: set[vi].Addr, State: set[vi].State}
	c.stats.Evictions++
	if v.State.Dirty() {
		c.stats.Writebacks++
	}
	set[vi] = Line{Addr: addr, State: st, lru: c.clock}
	return v, true
}

// SetState transitions a resident line to st; st == Invalid removes it.
// It reports whether the line was resident.
func (c *Cache) SetState(addr arch.LineAddr, st State) bool {
	set := c.set(addr)
	for i := range set {
		if set[i].State.Valid() && set[i].Addr == addr {
			if st == Invalid {
				set[i] = Line{}
			} else {
				set[i].State = st
			}
			return true
		}
	}
	return false
}

// Invalidate removes addr if resident, reporting the prior state.
func (c *Cache) Invalidate(addr arch.LineAddr) (State, bool) {
	set := c.set(addr)
	for i := range set {
		if set[i].State.Valid() && set[i].Addr == addr {
			st := set[i].State
			set[i] = Line{}
			return st, true
		}
	}
	return Invalid, false
}

// ForEachValid calls fn for every valid line in array order (coherence
// audit). Purely observational: no LRU or statistics effects.
func (c *Cache) ForEachValid(fn func(arch.LineAddr, State)) {
	for i := range c.lines {
		if c.lines[i].State.Valid() {
			fn(c.lines[i].Addr, c.lines[i].State)
		}
	}
}

// Occupancy returns the number of valid lines (test/debug aid).
func (c *Cache) Occupancy() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].State.Valid() {
			n++
		}
	}
	return n
}
