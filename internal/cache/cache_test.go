package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"spcoh/internal/arch"
)

func small() *Cache { // 4 sets x 2 ways
	return New(Config{Bytes: 8 * arch.LineSize, Ways: 2})
}

func TestStateProperties(t *testing.T) {
	if Invalid.Valid() || !Shared.Valid() || !Forward.Valid() {
		t.Fatal("Valid() wrong")
	}
	for _, s := range []State{Exclusive, Modified, Forward} {
		if !s.CanForward() {
			t.Fatalf("%v should forward", s)
		}
	}
	for _, s := range []State{Invalid, Shared} {
		if s.CanForward() {
			t.Fatalf("%v should not forward", s)
		}
	}
	if !Modified.Dirty() || Exclusive.Dirty() {
		t.Fatal("Dirty() wrong")
	}
	if Modified.String() != "M" || Invalid.String() != "I" || Forward.String() != "F" {
		t.Fatal("String() wrong")
	}
}

func TestConfigSets(t *testing.T) {
	c := Config{Bytes: 1 << 20, Ways: 8} // paper L2
	if c.Sets() != 2048 {
		t.Fatalf("sets = %d, want 2048", c.Sets())
	}
	c = Config{Bytes: 16 << 10, Ways: 1} // paper L1
	if c.Sets() != 256 {
		t.Fatalf("sets = %d, want 256", c.Sets())
	}
}

func TestInsertLookup(t *testing.T) {
	c := small()
	if c.Lookup(1) != nil {
		t.Fatal("cold lookup should miss")
	}
	c.Insert(1, Shared)
	l := c.Lookup(1)
	if l == nil || l.State != Shared {
		t.Fatal("lookup after insert failed")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestReinsertUpdatesState(t *testing.T) {
	c := small()
	c.Insert(1, Shared)
	if _, ev := c.Insert(1, Modified); ev {
		t.Fatal("re-insert must not evict")
	}
	if c.Peek(1).State != Modified {
		t.Fatal("state not updated")
	}
	if c.Occupancy() != 1 {
		t.Fatalf("occupancy = %d", c.Occupancy())
	}
}

func TestLRUEviction(t *testing.T) {
	c := small()
	// Addresses 0, 4, 8 map to set 0 (4 sets).
	c.Insert(0, Shared)
	c.Insert(4, Shared)
	c.Lookup(0) // make 4 the LRU
	v, ev := c.Insert(8, Shared)
	if !ev || v.Addr != 4 {
		t.Fatalf("victim = %+v (evicted=%v), want addr 4", v, ev)
	}
	if c.Peek(0) == nil || c.Peek(8) == nil || c.Peek(4) != nil {
		t.Fatal("post-eviction residency wrong")
	}
}

func TestDirtyEvictionCountsWriteback(t *testing.T) {
	c := small()
	c.Insert(0, Modified)
	c.Insert(4, Shared)
	c.Insert(8, Shared) // evicts 0 (LRU, dirty)
	st := c.Stats()
	if st.Evictions != 1 || st.Writebacks != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPeekSilent(t *testing.T) {
	c := small()
	c.Insert(1, Exclusive)
	before := c.Stats()
	if c.Peek(1) == nil || c.Peek(2) != nil {
		t.Fatal("peek residency wrong")
	}
	if c.Stats() != before {
		t.Fatal("peek must not touch statistics")
	}
}

func TestSetStateAndInvalidate(t *testing.T) {
	c := small()
	c.Insert(1, Exclusive)
	if !c.SetState(1, Modified) {
		t.Fatal("SetState on resident line failed")
	}
	if c.SetState(99, Shared) {
		t.Fatal("SetState on absent line should report false")
	}
	st, ok := c.Invalidate(1)
	if !ok || st != Modified {
		t.Fatalf("invalidate = %v,%v", st, ok)
	}
	if _, ok := c.Invalidate(1); ok {
		t.Fatal("double invalidate should report false")
	}
	if c.Occupancy() != 0 {
		t.Fatal("occupancy after invalidate")
	}
	// SetState(Invalid) also removes.
	c.Insert(2, Shared)
	c.SetState(2, Invalid)
	if c.Peek(2) != nil {
		t.Fatal("SetState(Invalid) should remove line")
	}
}

func TestDirectMapped(t *testing.T) {
	c := New(Config{Bytes: 4 * arch.LineSize, Ways: 1})
	c.Insert(0, Shared)
	v, ev := c.Insert(4, Shared) // same set in 4-set direct-mapped
	if !ev || v.Addr != 0 {
		t.Fatalf("direct-mapped conflict eviction: %+v %v", v, ev)
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-power-of-two sets")
		}
	}()
	New(Config{Bytes: 3 * arch.LineSize, Ways: 1})
}

func TestInsertInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic inserting Invalid")
		}
	}()
	small().Insert(1, Invalid)
}

// Property: occupancy never exceeds capacity, and a line just inserted is
// always resident.
func TestPropertyCapacityInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := small()
		capacity := 8
		for i := 0; i < 200; i++ {
			a := arch.LineAddr(rng.Intn(64))
			c.Insert(a, Shared)
			if c.Peek(a) == nil {
				return false
			}
			if c.Occupancy() > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: hits+misses equals the number of Lookup calls.
func TestPropertyStatsConsistent(t *testing.T) {
	f := func(addrs []uint8) bool {
		c := small()
		for _, a := range addrs {
			if a%2 == 0 {
				c.Insert(arch.LineAddr(a%32), Shared)
			}
		}
		lookups := 0
		for _, a := range addrs {
			c.Lookup(arch.LineAddr(a % 32))
			lookups++
		}
		st := c.Stats()
		return st.Hits+st.Misses == uint64(lookups)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: an evicted victim is no longer resident and differs from the
// inserted address.
func TestPropertyVictimGone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := small()
		for i := 0; i < 100; i++ {
			a := arch.LineAddr(rng.Intn(64))
			v, ev := c.Insert(a, Modified)
			if ev {
				if v.Addr == a {
					return false
				}
				if c.Peek(v.Addr) != nil {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
