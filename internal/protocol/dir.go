package protocol

import (
	"fmt"

	"spcoh/internal/arch"
	"spcoh/internal/event"
	"spcoh/internal/predictor"
)

// dirState is the stable directory state of a line.
type dirState uint8

const (
	dirU dirState = iota // uncached: memory owns the only copy
	dirS                 // one or more shared copies; fwd may hold F
	dirE                 // one cache owns the line (E or M locally)
)

func (s dirState) String() string {
	switch s {
	case dirU:
		return "U"
	case dirS:
		return "S"
	default:
		return "E"
	}
}

// dirLine is the full-map directory entry for one cache line.
type dirLine struct {
	state   dirState
	owner   arch.NodeID    // valid in dirE
	sharers arch.SharerSet // valid in dirS
	fwd     arch.NodeID    // F-state holder within sharers; None = memory supplies
	busy    bool           // a Get transaction is in flight
	queue   []Msg          // requests waiting for the line to go idle

	// pendingSupplier is, during a busy transaction whose data plan relies
	// on a predicted forwarder, the node expected to supply; a GetRetry is
	// repaired by a directory-issued forward to it.
	pendingSupplier arch.NodeID
}

// DirSlice is one tile's directory slice. Lines are materialized lazily:
// an absent entry means dirU.
type DirSlice struct {
	sys  *System
	self arch.NodeID
	// ln is the tile's scheduling lane (shared with the tile's Node): all
	// slice-confined schedules go through it, stamping self as owner.
	ln    *event.Lane
	lines map[arch.LineAddr]*dirLine

	// memo is a small direct-mapped front for the lines map: one transaction
	// hits the same entry several times (request, forwards, unblock,
	// accounting messages), and on big meshes many transactions on distinct
	// lines interleave, which a single-entry memo thrashes on. Entries are
	// never removed from lines, so the pointers cannot go stale.
	memo [dirMemoSize]dirMemoEnt
}

const dirMemoSize = 64 // power of two; ~1KB per slice

type dirMemoEnt struct {
	addr arch.LineAddr
	line *dirLine
}

func newDirSlice(sys *System, self arch.NodeID) *DirSlice {
	return &DirSlice{sys: sys, self: self, lines: make(map[arch.LineAddr]*dirLine)}
}

//spcoh:noalloc
func (d *DirSlice) line(l arch.LineAddr) *dirLine {
	m := &d.memo[uint64(l)&(dirMemoSize-1)]
	if m.line != nil && m.addr == l {
		return m.line
	}
	e, ok := d.lines[l]
	if !ok {
		e = &dirLine{state: dirU, owner: arch.None, fwd: arch.None, pendingSupplier: arch.None} //spvet:allow noalloc -- lazy line materialization, once per line ever touched
		d.lines[l] = e
	}
	m.addr, m.line = l, e
	return e
}

// handle processes a directory-bound message.
func (d *DirSlice) handle(m Msg) {
	switch m.Kind {
	case MsgGetS, MsgGetM:
		e := d.line(m.Line)
		if e.busy {
			e.queue = append(e.queue, m)
			return
		}
		d.startGet(e, m)
	case MsgPutS, MsgPutE, MsgPutM:
		e := d.line(m.Line)
		if e.busy {
			e.queue = append(e.queue, m)
			return
		}
		d.handlePut(e, m)
	case MsgUnblock:
		e := d.line(m.Line)
		e.busy = false
		e.pendingSupplier = arch.None
		d.drain(e, m.Line)
	case MsgGetRetry:
		// The requester's transaction already holds the line busy and the
		// state transition is done; replay the data delivery through the
		// registered supplier (which also repairs its downgrade or
		// invalidation), or from memory if none is registered.
		e := d.line(m.Line)
		if e.pendingSupplier != arch.None && e.pendingSupplier != m.Requester {
			kind := MsgFwdGetS
			if m.MissKind != predictor.ReadMiss {
				kind = MsgFwdGetM
			}
			d.reply(Msg{Kind: kind, Dst: e.pendingSupplier, Line: m.Line,
				Requester: m.Requester, MissKind: m.MissKind})
		} else {
			d.memData(m, false, 0)
		}
	case MsgDirUpd, MsgWriteback:
		// Bandwidth/energy accounting only: the authoritative state change
		// happens when the companion request is processed.
	default:
		panic(fmt.Sprintf("dir %d: unexpected message %v", d.self, m.Kind))
	}
}

// drain processes queued requests until one marks the line busy again.
func (d *DirSlice) drain(e *dirLine, l arch.LineAddr) {
	for len(e.queue) > 0 && !e.busy {
		m := e.queue[0]
		e.queue = e.queue[1:]
		switch m.Kind {
		case MsgGetS, MsgGetM:
			d.startGet(e, m)
		default:
			d.handlePut(e, m)
		}
	}
}

// dirGet is the pooled binding of a directory access in flight (startGet's
// DirLatency delay).
//
//spcoh:pooled
type dirGet struct {
	d *DirSlice
	e *dirLine
	m Msg
}

//spcoh:noalloc
func fireDirGet(a any) {
	g := a.(*dirGet)
	d, e, m := g.d, g.e, g.m
	g.d, g.e = nil, nil
	d.sys.pools[d.self].get = append(d.sys.pools[d.self].get, g)
	if m.Kind == MsgGetS {
		d.processGetS(e, m)
	} else {
		d.processGetM(e, m)
	}
}

// startGet begins a Get transaction after the directory access latency.
func (d *DirSlice) startGet(e *dirLine, m Msg) {
	e.busy = true
	s := d.sys
	pool := &s.pools[d.self].get
	var g *dirGet
	if k := len(*pool); k > 0 {
		g = (*pool)[k-1]
		*pool = (*pool)[:k-1]
		g.d, g.e, g.m = d, e, m
	} else {
		g = &dirGet{d: d, e: e, m: m}
	}
	if s.Fast {
		s.casc.After(s.Cfg.DirLatency, fireDirGet, g)
		return
	}
	d.ln.AfterFn(s.Cfg.DirLatency, fireDirGet, g)
}

// reply sends a message originating at this directory slice.
func (d *DirSlice) reply(m Msg) {
	m.Src = d.self
	d.sys.send(m)
}

// memFetch is the pooled binding of a memory round trip launched by
// memData.
//
//spcoh:pooled
type memFetch struct {
	d    *DirSlice
	m    Msg
	excl bool
	acks int
}

//spcoh:noalloc
func fireMemFetch(a any) {
	f := a.(*memFetch)
	d, m, excl, acks := f.d, f.m, f.excl, f.acks
	f.d = nil
	d.sys.pools[d.self].mem = append(d.sys.pools[d.self].mem, f)
	d.reply(Msg{
		Kind: MsgData, Dst: m.Requester, Line: m.Line, Requester: m.Requester,
		Excl: excl, FromMem: true, AckCount: acks, MissKind: m.MissKind,
	})
}

// memData schedules a memory fetch and then a data response to the
// requester. The line stays busy until the requester unblocks.
func (d *DirSlice) memData(m Msg, excl bool, acks int) {
	s := d.sys
	pool := &s.pools[d.self].mem
	var f *memFetch
	if k := len(*pool); k > 0 {
		f = (*pool)[k-1]
		*pool = (*pool)[:k-1]
		f.d, f.m, f.excl, f.acks = d, m, excl, acks
	} else {
		f = &memFetch{d: d, m: m, excl: excl, acks: acks}
	}
	if s.Fast {
		s.casc.After(s.Cfg.MemLatency, fireMemFetch, f)
		return
	}
	d.ln.AfterFn(s.Cfg.MemLatency, fireMemFetch, f)
}

// processGetS services a read miss. The directory determines, from its own
// serialized view, whether the predicted set was sufficient (§4.5); if so
// the predicted holder has already forwarded data and the directory only
// updates state and confirms.
func (d *DirSlice) processGetS(e *dirLine, m Msg) {
	req := m.Requester
	var supplier arch.NodeID = arch.None
	switch e.state {
	case dirE:
		supplier = e.owner
	case dirS:
		supplier = e.fwd
	case dirU:
		// Unowned: no on-chip holder exists, memory supplies the line.
	}
	communicating := supplier != arch.None && supplier != req
	sufficient := communicating && m.Pred.Contains(supplier)

	// Directory verdict to the requester (always sent: carries the
	// prediction result and completes the transaction handshake).
	if sufficient {
		e.pendingSupplier = supplier
	}
	d.reply(Msg{
		Kind: MsgDirResp, Dst: req, Line: m.Line, Requester: req,
		Excl: sufficient, NeedData: true, MissKind: m.MissKind,
		Pred: m.Pred, HadLine: communicating, PredSupply: sufficient, Supplier: supplier,
	})

	switch {
	case supplier == req:
		// Writeback race: the requester is still the registered holder
		// (its eviction is in flight). Its data lives in its own
		// writeback buffer; confirm with a control-sized data grant.
		d.reply(Msg{Kind: MsgData, Dst: req, Line: m.Line, Requester: req,
			Excl: e.state == dirE, MissKind: m.MissKind})
		if e.state == dirE {
			// Stays exclusive at req.
		} else {
			e.sharers = e.sharers.Add(req)
			e.fwd = req
		}
	case e.state == dirU:
		// Non-communicating miss: memory supplies an Exclusive copy.
		e.state = dirE
		e.owner = req
		e.sharers = arch.EmptySet
		e.fwd = arch.None
		d.memData(m, true, 0)
	case e.state == dirE:
		prevOwner := e.owner
		if !sufficient {
			d.reply(Msg{Kind: MsgFwdGetS, Dst: prevOwner, Line: m.Line, Requester: req, MissKind: m.MissKind})
		}
		e.state = dirS
		e.owner = arch.None
		e.sharers = arch.SetOf(prevOwner, req)
		e.fwd = req
	default: // dirS
		if supplier == arch.None {
			// No forwardable copy on chip: memory supplies; the new
			// reader becomes the F holder.
			d.memData(m, false, 0)
		} else if !sufficient {
			d.reply(Msg{Kind: MsgFwdGetS, Dst: supplier, Line: m.Line, Requester: req, MissKind: m.MissKind})
		}
		e.sharers = e.sharers.Add(req)
		e.fwd = req
	}
}

// processGetM services a write or upgrade miss.
func (d *DirSlice) processGetM(e *dirLine, m Msg) {
	req := m.Requester
	switch e.state {
	case dirU:
		e.state = dirE
		e.owner = req
		e.sharers = arch.EmptySet
		e.fwd = arch.None
		d.reply(Msg{Kind: MsgDirResp, Dst: req, Line: m.Line, Requester: req,
			Excl: false, NeedData: true, AckCount: 0, MissKind: m.MissKind, HadLine: false})
		d.memData(m, true, 0)

	case dirE:
		prevOwner := e.owner
		if prevOwner == req {
			// Writeback race: requester is still registered owner.
			e.state = dirE
			e.owner = req
			d.reply(Msg{Kind: MsgDirResp, Dst: req, Line: m.Line, Requester: req,
				Excl: true, NeedData: false, AckCount: 0, MissKind: m.MissKind, HadLine: true})
			d.reply(Msg{Kind: MsgData, Dst: req, Line: m.Line, Requester: req,
				Excl: true, MissKind: m.MissKind})
			return
		}
		sufficient := m.Pred.Contains(prevOwner)
		if !sufficient {
			d.reply(Msg{Kind: MsgFwdGetM, Dst: prevOwner, Line: m.Line, Requester: req, MissKind: m.MissKind})
		}
		e.owner = req
		if sufficient {
			e.pendingSupplier = prevOwner
		}
		d.reply(Msg{Kind: MsgDirResp, Dst: req, Line: m.Line, Requester: req,
			Excl: sufficient, NeedData: true, AckCount: 0, MissKind: m.MissKind,
			HadLine: true, Pred: arch.SetOf(prevOwner), PredSupply: sufficient, Supplier: prevOwner})

	default: // dirS
		toInval := e.sharers.Remove(req)
		hadLine := e.sharers.Contains(req)
		fwd := e.fwd
		communicating := !toInval.Empty()
		sufficient := communicating && m.Pred.Superset(toInval)

		// Data plan: the F holder (if any, and not the requester) responds
		// with Data rather than a bare InvAck; the requester counts that
		// Data as the holder's invalidation ack. Otherwise memory supplies
		// data unless the requester already holds a copy (upgrade).
		acks := toInval.Count()
		dataFromFwd := fwd != arch.None && fwd != req
		if dataFromFwd && !m.Pred.Contains(fwd) {
			d.reply(Msg{Kind: MsgFwdGetM, Dst: fwd, Line: m.Line, Requester: req, MissKind: m.MissKind})
		}
		// Invalidate unpredicted sharers (other than fwd, which got a
		// FwdGetM above, and the requester itself).
		pendingInv := toInval.Minus(m.Pred)
		if dataFromFwd {
			pendingInv = pendingInv.Remove(fwd)
		}
		pendingInv.ForEach(func(n arch.NodeID) {
			d.reply(Msg{Kind: MsgInv, Dst: n, Line: m.Line, Requester: req, MissKind: m.MissKind})
		})

		predSupply := dataFromFwd && m.Pred.Contains(fwd)
		if predSupply {
			e.pendingSupplier = fwd
		}
		d.reply(Msg{Kind: MsgDirResp, Dst: req, Line: m.Line, Requester: req,
			Excl: sufficient, NeedData: !hadLine, AckCount: acks, MissKind: m.MissKind,
			HadLine: communicating, Pred: toInval,
			PredSupply: predSupply, Supplier: fwd})

		if !hadLine && !dataFromFwd {
			d.memData(m, false, 0)
		}
		e.state = dirE
		e.owner = req
		e.sharers = arch.EmptySet
		e.fwd = arch.None
	}
}

// handlePut retires an eviction notice. Stale puts (the evictor already
// lost its registered role to a racing transaction) are acknowledged with
// no state change.
func (d *DirSlice) handlePut(e *dirLine, m Msg) {
	q := m.Src
	switch {
	case e.state == dirE && e.owner == q:
		e.state = dirU
		e.owner = arch.None
	case e.state == dirS && e.sharers.Contains(q):
		e.sharers = e.sharers.Remove(q)
		if e.fwd == q {
			e.fwd = arch.None
		}
		if e.sharers.Empty() {
			e.state = dirU
			e.fwd = arch.None
		}
	}
	d.reply(Msg{Kind: MsgPutAck, Dst: q, Line: m.Line, Requester: q})
}

// checkDirSide audits this slice's entries at quiescence. Violations come
// in two severities:
//
//   - hard: an entry still busy or with queued requests — a transaction
//     that never finished.
//   - soft: the directory registers a holder whose copy is gone. This is
//     the benign residue of the predicted-invalidation race (see the
//     poison logic in node.go); such lines remain functionally correct
//     because registered nodes always service directory-issued forwards.
//
// The converse direction — a node holding a copy the directory does not
// account for, or in a state incompatible with the entry — is covered by
// the holder-side sweep in System.CheckCoherence, so only the registered
// holders are probed here (the predominantly-U line population costs
// nothing).
func (d *DirSlice) checkDirSide(hard, soft *[]dirViol) {
	for l, e := range d.lines { //spvet:ordered -- per-line checks are independent; CheckCoherence sorts the collected violations
		if e.busy || len(e.queue) > 0 {
			*hard = append(*hard, dirViol{l, arch.None,
				fmt.Sprintf("line %#x: busy or queued at quiescence", uint64(l))})
			continue
		}
		switch e.state {
		case dirE:
			if d.sys.Nodes[e.owner].l2.Peek(l) == nil {
				*soft = append(*soft, dirViol{l, e.owner,
					fmt.Sprintf("line %#x: dir E owner %d has no copy", uint64(l), e.owner)})
			}
		case dirS:
			e.sharers.ForEach(func(nid arch.NodeID) {
				if d.sys.Nodes[nid].l2.Peek(l) == nil {
					*soft = append(*soft, dirViol{l, nid,
						fmt.Sprintf("line %#x: dir S sharer %d has no copy", uint64(l), nid)})
				}
			})
		case dirU:
			// No registered holders; the holder-side sweep catches strays.
		}
	}
}
