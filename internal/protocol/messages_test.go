package protocol

import (
	"testing"

	"spcoh/internal/arch"
)

func TestMessageNames(t *testing.T) {
	kinds := []MsgKind{
		MsgGetS, MsgGetM, MsgPutS, MsgPutE, MsgPutM,
		MsgPredGetS, MsgPredGetM,
		MsgFwdGetS, MsgFwdGetM, MsgInv, MsgDirResp, MsgPutAck,
		MsgData, MsgInvAck, MsgNack, MsgDirUpd, MsgUnblock, MsgWriteback, MsgGetRetry,
	}
	seen := map[string]bool{}
	for _, k := range kinds {
		name := k.String()
		if name == "?" || name == "" {
			t.Fatalf("kind %d has no name", k)
		}
		if seen[name] {
			t.Fatalf("duplicate message name %q", name)
		}
		seen[name] = true
	}
	if MsgKind(200).String() != "?" {
		t.Fatal("unknown kind should stringify to ?")
	}
}

func TestMessageSizes(t *testing.T) {
	// Exactly the data-carrying messages pay for a cache line.
	dataKinds := map[MsgKind]bool{MsgData: true, MsgPutM: true, MsgWriteback: true}
	for k := MsgGetS; k <= MsgGetRetry; k++ {
		want := ControlBytes
		if dataKinds[k] {
			want = DataBytes
		}
		if k.Bytes() != want {
			t.Errorf("%v bytes = %d, want %d", k, k.Bytes(), want)
		}
		if k.CarriesData() != dataKinds[k] {
			t.Errorf("%v CarriesData = %v", k, k.CarriesData())
		}
	}
	if DataBytes != arch.LineSize+ControlBytes {
		t.Fatal("data message must carry one cache line plus header")
	}
}

func TestConfigSanity(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Nodes != cfg.NoC.Nodes() {
		t.Fatal("default config mesh mismatch")
	}
	if cfg.L2HitLatency() != cfg.L2TagLatency+cfg.L2DataLatency {
		t.Fatal("L2 hit latency must be tag+data")
	}
	// Paper Table 4 values.
	if cfg.L1.Bytes != 16<<10 || cfg.L1.Ways != 1 {
		t.Fatalf("L1 config = %+v", cfg.L1)
	}
	if cfg.L2.Bytes != 1<<20 || cfg.L2.Ways != 8 {
		t.Fatalf("L2 config = %+v", cfg.L2)
	}
	if cfg.MemLatency != 150 || cfg.L1Latency != 2 {
		t.Fatalf("latencies = %+v", cfg)
	}
}
