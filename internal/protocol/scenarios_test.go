package protocol

import (
	"math/rand"
	"testing"

	"spcoh/internal/arch"
	"spcoh/internal/cache"
	"spcoh/internal/predictor"
)

// These tests pin down the §4.5 corner cases one by one: partial
// predictions, non-forwardable predicted holders, home-node prediction,
// writeback races and the directory-assisted retry.

func TestPartialWritePrediction(t *testing.T) {
	// Sharers {0,1,2}; writer predicts only {0,1}: the directory must
	// invalidate the unpredicted sharer 2 and the write must still
	// complete with all three gone.
	preds := make([]predictor.Predictor, 4)
	preds[3] = &fixedPred{set: arch.SetOf(0, 1)}
	sim, sys := newTestSystem(t, testConfig(), preds)
	for i := 0; i < 3; i++ {
		access(t, sim, sys.Nodes[i], 0xA000, false)
	}
	access(t, sim, sys.Nodes[3], 0xA000, true)
	line := arch.Addr(0xA000).Line()
	for i := 0; i < 3; i++ {
		if sys.Nodes[i].L2().Peek(line) != nil {
			t.Fatalf("node %d not invalidated", i)
		}
	}
	st := sys.Stats()
	if st.PredCorrect != 0 || st.PredWrong != 1 {
		t.Fatalf("partial prediction must count as insufficient: %+v", st)
	}
	quiesce(t, sim, sys, true)
}

func TestPredictedSharedHolderNacksRead(t *testing.T) {
	// Node 1 holds the line in plain S (not F): a predicted read to it
	// must Nack, and the requester must still be served via the
	// directory path.
	preds := make([]predictor.Predictor, 4)
	preds[0] = &fixedPred{set: arch.SetOf(1)}
	sim, sys := newTestSystem(t, testConfig(), preds)
	access(t, sim, sys.Nodes[2], 0xB000, true)  // node 2 owns M
	access(t, sim, sys.Nodes[1], 0xB000, false) // node 2 -> S, node 1 F
	access(t, sim, sys.Nodes[2], 0xB000, false) // refresh node 2 (S)
	// Now node 1 holds F. Make node 1 plain S by another read:
	access(t, sim, sys.Nodes[3], 0xB000, false) // node 3 takes F
	// Node 0 predicts node 1 (S holder): Nack + directory service.
	access(t, sim, sys.Nodes[0], 0xB000, false)
	st := sys.Stats()
	if st.Nacks == 0 {
		t.Fatal("S-state holder must Nack a predicted read")
	}
	if l := sys.Nodes[0].L2().Peek(arch.Addr(0xB000).Line()); l == nil {
		t.Fatal("requester must still be served")
	}
	quiesce(t, sim, sys, true)
}

func TestPredictionOfHomeNode(t *testing.T) {
	// Predicting the line's home tile exercises prediction messages and
	// directory requests landing on the same node.
	line := arch.Addr(0xC000).Line()
	home := arch.NodeID(uint64(line) % 4)
	owner := (home + 1) % 4
	preds := make([]predictor.Predictor, 4)
	preds[2] = &fixedPred{set: arch.SetOf(home)}
	sim, sys := newTestSystem(t, testConfig(), preds)
	access(t, sim, sys.Nodes[owner], 0xC000, true)
	access(t, sim, sys.Nodes[2], 0xC000, false) // predicts home (wrong owner)
	if l := sys.Nodes[2].L2().Peek(line); l == nil {
		t.Fatal("read must complete despite predicting the home")
	}
	quiesce(t, sim, sys, true)
}

func TestEvictionOfForwardHolderThenReRead(t *testing.T) {
	// The F holder evicts (PutE); a later read must fall back to memory
	// supply and re-assign F.
	cfg := testConfig()
	cfg.L2 = cache.Config{Bytes: 4 * arch.LineSize, Ways: 1}
	sim, sys := newTestSystem(t, cfg, nil)
	access(t, sim, sys.Nodes[0], 0xD000, false) // E at node 0
	access(t, sim, sys.Nodes[1], 0xD000, false) // node 1 F, node 0 S
	// Conflict-evict node 1's F copy (4-set direct-mapped: +4 lines apart).
	for i := 1; i <= 4; i++ {
		access(t, sim, sys.Nodes[1], 0xD000+arch.Addr(i*4*arch.LineSize), false)
	}
	quiesce(t, sim, sys, false)
	// Node 2 reads: no F holder on chip; memory supplies; node 2 gets F.
	access(t, sim, sys.Nodes[2], 0xD000, false)
	l := sys.Nodes[2].L2().Peek(arch.Addr(0xD000).Line())
	if l == nil || l.State != cache.Forward {
		t.Fatalf("new reader state = %v, want F", l)
	}
	quiesce(t, sim, sys, false)
}

func TestSelfMissAfterOwnEviction(t *testing.T) {
	// A node misses on a line whose own eviction is still in flight: the
	// access must wait for the PutAck and then refetch cleanly.
	cfg := testConfig()
	cfg.L2 = cache.Config{Bytes: 4 * arch.LineSize, Ways: 1}
	sim, sys := newTestSystem(t, cfg, nil)
	n := sys.Nodes[0]
	done := 0
	n.Access(0, 0xE000, true, func() { done++ })
	sim.Run()
	// Evict 0xE000 by a conflicting fill, and immediately re-access it
	// before the PutM completes.
	n.Access(0, 0xE000+4*64, false, func() { done++ })
	n.Access(0, 0xE000, false, func() { done++ })
	sim.Run()
	if done != 3 {
		t.Fatalf("%d/3 accesses completed", done)
	}
	quiesce(t, sim, sys, false)
}

func TestUpgradeRaceWithRemoteWrite(t *testing.T) {
	// Two holders of a shared line upgrade simultaneously: the directory
	// serializes; one upgrades, the other is invalidated and refetches
	// with data. Exactly one M copy must remain.
	sim, sys := newTestSystem(t, testConfig(), nil)
	access(t, sim, sys.Nodes[0], 0xF000, false)
	access(t, sim, sys.Nodes[1], 0xF000, false)
	done := 0
	sys.Nodes[0].Access(0, 0xF000, true, func() { done++ })
	sys.Nodes[1].Access(0, 0xF000, true, func() { done++ })
	sim.Run()
	if done != 2 {
		t.Fatalf("%d/2 upgrades completed", done)
	}
	line := arch.Addr(0xF000).Line()
	owners := 0
	for _, n := range sys.Nodes {
		if l := n.L2().Peek(line); l != nil && l.State == cache.Modified {
			owners++
		}
	}
	if owners != 1 {
		t.Fatalf("%d M copies after racing upgrades", owners)
	}
	quiesce(t, sim, sys, false)
}

func TestGetRetryPath(t *testing.T) {
	// Force the retry race: two requesters predict the same owner for
	// conflicting requests; the loser's data plan fails and must recover
	// via MsgGetRetry. We approximate by racing a predicted read against
	// a predicted write on the same owner.
	preds := make([]predictor.Predictor, 4)
	preds[0] = &fixedPred{set: arch.SetOf(3)}
	preds[1] = &fixedPred{set: arch.SetOf(3)}
	sim, sys := newTestSystem(t, testConfig(), preds)
	access(t, sim, sys.Nodes[3], 0x11000, true) // node 3 owns M
	done := 0
	sys.Nodes[0].Access(0, 0x11000, false, func() { done++ })
	sys.Nodes[1].Access(0, 0x11000, true, func() { done++ })
	sim.Run()
	if done != 2 {
		t.Fatalf("%d/2 racing requests completed", done)
	}
	quiesce(t, sim, sys, true)
}

func TestStressChaosLongSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	// Many seeds, tiny caches, adversarial predictions: the strongest
	// protocol validation in the suite.
	for seed := int64(100); seed < 130; seed++ {
		cfg := testConfig()
		cfg.L2 = cache.Config{Bytes: 8 * arch.LineSize, Ways: 2}
		cfg.L1 = cache.Config{Bytes: 2 * arch.LineSize, Ways: 1}
		preds := make([]predictor.Predictor, 4)
		for i := range preds {
			preds[i] = &chaosPred{rng: rand.New(rand.NewSource(seed*41 + int64(i))), nodes: 4}
		}
		sim, sys := newTestSystem(t, cfg, preds)
		completed := 0
		driver(sim, sys, seed, 400, 20, &completed)
		sim.Run()
		if completed != 4*400 {
			t.Fatalf("seed %d: %d/%d completed", seed, completed, 4*400)
		}
		quiesce(t, sim, sys, true)
	}
}
