package protocol

import (
	"fmt"

	"spcoh/internal/arch"
	"spcoh/internal/cache"
	"spcoh/internal/event"
	"spcoh/internal/predictor"
)

// externalTrainer is implemented by predictors that learn from incoming
// coherence requests (the ADDR predictor), in addition to responses.
type externalTrainer interface {
	TrainExternal(line arch.LineAddr, requester arch.NodeID)
}

// NodeStats counts per-node protocol activity. All counters are merged
// across nodes by System.Stats.
type NodeStats struct {
	Accesses                               uint64
	L1Hits                                 uint64
	L2Hits                                 uint64
	Misses                                 uint64 // L2 misses (coherence transactions)
	ReadMisses, WriteMisses, UpgradeMisses uint64

	Communicating    uint64 // misses that had to contact another cache
	NonCommunicating uint64

	Predicted        uint64 // misses issued with a non-empty predicted set
	PredCorrect      uint64 // predicted set sufficient (dir verdict)
	PredCorrectByTag [8]uint64
	PredWrong        uint64
	PredOnNonComm    uint64 // prediction attempted on a non-communicating miss

	PredTargets   uint64 // sum of predicted set sizes (Table 5)
	ActualTargets uint64 // sum of minimum sufficient set sizes (Table 5)

	MissLatencySum                    uint64 // cycles, CPU-visible
	CommLatencySum, NonCommLatencySum uint64

	Nacks        uint64
	DupData      uint64
	SnoopLookups uint64 // remote-request tag probes (energy model)

	PredBytesComm    uint64 // prediction-overhead bytes on communicating misses
	PredBytesNonComm uint64
}

func (s *NodeStats) merge(o *NodeStats) {
	s.Accesses += o.Accesses
	s.L1Hits += o.L1Hits
	s.L2Hits += o.L2Hits
	s.Misses += o.Misses
	s.ReadMisses += o.ReadMisses
	s.WriteMisses += o.WriteMisses
	s.UpgradeMisses += o.UpgradeMisses
	s.Communicating += o.Communicating
	s.NonCommunicating += o.NonCommunicating
	s.Predicted += o.Predicted
	s.PredCorrect += o.PredCorrect
	for i := range s.PredCorrectByTag {
		s.PredCorrectByTag[i] += o.PredCorrectByTag[i]
	}
	s.PredWrong += o.PredWrong
	s.PredOnNonComm += o.PredOnNonComm
	s.PredTargets += o.PredTargets
	s.ActualTargets += o.ActualTargets
	s.MissLatencySum += o.MissLatencySum
	s.CommLatencySum += o.CommLatencySum
	s.NonCommLatencySum += o.NonCommLatencySum
	s.Nacks += o.Nacks
	s.DupData += o.DupData
	s.SnoopLookups += o.SnoopLookups
	s.PredBytesComm += o.PredBytesComm
	s.PredBytesNonComm += o.PredBytesNonComm
}

// AvgMissLatency returns the mean CPU-visible L2 miss latency.
func (s *NodeStats) AvgMissLatency() float64 {
	if s.Misses == 0 {
		return 0
	}
	return float64(s.MissLatencySum) / float64(s.Misses)
}

// Accuracy returns the fraction of communicating misses correctly predicted.
func (s *NodeStats) Accuracy() float64 {
	if s.Communicating == 0 {
		return 0
	}
	return float64(s.PredCorrect) / float64(s.Communicating)
}

// mshr tracks one outstanding miss.
type mshr struct {
	line  arch.LineAddr
	kind  predictor.MissKind
	pc    uint64
	start event.Time

	predSet arch.SharerSet
	predTag predictor.Tag

	haveDirResp   bool
	sufficient    bool
	predSupply    bool
	communicating bool
	needData      bool // expect a Data message (authoritative after DirResp)
	acksNeeded    int

	dataArrived bool
	dataExcl    bool
	fromMem     bool
	provider    arch.NodeID
	acksGot     int
	ackers      arch.SharerSet
	// dirTargets is the authoritative invalidation set the directory
	// reported for a write/upgrade (paper §4.5: the reply indicates which
	// sharers were involved); used for predictor training.
	dirTargets arch.SharerSet

	predOverheadBytes uint64

	// respFrom tracks which predicted nodes have responded (Data, InvAck
	// or Nack); nackFrom the subset that Nacked; supplier the holder the
	// directory expected to forward. Together they detect the retry race
	// (see MsgGetRetry).
	respFrom arch.SharerSet
	nackFrom arch.SharerSet
	supplier arch.NodeID
	retried  bool

	// poisoned marks a fill that must be invalidated immediately after
	// install: a racing predicted invalidation hit this node while the
	// miss was outstanding and was acknowledged optimistically.
	poisoned bool

	cpuDone   func()
	cpuCalled bool
	cpuLat    event.Time // CPU-visible latency, set when cpuDone fires
	waiters   []func()   // same-line accesses arriving while outstanding
}

// wbEntry is a line in the writeback buffer: evicted locally but not yet
// acknowledged by the directory. It can still service forwards.
type wbEntry struct {
	state   cache.State
	waiters []func()
}

// Node is the per-tile cache-side coherence controller: L1 + L2 arrays,
// MSHRs, writeback buffer, and the prediction action of §4.5.
type Node struct {
	sys  *System
	self arch.NodeID
	// ln is the tile's scheduling lane: all node-confined schedules go
	// through it (stamping self as owner for the sharded executor).
	ln   *event.Lane
	l1   *cache.Cache
	l2   *cache.Cache
	pred predictor.Predictor

	mshrs map[arch.LineAddr]*mshr
	wb    map[arch.LineAddr]*wbEntry

	// memoMshr short-circuits mshrs lookups for the line resolved last:
	// every reply in one transaction targets the same MSHR (in fast mode the
	// whole cascade does). Cleared when that MSHR retires.
	memoLine arch.LineAddr
	memoMshr *mshr

	// recentPredInv records predicted invalidations that arrived while
	// this node had neither a copy nor an MSHR — typically a few cycles
	// before a miss on the same line is issued. The next miss within the
	// race window is poisoned, preserving the invalidation ordering the
	// directory assumed when it judged the prediction sufficient.
	recentPredInv map[arch.LineAddr]event.Time

	stats NodeStats
}

// predInvWindow bounds how long a too-early predicted invalidation can
// poison a subsequent miss. Config.PredInvWindow overrides the default of
// 4*MemLatency (comfortably longer than any transaction).
func (n *Node) predInvWindow() event.Time {
	if w := n.sys.Cfg.PredInvWindow; w != 0 {
		return w
	}
	return 4 * n.sys.Cfg.MemLatency
}

// predInvPruneMin is the table size below which prunePredInv does nothing:
// tiny tables cost nothing to keep, and the guard keeps the amortized prune
// cost off the common path. A var so tests can force pruning on every touch
// and pin that eviction is invisible to coherence decisions.
var predInvPruneMin = 32

// prunePredInv evicts race-window records that have already expired, keeping
// recentPredInv bounded by the lines predicted-invalidated within one
// window. Expiry is a pure function of each entry's own timestamp — whether
// an entry is deleted does not depend on when the others are visited — so
// the unordered range cannot affect simulation outcomes.
func (n *Node) prunePredInv() {
	if len(n.recentPredInv) < predInvPruneMin {
		return
	}
	now := n.sys.Sim.Now()
	w := n.predInvWindow()
	for l, at := range n.recentPredInv { //spvet:ordered
		if now-at >= w {
			delete(n.recentPredInv, l)
		}
	}
}

func newNode(sys *System, self arch.NodeID, p predictor.Predictor) *Node {
	return &Node{
		sys:           sys,
		self:          self,
		l1:            cache.New(sys.Cfg.L1),
		l2:            cache.New(sys.Cfg.L2),
		pred:          p,
		mshrs:         make(map[arch.LineAddr]*mshr),
		wb:            make(map[arch.LineAddr]*wbEntry),
		recentPredInv: make(map[arch.LineAddr]event.Time),
	}
}

// ID returns the node's tile ID.
func (n *Node) ID() arch.NodeID { return n.self }

// Predictor returns the node's destination-set predictor.
func (n *Node) Predictor() predictor.Predictor { return n.pred }

// Stats returns a snapshot of the node's counters.
func (n *Node) Stats() NodeStats { return n.stats }

// L2 exposes the L2 array (tests and characterization).
func (n *Node) L2() *cache.Cache { return n.l2 }

// Outstanding reports the number of in-flight misses (quiescence check).
func (n *Node) Outstanding() int { return len(n.mshrs) + len(n.wb) }

// OnSync delivers a captured synchronization point to the predictor
// (paper §4.1: sync primitives are exposed to the hardware).
func (n *Node) OnSync(kind predictor.SyncKind, staticID uint64) {
	if o := n.sys.obs; o != nil && o.Sync != nil {
		o.Sync(n.self, kind)
	}
	n.pred.OnSync(predictor.SyncEvent{Node: n.self, Kind: kind, StaticID: staticID})
}

// Access performs one memory access. done runs when the access completes
// (the CPU may proceed). Timing: L1 hit = L1Latency; L2 hit = L1Latency +
// L2 tag+data; miss = detection plus the coherence transaction.
func (n *Node) Access(pc uint64, addr arch.Addr, write bool, done func()) {
	n.stats.Accesses++
	line := addr.Line()
	if !write {
		if n.l1.Lookup(line) != nil {
			n.stats.L1Hits++
			n.ln.After(n.sys.Cfg.L1Latency, done)
			return
		}
		if l := n.l2.Lookup(line); l != nil {
			n.stats.L2Hits++
			n.l1.Insert(line, cache.Shared)
			n.ln.After(n.sys.Cfg.L1Latency+n.sys.Cfg.L2HitLatency(), done)
			return
		}
		n.miss(pc, line, predictor.ReadMiss, done)
		return
	}
	// Write: L1 is write-through, so ownership is checked at the L2.
	if l := n.l2.Lookup(line); l != nil {
		switch l.State {
		case cache.Modified, cache.Exclusive:
			l.State = cache.Modified // silent E->M upgrade
			n.stats.L2Hits++
			n.l1.Insert(line, cache.Shared)
			n.ln.After(n.sys.Cfg.L1Latency+n.sys.Cfg.L2HitLatency(), done)
		default: // Shared or Forward: upgrade miss
			n.miss(pc, line, predictor.UpgradeMiss, done)
		}
		return
	}
	n.miss(pc, line, predictor.WriteMiss, done)
}

// AccessFast is the fast-mode hit path: it resolves L1/L2 hits by returning
// the access latency for the core to accumulate on its own virtual clock,
// without touching the event queue. A miss (or upgrade miss) returns
// ok=false with the caches untouched; the caller re-issues the access
// through Access, which performs the single authoritative lookup. Hit/miss
// classification and LRU movement are identical to Access: exactly one
// mutating Lookup happens per access either way.
func (n *Node) AccessFast(pc uint64, addr arch.Addr, write bool) (lat event.Time, ok bool) {
	line := addr.Line()
	if !write {
		if n.l1.Lookup(line) != nil {
			n.stats.Accesses++
			n.stats.L1Hits++
			return n.sys.Cfg.L1Latency, true
		}
		if n.l2.Lookup(line) != nil {
			n.stats.Accesses++
			n.stats.L2Hits++
			n.l1.Insert(line, cache.Shared)
			return n.sys.Cfg.L1Latency + n.sys.Cfg.L2HitLatency(), true
		}
		return 0, false
	}
	// Write: classify with a silent Peek first so that an upgrade miss
	// (line present in S/F) does not get an extra LRU touch here — the
	// re-issued Access performs the one mutating Lookup, as in detailed
	// mode.
	l := n.l2.Peek(line)
	if l == nil || (l.State != cache.Modified && l.State != cache.Exclusive) {
		return 0, false
	}
	n.l2.Lookup(line)
	l.State = cache.Modified // silent E->M upgrade
	n.stats.Accesses++
	n.stats.L2Hits++
	n.l1.Insert(line, cache.Shared)
	return n.sys.Cfg.L1Latency + n.sys.Cfg.L2HitLatency(), true
}

// fireCPUDone surfaces a fast-mode miss completion to the CPU at the
// transaction's virtual completion time (see checkComplete).
//
//spcoh:noalloc
func fireCPUDone(a any) { a.(*mshr).cpuDone() }

// mshrFor is the memoized mshrs lookup (see memoMshr).
//
//spcoh:noalloc
func (n *Node) mshrFor(l arch.LineAddr) (*mshr, bool) {
	if n.memoMshr != nil && n.memoLine == l {
		return n.memoMshr, true
	}
	m, ok := n.mshrs[l]
	if ok {
		n.memoLine, n.memoMshr = l, m
	}
	return m, ok
}

// miss starts (or joins) a coherence transaction for line.
func (n *Node) miss(pc uint64, line arch.LineAddr, kind predictor.MissKind, done func()) {
	// An eviction of this line is still in flight: wait for the PutAck,
	// then retry the whole access.
	if e, ok := n.wb[line]; ok {
		write := kind != predictor.ReadMiss
		e.waiters = append(e.waiters, func() { n.Access(pc, line.Base(), write, done) })
		return
	}
	// A miss on this line is already outstanding: retry after it resolves.
	if m, ok := n.mshrFor(line); ok {
		write := kind != predictor.ReadMiss
		m.waiters = append(m.waiters, func() { n.Access(pc, line.Base(), write, done) })
		return
	}

	detect := n.sys.Cfg.L1Latency + n.sys.Cfg.L2TagLatency
	n.ln.AfterFn(detect, fireMissIssue, n.sys.getMissIssue(n, pc, line, kind, done))
}

// missIssue is the pooled binding of a miss-detection delay: one record per
// L2 miss rides the event queue instead of a four-capture closure.
//
//spcoh:pooled
type missIssue struct {
	n    *Node
	pc   uint64
	line arch.LineAddr
	kind predictor.MissKind
	done func()
}

func (s *System) getMissIssue(n *Node, pc uint64, line arch.LineAddr, kind predictor.MissKind, done func()) *missIssue {
	pool := &s.pools[n.self].miss
	if k := len(*pool); k > 0 {
		r := (*pool)[k-1]
		*pool = (*pool)[:k-1]
		r.n, r.pc, r.line, r.kind, r.done = n, pc, line, kind, done
		return r
	}
	return &missIssue{n: n, pc: pc, line: line, kind: kind, done: done}
}

//spcoh:noalloc
func fireMissIssue(a any) {
	r := a.(*missIssue)
	n, pc, line, kind, done := r.n, r.pc, r.line, r.kind, r.done
	r.n, r.done = nil, nil // release references before reuse
	n.sys.pools[n.self].miss = append(n.sys.pools[n.self].miss, r)
	if n.sys.Fast {
		// Fast mode: the entire coherence transaction executes as one
		// atomic cascade at this real-clock instant. Only the CPU-visible
		// completion (fireCPUDone) rides the real engine afterwards.
		n.sys.casc.Begin(n.sys.Sim.Now())
		n.issueMiss(pc, line, kind, done)
		n.sys.casc.Drain()
		return
	}
	n.issueMiss(pc, line, kind, done)
}

func (n *Node) issueMiss(pc uint64, line arch.LineAddr, kind predictor.MissKind, done func()) {
	// The detection delay may have raced with another access creating an
	// MSHR or WB entry meanwhile; re-check.
	if _, ok := n.wb[line]; ok {
		n.miss(pc, line, kind, done)
		return
	}
	if _, ok := n.mshrFor(line); ok {
		n.miss(pc, line, kind, done)
		return
	}

	n.stats.Misses++
	switch kind {
	case predictor.ReadMiss:
		n.stats.ReadMisses++
	case predictor.WriteMiss:
		n.stats.WriteMisses++
	default:
		n.stats.UpgradeMisses++
	}

	pm := predictor.Miss{Node: n.self, Line: line, PC: pc, Kind: kind}
	set, tag := n.pred.Predict(pm)
	set = set.Remove(n.self)

	m := &mshr{
		line: line, kind: kind, pc: pc, start: n.sys.clockNow(),
		predSet: set, predTag: tag, cpuDone: done, needData: kind != predictor.UpgradeMiss,
		provider: arch.None, supplier: arch.None,
	}
	if at, ok := n.recentPredInv[line]; ok {
		delete(n.recentPredInv, line)
		if n.sys.Sim.Now()-at < n.predInvWindow() {
			m.poisoned = true
		}
	}
	n.prunePredInv()
	n.mshrs[line] = m
	n.memoLine, n.memoMshr = line, m

	// Prediction action (§4.5): multicast to the predicted nodes...
	reqKind := MsgPredGetS
	dirKind := MsgGetS
	if kind != predictor.ReadMiss {
		reqKind = MsgPredGetM
		dirKind = MsgGetM
	}
	set.ForEach(func(p arch.NodeID) {
		m.predOverheadBytes += uint64(ControlBytes)
		n.send(Msg{Kind: reqKind, Dst: p, Line: line, Requester: n.self,
			MissKind: kind, PC: pc})
	})
	if !set.Empty() {
		n.stats.Predicted++
		n.stats.PredTargets += uint64(set.Count())
	}
	// ...and the request to the home directory, carrying the predicted set.
	n.send(Msg{Kind: dirKind, Dst: n.sys.Home(line), Line: line, Requester: n.self,
		Pred: set, HadLine: kind == predictor.UpgradeMiss, MissKind: kind, PC: pc})
}

func (n *Node) send(m Msg) {
	m.Src = n.self
	n.sys.send(m)
}

// handle processes a node-bound coherence message.
func (n *Node) handle(m Msg) {
	switch m.Kind {
	case MsgPredGetS:
		n.handlePredGetS(m)
	case MsgPredGetM:
		n.handlePredGetM(m)
	case MsgFwdGetS:
		n.handleFwdGetS(m)
	case MsgFwdGetM:
		n.handleFwdGetM(m)
	case MsgInv:
		n.handleInv(m)
	case MsgData:
		n.handleData(m)
	case MsgInvAck:
		n.handleInvAck(m)
	case MsgNack:
		n.handleNack(m)
	case MsgDirResp:
		n.handleDirResp(m)
	case MsgPutAck:
		n.handlePutAck(m)
	default:
		panic(fmt.Sprintf("node %d: unexpected message %v", n.self, m.Kind))
	}
}

func (n *Node) trainExternal(m Msg) {
	if t, ok := n.pred.(externalTrainer); ok && m.Requester != n.self {
		t.TrainExternal(m.Line, m.Requester)
	}
}

// localState returns the effective protocol state of a line at this node,
// looking through both the cache and the writeback buffer.
func (n *Node) localState(l arch.LineAddr) cache.State {
	if ln := n.l2.Peek(l); ln != nil {
		return ln.State
	}
	if e, ok := n.wb[l]; ok {
		return e.state
	}
	return cache.Invalid
}

// handlePredGetS services a predicted read request (§4.5): forward if the
// line is held in E, M or F; otherwise Nack. A node with its own miss
// outstanding on the line cannot forward and Nacks.
func (n *Node) handlePredGetS(m Msg) {
	n.stats.SnoopLookups++
	n.trainExternal(m)
	if _, ok := n.mshrFor(m.Line); ok {
		n.sendAfter(n.sys.Cfg.L2TagLatency, Msg{Kind: MsgNack, Dst: m.Requester, Line: m.Line, Requester: m.Requester})
		return
	}
	st := n.localState(m.Line)
	if !st.CanForward() {
		n.sendAfter(n.sys.Cfg.L2TagLatency, Msg{Kind: MsgNack, Dst: m.Requester, Line: m.Line, Requester: m.Requester})
		return
	}
	// Forward a copy; downgrade to Shared. A Modified line is written back
	// to the home (memory update on M->S, as in MESIF).
	n.sendAfter(n.sys.Cfg.L2HitLatency(), Msg{Kind: MsgData, Dst: m.Requester, Line: m.Line,
		Requester: m.Requester, MissKind: m.MissKind})
	if st == cache.Modified {
		n.sendAfter(n.sys.Cfg.L2HitLatency(), Msg{Kind: MsgWriteback, Dst: n.sys.Home(m.Line), Line: m.Line, Requester: n.self})
	}
	if n.l2.Peek(m.Line) != nil {
		n.l2.SetState(m.Line, cache.Shared)
	}
	// Sharing-state update to the directory (accounting; the authoritative
	// transition happens when the directory processes the request).
	n.sendAfter(n.sys.Cfg.L2HitLatency(), Msg{Kind: MsgDirUpd, Dst: n.sys.Home(m.Line), Line: m.Line, Requester: m.Requester})
}

// handlePredGetM services a predicted write request: forward and invalidate
// if holding in a forwardable state; otherwise invalidate (when present)
// and acknowledge. Invalidations are always acknowledged — even when the
// copy is already gone — so the requester's ack count, which the directory
// derives from its serialized view, is always satisfied despite races with
// other predicted invalidations.
func (n *Node) handlePredGetM(m Msg) {
	n.stats.SnoopLookups++
	n.trainExternal(m)
	if ms, ok := n.mshrFor(m.Line); ok {
		// Our own miss on this line is in flight: acknowledge the
		// invalidation now and poison the eventual fill.
		ms.poisoned = true
		n.sendAfter(n.sys.Cfg.L2TagLatency, Msg{Kind: MsgInvAck, Dst: m.Requester, Line: m.Line, Requester: m.Requester})
		return
	}
	st := n.localState(m.Line)
	switch {
	case st.CanForward():
		n.sendAfter(n.sys.Cfg.L2HitLatency(), Msg{Kind: MsgData, Dst: m.Requester, Line: m.Line,
			Requester: m.Requester, MissKind: m.MissKind})
		n.invalidateLocal(m.Line)
		n.sendAfter(n.sys.Cfg.L2HitLatency(), Msg{Kind: MsgDirUpd, Dst: n.sys.Home(m.Line), Line: m.Line, Requester: m.Requester})
	default:
		if !st.Valid() {
			// Nothing here yet: a miss of ours may be about to issue and
			// would fill after the requester's transaction serializes.
			n.prunePredInv()
			n.recentPredInv[m.Line] = n.sys.Sim.Now()
		}
		n.invalidateLocal(m.Line)
		n.sendAfter(n.sys.Cfg.L2TagLatency, Msg{Kind: MsgInvAck, Dst: m.Requester, Line: m.Line, Requester: m.Requester})
	}
}

// handleFwdGetS services a directory-issued forward. The directory's
// serialized view guarantees the data is (semantically) here, possibly in
// the writeback buffer or just-invalidated by a racing predicted request;
// the node always responds with data.
func (n *Node) handleFwdGetS(m Msg) {
	n.stats.SnoopLookups++
	n.trainExternal(m)
	st := n.localState(m.Line)
	n.sendAfter(n.sys.Cfg.L2HitLatency(), Msg{Kind: MsgData, Dst: m.Requester, Line: m.Line,
		Requester: m.Requester, MissKind: m.MissKind})
	if st == cache.Modified {
		n.sendAfter(n.sys.Cfg.L2HitLatency(), Msg{Kind: MsgWriteback, Dst: n.sys.Home(m.Line), Line: m.Line, Requester: n.self})
	}
	if st.CanForward() && n.l2.Peek(m.Line) != nil {
		n.l2.SetState(m.Line, cache.Shared)
	}
}

// handleFwdGetM services a directory-issued forward-and-invalidate.
func (n *Node) handleFwdGetM(m Msg) {
	n.stats.SnoopLookups++
	n.trainExternal(m)
	n.sendAfter(n.sys.Cfg.L2HitLatency(), Msg{Kind: MsgData, Dst: m.Requester, Line: m.Line,
		Requester: m.Requester, MissKind: m.MissKind})
	n.invalidateLocal(m.Line)
}

// handleInv invalidates a shared copy; the ack goes to the requester.
func (n *Node) handleInv(m Msg) {
	n.stats.SnoopLookups++
	n.trainExternal(m)
	n.invalidateLocal(m.Line)
	n.sendAfter(n.sys.Cfg.L2TagLatency, Msg{Kind: MsgInvAck, Dst: m.Requester, Line: m.Line, Requester: m.Requester})
}

func (n *Node) invalidateLocal(l arch.LineAddr) {
	n.l1.Invalidate(l)
	n.l2.Invalidate(l)
}

func (n *Node) handleData(m Msg) {
	ms, ok := n.mshrFor(m.Line)
	if !ok {
		n.stats.DupData++
		return
	}
	if !m.FromMem && m.Src != n.self {
		ms.respFrom = ms.respFrom.Add(m.Src)
		// A cache that sends Data for a write/upgrade has invalidated
		// itself; its Data doubles as an invalidation ack. This also
		// covers the race where the directory expected a plain InvAck but
		// the holder had silently acquired a forwardable state.
		if ms.kind != predictor.ReadMiss && !ms.ackers.Contains(m.Src) {
			ms.acksGot++
			ms.ackers = ms.ackers.Add(m.Src)
		}
	}
	if ms.dataArrived {
		n.stats.DupData++
		n.checkComplete(ms)
		return
	}
	ms.dataArrived = true
	ms.dataExcl = m.Excl
	ms.fromMem = m.FromMem
	if !m.FromMem && m.Src != n.self {
		ms.provider = m.Src
	}
	n.checkComplete(ms)
}

func (n *Node) handleInvAck(m Msg) {
	ms, ok := n.mshrFor(m.Line)
	if !ok {
		return // stale ack from an already-finalized race; harmless
	}
	ms.acksGot++
	ms.ackers = ms.ackers.Add(m.Src)
	ms.respFrom = ms.respFrom.Add(m.Src)
	n.checkComplete(ms)
}

func (n *Node) handleNack(m Msg) {
	n.stats.Nacks++
	if ms, ok := n.mshrFor(m.Line); ok {
		ms.predOverheadBytes += uint64(ControlBytes)
		ms.respFrom = ms.respFrom.Add(m.Src)
		ms.nackFrom = ms.nackFrom.Add(m.Src)
		n.checkComplete(ms)
	}
}

func (n *Node) handleDirResp(m Msg) {
	ms, ok := n.mshrFor(m.Line)
	if !ok {
		return
	}
	ms.haveDirResp = true
	ms.sufficient = m.Excl
	ms.communicating = m.HadLine
	ms.acksNeeded = m.AckCount
	ms.needData = m.NeedData
	ms.predSupply = m.PredSupply
	if m.PredSupply {
		ms.supplier = m.Supplier
	}
	if ms.kind != predictor.ReadMiss {
		ms.dirTargets = m.Pred
	}
	n.checkComplete(ms)
}

// checkComplete fires the CPU callback and finalizes the transaction when
// all expected responses have arrived.
func (n *Node) checkComplete(ms *mshr) {
	// CPU-visible completion: reads proceed on first data (paper §4.5);
	// writes wait for the directory verdict, ownership data and all acks.
	readReady := ms.kind == predictor.ReadMiss && ms.dataArrived
	writeReady := ms.kind != predictor.ReadMiss && ms.haveDirResp &&
		ms.acksGot >= ms.acksNeeded && (ms.dataArrived || !ms.needData)
	if !ms.cpuCalled && (readReady || writeReady) {
		ms.cpuCalled = true
		ms.cpuLat = n.sys.clockNow() - ms.start
		lat := uint64(ms.cpuLat)
		n.stats.MissLatencySum += lat
		// Communicating status is known reliably only after DirResp; for
		// reads, infer from the data source when DirResp is still in
		// flight (a cache provider means communicating).
		if ms.haveDirResp && ms.communicating || (!ms.haveDirResp && ms.provider != arch.None) {
			n.stats.CommLatencySum += lat
		} else {
			n.stats.NonCommLatencySum += lat
		}
		if n.sys.Fast {
			// The cascade resolves the transaction at one real instant;
			// surface the completion to the CPU at its virtual time.
			n.sys.Sim.AtFn(ms.start+ms.cpuLat, fireCPUDone, ms)
		} else {
			ms.cpuDone()
		}
	}
	// Retry race (see MsgGetRetry): the directory's data plan relied on a
	// predicted holder, but that holder turned out unable to forward —
	// it Nacked (read), or responded without data while data is still
	// missing (write). The home repairs via a directory-issued forward.
	if ms.haveDirResp && ms.predSupply && !ms.retried && ms.supplier != arch.None &&
		(ms.nackFrom.Contains(ms.supplier) ||
			(ms.needData && !ms.dataArrived && ms.respFrom.Contains(ms.supplier) && ms.provider != ms.supplier)) {
		ms.retried = true
		n.send(Msg{Kind: MsgGetRetry, Dst: n.sys.Home(ms.line), Line: ms.line,
			Requester: n.self, MissKind: ms.kind})
		return
	}
	// Transaction completion additionally requires the directory verdict.
	if ms.cpuCalled && ms.haveDirResp && (ms.dataArrived || !ms.needData) && ms.acksGot >= ms.acksNeeded {
		n.finalize(ms)
	}
}

// finalize installs the line, unblocks the directory, trains the predictor
// and replays deferred/waiting work.
func (n *Node) finalize(ms *mshr) {
	delete(n.mshrs, ms.line)
	if n.memoMshr == ms {
		n.memoMshr = nil
	}

	// Install the fill.
	switch ms.kind {
	case predictor.ReadMiss:
		st := cache.Forward
		if ms.dataExcl {
			st = cache.Exclusive
		}
		n.fill(ms.line, st)
	default:
		n.fill(ms.line, cache.Modified)
	}

	// Unblock the home so queued transactions may proceed.
	n.send(Msg{Kind: MsgUnblock, Dst: n.sys.Home(ms.line), Line: ms.line, Requester: n.self})

	// Statistics and training.
	if ms.communicating {
		n.stats.Communicating++
	} else {
		n.stats.NonCommunicating++
	}
	if o := n.sys.obs; o != nil && o.Miss != nil {
		o.Miss(n.self, ms.kind, ms.cpuLat, ms.communicating,
			!ms.predSet.Empty(), !ms.predSet.Empty() && ms.communicating && ms.sufficient)
	}
	actual := ms.ackers.Union(ms.dirTargets)
	if ms.provider != arch.None {
		actual = actual.Add(ms.provider)
	}
	minSufficient := actual.Count()
	if minSufficient == 0 {
		minSufficient = 1 // memory counts as one destination (Table 5 note)
	}
	n.stats.ActualTargets += uint64(minSufficient)

	if !ms.predSet.Empty() {
		if ms.communicating {
			if ms.sufficient {
				n.stats.PredCorrect++
				n.stats.PredCorrectByTag[ms.predTag]++
			} else {
				n.stats.PredWrong++
			}
			n.stats.PredBytesComm += ms.predOverheadBytes
		} else {
			n.stats.PredOnNonComm++
			n.stats.PredBytesNonComm += ms.predOverheadBytes
		}
	}

	inval := ms.ackers.Union(ms.dirTargets)
	if ms.kind != predictor.ReadMiss && ms.provider != arch.None {
		inval = inval.Add(ms.provider)
	}
	n.pred.Train(
		predictor.Miss{Node: n.self, Line: ms.line, PC: ms.pc, Kind: ms.kind},
		predictor.Outcome{Provider: ms.provider, Invalidated: inval, Communicating: ms.communicating},
	)

	// A racing predicted invalidation was acknowledged mid-miss: the fill
	// is immediately invalid.
	if ms.poisoned {
		n.invalidateLocal(ms.line)
	}

	// Replay same-line accesses that waited on this transaction.
	for _, w := range ms.waiters {
		w()
	}
}

// fill inserts a line into the L2 (and L1), evicting as needed.
func (n *Node) fill(l arch.LineAddr, st cache.State) {
	v, evicted := n.l2.Insert(l, st)
	n.l1.Insert(l, cache.Shared)
	if evicted {
		n.evict(v)
	}
}

// evict issues the eviction transaction for a victim line.
func (n *Node) evict(v cache.Victim) {
	n.l1.Invalidate(v.Addr)
	n.wb[v.Addr] = &wbEntry{state: v.State}
	kind := MsgPutS
	switch v.State {
	case cache.Modified:
		kind = MsgPutM
	case cache.Exclusive, cache.Forward:
		kind = MsgPutE
	case cache.Shared, cache.Invalid:
		// Shared keeps the preset PutS; Insert never yields an Invalid victim.
	}
	n.send(Msg{Kind: kind, Dst: n.sys.Home(v.Addr), Line: v.Addr, Requester: n.self})
}

func (n *Node) handlePutAck(m Msg) {
	e, ok := n.wb[m.Line]
	if !ok {
		return
	}
	delete(n.wb, m.Line)
	for _, w := range e.waiters {
		w()
	}
}

func (n *Node) sendAfter(d event.Time, m Msg) {
	m.Src = n.self
	n.sys.sendAfter(d, m)
}
