package protocol

import (
	"math/rand"
	"testing"

	"spcoh/internal/arch"
	"spcoh/internal/cache"
	"spcoh/internal/event"
	"spcoh/internal/noc"
	"spcoh/internal/predictor"
)

// testConfig returns a small 2x2 machine with tiny caches so evictions and
// conflict behaviour are exercised quickly.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Nodes = 4
	cfg.NoC = noc.Config{Width: 2, Height: 2, RouterDelay: 2, LinkDelay: 1, FlitBytes: 16, HeaderFlits: 1}
	cfg.L1 = cache.Config{Bytes: 4 * arch.LineSize, Ways: 1}
	cfg.L2 = cache.Config{Bytes: 32 * arch.LineSize, Ways: 2}
	return cfg
}

// fixedPred always predicts the same set.
type fixedPred struct{ set arch.SharerSet }

func (f *fixedPred) Name() string { return "fixed" }
func (f *fixedPred) Predict(predictor.Miss) (arch.SharerSet, predictor.Tag) {
	if f.set.Empty() {
		return arch.EmptySet, predictor.TagNone
	}
	return f.set, predictor.TagOther
}
func (f *fixedPred) Train(predictor.Miss, predictor.Outcome) {}
func (f *fixedPred) OnSync(predictor.SyncEvent)              {}
func (f *fixedPred) StorageBits() int                        { return 0 }

// chaosPred predicts a random subset on every miss — an adversarial
// predictor used to stress every race path in the protocol.
type chaosPred struct {
	rng   *rand.Rand
	nodes int
}

func (c *chaosPred) Name() string { return "chaos" }
func (c *chaosPred) Predict(predictor.Miss) (arch.SharerSet, predictor.Tag) {
	if c.rng.Intn(4) == 0 {
		return arch.EmptySet, predictor.TagNone
	}
	var s arch.SharerSet
	for i := 0; i < c.nodes; i++ {
		if c.rng.Intn(3) == 0 {
			s = s.Add(arch.NodeID(i))
		}
	}
	return s, predictor.TagOther
}
func (c *chaosPred) Train(predictor.Miss, predictor.Outcome) {}
func (c *chaosPred) OnSync(predictor.SyncEvent)              {}
func (c *chaosPred) StorageBits() int                        { return 0 }

// newTestSystem builds a system over a fresh simulator.
func newTestSystem(t *testing.T, cfg Config, preds []predictor.Predictor) (*event.Sim, *System) {
	t.Helper()
	sim := event.New()
	return sim, New(sim, cfg, preds)
}

// access runs a single access to completion and returns its latency.
func access(t *testing.T, sim *event.Sim, n *Node, addr arch.Addr, write bool) event.Time {
	t.Helper()
	start := sim.Now()
	var end event.Time
	done := false
	n.Access(0x400, addr, write, func() { done = true; end = sim.Now() })
	sim.Run()
	if !done {
		t.Fatalf("access to %#x (write=%v) never completed", uint64(addr), write)
	}
	return end - start
}

// quiesce drains the simulator and checks invariants.
func quiesce(t *testing.T, sim *event.Sim, sys *System, allowSoft bool) {
	t.Helper()
	sim.Run()
	for _, n := range sys.Nodes {
		if n.Outstanding() != 0 {
			t.Fatalf("node %d has %d outstanding transactions at quiescence", n.ID(), n.Outstanding())
		}
	}
	hard, soft := sys.CheckCoherence()
	if len(hard) > 0 {
		t.Fatalf("hard coherence violations: %v", hard)
	}
	if !allowSoft && len(soft) > 0 {
		t.Fatalf("soft coherence violations without prediction: %v", soft)
	}
}

func TestColdReadFromMemory(t *testing.T) {
	sim, sys := newTestSystem(t, testConfig(), nil)
	lat := access(t, sim, sys.Nodes[0], 0x1000, false)
	if lat < event.Time(sys.Cfg.MemLatency) {
		t.Fatalf("cold miss latency %d < memory latency %d", lat, sys.Cfg.MemLatency)
	}
	st := sys.Stats()
	if st.Misses != 1 || st.ReadMisses != 1 || st.NonCommunicating != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Fill should be Exclusive (sole copy).
	if l := sys.Nodes[0].L2().Peek(arch.Addr(0x1000).Line()); l == nil || l.State != cache.Exclusive {
		t.Fatalf("fill state = %v", l)
	}
	quiesce(t, sim, sys, false)
}

func TestL1AndL2Hits(t *testing.T) {
	sim, sys := newTestSystem(t, testConfig(), nil)
	access(t, sim, sys.Nodes[0], 0x1000, false)
	lat := access(t, sim, sys.Nodes[0], 0x1000, false)
	if lat != sys.Cfg.L1Latency {
		t.Fatalf("L1 hit latency = %d, want %d", lat, sys.Cfg.L1Latency)
	}
	st := sys.Stats()
	if st.L1Hits != 1 {
		t.Fatalf("L1 hits = %d", st.L1Hits)
	}
}

func TestCacheToCacheRead(t *testing.T) {
	sim, sys := newTestSystem(t, testConfig(), nil)
	access(t, sim, sys.Nodes[1], 0x2000, true) // node 1 takes M
	lat := access(t, sim, sys.Nodes[0], 0x2000, false)
	if lat >= sys.Cfg.MemLatency {
		t.Fatalf("cache-to-cache read took %d, should beat memory (%d)", lat, sys.Cfg.MemLatency)
	}
	st := sys.Stats()
	if st.Communicating != 1 {
		t.Fatalf("communicating = %d, want 1", st.Communicating)
	}
	// Post state: node 1 downgraded to S, node 0 holds F.
	line := arch.Addr(0x2000).Line()
	if l := sys.Nodes[1].L2().Peek(line); l == nil || l.State != cache.Shared {
		t.Fatalf("node1 state = %v, want S", l)
	}
	if l := sys.Nodes[0].L2().Peek(line); l == nil || l.State != cache.Forward {
		t.Fatalf("node0 state = %v, want F", l)
	}
	quiesce(t, sim, sys, false)
}

func TestWriteInvalidatesSharers(t *testing.T) {
	sim, sys := newTestSystem(t, testConfig(), nil)
	for i := 0; i < 3; i++ {
		access(t, sim, sys.Nodes[i], 0x3000, false)
	}
	access(t, sim, sys.Nodes[3], 0x3000, true)
	line := arch.Addr(0x3000).Line()
	for i := 0; i < 3; i++ {
		if l := sys.Nodes[i].L2().Peek(line); l != nil {
			t.Fatalf("node %d still holds %v after invalidation", i, l.State)
		}
	}
	if l := sys.Nodes[3].L2().Peek(line); l == nil || l.State != cache.Modified {
		t.Fatalf("writer state = %v, want M", l)
	}
	quiesce(t, sim, sys, false)
}

func TestUpgradeMiss(t *testing.T) {
	sim, sys := newTestSystem(t, testConfig(), nil)
	access(t, sim, sys.Nodes[0], 0x4000, false)
	access(t, sim, sys.Nodes[1], 0x4000, false) // both share now
	access(t, sim, sys.Nodes[0], 0x4000, true)  // upgrade
	st := sys.Stats()
	if st.UpgradeMisses != 1 {
		t.Fatalf("upgrade misses = %d; stats %+v", st.UpgradeMisses, st)
	}
	line := arch.Addr(0x4000).Line()
	if l := sys.Nodes[0].L2().Peek(line); l == nil || l.State != cache.Modified {
		t.Fatalf("upgrader state = %v, want M", l)
	}
	if l := sys.Nodes[1].L2().Peek(line); l != nil {
		t.Fatalf("node1 should be invalidated, has %v", l.State)
	}
	quiesce(t, sim, sys, false)
}

func TestSilentEToMUpgrade(t *testing.T) {
	sim, sys := newTestSystem(t, testConfig(), nil)
	access(t, sim, sys.Nodes[0], 0x5000, false) // E fill
	lat := access(t, sim, sys.Nodes[0], 0x5000, true)
	if lat > sys.Cfg.L1Latency+sys.Cfg.L2HitLatency() {
		t.Fatalf("E->M write should be an L2 hit, took %d", lat)
	}
	st := sys.Stats()
	if st.Misses != 1 {
		t.Fatalf("misses = %d, want 1 (silent upgrade)", st.Misses)
	}
}

func TestCorrectPredictionAvoidsIndirection(t *testing.T) {
	// Baseline: read owned by a remote cache via the directory.
	cfgA := testConfig()
	simA, sysA := newTestSystem(t, cfgA, nil)
	access(t, simA, sysA.Nodes[3], 0x6000, true)
	baseLat := access(t, simA, sysA.Nodes[0], 0x6000, false)

	// Predicted: node 0 predicts node 3.
	preds := make([]predictor.Predictor, 4)
	preds[0] = &fixedPred{set: arch.SetOf(3)}
	simB, sysB := newTestSystem(t, testConfig(), preds)
	access(t, simB, sysB.Nodes[3], 0x6000, true)
	predLat := access(t, simB, sysB.Nodes[0], 0x6000, false)

	if predLat >= baseLat {
		t.Fatalf("predicted read latency %d should beat directory %d", predLat, baseLat)
	}
	st := sysB.Stats()
	if st.Predicted != 1 || st.PredCorrect != 1 {
		t.Fatalf("prediction stats = %+v", st)
	}
	quiesce(t, simB, sysB, true)
	hard, _ := sysB.CheckCoherence()
	if len(hard) != 0 {
		t.Fatalf("violations: %v", hard)
	}
}

func TestMispredictionFallsBackToDirectory(t *testing.T) {
	preds := make([]predictor.Predictor, 4)
	preds[0] = &fixedPred{set: arch.SetOf(2)} // wrong: owner is 3
	sim, sys := newTestSystem(t, testConfig(), preds)
	access(t, sim, sys.Nodes[3], 0x7000, true)
	access(t, sim, sys.Nodes[0], 0x7000, false)
	st := sys.Stats()
	if st.PredWrong != 1 || st.PredCorrect != 0 {
		t.Fatalf("prediction stats = %+v", st)
	}
	if st.Nacks == 0 {
		t.Fatal("mispredicted node should have Nacked")
	}
	quiesce(t, sim, sys, true)
}

func TestPredictedWriteWithSharers(t *testing.T) {
	preds := make([]predictor.Predictor, 4)
	preds[3] = &fixedPred{set: arch.SetOf(0, 1, 2)}
	sim, sys := newTestSystem(t, testConfig(), preds)
	for i := 0; i < 3; i++ {
		access(t, sim, sys.Nodes[i], 0x8000, false)
	}
	access(t, sim, sys.Nodes[3], 0x8000, true)
	st := sys.Stats()
	if st.PredCorrect != 1 {
		t.Fatalf("write prediction should be sufficient: %+v", st)
	}
	line := arch.Addr(0x8000).Line()
	for i := 0; i < 3; i++ {
		if l := sys.Nodes[i].L2().Peek(line); l != nil {
			t.Fatalf("node %d not invalidated", i)
		}
	}
	quiesce(t, sim, sys, true)
}

func TestPredictionOnNonCommunicatingMiss(t *testing.T) {
	preds := make([]predictor.Predictor, 4)
	preds[0] = &fixedPred{set: arch.SetOf(1, 2)}
	sim, sys := newTestSystem(t, testConfig(), preds)
	access(t, sim, sys.Nodes[0], 0x9000, false) // nobody has it: memory
	st := sys.Stats()
	if st.PredOnNonComm != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.PredBytesNonComm == 0 {
		t.Fatal("wasted prediction bandwidth should be accounted")
	}
	quiesce(t, sim, sys, true)
}

func TestEvictionWritebackAndRefill(t *testing.T) {
	cfg := testConfig()
	cfg.L2 = cache.Config{Bytes: 4 * arch.LineSize, Ways: 1} // 4 lines
	sim, sys := newTestSystem(t, cfg, nil)
	// Write lines that collide and force dirty evictions.
	for i := 0; i < 12; i++ {
		access(t, sim, sys.Nodes[0], arch.Addr(i*4*arch.LineSize), true)
	}
	// Re-access the first line (must refetch from memory after writeback).
	access(t, sim, sys.Nodes[0], 0, false)
	quiesce(t, sim, sys, false)
	if sys.Nodes[0].L2().Stats().Writebacks == 0 {
		t.Fatal("expected dirty writebacks")
	}
}

// driver issues a per-node random workload, one access at a time per node.
func driver(sim *event.Sim, sys *System, seed int64, opsPerNode, addrPool int, completed *int) {
	for id := range sys.Nodes {
		n := sys.Nodes[id]
		rng := rand.New(rand.NewSource(seed + int64(id)))
		var next func(i int)
		next = func(i int) {
			if i >= opsPerNode {
				return
			}
			addr := arch.Addr(rng.Intn(addrPool)) * arch.LineSize
			write := rng.Intn(3) == 0
			n.Access(uint64(0x400+rng.Intn(32)), addr, write, func() {
				*completed++
				// Small think time to interleave nodes.
				sim.After(event.Time(rng.Intn(5)), func() { next(i + 1) })
			})
		}
		next(0)
	}
}

func TestStressBaseline(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		sim, sys := newTestSystem(t, testConfig(), nil)
		completed := 0
		driver(sim, sys, seed, 300, 24, &completed)
		sim.Run()
		if completed != 4*300 {
			t.Fatalf("seed %d: %d/%d accesses completed", seed, completed, 4*300)
		}
		quiesce(t, sim, sys, false)
	}
}

func TestStressChaosPrediction(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		preds := make([]predictor.Predictor, 4)
		for i := range preds {
			preds[i] = &chaosPred{rng: rand.New(rand.NewSource(seed*100 + int64(i))), nodes: 4}
		}
		sim, sys := newTestSystem(t, testConfig(), preds)
		completed := 0
		driver(sim, sys, seed, 300, 16, &completed)
		sim.Run()
		if completed != 4*300 {
			t.Fatalf("seed %d: %d/%d accesses completed", seed, completed, 4*300)
		}
		quiesce(t, sim, sys, true)
	}
}

func TestStressTinyCachesChaos(t *testing.T) {
	// Tiny caches maximize evictions and writeback races.
	for seed := int64(0); seed < 8; seed++ {
		cfg := testConfig()
		cfg.L2 = cache.Config{Bytes: 4 * arch.LineSize, Ways: 2}
		cfg.L1 = cache.Config{Bytes: 2 * arch.LineSize, Ways: 1}
		preds := make([]predictor.Predictor, 4)
		for i := range preds {
			preds[i] = &chaosPred{rng: rand.New(rand.NewSource(seed*37 + int64(i))), nodes: 4}
		}
		sim, sys := newTestSystem(t, cfg, preds)
		completed := 0
		driver(sim, sys, seed, 250, 12, &completed)
		sim.Run()
		if completed != 4*250 {
			t.Fatalf("seed %d: %d/%d accesses completed", seed, completed, 4*250)
		}
		quiesce(t, sim, sys, true)
	}
}

func TestStress16Nodes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.L2 = cache.Config{Bytes: 64 * arch.LineSize, Ways: 4}
	cfg.L1 = cache.Config{Bytes: 8 * arch.LineSize, Ways: 1}
	preds := make([]predictor.Predictor, 16)
	for i := range preds {
		preds[i] = &chaosPred{rng: rand.New(rand.NewSource(int64(i))), nodes: 16}
	}
	sim, sys := newTestSystem(t, cfg, preds)
	completed := 0
	driver(sim, sys, 42, 200, 48, &completed)
	sim.Run()
	if completed != 16*200 {
		t.Fatalf("%d/%d accesses completed", completed, 16*200)
	}
	quiesce(t, sim, sys, true)
}

func TestTable5AccountingPlausible(t *testing.T) {
	preds := make([]predictor.Predictor, 4)
	for i := range preds {
		preds[i] = &fixedPred{set: arch.SetOf(0, 1, 2, 3).Remove(arch.NodeID(i))}
	}
	sim, sys := newTestSystem(t, testConfig(), preds)
	completed := 0
	driver(sim, sys, 7, 200, 16, &completed)
	sim.Run()
	st := sys.Stats()
	if st.Predicted == 0 || st.PredTargets != st.Predicted*3 {
		t.Fatalf("predicted target accounting wrong: %+v", st)
	}
	if st.ActualTargets == 0 {
		t.Fatal("actual targets should be accounted")
	}
	quiesce(t, sim, sys, true)
}
