// Package protocol implements the directory-based MESIF coherence protocol
// of the paper's baseline machine, extended with the destination-set
// prediction actions of §4.5.
//
// Structure:
//   - messages.go: the coherence message vocabulary and sizes
//   - dir.go:      the per-tile directory slice (full-map, per-line
//     serialization with a busy/unblock discipline)
//   - node.go:     the per-tile L2 cache controller: L1/L2 arrays, MSHRs,
//     writeback buffer, predicted-request path, miss completion
//
// The protocol operates on top of the internal/noc mesh; every message is a
// real network packet with latency, serialization and contention.
package protocol

import (
	"spcoh/internal/arch"
	"spcoh/internal/predictor"
)

// MsgKind enumerates coherence message types.
type MsgKind uint8

const (
	// Requests to the directory.
	MsgGetS MsgKind = iota // read miss
	MsgGetM                // write/upgrade miss; carries HadLine
	MsgPutS                // eviction of a Shared line
	MsgPutE                // eviction of an Exclusive/Forward (clean) line
	MsgPutM                // eviction of a Modified line (carries data)

	// Predicted requests, sent directly to predicted nodes (§4.5).
	MsgPredGetS // "forward me the line if you can"
	MsgPredGetM // "forward and/or invalidate"

	// Directory-to-node.
	MsgFwdGetS // forward data to requester, downgrade
	MsgFwdGetM // forward data to requester, invalidate
	MsgInv     // invalidate; ack to requester
	MsgDirResp // directory reply to a GetM: sufficiency, ack count, data plan
	MsgPutAck  // eviction acknowledged

	// Node-to-node responses.
	MsgData      // data response (carries provider and exclusivity)
	MsgInvAck    // invalidation acknowledgment
	MsgNack      // predicted node cannot help
	MsgDirUpd    // predicted node -> directory: sharing-state update (§4.5)
	MsgUnblock   // requester -> directory: transaction complete
	MsgWriteback // owner -> directory/memory: dirty data on downgrade

	// MsgGetRetry breaks the rare race where the directory judged a
	// prediction sufficient but the predicted supplier had already lost
	// the line to a racing invalidation: the requester asks the home to
	// supply data from memory. The directory state is already correct;
	// only the data delivery is replayed.
	MsgGetRetry
)

// String returns the message mnemonic.
func (k MsgKind) String() string {
	names := [...]string{
		"GetS", "GetM", "PutS", "PutE", "PutM",
		"PredGetS", "PredGetM",
		"FwdGetS", "FwdGetM", "Inv", "DirResp", "PutAck",
		"Data", "InvAck", "Nack", "DirUpd", "Unblock", "Writeback", "GetRetry",
	}
	if int(k) < len(names) {
		return names[k]
	}
	return "?"
}

// ControlBytes and DataBytes are message payload sizes: a control packet
// carries address + type + a sharer bit-vector (8 bytes); a data packet adds
// the 64-byte cache line.
const (
	ControlBytes = 8
	DataBytes    = arch.LineSize + ControlBytes
)

// Bytes returns the payload size of a message kind.
func (k MsgKind) Bytes() int {
	switch k {
	case MsgData, MsgPutM, MsgWriteback:
		return DataBytes
	default:
		return ControlBytes
	}
}

// CarriesData reports whether the message includes a cache line.
func (k MsgKind) CarriesData() bool { return k.Bytes() == DataBytes }

// Msg is a coherence message in flight.
type Msg struct {
	Kind MsgKind
	Src  arch.NodeID
	Dst  arch.NodeID
	Line arch.LineAddr

	// Requester is the node whose miss this message serves (may differ
	// from Src for forwarded/ack messages).
	Requester arch.NodeID

	// Pred is the predicted destination set attached to GetS/GetM, and the
	// correctly-predicted-sharer vector in DirResp.
	Pred arch.SharerSet

	// HadLine marks a GetM from a node holding a Shared copy (upgrade).
	HadLine bool

	// Excl marks a Data response granting exclusivity (E/M fill), and in
	// DirResp whether the prediction was sufficient.
	Excl bool

	// AckCount in DirResp is the number of InvAcks the requester must
	// collect; in Data from the directory path it is 0.
	AckCount int

	// NeedData in DirResp tells the requester whether a data message is
	// still coming via the directory path.
	NeedData bool

	// PredSupply in DirResp marks a data plan that relies on a predicted
	// node forwarding (no directory-issued forward or memory fetch). If
	// the predicted holder turns out unable to forward, the requester
	// recovers with MsgGetRetry. Supplier names that expected holder.
	PredSupply bool
	Supplier   arch.NodeID

	// FromMem marks data supplied by memory rather than a cache.
	FromMem bool

	// Kind of the original miss (for training and stats).
	MissKind predictor.MissKind

	// PC of the instruction that caused the miss (for INST prediction).
	PC uint64
}
