package protocol

import (
	"math/rand"
	"testing"

	"spcoh/internal/arch"
	"spcoh/internal/cache"
	"spcoh/internal/event"
	"spcoh/internal/predictor"
)

// predInvRun executes one seeded chaos-predictor run and returns the final
// cycle count and aggregate statistics. Chaos predictors issue predicted
// invalidations at nodes that hold nothing, which is exactly what populates
// recentPredInv.
func predInvRun(t *testing.T, seed int64, window event.Time) (event.Time, NodeStats) {
	t.Helper()
	cfg := testConfig()
	cfg.L2 = cache.Config{Bytes: 4 * arch.LineSize, Ways: 2}
	cfg.L1 = cache.Config{Bytes: 2 * arch.LineSize, Ways: 1}
	cfg.PredInvWindow = window
	preds := make([]predictor.Predictor, 4)
	for i := range preds {
		preds[i] = &chaosPred{rng: rand.New(rand.NewSource(seed*19 + int64(i))), nodes: 4}
	}
	sim, sys := newTestSystem(t, cfg, preds)
	completed := 0
	driver(sim, sys, seed, 250, 12, &completed)
	sim.Run()
	if completed != 4*250 {
		t.Fatalf("seed %d: %d/%d accesses completed", seed, completed, 4*250)
	}
	quiesce(t, sim, sys, true)
	return sim.Now(), sys.Stats()
}

// TestPredInvEvictionInvisible pins the contract of prunePredInv: evicting
// expired recentPredInv entries must never change a coherence decision,
// because the poisoning lookup already rejects entries older than the
// window. The same seeded run is executed with the default lazy pruning and
// with pruning forced on every insert/lookup; cycle counts and every
// statistic must match exactly.
func TestPredInvEvictionInvisible(t *testing.T) {
	defer func(min int) { predInvPruneMin = min }(predInvPruneMin)
	for _, window := range []event.Time{0, 40, 2000} {
		for seed := int64(0); seed < 4; seed++ {
			predInvPruneMin = 1 << 30 // pruning effectively off
			lazyCycles, lazyStats := predInvRun(t, seed, window)
			predInvPruneMin = 0 // prune on every touch
			eagerCycles, eagerStats := predInvRun(t, seed, window)
			if lazyCycles != eagerCycles {
				t.Fatalf("window %d seed %d: cycles diverge with eager eviction: %d vs %d",
					window, seed, lazyCycles, eagerCycles)
			}
			if lazyStats != eagerStats {
				t.Fatalf("window %d seed %d: stats diverge with eager eviction:\nlazy  %+v\neager %+v",
					window, seed, lazyStats, eagerStats)
			}
		}
	}
}

// TestPredInvTableBounded verifies that with eager pruning the race-window
// table cannot accumulate stale entries: at quiescence every surviving
// entry is younger than the window.
func TestPredInvTableBounded(t *testing.T) {
	defer func(min int) { predInvPruneMin = min }(predInvPruneMin)
	predInvPruneMin = 0
	cfg := testConfig()
	cfg.PredInvWindow = 64
	preds := make([]predictor.Predictor, 4)
	for i := range preds {
		preds[i] = &chaosPred{rng: rand.New(rand.NewSource(int64(i) + 5)), nodes: 4}
	}
	sim, sys := newTestSystem(t, cfg, preds)
	completed := 0
	driver(sim, sys, 11, 300, 12, &completed)
	sim.Run()
	quiesce(t, sim, sys, true)
	for _, n := range sys.Nodes {
		// Force one more prune at the final time and check the survivors.
		n.prunePredInv()
		for l, at := range n.recentPredInv { //spvet:ordered
			if sim.Now()-at >= n.predInvWindow() {
				t.Fatalf("node %d: stale predicted-invalidation entry for line %v survived pruning (age %d >= window %d)",
					n.self, l, sim.Now()-at, n.predInvWindow())
			}
		}
	}
}
