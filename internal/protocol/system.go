package protocol

import (
	"fmt"
	"sort"

	"spcoh/internal/arch"
	"spcoh/internal/cache"
	"spcoh/internal/event"
	"spcoh/internal/noc"
	"spcoh/internal/predictor"
)

// Config sizes the coherent memory system (defaults = paper Table 4).
type Config struct {
	Nodes int

	L1 cache.Config
	L2 cache.Config

	L1Latency     event.Time // load-to-use
	L2TagLatency  event.Time
	L2DataLatency event.Time
	DirLatency    event.Time // directory slice access
	MemLatency    event.Time // main memory round trip from the home tile

	// PredInvWindow bounds how long a predicted invalidation that found
	// nothing to invalidate can poison a subsequent same-line miss (the race
	// in Node.recentPredInv); entries past the window are evicted. Zero
	// selects the default of 4*MemLatency.
	PredInvWindow event.Time

	NoC noc.Config
}

// DefaultConfig returns the paper's Table 4 machine.
func DefaultConfig() Config {
	return Config{
		Nodes:         16,
		L1:            cache.Config{Bytes: 16 << 10, Ways: 1},
		L2:            cache.Config{Bytes: 1 << 20, Ways: 8},
		L1Latency:     2,
		L2TagLatency:  2,
		L2DataLatency: 6,
		DirLatency:    16,
		MemLatency:    150,
		NoC:           noc.DefaultConfig(),
	}
}

// ConfigFor returns the paper's machine scaled to a different core count.
// Supported sizes are perfect squares up to arch.MaxNodes = 256 — a 16x16
// mesh (the mesh stays square); cache and latency parameters are
// unchanged.
func ConfigFor(nodes int) (Config, error) {
	side := 0
	for s := 1; s*s <= nodes; s++ {
		if s*s == nodes {
			side = s
		}
	}
	if side == 0 || nodes > arch.MaxNodes {
		return Config{}, fmt.Errorf("protocol: unsupported node count %d (need a perfect square <= %d)", nodes, arch.MaxNodes)
	}
	cfg := DefaultConfig()
	cfg.Nodes = nodes
	cfg.NoC.Width, cfg.NoC.Height = side, side
	return cfg, nil
}

// L2HitLatency is the total L2 access time (tag + data).
func (c Config) L2HitLatency() event.Time { return c.L2TagLatency + c.L2DataLatency }

// System is a full coherent CMP: one Node (core-side controller) and one
// DirSlice (directory home slice) per tile, connected by the mesh.
type System struct {
	Cfg   Config
	Sim   *event.Sim
	Net   *noc.Network
	Nodes []*Node
	Dirs  []*DirSlice

	// Fast selects the fast functional mode (DESIGN.md §15): each miss's
	// coherence transaction executes as one atomic virtual-time cascade
	// (casc) at a single real-clock instant, with contention-free NoC
	// latencies; only the CPU-visible completion is deferred to the real
	// clock. Protocol state machines and all count statistics are shared
	// with the detailed mode and stay exact.
	Fast bool
	casc event.Cascade

	// Debug, when set, observes every message at delivery time (protocol
	// debugging aid; nil in normal operation).
	Debug func(now event.Time, m Msg)

	// obs, when set, feeds the run-time metrics layer. Nil — the default —
	// costs one branch per message/miss/sync.
	obs *Obs

	// lanes are the per-node scheduling lanes (event.Lane), one per tile,
	// shared by the tile's Node and DirSlice. All tile-confined schedules
	// go through them (stamping the owning node for the sharded executor);
	// cross-tile effects — message injection above all — go through
	// Lane.Call so a parallel phase defers them to the cycle barrier.
	lanes []*event.Lane

	// pools holds the per-tile freelists for the pooled scheduling records
	// of the hot paths: every in-flight message, delayed send, miss issue,
	// directory access and memory fetch rides a reused record through the
	// event queue instead of a fresh closure (DESIGN.md §11). The lists
	// are per tile — indexed by the node whose execution context touches
	// them — so shard workers never contend on a shared stack; records
	// allocated at one tile and released at another simply migrate.
	pools []tilePools

	// homeMask is Cfg.Nodes-1 when the node count is a power of two: the
	// Home interleaving then reduces to a mask, off the hot path's divide.
	homeMask uint64
}

// tilePools is one tile's freelists, padded to two cache lines so adjacent
// tiles — owned by different shards under the node-mod-K map — never share
// a line when their workers push and pop concurrently.
type tilePools struct {
	msg  []*delivery
	miss []*missIssue
	get  []*dirGet
	mem  []*memFetch
	_    [32]byte
}

// delivery carries one in-flight message through the scheduler. A record is
// acquired at send time, optionally parked through a source-side delay
// (sendAfter), injected into the NoC, and released at dispatch.
//
//spcoh:pooled
type delivery struct {
	s    *System
	m    Msg
	sent event.Time // injection time, for the metrics observer
}

// getDelivery draws from the sending tile's freelist: it runs either as
// node m.Src (sendAfter, during a parallel phase) or at the serial commit.
func (s *System) getDelivery(m Msg) *delivery {
	pool := &s.pools[m.Src].msg
	if k := len(*pool); k > 0 {
		d := (*pool)[k-1]
		*pool = (*pool)[:k-1]
		d.m = m
		return d
	}
	return &delivery{s: s, m: m}
}

// deliverMsg fires at NoC arrival: it frees the record first (Msg is all
// scalars, and dispatch may recursively send) and then dispatches. The
// record returns to the *destination* tile's freelist — the delivery event
// executes as node m.Dst, so the push is shard-local.
//
//spcoh:noalloc
func deliverMsg(a any) {
	d := a.(*delivery)
	s, m, sent := d.s, d.m, d.sent
	s.pools[m.Dst].msg = append(s.pools[m.Dst].msg, d)
	if s.obs != nil && s.obs.Message != nil {
		s.obs.Message(m.Kind, s.clockNow()-sent)
	}
	s.dispatch(m)
}

// transmitMsg fires when a sendAfter source-side delay elapses.
//
//spcoh:noalloc
func transmitMsg(a any) {
	d := a.(*delivery)
	d.s.transmit(d)
}

// Obs carries the metrics hooks of the directory protocol. Every field may
// be nil independently; hooks fire synchronously inside the simulation at
// the cycle the observed fact becomes true.
type Obs struct {
	// Message fires when a coherence message is delivered, with its
	// network latency (injection to delivery).
	Message func(kind MsgKind, lat event.Time)
	// Miss fires when a finished L2 miss is finalized. lat is the
	// CPU-visible latency; predicted/correct describe the prediction
	// attempt (correct is meaningful only for predicted communicating
	// misses, mirroring NodeStats.PredCorrect).
	Miss func(node arch.NodeID, kind predictor.MissKind, lat event.Time, comm, predicted, correct bool)
	// Sync fires when a node crosses a synchronization point.
	Sync func(node arch.NodeID, kind predictor.SyncKind)
}

// SetObserver attaches (or, with nil, detaches) the metrics hooks.
func (s *System) SetObserver(o *Obs) { s.obs = o }

// New assembles a system. preds supplies one predictor per node; nil means
// the baseline directory protocol everywhere.
func New(sim *event.Sim, cfg Config, preds []predictor.Predictor) *System {
	if cfg.Nodes != cfg.NoC.Nodes() {
		panic("protocol: Config.Nodes must match the mesh size")
	}
	s := &System{Cfg: cfg, Sim: sim, Net: noc.New(sim, cfg.NoC)}
	if cfg.Nodes&(cfg.Nodes-1) == 0 && cfg.Nodes > 1 {
		s.homeMask = uint64(cfg.Nodes - 1)
	}
	s.lanes = sim.Lanes(cfg.Nodes)
	s.Net.SetLanes(s.lanes)
	s.pools = make([]tilePools, cfg.Nodes)
	s.Nodes = make([]*Node, cfg.Nodes)
	s.Dirs = make([]*DirSlice, cfg.Nodes)
	for i := 0; i < cfg.Nodes; i++ {
		var p predictor.Predictor = predictor.Null{}
		if preds != nil && preds[i] != nil {
			p = preds[i]
		}
		s.Nodes[i] = newNode(s, arch.NodeID(i), p)
		s.Nodes[i].ln = s.lanes[i]
		s.Dirs[i] = newDirSlice(s, arch.NodeID(i))
		s.Dirs[i].ln = s.lanes[i]
	}
	return s
}

// Home returns the tile whose directory slice owns a line
// (line-interleaved, as in the paper's distributed directory). Power-of-two
// meshes — every builtin machine — take the mask path: Home runs once or
// more per message, and the integer divide showed up in big-mesh profiles.
//
//spcoh:noalloc
func (s *System) Home(l arch.LineAddr) arch.NodeID {
	if s.homeMask != 0 {
		return arch.NodeID(uint64(l) & s.homeMask)
	}
	return arch.NodeID(uint64(l) % uint64(s.Cfg.Nodes))
}

// clockNow returns the protocol-visible clock: the cascade's virtual time
// while a fast-mode transaction is draining, the engine clock otherwise.
//
//spcoh:noalloc
func (s *System) clockNow() event.Time {
	if s.casc.Active() {
		return s.casc.Now()
	}
	return s.Sim.Now()
}

// send routes a message over the NoC and dispatches it on arrival. The
// injection mutates shared link state, so it goes through the source
// tile's lane: immediate in serial operation, deferred to the cycle
// barrier during a parallel phase.
//
//spcoh:noalloc
func (s *System) send(m Msg) {
	if s.Fast {
		s.fastShip(0, m)
		return
	}
	s.lanes[m.Src].Call(transmitMsg, s.getDelivery(m)) //spvet:allow noalloc -- inlined getDelivery: cold-path freelist refill
}

//spcoh:noalloc
func (s *System) transmit(d *delivery) {
	d.sent = s.Sim.Now()
	s.Net.SendFn(d.m.Src, d.m.Dst, d.m.Kind.Bytes(), deliverMsg, d)
}

// sendAfter routes a message after a local processing delay at the source.
// The transmit event is scheduled unowned — injection is cross-tile work
// that must execute at its cycle's barrier, never on a shard worker.
//
//spcoh:noalloc
func (s *System) sendAfter(d event.Time, m Msg) {
	if s.Fast {
		s.fastShip(d, m)
		return
	}
	s.lanes[m.Src].AfterUnownedFn(d, transmitMsg, s.getDelivery(m)) //spvet:allow noalloc -- inlined getDelivery: cold-path freelist refill
}

// fastShip is the fast-mode counterpart of send/sendAfter: it accounts the
// packet on the NoC (contention-free), and schedules delivery on the active
// cascade at source delay + network latency in virtual time.
//
//spcoh:noalloc
func (s *System) fastShip(srcDelay event.Time, m Msg) {
	d := s.getDelivery(m) //spvet:allow noalloc -- inlined getDelivery: cold-path freelist refill
	lat := s.Net.FastSend(m.Src, m.Dst, m.Kind.Bytes())
	d.sent = s.casc.Now() + srcDelay
	s.casc.At(d.sent+lat, deliverMsg, d)
}

func (s *System) dispatch(m Msg) {
	if s.Debug != nil {
		s.Debug(s.clockNow(), m)
	}
	switch m.Kind {
	case MsgGetS, MsgGetM, MsgPutS, MsgPutE, MsgPutM, MsgUnblock, MsgDirUpd, MsgWriteback, MsgGetRetry:
		s.Dirs[m.Dst].handle(m)
	default:
		s.Nodes[m.Dst].handle(m)
	}
}

// Stats aggregates per-node statistics across the system.
func (s *System) Stats() NodeStats {
	var total NodeStats
	for _, n := range s.Nodes {
		total.merge(&n.stats)
	}
	return total
}

// NetStats returns the interconnect statistics.
func (s *System) NetStats() noc.Stats { return s.Net.Stats() }

// CheckCoherence validates the directory/cache invariants at quiescence
// (no in-flight transactions): every directory entry's view matches the
// corresponding L2 states. It returns hard violations (genuine coherence
// breaks) and soft ones (stale registrations left by benign predicted-
// invalidation races; see dir.go). Baseline (non-predicting) runs must
// produce neither.
func (s *System) CheckCoherence() (hard, soft []string) {
	// Two passes, each linear in what it scans. Pass 1 (holder side) sweeps
	// every L2 array once: a valid copy must be registered by its home slice
	// in a compatible state — one directory lookup per resident line. Pass 2
	// (dir side) walks the directory entries probing only the registered
	// holders. The old formulation probed every node for every directory
	// line (lines x nodes x associativity), which dominated short runs.
	var hardV, softV []dirViol
	for _, n := range s.Nodes {
		id := n.self
		n.l2.ForEachValid(func(l arch.LineAddr, st cache.State) {
			e, ok := s.Dirs[s.Home(l)].lines[l]
			switch {
			case !ok || e.state == dirU:
				hardV = append(hardV, dirViol{l, id,
					fmt.Sprintf("line %#x: dir U but node %d has %v", uint64(l), id, st)})
			case e.state == dirE:
				if id != e.owner {
					hardV = append(hardV, dirViol{l, id,
						fmt.Sprintf("line %#x: dir E (owner %d) but node %d has %v", uint64(l), e.owner, id, st)})
				} else if st == cache.Shared {
					hardV = append(hardV, dirViol{l, id,
						fmt.Sprintf("line %#x: dir E owner %d has %v", uint64(l), id, st)})
				}
			case e.state == dirS:
				if !e.sharers.Contains(id) {
					hardV = append(hardV, dirViol{l, id,
						fmt.Sprintf("line %#x: dir S %v but node %d has %v", uint64(l), e.sharers, id, st)})
				} else if st == cache.Modified || st == cache.Exclusive {
					hardV = append(hardV, dirViol{l, id,
						fmt.Sprintf("line %#x: dir S sharer %d has %v", uint64(l), id, st)})
				}
			}
		})
	}
	for _, d := range s.Dirs {
		d.checkDirSide(&hardV, &softV)
	}
	// Violations are collected from unordered sweeps; a canonical
	// (line, node) sort keeps the report deterministic.
	return renderViols(hardV), renderViols(softV)
}

// dirViol is one coherence violation, keyed for deterministic ordering.
// node is arch.None for line-level (per-entry) violations.
type dirViol struct {
	line arch.LineAddr
	node arch.NodeID
	msg  string
}

func renderViols(v []dirViol) []string {
	if len(v) == 0 {
		return nil
	}
	sort.Slice(v, func(i, j int) bool {
		if v[i].line != v[j].line {
			return v[i].line < v[j].line
		}
		if v[i].node != v[j].node {
			return v[i].node < v[j].node
		}
		return v[i].msg < v[j].msg
	})
	out := make([]string, len(v))
	for i := range v {
		out[i] = v[i].msg
	}
	return out
}
