// Package stats provides the measurement primitives used across the
// simulator: counters, running means, histograms, per-node communication
// distributions and cumulative-coverage curves (the quantities behind the
// paper's Figures 2, 4 and 5), plus a plain-text table renderer used by the
// experiment harness.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean accumulates a running average.
type Mean struct {
	Sum   float64
	Count uint64
}

// Add records one sample.
func (m *Mean) Add(v float64) { m.Sum += v; m.Count++ }

// AddN records a sample with weight n.
func (m *Mean) AddN(v float64, n uint64) { m.Sum += v * float64(n); m.Count += n }

// Value returns the current mean (0 for no samples).
func (m *Mean) Value() float64 {
	if m.Count == 0 {
		return 0
	}
	return m.Sum / float64(m.Count)
}

// Histogram is a fixed-bucket histogram over non-negative integer samples.
// Values >= len(buckets) accumulate in the last (overflow) bucket.
type Histogram struct {
	Buckets []uint64
	Total   uint64
}

// NewHistogram returns a histogram with n regular buckets plus overflow.
func NewHistogram(n int) *Histogram { return &Histogram{Buckets: make([]uint64, n+1)} }

// Add records one sample of value v.
func (h *Histogram) Add(v int) {
	if v < 0 {
		v = 0
	}
	if v >= len(h.Buckets) {
		v = len(h.Buckets) - 1
	}
	h.Buckets[v]++
	h.Total++
}

// Fraction returns the fraction of samples in bucket i. An out-of-range
// index holds no samples, so it reports 0 rather than panicking.
func (h *Histogram) Fraction(i int) float64 {
	if h.Total == 0 || i < 0 || i >= len(h.Buckets) {
		return 0
	}
	return float64(h.Buckets[i]) / float64(h.Total)
}

// FractionAtLeast returns the fraction of samples in buckets >= i. A
// negative i covers every bucket (reports 1 for a non-empty histogram);
// an i past the last bucket covers none (reports 0).
func (h *Histogram) FractionAtLeast(i int) float64 {
	if h.Total == 0 {
		return 0
	}
	if i < 0 {
		i = 0
	}
	var n uint64
	for j := i; j < len(h.Buckets); j++ {
		n += h.Buckets[j]
	}
	return float64(n) / float64(h.Total)
}

// Distribution is a per-node tally of communication volume: element i holds
// the number of messages (or bytes) exchanged with node i. It is the raw
// material of the paper's Figure 2 plots and of hot-set extraction.
type Distribution []uint64

// NewDistribution returns a zeroed distribution over n nodes.
func NewDistribution(n int) Distribution { return make(Distribution, n) }

// Add records v units of communication with node i.
func (d Distribution) Add(i int, v uint64) { d[i] += v }

// Total returns the sum over all nodes.
func (d Distribution) Total() uint64 {
	var t uint64
	for _, v := range d {
		t += v
	}
	return t
}

// Clone returns a copy.
func (d Distribution) Clone() Distribution {
	c := make(Distribution, len(d))
	copy(c, d)
	return c
}

// Reset zeroes the distribution in place.
func (d Distribution) Reset() {
	for i := range d {
		d[i] = 0
	}
}

// AddAll accumulates other into d element-wise.
func (d Distribution) AddAll(other Distribution) {
	for i, v := range other {
		d[i] += v
	}
}

// Coverage returns the cumulative fraction of total volume covered by the
// top-k nodes, for k = 1..len(d). This is exactly the curve plotted in the
// paper's Figure 4: Coverage()[k-1] is the fraction of communication covered
// by the k hottest targets.
func (d Distribution) Coverage() []float64 {
	total := d.Total()
	out := make([]float64, len(d))
	if total == 0 {
		return out
	}
	sorted := d.Clone()
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })
	var cum uint64
	for i, v := range sorted {
		cum += v
		out[i] = float64(cum) / float64(total)
	}
	return out
}

// HotSet returns the set of node indices whose share of the total volume is
// at least threshold (e.g. 0.10 for the paper's 10% rule). An empty
// distribution yields an empty set.
func (d Distribution) HotSet(threshold float64) []int {
	total := d.Total()
	if total == 0 {
		return nil
	}
	var hot []int
	min := threshold * float64(total)
	for i, v := range d {
		if float64(v) >= min && v > 0 {
			hot = append(hot, i)
		}
	}
	return hot
}

// Ratio is a convenience for numerator/denominator pairs reported as
// fractions or percentages.
type Ratio struct{ Num, Den uint64 }

// Add increments the denominator, and the numerator if hit.
func (r *Ratio) Add(hit bool) {
	r.Den++
	if hit {
		r.Num++
	}
}

// Value returns Num/Den, or 0 when empty.
func (r Ratio) Value() float64 {
	if r.Den == 0 {
		return 0
	}
	return float64(r.Num) / float64(r.Den)
}

// Percent returns the ratio scaled to percent.
func (r Ratio) Percent() float64 { return 100 * r.Value() }

// GeoMean returns the geometric mean of vs, ignoring non-positive entries.
func GeoMean(vs []float64) float64 {
	var sum float64
	n := 0
	for _, v := range vs {
		if v > 0 {
			sum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// ArithMean returns the arithmetic mean of vs (0 for empty).
func ArithMean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	var sum float64
	for _, v := range vs {
		sum += v
	}
	return sum / float64(len(vs))
}

// Fmt formats a float compactly for tables.
func Fmt(v float64) string {
	switch {
	case v == math.Trunc(v) && math.Abs(v) < 1e9:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}
