package stats

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table used by the experiment
// harness to print paper-style tables and figure data series.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends a row; cells beyond the header width are kept as-is.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddRowf appends a row formatting each value with %v, floats via Fmt.
func (t *Table) AddRowf(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = Fmt(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a footnote line printed after the table body.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i >= len(widths) {
				widths = append(widths, len(c))
			} else if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(widths))
		for i := range widths {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(widths))
	for i, wd := range widths {
		sep[i] = strings.Repeat("-", wd)
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}
