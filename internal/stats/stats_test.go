package stats

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	var m Mean
	if m.Value() != 0 {
		t.Fatal("empty mean should be 0")
	}
	m.Add(2)
	m.Add(4)
	if m.Value() != 3 {
		t.Fatalf("mean = %v, want 3", m.Value())
	}
	m.AddN(10, 2)
	if got := m.Value(); got != (2+4+20)/4.0 {
		t.Fatalf("mean = %v, want 6.5", got)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(4)
	for _, v := range []int{0, 1, 1, 2, 9, -3} {
		h.Add(v)
	}
	if h.Total != 6 {
		t.Fatalf("total = %d", h.Total)
	}
	if h.Buckets[0] != 2 { // 0 and clamped -3
		t.Fatalf("bucket 0 = %d, want 2", h.Buckets[0])
	}
	if h.Buckets[4] != 1 { // overflow for 9
		t.Fatalf("overflow = %d, want 1", h.Buckets[4])
	}
	if got := h.Fraction(1); got != 2.0/6.0 {
		t.Fatalf("fraction(1) = %v", got)
	}
	if got := h.FractionAtLeast(2); got != 2.0/6.0 {
		t.Fatalf("fractionAtLeast(2) = %v", got)
	}
}

// Regression: out-of-range bucket indices used to index Buckets directly
// and panic; they must report 0 (or, for FractionAtLeast with a negative
// index, the whole distribution).
func TestHistogramFractionOutOfRange(t *testing.T) {
	h := NewHistogram(4)
	for _, v := range []int{0, 1, 2} {
		h.Add(v)
	}
	for _, i := range []int{-1, -100, len(h.Buckets), len(h.Buckets) + 7} {
		if got := h.Fraction(i); got != 0 {
			t.Errorf("Fraction(%d) = %v, want 0", i, got)
		}
	}
	if got := h.FractionAtLeast(-1); got != 1 {
		t.Errorf("FractionAtLeast(-1) = %v, want 1 (covers all buckets)", got)
	}
	if got := h.FractionAtLeast(len(h.Buckets)); got != 0 {
		t.Errorf("FractionAtLeast(len) = %v, want 0", got)
	}
	if got := h.FractionAtLeast(len(h.Buckets) + 3); got != 0 {
		t.Errorf("FractionAtLeast(len+3) = %v, want 0", got)
	}
	// Empty histograms stay 0 everywhere.
	e := NewHistogram(2)
	if e.Fraction(0) != 0 || e.FractionAtLeast(-5) != 0 || e.FractionAtLeast(99) != 0 {
		t.Error("empty histogram must report 0 for every index")
	}
}

func TestDistributionBasics(t *testing.T) {
	d := NewDistribution(4)
	d.Add(1, 10)
	d.Add(3, 30)
	if d.Total() != 40 {
		t.Fatalf("total = %d", d.Total())
	}
	c := d.Clone()
	c.Add(0, 5)
	if d.Total() != 40 {
		t.Fatal("clone aliases original")
	}
	d.Reset()
	if d.Total() != 0 {
		t.Fatal("reset failed")
	}
}

func TestCoverage(t *testing.T) {
	d := Distribution{90, 5, 5, 0}
	cov := d.Coverage()
	want := []float64{0.90, 0.95, 1.0, 1.0}
	for i := range want {
		if math.Abs(cov[i]-want[i]) > 1e-12 {
			t.Fatalf("coverage = %v, want %v", cov, want)
		}
	}
}

func TestHotSet(t *testing.T) {
	d := Distribution{90, 5, 5, 0, 12} // total 112; 10% threshold = 11.2
	hot := d.HotSet(0.10)
	if len(hot) != 2 || hot[0] != 0 || hot[1] != 4 {
		t.Fatalf("hot set = %v, want [0 4]", hot)
	}
	if got := (Distribution{}).HotSet(0.1); got != nil {
		t.Fatalf("empty dist hot set = %v, want nil", got)
	}
	// Every node at exactly the threshold is hot.
	eq := Distribution{10, 10, 10, 10, 10, 10, 10, 10, 10, 10}
	if got := eq.HotSet(0.10); len(got) != 10 {
		t.Fatalf("uniform hot set size = %d, want 10", len(got))
	}
}

// Property: coverage is nondecreasing, bounded by [0,1], ends at 1 for any
// nonempty distribution.
func TestPropertyCoverageMonotone(t *testing.T) {
	f := func(vals []uint16) bool {
		d := make(Distribution, len(vals))
		nonzero := false
		for i, v := range vals {
			d[i] = uint64(v)
			if v > 0 {
				nonzero = true
			}
		}
		cov := d.Coverage()
		last := 0.0
		for _, c := range cov {
			if c < last-1e-12 || c < 0 || c > 1+1e-12 {
				return false
			}
			last = c
		}
		if nonzero && math.Abs(cov[len(cov)-1]-1) > 1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: hot set members each hold >= threshold share; non-members < threshold.
func TestPropertyHotSetThreshold(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		d := NewDistribution(int(n%16) + 1)
		for i := range d {
			d[i] = uint64(rng.Intn(100))
		}
		total := float64(d.Total())
		if total == 0 {
			return d.HotSet(0.1) == nil
		}
		hot := d.HotSet(0.1)
		inHot := make(map[int]bool)
		for _, h := range hot {
			inHot[h] = true
		}
		for i, v := range d {
			share := float64(v) / total
			if inHot[i] && (share < 0.1-1e-12 || v == 0) {
				return false
			}
			if !inHot[i] && share >= 0.1 && v > 0 {
				return false
			}
		}
		return sort.IntsAreSorted(hot)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRatio(t *testing.T) {
	var r Ratio
	if r.Value() != 0 {
		t.Fatal("empty ratio should be 0")
	}
	r.Add(true)
	r.Add(false)
	r.Add(true)
	r.Add(true)
	if r.Value() != 0.75 {
		t.Fatalf("ratio = %v", r.Value())
	}
	if r.Percent() != 75 {
		t.Fatalf("percent = %v", r.Percent())
	}
}

func TestGeoArithMean(t *testing.T) {
	if g := GeoMean([]float64{1, 4, 16}); math.Abs(g-4) > 1e-9 {
		t.Fatalf("geomean = %v, want 4", g)
	}
	if g := GeoMean(nil); g != 0 {
		t.Fatalf("geomean of empty = %v", g)
	}
	if g := GeoMean([]float64{0, -1}); g != 0 {
		t.Fatalf("geomean of non-positive = %v", g)
	}
	if a := ArithMean([]float64{1, 2, 3}); a != 2 {
		t.Fatalf("arith = %v", a)
	}
	if a := ArithMean(nil); a != 0 {
		t.Fatalf("arith empty = %v", a)
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("Example", "name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRowf("beta", 2.5)
	tb.AddNote("a note")
	s := tb.String()
	for _, want := range []string{"== Example ==", "name", "alpha", "beta", "2.50", "note: a note"} {
		if !strings.Contains(s, want) {
			t.Fatalf("table output missing %q:\n%s", want, s)
		}
	}
	// Rows wider than the header must not panic and must render.
	tb2 := NewTable("", "a")
	tb2.AddRow("x", "extra")
	if !strings.Contains(tb2.String(), "extra") {
		t.Fatal("extra cell dropped")
	}
}
