// Package core implements the paper's primary contribution: Synchronization
// Point based Prediction (SP-prediction, §4). Each node tracks its
// communication activity between synchronization points with a set of
// communication counters, extracts a hot communication set at each epoch
// boundary, stores it as a signature in the SP-table, and recalls past
// signatures to predict the destinations of misses in repeated epochs.
package core

import (
	"container/list"

	"spcoh/internal/arch"
)

// epochKey identifies an SP-table entry: the static ID of the sync-point
// that begins the epoch plus the owning processor. Lock entries are keyed
// by the lock address alone and shared by all processors (§4.3).
type epochKey struct {
	staticID uint64
	proc     arch.NodeID // arch.None for shared lock entries
	lock     bool
}

// entry is one SP-table record: a bounded history of communication
// signatures, most recent first.
type entry struct {
	key  epochKey
	sigs []arch.SharerSet
	// strideHits counts consecutive confirmations of a stride-2
	// (alternating) signature pattern (§4.4, Figure 6(c)).
	strideHits int
	lru        *list.Element
	// instances counts dynamic instances observed (statistics).
	instances int
}

// Table is the SP-table (§4.3): an associative structure with one entry per
// static sync-epoch per processor, plus shared entries for locks. A single
// Table instance is shared by all per-node predictors so that lock entries
// are globally visible, exactly as the paper's distributed implementation
// shares lock entries.
type Table struct {
	entries map[epochKey]*entry
	lru     *list.List
	// MaxEntries bounds the table (0 = unlimited). Eviction is LRU.
	MaxEntries int
	// Depth is the signature history depth d (the paper evaluates d=2).
	Depth int
}

// NewTable builds an SP-table with history depth d and optional capacity.
func NewTable(depth, maxEntries int) *Table {
	if depth < 1 {
		depth = 1
	}
	return &Table{entries: make(map[epochKey]*entry), lru: list.New(), Depth: depth, MaxEntries: maxEntries}
}

// Len returns the number of resident entries.
func (t *Table) Len() int { return len(t.entries) }

func (t *Table) get(k epochKey, create bool) *entry {
	if e, ok := t.entries[k]; ok {
		t.lru.MoveToFront(e.lru)
		return e
	}
	if !create {
		return nil
	}
	e := &entry{key: k}
	e.lru = t.lru.PushFront(e)
	t.entries[k] = e
	if t.MaxEntries > 0 && t.lru.Len() > t.MaxEntries {
		v := t.lru.Back().Value.(*entry)
		t.lru.Remove(v.lru)
		delete(t.entries, v.key)
	}
	return e
}

// push records a new signature for k, shifting out the oldest beyond Depth
// and updating stride-pattern detection state.
func (t *Table) push(k epochKey, sig arch.SharerSet) {
	e := t.get(k, true)
	e.instances++
	if len(e.sigs) >= 2 && sig == e.sigs[1] && sig != e.sigs[0] {
		e.strideHits++
	} else if len(e.sigs) >= 1 {
		e.strideHits = 0
	}
	e.sigs = append([]arch.SharerSet{sig}, e.sigs...)
	if len(e.sigs) > t.Depth {
		e.sigs = e.sigs[:t.Depth]
	}
}

// history returns the stored signatures for k (most recent first) and the
// stride confirmation count; nil if the epoch has never been seen.
func (t *Table) history(k epochKey) ([]arch.SharerSet, int) {
	e := t.get(k, false)
	if e == nil {
		return nil, 0
	}
	return e.sigs, e.strideHits
}

// StorageBits estimates the table's storage: per entry a 32-bit tag, a
// shared/lock bit and Depth signatures of `nodes` bits each (§4.6).
func (t *Table) StorageBits(nodes int) int {
	n := len(t.entries)
	if t.MaxEntries > 0 {
		n = t.MaxEntries
	}
	return n * (32 + 1 + t.Depth*nodes)
}
