package core

import (
	"spcoh/internal/arch"
	"spcoh/internal/predictor"
)

// instKey identifies one dynamic instance of a sync-epoch at one node.
type instKey struct {
	node     arch.NodeID
	staticID uint64
	instance int
}

// OracleBook records the hot communication set of every dynamic sync-epoch
// instance, collected in a profiling run. It backs the "Ideal Case" marks
// of the paper's Figure 7: the accuracy the SP-predictor would obtain if
// every epoch's hot set were known a priori.
type OracleBook struct {
	hot map[instKey]arch.SharerSet
}

// NewOracleBook returns an empty book.
func NewOracleBook() *OracleBook { return &OracleBook{hot: make(map[instKey]arch.SharerSet)} }

// Recorder is a predictor.Predictor that makes no predictions and records
// per-epoch hot sets into an OracleBook during the profiling run.
type Recorder struct {
	cfg      Config
	self     arch.NodeID
	book     *OracleBook
	counters []uint32
	cur      instKey
	haveKey  bool
	seen     map[uint64]int // staticID -> instance counter
}

// NewRecorder builds a profiling recorder for one node.
func NewRecorder(cfg Config, self arch.NodeID, book *OracleBook) *Recorder {
	return &Recorder{cfg: cfg, self: self, book: book,
		counters: make([]uint32, cfg.Nodes), seen: make(map[uint64]int)}
}

// RecorderSystem builds recorders for all nodes over one shared book.
func RecorderSystem(cfg Config, book *OracleBook) []predictor.Predictor {
	preds := make([]predictor.Predictor, cfg.Nodes)
	for i := range preds {
		preds[i] = NewRecorder(cfg, arch.NodeID(i), book)
	}
	return preds
}

// Name implements predictor.Predictor.
func (r *Recorder) Name() string { return "oracle-recorder" }

func (r *Recorder) flush() {
	if !r.haveKey {
		return
	}
	var total uint64
	for _, c := range r.counters {
		total += uint64(c)
	}
	var s arch.SharerSet
	if total > 0 {
		min := r.cfg.HotThreshold * float64(total)
		for i, c := range r.counters {
			if c > 0 && float64(c) >= min {
				s = s.Add(arch.NodeID(i))
			}
		}
	}
	r.book.hot[r.cur] = s
	for i := range r.counters {
		r.counters[i] = 0
	}
}

// OnSync implements predictor.Predictor.
func (r *Recorder) OnSync(e predictor.SyncEvent) {
	r.flush()
	inst := r.seen[e.StaticID]
	r.seen[e.StaticID] = inst + 1
	r.cur = instKey{node: r.self, staticID: e.StaticID, instance: inst}
	r.haveKey = true
}

// Predict implements predictor.Predictor; the recorder never predicts.
func (r *Recorder) Predict(predictor.Miss) (arch.SharerSet, predictor.Tag) {
	return arch.EmptySet, predictor.TagNone
}

// Train implements predictor.Predictor.
func (r *Recorder) Train(_ predictor.Miss, o predictor.Outcome) {
	t := o.Targets().Remove(r.self)
	t.ForEach(func(n arch.NodeID) { r.counters[n]++ })
}

// StorageBits implements predictor.Predictor.
func (r *Recorder) StorageBits() int { return 0 }

// Oracle is a predictor.Predictor that replays a recorded OracleBook: at
// the start of each epoch instance it predicts that instance's true hot
// set. It needs a deterministic workload so instances align with the
// profiling run.
type Oracle struct {
	self    arch.NodeID
	book    *OracleBook
	seen    map[uint64]int
	cur     arch.SharerSet
	haveCur bool
}

// NewOracle builds an oracle over a recorded book.
func NewOracle(self arch.NodeID, book *OracleBook) *Oracle {
	return &Oracle{self: self, book: book, seen: make(map[uint64]int)}
}

// OracleSystem builds oracles for all nodes over one recorded book.
func OracleSystem(nodes int, book *OracleBook) []predictor.Predictor {
	preds := make([]predictor.Predictor, nodes)
	for i := range preds {
		preds[i] = NewOracle(arch.NodeID(i), book)
	}
	return preds
}

// Name implements predictor.Predictor.
func (o *Oracle) Name() string { return "ideal" }

// OnSync implements predictor.Predictor.
func (o *Oracle) OnSync(e predictor.SyncEvent) {
	inst := o.seen[e.StaticID]
	o.seen[e.StaticID] = inst + 1
	hot, ok := o.book.hot[instKey{node: o.self, staticID: e.StaticID, instance: inst}]
	o.cur, o.haveCur = hot.Remove(o.self), ok
}

// Predict implements predictor.Predictor.
func (o *Oracle) Predict(predictor.Miss) (arch.SharerSet, predictor.Tag) {
	if !o.haveCur || o.cur.Empty() {
		return arch.EmptySet, predictor.TagNone
	}
	return o.cur, predictor.TagOther
}

// Train implements predictor.Predictor.
func (o *Oracle) Train(predictor.Miss, predictor.Outcome) {}

// StorageBits implements predictor.Predictor.
func (o *Oracle) StorageBits() int { return 0 }
