package core

import (
	"testing"

	"spcoh/internal/arch"
	"spcoh/internal/predictor"
)

func cfg4() Config {
	c := DefaultConfig(4)
	c.WarmupMisses = 3
	c.NoiseMinComm = 2
	return c
}

// trainComm feeds n communicating read misses sourced by provider.
func trainComm(p *Predictor, provider arch.NodeID, n int) {
	for i := 0; i < n; i++ {
		p.Train(predictor.Miss{Node: p.self, Kind: predictor.ReadMiss},
			predictor.Outcome{Provider: provider, Communicating: true})
	}
}

func barrier(p *Predictor, staticID uint64) {
	p.OnSync(predictor.SyncEvent{Node: p.self, Kind: predictor.SyncBarrier, StaticID: staticID})
}

func TestD0WarmupPrediction(t *testing.T) {
	p := NewPredictor(cfg4(), 0, nil)
	barrier(p, 100)
	if set, tag := p.Predict(predictor.Miss{}); !set.Empty() || tag != predictor.TagNone {
		t.Fatalf("cold predictor should not predict: %v %v", set, tag)
	}
	trainComm(p, 2, 5) // past warm-up
	set, tag := p.Predict(predictor.Miss{})
	if tag != predictor.TagD0 || !set.Contains(2) {
		t.Fatalf("d=0 prediction = %v tag %v, want {2} d=0", set, tag)
	}
}

func TestHistoryRecall(t *testing.T) {
	p := NewPredictor(cfg4(), 0, nil)
	barrier(p, 100)
	trainComm(p, 3, 10)
	barrier(p, 200) // closes epoch 100 with hot set {3}
	barrier(p, 100) // reopens epoch 100: history available
	set, tag := p.Predict(predictor.Miss{})
	if tag != predictor.TagHistory || set != arch.SetOf(3) {
		t.Fatalf("history prediction = %v tag %v, want {3}", set, tag)
	}
}

func TestStableIntersection(t *testing.T) {
	p := NewPredictor(cfg4(), 0, nil)
	// Two instances of epoch 100: hot sets {1,2} then {2,3}.
	barrier(p, 100)
	trainComm(p, 1, 5)
	trainComm(p, 2, 5)
	barrier(p, 200)
	barrier(p, 100)
	trainComm(p, 2, 5)
	trainComm(p, 3, 5)
	barrier(p, 200)
	barrier(p, 100)
	set, tag := p.Predict(predictor.Miss{})
	if tag != predictor.TagHistory || set != arch.SetOf(2) {
		t.Fatalf("stable intersection = %v tag %v, want {2}", set, tag)
	}
}

func TestStridePattern(t *testing.T) {
	p := NewPredictor(cfg4(), 0, nil)
	// Alternating hot sets {1}, {3}, {1}, {3}: stride-2 pattern.
	providers := []arch.NodeID{1, 3, 1, 3, 1}
	for _, pr := range providers {
		barrier(p, 100)
		trainComm(p, pr, 6)
	}
	barrier(p, 100)
	// Last two signatures are {1},{3} (most recent {1}); the stride policy
	// predicts the one from two instances ago: {3}.
	set, _ := p.Predict(predictor.Miss{})
	if set != arch.SetOf(3) {
		t.Fatalf("stride prediction = %v, want {3}", set)
	}
}

func TestLockSequencePrediction(t *testing.T) {
	table := NewTable(2, 0)
	p0 := NewPredictor(cfg4(), 0, table)
	p1 := NewPredictor(cfg4(), 1, table)
	p2 := NewPredictor(cfg4(), 2, table)

	// Node 0 then node 1 acquire lock 0xL; node 2 acquires next and should
	// predict {0,1} (the last two holders).
	p0.OnSync(predictor.SyncEvent{Kind: predictor.SyncLock, StaticID: 0xF00})
	p1.OnSync(predictor.SyncEvent{Kind: predictor.SyncLock, StaticID: 0xF00})
	p2.OnSync(predictor.SyncEvent{Kind: predictor.SyncLock, StaticID: 0xF00})
	set, tag := p2.Predict(predictor.Miss{})
	if tag != predictor.TagLock || set != arch.SetOf(0, 1) {
		t.Fatalf("lock prediction = %v tag %v, want {0,1}", set, tag)
	}
	// Self is never predicted: node 1 re-acquiring sees {0,1}\{1} ∪ {2}...
	p1.OnSync(predictor.SyncEvent{Kind: predictor.SyncLock, StaticID: 0xF00})
	set, _ = p1.Predict(predictor.Miss{})
	if set.Contains(1) {
		t.Fatalf("prediction must exclude self: %v", set)
	}
	if !set.Contains(2) {
		t.Fatalf("most recent holder (2) should be predicted: %v", set)
	}
}

func TestNoiseFilter(t *testing.T) {
	p := NewPredictor(cfg4(), 0, nil)
	barrier(p, 100)
	trainComm(p, 3, 10)
	barrier(p, 200) // stores {3} for epoch 100
	barrier(p, 100)
	trainComm(p, 1, 1) // too quiet: below NoiseMinComm
	barrier(p, 200)    // must NOT store {1}
	barrier(p, 100)
	set, _ := p.Predict(predictor.Miss{})
	if set != arch.SetOf(3) {
		t.Fatalf("noisy instance polluted history: %v", set)
	}
	if p.NoisySkipped == 0 {
		t.Fatal("noisy skip not counted")
	}
}

func TestConfidenceRecovery(t *testing.T) {
	c := cfg4()
	c.ConfidenceMax = 2 // fast recovery for the test
	p := NewPredictor(c, 0, nil)
	barrier(p, 100)
	trainComm(p, 3, 10)
	barrier(p, 200)
	barrier(p, 100) // predicts {3}
	// Actual communication now goes to node 1: mispredictions drain
	// confidence, then recovery rebuilds from current counters.
	trainComm(p, 1, 10)
	set, tag := p.Predict(predictor.Miss{})
	if tag != predictor.TagRecovery || set != arch.SetOf(1) {
		t.Fatalf("recovery prediction = %v tag %v, want {1} recovery", set, tag)
	}
	if p.Recoveries == 0 {
		t.Fatal("recovery not counted")
	}
}

func TestPredictExcludesSelf(t *testing.T) {
	p := NewPredictor(cfg4(), 2, nil)
	barrier(p, 1)
	// Hand-feed counters including self (should not happen, but the
	// predictor must still never predict itself).
	p.counters[2] = 100
	p.counters[0] = 100
	p.misses = 50
	set, _ := p.Predict(predictor.Miss{})
	if set.Contains(2) {
		t.Fatalf("self in predicted set: %v", set)
	}
}

func TestTableDepthAndLRU(t *testing.T) {
	tab := NewTable(2, 2)
	k1 := epochKey{staticID: 1, proc: 0}
	k2 := epochKey{staticID: 2, proc: 0}
	k3 := epochKey{staticID: 3, proc: 0}
	tab.push(k1, arch.SetOf(1))
	tab.push(k1, arch.SetOf(2))
	tab.push(k1, arch.SetOf(3))
	sigs, _ := tab.history(k1)
	if len(sigs) != 2 || sigs[0] != arch.SetOf(3) || sigs[1] != arch.SetOf(2) {
		t.Fatalf("history = %v, want depth-2 most-recent-first", sigs)
	}
	tab.push(k2, arch.SetOf(1))
	tab.push(k3, arch.SetOf(1)) // evicts LRU (k1? k1 was used most recently before k2)
	if tab.Len() != 2 {
		t.Fatalf("table len = %d, want 2", tab.Len())
	}
	if s, _ := tab.history(k3); len(s) != 1 {
		t.Fatal("newest entry missing")
	}
}

func TestStrideDetectionInTable(t *testing.T) {
	tab := NewTable(2, 0)
	k := epochKey{staticID: 9, proc: 1}
	a, b := arch.SetOf(1), arch.SetOf(2)
	for i := 0; i < 6; i++ {
		if i%2 == 0 {
			tab.push(k, a)
		} else {
			tab.push(k, b)
		}
	}
	if _, stride := tab.history(k); stride < 2 {
		t.Fatalf("alternating pushes should confirm stride, got %d", stride)
	}
	// A repeated signature breaks the alternation.
	tab.push(k, a)
	tab.push(k, a)
	if _, stride := tab.history(k); stride != 0 {
		t.Fatalf("stride should reset on stable pattern, got %d", stride)
	}
}

func TestStorageBitsSmall(t *testing.T) {
	cfg := DefaultConfig(16)
	preds := NewSystem(cfg)
	p := preds[0].(*Predictor)
	// Simulate 30 static epochs (paper Table 1 upper range).
	for i := 0; i < 30; i++ {
		p.OnSync(predictor.SyncEvent{Kind: predictor.SyncBarrier, StaticID: uint64(i)})
		trainComm(p, 1, 10)
	}
	bits := p.StorageBits()
	// Paper §4.6: a 2KB aggregate SP-table is adequate; per node that is
	// ~1Kbit. Sanity: well under the ADDR predictor's kilo-entries.
	if bits <= 0 || bits > 16*1024 {
		t.Fatalf("storage bits = %d, implausible", bits)
	}
}

func TestOracleRecordReplay(t *testing.T) {
	book := NewOracleBook()
	r := NewRecorder(cfg4(), 0, book)
	// Two instances of epoch 5 with different hot sets.
	r.OnSync(predictor.SyncEvent{Kind: predictor.SyncBarrier, StaticID: 5})
	r.Train(predictor.Miss{}, predictor.Outcome{Provider: 1, Communicating: true})
	r.OnSync(predictor.SyncEvent{Kind: predictor.SyncBarrier, StaticID: 5})
	r.Train(predictor.Miss{}, predictor.Outcome{Provider: 3, Communicating: true})
	r.OnSync(predictor.SyncEvent{Kind: predictor.SyncBarrier, StaticID: 6}) // flush

	o := NewOracle(0, book)
	o.OnSync(predictor.SyncEvent{Kind: predictor.SyncBarrier, StaticID: 5})
	if set, _ := o.Predict(predictor.Miss{}); set != arch.SetOf(1) {
		t.Fatalf("oracle instance 0 = %v, want {1}", set)
	}
	o.OnSync(predictor.SyncEvent{Kind: predictor.SyncBarrier, StaticID: 5})
	if set, _ := o.Predict(predictor.Miss{}); set != arch.SetOf(3) {
		t.Fatalf("oracle instance 1 = %v, want {3}", set)
	}
	// Unknown instance: no prediction.
	o.OnSync(predictor.SyncEvent{Kind: predictor.SyncBarrier, StaticID: 99})
	if set, tag := o.Predict(predictor.Miss{}); !set.Empty() || tag != predictor.TagNone {
		t.Fatalf("unknown epoch should not predict: %v", set)
	}
}

func TestSharedTableAcrossNodes(t *testing.T) {
	cfg := cfg4()
	preds := NewSystem(cfg)
	p0 := preds[0].(*Predictor)
	p1 := preds[1].(*Predictor)
	if p0.Table() != p1.Table() {
		t.Fatal("NewSystem must share one SP-table")
	}
	// Barrier entries are per processor: node 0's history must not leak
	// into node 1's prediction.
	barrier(p0, 77)
	trainComm(p0, 3, 10)
	barrier(p0, 78)
	barrier(p1, 77)
	if set, _ := p1.Predict(predictor.Miss{}); !set.Empty() {
		t.Fatalf("node 1 should not see node 0's barrier history: %v", set)
	}
}
