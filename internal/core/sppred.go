package core

import (
	"spcoh/internal/arch"
	"spcoh/internal/predictor"
)

// Config parameterizes the SP-predictor. The zero value is not useful;
// start from DefaultConfig.
type Config struct {
	Nodes int

	// HistoryDepth is d, the signatures kept per SP-table entry (§4.4).
	// The paper's evaluated design uses 2.
	HistoryDepth int

	// HotThreshold is the fraction of an interval's communication volume a
	// core must draw to join the hot communication set (§3.3: 10%).
	HotThreshold float64

	// WarmupMisses is the number of misses observed before a d=0 predictor
	// is formed from the current interval's counters (§4.4: "after
	// allowing some warm-up time, e.g., 30 misses").
	WarmupMisses int

	// NoiseMinComm is the noisy-instance filter (§3.4): epochs with fewer
	// communicating misses than this store no signature.
	NoiseMinComm int

	// ConfidenceMax is the saturating ceiling of the 4-bit confidence
	// counter (§4.4: 15). The counter starts full each epoch, increments
	// on correct predictions, decrements otherwise, and triggers recovery
	// at zero.
	ConfidenceMax int

	// StrideDetect enables the stride-2 repetitive-pattern policy.
	StrideDetect bool

	// StrideConfirm is how many consecutive alternations must be observed
	// before the stride prediction is used.
	StrideConfirm int

	// LockUnionPrev additionally unions the preceding epoch's signature
	// into lock predictions ("coarse critical sections are likely to
	// benefit", §4.4). Off in the evaluated design.
	LockUnionPrev bool

	// MaxEntries bounds the shared SP-table (0 = unlimited).
	MaxEntries int
}

// DefaultConfig is the paper's evaluated configuration. WarmupMisses is
// scaled down from the paper's example value of 30: the synthetic
// workloads' epochs carry roughly a quarter of the misses of the paper's
// full-size intervals (see DESIGN.md §1), so the warm-up threshold shrinks
// proportionally to keep the d=0 policy live.
func DefaultConfig(nodes int) Config {
	return Config{
		Nodes:         nodes,
		HistoryDepth:  2,
		HotThreshold:  0.10,
		WarmupMisses:  8,
		NoiseMinComm:  4,
		ConfidenceMax: 15,
		StrideDetect:  true,
		StrideConfirm: 2,
	}
}

// Predictor is the per-node SP-predictor. All nodes share one *Table so
// that lock entries are globally visible.
type Predictor struct {
	cfg   Config
	self  arch.NodeID
	table *Table

	// Communication counters (§4.2): one per destination, reset at each
	// sync-point.
	counters  []uint32
	misses    int // all misses this epoch
	commCount int // communicating misses this epoch

	// Current epoch identity.
	curKey  epochKey
	haveKey bool
	isLock  bool
	prevSig arch.SharerSet // signature of the preceding epoch

	// Active prediction state (the "predictor register", §5.5).
	set        arch.SharerSet
	tag        predictor.Tag
	havePred   bool
	confidence int

	// Statistics.
	EpochsSeen   uint64
	Recoveries   uint64
	NoisySkipped uint64
}

// NewPredictor builds one node's SP-predictor over the shared table.
func NewPredictor(cfg Config, self arch.NodeID, table *Table) *Predictor {
	if table == nil {
		table = NewTable(cfg.HistoryDepth, cfg.MaxEntries)
	}
	return &Predictor{cfg: cfg, self: self, table: table, counters: make([]uint32, cfg.Nodes)}
}

// NewSystem builds predictors for all nodes sharing one SP-table, ready to
// pass to protocol.New.
func NewSystem(cfg Config) []predictor.Predictor {
	table := NewTable(cfg.HistoryDepth, cfg.MaxEntries)
	preds := make([]predictor.Predictor, cfg.Nodes)
	for i := range preds {
		preds[i] = NewPredictor(cfg, arch.NodeID(i), table)
	}
	return preds
}

// Table returns the shared SP-table.
func (p *Predictor) Table() *Table { return p.table }

// Name implements predictor.Predictor.
func (p *Predictor) Name() string { return "SP" }

// hotSet extracts the hot communication set from the current counters.
func (p *Predictor) hotSet() arch.SharerSet {
	var total uint64
	for _, c := range p.counters {
		total += uint64(c)
	}
	if total == 0 {
		return arch.EmptySet
	}
	min := p.cfg.HotThreshold * float64(total)
	var s arch.SharerSet
	for i, c := range p.counters {
		if c > 0 && float64(c) >= min {
			s = s.Add(arch.NodeID(i))
		}
	}
	return s
}

// OnSync implements predictor.Predictor: a sync-point ends the current
// epoch (store its signature, Table 2) and begins a new one (retrieve a
// prediction, Table 3).
func (p *Predictor) OnSync(e predictor.SyncEvent) {
	// 1. Close the ending epoch: extract and store its signature, unless
	// the instance was too quiet to be representative (§3.4). Critical
	// sections are excluded: their shared lock entry holds only the
	// sequence of holder IDs, pushed at acquisition (§4.2: "the
	// communication signature encodes only the ID of the processor that
	// releases the lock").
	if p.haveKey && !p.isLock {
		if p.commCount >= p.cfg.NoiseMinComm {
			sig := p.hotSet()
			p.table.push(p.curKey, sig)
			p.prevSig = sig
		} else {
			p.NoisySkipped++
		}
	}

	// 2. Open the new epoch.
	p.EpochsSeen++
	p.isLock = e.Kind == predictor.SyncLock
	if p.isLock {
		p.curKey = epochKey{staticID: e.StaticID, proc: arch.None, lock: true}
	} else {
		p.curKey = epochKey{staticID: e.StaticID, proc: p.self}
	}
	p.haveKey = true

	// 3. Form the predictor for the new epoch (Table 3).
	p.set, p.tag, p.havePred = p.retrievePrediction()
	p.confidence = p.cfg.ConfidenceMax

	// 4. For locks, record this processor as the latest holder right
	// after acquisition (§4.3: "updates occur just after the lock is
	// acquired", keeping shared entries atomic).
	if p.isLock {
		p.table.push(p.curKey, arch.SetOf(p.self))
	}

	// 5. Reset the communication counters (Table 2).
	for i := range p.counters {
		p.counters[i] = 0
	}
	p.misses = 0
	p.commCount = 0
}

// retrievePrediction applies the history-depth policy of Table 3.
func (p *Predictor) retrievePrediction() (arch.SharerSet, predictor.Tag, bool) {
	sigs, stride := p.table.history(p.curKey)
	if p.isLock {
		// Union of the last d lock holders.
		var s arch.SharerSet
		for _, sig := range sigs {
			s = s.Union(sig)
		}
		if p.cfg.LockUnionPrev {
			s = s.Union(p.prevSig)
		}
		s = s.Remove(p.self)
		if s.Empty() {
			return arch.EmptySet, predictor.TagNone, false
		}
		return s, predictor.TagLock, true
	}
	switch {
	case len(sigs) == 0:
		// d=0: never seen; predict from within-interval activity after
		// warm-up (handled in Predict).
		return arch.EmptySet, predictor.TagNone, false
	case len(sigs) == 1:
		if sigs[0].Empty() {
			return arch.EmptySet, predictor.TagNone, false
		}
		return sigs[0], predictor.TagHistory, true
	default:
		// Stride-2 repetitive pattern: the next instance repeats the
		// signature seen two instances ago.
		if p.cfg.StrideDetect && stride >= p.cfg.StrideConfirm {
			return sigs[1], predictor.TagHistory, true
		}
		// Last stable hot set: intersection of the two most recent
		// signatures; adapts fast to stable-pattern changes (Fig. 6(b)).
		inter := sigs[0].Intersect(sigs[1])
		if !inter.Empty() {
			return inter, predictor.TagHistory, true
		}
		if !sigs[0].Empty() {
			return sigs[0], predictor.TagHistory, true
		}
		return arch.EmptySet, predictor.TagNone, false
	}
}

// Predict implements predictor.Predictor (Table 3).
func (p *Predictor) Predict(predictor.Miss) (arch.SharerSet, predictor.Tag) {
	if p.havePred {
		s := p.set.Remove(p.self)
		if s.Empty() {
			return arch.EmptySet, predictor.TagNone
		}
		return s, p.tag
	}
	// d=0 policy: after warm-up, predict from the interval's own activity.
	if p.misses >= p.cfg.WarmupMisses {
		if hot := p.hotSet().Remove(p.self); !hot.Empty() {
			return hot, predictor.TagD0
		}
	}
	return arch.EmptySet, predictor.TagNone
}

// Train implements predictor.Predictor: updates the communication counters
// (Table 2) and drives the confidence/recovery mechanism (§4.4).
func (p *Predictor) Train(_ predictor.Miss, o predictor.Outcome) {
	p.misses++
	targets := o.Targets().Remove(p.self)
	if o.Communicating && !targets.Empty() {
		p.commCount++
		targets.ForEach(func(n arch.NodeID) { p.counters[n]++ })
	}

	// Confidence tracks how well the active prediction set is doing.
	if p.havePred && o.Communicating {
		if p.set.Superset(targets) {
			if p.confidence < p.cfg.ConfidenceMax {
				p.confidence++
			}
		} else {
			p.confidence--
			if p.confidence <= 0 {
				// Recovery: rebuild from the interval's own counters.
				p.Recoveries++
				if hot := p.hotSet().Remove(p.self); !hot.Empty() {
					p.set = hot
					p.tag = predictor.TagRecovery
				} else {
					p.havePred = false
				}
				p.confidence = p.cfg.ConfidenceMax
			}
		}
	}
}

// StorageBits implements predictor.Predictor: this node's share of the
// SP-table plus the communication counters (one byte each) and the
// prediction register (§5.4: fixed cost of 17 bytes per core for 16 nodes).
func (p *Predictor) StorageBits() int {
	tableShare := p.table.StorageBits(p.cfg.Nodes) / p.cfg.Nodes
	return tableShare + 8*p.cfg.Nodes + p.cfg.Nodes
}
