package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"spcoh/internal/arch"
	"spcoh/internal/predictor"
)

// Property: table history never exceeds the configured depth, is ordered
// most-recent-first, and survives arbitrary push sequences.
func TestPropertyTableDepth(t *testing.T) {
	f := func(seed int64, depth8, pushes uint8) bool {
		depth := int(depth8%4) + 1
		rng := rand.New(rand.NewSource(seed))
		tab := NewTable(depth, 0)
		k := epochKey{staticID: 1, proc: 0}
		var last arch.SharerSet
		for i := 0; i < int(pushes); i++ {
			last = arch.SetFromBits64(rng.Uint64() & 0xFFFF)
			tab.push(k, last)
		}
		sigs, _ := tab.history(k)
		if len(sigs) > depth {
			return false
		}
		if int(pushes) > 0 && sigs[0] != last {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: capacity-bounded tables never exceed MaxEntries and always
// retain the most recently used key.
func TestPropertyTableCapacity(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		maxE := int(n%16) + 1
		tab := NewTable(2, maxE)
		var lastKey epochKey
		for i := 0; i < 200; i++ {
			lastKey = epochKey{staticID: uint64(rng.Intn(64)), proc: arch.NodeID(rng.Intn(4))}
			tab.push(lastKey, arch.SetFromBits64(rng.Uint64()))
		}
		if tab.Len() > maxE {
			return false
		}
		sigs, _ := tab.history(lastKey)
		return len(sigs) > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the predictor never predicts itself and never predicts after
// training exclusively on non-communicating misses.
func TestPropertyNeverSelfNeverPhantom(t *testing.T) {
	f := func(seed int64, selfRaw uint8) bool {
		self := arch.NodeID(selfRaw % 16)
		rng := rand.New(rand.NewSource(seed))
		p := NewPredictor(DefaultConfig(16), self, nil)
		for ep := 0; ep < 8; ep++ {
			p.OnSync(predictor.SyncEvent{Kind: predictor.SyncBarrier, StaticID: uint64(rng.Intn(4))})
			for i := 0; i < rng.Intn(20); i++ {
				if rng.Intn(2) == 0 {
					// communicating miss toward a random provider
					p.Train(predictor.Miss{}, predictor.Outcome{
						Provider: arch.NodeID(rng.Intn(16)), Communicating: true})
				} else {
					p.Train(predictor.Miss{}, predictor.Outcome{Provider: arch.None})
				}
				set, _ := p.Predict(predictor.Miss{})
				if set.Contains(self) {
					return false
				}
			}
		}
		// Fresh predictor trained only on memory misses must stay silent.
		q := NewPredictor(DefaultConfig(16), self, nil)
		q.OnSync(predictor.SyncEvent{Kind: predictor.SyncBarrier, StaticID: 1})
		for i := 0; i < 50; i++ {
			q.Train(predictor.Miss{}, predictor.Outcome{Provider: arch.None})
		}
		set, _ := q.Predict(predictor.Miss{})
		return set.Empty()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: hot sets always respect the threshold semantics regardless of
// the counter mix.
func TestPropertyHotSetThreshold(t *testing.T) {
	f := func(raw [16]uint8) bool {
		p := NewPredictor(DefaultConfig(16), 0, nil)
		var total uint64
		for i, v := range raw {
			p.counters[i] = uint32(v)
			total += uint64(v)
		}
		hot := p.hotSet()
		if total == 0 {
			return hot.Empty()
		}
		min := 0.10 * float64(total)
		for i, v := range raw {
			in := hot.Contains(arch.NodeID(i))
			should := v > 0 && float64(v) >= min
			if in != should {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
