// Package detutil provides deterministic-iteration helpers. The simulator
// requires bit-identical replays for a given seed (see internal/event), so
// map iteration in any code that feeds events, statistics or reports must
// happen in a defined order. These helpers make the sorted-key idiom cheap
// enough to be the default; `cmd/spvet` enforces it.
package detutil

import (
	"cmp"
	"slices"
)

// SortedKeys returns m's keys in ascending order. It is the standard way to
// iterate a map deterministically:
//
//	for _, k := range detutil.SortedKeys(m) { ... m[k] ... }
func SortedKeys[M ~map[K]V, K cmp.Ordered, V any](m M) []K {
	keys := make([]K, 0, len(m))
	for k := range m { //spvet:ordered — keys are sorted before use
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

// SortedKeysFunc returns m's keys ordered by the given comparison function,
// for key types that are not cmp.Ordered (structs, arrays).
func SortedKeysFunc[M ~map[K]V, K comparable, V any](m M, less func(a, b K) int) []K {
	keys := make([]K, 0, len(m))
	for k := range m { //spvet:ordered — keys are sorted before use
		keys = append(keys, k)
	}
	slices.SortFunc(keys, less)
	return keys
}
