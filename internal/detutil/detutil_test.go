package detutil

import (
	"reflect"
	"testing"
)

func TestSortedKeys(t *testing.T) {
	m := map[uint64]string{9: "i", 1: "a", 4: "d", 7: "g"}
	for trial := 0; trial < 10; trial++ {
		got := SortedKeys(m)
		if want := []uint64{1, 4, 7, 9}; !reflect.DeepEqual(got, want) {
			t.Fatalf("SortedKeys = %v, want %v", got, want)
		}
	}
	if got := SortedKeys(map[string]int(nil)); len(got) != 0 {
		t.Fatalf("SortedKeys(nil) = %v", got)
	}
}

func TestSortedKeysFunc(t *testing.T) {
	type key struct{ a, b int }
	m := map[key]bool{{2, 1}: true, {1, 9}: true, {1, 2}: true}
	got := SortedKeysFunc(m, func(x, y key) int {
		if x.a != y.a {
			return x.a - y.a
		}
		return x.b - y.b
	})
	want := []key{{1, 2}, {1, 9}, {2, 1}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("SortedKeysFunc = %v, want %v", got, want)
	}
}
