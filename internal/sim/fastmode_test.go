package sim

// Fast functional mode (DESIGN.md §15): same-seed byte-determinism, and
// count-exactness against the detailed model on benchmarks whose
// interleaving is not timing-sensitive. The benchmarks pinned exact here
// are structurally timing-independent at the tested scale (no lock
// hand-off whose winner depends on miss latency); timing-sensitive ones
// (facesim, dedup, ...) drift by a fraction of a percent and are
// quantified by `spsweep xval` instead of gated here.

import (
	"fmt"
	"testing"

	"spcoh/internal/core"
	"spcoh/internal/workload"
)

func runMode(t *testing.T, bench string, mode Mode, scale float64) *Result {
	t.Helper()
	prof, err := workload.ByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	prog := prof.Build(16, scale, 42)
	opt := DefaultOptions()
	opt.Mode = mode
	opt.Predictors = core.NewSystem(core.DefaultConfig(16))
	res, err := Run(prog, opt)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestFastModeDeterminism: two fast-mode runs of the same seed must agree
// on every observable field — the fast path schedules through the cascade
// clock, and nothing about it may depend on host state.
func TestFastModeDeterminism(t *testing.T) {
	for _, bench := range []string{"ocean", "fft", "streamcluster"} {
		a := fmt.Sprintf("%+v", *runMode(t, bench, ModeFast, 0.05))
		b := fmt.Sprintf("%+v", *runMode(t, bench, ModeFast, 0.05))
		if a != b {
			t.Errorf("%s: same-seed fast runs differ:\n%s\nvs\n%s", bench, a, b)
		}
	}
}

// TestFastModeCountExact: on timing-insensitive benchmarks the fast model
// must reproduce the detailed model's miss decomposition, prediction
// outcomes, snoop lookups and injected traffic exactly — only cycle
// counts may differ (contention is approximated away).
func TestFastModeCountExact(t *testing.T) {
	benches := []string{"ocean", "radix", "water-sp", "bodytrack", "x264"}
	if testing.Short() {
		benches = benches[:2]
	}
	for _, bench := range benches {
		d := runMode(t, bench, ModeDetailed, 0.1)
		f := runMode(t, bench, ModeFast, 0.1)
		type cmp struct {
			name string
			d, f uint64
		}
		for _, c := range []cmp{
			{"misses", d.Nodes.Misses, f.Nodes.Misses},
			{"communicating", d.Nodes.Communicating, f.Nodes.Communicating},
			{"predicted", d.Nodes.Predicted, f.Nodes.Predicted},
			{"pred-correct", d.Nodes.PredCorrect, f.Nodes.PredCorrect},
			{"snoop-lookups", d.Nodes.SnoopLookups, f.Nodes.SnoopLookups},
			{"net-packets", d.Net.Packets, f.Net.Packets},
			{"net-bytes", d.Net.Bytes, f.Net.Bytes},
		} {
			if c.d != c.f {
				t.Errorf("%s: %s diverged: detailed %d, fast %d", bench, c.name, c.d, c.f)
			}
		}
		if d.Cycles == f.Cycles {
			// Not wrong per se, but suspicious: the fast timing model should
			// produce different (contention-free) cycle counts. Equal cycles
			// on a communicating benchmark suggests the mode didn't engage.
			t.Errorf("%s: fast and detailed report identical cycles (%d); is fast mode active?", bench, d.Cycles)
		}
		if f.Mode != ModeFast {
			t.Errorf("%s: fast result does not record its mode (got %q)", bench, f.Mode)
		}
	}
}

// TestFastModeFasterOrEqualEvents: the fast path must fire fewer engine
// events than the detailed one (hop-by-hop link events are collapsed into
// cascade arithmetic) — that reduction is where its speed comes from.
func TestFastModeFewerEvents(t *testing.T) {
	d := runMode(t, "ocean", ModeDetailed, 0.1)
	f := runMode(t, "ocean", ModeFast, 0.1)
	if f.Events >= d.Events {
		t.Errorf("fast mode fired %d events, detailed %d; expected a reduction", f.Events, d.Events)
	}
}
