package sim

import (
	"testing"

	"spcoh/internal/core"
	"spcoh/internal/workload"
)

// benchProgram builds the seeded benchmark workload once per process; the
// build cost (trace synthesis) is excluded from every timed iteration.
func benchProgram(b *testing.B, name string, scale float64) *workload.Program {
	b.Helper()
	p, err := workload.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	return p.Build(16, scale, 42)
}

// runFull executes one full-system simulation and reports simulated
// cycles/sec and events/sec — the throughput axes results/BENCH_core.json
// records (see DESIGN.md §11).
func runFull(b *testing.B, prog *workload.Program, opt func() Options) {
	b.Helper()
	b.ReportAllocs()
	var cycles, events uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(prog, opt())
		if err != nil {
			b.Fatal(err)
		}
		cycles += uint64(res.Cycles)
		events += res.Events
	}
	b.StopTimer()
	secs := b.Elapsed().Seconds()
	if secs > 0 {
		b.ReportMetric(float64(cycles)/secs, "simcycles/s")
		b.ReportMetric(float64(events)/secs, "events/s")
	}
}

// BenchmarkFullSystemDir is the baseline directory protocol on the paper's
// 16-node machine.
func BenchmarkFullSystemDir(b *testing.B) {
	prog := benchProgram(b, "ocean", 0.1)
	runFull(b, prog, DefaultOptions)
}

// BenchmarkFullSystemSP adds the paper's SP predictor (the configuration
// every headline experiment runs).
func BenchmarkFullSystemSP(b *testing.B) {
	prog := benchProgram(b, "ocean", 0.1)
	runFull(b, prog, func() Options {
		opt := DefaultOptions()
		opt.Predictors = core.NewSystem(core.DefaultConfig(16))
		return opt
	})
}

// BenchmarkFullSystemBcast is the broadcast snooping comparison protocol,
// which stresses Network.Broadcast.
func BenchmarkFullSystemBcast(b *testing.B) {
	prog := benchProgram(b, "streamcluster", 0.1)
	runFull(b, prog, func() Options {
		opt := DefaultOptions()
		opt.Protocol = Broadcast
		return opt
	})
}
