// Package sim assembles the full CMP: cores executing a workload program
// over either the prediction-capable directory protocol or the broadcast
// snooping protocol, and collects the measurements the paper's evaluation
// reports.
package sim

import (
	"fmt"

	"spcoh/internal/arch"
	"spcoh/internal/cpu"
	"spcoh/internal/energy"
	"spcoh/internal/event"
	"spcoh/internal/metrics"
	"spcoh/internal/noc"
	"spcoh/internal/predictor"
	"spcoh/internal/protocol"
	"spcoh/internal/snoop"
	"spcoh/internal/workload"
)

// ProtocolKind selects the coherence substrate.
type ProtocolKind int

const (
	// Directory is the baseline MESIF directory protocol, optionally
	// extended with destination-set prediction.
	Directory ProtocolKind = iota
	// Broadcast is the snooping comparison protocol.
	Broadcast
)

// Mode selects the simulation fidelity (DESIGN.md §15).
type Mode string

const (
	// ModeDetailed is the cycle-level model: full NoC contention, link
	// arbitration, and per-message event scheduling. The empty string is
	// accepted as an alias everywhere a Mode is consumed.
	ModeDetailed Mode = "detailed"
	// ModeFast is the fast functional model: the same protocol, predictor
	// and cache state machines (all count statistics stay exact), with NoC
	// contention and arbitration replaced by fixed per-hop latencies —
	// timing is approximate, typically optimistic.
	ModeFast Mode = "fast"
)

// ParseMode validates a mode string ("" = detailed).
func ParseMode(s string) (Mode, error) {
	switch Mode(s) {
	case "", ModeDetailed:
		return ModeDetailed, nil
	case ModeFast:
		return ModeFast, nil
	}
	return "", fmt.Errorf("sim: unknown mode %q (want detailed or fast)", s)
}

// Options configures one simulation run.
type Options struct {
	Machine  protocol.Config
	Protocol ProtocolKind

	// Mode selects detailed (default, also the zero value) or fast
	// simulation.
	Mode Mode

	// Predictors, one per node (directory protocol only). Nil = baseline.
	Predictors []predictor.Predictor

	IssueWidth int

	// Tracer, when set, observes every L2 miss outcome and sync-point
	// (directory protocol only). Used by the characterization pipeline.
	Tracer Tracer

	// Energy model parameters; zero value uses defaults.
	Energy energy.Params

	// MaxCycles aborts runaway simulations (0 = no limit).
	MaxCycles event.Time

	// MetricsEpoch, when non-zero, attaches the run-time metrics collector
	// sampling the whole system every MetricsEpoch cycles; the resulting
	// time-series lands in Result.Metrics. Zero (the default) collects
	// nothing and adds no instrumentation beyond nil checks.
	MetricsEpoch event.Time

	// Shards selects the intra-run parallel executor (DESIGN.md §16):
	// mesh nodes are partitioned into Shards groups executed by a fixed
	// worker pool, with all cross-shard effects merged deterministically at
	// a per-cycle barrier — results are byte-identical to the serial engine
	// for every value. 0 and 1 select the serial engine. Values above the
	// node count are clamped. The executor covers detailed directory runs
	// without instrumentation; fast mode, Broadcast, tracing and metrics
	// runs fall back to serial regardless of Shards.
	Shards int
}

// DefaultOptions returns the paper's machine with the baseline directory
// protocol.
func DefaultOptions() Options {
	return Options{
		Machine:    protocol.DefaultConfig(),
		Protocol:   Directory,
		IssueWidth: 2,
		Energy:     energy.DefaultParams(),
	}
}

// Result carries the measurements of one run.
type Result struct {
	Benchmark string
	Protocol  ProtocolKind
	Predictor string

	// Mode records the simulation fidelity the run used; empty (legacy
	// results) means detailed, keeping existing serialized artifacts and
	// their digests unchanged.
	Mode Mode `json:"Mode,omitempty"`

	Cycles event.Time // execution time (all cores finished)
	Events uint64     // discrete events fired by the engine (throughput accounting)

	// Directory-protocol statistics (zero for Broadcast runs).
	Nodes protocol.NodeStats

	// Broadcast statistics (zero for Directory runs).
	Snoop snoop.Stats

	Net    noc.Stats
	Energy energy.Breakdown

	// StorageBits is the predictors' total table storage at end of run
	// (post-run occupancy for unbounded tables; configured capacity for
	// bounded ones). Zero without prediction.
	StorageBits int

	// Metrics is the epoch time-series collected when Options.MetricsEpoch
	// is non-zero; nil otherwise. It stays a pointer so the zero-config
	// Result snapshot (and its %+v rendering) is unchanged.
	Metrics *metrics.Series `json:"Metrics,omitempty"`
}

// Misses returns the total L2 miss count.
func (r *Result) Misses() uint64 {
	if r.Protocol == Broadcast {
		return r.Snoop.Misses
	}
	return r.Nodes.Misses
}

// AvgMissLatency returns the mean CPU-visible miss latency in cycles.
func (r *Result) AvgMissLatency() float64 {
	if r.Protocol == Broadcast {
		return r.Snoop.AvgMissLatency()
	}
	return r.Nodes.AvgMissLatency()
}

// CommRatio returns the fraction of misses that are communicating.
func (r *Result) CommRatio() float64 {
	var c, t uint64
	if r.Protocol == Broadcast {
		c, t = r.Snoop.Communicating, r.Snoop.Misses
	} else {
		c, t = r.Nodes.Communicating, r.Nodes.Misses
	}
	if t == 0 {
		return 0
	}
	return float64(c) / float64(t)
}

// Run executes a program to completion and returns measurements. It errors
// on deadlock (cores unfinished with an empty event queue) or when
// MaxCycles is exceeded.
func Run(prog *workload.Program, opt Options) (*Result, error) {
	if opt.IssueWidth == 0 {
		opt.IssueWidth = 2
	}
	if opt.Energy == (energy.Params{}) {
		opt.Energy = energy.DefaultParams()
	}
	n := prog.NumThreads()
	if n != opt.Machine.Nodes {
		return nil, fmt.Errorf("sim: %d threads but %d nodes", n, opt.Machine.Nodes)
	}

	mode, err := ParseMode(string(opt.Mode))
	if err != nil {
		return nil, err
	}
	fast := mode == ModeFast

	s := event.New()
	co := cpu.NewCoordinator(s, n)
	res := &Result{Benchmark: prog.Name, Protocol: opt.Protocol, Predictor: "directory"}
	if fast {
		// Recorded only for fast runs: detailed results keep their legacy
		// byte representation (and store digests).
		res.Mode = ModeFast
	}

	var ports []cpu.MemPort
	var dirSys *protocol.System
	var snpSys *snoop.System

	switch opt.Protocol {
	case Directory:
		preds := opt.Predictors
		if preds != nil && opt.Tracer != nil {
			preds = wrapTraced(preds, opt.Tracer, s)
		} else if preds == nil && opt.Tracer != nil {
			preds = make([]predictor.Predictor, n)
			for i := range preds {
				preds[i] = predictor.Null{}
			}
			preds = wrapTraced(preds, opt.Tracer, s)
		}
		dirSys = protocol.New(s, opt.Machine, preds)
		dirSys.Fast = fast
		if opt.Predictors != nil && opt.Predictors[0] != nil {
			res.Predictor = opt.Predictors[0].Name()
		}
		for _, node := range dirSys.Nodes {
			ports = append(ports, node)
		}
	case Broadcast:
		snpSys = snoop.New(s, opt.Machine)
		snpSys.Fast = fast
		res.Predictor = "broadcast"
		for _, node := range snpSys.Nodes {
			ports = append(ports, snoopPort{node})
		}
	}

	var col *metrics.Collector
	if opt.MetricsEpoch > 0 {
		switch opt.Protocol {
		case Directory:
			col = metrics.NewCollector(s, metrics.Config{
				EpochCycles: opt.MetricsEpoch, Links: dirSys.Net.NumLinks(), Nodes: n,
			})
			col.Attach(dirSys.Net)
			dirSys.SetObserver(col.ProtocolObs())
		case Broadcast:
			col = metrics.NewCollector(s, metrics.Config{
				EpochCycles: opt.MetricsEpoch, Links: snpSys.Net.NumLinks(), Nodes: n,
			})
			col.Attach(snpSys.Net)
			snpSys.SetObserver(col.SnoopObs())
		}
	}

	finished := 0
	cores := make([]*cpu.Core, n)
	for i := 0; i < n; i++ {
		cores[i] = cpu.New(i, s, ports[i], co, prog.Threads[i], opt.IssueWidth, func() { finished++ })
		if fast {
			cores[i].EnableFast()
		}
	}

	// Sharded executor eligibility: detailed directory runs without
	// instrumentation hooks. Everything else keeps the serial engine —
	// the observers and the snooping broadcast fire cross-node effects
	// mid-event, which the staging discipline does not cover.
	var exec *event.Exec
	if opt.Shards > 1 && opt.Protocol == Directory && !fast &&
		opt.MetricsEpoch == 0 && opt.Tracer == nil {
		lanes := s.Lanes(n)
		co.SetLanes(lanes)
		for i, c := range cores {
			c.SetLane(lanes[i])
		}
		exec = event.NewExec(s, opt.Shards)
		defer exec.Close()
	}

	for _, c := range cores {
		c.Start()
	}

	if opt.MaxCycles > 0 {
		// Budget check via a peek loop rather than RunUntil: RunUntil now
		// parks the clock at its limit (epoch-sampling semantics), which
		// would inflate the reported Cycles of a run that finishes early.
		if exec != nil {
			exec.RunBudget(opt.MaxCycles)
		} else {
			for {
				next, ok := s.NextTime()
				if !ok || next > opt.MaxCycles {
					break
				}
				s.Step()
			}
		}
		if finished < n {
			return nil, fmt.Errorf("sim: %s exceeded %d cycles (%d/%d cores done)", prog.Name, opt.MaxCycles, finished, n)
		}
	}
	if exec != nil {
		exec.Run()
	} else {
		s.Run()
	}
	if finished < n {
		return nil, fmt.Errorf("sim: deadlock in %s: %d/%d cores finished; %s", prog.Name, finished, n, co.Pending())
	}

	res.Cycles = s.Now()
	res.Events = s.Fired
	if col != nil {
		res.Metrics = col.Finalize(s.Now())
	}
	switch opt.Protocol {
	case Directory:
		for _, node := range dirSys.Nodes {
			res.StorageBits += node.Predictor().StorageBits()
		}
		res.Nodes = dirSys.Stats()
		res.Net = dirSys.NetStats()
		res.Energy = energy.Compute(res.Net, res.Nodes.SnoopLookups, opt.Energy)
		if hard, _ := dirSys.CheckCoherence(); len(hard) > 0 {
			return nil, fmt.Errorf("sim: coherence violation in %s: %s", prog.Name, hard[0])
		}
	case Broadcast:
		res.Snoop = snpSys.Stats()
		res.Net = snpSys.NetStats()
		res.Energy = energy.Compute(res.Net, res.Snoop.SnoopLookups, opt.Energy)
	}
	return res, nil
}

// snoopPort adapts snoop.Node to cpu.MemPort (snooping ignores sync-point
// exposure — it has no predictor).
type snoopPort struct{ n *snoop.Node }

func (p snoopPort) Access(pc uint64, addr arch.Addr, write bool, done func()) {
	p.n.Access(pc, addr, write, done)
}
func (p snoopPort) AccessFast(pc uint64, addr arch.Addr, write bool) (event.Time, bool) {
	return p.n.AccessFast(pc, addr, write)
}
func (p snoopPort) OnSync(predictor.SyncKind, uint64) {}
