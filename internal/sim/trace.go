package sim

import (
	"spcoh/internal/arch"
	"spcoh/internal/event"
	"spcoh/internal/predictor"
)

// Tracer observes L2-miss outcomes and sync-points during a directory run.
// The characterization pipeline (internal/charac) implements it; the trace
// package persists it.
type Tracer interface {
	// Miss is called once per completed L2 miss with its authoritative
	// outcome (as the directory's responses reported it).
	Miss(cycle event.Time, node arch.NodeID, line arch.LineAddr, pc uint64,
		kind predictor.MissKind, o predictor.Outcome)
	// Sync is called when a node crosses a synchronization point.
	Sync(cycle event.Time, node arch.NodeID, kind predictor.SyncKind, staticID uint64)
}

// traced interposes a Tracer in front of an inner predictor; prediction
// behaviour is unchanged.
type traced struct {
	inner predictor.Predictor
	tr    Tracer
	sim   *event.Sim
}

func wrapTraced(preds []predictor.Predictor, tr Tracer, s *event.Sim) []predictor.Predictor {
	out := make([]predictor.Predictor, len(preds))
	for i, p := range preds {
		if p == nil {
			p = predictor.Null{}
		}
		out[i] = &traced{inner: p, tr: tr, sim: s}
	}
	return out
}

// Name implements predictor.Predictor.
func (t *traced) Name() string { return t.inner.Name() }

// Predict implements predictor.Predictor.
func (t *traced) Predict(m predictor.Miss) (arch.SharerSet, predictor.Tag) {
	return t.inner.Predict(m)
}

// Train implements predictor.Predictor.
func (t *traced) Train(m predictor.Miss, o predictor.Outcome) {
	t.tr.Miss(t.sim.Now(), m.Node, m.Line, m.PC, m.Kind, o)
	t.inner.Train(m, o)
}

// OnSync implements predictor.Predictor.
func (t *traced) OnSync(e predictor.SyncEvent) {
	t.tr.Sync(t.sim.Now(), e.Node, e.Kind, e.StaticID)
	t.inner.OnSync(e)
}

// StorageBits implements predictor.Predictor.
func (t *traced) StorageBits() int { return t.inner.StorageBits() }

// TrainExternal forwards external-request training to predictors that use
// it (the ADDR predictor); a no-op otherwise. Keeping this method on the
// wrapper preserves the inner predictor's externalTrainer capability.
func (t *traced) TrainExternal(line arch.LineAddr, requester arch.NodeID) {
	if et, ok := t.inner.(interface {
		TrainExternal(arch.LineAddr, arch.NodeID)
	}); ok {
		et.TrainExternal(line, requester)
	}
}
