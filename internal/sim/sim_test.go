package sim

import (
	"testing"

	"spcoh/internal/arch"
	"spcoh/internal/core"
	"spcoh/internal/event"
	"spcoh/internal/predictor"
	"spcoh/internal/workload"
)

func buildSmall(t *testing.T, name string) *workload.Program {
	t.Helper()
	p, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return p.Build(16, 0.05, 42)
}

func TestRunBaselineDirectory(t *testing.T) {
	prog := buildSmall(t, "ocean")
	res, err := Run(prog, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 || res.Nodes.Misses == 0 {
		t.Fatalf("empty result: %+v", res)
	}
	if res.Nodes.Communicating == 0 {
		t.Fatal("stencil workload must have communicating misses")
	}
	if res.Nodes.Predicted != 0 {
		t.Fatal("baseline must not predict")
	}
	if res.CommRatio() <= 0 || res.CommRatio() > 1 {
		t.Fatalf("comm ratio = %v", res.CommRatio())
	}
}

func TestRunBroadcast(t *testing.T) {
	prog := buildSmall(t, "ocean")
	opt := DefaultOptions()
	opt.Protocol = Broadcast
	res, err := Run(prog, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Snoop.Misses == 0 || res.Snoop.SnoopLookups == 0 {
		t.Fatalf("broadcast stats empty: %+v", res.Snoop)
	}
}

func TestBroadcastFasterMoreBandwidth(t *testing.T) {
	prog := buildSmall(t, "x264") // high communicating fraction
	dir, err := Run(prog, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	opt.Protocol = Broadcast
	bc, err := Run(prog, opt)
	if err != nil {
		t.Fatal(err)
	}
	if bc.AvgMissLatency() >= dir.AvgMissLatency() {
		t.Fatalf("broadcast latency %.1f should beat directory %.1f",
			bc.AvgMissLatency(), dir.AvgMissLatency())
	}
	if bc.Net.Bytes <= dir.Net.Bytes {
		t.Fatalf("broadcast bytes %d should exceed directory %d", bc.Net.Bytes, dir.Net.Bytes)
	}
	if bc.Energy.Total() <= dir.Energy.Total() {
		t.Fatalf("broadcast energy should exceed directory")
	}
}

func TestSPPredictionImprovesLatency(t *testing.T) {
	prog := buildSmall(t, "streamcluster") // highly repetitive
	base, err := Run(prog, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	opt.Predictors = core.NewSystem(core.DefaultConfig(16))
	sp, err := Run(prog, opt)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Nodes.Predicted == 0 || sp.Nodes.PredCorrect == 0 {
		t.Fatalf("SP made no predictions: %+v", sp.Nodes)
	}
	if sp.AvgMissLatency() >= base.AvgMissLatency() {
		t.Fatalf("SP latency %.1f should beat baseline %.1f",
			sp.AvgMissLatency(), base.AvgMissLatency())
	}
	if sp.Cycles >= base.Cycles {
		t.Fatalf("SP cycles %d should beat baseline %d", sp.Cycles, base.Cycles)
	}
	if sp.Predictor != "SP" {
		t.Fatalf("predictor name = %q", sp.Predictor)
	}
}

func TestAllPredictorsRunAllShapes(t *testing.T) {
	// Cross product of a few structurally distinct benchmarks and every
	// predictor: must complete without deadlock or coherence violations.
	benches := []string{"fmm", "radiosity", "fft", "dedup"}
	build := func(which string) []predictor.Predictor {
		preds := make([]predictor.Predictor, 16)
		for i := range preds {
			switch which {
			case "ADDR":
				preds[i] = predictor.NewAddr(arch.NodeID(i), 16)
			case "INST":
				preds[i] = predictor.NewInst(arch.NodeID(i), 16)
			case "UNI":
				preds[i] = predictor.NewUni(arch.NodeID(i), 16)
			}
		}
		if which == "SP" {
			return core.NewSystem(core.DefaultConfig(16))
		}
		return preds
	}
	for _, b := range benches {
		prog := buildSmall(t, b)
		for _, which := range []string{"SP", "ADDR", "INST", "UNI"} {
			opt := DefaultOptions()
			opt.Predictors = build(which)
			res, err := Run(prog, opt)
			if err != nil {
				t.Fatalf("%s/%s: %v", b, which, err)
			}
			if res.Nodes.Misses == 0 {
				t.Fatalf("%s/%s: no misses", b, which)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	prog := buildSmall(t, "water-ns")
	opt := DefaultOptions()
	opt.Predictors = core.NewSystem(core.DefaultConfig(16))
	a, err := Run(prog, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Predictors = core.NewSystem(core.DefaultConfig(16))
	b, err := Run(prog, opt)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.Nodes != b.Nodes || a.Net != b.Net {
		t.Fatalf("simulation not deterministic:\n%+v\n%+v", a, b)
	}
}

type countingTracer struct {
	misses, syncs int
	lockSyncs     int
}

func (c *countingTracer) Miss(_ event.Time, _ arch.NodeID, _ arch.LineAddr, _ uint64,
	_ predictor.MissKind, _ predictor.Outcome) {
	c.misses++
}
func (c *countingTracer) Sync(_ event.Time, _ arch.NodeID, kind predictor.SyncKind, _ uint64) {
	c.syncs++
	if kind == predictor.SyncLock {
		c.lockSyncs++
	}
}

func TestTracerObservesRun(t *testing.T) {
	prog := buildSmall(t, "water-ns")
	tr := &countingTracer{}
	opt := DefaultOptions()
	opt.Tracer = tr
	res, err := Run(prog, opt)
	if err != nil {
		t.Fatal(err)
	}
	if tr.misses == 0 || tr.syncs == 0 || tr.lockSyncs == 0 {
		t.Fatalf("tracer saw misses=%d syncs=%d locks=%d", tr.misses, tr.syncs, tr.lockSyncs)
	}
	if uint64(tr.misses) != res.Nodes.Misses {
		t.Fatalf("tracer misses %d != stats misses %d", tr.misses, res.Nodes.Misses)
	}
}

func TestOracleRoundTrip(t *testing.T) {
	prog := buildSmall(t, "ocean")
	book := core.NewOracleBook()
	cfg := core.DefaultConfig(16)

	optRec := DefaultOptions()
	optRec.Predictors = core.RecorderSystem(cfg, book)
	if _, err := Run(prog, optRec); err != nil {
		t.Fatal(err)
	}

	optOr := DefaultOptions()
	optOr.Predictors = core.OracleSystem(16, book)
	res, err := Run(prog, optOr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Nodes.PredCorrect == 0 {
		t.Fatal("oracle should predict correctly")
	}
	// The oracle should be at least as accurate as the on-line SP
	// predictor on a repetitive workload.
	optSP := DefaultOptions()
	optSP.Predictors = core.NewSystem(cfg)
	sp, err := Run(prog, optSP)
	if err != nil {
		t.Fatal(err)
	}
	if res.Nodes.Accuracy()+0.05 < sp.Nodes.Accuracy() {
		t.Fatalf("oracle accuracy %.2f well below SP %.2f", res.Nodes.Accuracy(), sp.Nodes.Accuracy())
	}
}

func TestThreadCountMismatch(t *testing.T) {
	p, _ := workload.ByName("ocean")
	prog := p.Build(4, 0.05, 1)
	if _, err := Run(prog, DefaultOptions()); err == nil {
		t.Fatal("4 threads on a 16-node machine must error")
	}
}
