package sim

import (
	"strings"
	"testing"

	"spcoh/internal/protocol"
	"spcoh/internal/workload"
)

func TestMaxCyclesAborts(t *testing.T) {
	p, _ := workload.ByName("ocean")
	prog := p.Build(16, 0.2, 1)
	opt := DefaultOptions()
	opt.MaxCycles = 100 // far too few
	_, err := Run(prog, opt)
	if err == nil || !strings.Contains(err.Error(), "exceeded") {
		t.Fatalf("expected MaxCycles abort, got %v", err)
	}
}

func TestMaxCyclesGenerous(t *testing.T) {
	p, _ := workload.ByName("x264")
	prog := p.Build(16, 0.1, 1)
	opt := DefaultOptions()
	opt.MaxCycles = 1 << 40
	res, err := Run(prog, opt)
	if err != nil || res.Cycles == 0 {
		t.Fatalf("generous MaxCycles must not abort: %v", err)
	}
}

func TestSmallMachine(t *testing.T) {
	cfg, err := protocol.ConfigFor(4)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := workload.ByName("water-ns")
	prog := p.Build(4, 0.2, 1)
	opt := DefaultOptions()
	opt.Machine = cfg
	res, err := Run(prog, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Misses() == 0 || res.CommRatio() <= 0 {
		t.Fatalf("4-node run empty: %+v", res)
	}
}

func TestConfigForRejectsNonSquare(t *testing.T) {
	for _, n := range []int{0, 5, 7, 12, 200, 1024} {
		if _, err := protocol.ConfigFor(n); err == nil {
			t.Errorf("ConfigFor(%d) should error", n)
		}
	}
	for _, n := range []int{1, 4, 16, 64, 100, 256} {
		cfg, err := protocol.ConfigFor(n)
		if err != nil {
			t.Errorf("ConfigFor(%d): %v", n, err)
			continue
		}
		if cfg.Nodes != n || cfg.NoC.Nodes() != n {
			t.Errorf("ConfigFor(%d) = %+v", n, cfg)
		}
	}
}

func TestResultAccessors(t *testing.T) {
	p, _ := workload.ByName("x264")
	prog := p.Build(16, 0.1, 1)
	res, err := Run(prog, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Misses() != res.Nodes.Misses {
		t.Fatal("Misses accessor wrong for directory runs")
	}
	opt := DefaultOptions()
	opt.Protocol = Broadcast
	res, err = Run(prog, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Misses() != res.Snoop.Misses || res.AvgMissLatency() != res.Snoop.AvgMissLatency() {
		t.Fatal("accessors wrong for broadcast runs")
	}
}
