package sim

import (
	"encoding/json"
	"testing"

	"spcoh/internal/protocol"
	"spcoh/internal/scenario"
	"spcoh/internal/workload"
)

// runJSON executes one seeded run and returns its canonical serialized
// result — "output bytes" in the sense of the determinism contract.
func runJSON(t *testing.T, prog *workload.Program, opt Options) []byte {
	t.Helper()
	res, err := Run(prog, opt)
	if err != nil {
		t.Fatalf("run %s (shards=%d): %v", prog.Name, opt.Shards, err)
	}
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestShardByteIdentityAllProfiles pins the executor's core contract:
// every builtin profile, at two seeds, produces byte-identical results at
// shard counts 1, 2 and 4.
func TestShardByteIdentityAllProfiles(t *testing.T) {
	names := workload.Names()
	if len(names) < 17 {
		t.Fatalf("expected >= 17 builtin profiles, got %d", len(names))
	}
	for _, name := range names {
		p, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, seed := range []int64{1, 2} {
			opt := DefaultOptions()
			opt.Shards = 1
			ref := runJSON(t, p.Build(16, 0.08, seed), opt)
			for _, k := range []int{2, 4} {
				opt.Shards = k
				got := runJSON(t, p.Build(16, 0.08, seed), opt)
				if string(got) != string(ref) {
					t.Errorf("%s seed=%d: shards=%d diverges from serial\nserial: %s\nshards: %s",
						name, seed, k, ref, got)
				}
			}
		}
	}
}

// TestShardSweepGeneratedScenario runs a generated (fuzzed) scenario spec
// across shard counts 1/2/4/8 and demands identical bytes throughout.
func TestShardSweepGeneratedScenario(t *testing.T) {
	spec := scenario.Generate(42, scenario.GenOptions{})
	prog, err := workload.FromSpec(spec, 16, 0.1, 7)
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	opt.Shards = 1
	ref := runJSON(t, prog, opt)
	for _, k := range []int{2, 4, 8} {
		prog, err = workload.FromSpec(spec, 16, 0.1, 7)
		if err != nil {
			t.Fatal(err)
		}
		opt.Shards = k
		if got := runJSON(t, prog, opt); string(got) != string(ref) {
			t.Errorf("generated scenario: shards=%d diverges from serial", k)
		}
	}
}

// TestShardBigMesh exercises the scaled machines the executor exists for:
// an 8x8 and a 16x16 mesh, serial vs sharded, byte-identical.
func TestShardBigMesh(t *testing.T) {
	if testing.Short() {
		t.Skip("big-mesh identity is slow")
	}
	p, err := workload.ByName("ocean")
	if err != nil {
		t.Fatal(err)
	}
	for _, nodes := range []int{64, 256} {
		cfg, err := protocol.ConfigFor(nodes)
		if err != nil {
			t.Fatal(err)
		}
		opt := DefaultOptions()
		opt.Machine = cfg
		opt.Shards = 1
		ref := runJSON(t, p.Build(nodes, 0.02, 3), opt)
		opt.Shards = 4
		got := runJSON(t, p.Build(nodes, 0.02, 3), opt)
		if string(got) != string(ref) {
			t.Errorf("%d-node mesh: shards=4 diverges from serial", nodes)
		}
	}
}

// TestShardMaxCyclesParity pins that the budget path (MaxCycles) behaves
// identically under the executor — including the abort error.
func TestShardMaxCyclesParity(t *testing.T) {
	p, _ := workload.ByName("ocean")
	opt := DefaultOptions()
	opt.Shards = 4
	opt.MaxCycles = 100
	if _, err := Run(p.Build(16, 0.2, 1), opt); err == nil {
		t.Fatal("expected MaxCycles abort under the sharded executor")
	}
	opt.MaxCycles = 1 << 40
	opt.Shards = 1
	ref := runJSON(t, p.Build(16, 0.1, 1), opt)
	opt.Shards = 4
	if got := runJSON(t, p.Build(16, 0.1, 1), opt); string(got) != string(ref) {
		t.Fatal("generous MaxCycles: sharded result diverges from serial")
	}
}
