package sim

import (
	"bytes"
	"fmt"
	"testing"

	"spcoh/internal/charac"
	"spcoh/internal/core"
	"spcoh/internal/event"
	"spcoh/internal/predictor"
	"spcoh/internal/trace"
	"spcoh/internal/workload"
)

// snapshot runs one full simulation and serializes everything observable:
// the final stats Result, the raw binary miss/sync trace, and the
// characterization digest built from it. Two runs with the same seed must
// produce byte-identical snapshots.
func snapshot(t *testing.T, bench string, kind ProtocolKind, withSP bool, seed int64) string {
	t.Helper()
	prof, err := workload.ByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	prog := prof.Build(16, 0.05, seed)

	opt := DefaultOptions()
	opt.Protocol = kind
	var col *trace.Collector
	if kind == Directory {
		col = &trace.Collector{}
		opt.Tracer = col
		if withSP {
			opt.Predictors = core.NewSystem(core.DefaultConfig(16))
		}
	}
	res, err := Run(prog, opt)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	fmt.Fprintf(&buf, "%+v\n", *res)
	if col != nil {
		w := trace.NewWriter(&buf)
		for _, e := range col.Events {
			if err := w.Write(e); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		a := charac.Analyze(col.Events, 16)
		fmt.Fprintf(&buf, "epochIDs=%v\n", a.StaticEpochIDs())
		fmt.Fprintf(&buf, "covPC=%v\n", a.CoverageByPC())
		fmt.Fprintf(&buf, "covEpoch=%v\n", a.CoverageByEpoch())
		cs, se, dyn := a.EpochStats()
		fmt.Fprintf(&buf, "epochStats=%d/%d/%f\n", cs, se, dyn)
	}
	return buf.String()
}

// TestDeterministicReplay asserts the simulator's core reproducibility
// invariant: the same configuration and seed, run twice in the same
// process, produce byte-identical stats, traces and characterization
// output. Go randomizes map iteration per range statement, so any map-order
// dependence in the event path shows up here as a diff.
func TestDeterministicReplay(t *testing.T) {
	// radiosity and dedup are the profiles that consume build-time
	// randomness, so they also prove the snapshot is seed-sensitive.
	cases := []struct {
		name   string
		bench  string
		kind   ProtocolKind
		withSP bool
	}{
		{"directory-sp", "radiosity", Directory, true},
		{"directory-baseline", "dedup", Directory, false},
		{"broadcast", "radiosity", Broadcast, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := snapshot(t, tc.bench, tc.kind, tc.withSP, 42)
			b := snapshot(t, tc.bench, tc.kind, tc.withSP, 42)
			if a != b {
				t.Fatalf("same seed, different results (len %d vs %d):\nfirst diff at byte %d",
					len(a), len(b), firstDiff(a, b))
			}
			// A different seed must actually change the workload: guards
			// against the snapshot accidentally capturing nothing.
			c := snapshot(t, tc.bench, tc.kind, tc.withSP, 43)
			if a == c {
				t.Fatal("different seeds produced identical snapshots; snapshot is insensitive")
			}
		})
	}
}

// TestDeterministicReplayFIFO pins the event engine's same-cycle FIFO
// tie-breaking, which the replay guarantee rests on: events scheduled for
// the same cycle must fire in scheduling order. Deliberately breaking the
// sequence-number tie-break in internal/event fails this test.
func TestDeterministicReplayFIFO(t *testing.T) {
	s := event.New()
	var got []int
	const n = 64
	// Interleave two batches at the same timestamp behind an earlier event,
	// so heap sift order differs from scheduling order unless seq breaks
	// the tie.
	for i := 0; i < n; i++ {
		i := i
		s.At(10, func() { got = append(got, i) })
	}
	s.At(5, func() { got = append(got, -1) })
	for i := n; i < 2*n; i++ {
		i := i
		s.At(10, func() { got = append(got, i) })
	}
	s.Run()
	if len(got) != 2*n+1 || got[0] != -1 {
		t.Fatalf("fired %d events, first %v", len(got), got[:1])
	}
	for i := 0; i < 2*n; i++ {
		if got[i+1] != i {
			t.Fatalf("same-cycle events fired out of scheduling order: position %d got %d", i, got[i+1])
		}
	}
}

// TestWorkloadBuildDeterministic asserts the seeded builder emits identical
// op streams per seed (the injected-*rand.Rand invariant of
// internal/workload).
func TestWorkloadBuildDeterministic(t *testing.T) {
	for _, bench := range []string{"fmm", "dedup", "x264"} {
		prof, err := workload.ByName(bench)
		if err != nil {
			t.Fatal(err)
		}
		a := fmt.Sprintf("%+v", prof.Build(16, 0.05, 7).Threads)
		b := fmt.Sprintf("%+v", prof.Build(16, 0.05, 7).Threads)
		if a != b {
			t.Fatalf("%s: same seed produced different op streams", bench)
		}
	}
}

func firstDiff(a, b string) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

var _ predictor.Predictor = (*traced)(nil) // traced must stay a Predictor
