package sim

import (
	"bytes"
	"fmt"
	"testing"

	"spcoh/internal/core"
	"spcoh/internal/event"
	"spcoh/internal/metrics"
	"spcoh/internal/workload"
)

func runWithMetrics(t *testing.T, bench string, kind ProtocolKind, withSP bool, epoch uint64, seed int64) *Result {
	t.Helper()
	prof, err := workload.ByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	prog := prof.Build(16, 0.05, seed)
	opt := DefaultOptions()
	opt.Protocol = kind
	if withSP && kind == Directory {
		opt.Predictors = core.NewSystem(core.DefaultConfig(16))
	}
	opt.MetricsEpoch = event.Time(epoch)
	res, err := Run(prog, opt)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestMetricsSeriesDeterministic asserts the ISSUE 4 acceptance criterion:
// a 16-core run with metrics enabled produces a byte-identical JSON
// time-series across two same-seed runs, and the series actually covers
// link utilization, per-class latency histograms, and the predictor
// accuracy timeline.
func TestMetricsSeriesDeterministic(t *testing.T) {
	cases := []struct {
		name   string
		kind   ProtocolKind
		withSP bool
	}{
		{"directory-sp", Directory, true},
		{"broadcast", Broadcast, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := runWithMetrics(t, "radiosity", tc.kind, tc.withSP, 1000, 42)
			b := runWithMetrics(t, "radiosity", tc.kind, tc.withSP, 1000, 42)
			if a.Metrics == nil || b.Metrics == nil {
				t.Fatal("MetricsEpoch set but no series collected")
			}
			if err := a.Metrics.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			var bufA, bufB bytes.Buffer
			if err := a.Metrics.WriteJSON(&bufA); err != nil {
				t.Fatal(err)
			}
			if err := b.Metrics.WriteJSON(&bufB); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
				t.Fatalf("same seed, different metrics series (len %d vs %d)",
					bufA.Len(), bufB.Len())
			}

			var busy, req, resp, misses, predicted uint64
			for i := range a.Metrics.Epochs {
				e := &a.Metrics.Epochs[i]
				for _, v := range e.LinkBusy {
					busy += v
				}
				req += e.ClassCount[metrics.ClassRequest]
				resp += e.ClassCount[metrics.ClassResponse]
				misses += e.Misses
				predicted += e.Predicted
			}
			if busy == 0 {
				t.Error("series shows no link utilization")
			}
			if req == 0 || resp == 0 {
				t.Errorf("series shows no class traffic: req=%d resp=%d", req, resp)
			}
			if misses == 0 {
				t.Error("series shows no misses")
			}
			if misses != a.Misses() {
				t.Errorf("series misses = %d, Result misses = %d", misses, a.Misses())
			}
			if tc.withSP && predicted == 0 {
				t.Error("SP run shows no predictor timeline")
			}
			if uint64(a.Cycles) != a.Metrics.Cycles {
				t.Errorf("series cycles = %d, Result cycles = %d", a.Metrics.Cycles, a.Cycles)
			}
		})
	}
}

// TestMetricsDoesNotPerturbSimulation asserts the collector is a pure
// observer: a run with metrics enabled produces exactly the same Result
// (cycles, stats, energy) as the same run without.
func TestMetricsDoesNotPerturbSimulation(t *testing.T) {
	for _, kind := range []ProtocolKind{Directory, Broadcast} {
		off := runWithMetrics(t, "dedup", kind, kind == Directory, 0, 7)
		on := runWithMetrics(t, "dedup", kind, kind == Directory, 256, 7)
		if off.Metrics != nil {
			t.Fatal("metrics collected with MetricsEpoch=0")
		}
		if on.Metrics == nil {
			t.Fatal("no metrics collected with MetricsEpoch=256")
		}
		on.Metrics = nil
		a, b := fmt.Sprintf("%+v", *off), fmt.Sprintf("%+v", *on)
		if a != b {
			t.Fatalf("kind %v: metrics perturbed the simulation:\noff: %s\non:  %s", kind, a, b)
		}
	}
}
