package predictor

import "spcoh/internal/arch"

// RegionFilter implements the orthogonal bandwidth-filtering technique the
// paper discusses in §5.3: "most [prediction attempts on non-communicating
// misses] can be detected and avoided by simple snoop filtering... a simple
// low cost TLB-based snoop filter can detect ~75% of them".
//
// It wraps any Predictor and tracks, per coarse region, whether recent
// misses were satisfied by memory (private/unshared data). Prediction
// attempts to regions that look private are suppressed, cutting the wasted
// multicast bandwidth of Figure 9 without touching the latency gains —
// communicating regions keep predicting.
type RegionFilter struct {
	inner Predictor

	// regionShift selects the filter granularity in line-address bits
	// (e.g. 6 => 64-line / 4KB regions, a TLB-page-like granularity).
	regionShift uint

	// state holds a small saturating counter per region: positive values
	// lean private (memory-sourced misses), zero or below lean shared.
	state map[uint64]int8

	// privateAt is the counter value at which a region is deemed private.
	privateAt int8

	// Suppressed counts predictions the filter blocked (statistics).
	Suppressed uint64
}

// NewRegionFilter wraps inner with a page-granularity (4KB) filter.
func NewRegionFilter(inner Predictor) *RegionFilter {
	return &RegionFilter{inner: inner, regionShift: 6, state: make(map[uint64]int8), privateAt: 2}
}

func (f *RegionFilter) region(l arch.LineAddr) uint64 { return uint64(l) >> f.regionShift }

// Name implements Predictor.
func (f *RegionFilter) Name() string { return f.inner.Name() + "+filter" }

// Predict implements Predictor: suppressed for private-looking regions.
func (f *RegionFilter) Predict(m Miss) (arch.SharerSet, Tag) {
	if f.state[f.region(m.Line)] >= f.privateAt {
		set, _ := f.inner.Predict(m)
		if !set.Empty() {
			f.Suppressed++
		}
		return arch.EmptySet, TagNone
	}
	return f.inner.Predict(m)
}

// Train implements Predictor: non-communicating misses push the region
// toward private; communicating misses reset it to shared immediately
// (missing a real communication opportunity is the expensive error).
func (f *RegionFilter) Train(m Miss, o Outcome) {
	r := f.region(m.Line)
	if o.Communicating {
		f.state[r] = -2
	} else if f.state[r] < f.privateAt {
		f.state[r]++
	}
	f.inner.Train(m, o)
}

// TrainExternal marks the region shared (another node asked about it) and
// forwards to predictors that learn from external requests.
func (f *RegionFilter) TrainExternal(line arch.LineAddr, requester arch.NodeID) {
	f.state[f.region(line)] = -2
	if et, ok := f.inner.(interface {
		TrainExternal(arch.LineAddr, arch.NodeID)
	}); ok {
		et.TrainExternal(line, requester)
	}
}

// OnSync implements Predictor.
func (f *RegionFilter) OnSync(e SyncEvent) { f.inner.OnSync(e) }

// StorageBits implements Predictor: 2 bits per tracked region plus a
// 20-bit tag, on top of the inner predictor.
func (f *RegionFilter) StorageBits() int {
	return f.inner.StorageBits() + len(f.state)*(2+20)
}

// Inner returns the wrapped predictor.
func (f *RegionFilter) Inner() Predictor { return f.inner }
