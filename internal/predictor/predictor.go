// Package predictor defines the destination-set prediction framework: the
// interface every coherence target predictor implements, the miss/outcome
// vocabulary used for prediction and training, and the baseline predictors
// the paper compares against (UNI, ADDR, INST — the "group" destination-set
// predictors of Martin et al., ISCA 2003, as configured in the paper's §5.4).
//
// The paper's own SP-predictor lives in internal/core and implements the
// same interface.
package predictor

import "spcoh/internal/arch"

// MissKind classifies a coherence request.
type MissKind uint8

const (
	ReadMiss    MissKind = iota // GetS
	WriteMiss                   // GetM without a valid local copy
	UpgradeMiss                 // GetM while holding a Shared copy
)

// String returns a short name.
func (k MissKind) String() string {
	switch k {
	case ReadMiss:
		return "read"
	case WriteMiss:
		return "write"
	case UpgradeMiss:
		return "upgrade"
	default:
		return "?"
	}
}

// Miss describes an L2 miss at prediction time.
type Miss struct {
	Node arch.NodeID   // requesting node
	Line arch.LineAddr // referenced cache line
	PC   uint64        // static instruction issuing the access
	Kind MissKind
}

// Outcome describes how a miss was actually satisfied, for training.
type Outcome struct {
	// Provider is the cache that supplied data, or arch.None if memory did
	// (or no data was needed, as for upgrades).
	Provider arch.NodeID
	// Invalidated is the set of caches invalidated by a write/upgrade.
	Invalidated arch.SharerSet
	// Communicating reports whether the miss contacted at least one other
	// cache (the paper's "communicating miss").
	Communicating bool
}

// Targets returns the full set of nodes the miss had to communicate with.
func (o Outcome) Targets() arch.SharerSet {
	s := o.Invalidated
	if o.Provider != arch.None {
		s = s.Add(o.Provider)
	}
	return s
}

// Tag labels the information source behind one prediction, for the accuracy
// breakdown of the paper's Figure 7.
type Tag uint8

const (
	TagNone     Tag = iota // no prediction made (fall back to directory)
	TagD0                  // current-interval hot set, no history (d=0)
	TagHistory             // hot set recalled from SP-table history (d>=1)
	TagLock                // lock sync-point: last holder(s) of the lock
	TagRecovery            // predictor rebuilt after a confidence alert
	TagOther               // non-SP predictors (ADDR/INST/UNI)
)

// String returns the Figure-7 legend name.
func (t Tag) String() string {
	switch t {
	case TagNone:
		return "none"
	case TagD0:
		return "d=0"
	case TagHistory:
		return "d=2"
	case TagLock:
		return "lock"
	case TagRecovery:
		return "recovery"
	case TagOther:
		return "other"
	default:
		return "?"
	}
}

// SyncKind classifies a synchronization point (paper §3.1).
type SyncKind uint8

const (
	SyncBarrier SyncKind = iota
	SyncLock
	SyncUnlock
	SyncJoin
	SyncWakeup
	SyncBroadcast
)

// String returns the paper's name for the sync kind.
func (k SyncKind) String() string {
	switch k {
	case SyncBarrier:
		return "barrier"
	case SyncLock:
		return "lock"
	case SyncUnlock:
		return "unlock"
	case SyncJoin:
		return "join"
	case SyncWakeup:
		return "wakeup"
	case SyncBroadcast:
		return "broadcast"
	default:
		return "?"
	}
}

// SyncEvent is a sync-point occurrence exposed to the hardware (paper §4.1):
// the kind plus the static ID (calling PC, or lock address for lock points).
type SyncEvent struct {
	Node     arch.NodeID
	Kind     SyncKind
	StaticID uint64 // PC of the sync call site, or lock variable address
}

// Predictor is a per-node coherence destination-set predictor.
//
// Predict must not mutate training state (it may read it); Train is called
// once per completed miss with the authoritative outcome observed from the
// directory's responses. OnSync delivers sync-points captured at this node;
// non-SP predictors ignore it.
type Predictor interface {
	Name() string
	Predict(m Miss) (arch.SharerSet, Tag)
	Train(m Miss, o Outcome)
	OnSync(e SyncEvent)
	// StorageBits returns the predictor's table storage in bits, for the
	// space-efficiency comparisons of Figures 12-13.
	StorageBits() int
}

// Null is the no-prediction predictor: the baseline directory protocol.
type Null struct{}

// Name implements Predictor.
func (Null) Name() string { return "directory" }

// Predict implements Predictor; it never predicts.
func (Null) Predict(Miss) (arch.SharerSet, Tag) { return arch.EmptySet, TagNone }

// Train implements Predictor.
func (Null) Train(Miss, Outcome) {}

// OnSync implements Predictor.
func (Null) OnSync(SyncEvent) {}

// StorageBits implements Predictor.
func (Null) StorageBits() int { return 0 }
