package predictor

import (
	"testing"
	"testing/quick"

	"spcoh/internal/arch"
)

func TestMissKindString(t *testing.T) {
	if ReadMiss.String() != "read" || WriteMiss.String() != "write" || UpgradeMiss.String() != "upgrade" {
		t.Fatal("MissKind strings wrong")
	}
}

func TestOutcomeTargets(t *testing.T) {
	o := Outcome{Provider: 3, Invalidated: arch.SetOf(1, 2)}
	if o.Targets() != arch.SetOf(1, 2, 3) {
		t.Fatalf("targets = %v", o.Targets())
	}
	o = Outcome{Provider: arch.None}
	if !o.Targets().Empty() {
		t.Fatalf("memory-only outcome should have no cache targets")
	}
}

func TestNullPredictor(t *testing.T) {
	var n Null
	if set, tag := n.Predict(Miss{}); !set.Empty() || tag != TagNone {
		t.Fatal("Null must never predict")
	}
	if n.StorageBits() != 0 || n.Name() != "directory" {
		t.Fatal("Null metadata wrong")
	}
}

func trainN(g *Group, m Miss, targets arch.SharerSet, n int) {
	for i := 0; i < n; i++ {
		g.Train(m, Outcome{Provider: arch.None, Invalidated: targets, Communicating: true})
	}
}

func TestGroupThreshold(t *testing.T) {
	g := NewAddr(0, 4)
	m := Miss{Node: 0, Line: 0x10}
	if set, tag := g.Predict(m); !set.Empty() || tag != TagNone {
		t.Fatal("untrained group must not predict")
	}
	trainN(g, m, arch.SetOf(2), 1)
	if set, _ := g.Predict(m); !set.Empty() {
		t.Fatalf("one training below threshold should not predict: %v", set)
	}
	trainN(g, m, arch.SetOf(2), 1)
	set, tag := g.Predict(m)
	if set != arch.SetOf(2) || tag != TagOther {
		t.Fatalf("prediction = %v tag %v, want {2}", set, tag)
	}
}

func TestGroupMacroblockSharing(t *testing.T) {
	g := NewAddr(0, 4)
	// Lines 0..3 share a 256-byte macroblock (4 lines of 64B).
	trainN(g, Miss{Line: 0}, arch.SetOf(3), 2)
	if set, _ := g.Predict(Miss{Line: 3}); set != arch.SetOf(3) {
		t.Fatalf("macroblock neighbors should share the entry: %v", set)
	}
	if set, _ := g.Predict(Miss{Line: 4}); !set.Empty() {
		t.Fatalf("next macroblock must not share: %v", set)
	}
}

func TestInstIndexesByPC(t *testing.T) {
	g := NewInst(0, 4)
	trainN(g, Miss{PC: 0x400, Line: 1}, arch.SetOf(1), 2)
	if set, _ := g.Predict(Miss{PC: 0x400, Line: 999}); set != arch.SetOf(1) {
		t.Fatalf("INST should predict by PC regardless of address: %v", set)
	}
	if set, _ := g.Predict(Miss{PC: 0x404, Line: 1}); !set.Empty() {
		t.Fatalf("different PC must not share entry: %v", set)
	}
}

func TestTrainDownDecay(t *testing.T) {
	cfg := DefaultAddrConfig(4)
	cfg.TrainDownPeriod = 4
	g := NewGroup("ADDR", 0, cfg)
	m := Miss{Line: 8}
	trainN(g, m, arch.SetOf(1), 3) // counter(1) = 3 (saturated), roll = 3
	trainN(g, m, arch.SetOf(2), 8) // rolls over twice: counter(1) decays
	set, _ := g.Predict(m)
	if !set.Contains(2) {
		t.Fatalf("active destination must stay predicted: %v", set)
	}
	// After enough training toward 2 only, 1 decays below threshold.
	trainN(g, m, arch.SetOf(2), 16)
	set, _ = g.Predict(m)
	if set.Contains(1) {
		t.Fatalf("inactive destination should decay out: %v", set)
	}
}

func TestGroupNeverPredictsSelf(t *testing.T) {
	g := NewAddr(2, 4)
	m := Miss{Node: 2, Line: 1}
	trainN(g, m, arch.SetOf(2, 3), 3)
	set, _ := g.Predict(m)
	if set.Contains(2) {
		t.Fatalf("self in prediction: %v", set)
	}
}

func TestGroupCapacityLRU(t *testing.T) {
	cfg := DefaultAddrConfig(4)
	cfg.Entries = 2
	g := NewGroup("ADDR", 0, cfg)
	trainN(g, Miss{Line: 0 * 4}, arch.SetOf(1), 2)
	trainN(g, Miss{Line: 1 * 4}, arch.SetOf(1), 2)
	trainN(g, Miss{Line: 2 * 4}, arch.SetOf(1), 2) // evicts macroblock 0
	if g.Len() != 2 {
		t.Fatalf("len = %d, want 2", g.Len())
	}
	if set, _ := g.Predict(Miss{Line: 0}); !set.Empty() {
		t.Fatalf("evicted entry must not predict: %v", set)
	}
}

func TestExternalTraining(t *testing.T) {
	g := NewAddr(0, 4)
	g.TrainExternal(0x20, 3)
	g.TrainExternal(0x20, 3)
	if set, _ := g.Predict(Miss{Line: 0x20}); set != arch.SetOf(3) {
		t.Fatalf("external training should build prediction: %v", set)
	}
	// PC-indexed groups cannot use external requests.
	gi := NewInst(0, 4)
	gi.TrainExternal(0x20, 3)
	if gi.Len() != 0 {
		t.Fatal("INST must ignore external training")
	}
}

func TestUniPredictor(t *testing.T) {
	u := NewUni(0, 4)
	if set, tag := u.Predict(Miss{}); !set.Empty() || tag != TagNone {
		t.Fatal("untrained UNI must not predict")
	}
	for i := 0; i < 3; i++ {
		u.Train(Miss{}, Outcome{Provider: 2, Communicating: true})
	}
	set, _ := u.Predict(Miss{})
	if set != arch.SetOf(2) {
		t.Fatalf("UNI = %v, want {2}", set)
	}
	if u.StorageBits() >= NewAddr(0, 4).StorageBits()+37 {
		// UNI is a single untagged entry: far below any table.
		t.Fatalf("UNI storage = %d bits, implausible", u.StorageBits())
	}
}

func TestStorageAccounting(t *testing.T) {
	g := NewAddr(0, 16)
	trainN(g, Miss{Line: 0}, arch.SetOf(1), 1)
	trainN(g, Miss{Line: 100}, arch.SetOf(1), 1)
	// 2 entries x (2*16 + 5 + 32) = 138 bits.
	if g.StorageBits() != 2*(2*16+5+32) {
		t.Fatalf("storage = %d", g.StorageBits())
	}
	cfg := DefaultAddrConfig(16)
	cfg.Entries = 512
	gl := NewGroup("ADDR", 0, cfg)
	if gl.StorageBits() != 512*(2*16+5+32) {
		t.Fatalf("limited storage = %d", gl.StorageBits())
	}
}

// Property: predictions only ever contain trained destinations.
func TestPropertyPredictSubsetOfTrained(t *testing.T) {
	f := func(lines []uint8, targetsRaw []uint8) bool {
		g := NewAddr(0, 8)
		var trained arch.SharerSet
		for i, l := range lines {
			var tgt arch.NodeID
			if i < len(targetsRaw) {
				tgt = arch.NodeID(targetsRaw[i] % 8)
			}
			trained = trained.Add(tgt)
			g.Train(Miss{Line: arch.LineAddr(l)}, Outcome{Provider: tgt, Communicating: true})
		}
		for _, l := range lines {
			set, _ := g.Predict(Miss{Line: arch.LineAddr(l)})
			if !trained.Superset(set) {
				return false
			}
			if set.Contains(0) { // self
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
