package predictor

import (
	"container/list"
	"fmt"

	"spcoh/internal/arch"
)

// Policy selects how a group predictor turns its counters into a predicted
// set (Martin et al.'s design space, referenced in the paper's §5.4
// footnote: "other prediction policies such as 'owner' or 'group/owner'
// can also be used").
type Policy uint8

const (
	// PolicyGroup predicts every core whose counter meets the threshold
	// (the paper's evaluated configuration).
	PolicyGroup Policy = iota
	// PolicyOwner predicts only the single highest-counter core — minimal
	// bandwidth, single-target accuracy.
	PolicyOwner
	// PolicyGroupOwner predicts the owner for reads (one supplier
	// suffices) and the group for writes (all sharers must go).
	PolicyGroupOwner
)

// GroupConfig parameterizes a Martin-style "group" destination-set
// predictor (paper §5.4): per entry one 2-bit saturating counter per core,
// trained up by observed coherence activity toward that core, plus a 5-bit
// roll-over counter implementing train-down so inactive destinations decay.
type GroupConfig struct {
	// Policy selects the prediction policy (default PolicyGroup).
	Policy Policy

	Nodes int // number of cores (counter vector width)
	// IndexGranularityBits selects address-based indexing: entries are
	// keyed by addr >> IndexGranularityBits. The paper's ADDR predictor
	// uses 256-byte macroblocks (8 bits). Zero means index by PC instead
	// (the INST predictor).
	IndexGranularityBits int
	ByPC                 bool
	// Entries caps the table size (fully-associative LRU replacement);
	// 0 means unlimited, the Figure-12 configuration.
	Entries int
	// CounterMax is the saturating ceiling (3 for 2-bit counters).
	CounterMax uint8
	// Threshold is the minimum counter value for a core to join the
	// predicted group (2 in the paper's configuration).
	Threshold uint8
	// TrainDownPeriod is the roll-over period: after this many training
	// events on an entry, every counter in the entry decays by one.
	// 32 models the paper's 5-bit roll-over counter.
	TrainDownPeriod uint8
}

// DefaultAddrConfig is the paper's macroblock ADDR predictor.
func DefaultAddrConfig(nodes int) GroupConfig {
	return GroupConfig{Nodes: nodes, IndexGranularityBits: 8, CounterMax: 3, Threshold: 2, TrainDownPeriod: 32}
}

// DefaultInstConfig is the paper's INST (PC-indexed) predictor.
func DefaultInstConfig(nodes int) GroupConfig {
	return GroupConfig{Nodes: nodes, ByPC: true, CounterMax: 3, Threshold: 2, TrainDownPeriod: 32}
}

type groupEntry struct {
	counters []uint8
	roll     uint8
	key      uint64
	lru      *list.Element
}

// Group is a group destination-set predictor (ADDR or INST depending on
// configuration). It is per-node state: each core owns one instance.
type Group struct {
	name string
	self arch.NodeID
	cfg  GroupConfig
	tab  map[uint64]*groupEntry
	lru  *list.List // front = most recent; elements hold *groupEntry
}

// NewGroup builds a group predictor for the given node.
func NewGroup(name string, self arch.NodeID, cfg GroupConfig) *Group {
	if cfg.Nodes <= 0 {
		panic("predictor: GroupConfig.Nodes must be positive")
	}
	return &Group{name: name, self: self, cfg: cfg, tab: make(map[uint64]*groupEntry), lru: list.New()}
}

// NewAddr builds the paper's ADDR predictor (unlimited entries).
func NewAddr(self arch.NodeID, nodes int) *Group {
	return NewGroup("ADDR", self, DefaultAddrConfig(nodes))
}

// NewInst builds the paper's INST predictor (unlimited entries).
func NewInst(self arch.NodeID, nodes int) *Group {
	return NewGroup("INST", self, DefaultInstConfig(nodes))
}

// Name implements Predictor.
func (g *Group) Name() string { return g.name }

func (g *Group) key(m Miss) uint64 {
	if g.cfg.ByPC {
		return m.PC
	}
	// Line addresses are already byte-address >> 6; shift the remainder.
	shift := g.cfg.IndexGranularityBits - arch.LineShift
	if shift < 0 {
		shift = 0
	}
	return uint64(m.Line) >> uint(shift)
}

func (g *Group) lookup(key uint64, create bool) *groupEntry {
	if e, ok := g.tab[key]; ok {
		if e.lru != nil {
			g.lru.MoveToFront(e.lru)
		}
		return e
	}
	if !create {
		return nil
	}
	e := &groupEntry{counters: make([]uint8, g.cfg.Nodes), key: key}
	g.tab[key] = e
	e.lru = g.lru.PushFront(e)
	if g.cfg.Entries > 0 && g.lru.Len() > g.cfg.Entries {
		victim := g.lru.Back().Value.(*groupEntry)
		g.lru.Remove(victim.lru)
		delete(g.tab, victim.key)
	}
	return e
}

// Predict implements Predictor: the entry's counters filtered through the
// configured policy. A missing entry yields no prediction.
func (g *Group) Predict(m Miss) (arch.SharerSet, Tag) {
	e := g.lookup(g.key(m), false)
	if e == nil {
		return arch.EmptySet, TagNone
	}
	ownerOnly := g.cfg.Policy == PolicyOwner ||
		(g.cfg.Policy == PolicyGroupOwner && m.Kind == ReadMiss)
	var set arch.SharerSet
	if ownerOnly {
		best, bestC := arch.None, uint8(0)
		for i, c := range e.counters {
			if arch.NodeID(i) != g.self && c >= g.cfg.Threshold && c > bestC {
				best, bestC = arch.NodeID(i), c
			}
		}
		if best != arch.None {
			set = set.Add(best)
		}
	} else {
		for i, c := range e.counters {
			if arch.NodeID(i) != g.self && c >= g.cfg.Threshold {
				set = set.Add(arch.NodeID(i))
			}
		}
	}
	if set.Empty() {
		return arch.EmptySet, TagNone
	}
	return set, TagOther
}

func (g *Group) trainEntry(e *groupEntry, targets arch.SharerSet) {
	targets.ForEach(func(n arch.NodeID) {
		if n == g.self {
			return
		}
		if e.counters[n] < g.cfg.CounterMax {
			e.counters[n]++
		}
	})
	e.roll++
	if e.roll >= g.cfg.TrainDownPeriod {
		e.roll = 0
		for i := range e.counters {
			if e.counters[i] > 0 {
				e.counters[i]--
			}
		}
	}
}

// Train implements Predictor: trains the entry toward the observed targets.
func (g *Group) Train(m Miss, o Outcome) {
	g.trainEntry(g.lookup(g.key(m), true), o.Targets())
}

// TrainExternal trains from an incoming coherence request: requester asked
// this node about line. Only address-indexed groups can use this signal
// (external requests carry no local PC), matching the paper's observation
// that ADDR/INST train on "both external coherence requests and coherence
// responses" where applicable.
func (g *Group) TrainExternal(line arch.LineAddr, requester arch.NodeID) {
	if g.cfg.ByPC {
		return
	}
	e := g.lookup(g.key(Miss{Line: line}), true)
	g.trainEntry(e, arch.SetOf(requester))
}

// OnSync implements Predictor; group predictors ignore sync-points.
func (g *Group) OnSync(SyncEvent) {}

// StorageBits implements Predictor: 2 bits per core plus the 5-bit
// roll-over counter per entry, plus a tag per entry (paper §5.4: 37 bits
// untagged for 16 cores; tags add 32 bits).
func (g *Group) StorageBits() int {
	perEntry := 2*g.cfg.Nodes + 5 + 32
	n := len(g.tab)
	if g.cfg.Entries > 0 {
		n = g.cfg.Entries
	}
	return n * perEntry
}

// Len returns the current number of table entries (test aid).
func (g *Group) Len() int { return len(g.tab) }

// Uni is the paper's UNI predictor: a single untagged group entry trained
// only by the targets of this core's own misses (coherence responses),
// independent of address or instruction — pure temporal communication
// locality, the cheapest possible design point.
type Uni struct {
	self arch.NodeID
	cfg  GroupConfig
	e    groupEntry
}

// NewUni builds a UNI predictor for the given node.
func NewUni(self arch.NodeID, nodes int) *Uni {
	cfg := DefaultAddrConfig(nodes)
	return &Uni{self: self, cfg: cfg, e: groupEntry{counters: make([]uint8, nodes)}}
}

// Name implements Predictor.
func (u *Uni) Name() string { return "UNI" }

// Predict implements Predictor.
func (u *Uni) Predict(Miss) (arch.SharerSet, Tag) {
	var set arch.SharerSet
	for i, c := range u.e.counters {
		if arch.NodeID(i) != u.self && c >= u.cfg.Threshold {
			set = set.Add(arch.NodeID(i))
		}
	}
	if set.Empty() {
		return arch.EmptySet, TagNone
	}
	return set, TagOther
}

// Train implements Predictor.
func (u *Uni) Train(_ Miss, o Outcome) {
	targets := o.Targets()
	targets.ForEach(func(n arch.NodeID) {
		if n == u.self {
			return
		}
		if u.e.counters[n] < u.cfg.CounterMax {
			u.e.counters[n]++
		}
	})
	u.e.roll++
	if u.e.roll >= u.cfg.TrainDownPeriod {
		u.e.roll = 0
		for i := range u.e.counters {
			if u.e.counters[i] > 0 {
				u.e.counters[i]--
			}
		}
	}
}

// OnSync implements Predictor.
func (u *Uni) OnSync(SyncEvent) {}

// StorageBits implements Predictor: one untagged entry.
func (u *Uni) StorageBits() int { return 2*u.cfg.Nodes + 5 }

// String aids debugging.
func (u *Uni) String() string { return fmt.Sprintf("UNI(node %d)", u.self) }
