package predictor

import (
	"testing"

	"spcoh/internal/arch"
)

// always is a predictor that always predicts a fixed set.
type always struct{ set arch.SharerSet }

func (a *always) Name() string                       { return "always" }
func (a *always) Predict(Miss) (arch.SharerSet, Tag) { return a.set, TagOther }
func (a *always) Train(Miss, Outcome)                {}
func (a *always) OnSync(SyncEvent)                   {}
func (a *always) StorageBits() int                   { return 1 }

func TestFilterSuppressesPrivateRegions(t *testing.T) {
	f := NewRegionFilter(&always{set: arch.SetOf(3)})
	m := Miss{Line: 0x1000}
	// Fresh region: prediction passes through.
	if set, _ := f.Predict(m); set != arch.SetOf(3) {
		t.Fatalf("fresh region should predict: %v", set)
	}
	// Two memory-sourced misses mark the region private.
	f.Train(m, Outcome{Provider: arch.None, Communicating: false})
	f.Train(m, Outcome{Provider: arch.None, Communicating: false})
	if set, tag := f.Predict(m); !set.Empty() || tag != TagNone {
		t.Fatalf("private region should suppress: %v", set)
	}
	if f.Suppressed == 0 {
		t.Fatal("suppression not counted")
	}
	// Same region, nearby line: also suppressed (region granularity).
	if set, _ := f.Predict(Miss{Line: 0x1001}); !set.Empty() {
		t.Fatalf("nearby line should share the region state: %v", set)
	}
	// A different region is unaffected.
	if set, _ := f.Predict(Miss{Line: 0x9000}); set != arch.SetOf(3) {
		t.Fatalf("other region should predict: %v", set)
	}
}

func TestFilterResetsOnCommunication(t *testing.T) {
	f := NewRegionFilter(&always{set: arch.SetOf(1)})
	m := Miss{Line: 0x2000}
	f.Train(m, Outcome{Provider: arch.None, Communicating: false})
	f.Train(m, Outcome{Provider: arch.None, Communicating: false})
	f.Train(m, Outcome{Provider: 5, Communicating: true}) // shared again
	if set, _ := f.Predict(m); set.Empty() {
		t.Fatal("communicating miss must unblock the region")
	}
}

func TestFilterExternalRequestMarksShared(t *testing.T) {
	f := NewRegionFilter(&always{set: arch.SetOf(1)})
	m := Miss{Line: 0x3000}
	f.Train(m, Outcome{Communicating: false})
	f.Train(m, Outcome{Communicating: false})
	f.TrainExternal(0x3002, 7) // someone else touched the region
	if set, _ := f.Predict(m); set.Empty() {
		t.Fatal("external request must mark the region shared")
	}
}

func TestFilterMetadata(t *testing.T) {
	inner := &always{set: arch.SetOf(1)}
	f := NewRegionFilter(inner)
	if f.Name() != "always+filter" || f.Inner() != inner {
		t.Fatalf("metadata wrong: %q", f.Name())
	}
	f.Train(Miss{Line: 1}, Outcome{})
	if f.StorageBits() <= inner.StorageBits() {
		t.Fatal("filter storage must be accounted")
	}
}

func TestOwnerPolicy(t *testing.T) {
	cfg := DefaultAddrConfig(8)
	cfg.Policy = PolicyOwner
	g := NewGroup("ADDR", 0, cfg)
	m := Miss{Line: 4}
	trainN(g, m, arch.SetOf(2), 2)
	trainN(g, m, arch.SetOf(5), 3)
	set, _ := g.Predict(m)
	if set.Count() != 1 {
		t.Fatalf("owner policy must predict one node: %v", set)
	}
	if !set.Contains(5) {
		t.Fatalf("owner should be the hottest counter: %v", set)
	}
}

func TestGroupOwnerPolicy(t *testing.T) {
	cfg := DefaultAddrConfig(8)
	cfg.Policy = PolicyGroupOwner
	g := NewGroup("ADDR", 0, cfg)
	m := Miss{Line: 4}
	trainN(g, m, arch.SetOf(2, 5), 3)
	rset, _ := g.Predict(Miss{Line: 4, Kind: ReadMiss})
	wset, _ := g.Predict(Miss{Line: 4, Kind: WriteMiss})
	if rset.Count() != 1 {
		t.Fatalf("reads should use owner policy: %v", rset)
	}
	if wset != arch.SetOf(2, 5) {
		t.Fatalf("writes should use group policy: %v", wset)
	}
}
